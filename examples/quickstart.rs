//! Quickstart: the mediated-analysis loop in one file.
//!
//! A data owner wraps a packet trace behind a privacy budget; an analyst
//! runs declarative queries and receives noisy aggregates; the accountant
//! enforces the budget. Reproduces the paper's §2.3 worked example along
//! the way.
//!
//! Run with: `cargo run --release --example quickstart`

use dpnet::pinq::{Accountant, Error, NoiseSource, Queryable};
use dpnet::trace::gen::hotspot::{generate, HotspotConfig};

fn main() {
    // ----- data-owner side -------------------------------------------------
    // Generate a synthetic hotspot trace (stands in for a tcpdump capture).
    let trace = generate(HotspotConfig {
        web_flows: 500,
        ..HotspotConfig::default()
    });
    println!("trace: {} packets", trace.packets.len());

    // Policy: total privacy budget ε = 1.0 for this dataset.
    let budget = Accountant::new(1.0);
    let noise = NoiseSource::seeded(2010);
    let packets = Queryable::new(trace.packets, &budget, &noise);

    // ----- analyst side ----------------------------------------------------
    // The §2.3 example: distinct hosts sending >1 KB to port 80, at ε=0.1.
    // GroupBy doubles sensitivity, so this costs 0.2 of the budget.
    let heavy = packets
        .filter(|p| p.dst_port == 80)
        .group_by(|p| p.src_ip)
        .filter(|g| g.items.iter().map(|p| p.len as u64).sum::<u64>() > 1024)
        .noisy_count(0.1)
        .expect("first query fits in the budget");
    println!("heavy hosts to port 80 ≈ {heavy:.1}  (expected error ±10 at ε=0.1)");

    // A second query: how many TCP handshakes completed? Partition keeps
    // per-port analyses cheap — all ports together cost one ε.
    let ports = vec![80u16, 443, 22, 25];
    let parts = packets
        .partition(&ports, |p| p.dst_port)
        .expect("partition keys are distinct");
    for (port, part) in ports.iter().zip(&parts) {
        let syns = part
            .filter(|p| p.flags.is_syn() && !p.flags.is_ack())
            .noisy_count(0.1)
            .expect("parallel composition: still within budget");
        println!("SYNs to port {port:>4} ≈ {syns:.1}");
    }

    // The accountant has been tracking everything.
    println!(
        "budget: spent {:.2} of {:.2} ({} releases logged)",
        budget.spent(),
        budget.total(),
        budget.audit_log().len()
    );

    // Overspending fails cleanly — the data stays protected.
    match packets.noisy_count(10.0) {
        Err(Error::BudgetExceeded {
            requested,
            available,
        }) => println!(
            "a ε={requested} query was refused (only {available:.2} left) — as it should be"
        ),
        other => panic!("expected budget refusal, got {other:?}"),
    }
}
