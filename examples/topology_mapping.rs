//! Passive topology mapping under differential privacy (paper §5.3.2).
//!
//! Clusters IP addresses by hop-count vectors to 38 monitors with DP
//! k-means, comparing the objective trajectory against the non-private
//! baseline at two privacy levels — and against the pricier Gaussian-EM
//! variant, illustrating the algorithmic-complexity-vs-privacy-cost
//! trade-off.
//!
//! Run with: `cargo run --release --example topology_mapping`

use dpnet::analyses::topology::{private_topology_clusters, TopologyConfig};
use dpnet::pinq::{Accountant, NoiseSource, Queryable};
use dpnet::toolkit::kmeans::{clustering_rmse, kmeans_baseline, random_centers};
use dpnet::trace::gen::scatter::{generate, ScatterConfig};

fn main() {
    let trace = generate(ScatterConfig {
        ips: 8000,
        ..ScatterConfig::default()
    });
    println!(
        "IPscatter: {} observations of {} IPs from {} monitors, {} planted clusters",
        trace.records.len(),
        trace.ip_cluster.len(),
        trace.monitors,
        trace.centers.len()
    );

    let exact_vectors: Vec<Vec<f64>> = trace
        .vectors_mean_imputed()
        .into_iter()
        .map(|(_, v)| v)
        .collect();
    let init = random_centers(9, 38, 5.0, 25.0, 7);
    let iterations = 10;

    let baseline = kmeans_baseline(&exact_vectors, iterations, init.clone());
    println!(
        "\nnoise-free k-means: objective {:.2} → {:.2}",
        clustering_rmse(&exact_vectors, &baseline.centers[0]),
        clustering_rmse(&exact_vectors, baseline.last()),
    );

    for (label, eps, em) in [
        ("DP k-means, ε=0.1/iter", 0.1, false),
        ("DP k-means, ε=10/iter ", 10.0, false),
        ("Gaussian EM, ε=10/iter", 10.0, true),
    ] {
        let budget = Accountant::new(1e6);
        let noise = NoiseSource::seeded(99);
        let q = Queryable::new(trace.records.clone(), &budget, &noise);
        let traj = private_topology_clusters(
            &q,
            &TopologyConfig {
                iterations,
                eps_per_iteration: eps,
                gaussian_em: em,
                ..TopologyConfig::default()
            },
            init.clone(),
        )
        .expect("budget is ample");
        println!(
            "{label}: objective {:.2} → {:.2}   (privacy cost {:.1})",
            clustering_rmse(&exact_vectors, &traj.centers[0]),
            clustering_rmse(&exact_vectors, traj.last()),
            budget.spent(),
        );
    }

    println!(
        "\nthe paper's Figure 5 shape: strong privacy converges to a visibly worse\n\
         objective; weak privacy matches the noise-free run; Gaussian EM pays for\n\
         its extra moment query with a worse result at the same per-iteration ε"
    );
}
