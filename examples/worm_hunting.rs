//! Worm fingerprinting over a protected trace (paper §5.1.2).
//!
//! Shows the two-stage private pipeline — spell out frequent payloads, then
//! check their dispersion — against the exact scan a data owner could run
//! themselves, at a strong and a weak privacy level.
//!
//! Run with: `cargo run --release --example worm_hunting`

use dpnet::analyses::worm::{worm_fingerprints, worm_fingerprints_exact, WormConfig};
use dpnet::pinq::{Accountant, NoiseSource, Queryable};
use dpnet::trace::gen::hotspot::{generate, HotspotConfig};
use std::collections::HashSet;

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02X}")).collect()
}

fn main() {
    let trace = generate(HotspotConfig {
        web_flows: 800,
        worms_above_threshold: 12,
        worms_below_threshold: 6,
        ..HotspotConfig::default()
    });
    println!(
        "trace: {} packets, {} planted worm payloads",
        trace.packets.len(),
        trace.truth.worms.len()
    );

    // The owner's own exact scan (ground truth): dispersion > 50 both ways.
    let exact = worm_fingerprints_exact(&trace.packets, 8, 50, 50);
    println!("exact scan: {} high-dispersion signatures\n", exact.len());
    let exact_set: HashSet<&Vec<u8>> = exact.iter().collect();

    for eps in [0.5, 10.0] {
        let budget = Accountant::new(1e6);
        let noise = NoiseSource::seeded(0xbeef);
        let packets = Queryable::new(trace.packets.clone(), &budget, &noise);
        let found = worm_fingerprints(
            &packets,
            &WormConfig {
                eps,
                presence_threshold: 50.0,
                ..WormConfig::default()
            },
        )
        .expect("budget is ample");

        let recovered = found
            .iter()
            .filter(|f| exact_set.contains(&f.payload))
            .count();
        println!(
            "ε = {eps}: reported {} signatures, {} of {} real ones (cost {:.1} ε-units)",
            found.len(),
            recovered,
            exact.len(),
            budget.spent()
        );
        for f in found.iter().take(5) {
            println!(
                "  {}  srcs≈{:>6.1} dsts≈{:>6.1} presence≈{:>8.1}",
                hex(&f.payload),
                f.distinct_sources,
                f.distinct_destinations,
                f.presence
            );
        }
        println!();
    }
    println!("strong privacy misses low-presence signatures; weak privacy recovers all — the paper's §5.1.2 trade-off");
}
