//! Owner-side budget policies (paper §7): per-analyst caps, collusion
//! resistance, and timed budget release.
//!
//! Run with: `cargo run --release --example budget_policies`

use dpnet::pinq::policy::{SessionManager, TimedRelease};
use dpnet::pinq::{Accountant, NoiseSource};
use dpnet::trace::gen::hotspot::{generate, HotspotConfig};

fn main() {
    let trace = generate(HotspotConfig {
        web_flows: 300,
        ..HotspotConfig::default()
    });

    // Policy: the dataset is worth ε = 1.0 in total; no analyst may spend
    // more than 0.4 alone.
    let manager = SessionManager::new(trace.packets, NoiseSource::seeded(0x70), 1.0, 0.4);

    // Three analysts work the data.
    for analyst in ["alice", "bob", "carol"] {
        let session = manager.session(analyst);
        match session.filter(|p| p.dst_port == 80).noisy_count(0.4) {
            Ok(c) => println!("{analyst}: port-80 packets ≈ {c:.0} (spent 0.4)"),
            Err(e) => println!("{analyst}: refused — {e}"),
        }
    }
    println!(
        "\nglobal ledger: spent {:.2} of {:.2} — the analysts' combined knowledge is\n\
         bounded by the global budget even if they collude",
        manager.global().spent(),
        manager.global().total()
    );
    for (name, spent) in manager.ledger() {
        println!("  {name:<6} spent {spent:.2}");
    }

    // Timed release: next week the owner drips in a little more budget.
    println!("\n-- timed release --");
    let archive_budget = Accountant::new(0.1);
    let policy = TimedRelease::new(archive_budget.clone(), 0.05, Some(0.5));
    println!(
        "week 0: archive budget {:.2} (remaining {:.2})",
        archive_budget.total(),
        archive_budget.remaining()
    );
    for week in [4u64, 8, 52] {
        policy.advance_to(week);
        println!(
            "week {week}: archive budget grown to {:.2} (ceiling 0.5)",
            archive_budget.total()
        );
    }
    println!(
        "the paper's §7 trade-off: data stays useful longer, cumulative\n\
         disclosure grows correspondingly"
    );
}
