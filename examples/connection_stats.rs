//! Connection-level flow statistics (§5.2.1's missing piece).
//!
//! Demonstrates owner-side connection-id pre-processing followed by the
//! packets-per-connection CDF the paper could not express, plus quantile
//! extraction from the released CDF at zero extra privacy cost.
//!
//! Run with: `cargo run --release --example connection_stats`

use dpnet::analyses::flow_stats::{connection_size_cdf, connection_size_cdf_exact};
use dpnet::pinq::{Accountant, NoiseSource, Queryable};
use dpnet::toolkit::quantiles::quantiles_from_cdf;
use dpnet::trace::gen::hotspot::{generate, HotspotConfig};

fn main() {
    let trace = generate(HotspotConfig {
        web_flows: 1200,
        multi_connection_fraction: 0.25,
        ..HotspotConfig::default()
    });

    // Owner side: annotate connections before protecting the data.
    let annotated = dpnet::trace::annotate_connections(&trace.packets);
    let exact = connection_size_cdf_exact(&trace.packets, 150);
    println!(
        "{} packets → {} TCP connections ({} flows multiplex several)",
        trace.packets.len(),
        *exact.last().unwrap() as u64,
        trace.truth.multi_connection_flows
    );

    let budget = Accountant::new(2.0);
    let noise = NoiseSource::seeded(0xc59);
    let q = Queryable::new(annotated, &budget, &noise);

    // Analyst side: one CDF query (GroupBy costs 2×0.5)…
    let cdf = connection_size_cdf(&q, 150, 0.5).expect("within budget");
    println!("\npackets-per-connection CDF (private, ε=0.5):");
    for b in [5usize, 10, 20, 40, 80, 150] {
        println!(
            "  ≤{b:>3} packets: {:>8.1} connections (exact {:>6.0})",
            cdf.cdf[b], exact[b]
        );
    }

    // …and as many quantiles as desired, free of further charge.
    let qs = quantiles_from_cdf(&cdf.cdf, &[0.25, 0.5, 0.9, 0.99]);
    println!(
        "\nquantiles from the same release: p25={} p50={} p90={} p99={} packets",
        qs[0], qs[1], qs[2], qs[3]
    );
    println!(
        "budget: spent {:.2} of {:.2}",
        budget.spent(),
        budget.total()
    );
}
