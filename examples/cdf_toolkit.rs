//! The three CDF estimators of the paper's §4.1, side by side.
//!
//! Builds a protected dataset of retransmission delays, estimates its CDF
//! with cdf1 (naive counts), cdf2 (partition + prefix sum) and cdf3
//! (hierarchical), all at the same total privacy allotment, then shows how
//! isotonic regression restores monotonicity as post-processing.
//!
//! Run with: `cargo run --release --example cdf_toolkit`

use dpnet::pinq::{Accountant, NoiseSource, Queryable};
use dpnet::toolkit::cdf::{cdf_hierarchical, cdf_naive, cdf_partition, noise_free_cdf};
use dpnet::toolkit::isotonic_regression;
use dpnet::toolkit::stats::rmse;
use dpnet::trace::gen::hotspot::{generate, HotspotConfig};
use dpnet::trace::tcp::retransmission_delays;

const BUCKETS: usize = 250; // 1 ms buckets over 0–250 ms, as in Figure 1

fn main() {
    let trace = generate(HotspotConfig {
        web_flows: 2000,
        ..HotspotConfig::default()
    });
    let values: Vec<usize> = retransmission_delays(&trace.packets)
        .into_iter()
        .map(|us| ((us / 1000) as usize).min(BUCKETS - 1))
        .collect();
    println!(
        "{} retransmission delays, {} buckets of 1 ms",
        values.len(),
        BUCKETS
    );

    let truth = noise_free_cdf(&values, BUCKETS);
    let total = *truth.last().unwrap();

    let budget = Accountant::new(1e6);
    let noise = NoiseSource::seeded(41);
    let data = Queryable::new(values, &budget, &noise);

    // Same total ε for every method.
    let eps_total = 1.0;
    let levels = (BUCKETS.next_power_of_two().trailing_zeros() + 1) as f64;
    let c1 = cdf_naive(&data, BUCKETS, eps_total / BUCKETS as f64).unwrap();
    let c2 = cdf_partition(&data, BUCKETS, eps_total).unwrap();
    let c3 = cdf_hierarchical(&data, BUCKETS, eps_total / levels).unwrap();

    println!("\n  ms   truth     cdf1      cdf2      cdf3");
    for ms in (24..BUCKETS).step_by(45) {
        println!(
            "{ms:>4}  {:>8.0}  {:>8.1}  {:>8.1}  {:>8.1}",
            truth[ms], c1[ms], c2[ms], c3[ms]
        );
    }
    println!(
        "\nRMSE/total:  cdf1 {:.2}%   cdf2 {:.2}%   cdf3 {:.2}%",
        100.0 * rmse(&c1, &truth) / total,
        100.0 * rmse(&c2, &truth) / total,
        100.0 * rmse(&c3, &truth) / total,
    );

    // Noisy CDFs are not monotone; isotonic regression (free
    // post-processing) fixes that — at the cost of irreversibly smoothing.
    let dips = c2.windows(2).filter(|w| w[1] < w[0]).count();
    let smooth = isotonic_regression(&c2);
    let dips_after = smooth.windows(2).filter(|w| w[1] < w[0]).count();
    println!(
        "\ncdf2 monotonicity violations: {dips} before isotonic regression, {dips_after} after"
    );
    println!(
        "isotonic RMSE/total: {:.2}% (vs {:.2}% raw)",
        100.0 * rmse(&smooth, &truth) / total,
        100.0 * rmse(&c2, &truth) / total,
    );
}
