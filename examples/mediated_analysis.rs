//! Full mediated-trace-analysis scenario: owner and analyst as separate
//! roles, with the trace persisted to the binary format in between.
//!
//! 1. The *owner* captures a trace, writes it to disk, and later loads it
//!    behind a `Queryable` with a fixed total budget.
//! 2. The *analyst* submits a session of diverse queries — distributions,
//!    flow statistics, an anomaly-style count matrix — until the budget
//!    refuses further questions.
//!
//! Run with: `cargo run --release --example mediated_analysis`

use dpnet::analyses::flow_stats::rtt_cdf;
use dpnet::analyses::packet_dist::packet_length_cdf;
use dpnet::pinq::{Accountant, Error, NoiseSource, Queryable};
use dpnet::trace::format::{read_trace, write_trace};
use dpnet::trace::gen::hotspot::{generate, HotspotConfig};

fn main() {
    // ---- owner: capture and persist ---------------------------------------
    let captured = generate(HotspotConfig {
        web_flows: 800,
        ..HotspotConfig::default()
    });
    let mut file = Vec::new(); // stands in for a file on the owner's disk
    write_trace(&mut file, &captured.packets).expect("serialization succeeds");
    println!(
        "owner: persisted {} packets ({} bytes on disk)",
        captured.packets.len(),
        file.len()
    );

    // ---- owner: load and protect ------------------------------------------
    let packets = read_trace(&file[..]).expect("well-formed trace file");
    let budget = Accountant::new(2.0); // session policy: total ε = 2
    let noise = NoiseSource::from_entropy(); // deployed services use fresh entropy
    let q = Queryable::new(packets, &budget, &noise);

    // ---- analyst session ----------------------------------------------------
    // Query 1: packet length distribution (costs 0.5).
    let lengths = packet_length_cdf(&q, 1500, 50, 0.5).expect("within budget");
    let total = lengths.cdf.last().copied().unwrap_or(0.0);
    println!(
        "analyst: length CDF over {} buckets, ≈{total:.0} packets total",
        lengths.cdf.len()
    );

    // Query 2: RTT distribution (the join costs 2 × 0.25).
    let rtts = rtt_cdf(&q, 600, 20, 0.25).expect("within budget");
    println!(
        "analyst: RTT CDF over {} buckets, ≈{:.0} handshakes",
        rtts.cdf.len(),
        rtts.cdf.last().copied().unwrap_or(0.0)
    );

    // Query 3: traffic volume by port bucket over time (nested partition —
    // the whole matrix costs one 0.5).
    let ports = vec![80u16, 443, 22];
    let minutes: Vec<u64> = (0..10).collect();
    let by_port = q.partition(&ports, |p| p.dst_port).expect("distinct ports");
    let mut matrix = Vec::new();
    for part in &by_port {
        let by_minute = part
            .partition(&minutes, |p| p.ts_us / 60_000_000)
            .expect("distinct minutes");
        let row: Vec<f64> = by_minute
            .iter()
            .map(|cell| cell.noisy_count(0.5).expect("parallel composition"))
            .collect();
        matrix.push(row);
    }
    println!("analyst: 3×10 port/minute volume matrix measured for one 0.5 charge");
    for (port, row) in ports.iter().zip(&matrix) {
        let head: Vec<String> = row.iter().take(5).map(|v| format!("{v:>7.0}")).collect();
        println!("  port {port:>4}: {} …", head.join(" "));
    }

    println!(
        "budget: spent {:.2} of {:.2}",
        budget.spent(),
        budget.total()
    );

    // Query 4: one query too many.
    match q.noisy_count(budget.remaining() + 0.1) {
        Err(Error::BudgetExceeded { available, .. }) => {
            println!("analyst: next query refused — only ε={available:.2} remains. Session over.")
        }
        other => panic!("expected refusal, got {other:?}"),
    }
}
