//! # dpnet-trace — packet/flow trace model and synthetic dataset generators
//!
//! The substrate beneath the differentially-private network analyses of
//! *McSherry & Mahajan (SIGCOMM 2010)*: the record types the analyses
//! consume, noise-free reference computations (the baselines the paper
//! compares against), a compact binary trace format, and generators for
//! stand-ins of the paper's three proprietary datasets.
//!
//! | paper dataset | record | generator |
//! |---|---|---|
//! | Hotspot | `<timestamp, packet>` ([`Packet`]) | [`gen::hotspot`] |
//! | IspTraffic | `<timestamp, link, packet>` ([`gen::isp::LinkPacket`]) | [`gen::isp`] |
//! | IPscatter | `<monitor, IPaddr, ttl>` ([`gen::scatter::ScatterRecord`]) | [`gen::scatter`] |
//!
//! Each generator plants ground truth (worm payloads, stepping-stone pairs,
//! volume anomalies, topological clusters, …) and returns it alongside the
//! records, so experiments can score how much of the truth each privacy
//! level recovers.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod classify;
pub mod columns;
pub mod connections;
pub mod flow;
pub mod format;
pub mod gen;
pub mod packet;
pub mod tcp;

pub use columns::{PacketColumns, PayloadDict};
pub use connections::{annotate_connections, ConnPacket};
pub use flow::{FlowKey, FlowSummary};
pub use packet::{format_ip, parse_ip, Packet, Proto, TcpFlags};
