//! Compact binary trace encoding.
//!
//! Layout:
//!
//! ```text
//! [ MAGIC (4 bytes) ][ VERSION (1) ][ count (u64 LE) ]
//! count × [ ts_us u64 | src u32 | dst u32 | sport u16 | dport u16
//!         | proto u8 | flags u8 | len u16 | seq u32 | ack u32
//!         | payload_len u32 | payload bytes ]
//! ```
//!
//! All integers little-endian. The format is deliberately boring: it exists
//! so generated traces can be cached between harness runs and shipped
//! between the generator and analysis sides without re-generation.

use crate::packet::{Packet, Proto, TcpFlags};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;
use std::io::{Read, Write};

/// File magic: "DPNT".
pub const MAGIC: [u8; 4] = *b"DPNT";
/// Current format version.
pub const VERSION: u8 = 1;

/// Errors from reading or writing the trace format.
#[derive(Debug)]
pub enum FormatError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The header magic did not match.
    BadMagic([u8; 4]),
    /// Unsupported format version.
    BadVersion(u8),
    /// The payload or record data was truncated.
    Truncated,
    /// A payload length field exceeded the sanity limit.
    OversizedPayload(u32),
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FormatError::Io(e) => write!(f, "I/O error: {e}"),
            FormatError::BadMagic(m) => write!(f, "bad magic {m:?}"),
            FormatError::BadVersion(v) => write!(f, "unsupported version {v}"),
            FormatError::Truncated => write!(f, "truncated trace file"),
            FormatError::OversizedPayload(n) => write!(f, "payload length {n} exceeds limit"),
        }
    }
}

impl std::error::Error for FormatError {}

impl From<std::io::Error> for FormatError {
    fn from(e: std::io::Error) -> Self {
        FormatError::Io(e)
    }
}

/// Refuse payloads above 1 MiB: generated traces use short payloads, and the
/// limit keeps a corrupted length field from causing an absurd allocation.
const MAX_PAYLOAD: u32 = 1 << 20;

/// Serialize a trace to a writer.
pub fn write_trace<W: Write>(mut w: W, packets: &[Packet]) -> Result<(), FormatError> {
    let mut buf = BytesMut::with_capacity(16 + packets.len() * 40);
    buf.put_slice(&MAGIC);
    buf.put_u8(VERSION);
    buf.put_u64_le(packets.len() as u64);
    for p in packets {
        buf.put_u64_le(p.ts_us);
        buf.put_u32_le(p.src_ip);
        buf.put_u32_le(p.dst_ip);
        buf.put_u16_le(p.src_port);
        buf.put_u16_le(p.dst_port);
        buf.put_u8(p.proto.number());
        buf.put_u8(p.flags.0);
        buf.put_u16_le(p.len);
        buf.put_u32_le(p.seq);
        buf.put_u32_le(p.ack);
        buf.put_u32_le(p.payload.len() as u32);
        buf.put_slice(&p.payload);
        // Flush periodically so huge traces do not hold 2× memory.
        if buf.len() > 1 << 20 {
            w.write_all(&buf)?;
            buf.clear();
        }
    }
    w.write_all(&buf)?;
    Ok(())
}

/// Deserialize a trace from a reader.
pub fn read_trace<R: Read>(mut r: R) -> Result<Vec<Packet>, FormatError> {
    let mut raw = Vec::new();
    r.read_to_end(&mut raw)?;
    let mut buf = Bytes::from(raw);
    if buf.remaining() < 13 {
        return Err(FormatError::Truncated);
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if magic != MAGIC {
        return Err(FormatError::BadMagic(magic));
    }
    let version = buf.get_u8();
    if version != VERSION {
        return Err(FormatError::BadVersion(version));
    }
    let count = buf.get_u64_le() as usize;
    let mut packets = Vec::with_capacity(count.min(1 << 24));
    for _ in 0..count {
        // Fixed part: 8+4+4+2+2+1+1+2+4+4+4 = 36 bytes.
        if buf.remaining() < 36 {
            return Err(FormatError::Truncated);
        }
        let ts_us = buf.get_u64_le();
        let src_ip = buf.get_u32_le();
        let dst_ip = buf.get_u32_le();
        let src_port = buf.get_u16_le();
        let dst_port = buf.get_u16_le();
        let proto = Proto::from_number(buf.get_u8());
        let flags = TcpFlags(buf.get_u8());
        let len = buf.get_u16_le();
        let seq = buf.get_u32_le();
        let ack = buf.get_u32_le();
        let plen = buf.get_u32_le();
        if plen > MAX_PAYLOAD {
            return Err(FormatError::OversizedPayload(plen));
        }
        if buf.remaining() < plen as usize {
            return Err(FormatError::Truncated);
        }
        let payload = buf.copy_to_bytes(plen as usize).to_vec();
        packets.push(Packet {
            ts_us,
            src_ip,
            dst_ip,
            src_port,
            dst_port,
            proto,
            len,
            flags,
            seq,
            ack,
            payload,
        });
    }
    Ok(packets)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_packets() -> Vec<Packet> {
        vec![
            Packet {
                ts_us: 123,
                src_ip: 0x0a000001,
                dst_ip: 0x0a000002,
                src_port: 40000,
                dst_port: 80,
                proto: Proto::Tcp,
                len: 60,
                flags: TcpFlags::syn(),
                seq: 1000,
                ack: 0,
                payload: vec![],
            },
            Packet {
                ts_us: 456,
                src_ip: 0x0a000002,
                dst_ip: 0x0a000001,
                src_port: 80,
                dst_port: 40000,
                proto: Proto::Udp,
                len: 1492,
                flags: TcpFlags::default(),
                seq: 0,
                ack: 0,
                payload: b"GET / HTTP/1.1".to_vec(),
            },
        ]
    }

    #[test]
    fn round_trip_preserves_everything() {
        let pkts = sample_packets();
        let mut buf = Vec::new();
        write_trace(&mut buf, &pkts).unwrap();
        let back = read_trace(&buf[..]).unwrap();
        assert_eq!(back, pkts);
    }

    #[test]
    fn empty_trace_round_trips() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &[]).unwrap();
        assert!(read_trace(&buf[..]).unwrap().is_empty());
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &sample_packets()).unwrap();
        buf[0] = b'X';
        assert!(matches!(
            read_trace(&buf[..]),
            Err(FormatError::BadMagic(_))
        ));
    }

    #[test]
    fn bad_version_is_rejected() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &sample_packets()).unwrap();
        buf[4] = 99;
        assert!(matches!(
            read_trace(&buf[..]),
            Err(FormatError::BadVersion(99))
        ));
    }

    #[test]
    fn truncated_file_is_rejected() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &sample_packets()).unwrap();
        buf.truncate(buf.len() - 5);
        assert!(matches!(read_trace(&buf[..]), Err(FormatError::Truncated)));
    }

    #[test]
    fn oversized_payload_length_is_rejected() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &sample_packets()[..1]).unwrap();
        // Record starts at 13; payload_len field is the last 4 bytes of the
        // 36-byte fixed part.
        let plen_off = 13 + 32;
        buf[plen_off..plen_off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            read_trace(&buf[..]),
            Err(FormatError::OversizedPayload(_))
        ));
    }

    #[test]
    fn large_trace_round_trips() {
        let mut pkts = Vec::new();
        for i in 0..10_000u32 {
            pkts.push(Packet {
                ts_us: i as u64,
                src_ip: i,
                dst_ip: !i,
                src_port: (i % 65536) as u16,
                dst_port: 80,
                proto: Proto::Tcp,
                len: 40,
                flags: TcpFlags::ack(),
                seq: i,
                ack: i,
                payload: vec![(i % 256) as u8; (i % 16) as usize],
            });
        }
        let mut buf = Vec::new();
        write_trace(&mut buf, &pkts).unwrap();
        assert_eq!(read_trace(&buf[..]).unwrap(), pkts);
    }
}
