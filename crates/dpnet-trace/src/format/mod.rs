//! Trace persistence.
//!
//! The mediated-analysis setting has the *data owner* storing traces and the
//! analyst submitting queries; the owner needs a compact on-disk format.
//! [`binary`] provides a simple length-prefixed binary encoding (via the
//! `bytes` crate) with a magic header and version byte, plus streaming read
//! and write over any `Read`/`Write`.

pub mod binary;
pub mod pcap;
pub mod text;

pub use binary::{read_trace, write_trace, FormatError, MAGIC, VERSION};
pub use pcap::{read_pcap, write_pcap, PcapError};
pub use text::{read_text, write_text, TextError};
