//! Human-readable, line-oriented trace format.
//!
//! One packet per line, tcpdump-flavoured:
//!
//! ```text
//! 0.000123 10.0.0.1:40000 > 8.8.0.1:80 tcp S seq 1000 ack 0 len 60 payload 474554
//! ```
//!
//! The text form exists for debugging, for diffing traces in review, and as
//! the interchange format a data owner might accept from external capture
//! tooling. It round-trips exactly with the in-memory representation
//! (timestamps are microsecond-precision decimals).

use crate::packet::{format_ip, parse_ip, Packet, Proto, TcpFlags};
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Read, Write};

/// Errors from parsing the text format.
#[derive(Debug)]
pub enum TextError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line, with its (1-based) line number and a description.
    Parse {
        /// Line number of the offending line.
        line: usize,
        /// What was wrong.
        reason: String,
    },
}

impl std::fmt::Display for TextError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TextError::Io(e) => write!(f, "I/O error: {e}"),
            TextError::Parse { line, reason } => {
                write!(f, "parse error on line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for TextError {}

impl From<std::io::Error> for TextError {
    fn from(e: std::io::Error) -> Self {
        TextError::Io(e)
    }
}

fn flags_str(flags: TcpFlags) -> String {
    let mut s = String::new();
    if flags.is_syn() {
        s.push('S');
    }
    if flags.is_ack() {
        s.push('A');
    }
    if flags.is_fin() {
        s.push('F');
    }
    if flags.is_rst() {
        s.push('R');
    }
    if flags.is_psh() {
        s.push('P');
    }
    if s.is_empty() {
        s.push('.');
    }
    s
}

fn parse_flags(s: &str) -> Option<TcpFlags> {
    let mut f = TcpFlags::default();
    for c in s.chars() {
        match c {
            'S' => f.0 |= TcpFlags::SYN,
            'A' => f.0 |= TcpFlags::ACK,
            'F' => f.0 |= TcpFlags::FIN,
            'R' => f.0 |= TcpFlags::RST,
            'P' => f.0 |= TcpFlags::PSH,
            '.' => {}
            _ => return None,
        }
    }
    Some(f)
}

fn hex_encode(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        let _ = write!(s, "{b:02x}");
    }
    s
}

fn hex_decode(s: &str) -> Option<Vec<u8>> {
    if s.len() % 2 != 0 {
        return None;
    }
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).ok())
        .collect()
}

/// Render one packet as a line (no trailing newline).
pub fn format_packet(p: &Packet) -> String {
    let proto = match p.proto {
        Proto::Tcp => "tcp".to_string(),
        Proto::Udp => "udp".to_string(),
        Proto::Icmp => "icmp".to_string(),
        Proto::Other(n) => format!("proto{n}"),
    };
    format!(
        "{}.{:06} {}:{} > {}:{} {} {} seq {} ack {} len {} payload {}",
        p.ts_us / 1_000_000,
        p.ts_us % 1_000_000,
        format_ip(p.src_ip),
        p.src_port,
        format_ip(p.dst_ip),
        p.dst_port,
        proto,
        flags_str(p.flags),
        p.seq,
        p.ack,
        p.len,
        if p.payload.is_empty() {
            "-".to_string()
        } else {
            hex_encode(&p.payload)
        }
    )
}

/// Parse one line into a packet.
pub fn parse_packet(line: &str) -> Result<Packet, String> {
    let tokens: Vec<&str> = line.split_whitespace().collect();
    if tokens.len() != 14 {
        return Err(format!("expected 14 fields, found {}", tokens.len()));
    }
    // Timestamp: seconds.micros
    let (secs, micros) = tokens[0]
        .split_once('.')
        .ok_or_else(|| "timestamp must be seconds.micros".to_string())?;
    let secs: u64 = secs.parse().map_err(|_| "bad seconds".to_string())?;
    if micros.len() != 6 {
        return Err("timestamp micros must have 6 digits".to_string());
    }
    let micros: u64 = micros.parse().map_err(|_| "bad micros".to_string())?;
    let ts_us = secs * 1_000_000 + micros;

    let parse_endpoint = |tok: &str| -> Result<(u32, u16), String> {
        let (ip, port) = tok
            .rsplit_once(':')
            .ok_or_else(|| format!("bad endpoint '{tok}'"))?;
        let ip = parse_ip(ip).ok_or_else(|| format!("bad IP '{ip}'"))?;
        let port: u16 = port.parse().map_err(|_| format!("bad port '{port}'"))?;
        Ok((ip, port))
    };
    let (src_ip, src_port) = parse_endpoint(tokens[1])?;
    if tokens[2] != ">" {
        return Err("missing '>' separator".to_string());
    }
    let (dst_ip, dst_port) = parse_endpoint(tokens[3])?;

    let proto = match tokens[4] {
        "tcp" => Proto::Tcp,
        "udp" => Proto::Udp,
        "icmp" => Proto::Icmp,
        other => {
            let n = other
                .strip_prefix("proto")
                .and_then(|x| x.parse().ok())
                .ok_or_else(|| format!("bad protocol '{other}'"))?;
            Proto::Other(n)
        }
    };
    let flags = parse_flags(tokens[5]).ok_or_else(|| format!("bad flags '{}'", tokens[5]))?;

    let field = |name: &str, label_idx: usize, value_idx: usize| -> Result<&str, String> {
        if tokens[label_idx] != name {
            return Err(format!("expected '{name}', found '{}'", tokens[label_idx]));
        }
        Ok(tokens[value_idx])
    };
    let seq: u32 = field("seq", 6, 7)?
        .parse()
        .map_err(|_| "bad seq".to_string())?;
    let ack: u32 = field("ack", 8, 9)?
        .parse()
        .map_err(|_| "bad ack".to_string())?;
    let len: u16 = field("len", 10, 11)?
        .parse()
        .map_err(|_| "bad len".to_string())?;
    let payload_tok = field("payload", 12, 13)?;
    let payload = if payload_tok == "-" {
        Vec::new()
    } else {
        hex_decode(payload_tok).ok_or_else(|| "bad payload hex".to_string())?
    };

    Ok(Packet {
        ts_us,
        src_ip,
        dst_ip,
        src_port,
        dst_port,
        proto,
        len,
        flags,
        seq,
        ack,
        payload,
    })
}

/// Write a whole trace in text form.
pub fn write_text<W: Write>(mut w: W, packets: &[Packet]) -> Result<(), TextError> {
    for p in packets {
        writeln!(w, "{}", format_packet(p))?;
    }
    Ok(())
}

/// Read a whole trace from text form. Blank lines and lines starting with
/// `#` are skipped.
pub fn read_text<R: Read>(r: R) -> Result<Vec<Packet>, TextError> {
    let reader = BufReader::new(r);
    let mut out = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let p = parse_packet(trimmed).map_err(|reason| TextError::Parse {
            line: i + 1,
            reason,
        })?;
        out.push(p);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Packet {
        Packet {
            ts_us: 1_500_123,
            src_ip: parse_ip("10.0.0.1").unwrap(),
            dst_ip: parse_ip("8.8.0.1").unwrap(),
            src_port: 40000,
            dst_port: 80,
            proto: Proto::Tcp,
            len: 60,
            flags: TcpFlags::syn(),
            seq: 1000,
            ack: 0,
            payload: vec![0x47, 0x45, 0x54],
        }
    }

    #[test]
    fn format_is_stable() {
        assert_eq!(
            format_packet(&sample()),
            "1.500123 10.0.0.1:40000 > 8.8.0.1:80 tcp S seq 1000 ack 0 len 60 payload 474554"
        );
    }

    #[test]
    fn single_packet_round_trips() {
        let p = sample();
        assert_eq!(parse_packet(&format_packet(&p)).unwrap(), p);
    }

    #[test]
    fn empty_payload_round_trips() {
        let mut p = sample();
        p.payload.clear();
        p.flags = TcpFlags::default();
        assert_eq!(parse_packet(&format_packet(&p)).unwrap(), p);
    }

    #[test]
    fn all_protocols_round_trip() {
        for proto in [Proto::Tcp, Proto::Udp, Proto::Icmp, Proto::Other(89)] {
            let mut p = sample();
            p.proto = proto;
            assert_eq!(parse_packet(&format_packet(&p)).unwrap().proto, proto);
        }
    }

    #[test]
    fn whole_trace_round_trips_with_comments() {
        let mut packets = Vec::new();
        for i in 0..50u32 {
            let mut p = sample();
            p.ts_us = i as u64 * 1000;
            p.seq = i;
            p.payload = vec![(i % 256) as u8; (i % 5) as usize];
            packets.push(p);
        }
        let mut text = String::from("# generated trace\n\n");
        let mut buf = Vec::new();
        write_text(&mut buf, &packets).unwrap();
        text.push_str(std::str::from_utf8(&buf).unwrap());
        let back = read_text(text.as_bytes()).unwrap();
        assert_eq!(back, packets);
    }

    #[test]
    fn malformed_lines_report_position() {
        let text = "# ok\n1.000000 10.0.0.1:1 > 10.0.0.2:2 tcp S seq 0 ack 0 len 40 payload -\nnot a packet\n";
        match read_text(text.as_bytes()) {
            Err(TextError::Parse { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn specific_malformations_are_caught() {
        let good = format_packet(&sample());
        for (bad, _why) in [
            (good.replace("tcp", "xyz"), "protocol"),
            (good.replace(" S ", " Z "), "flags"),
            (good.replace("474554", "47455"), "odd hex"),
            (good.replace("1.500123", "1.5123"), "micros width"),
            (good.replace(" > ", " < "), "separator"),
            (good.replace(":80 ", " "), "endpoint"),
        ] {
            assert!(parse_packet(&bad).is_err(), "accepted malformed: {bad}");
        }
    }

    #[test]
    fn binary_and_text_formats_agree() {
        let packets: Vec<Packet> = (0..20)
            .map(|i| {
                let mut p = sample();
                p.ts_us = i;
                p
            })
            .collect();
        let mut bin = Vec::new();
        crate::format::write_trace(&mut bin, &packets).unwrap();
        let from_bin = crate::format::read_trace(&bin[..]).unwrap();
        let mut txt = Vec::new();
        write_text(&mut txt, &packets).unwrap();
        let from_txt = read_text(&txt[..]).unwrap();
        assert_eq!(from_bin, from_txt);
    }
}
