//! Libpcap-format export/import.
//!
//! Bridges the synthetic world and real tooling: generated traces can be
//! opened in Wireshark/tcpdump, and (synthesized) captures written by this
//! module can be read back. Frames are built as Ethernet II + IPv4 +
//! TCP/UDP with correct lengths; other protocols carry the payload raw
//! above IPv4.
//!
//! Fidelity notes: the `Packet` model stores a snaplen-style payload prefix
//! and a separate wire length, so `orig_len` records the wire length while
//! `incl_len` covers the synthesized frame. TCP and UDP packets round-trip
//! exactly (timestamps, addresses, ports, seq/ack, flags, payload, wire
//! length ≥ header sizes); ICMP/other lose port fields (they have none).

use crate::packet::{Packet, Proto, TcpFlags};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::io::{Read, Write};

/// pcap magic, microsecond timestamps, little-endian.
pub const PCAP_MAGIC: u32 = 0xa1b2_c3d4;
const LINKTYPE_ETHERNET: u32 = 1;
const ETH_LEN: usize = 14;
const IP_LEN: usize = 20;
const TCP_LEN: usize = 20;
const UDP_LEN: usize = 8;

/// Errors from pcap I/O.
#[derive(Debug)]
pub enum PcapError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Wrong magic number.
    BadMagic(u32),
    /// Unsupported link type (only Ethernet is read).
    BadLinkType(u32),
    /// Truncated file or frame.
    Truncated,
}

impl std::fmt::Display for PcapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PcapError::Io(e) => write!(f, "I/O error: {e}"),
            PcapError::BadMagic(m) => write!(f, "bad pcap magic {m:#x}"),
            PcapError::BadLinkType(t) => write!(f, "unsupported link type {t}"),
            PcapError::Truncated => write!(f, "truncated pcap"),
        }
    }
}

impl std::error::Error for PcapError {}

impl From<std::io::Error> for PcapError {
    fn from(e: std::io::Error) -> Self {
        PcapError::Io(e)
    }
}

fn l4_header_len(proto: Proto) -> usize {
    match proto {
        Proto::Tcp => TCP_LEN,
        Proto::Udp => UDP_LEN,
        _ => 0,
    }
}

/// Write a trace as a pcap file.
pub fn write_pcap<W: Write>(mut w: W, packets: &[Packet]) -> Result<(), PcapError> {
    let mut buf = BytesMut::with_capacity(24 + packets.len() * 96);
    buf.put_u32_le(PCAP_MAGIC);
    buf.put_u16_le(2); // version major
    buf.put_u16_le(4); // version minor
    buf.put_i32_le(0); // thiszone
    buf.put_u32_le(0); // sigfigs
    buf.put_u32_le(65535); // snaplen
    buf.put_u32_le(LINKTYPE_ETHERNET);

    for p in packets {
        let frame = build_frame(p);
        let orig = (ETH_LEN + p.len as usize).max(frame.len());
        buf.put_u32_le((p.ts_us / 1_000_000) as u32);
        buf.put_u32_le((p.ts_us % 1_000_000) as u32);
        buf.put_u32_le(frame.len() as u32);
        buf.put_u32_le(orig as u32);
        buf.put_slice(&frame);
        if buf.len() > 1 << 20 {
            w.write_all(&buf)?;
            buf.clear();
        }
    }
    w.write_all(&buf)?;
    Ok(())
}

fn build_frame(p: &Packet) -> Vec<u8> {
    let l4 = l4_header_len(p.proto);
    let ip_total = IP_LEN + l4 + p.payload.len();
    let mut f = Vec::with_capacity(ETH_LEN + ip_total);
    // Ethernet II: synthetic MACs, EtherType IPv4.
    f.extend_from_slice(&[0x02, 0, 0, 0, 0, 0x01]);
    f.extend_from_slice(&[0x02, 0, 0, 0, 0, 0x02]);
    f.extend_from_slice(&0x0800u16.to_be_bytes());
    // IPv4 header (no options, no checksum computation — tooling tolerates
    // zero checksums and we are not on a wire).
    f.push(0x45); // version + IHL
    f.push(0); // DSCP/ECN
    f.extend_from_slice(&(ip_total as u16).to_be_bytes());
    f.extend_from_slice(&[0, 0, 0, 0]); // id, flags+fragment
    f.push(64); // TTL
    f.push(p.proto.number());
    f.extend_from_slice(&[0, 0]); // checksum
    f.extend_from_slice(&p.src_ip.to_be_bytes());
    f.extend_from_slice(&p.dst_ip.to_be_bytes());
    match p.proto {
        Proto::Tcp => {
            f.extend_from_slice(&p.src_port.to_be_bytes());
            f.extend_from_slice(&p.dst_port.to_be_bytes());
            f.extend_from_slice(&p.seq.to_be_bytes());
            f.extend_from_slice(&p.ack.to_be_bytes());
            f.push(0x50); // data offset = 5 words
            f.push(p.flags.0);
            f.extend_from_slice(&[0xff, 0xff]); // window
            f.extend_from_slice(&[0, 0, 0, 0]); // checksum + urgent
        }
        Proto::Udp => {
            f.extend_from_slice(&p.src_port.to_be_bytes());
            f.extend_from_slice(&p.dst_port.to_be_bytes());
            f.extend_from_slice(&((UDP_LEN + p.payload.len()) as u16).to_be_bytes());
            f.extend_from_slice(&[0, 0]); // checksum
        }
        _ => {}
    }
    f.extend_from_slice(&p.payload);
    f
}

/// Read a pcap file back into packets. Non-IPv4 frames are skipped.
pub fn read_pcap<R: Read>(mut r: R) -> Result<Vec<Packet>, PcapError> {
    let mut raw = Vec::new();
    r.read_to_end(&mut raw)?;
    let mut buf = Bytes::from(raw);
    if buf.remaining() < 24 {
        return Err(PcapError::Truncated);
    }
    let magic = buf.get_u32_le();
    if magic != PCAP_MAGIC {
        return Err(PcapError::BadMagic(magic));
    }
    buf.advance(12); // version, thiszone, sigfigs
    buf.advance(4); // snaplen
    let linktype = buf.get_u32_le();
    if linktype != LINKTYPE_ETHERNET {
        return Err(PcapError::BadLinkType(linktype));
    }

    let mut out = Vec::new();
    while buf.remaining() > 0 {
        if buf.remaining() < 16 {
            return Err(PcapError::Truncated);
        }
        let ts_sec = buf.get_u32_le() as u64;
        let ts_usec = buf.get_u32_le() as u64;
        let incl = buf.get_u32_le() as usize;
        let orig = buf.get_u32_le() as usize;
        if buf.remaining() < incl {
            return Err(PcapError::Truncated);
        }
        let frame = buf.copy_to_bytes(incl);
        if let Some(p) = parse_frame(&frame, ts_sec * 1_000_000 + ts_usec, orig) {
            out.push(p);
        }
    }
    Ok(out)
}

fn parse_frame(frame: &[u8], ts_us: u64, orig: usize) -> Option<Packet> {
    if frame.len() < ETH_LEN + IP_LEN {
        return None;
    }
    let ethertype = u16::from_be_bytes([frame[12], frame[13]]);
    if ethertype != 0x0800 {
        return None;
    }
    let ip = &frame[ETH_LEN..];
    let ihl = ((ip[0] & 0x0f) as usize) * 4;
    if ip.len() < ihl {
        return None;
    }
    let proto = Proto::from_number(ip[9]);
    let src_ip = u32::from_be_bytes([ip[12], ip[13], ip[14], ip[15]]);
    let dst_ip = u32::from_be_bytes([ip[16], ip[17], ip[18], ip[19]]);
    let l4 = &ip[ihl..];
    let (src_port, dst_port, seq, ack, flags, payload) = match proto {
        Proto::Tcp if l4.len() >= TCP_LEN => {
            let off = ((l4[12] >> 4) as usize) * 4;
            if l4.len() < off {
                return None;
            }
            (
                u16::from_be_bytes([l4[0], l4[1]]),
                u16::from_be_bytes([l4[2], l4[3]]),
                u32::from_be_bytes([l4[4], l4[5], l4[6], l4[7]]),
                u32::from_be_bytes([l4[8], l4[9], l4[10], l4[11]]),
                TcpFlags(l4[13] & 0x1f),
                l4[off..].to_vec(),
            )
        }
        Proto::Udp if l4.len() >= UDP_LEN => (
            u16::from_be_bytes([l4[0], l4[1]]),
            u16::from_be_bytes([l4[2], l4[3]]),
            0,
            0,
            TcpFlags::default(),
            l4[UDP_LEN..].to_vec(),
        ),
        _ => (0, 0, 0, 0, TcpFlags::default(), l4.to_vec()),
    };
    Some(Packet {
        ts_us,
        src_ip,
        dst_ip,
        src_port,
        dst_port,
        proto,
        len: orig.saturating_sub(ETH_LEN).min(u16::MAX as usize) as u16,
        flags,
        seq,
        ack,
        payload,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tcp_packet() -> Packet {
        Packet {
            ts_us: 1_234_567,
            src_ip: 0x0a00_0001,
            dst_ip: 0x0808_0808,
            src_port: 40000,
            dst_port: 80,
            proto: Proto::Tcp,
            len: 60,
            flags: TcpFlags::syn(),
            seq: 1000,
            ack: 2000,
            payload: b"GET /".to_vec(),
        }
    }

    #[test]
    fn tcp_round_trips_exactly() {
        let mut p = tcp_packet();
        // Wire length must cover the synthesized headers for exactness.
        p.len = (IP_LEN + TCP_LEN + p.payload.len()) as u16;
        let mut buf = Vec::new();
        write_pcap(&mut buf, std::slice::from_ref(&p)).unwrap();
        let back = read_pcap(&buf[..]).unwrap();
        assert_eq!(back, vec![p]);
    }

    #[test]
    fn udp_round_trips_exactly() {
        let p = Packet {
            proto: Proto::Udp,
            flags: TcpFlags::default(),
            seq: 0,
            ack: 0,
            len: (IP_LEN + UDP_LEN + 5) as u16,
            ..tcp_packet()
        };
        let mut buf = Vec::new();
        write_pcap(&mut buf, std::slice::from_ref(&p)).unwrap();
        assert_eq!(read_pcap(&buf[..]).unwrap(), vec![p]);
    }

    #[test]
    fn generated_trace_round_trips() {
        use crate::gen::hotspot::{generate, HotspotConfig};
        let trace = generate(HotspotConfig {
            web_flows: 40,
            worms_above_threshold: 1,
            worms_below_threshold: 0,
            stepping_stone_pairs: 1,
            interactive_decoys: 1,
            itemset_hosts: 5,
            ..HotspotConfig::default()
        });
        let mut buf = Vec::new();
        write_pcap(&mut buf, &trace.packets).unwrap();
        let back = read_pcap(&buf[..]).unwrap();
        assert_eq!(back.len(), trace.packets.len());
        // Key analytical fields survive for every packet.
        for (a, b) in back.iter().zip(&trace.packets) {
            assert_eq!(a.ts_us, b.ts_us);
            assert_eq!(a.src_ip, b.src_ip);
            assert_eq!(a.dst_ip, b.dst_ip);
            assert_eq!(a.proto, b.proto);
            assert_eq!(a.flags, b.flags);
            assert_eq!(a.payload, b.payload);
            if a.proto == Proto::Tcp {
                assert_eq!((a.src_port, a.dst_port), (b.src_port, b.dst_port));
                assert_eq!((a.seq, a.ack), (b.seq, b.ack));
                assert_eq!(a.len, b.len, "wire length");
            }
        }
    }

    #[test]
    fn header_is_a_valid_pcap_preamble() {
        let mut buf = Vec::new();
        write_pcap(&mut buf, &[]).unwrap();
        assert_eq!(buf.len(), 24);
        assert_eq!(
            u32::from_le_bytes(buf[0..4].try_into().unwrap()),
            PCAP_MAGIC
        );
        assert_eq!(u16::from_le_bytes(buf[4..6].try_into().unwrap()), 2);
        assert_eq!(u16::from_le_bytes(buf[6..8].try_into().unwrap()), 4);
        assert_eq!(
            u32::from_le_bytes(buf[20..24].try_into().unwrap()),
            LINKTYPE_ETHERNET
        );
    }

    #[test]
    fn bad_inputs_are_rejected() {
        assert!(matches!(read_pcap(&b""[..]), Err(PcapError::Truncated)));
        let mut buf = Vec::new();
        write_pcap(&mut buf, &[tcp_packet()]).unwrap();
        buf[0] = 0;
        assert!(matches!(read_pcap(&buf[..]), Err(PcapError::BadMagic(_))));
        let mut buf2 = Vec::new();
        write_pcap(&mut buf2, &[tcp_packet()]).unwrap();
        buf2.truncate(buf2.len() - 3);
        assert!(matches!(read_pcap(&buf2[..]), Err(PcapError::Truncated)));
    }

    #[test]
    fn non_ipv4_frames_are_skipped() {
        // Hand-build a pcap with one ARP frame.
        let mut buf = Vec::new();
        write_pcap(&mut buf, &[]).unwrap();
        let frame = {
            let mut f = vec![0u8; ETH_LEN];
            f[12] = 0x08;
            f[13] = 0x06; // ARP
            f
        };
        buf.extend_from_slice(&0u32.to_le_bytes()); // ts_sec
        buf.extend_from_slice(&0u32.to_le_bytes()); // ts_usec
        buf.extend_from_slice(&(frame.len() as u32).to_le_bytes());
        buf.extend_from_slice(&(frame.len() as u32).to_le_bytes());
        buf.extend_from_slice(&frame);
        assert!(read_pcap(&buf[..]).unwrap().is_empty());
    }
}
