//! Packet classification (the substrate behind §5.1.3's remark that
//! "various classification algorithms [Gupta & McKeown] can also be
//! implemented in the differentially private manner").
//!
//! A classifier is an ordered rule list over the classic five dimensions
//! (source/destination prefix, source/destination port range, protocol);
//! a packet matches the first rule that covers it. Two engines:
//!
//! * [`Classifier::classify`] — linear first-match scan (the reference).
//! * [`DecisionTree`] — a HiCuts-flavoured decision tree that repeatedly
//!   cuts the heaviest dimension until leaves hold few rules; equivalent to
//!   the linear scan (property-tested) but sub-linear per packet.
//!
//! The DP analysis layer (`dpnet_analyses::classification`) partitions
//! packets by matched rule, so per-rule traffic shares cost one ε total.

use crate::packet::Packet;
use std::fmt;

/// An IPv4 prefix match, e.g. `10.0.0.0/8`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prefix {
    /// Network address (host byte order).
    pub addr: u32,
    /// Prefix length in bits, 0–32. Zero matches everything.
    pub len: u8,
}

impl Prefix {
    /// The match-all prefix (`0.0.0.0/0`).
    pub const ANY: Prefix = Prefix { addr: 0, len: 0 };

    /// Build a prefix, masking the address to its length.
    pub fn new(addr: u32, len: u8) -> Self {
        assert!(len <= 32, "prefix length {len} out of range");
        Prefix {
            addr: addr & Self::mask(len),
            len,
        }
    }

    fn mask(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len)
        }
    }

    /// Whether `ip` falls inside the prefix.
    pub fn contains(&self, ip: u32) -> bool {
        ip & Self::mask(self.len) == self.addr
    }

    /// Parse `a.b.c.d/len` (or a bare address, meaning `/32`).
    pub fn parse(s: &str) -> Option<Prefix> {
        if s == "any" {
            return Some(Prefix::ANY);
        }
        let (ip, len) = match s.split_once('/') {
            Some((ip, len)) => (ip, len.parse().ok()?),
            None => (s, 32),
        };
        if len > 32 {
            return None;
        }
        Some(Prefix::new(crate::packet::parse_ip(ip)?, len))
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.len == 0 {
            write!(f, "any")
        } else {
            write!(f, "{}/{}", crate::packet::format_ip(self.addr), self.len)
        }
    }
}

/// An inclusive port range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortRange {
    /// Low end, inclusive.
    pub lo: u16,
    /// High end, inclusive.
    pub hi: u16,
}

impl PortRange {
    /// The match-all range.
    pub const ANY: PortRange = PortRange {
        lo: 0,
        hi: u16::MAX,
    };

    /// A single-port range.
    pub fn exactly(p: u16) -> Self {
        PortRange { lo: p, hi: p }
    }

    /// Whether `p` falls inside the range.
    pub fn contains(&self, p: u16) -> bool {
        self.lo <= p && p <= self.hi
    }

    /// Parse `any`, `N`, or `N-M`.
    pub fn parse(s: &str) -> Option<PortRange> {
        if s == "any" {
            return Some(PortRange::ANY);
        }
        match s.split_once('-') {
            Some((lo, hi)) => {
                let (lo, hi) = (lo.parse().ok()?, hi.parse().ok()?);
                if lo > hi {
                    return None;
                }
                Some(PortRange { lo, hi })
            }
            None => Some(PortRange::exactly(s.parse().ok()?)),
        }
    }
}

/// One classification rule over the standard five dimensions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    /// Human-readable label (e.g. "web-in").
    pub name: String,
    /// Source prefix.
    pub src: Prefix,
    /// Destination prefix.
    pub dst: Prefix,
    /// Source port range.
    pub sport: PortRange,
    /// Destination port range.
    pub dport: PortRange,
    /// IANA protocol number, or `None` for any.
    pub proto: Option<u8>,
}

impl Rule {
    /// Whether the rule covers a packet.
    pub fn matches(&self, p: &Packet) -> bool {
        self.src.contains(p.src_ip)
            && self.dst.contains(p.dst_ip)
            && self.sport.contains(p.src_port)
            && self.dport.contains(p.dst_port)
            && self.proto.map(|n| n == p.proto.number()).unwrap_or(true)
    }

    /// Parse one rule line:
    /// `<name> <proto|any> <src> <sport> -> <dst> <dport>`
    /// e.g. `web-in tcp any any -> 10.0.0.0/8 80`.
    pub fn parse(line: &str) -> Result<Rule, String> {
        let t: Vec<&str> = line.split_whitespace().collect();
        if t.len() != 7 || t[4] != "->" {
            return Err(format!("expected 7 fields with '->', got: {line}"));
        }
        let proto = match t[1] {
            "any" => None,
            "tcp" => Some(6),
            "udp" => Some(17),
            "icmp" => Some(1),
            other => Some(other.parse().map_err(|_| format!("bad protocol {other}"))?),
        };
        Ok(Rule {
            name: t[0].to_string(),
            proto,
            src: Prefix::parse(t[2]).ok_or_else(|| format!("bad src {}", t[2]))?,
            sport: PortRange::parse(t[3]).ok_or_else(|| format!("bad sport {}", t[3]))?,
            dst: Prefix::parse(t[5]).ok_or_else(|| format!("bad dst {}", t[5]))?,
            dport: PortRange::parse(t[6]).ok_or_else(|| format!("bad dport {}", t[6]))?,
        })
    }
}

/// An ordered rule list with first-match semantics.
#[derive(Debug, Clone, PartialEq)]
pub struct Classifier {
    rules: Vec<Rule>,
}

impl Classifier {
    /// Build from an ordered rule list.
    pub fn new(rules: Vec<Rule>) -> Self {
        Classifier { rules }
    }

    /// Parse a rule file: one rule per line, `#` comments and blank lines
    /// skipped.
    pub fn parse(text: &str) -> Result<Classifier, String> {
        let mut rules = Vec::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            rules.push(Rule::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?);
        }
        Ok(Classifier { rules })
    }

    /// The rules, in priority order.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// First-match classification: the index of the matching rule.
    pub fn classify(&self, p: &Packet) -> Option<usize> {
        self.rules.iter().position(|r| r.matches(p))
    }
}

/// Dimensions a decision-tree node can cut on.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Cut {
    /// Split on a destination-port boundary: `< value` goes left.
    DstPort(u16),
    /// Split on a source-address boundary.
    SrcAddr(u32),
    /// Split on a destination-address boundary.
    DstAddr(u32),
}

#[derive(Debug)]
enum Node {
    Leaf(Vec<usize>), // rule indices, priority order
    Inner {
        cut: Cut,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// A HiCuts-flavoured decision tree over a [`Classifier`]: recursively
/// bisect the dimension that best separates the remaining rules, stop when
/// a leaf holds at most `leaf_size` rules (or no cut makes progress).
/// Classification descends to a leaf, then linear-scans its few rules.
#[derive(Debug)]
pub struct DecisionTree {
    classifier: Classifier,
    root: Node,
    depth: usize,
}

/// The sub-space a node covers (used only at build time).
#[derive(Debug, Clone, Copy)]
struct Region {
    src: (u32, u32),
    dst: (u32, u32),
    dport: (u16, u16),
}

impl Region {
    const FULL: Region = Region {
        src: (0, u32::MAX),
        dst: (0, u32::MAX),
        dport: (0, u16::MAX),
    };
}

fn rule_overlaps(rule: &Rule, reg: &Region) -> bool {
    let (plo, phi) = prefix_range(rule.src);
    if phi < reg.src.0 || plo > reg.src.1 {
        return false;
    }
    let (plo, phi) = prefix_range(rule.dst);
    if phi < reg.dst.0 || plo > reg.dst.1 {
        return false;
    }
    !(rule.dport.hi < reg.dport.0 || rule.dport.lo > reg.dport.1)
}

fn prefix_range(p: Prefix) -> (u32, u32) {
    let mask = if p.len == 0 {
        0
    } else {
        u32::MAX << (32 - p.len)
    };
    (p.addr, p.addr | !mask)
}

impl DecisionTree {
    /// Build a tree. `leaf_size` bounds the rules per leaf; `max_depth`
    /// bounds recursion.
    pub fn build(classifier: Classifier, leaf_size: usize, max_depth: usize) -> Self {
        let all: Vec<usize> = (0..classifier.rules().len()).collect();
        let (root, depth) =
            Self::build_node(&classifier, all, Region::FULL, leaf_size.max(1), max_depth);
        DecisionTree {
            classifier,
            root,
            depth,
        }
    }

    fn build_node(
        cls: &Classifier,
        rules: Vec<usize>,
        region: Region,
        leaf_size: usize,
        depth_left: usize,
    ) -> (Node, usize) {
        if rules.len() <= leaf_size || depth_left == 0 {
            return (Node::Leaf(rules), 0);
        }
        // Candidate cuts: the median *rule boundary* inside the region, per
        // dimension — boundary cuts separate rules where midpoints cannot
        // (real rule sets cluster at low ports).
        let mut candidates = Vec::new();
        {
            let mut bounds: Vec<u16> = rules
                .iter()
                .flat_map(|&i| {
                    let r = &cls.rules()[i].dport;
                    [r.lo, r.hi.saturating_add(1)]
                })
                .filter(|&v| v > region.dport.0 && v <= region.dport.1)
                .collect();
            bounds.sort_unstable();
            if let Some(&v) = bounds.get(bounds.len() / 2) {
                candidates.push(Cut::DstPort(v));
            }
        }
        for dim in [0usize, 1] {
            let mut bounds: Vec<u32> = rules
                .iter()
                .flat_map(|&i| {
                    let r = &cls.rules()[i];
                    let (lo, hi) = prefix_range(if dim == 0 { r.src } else { r.dst });
                    [lo, hi.saturating_add(1)]
                })
                .filter(|&v| {
                    let reg = if dim == 0 { region.src } else { region.dst };
                    v > reg.0 && v <= reg.1
                })
                .collect();
            bounds.sort_unstable();
            if let Some(&v) = bounds.get(bounds.len() / 2) {
                candidates.push(if dim == 0 {
                    Cut::SrcAddr(v)
                } else {
                    Cut::DstAddr(v)
                });
            }
        }
        #[allow(clippy::type_complexity)]
        let mut best: Option<(Cut, Vec<usize>, Vec<usize>, Region, Region)> = None;
        let mut best_score = rules.len(); // the larger side must shrink
        for cut in candidates {
            let (lr, rr) = split_region(region, cut);
            let left: Vec<usize> = rules
                .iter()
                .cloned()
                .filter(|&i| rule_overlaps(&cls.rules()[i], &lr))
                .collect();
            let right: Vec<usize> = rules
                .iter()
                .cloned()
                .filter(|&i| rule_overlaps(&cls.rules()[i], &rr))
                .collect();
            let score = left.len().max(right.len());
            if score < best_score {
                best_score = score;
                best = Some((cut, left, right, lr, rr));
            }
        }
        match best {
            None => (Node::Leaf(rules), 0),
            Some((cut, left, right, lr, rr)) => {
                let (lnode, ld) = Self::build_node(cls, left, lr, leaf_size, depth_left - 1);
                let (rnode, rd) = Self::build_node(cls, right, rr, leaf_size, depth_left - 1);
                (
                    Node::Inner {
                        cut,
                        left: Box::new(lnode),
                        right: Box::new(rnode),
                    },
                    1 + ld.max(rd),
                )
            }
        }
    }

    /// Tree depth (0 = a single leaf).
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// First-match classification via the tree; equivalent to
    /// `self.classifier().classify(p)`.
    pub fn classify(&self, p: &Packet) -> Option<usize> {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf(rules) => {
                    return rules
                        .iter()
                        .cloned()
                        .find(|&i| self.classifier.rules()[i].matches(p));
                }
                Node::Inner { cut, left, right } => {
                    let go_left = match *cut {
                        Cut::DstPort(v) => p.dst_port < v,
                        Cut::SrcAddr(v) => p.src_ip < v,
                        Cut::DstAddr(v) => p.dst_ip < v,
                    };
                    node = if go_left { left } else { right };
                }
            }
        }
    }

    /// The underlying classifier.
    pub fn classifier(&self) -> &Classifier {
        &self.classifier
    }
}

fn split_region(r: Region, cut: Cut) -> (Region, Region) {
    let mut l = r;
    let mut rr = r;
    match cut {
        Cut::DstPort(v) => {
            l.dport.1 = v.saturating_sub(1);
            rr.dport.0 = v;
        }
        Cut::SrcAddr(v) => {
            l.src.1 = v.saturating_sub(1);
            rr.src.0 = v;
        }
        Cut::DstAddr(v) => {
            l.dst.1 = v.saturating_sub(1);
            rr.dst.0 = v;
        }
    }
    (l, rr)
}

/// A small realistic rule set used by examples and experiments.
pub fn example_ruleset() -> Classifier {
    Classifier::parse(
        "# enterprise-ish edge policy
         web-in     tcp any any -> any 80
         tls-in     tcp any any -> any 443
         dns        udp any any -> any 53
         ssh-mgmt   tcp 10.0.0.0/8 any -> any 22
         mail       tcp any any -> any 25
         smb-block  tcp any any -> any 445
         imaps      tcp any any -> any 993
         high-tcp   tcp any any -> any 1024-65535
         catch-all  any any any -> any any",
    )
    .expect("example ruleset parses")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Proto, TcpFlags};

    fn pkt(src: u32, dst: u32, sport: u16, dport: u16, proto: Proto) -> Packet {
        Packet {
            ts_us: 0,
            src_ip: src,
            dst_ip: dst,
            src_port: sport,
            dst_port: dport,
            proto,
            len: 40,
            flags: TcpFlags::ack(),
            seq: 0,
            ack: 0,
            payload: vec![],
        }
    }

    #[test]
    fn prefix_matching_and_parsing() {
        let p = Prefix::parse("10.0.0.0/8").unwrap();
        assert!(p.contains(0x0a01_0203));
        assert!(!p.contains(0x0b00_0000));
        assert_eq!(Prefix::parse("any"), Some(Prefix::ANY));
        assert!(Prefix::ANY.contains(0xdead_beef));
        // Bare address means /32.
        let host = Prefix::parse("192.168.69.100").unwrap();
        assert_eq!(host.len, 32);
        assert!(host.contains(crate::packet::parse_ip("192.168.69.100").unwrap()));
        assert!(Prefix::parse("10.0.0.0/33").is_none());
        // Address bits beyond the mask are dropped.
        assert_eq!(Prefix::new(0x0a01_0203, 8).addr, 0x0a00_0000);
    }

    #[test]
    fn port_range_parsing() {
        assert_eq!(PortRange::parse("80"), Some(PortRange::exactly(80)));
        assert_eq!(
            PortRange::parse("1024-65535"),
            Some(PortRange {
                lo: 1024,
                hi: 65535
            })
        );
        assert_eq!(PortRange::parse("any"), Some(PortRange::ANY));
        assert!(PortRange::parse("90-80").is_none());
        assert!(PortRange::parse("x").is_none());
    }

    #[test]
    fn first_match_semantics() {
        let cls = example_ruleset();
        // Port 80 TCP hits web-in even though high-tcp would also match…
        let idx = cls.classify(&pkt(1, 2, 40000, 80, Proto::Tcp)).unwrap();
        assert_eq!(cls.rules()[idx].name, "web-in");
        // …and catch-all picks up everything else.
        let idx = cls.classify(&pkt(1, 2, 1, 7, Proto::Icmp)).unwrap();
        assert_eq!(cls.rules()[idx].name, "catch-all");
        // ssh-mgmt only for the management prefix.
        let inside = cls
            .classify(&pkt(0x0a00_0001, 2, 40000, 22, Proto::Tcp))
            .unwrap();
        assert_eq!(cls.rules()[inside].name, "ssh-mgmt");
        let outside = cls
            .classify(&pkt(0x0b00_0001, 2, 40000, 22, Proto::Tcp))
            .unwrap();
        assert_ne!(cls.rules()[outside].name, "ssh-mgmt");
    }

    #[test]
    fn parser_rejects_malformed_rules() {
        assert!(Rule::parse("too few fields").is_err());
        assert!(Rule::parse("r tcp any any => any 80").is_err());
        assert!(Rule::parse("r xyz any any -> any 80").is_err());
        assert!(Rule::parse("r tcp 10.0.0.0/40 any -> any 80").is_err());
        assert!(Classifier::parse("# only comments\n\n")
            .unwrap()
            .rules()
            .is_empty());
    }

    #[test]
    fn decision_tree_matches_linear_scan() {
        let cls = example_ruleset();
        let tree = DecisionTree::build(cls.clone(), 2, 16);
        assert!(tree.depth() > 0, "tree did not split");
        // Exhaustive-ish sweep over interesting coordinates.
        let ports = [
            0u16, 22, 25, 53, 79, 80, 81, 443, 445, 993, 1023, 1024, 60000,
        ];
        let addrs = [0u32, 0x0a00_0001, 0x0aff_ffff, 0x0b00_0000, 0xffff_ffff];
        let protos = [Proto::Tcp, Proto::Udp, Proto::Icmp];
        for &sp in &ports {
            for &dp in &ports {
                for &src in &addrs {
                    for &proto in &protos {
                        let p = pkt(src, 0x0102_0304, sp, dp, proto);
                        assert_eq!(tree.classify(&p), cls.classify(&p), "divergence at {p:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn rule_display_round_trips_prefixes() {
        let p = Prefix::parse("10.0.0.0/8").unwrap();
        assert_eq!(Prefix::parse(&p.to_string()), Some(p));
        assert_eq!(Prefix::ANY.to_string(), "any");
    }
}
