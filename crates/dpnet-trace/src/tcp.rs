//! TCP-level trace interpretation: handshakes, retransmissions, activations.
//!
//! These are the *noise-free* reference computations the paper compares its
//! private implementations against:
//!
//! * RTT from the SYN → SYN-ACK handshake (Swing, §5.2.1);
//! * downstream loss rate from retransmissions — duplicate sequence numbers
//!   within a flow (§5.2.1);
//! * retransmission time differences (the Figure 1 distribution);
//! * idle→active *activation* events at a timeout `T_idle` (stepping-stone
//!   detection, §5.2.2).

use crate::flow::{assemble_flows, FlowKey};
use crate::packet::Packet;
use std::collections::{HashMap, HashSet};

/// RTT samples, one per observed SYN/SYN-ACK handshake, in microseconds.
///
/// A SYN from `c → s` with sequence `x` is matched with the first
/// SYN-ACK from `s → c` whose acknowledgment is `x + 1`, and the time
/// difference is the handshake RTT at the monitor. Considering only the
/// handshake means delayed acknowledgments do not perturb the estimate.
pub fn handshake_rtts(packets: &[Packet]) -> Vec<u64> {
    // Map (src, dst, sport, dport, expected_ack) -> syn timestamp.
    let mut pending: HashMap<(u32, u32, u16, u16, u32), u64> = HashMap::new();
    let mut rtts = Vec::new();
    for p in packets {
        if p.flags.is_syn() && !p.flags.is_ack() {
            pending
                .entry((
                    p.src_ip,
                    p.dst_ip,
                    p.src_port,
                    p.dst_port,
                    p.seq.wrapping_add(1),
                ))
                .or_insert(p.ts_us);
        } else if p.flags.is_syn() && p.flags.is_ack() {
            let key = (p.dst_ip, p.src_ip, p.dst_port, p.src_port, p.ack);
            if let Some(t_syn) = pending.remove(&key) {
                rtts.push(p.ts_us.saturating_sub(t_syn));
            }
        }
    }
    rtts
}

/// Per-flow downstream loss rate, Swing-style: within each directed flow,
/// `1 − distinct(seq) / total` over TCP *data* packets (non-SYN, non-empty
/// payload), computed for flows with more than `min_packets` data packets.
/// Returns `(flow, loss_rate)` pairs.
pub fn flow_loss_rates(packets: &[Packet], min_packets: usize) -> Vec<(FlowKey, f64)> {
    let data: Vec<Packet> = packets
        .iter()
        .filter(|p| FlowKey::of(p).is_tcp() && !p.flags.is_syn() && !p.payload.is_empty())
        .cloned()
        .collect();
    assemble_flows(&data)
        .into_iter()
        .filter(|(_, pkts)| pkts.len() > min_packets)
        .map(|(k, pkts)| {
            let distinct: HashSet<u32> = pkts.iter().map(|p| p.seq).collect();
            let rate = 1.0 - distinct.len() as f64 / pkts.len() as f64;
            (k, rate)
        })
        .collect()
}

/// Time differences between each data packet and its retransmission, in
/// microseconds. A retransmission is a later packet in the same directed
/// flow with the same sequence number. Differences are measured between
/// consecutive transmissions of the same sequence number.
pub fn retransmission_delays(packets: &[Packet]) -> Vec<u64> {
    let mut last_seen: HashMap<(FlowKey, u32), u64> = HashMap::new();
    let mut delays = Vec::new();
    for p in packets {
        if !FlowKey::of(p).is_tcp() || p.flags.is_syn() || p.payload.is_empty() {
            continue;
        }
        let key = (FlowKey::of(p), p.seq);
        if let Some(prev) = last_seen.insert(key, p.ts_us) {
            delays.push(p.ts_us.saturating_sub(prev));
        }
    }
    delays
}

/// An idle→active transition of a flow: the first packet after at least
/// `t_idle_us` of silence on that flow (the flow's very first packet also
/// counts as an activation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Activation {
    /// The flow that became active.
    pub flow: FlowKey,
    /// Activation time (µs).
    pub ts_us: u64,
}

/// Extract all activations at idle threshold `t_idle_us` (the paper uses
/// `T_idle` = 0.5 s). This is the exact sliding-window computation; the
/// private analysis approximates it with bucketed grouping.
pub fn activations(packets: &[Packet], t_idle_us: u64) -> Vec<Activation> {
    let mut last: HashMap<FlowKey, u64> = HashMap::new();
    let mut out = Vec::new();
    for p in packets {
        let k = FlowKey::of(p);
        match last.get(&k) {
            None => out.push(Activation {
                flow: k,
                ts_us: p.ts_us,
            }),
            Some(&prev) if p.ts_us.saturating_sub(prev) >= t_idle_us => out.push(Activation {
                flow: k,
                ts_us: p.ts_us,
            }),
            _ => {}
        }
        last.insert(k, p.ts_us);
    }
    out
}

/// Correlation score between two flows' activation trains, following Zhang &
/// Paxson: the fraction of flow A's activations that are followed by an
/// activation of flow B within `delta_us` (the paper uses δ = 40 ms),
/// relative to all of A's activations.
pub fn activation_correlation(a: &[u64], b: &[u64], delta_us: u64) -> f64 {
    if a.is_empty() {
        return 0.0;
    }
    let mut sorted_b = b.to_vec();
    sorted_b.sort_unstable();
    let mut correlated = 0usize;
    for &t in a {
        // Find any activation of B within [t, t + delta].
        let idx = sorted_b.partition_point(|&x| x < t);
        if idx < sorted_b.len() && sorted_b[idx] <= t.saturating_add(delta_us) {
            correlated += 1;
        }
    }
    correlated as f64 / a.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Proto, TcpFlags};

    #[allow(clippy::too_many_arguments)]
    fn tcp(
        ts: u64,
        src: u32,
        dst: u32,
        sp: u16,
        dp: u16,
        flags: TcpFlags,
        seq: u32,
        ack: u32,
        payload: usize,
    ) -> Packet {
        Packet {
            ts_us: ts,
            src_ip: src,
            dst_ip: dst,
            src_port: sp,
            dst_port: dp,
            proto: Proto::Tcp,
            len: (40 + payload) as u16,
            flags,
            seq,
            ack,
            payload: vec![0xab; payload],
        }
    }

    #[test]
    fn handshake_rtt_is_extracted() {
        let pkts = vec![
            tcp(1000, 1, 2, 40000, 80, TcpFlags::syn(), 100, 0, 0),
            tcp(51_000, 2, 1, 80, 40000, TcpFlags::syn_ack(), 500, 101, 0),
        ];
        assert_eq!(handshake_rtts(&pkts), vec![50_000]);
    }

    #[test]
    fn unmatched_synack_yields_no_rtt() {
        // Wrong ack number: not the handshake completion.
        let pkts = vec![
            tcp(0, 1, 2, 40000, 80, TcpFlags::syn(), 100, 0, 0),
            tcp(1000, 2, 1, 80, 40000, TcpFlags::syn_ack(), 500, 999, 0),
        ];
        assert!(handshake_rtts(&pkts).is_empty());
    }

    #[test]
    fn retransmitted_syn_uses_first_transmission() {
        let pkts = vec![
            tcp(0, 1, 2, 40000, 80, TcpFlags::syn(), 100, 0, 0),
            tcp(200_000, 1, 2, 40000, 80, TcpFlags::syn(), 100, 0, 0),
            tcp(250_000, 2, 1, 80, 40000, TcpFlags::syn_ack(), 7, 101, 0),
        ];
        // RTT measured from the first SYN, as a monitor would.
        assert_eq!(handshake_rtts(&pkts), vec![250_000]);
    }

    #[test]
    fn loss_rate_counts_duplicate_sequence_numbers() {
        let mut pkts = Vec::new();
        // 20 distinct data packets, 5 retransmitted once → loss 5/25.
        for i in 0..20u32 {
            pkts.push(tcp(
                i as u64 * 1000,
                1,
                2,
                10,
                80,
                TcpFlags::ack(),
                i * 1000,
                0,
                100,
            ));
        }
        for i in 0..5u32 {
            pkts.push(tcp(
                100_000 + i as u64,
                1,
                2,
                10,
                80,
                TcpFlags::ack(),
                i * 1000,
                0,
                100,
            ));
        }
        let rates = flow_loss_rates(&pkts, 10);
        assert_eq!(rates.len(), 1);
        assert!((rates[0].1 - 0.2).abs() < 1e-9);
    }

    #[test]
    fn small_flows_are_excluded_from_loss() {
        let pkts = vec![tcp(0, 1, 2, 10, 80, TcpFlags::ack(), 0, 0, 100)];
        assert!(flow_loss_rates(&pkts, 10).is_empty());
    }

    #[test]
    fn retransmission_delays_are_pairwise() {
        let pkts = vec![
            tcp(0, 1, 2, 10, 80, TcpFlags::ack(), 42, 0, 100),
            tcp(30_000, 1, 2, 10, 80, TcpFlags::ack(), 42, 0, 100),
            tcp(90_000, 1, 2, 10, 80, TcpFlags::ack(), 42, 0, 100),
        ];
        assert_eq!(retransmission_delays(&pkts), vec![30_000, 60_000]);
    }

    #[test]
    fn pure_acks_do_not_count_as_retransmissions() {
        let pkts = vec![
            tcp(0, 1, 2, 10, 80, TcpFlags::ack(), 42, 0, 0),
            tcp(1000, 1, 2, 10, 80, TcpFlags::ack(), 42, 0, 0),
        ];
        assert!(retransmission_delays(&pkts).is_empty());
    }

    #[test]
    fn activations_fire_after_idle_timeout() {
        let pkts = vec![
            tcp(0, 1, 2, 10, 80, TcpFlags::ack(), 0, 0, 10), // first → activation
            tcp(100_000, 1, 2, 10, 80, TcpFlags::ack(), 1, 0, 10), // busy
            tcp(700_000, 1, 2, 10, 80, TcpFlags::ack(), 2, 0, 10), // idle 600ms → activation
        ];
        let acts = activations(&pkts, 500_000);
        assert_eq!(acts.len(), 2);
        assert_eq!(acts[1].ts_us, 700_000);
    }

    #[test]
    fn correlation_counts_nearby_activations() {
        let a = vec![0, 1_000_000, 2_000_000, 3_000_000];
        let b = vec![10_000, 1_010_000, 2_500_000];
        // First two activations of A are followed by B within 40 ms.
        let c = activation_correlation(&a, &b, 40_000);
        assert!((c - 0.5).abs() < 1e-9);
    }

    #[test]
    fn correlation_of_empty_train_is_zero() {
        assert_eq!(activation_correlation(&[], &[1], 1000), 0.0);
    }
}
