//! Flow abstraction: the standard 5-tuple and flow assembly.
//!
//! "A flow refers to the standard 5-tuple" (paper §5.2.1). This module
//! provides the key type, directionless canonicalization (so both directions
//! of a TCP conversation map to one bidirectional flow when desired), and
//! helpers to assemble per-flow packet lists — used by the non-private
//! baseline implementations and by the trace generators' self-checks.

use crate::packet::{Packet, Proto};
use std::collections::HashMap;

/// The standard directed 5-tuple flow key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowKey {
    /// Source IPv4 address.
    pub src_ip: u32,
    /// Destination IPv4 address.
    pub dst_ip: u32,
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// IANA protocol number.
    pub proto: u8,
}

impl FlowKey {
    /// Extract the directed flow key of a packet.
    pub fn of(p: &Packet) -> Self {
        FlowKey {
            src_ip: p.src_ip,
            dst_ip: p.dst_ip,
            src_port: p.src_port,
            dst_port: p.dst_port,
            proto: p.proto.number(),
        }
    }

    /// The key of the reverse direction.
    pub fn reversed(self) -> Self {
        FlowKey {
            src_ip: self.dst_ip,
            dst_ip: self.src_ip,
            src_port: self.dst_port,
            dst_port: self.src_port,
            proto: self.proto,
        }
    }

    /// Canonical bidirectional key: the lexicographically smaller of the
    /// two directions, so a conversation's packets share one key.
    pub fn canonical(self) -> Self {
        let rev = self.reversed();
        if (self.src_ip, self.src_port) <= (rev.src_ip, rev.src_port) {
            self
        } else {
            rev
        }
    }

    /// Whether this is a TCP flow.
    pub fn is_tcp(&self) -> bool {
        self.proto == Proto::Tcp.number()
    }
}

/// Group packets into directed flows, preserving packet order within each
/// flow. Returns flows in first-appearance order.
pub fn assemble_flows(packets: &[Packet]) -> Vec<(FlowKey, Vec<&Packet>)> {
    let mut order: Vec<FlowKey> = Vec::new();
    let mut flows: HashMap<FlowKey, Vec<&Packet>> = HashMap::new();
    for p in packets {
        let k = FlowKey::of(p);
        flows
            .entry(k)
            .or_insert_with(|| {
                order.push(k);
                Vec::new()
            })
            .push(p);
    }
    order
        .into_iter()
        .map(|k| {
            let v = flows.remove(&k).expect("flow recorded on first sight");
            (k, v)
        })
        .collect()
}

/// Group packets into bidirectional conversations keyed canonically.
pub fn assemble_conversations(packets: &[Packet]) -> Vec<(FlowKey, Vec<&Packet>)> {
    let mut order: Vec<FlowKey> = Vec::new();
    let mut flows: HashMap<FlowKey, Vec<&Packet>> = HashMap::new();
    for p in packets {
        let k = FlowKey::of(p).canonical();
        flows
            .entry(k)
            .or_insert_with(|| {
                order.push(k);
                Vec::new()
            })
            .push(p);
    }
    order
        .into_iter()
        .map(|k| {
            let v = flows.remove(&k).expect("flow recorded on first sight");
            (k, v)
        })
        .collect()
}

/// Summary statistics of one directed flow, for generator self-checks and
/// baseline analyses.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowSummary {
    /// The flow key.
    pub key: FlowKey,
    /// Number of packets.
    pub packets: usize,
    /// Total bytes.
    pub bytes: u64,
    /// First packet timestamp (µs).
    pub first_ts_us: u64,
    /// Last packet timestamp (µs).
    pub last_ts_us: u64,
}

impl FlowSummary {
    /// Flow duration in microseconds.
    pub fn duration_us(&self) -> u64 {
        self.last_ts_us.saturating_sub(self.first_ts_us)
    }
}

/// Compute summaries for all directed flows in a trace.
pub fn summarize_flows(packets: &[Packet]) -> Vec<FlowSummary> {
    assemble_flows(packets)
        .into_iter()
        .map(|(key, pkts)| {
            let bytes = pkts.iter().map(|p| p.len as u64).sum();
            let first_ts_us = pkts.iter().map(|p| p.ts_us).min().unwrap_or(0);
            let last_ts_us = pkts.iter().map(|p| p.ts_us).max().unwrap_or(0);
            FlowSummary {
                key,
                packets: pkts.len(),
                bytes,
                first_ts_us,
                last_ts_us,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::TcpFlags;

    fn pkt(ts: u64, src: u32, dst: u32, sp: u16, dp: u16, len: u16) -> Packet {
        Packet {
            ts_us: ts,
            src_ip: src,
            dst_ip: dst,
            src_port: sp,
            dst_port: dp,
            proto: Proto::Tcp,
            len,
            flags: TcpFlags::ack(),
            seq: 0,
            ack: 0,
            payload: vec![],
        }
    }

    #[test]
    fn reversed_swaps_endpoints() {
        let k = FlowKey {
            src_ip: 1,
            dst_ip: 2,
            src_port: 10,
            dst_port: 20,
            proto: 6,
        };
        let r = k.reversed();
        assert_eq!(r.src_ip, 2);
        assert_eq!(r.dst_port, 10);
        assert_eq!(r.reversed(), k);
    }

    #[test]
    fn canonical_is_direction_independent() {
        let k = FlowKey {
            src_ip: 9,
            dst_ip: 2,
            src_port: 10,
            dst_port: 20,
            proto: 6,
        };
        assert_eq!(k.canonical(), k.reversed().canonical());
    }

    #[test]
    fn flows_are_assembled_in_order() {
        let pkts = vec![
            pkt(0, 1, 2, 10, 80, 100),
            pkt(1, 3, 4, 11, 80, 100),
            pkt(2, 1, 2, 10, 80, 200),
        ];
        let flows = assemble_flows(&pkts);
        assert_eq!(flows.len(), 2);
        assert_eq!(flows[0].1.len(), 2);
        assert_eq!(flows[1].1.len(), 1);
        assert_eq!(flows[0].0.src_ip, 1);
    }

    #[test]
    fn conversations_merge_directions() {
        let pkts = vec![pkt(0, 1, 2, 10, 80, 100), pkt(1, 2, 1, 80, 10, 100)];
        let convs = assemble_conversations(&pkts);
        assert_eq!(convs.len(), 1);
        assert_eq!(convs[0].1.len(), 2);
    }

    #[test]
    fn summaries_account_bytes_and_duration() {
        let pkts = vec![pkt(100, 1, 2, 10, 80, 100), pkt(600, 1, 2, 10, 80, 150)];
        let sums = summarize_flows(&pkts);
        assert_eq!(sums.len(), 1);
        assert_eq!(sums[0].packets, 2);
        assert_eq!(sums[0].bytes, 250);
        assert_eq!(sums[0].duration_us(), 500);
    }
}
