//! Synthetic dataset generators.
//!
//! The paper evaluates on three proprietary traces (Hotspot, IspTraffic,
//! IPscatter). Each generator here synthesizes a dataset with the same
//! record schema and — crucially — *planted, known ground truth* for every
//! feature the corresponding experiments measure, so that the DP-vs-exact
//! comparison the paper performs can be reproduced end to end.

pub mod hotspot;
pub mod isp;
pub mod scatter;
pub mod util;

pub use hotspot::{HotspotConfig, HotspotTrace, HotspotTruth, StoneTruth, WormTruth};
pub use isp::{AnomalyTruth, IspConfig, IspTrace, LinkPacket};
pub use scatter::{ScatterConfig, ScatterRecord, ScatterTrace};
