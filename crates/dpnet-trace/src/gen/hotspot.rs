//! Synthetic Hotspot trace generator.
//!
//! The paper's Hotspot dataset is a tcpdump capture of a large hotspot's
//! wired access link: 7.0 M `<timestamp, packet>` records with full payloads.
//! That trace is not public, so this generator synthesizes one with the same
//! *measurable structure*, planting known ground truth for every experiment
//! the paper runs against Hotspot:
//!
//! * **packet-size and port distributions** (Fig. 2) — a size mixture with
//!   the paper's observed modes at 40 B (pure ACKs) and 1492 B (802.3 MTU),
//!   and Zipf-popular ports;
//! * **retransmission time differences** (Fig. 1) — per-flow loss with
//!   RTO-driven retransmission delays spread over 0–250 ms;
//! * **handshake RTTs and loss rates** (Fig. 3) — per-flow log-normal RTTs
//!   and heterogeneous loss rates;
//! * **frequent payload strings** (Table 4) — a Zipf-weighted payload pool;
//! * **worm payloads** (§5.1.2) — high-dispersion payloads with controlled
//!   source/destination counts straddling the detection threshold;
//! * **port itemsets** (§4.3) — hosts that deliberately use correlated port
//!   sets such as (22, 80) and (443, 80);
//! * **stepping stones** (Table 5) — pairs of interactive flows with
//!   correlated idle→active transitions, plus uncorrelated decoys.
//!
//! Everything is driven by one seed; the same seed reproduces the same trace
//! byte for byte.

use crate::flow::FlowKey;
use crate::gen::util::{exponential, lognormal, Categorical, Zipf};
use crate::packet::{Packet, Proto, TcpFlags};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Tuning knobs for the Hotspot generator. `Default` gives a trace of a few
/// hundred thousand packets that runs every experiment in seconds; scale
/// `web_flows` (etc.) up for paper-scale runs.
#[derive(Debug, Clone)]
pub struct HotspotConfig {
    /// RNG seed; fixes the entire trace.
    pub seed: u64,
    /// Trace duration in seconds.
    pub duration_s: f64,
    /// Number of ordinary (web-like) TCP flows.
    pub web_flows: usize,
    /// Mean data packets per web flow (geometric-ish).
    pub mean_flow_packets: f64,
    /// Median handshake RTT in milliseconds (log-normal location).
    pub rtt_median_ms: f64,
    /// Log-normal sigma of the RTT distribution.
    pub rtt_sigma: f64,
    /// Fraction of flows that experience downstream loss at all.
    pub lossy_flow_fraction: f64,
    /// Mean loss rate among lossy flows.
    pub mean_loss_rate: f64,
    /// Number of distinct frequent payload strings in the pool.
    pub payload_pool: usize,
    /// Length in bytes of pooled payload strings.
    pub payload_len: usize,
    /// Zipf exponent of payload popularity.
    pub payload_zipf: f64,
    /// Number of worm payloads with dispersion above the paper's threshold
    /// of 50 distinct sources and destinations.
    pub worms_above_threshold: usize,
    /// Number of sub-threshold (benign-looking) dispersed payloads.
    pub worms_below_threshold: usize,
    /// Number of correlated stepping-stone flow pairs.
    pub stepping_stone_pairs: usize,
    /// Number of uncorrelated interactive decoy flows.
    pub interactive_decoys: usize,
    /// Target activations per interactive flow (paper's window: 1200–1400,
    /// scaled down by default).
    pub activations_per_flow: std::ops::Range<usize>,
    /// Number of hosts that use planted correlated port sets (for §4.3).
    pub itemset_hosts: usize,
    /// Fraction of web flows preceded by a DNS lookup to the shared
    /// resolver — the first planted communication rule (Kandula et al.).
    pub dns_fraction: f64,
    /// Probability a flow to the most popular web server also contacts its
    /// CDN companion — the second planted communication rule.
    pub companion_fraction: f64,
    /// Fraction of web flows carrying several sequential TCP connections
    /// on one 5-tuple (HTTP/1.0-style), separable only with connection-id
    /// pre-processing (§5.2.1).
    pub multi_connection_fraction: f64,
}

impl Default for HotspotConfig {
    fn default() -> Self {
        HotspotConfig {
            seed: 0x00d0_9e75,
            duration_s: 600.0,
            web_flows: 3000,
            mean_flow_packets: 24.0,
            rtt_median_ms: 60.0,
            rtt_sigma: 0.7,
            lossy_flow_fraction: 0.35,
            mean_loss_rate: 0.06,
            payload_pool: 400,
            payload_len: 8,
            payload_zipf: 1.4,
            worms_above_threshold: 29, // matches the paper's noise-free count
            worms_below_threshold: 12,
            stepping_stone_pairs: 12,
            interactive_decoys: 24,
            activations_per_flow: 120..141,
            itemset_hosts: 160,
            dns_fraction: 0.75,
            companion_fraction: 0.8,
            multi_connection_fraction: 0.15,
        }
    }
}

/// A planted worm payload and its true dispersion.
#[derive(Debug, Clone)]
pub struct WormTruth {
    /// The payload bytes.
    pub payload: Vec<u8>,
    /// Number of distinct source IPs that sent it.
    pub sources: usize,
    /// Number of distinct destination IPs that received it.
    pub destinations: usize,
    /// Total copies in the trace.
    pub copies: usize,
}

/// A planted stepping-stone relationship.
#[derive(Debug, Clone)]
pub struct StoneTruth {
    /// The upstream interactive flow.
    pub flow_a: FlowKey,
    /// The downstream flow relayed through the stone.
    pub flow_b: FlowKey,
    /// Fraction of A's activations that B echoes within δ.
    pub rho: f64,
}

/// Everything the generator planted, for experiment scoring.
#[derive(Debug, Clone, Default)]
pub struct HotspotTruth {
    /// Frequent payload strings with their exact copy counts, descending.
    pub payload_counts: Vec<(Vec<u8>, usize)>,
    /// Worm payloads with true dispersion (both above and below threshold).
    pub worms: Vec<WormTruth>,
    /// Stepping-stone pairs.
    pub stones: Vec<StoneTruth>,
    /// Port sets planted for frequent-itemset mining, with host counts.
    pub port_sets: Vec<(Vec<u16>, usize)>,
    /// The shared DNS resolver address (target of the planted DNS rule).
    pub dns_server: u32,
    /// The most popular web server and its planted CDN companion: flows to
    /// the former usually also contact the latter.
    pub companion_rule: (u32, u32),
    /// Number of web flows carrying more than one TCP connection.
    pub multi_connection_flows: usize,
}

/// The generated trace plus its ground truth.
#[derive(Debug, Clone)]
pub struct HotspotTrace {
    /// Packets, sorted by timestamp.
    pub packets: Vec<Packet>,
    /// What was planted.
    pub truth: HotspotTruth,
}

/// Records per shard emitted by [`HotspotTrace::packet_shards`]: large
/// enough that shard bookkeeping is negligible, small enough that a pool's
/// fixed-size task chunks overlap several shards.
pub const SHARD_RECORDS: usize = 1 << 16;

impl HotspotTrace {
    /// The trace in columnar (SoA, dictionary-encoded) form. Payloads come
    /// from the generator's pooled strings, so the dictionary is a few
    /// hundred entries regardless of packet count.
    pub fn columns(&self) -> crate::columns::PacketColumns {
        crate::columns::PacketColumns::from_packets(&self.packets)
    }

    /// The trace as `Arc`-shared row shards of [`SHARD_RECORDS`] packets,
    /// in timestamp order — the form protected views are built from
    /// (`pinq::Queryable::from_shared_shards`) without cloning the trace
    /// per experiment run.
    pub fn packet_shards(&self) -> Vec<std::sync::Arc<Vec<Packet>>> {
        self.packets
            .chunks(SHARD_RECORDS)
            .map(|c| std::sync::Arc::new(c.to_vec()))
            .collect()
    }
}

/// Common destination server ports, popularity-ordered (Zipf ranks).
pub const COMMON_PORTS: [u16; 14] = [
    80, 443, 53, 22, 25, 110, 143, 993, 445, 139, 8080, 123, 465, 587,
];

const MTU_LEN: u16 = 1492; // IEEE 802.3, the paper's observed data mode
const ACK_LEN: u16 = 40; // pure TCP acknowledgment

struct Gen {
    rng: StdRng,
    cfg: HotspotConfig,
    packets: Vec<Packet>,
    truth: HotspotTruth,
    next_client: u32,
    next_server: u32,
}

impl Gen {
    fn new(cfg: HotspotConfig) -> Self {
        Gen {
            rng: StdRng::seed_from_u64(cfg.seed),
            cfg,
            packets: Vec::new(),
            truth: HotspotTruth::default(),
            next_client: 0x0a00_0001, // 10.0.0.1 and up: hotspot clients
            next_server: 0x0808_0001, // public space: servers
        }
    }

    fn alloc_client(&mut self) -> u32 {
        let ip = self.next_client;
        self.next_client += 1;
        ip
    }

    fn alloc_server(&mut self) -> u32 {
        let ip = self.next_server;
        self.next_server += 1;
        ip
    }

    fn rtt_us(&mut self) -> u64 {
        let med = self.cfg.rtt_median_ms;
        let r = lognormal(&mut self.rng, med.ln(), self.cfg.rtt_sigma);
        (r.clamp(5.0, 600.0) * 1000.0) as u64
    }

    fn push(&mut self, p: Packet) {
        self.packets.push(p);
    }

    #[allow(clippy::too_many_arguments)]
    fn tcp_packet(
        ts_us: u64,
        src_ip: u32,
        dst_ip: u32,
        src_port: u16,
        dst_port: u16,
        flags: TcpFlags,
        seq: u32,
        ack: u32,
        payload: Vec<u8>,
    ) -> Packet {
        let len = (ACK_LEN as usize + payload.len()).min(u16::MAX as usize) as u16;
        Packet {
            ts_us,
            src_ip,
            dst_ip,
            src_port,
            dst_port,
            proto: Proto::Tcp,
            len,
            flags,
            seq,
            ack,
            payload,
        }
    }

    /// Build the Zipf payload pool used by web flows. Payload strings are
    /// distinct `payload_len`-byte blobs.
    fn make_payload_pool(&mut self) -> Vec<Vec<u8>> {
        let mut pool = Vec::with_capacity(self.cfg.payload_pool);
        let mut seen = std::collections::HashSet::new();
        while pool.len() < self.cfg.payload_pool {
            let mut s = vec![0u8; self.cfg.payload_len];
            self.rng.fill(&mut s[..]);
            if seen.insert(s.clone()) {
                pool.push(s);
            }
        }
        pool
    }

    /// One web-like TCP flow: handshake, server data with retransmissions,
    /// client ACKs. The server is drawn from a bounded pool of popular web
    /// servers (Zipf), as in real traffic — which also keeps the *source*
    /// dispersion of popular content strings below the worm-detection
    /// threshold of 50: content is served by few hosts, worms spray from
    /// many.
    fn web_flow(
        &mut self,
        pool: &[Vec<u8>],
        zipf: &Zipf,
        servers: &[u32],
        server_zipf: &Zipf,
        dns_server: u32,
        companion_server: u32,
    ) {
        let client = self.alloc_client();
        let server = servers[server_zipf.sample(&mut self.rng)];
        let sport: u16 = self.rng.gen_range(32768..61000);
        // Port popularity: Zipf over the common list, occasionally random.
        let dport = if self.rng.gen::<f64>() < 0.92 {
            let port_zipf = Zipf::new(COMMON_PORTS.len(), 1.1);
            COMMON_PORTS[port_zipf.sample(&mut self.rng)]
        } else {
            self.rng.gen_range(1024..65535)
        };

        let span_us = (self.cfg.duration_s * 1e6) as u64;
        let t0 = self
            .rng
            .gen_range(0..span_us.saturating_sub(5_000_000).max(1));

        // DNS lookup preceding the web transfer: the client asks the
        // resolver before it connects — the communication rule ("talking to
        // a web server implies talking to the resolver") that the Kandula-
        // style rule mining discovers.
        if self.rng.gen::<f64>() < self.cfg.dns_fraction {
            let qport = self.rng.gen_range(32768..61000);
            let t_dns = t0.saturating_sub(self.rng.gen_range(2_000..40_000));
            let query = Packet {
                ts_us: t_dns,
                src_ip: client,
                dst_ip: dns_server,
                src_port: qport,
                dst_port: 53,
                proto: Proto::Udp,
                len: 70,
                flags: TcpFlags::default(),
                seq: 0,
                ack: 0,
                payload: vec![0x00, 0x01, 0x01, 0x00],
            };
            let mut response = query.clone();
            response.ts_us = t_dns + self.rng.gen_range(1_000..25_000);
            response.src_ip = dns_server;
            response.dst_ip = client;
            response.src_port = 53;
            response.dst_port = qport;
            response.len = 180;
            self.push(query);
            self.push(response);
        }

        // Companion dependency: talking to the most popular web server also
        // means fetching from its CDN companion — the second planted rule.
        if server == servers[0] && self.rng.gen::<f64>() < self.cfg.companion_fraction {
            let cport = self.rng.gen_range(32768..61000);
            let mut t_c = t0 + self.rng.gen_range(10_000..400_000);
            let isn: u32 = self.rng.gen();
            self.push(Self::tcp_packet(
                t_c,
                client,
                companion_server,
                cport,
                443,
                TcpFlags::syn(),
                isn,
                0,
                vec![],
            ));
            t_c += self.rng.gen_range(10_000..60_000);
            self.push(Self::tcp_packet(
                t_c,
                companion_server,
                client,
                443,
                cport,
                TcpFlags::syn_ack(),
                isn ^ 7,
                isn.wrapping_add(1),
                vec![],
            ));
            t_c += 300;
            self.push(Self::tcp_packet(
                t_c,
                client,
                companion_server,
                cport,
                443,
                TcpFlags::ack(),
                isn.wrapping_add(1),
                (isn ^ 7).wrapping_add(1),
                vec![],
            ));
        }

        // HTTP/1.0-style behaviour: a fraction of flows run several
        // sequential connections on the same 5-tuple, which only the
        // connection-id pre-processing (not the flow key) can separate.
        let connections = if self.rng.gen::<f64>() < self.cfg.multi_connection_fraction {
            self.truth.multi_connection_flows += 1;
            self.rng.gen_range(2..4usize)
        } else {
            1
        };
        let mut t_conn = t0;
        for _ in 0..connections {
            t_conn = self.web_connection(pool, zipf, client, server, sport, dport, t_conn);
            t_conn += self.rng.gen_range(500_000..3_000_000);
        }
    }

    /// One TCP connection of a web flow (handshake → request → data with
    /// retransmissions → FIN). Returns the teardown time.
    #[allow(clippy::too_many_arguments)]
    fn web_connection(
        &mut self,
        pool: &[Vec<u8>],
        zipf: &Zipf,
        client: u32,
        server: u32,
        sport: u16,
        dport: u16,
        t0: u64,
    ) -> u64 {
        let rtt = self.rtt_us();

        let isn_c: u32 = self.rng.gen();
        let isn_s: u32 = self.rng.gen();

        // Handshake. The monitor sits on the access link, so it sees both
        // directions; SYN→SYN-ACK spacing is the RTT beyond the monitor.
        self.push(Self::tcp_packet(
            t0,
            client,
            server,
            sport,
            dport,
            TcpFlags::syn(),
            isn_c,
            0,
            vec![],
        ));
        self.push(Self::tcp_packet(
            t0 + rtt,
            server,
            client,
            dport,
            sport,
            TcpFlags::syn_ack(),
            isn_s,
            isn_c.wrapping_add(1),
            vec![],
        ));
        self.push(Self::tcp_packet(
            t0 + rtt + 200,
            client,
            server,
            sport,
            dport,
            TcpFlags::ack(),
            isn_c.wrapping_add(1),
            isn_s.wrapping_add(1),
            vec![],
        ));

        // Request from the client: a mid-sized packet.
        let req_len = self.rng.gen_range(120..700usize);
        let mut t = t0 + rtt + 400;
        self.push(Self::tcp_packet(
            t,
            client,
            server,
            sport,
            dport,
            TcpFlags::new(false, true, false, false, true),
            isn_c.wrapping_add(1),
            isn_s.wrapping_add(1),
            vec![0x47; req_len], // 'G'
        ));

        // Server data packets.
        let n_data = (exponential(&mut self.rng, 1.0 / self.cfg.mean_flow_packets).round()
            as usize)
            .clamp(1, 400);
        let lossy = self.rng.gen::<f64>() < self.cfg.lossy_flow_fraction;
        let loss_rate = if lossy {
            (exponential(&mut self.rng, 1.0 / self.cfg.mean_loss_rate)).min(0.30)
        } else {
            0.0
        };
        // Per-flow RTO: where Figure 1's retransmission-delay distribution
        // comes from. Spread across ~20–240 ms.
        let rto_us = ((2.0 * rtt as f64) + exponential(&mut self.rng, 1.0 / 30_000.0))
            .clamp(20_000.0, 240_000.0) as u64;

        let mut seq = isn_s.wrapping_add(1);
        t += rtt / 2;
        for i in 0..n_data {
            // Mostly full-MTU data; some smaller tail packets.
            let size_pick: f64 = self.rng.gen();
            let dlen: usize = if size_pick < 0.62 {
                (MTU_LEN - ACK_LEN) as usize
            } else if size_pick < 0.80 {
                self.rng.gen_range(200..1000)
            } else {
                self.rng.gen_range(32..200)
            };
            // Payload: drawn from the pool (frequent strings ride along at
            // the front of the payload), or unique bytes. Only the first
            // `payload_len` bytes are stored — a snaplen-style prefix — but
            // the wire length `len` reflects the full `dlen`.
            let payload = if dlen >= self.cfg.payload_len && self.rng.gen::<f64>() < 0.7 {
                pool[zipf.sample(&mut self.rng)].clone()
            } else {
                let mut p = vec![0u8; self.cfg.payload_len];
                self.rng.fill(&mut p[..]);
                p
            };

            let wire_len = (ACK_LEN as usize + dlen).min(u16::MAX as usize) as u16;
            let mut data_pkt = Self::tcp_packet(
                t,
                server,
                client,
                dport,
                sport,
                TcpFlags::ack(),
                seq,
                isn_c.wrapping_add(1 + req_len as u32),
                payload.clone(),
            );
            data_pkt.len = wire_len;
            self.push(data_pkt);
            // Downstream loss → the monitor sees a retransmission later.
            if self.rng.gen::<f64>() < loss_rate {
                let jitter = self.rng.gen_range(0..8_000);
                let mut retx = Self::tcp_packet(
                    t + rto_us + jitter,
                    server,
                    client,
                    dport,
                    sport,
                    TcpFlags::ack(),
                    seq,
                    isn_c.wrapping_add(1 + req_len as u32),
                    payload,
                );
                retx.len = wire_len;
                self.push(retx);
            }
            // Client acknowledges every other data packet: the 40 B mode.
            if i % 2 == 1 {
                self.push(Self::tcp_packet(
                    t + rtt / 2,
                    client,
                    server,
                    sport,
                    dport,
                    TcpFlags::ack(),
                    isn_c.wrapping_add(1 + req_len as u32),
                    seq.wrapping_add(dlen as u32),
                    vec![],
                ));
            }
            seq = seq.wrapping_add(dlen as u32);
            t += self.rng.gen_range(500..20_000);
        }

        // Teardown.
        self.push(Self::tcp_packet(
            t,
            server,
            client,
            dport,
            sport,
            TcpFlags::new(false, true, true, false, false),
            seq,
            0,
            vec![],
        ));
        t
    }

    /// Plant worm traffic: one payload string sprayed from `sources` hosts
    /// to `destinations` hosts.
    fn worm(&mut self, sources: usize, destinations: usize) {
        let mut payload = vec![0u8; self.cfg.payload_len];
        self.rng.fill(&mut payload[..]);
        let srcs: Vec<u32> = (0..sources).map(|_| self.alloc_client()).collect();
        let dsts: Vec<u32> = (0..destinations).map(|_| self.alloc_server()).collect();
        let span_us = (self.cfg.duration_s * 1e6) as u64;
        // Each destination is probed once; every destination gets hit. This
        // couples a worm's total presence tightly to its dispersion, which
        // is what makes "low overall presence but above average dispersal"
        // payloads (the ones §5.1.2 reports missing at strong privacy) a
        // real phenomenon in the synthetic trace.
        // Cycle both lists so every source and destination appears; total
        // presence equals max(sources, destinations).
        let copies = sources.max(destinations);
        for i in 0..copies {
            let src = srcs[i % srcs.len()];
            let dst = dsts[i % dsts.len()];
            let t = self.rng.gen_range(0..span_us);
            let sport = self.rng.gen_range(32768..61000);
            let seq = self.rng.gen();
            self.push(Self::tcp_packet(
                t,
                src,
                dst,
                sport,
                445,
                TcpFlags::new(false, true, false, false, true),
                seq,
                0,
                payload.clone(),
            ));
        }
        self.truth.worms.push(WormTruth {
            payload,
            sources,
            destinations,
            copies,
        });
    }

    /// Generate an interactive flow's activation times: bursts separated by
    /// idle gaps longer than T_idle, so each burst is one activation.
    fn activation_times(&mut self, count: usize, span_us: u64) -> Vec<u64> {
        let mut times = Vec::with_capacity(count);
        let mut t = self.rng.gen_range(0..1_000_000u64);
        for _ in 0..count {
            // Gap: at least 0.7 s idle (safely above T_idle = 0.5 s).
            let gap = 700_000 + (exponential(&mut self.rng, 1.0 / 1.5e6) as u64);
            t += gap;
            if t >= span_us {
                break;
            }
            times.push(t);
        }
        times
    }

    /// Emit an interactive (ssh-like) flow with packets at the given
    /// activation times (plus a couple of follow-up packets per burst that
    /// stay within the idle window).
    fn interactive_flow(&mut self, times: &[u64]) -> FlowKey {
        let client = self.alloc_client();
        let server = self.alloc_server();
        let sport: u16 = self.rng.gen_range(32768..61000);
        let dport: u16 = 22;
        let mut seq: u32 = self.rng.gen();
        for &t in times {
            let burst = self.rng.gen_range(1..4usize);
            for b in 0..burst {
                let dt = (b as u64) * self.rng.gen_range(10_000..80_000);
                let plen = self.rng.gen_range(16..80usize);
                self.push(Self::tcp_packet(
                    t + dt,
                    client,
                    server,
                    sport,
                    dport,
                    TcpFlags::new(false, true, false, false, true),
                    seq,
                    0,
                    vec![0x73; plen], // 's'
                ));
                seq = seq.wrapping_add(plen as u32);
            }
        }
        FlowKey {
            src_ip: client,
            dst_ip: server,
            src_port: sport,
            dst_port: dport,
            proto: Proto::Tcp.number(),
        }
    }

    /// Plant stepping-stone pairs and decoys.
    fn stepping_stones(&mut self) {
        let span_us = (self.cfg.duration_s * 1e6) as u64;
        let lo = self.cfg.activations_per_flow.start;
        let hi = self.cfg.activations_per_flow.end;
        for _ in 0..self.cfg.stepping_stone_pairs {
            let count = self.rng.gen_range(lo..hi);
            let times_a = self.activation_times(count, span_us);
            let rho = self.rng.gen_range(0.70..0.95);
            // B echoes A's activations with small relay delay, within the
            // paper's δ = 40 ms window.
            let mut times_b = Vec::new();
            for &t in &times_a {
                if self.rng.gen::<f64>() < rho {
                    times_b.push(t + self.rng.gen_range(2_000..35_000));
                } else {
                    // Occasional independent activity.
                    times_b.push(t + self.rng.gen_range(100_000..400_000));
                }
            }
            let flow_a = self.interactive_flow(&times_a);
            let flow_b = self.interactive_flow(&times_b);
            self.truth.stones.push(StoneTruth {
                flow_a,
                flow_b,
                rho,
            });
        }
        for _ in 0..self.cfg.interactive_decoys {
            let count = self.rng.gen_range(lo..hi);
            let times = self.activation_times(count, span_us);
            self.interactive_flow(&times);
        }
    }

    /// Plant hosts using correlated port sets, for itemset mining (§4.3).
    /// The paper's discovered top-5: (22,80), (25,22), (443,80), (445,139),
    /// (993,22).
    fn port_itemsets(&mut self) {
        let sets: [(&[u16], f64); 5] = [
            (&[22, 80], 0.30),
            (&[25, 22], 0.25),
            (&[443, 80], 0.20),
            (&[445, 139], 0.15),
            (&[993, 22], 0.10),
        ];
        let weights: Vec<f64> = sets.iter().map(|s| s.1).collect();
        let cat = Categorical::new(&weights);
        let span_us = (self.cfg.duration_s * 1e6) as u64;
        let mut planted: Vec<usize> = vec![0; sets.len()];
        for _ in 0..self.cfg.itemset_hosts {
            let pick = cat.sample(&mut self.rng);
            planted[pick] += 1;
            let client = self.alloc_client();
            // The host talks on every port of its set (a few packets each),
            // plus one random extra port sometimes.
            let mut ports: Vec<u16> = sets[pick].0.to_vec();
            if self.rng.gen::<f64>() < 0.3 {
                ports.push(self.rng.gen_range(1024..65535));
            }
            for port in ports {
                let server = self.alloc_server();
                let reps = self.rng.gen_range(2..6);
                for _ in 0..reps {
                    let t = self.rng.gen_range(0..span_us);
                    let sport = self.rng.gen_range(32768..61000);
                    let seq = self.rng.gen();
                    self.push(Self::tcp_packet(
                        t,
                        client,
                        server,
                        sport,
                        port,
                        TcpFlags::ack(),
                        seq,
                        0,
                        vec![],
                    ));
                }
            }
        }
        self.truth.port_sets = sets
            .iter()
            .zip(planted)
            .map(|((ports, _), n)| (ports.to_vec(), n))
            .collect();
    }

    fn run(mut self) -> HotspotTrace {
        let pool = self.make_payload_pool();
        let zipf = Zipf::new(pool.len(), self.cfg.payload_zipf);
        // A bounded pool of popular web servers (fewer than the worm
        // dispersion threshold of 50), with Zipf popularity — plus the
        // shared DNS resolver and the popular server's CDN companion, the
        // two planted communication rules.
        let servers: Vec<u32> = (0..45).map(|_| self.alloc_server()).collect();
        let server_zipf = Zipf::new(servers.len(), 0.9);
        let dns_server = self.alloc_server();
        let companion_server = self.alloc_server();
        self.truth.dns_server = dns_server;
        self.truth.companion_rule = (servers[0], companion_server);
        for _ in 0..self.cfg.web_flows {
            self.web_flow(
                &pool,
                &zipf,
                &servers,
                &server_zipf,
                dns_server,
                companion_server,
            );
        }
        // Worms above the dispersion threshold of 50. The dispersion
        // schedule is concentrated near the threshold (cubic ramp), so a
        // substantial fraction of worms have "low overall presence but
        // above average dispersal" — the payloads §5.1.2 reports missing at
        // strong privacy levels.
        let n_above = self.cfg.worms_above_threshold;
        for i in 0..n_above {
            let frac = i as f64 / n_above.max(1) as f64;
            let spread = 55 + (260.0 * frac.powi(3)) as usize;
            let extra = self.rng.gen_range(0..(spread / 4).max(2));
            self.worm(spread, spread + extra);
        }
        for _ in 0..self.cfg.worms_below_threshold {
            let spread = self.rng.gen_range(5..45);
            let dsts = self.rng.gen_range(5..45);
            self.worm(spread, dsts);
        }
        self.stepping_stones();
        self.port_itemsets();

        // Record exact counts of every 8-byte payload prefix in the final
        // trace (not just the pool): the frequent-string experiments measure
        // the trace, and repeated request bytes, interactive payloads, and
        // worm payloads are all genuine frequent strings in it.
        let plen = self.cfg.payload_len;
        let mut prefix_counts: std::collections::HashMap<Vec<u8>, usize> =
            std::collections::HashMap::new();
        for p in &self.packets {
            if p.payload.len() >= plen {
                *prefix_counts.entry(p.payload[..plen].to_vec()).or_default() += 1;
            }
        }
        let mut counts: Vec<(Vec<u8>, usize)> =
            prefix_counts.into_iter().filter(|(_, c)| *c > 1).collect();
        counts.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        self.truth.payload_counts = counts;

        self.packets.sort_by_key(|p| p.ts_us);
        HotspotTrace {
            packets: self.packets,
            truth: self.truth,
        }
    }
}

/// Generate a Hotspot-style trace from the given configuration.
pub fn generate(cfg: HotspotConfig) -> HotspotTrace {
    Gen::new(cfg).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tcp::{activations, handshake_rtts, retransmission_delays};

    fn small() -> HotspotTrace {
        generate(HotspotConfig {
            web_flows: 300,
            worms_above_threshold: 5,
            worms_below_threshold: 3,
            stepping_stone_pairs: 3,
            interactive_decoys: 4,
            itemset_hosts: 40,
            ..HotspotConfig::default()
        })
    }

    #[test]
    fn trace_is_time_sorted_and_nonempty() {
        let t = small();
        assert!(t.packets.len() > 5_000);
        assert!(t.packets.windows(2).all(|w| w[0].ts_us <= w[1].ts_us));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small();
        let b = small();
        assert_eq!(a.packets.len(), b.packets.len());
        assert_eq!(a.packets[..100], b.packets[..100]);
    }

    #[test]
    fn packet_sizes_have_expected_modes() {
        let t = small();
        let n = t.packets.len() as f64;
        let acks = t.packets.iter().filter(|p| p.len == 40).count() as f64;
        let mtu = t.packets.iter().filter(|p| p.len == 1492).count() as f64;
        assert!(acks / n > 0.10, "40 B fraction {}", acks / n);
        assert!(mtu / n > 0.15, "1492 B fraction {}", mtu / n);
    }

    #[test]
    fn port_80_dominates() {
        let t = small();
        let p80 = t
            .packets
            .iter()
            .filter(|p| p.dst_port == 80 || p.src_port == 80)
            .count();
        let p8080 = t
            .packets
            .iter()
            .filter(|p| p.dst_port == 8080 || p.src_port == 8080)
            .count();
        assert!(p80 > 3 * p8080.max(1));
    }

    #[test]
    fn handshakes_yield_rtts_with_sane_median() {
        let t = small();
        let mut rtts = handshake_rtts(&t.packets);
        assert!(rtts.len() > 200, "only {} RTTs", rtts.len());
        rtts.sort_unstable();
        let median_ms = rtts[rtts.len() / 2] as f64 / 1000.0;
        assert!((20.0..200.0).contains(&median_ms), "median {median_ms} ms");
    }

    #[test]
    fn retransmissions_exist_and_fall_in_figure1_range() {
        let t = small();
        let delays = retransmission_delays(&t.packets);
        assert!(delays.len() > 50, "only {} retransmissions", delays.len());
        let in_range = delays
            .iter()
            .filter(|&&d| (20_000..=250_000).contains(&d))
            .count() as f64;
        assert!(in_range / delays.len() as f64 > 0.95);
    }

    #[test]
    fn worm_truth_matches_trace_dispersion() {
        let t = small();
        for w in &t.truth.worms {
            let mut srcs = std::collections::HashSet::new();
            let mut dsts = std::collections::HashSet::new();
            let mut copies = 0;
            for p in &t.packets {
                if p.payload == w.payload {
                    srcs.insert(p.src_ip);
                    dsts.insert(p.dst_ip);
                    copies += 1;
                }
            }
            assert_eq!(srcs.len(), w.sources, "source dispersion mismatch");
            assert_eq!(
                dsts.len(),
                w.destinations,
                "destination dispersion mismatch"
            );
            assert_eq!(copies, w.copies);
        }
    }

    #[test]
    fn payload_counts_are_exact_and_sorted() {
        let t = small();
        assert!(t.truth.payload_counts.len() > 50);
        assert!(t.truth.payload_counts.windows(2).all(|w| w[0].1 >= w[1].1));
        // Spot-check the top string's count against the trace (truth counts
        // 8-byte payload prefixes).
        let (top, n) = &t.truth.payload_counts[0];
        let actual = t
            .packets
            .iter()
            .filter(|p| p.payload.len() >= top.len() && p.payload[..top.len()] == top[..])
            .count();
        assert_eq!(actual, *n);
    }

    #[test]
    fn stepping_stones_are_actually_correlated() {
        let t = small();
        assert!(!t.truth.stones.is_empty());
        let acts = activations(&t.packets, 500_000);
        for stone in &t.truth.stones {
            let a: Vec<u64> = acts
                .iter()
                .filter(|x| x.flow == stone.flow_a)
                .map(|x| x.ts_us)
                .collect();
            let b: Vec<u64> = acts
                .iter()
                .filter(|x| x.flow == stone.flow_b)
                .map(|x| x.ts_us)
                .collect();
            assert!(a.len() > 50, "flow A has {} activations", a.len());
            let corr = crate::tcp::activation_correlation(&a, &b, 40_000);
            assert!(
                corr > 0.5,
                "planted stone (rho={}) measured correlation {corr}",
                stone.rho
            );
        }
    }

    #[test]
    fn dns_rule_is_planted() {
        let t = small();
        let dns = t.truth.dns_server;
        // Clients issue DNS queries to the shared resolver before flows.
        let queries = t
            .packets
            .iter()
            .filter(|p| p.dst_ip == dns && p.dst_port == 53 && p.proto == Proto::Udp)
            .count();
        // ~75% of 300 web flows.
        assert!(queries > 150, "only {queries} DNS queries");
        // And the resolver answers.
        let responses = t
            .packets
            .iter()
            .filter(|p| p.src_ip == dns && p.src_port == 53)
            .count();
        assert_eq!(queries, responses);
    }

    #[test]
    fn companion_rule_is_planted() {
        let t = small();
        let (popular, companion) = t.truth.companion_rule;
        let mut popular_clients = std::collections::HashSet::new();
        let mut companion_clients = std::collections::HashSet::new();
        for p in &t.packets {
            if p.dst_ip == popular {
                popular_clients.insert(p.src_ip);
            }
            if p.dst_ip == companion {
                companion_clients.insert(p.src_ip);
            }
        }
        assert!(!popular_clients.is_empty());
        let both = popular_clients
            .iter()
            .filter(|c| companion_clients.contains(c))
            .count();
        let frac = both as f64 / popular_clients.len() as f64;
        assert!(frac > 0.6, "companion rule confidence {frac}");
    }

    #[test]
    fn multi_connection_flows_are_separable() {
        let t = small();
        assert!(t.truth.multi_connection_flows > 10);
        let sizes = crate::connections::packets_per_connection(&t.packets);
        // More TCP connections than distinct client/server conversations
        // carrying them: multi-connection 5-tuples split.
        let conversations = crate::flow::assemble_conversations(
            &t.packets
                .iter()
                .filter(|p| p.proto == Proto::Tcp)
                .cloned()
                .collect::<Vec<_>>(),
        )
        .len();
        assert!(
            sizes.len() > conversations,
            "{} connections vs {} conversations",
            sizes.len(),
            conversations
        );
    }

    #[test]
    fn itemset_hosts_use_their_port_sets() {
        let t = small();
        let total: usize = t.truth.port_sets.iter().map(|(_, n)| n).sum();
        assert_eq!(total, 40);
        // (22, 80) should be the most-planted set.
        assert_eq!(t.truth.port_sets[0].0, vec![22, 80]);
    }
}
