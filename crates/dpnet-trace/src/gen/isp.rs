//! Synthetic IspTraffic dataset generator.
//!
//! The paper's IspTraffic dataset came from a confidential ISP with over 400
//! links, reporting traffic volume per link per 15-minute window over one
//! week, de-aggregated into 1500-byte packets (15.7 B records). The
//! anomaly-detection analysis (Lakhina et al., §5.3.1) consumes only the
//! link×time load matrix, whose defining property is *low effective rank*:
//! normal traffic is well described by a few eigen-patterns (diurnal and
//! weekly rhythms shared across links), and anomalies are cells that deviate
//! from that subspace.
//!
//! The generator builds exactly that: a rank-`r` matrix from smooth temporal
//! basis functions with per-link weights, multiplicative noise, and injected
//! volume anomalies at known cells. `to_records` de-aggregates into
//! one record per packet (at a configurable scale factor), which is the form
//! the DP analysis must consume — the paper notes "the aggregate
//! representation of the source data is not itself a basis for differential
//! privacy".

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One de-aggregated packet observation: a 1500-byte packet seen on `link`
/// during 15-minute window `window`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LinkPacket {
    /// Link index.
    pub link: u16,
    /// Time-window index.
    pub window: u16,
}

/// An injected volume anomaly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnomalyTruth {
    /// Link index.
    pub link: u16,
    /// Time-window index.
    pub window: u16,
    /// Extra packets injected on top of the normal model.
    pub extra_packets: u64,
}

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct IspConfig {
    /// RNG seed.
    pub seed: u64,
    /// Number of links (the paper's ISP: "over 400").
    pub links: usize,
    /// Number of 15-minute windows (one week = 672).
    pub windows: usize,
    /// Rank of the normal-traffic model (number of eigen-patterns).
    pub rank: usize,
    /// Mean packets per (link, window) cell under normal traffic.
    pub mean_packets: f64,
    /// Multiplicative noise sigma on cell volumes.
    pub noise_sigma: f64,
    /// Number of anomalies to inject.
    pub anomalies: usize,
    /// Anomaly magnitude as a multiple of the mean cell volume.
    pub anomaly_scale: f64,
}

impl Default for IspConfig {
    fn default() -> Self {
        IspConfig {
            seed: 0x15b_7aff,
            links: 400,
            windows: 672,
            rank: 4,
            // High enough that an 8× anomaly (≈480 packets) clears the
            // ε=0.1 noise floor of a 400-link residual norm (≈ 14·√400).
            // The paper's cells held ~58k packets each (15.7 B records);
            // keeping ~16 M records total trades that density for runtime.
            mean_packets: 60.0,
            noise_sigma: 0.08,
            anomalies: 12,
            anomaly_scale: 8.0,
        }
    }
}

/// The generated dataset: the true (noise-free) volume matrix and the
/// anomaly ground truth.
#[derive(Debug, Clone)]
pub struct IspTrace {
    /// Packets per (link, window): `volumes[link][window]`.
    pub volumes: Vec<Vec<u64>>,
    /// Injected anomalies.
    pub truth: Vec<AnomalyTruth>,
    /// Number of links.
    pub links: usize,
    /// Number of windows.
    pub windows: usize,
}

impl IspTrace {
    /// De-aggregate the volume matrix into one record per packet. With
    /// default settings this yields `links × windows × mean_packets` ≈ 6.7 M
    /// records; the paper's 15.7 B corresponds to a larger per-cell density,
    /// which affects only constant factors of the analysis.
    pub fn to_records(&self) -> Vec<LinkPacket> {
        let total: u64 = self.volumes.iter().flatten().sum();
        let mut out = Vec::with_capacity(total as usize);
        for (l, row) in self.volumes.iter().enumerate() {
            for (w, &count) in row.iter().enumerate() {
                for _ in 0..count {
                    out.push(LinkPacket {
                        link: l as u16,
                        window: w as u16,
                    });
                }
            }
        }
        out
    }

    /// The exact volume matrix as floats (the noise-free baseline input).
    pub fn matrix_f64(&self) -> Vec<Vec<f64>> {
        self.volumes
            .iter()
            .map(|row| row.iter().map(|&v| v as f64).collect())
            .collect()
    }
}

/// Generate an IspTraffic-style dataset.
pub fn generate(cfg: IspConfig) -> IspTrace {
    assert!(cfg.links > 0 && cfg.windows > 0 && cfg.rank > 0);
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // Temporal basis: smooth rhythms at different frequencies/phases. The
    // first pattern is the shared diurnal cycle (96 windows per day); others
    // are harmonics and a weekly trend.
    let mut basis: Vec<Vec<f64>> = Vec::with_capacity(cfg.rank);
    for k in 0..cfg.rank {
        let period = match k {
            0 => 96.0,               // daily
            1 => 48.0,               // half-daily
            2 => cfg.windows as f64, // weekly trend
            _ => 96.0 / (k as f64),  // higher harmonics
        };
        let phase: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
        let row: Vec<f64> = (0..cfg.windows)
            .map(|t| {
                let x = std::f64::consts::TAU * t as f64 / period + phase;
                // Keep patterns positive-leaning.
                0.6 + 0.4 * x.sin()
            })
            .collect();
        basis.push(row);
    }

    // Per-link weights over the basis; dominated by the diurnal pattern.
    let mut volumes: Vec<Vec<u64>> = Vec::with_capacity(cfg.links);
    for _ in 0..cfg.links {
        let mut weights: Vec<f64> = Vec::with_capacity(cfg.rank);
        for k in 0..cfg.rank {
            let scale = if k == 0 { 1.0 } else { 0.25 / k as f64 };
            weights.push(rng.gen_range(0.2..1.0) * scale);
        }
        let wsum: f64 = weights.iter().sum();
        let row: Vec<u64> = (0..cfg.windows)
            .map(|t| {
                let normal: f64 = weights
                    .iter()
                    .zip(&basis)
                    .map(|(w, b)| w * b[t])
                    .sum::<f64>()
                    / wsum;
                let noise = 1.0 + cfg.noise_sigma * crate::gen::util::standard_normal(&mut rng);
                (cfg.mean_packets * normal * noise.max(0.1))
                    .round()
                    .max(0.0) as u64
            })
            .collect();
        volumes.push(row);
    }

    // Inject anomalies at distinct cells, away from the matrix edges so
    // temporal context exists on both sides.
    let mut truth = Vec::with_capacity(cfg.anomalies);
    let mut used = std::collections::HashSet::new();
    while truth.len() < cfg.anomalies {
        let l = rng.gen_range(0..cfg.links);
        let w = rng.gen_range(cfg.windows / 20..cfg.windows - cfg.windows / 20);
        if !used.insert((l, w)) {
            continue;
        }
        let extra = (cfg.mean_packets * cfg.anomaly_scale * rng.gen_range(0.8..1.6)) as u64;
        volumes[l][w] += extra;
        truth.push(AnomalyTruth {
            link: l as u16,
            window: w as u16,
            extra_packets: extra,
        });
    }
    truth.sort_by_key(|a| (a.window, a.link));

    IspTrace {
        volumes,
        truth,
        links: cfg.links,
        windows: cfg.windows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> IspTrace {
        generate(IspConfig {
            links: 40,
            windows: 96,
            anomalies: 4,
            mean_packets: 20.0,
            ..IspConfig::default()
        })
    }

    #[test]
    fn matrix_dimensions_match_config() {
        let t = small();
        assert_eq!(t.volumes.len(), 40);
        assert!(t.volumes.iter().all(|r| r.len() == 96));
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(small().volumes, small().volumes);
    }

    #[test]
    fn anomalies_are_large_against_cell_baseline() {
        let t = small();
        assert_eq!(t.truth.len(), 4);
        for a in &t.truth {
            let v = t.volumes[a.link as usize][a.window as usize];
            assert!(v as f64 > 3.0 * 20.0, "anomalous cell {v} not prominent");
        }
    }

    #[test]
    fn records_match_matrix_totals() {
        let t = small();
        let records = t.to_records();
        let total: u64 = t.volumes.iter().flatten().sum();
        assert_eq!(records.len() as u64, total);
        // Spot-check one cell.
        let cell = records
            .iter()
            .filter(|r| r.link == 3 && r.window == 50)
            .count() as u64;
        assert_eq!(cell, t.volumes[3][50]);
    }

    #[test]
    fn traffic_has_diurnal_structure() {
        // Aggregate volume should vary substantially across the day rather
        // than being flat: max window / min window > 1.3.
        let t = small();
        let mut per_window = vec![0u64; t.windows];
        for row in &t.volumes {
            for (w, &v) in row.iter().enumerate() {
                per_window[w] += v;
            }
        }
        let max = *per_window.iter().max().unwrap() as f64;
        let min = *per_window.iter().min().unwrap() as f64;
        assert!(max / min > 1.3, "flat traffic: {min}..{max}");
    }

    #[test]
    fn default_config_is_paper_scale() {
        let cfg = IspConfig::default();
        assert!(cfg.links >= 400);
        assert_eq!(cfg.windows, 672); // a week of 15-minute windows
    }
}
