//! Synthetic IPscatter dataset generator.
//!
//! The paper's IPscatter dataset lists IP addresses and their TTL-derived
//! hop-count distances from 38 PlanetLab monitors (3.8 M `<monitor, IPaddr,
//! ttl>` records), built from the traceroute study of Spring et al. The
//! passive-topology-mapping analysis (Eriksson et al., §5.3.2) clusters IPs
//! by their hop-count vectors: topologically close addresses have similar
//! distances to most monitors.
//!
//! The generator plants `k` topological clusters. Each cluster has a center
//! hop-count vector over the monitors; member IPs observe center + small
//! jitter, and a configurable fraction of (monitor, IP) readings are missing
//! — as in the real data, where not every probe sees every address. Ground
//! truth (cluster assignment and centers) lets the harness score clustering
//! quality at each privacy level, reproducing Figure 5.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One observation: monitor `monitor` saw IP `ip` at `hops` hops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ScatterRecord {
    /// Monitor index (0..monitors).
    pub monitor: u16,
    /// Observed IP address.
    pub ip: u32,
    /// Hop count inferred from TTL.
    pub hops: u8,
}

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct ScatterConfig {
    /// RNG seed.
    pub seed: u64,
    /// Number of monitors (the paper's study used 38 PlanetLab sites).
    pub monitors: usize,
    /// Number of IP addresses.
    pub ips: usize,
    /// Number of planted topological clusters.
    pub clusters: usize,
    /// Std of per-member hop jitter around the cluster center.
    pub jitter: f64,
    /// Probability a (monitor, ip) reading is missing.
    pub missing: f64,
}

impl Default for ScatterConfig {
    fn default() -> Self {
        ScatterConfig {
            seed: 0x5ca_77e6,
            monitors: 38,
            ips: 20_000,
            clusters: 9, // the paper's Figure 5 uses nine centers
            jitter: 1.2,
            missing: 0.25,
        }
    }
}

/// The generated dataset with ground truth.
#[derive(Debug, Clone)]
pub struct ScatterTrace {
    /// All observations.
    pub records: Vec<ScatterRecord>,
    /// Cluster center hop-count vectors, `centers[c][monitor]`.
    pub centers: Vec<Vec<f64>>,
    /// True cluster of each IP, indexed by the order IPs were generated;
    /// `ip_cluster[i] = (ip, cluster)`.
    pub ip_cluster: Vec<(u32, usize)>,
    /// Number of monitors.
    pub monitors: usize,
}

/// Generate an IPscatter-style dataset.
pub fn generate(cfg: ScatterConfig) -> ScatterTrace {
    assert!(cfg.monitors > 0 && cfg.clusters > 0 && cfg.ips >= cfg.clusters);
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // Cluster centers: hop counts in the realistic 5–25 range, with each
    // cluster near some monitors and far from others.
    let centers: Vec<Vec<f64>> = (0..cfg.clusters)
        .map(|_| {
            (0..cfg.monitors)
                .map(|_| rng.gen_range(5.0..25.0))
                .collect()
        })
        .collect();

    let mut records = Vec::new();
    let mut ip_cluster = Vec::with_capacity(cfg.ips);
    for i in 0..cfg.ips {
        // IPs spread over public space; cluster sizes roughly equal with
        // random assignment.
        let cluster = rng.gen_range(0..cfg.clusters);
        let ip: u32 = 0x1000_0000 + i as u32;
        ip_cluster.push((ip, cluster));
        for (m, &center) in centers[cluster].iter().enumerate() {
            if rng.gen::<f64>() < cfg.missing {
                continue;
            }
            let hops = (center + cfg.jitter * crate::gen::util::standard_normal(&mut rng))
                .round()
                .clamp(1.0, 40.0) as u8;
            records.push(ScatterRecord {
                monitor: m as u16,
                ip,
                hops,
            });
        }
    }

    ScatterTrace {
        records,
        centers,
        ip_cluster,
        monitors: cfg.monitors,
    }
}

/// IPs per generation chunk in [`generate_with`]. Fixed (independent of the
/// worker count) so the decomposition — and therefore the output — is a
/// function of the configuration alone.
pub const GEN_CHUNK_IPS: usize = 1024;

/// [`generate`] on a worker pool: IPs are generated in fixed chunks of
/// [`GEN_CHUNK_IPS`], each chunk drawing from its own RNG substream seeded
/// via [`pinq::rng::derive_seed`] from `cfg.seed`, and chunk outputs are
/// concatenated in chunk order.
///
/// Deterministic: a fixed `cfg.seed` yields a bit-identical trace for *any*
/// worker count. The trace differs from the sequential [`generate`] output
/// at the same seed (the draw sequence is partitioned differently); treat
/// the two entry points as distinct dataset families.
pub fn generate_with(cfg: ScatterConfig, pool: &pinq::ExecPool) -> ScatterTrace {
    assert!(cfg.monitors > 0 && cfg.clusters > 0 && cfg.ips >= cfg.clusters);
    let timer_start = std::time::Instant::now();
    // Substream 0 is reserved for the centers; chunk c draws from
    // substream c + 1.
    let mut rng = StdRng::seed_from_u64(pinq::rng::derive_seed(cfg.seed, 0));
    let centers: Vec<Vec<f64>> = (0..cfg.clusters)
        .map(|_| {
            (0..cfg.monitors)
                .map(|_| rng.gen_range(5.0..25.0))
                .collect()
        })
        .collect();

    let chunks: Vec<std::ops::Range<usize>> = (0..cfg.ips)
        .step_by(GEN_CHUNK_IPS)
        .map(|s| s..(s + GEN_CHUNK_IPS).min(cfg.ips))
        .collect();
    // One chunk's output: its records and its `(ip, cluster)` assignments.
    type ChunkOut = (Vec<ScatterRecord>, Vec<(u32, usize)>);
    let centers_ref = &centers;
    let cfg_ref = &cfg;
    let per_chunk: Vec<ChunkOut> = pool.run(&chunks, |idx, span| {
        let mut rng = StdRng::seed_from_u64(pinq::rng::derive_seed(cfg_ref.seed, idx as u64 + 1));
        let mut records = Vec::new();
        let mut ip_cluster = Vec::with_capacity(span.len());
        for i in span.clone() {
            let cluster = rng.gen_range(0..cfg_ref.clusters);
            let ip: u32 = 0x1000_0000 + i as u32;
            ip_cluster.push((ip, cluster));
            for (m, &center) in centers_ref[cluster].iter().enumerate() {
                if rng.gen::<f64>() < cfg_ref.missing {
                    continue;
                }
                let hops = (center + cfg_ref.jitter * crate::gen::util::standard_normal(&mut rng))
                    .round()
                    .clamp(1.0, 40.0) as u8;
                records.push(ScatterRecord {
                    monitor: m as u16,
                    ip,
                    hops,
                });
            }
        }
        (records, ip_cluster)
    });

    let mut records = Vec::new();
    let mut ip_cluster = Vec::with_capacity(cfg.ips);
    for (mut rs, mut ics) in per_chunk {
        records.append(&mut rs);
        ip_cluster.append(&mut ics);
    }
    dpnet_obs_emit(
        pool.workers(),
        chunks.len(),
        timer_start.elapsed().as_nanos() as u64,
    );

    ScatterTrace {
        records,
        centers,
        ip_cluster,
        monitors: cfg.monitors,
    }
}

/// Report the generation kernel to the global observability sink, if one is
/// installed. Kept out-of-line so the generator body stays readable.
fn dpnet_obs_emit(workers: usize, tasks: usize, wall_ns: u64) {
    dpnet_obs::emit_exec_global("trace_gen/scatter", workers, tasks, wall_ns);
}

impl ScatterTrace {
    /// Assemble the per-IP hop-count vectors with missing readings filled by
    /// the per-monitor mean — the noise-free version of the imputation the
    /// private analysis performs with `NoisyAverage` (§5.3.2).
    pub fn vectors_mean_imputed(&self) -> Vec<(u32, Vec<f64>)> {
        let mut sums = vec![0.0f64; self.monitors];
        let mut counts = vec![0usize; self.monitors];
        for r in &self.records {
            sums[r.monitor as usize] += r.hops as f64;
            counts[r.monitor as usize] += 1;
        }
        let means: Vec<f64> = sums
            .iter()
            .zip(&counts)
            .map(|(s, &c)| if c > 0 { s / c as f64 } else { 0.0 })
            .collect();

        let mut per_ip: std::collections::HashMap<u32, Vec<Option<f64>>> =
            std::collections::HashMap::new();
        for r in &self.records {
            per_ip
                .entry(r.ip)
                .or_insert_with(|| vec![None; self.monitors])[r.monitor as usize] =
                Some(r.hops as f64);
        }
        let mut out: Vec<(u32, Vec<f64>)> = per_ip
            .into_iter()
            .map(|(ip, v)| {
                let filled: Vec<f64> = v
                    .into_iter()
                    .enumerate()
                    .map(|(m, x)| x.unwrap_or(means[m]))
                    .collect();
                (ip, filled)
            })
            .collect();
        out.sort_by_key(|(ip, _)| *ip);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ScatterTrace {
        generate(ScatterConfig {
            ips: 2000,
            ..ScatterConfig::default()
        })
    }

    #[test]
    fn record_volume_matches_missing_rate() {
        let t = small();
        let expected = 2000.0 * 38.0 * 0.75;
        let got = t.records.len() as f64;
        assert!(
            (got - expected).abs() / expected < 0.05,
            "records {got} vs expected {expected}"
        );
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(small().records, small().records);
    }

    #[test]
    fn hops_are_in_plausible_range() {
        let t = small();
        assert!(t.records.iter().all(|r| (1..=40).contains(&r.hops)));
    }

    #[test]
    fn cluster_members_are_near_their_center() {
        let t = small();
        let vectors = t.vectors_mean_imputed();
        let by_ip: std::collections::HashMap<u32, usize> = t.ip_cluster.iter().cloned().collect();
        let mut own_closer = 0usize;
        let mut total = 0usize;
        for (ip, v) in vectors.iter().take(500) {
            let own = by_ip[ip];
            let dist =
                |c: &[f64]| -> f64 { c.iter().zip(v).map(|(a, b)| (a - b).powi(2)).sum::<f64>() };
            let d_own = dist(&t.centers[own]);
            let d_best_other = t
                .centers
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != own)
                .map(|(_, c)| dist(c))
                .fold(f64::INFINITY, f64::min);
            total += 1;
            if d_own < d_best_other {
                own_closer += 1;
            }
        }
        // With jitter 1.2 and mean imputation, the vast majority of IPs are
        // closest to their own center.
        assert!(
            own_closer as f64 / total as f64 > 0.9,
            "{own_closer}/{total} closest to own center"
        );
    }

    #[test]
    fn mean_imputation_fills_every_coordinate() {
        let t = small();
        let vectors = t.vectors_mean_imputed();
        assert_eq!(vectors.len(), 2000);
        assert!(vectors.iter().all(|(_, v)| v.len() == 38));
        assert!(vectors
            .iter()
            .all(|(_, v)| v.iter().all(|x| x.is_finite() && *x > 0.0)));
    }

    #[test]
    fn default_matches_paper_setup() {
        let cfg = ScatterConfig::default();
        assert_eq!(cfg.monitors, 38);
        assert_eq!(cfg.clusters, 9);
    }

    #[test]
    fn parallel_generation_is_identical_for_any_worker_count() {
        let cfg = ScatterConfig {
            ips: 5000,
            ..ScatterConfig::default()
        };
        let gen_with = |workers: usize| {
            let pool = pinq::ExecPool::new(workers).unwrap();
            generate_with(cfg.clone(), &pool)
        };
        let one = gen_with(1);
        for workers in [2, 8] {
            let t = gen_with(workers);
            assert_eq!(one.records, t.records, "workers={workers}");
            assert_eq!(one.ip_cluster, t.ip_cluster, "workers={workers}");
            assert_eq!(one.centers, t.centers, "workers={workers}");
        }
    }

    #[test]
    fn parallel_generation_matches_sequential_statistics() {
        // Not bit-identical to `generate` (different draw partitioning),
        // but the same distribution: record volume within a few percent.
        let cfg = ScatterConfig {
            ips: 4000,
            ..ScatterConfig::default()
        };
        let pool = pinq::ExecPool::new(4).unwrap();
        let t = generate_with(cfg, &pool);
        let expected = 4000.0 * 38.0 * 0.75;
        let got = t.records.len() as f64;
        assert!(
            (got - expected).abs() / expected < 0.05,
            "records {got} vs expected {expected}"
        );
        assert!(t.records.iter().all(|r| (1..=40).contains(&r.hops)));
    }
}
