//! Statistical building blocks for the trace generators.
//!
//! `rand` 0.8 ships only uniform sampling; the heavier distributions the
//! generators need (log-normal, Poisson, Zipf, categorical) are implemented
//! here from first principles so the dependency footprint stays at the
//! pre-approved crate list.

use rand::Rng;

/// Draw a standard normal sample via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Draw from a normal distribution with the given mean and std.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std: f64) -> f64 {
    mean + std * standard_normal(rng)
}

/// Draw from a log-normal distribution parameterized by the underlying
/// normal's `mu` and `sigma`. Used for RTTs: heavy-tailed, strictly
/// positive, matching the shape of measured wide-area delay distributions.
pub fn lognormal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    normal(rng, mu, sigma).exp()
}

/// Draw from an exponential distribution with the given rate (`λ`).
/// Inter-arrival times of Poisson traffic.
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    debug_assert!(rate > 0.0);
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -u.ln() / rate
}

/// Draw from a Poisson distribution. Knuth's algorithm for small means,
/// normal approximation above 30 (adequate for workload generation).
pub fn poisson<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> u64 {
    debug_assert!(mean >= 0.0);
    if mean <= 0.0 {
        return 0;
    }
    if mean > 30.0 {
        let x = normal(rng, mean, mean.sqrt());
        return x.round().max(0.0) as u64;
    }
    let l = (-mean).exp();
    let mut k = 0u64;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
    }
}

/// A Zipf sampler over ranks `0..n` with exponent `s`:
/// `P(rank k) ∝ 1/(k+1)^s`. Port popularity and payload popularity are
/// classic Zipf-shaped distributions.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build a sampler over `n` ranks with exponent `s`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is not finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s.is_finite(), "Zipf exponent must be finite");
        let weights: Vec<f64> = (0..n).map(|k| 1.0 / ((k + 1) as f64).powf(s)).collect();
        let total: f64 = weights.iter().sum();
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for w in weights {
            acc += w / total;
            cdf.push(acc);
        }
        // Guard against floating-point shortfall at the top.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Zipf { cdf }
    }

    /// Draw a rank in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the sampler is empty (never true; kept for API symmetry).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }
}

/// A categorical sampler over explicit weights.
#[derive(Debug, Clone)]
pub struct Categorical {
    cdf: Vec<f64>,
}

impl Categorical {
    /// Build from non-negative weights (not necessarily normalized).
    ///
    /// # Panics
    /// Panics if `weights` is empty, contains a negative/non-finite value,
    /// or sums to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "empty categorical");
        let total: f64 = weights.iter().sum();
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0) && total > 0.0,
            "categorical weights must be non-negative with positive sum"
        );
        let mut cdf = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            acc += w / total;
            cdf.push(acc);
        }
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Categorical { cdf }
    }

    /// Draw an index into the weight vector.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| normal(&mut rng, 5.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.05);
        assert!((var.sqrt() - 2.0).abs() < 0.05);
    }

    #[test]
    fn lognormal_is_positive_and_skewed() {
        let mut rng = StdRng::seed_from_u64(2);
        let xs: Vec<f64> = (0..50_000).map(|_| lognormal(&mut rng, 0.0, 1.0)).collect();
        assert!(xs.iter().all(|&x| x > 0.0));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let mut sorted = xs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[xs.len() / 2];
        assert!(mean > median, "log-normal should be right-skewed");
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut rng = StdRng::seed_from_u64(3);
        let rate = 4.0;
        let mean: f64 = (0..100_000)
            .map(|_| exponential(&mut rng, rate))
            .sum::<f64>()
            / 100_000.0;
        assert!((mean - 0.25).abs() < 0.01);
    }

    #[test]
    fn poisson_mean_and_variance() {
        let mut rng = StdRng::seed_from_u64(4);
        for &lambda in &[0.5, 5.0, 100.0] {
            let n = 50_000;
            let xs: Vec<f64> = (0..n).map(|_| poisson(&mut rng, lambda) as f64).collect();
            let mean = xs.iter().sum::<f64>() / n as f64;
            assert!(
                (mean - lambda).abs() < lambda.max(1.0) * 0.05,
                "λ={lambda}: mean {mean}"
            );
        }
    }

    #[test]
    fn poisson_zero_mean_is_zero() {
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(poisson(&mut rng, 0.0), 0);
    }

    #[test]
    fn zipf_rank_zero_dominates() {
        let mut rng = StdRng::seed_from_u64(6);
        let z = Zipf::new(100, 1.2);
        let n = 100_000;
        let mut counts = vec![0usize; 100];
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[1]);
        assert!(counts[1] > counts[10]);
        // Rank-0 frequency for s=1.2 over 100 ranks is ~26%.
        let f0 = counts[0] as f64 / n as f64;
        assert!((f0 - 0.26).abs() < 0.03, "rank-0 frequency {f0}");
    }

    #[test]
    fn zipf_never_returns_out_of_range() {
        let mut rng = StdRng::seed_from_u64(7);
        let z = Zipf::new(5, 0.8);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 5);
        }
    }

    #[test]
    fn categorical_respects_weights() {
        let mut rng = StdRng::seed_from_u64(8);
        let c = Categorical::new(&[1.0, 3.0]);
        let n = 100_000;
        let ones = (0..n).filter(|_| c.sample(&mut rng) == 1).count() as f64;
        assert!((ones / n as f64 - 0.75).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "empty categorical")]
    fn categorical_rejects_empty() {
        Categorical::new(&[]);
    }

    #[test]
    #[should_panic]
    fn categorical_rejects_negative() {
        Categorical::new(&[1.0, -1.0]);
    }

    #[test]
    fn zero_weight_categories_are_never_drawn() {
        let mut rng = StdRng::seed_from_u64(9);
        let c = Categorical::new(&[0.0, 1.0, 0.0]);
        for _ in 0..10_000 {
            assert_eq!(c.sample(&mut rng), 1);
        }
    }
}
