//! Columnar (structure-of-arrays) packet storage with dictionary-encoded
//! payloads.
//!
//! A row-oriented `Vec<Packet>` stores each packet's payload as its own
//! heap allocation, even though real traces — and the Hotspot generator —
//! draw payloads from a small pool of recurring strings (HTTP verbs, worm
//! bodies, pooled application data). [`PacketColumns`] stores each header
//! field in its own contiguous array and replaces every payload with a
//! `u32` code into a [`PayloadDict`] of distinct payloads: a few hundred
//! thousand packets typically need only a few hundred dictionary entries,
//! so the trace shrinks from one allocation per packet to one per *distinct
//! payload*.
//!
//! The columnar form is the storage/interchange layout. The DP engine's
//! operators take row closures, so [`PacketColumns::to_shards`] re-emits
//! rows, chunked into fixed-size `Arc`-shared shards ready for
//! `pinq::Queryable::from_shared_shards`: the decode pass runs once, and
//! every protected view built afterwards shares the shard buffers instead
//! of re-cloning the trace. The flat row order is exactly the source order,
//! so releases over the shards are bit-identical to releases over the
//! original row vector.

use crate::packet::{Packet, Proto, TcpFlags};
use std::collections::HashMap;
use std::sync::Arc;

/// A dictionary of distinct payload byte strings, assigning each a dense
/// `u32` code in first-appearance order.
#[derive(Debug, Clone, Default)]
pub struct PayloadDict {
    codes: HashMap<Vec<u8>, u32>,
    table: Vec<Vec<u8>>,
}

impl PayloadDict {
    /// An empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `payload`, returning its code. Re-interning the same bytes
    /// returns the same code; distinct bytes always get distinct codes,
    /// even when they first appear in different shards of a trace.
    pub fn intern(&mut self, payload: &[u8]) -> u32 {
        if let Some(&code) = self.codes.get(payload) {
            return code;
        }
        let code = u32::try_from(self.table.len()).expect("more than 2^32 distinct payloads");
        self.codes.insert(payload.to_vec(), code);
        self.table.push(payload.to_vec());
        code
    }

    /// The payload bytes behind `code`.
    ///
    /// # Panics
    /// Panics if `code` was not produced by this dictionary.
    pub fn decode(&self, code: u32) -> &[u8] {
        &self.table[code as usize]
    }

    /// Number of distinct payloads interned.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }
}

/// Structure-of-arrays packet storage (see the module docs). All column
/// vectors have identical length; row `i` of the logical trace is the
/// `i`-th element of every column.
#[derive(Debug, Clone, Default)]
pub struct PacketColumns {
    /// Capture times, microseconds since trace start.
    pub ts_us: Vec<u64>,
    /// Source IPv4 addresses.
    pub src_ip: Vec<u32>,
    /// Destination IPv4 addresses.
    pub dst_ip: Vec<u32>,
    /// Source ports.
    pub src_port: Vec<u16>,
    /// Destination ports.
    pub dst_port: Vec<u16>,
    /// IANA protocol numbers (see [`Proto::number`]).
    pub proto: Vec<u8>,
    /// Total packet lengths.
    pub len: Vec<u16>,
    /// TCP flag bytes.
    pub flags: Vec<u8>,
    /// TCP sequence numbers.
    pub seq: Vec<u32>,
    /// TCP acknowledgment numbers.
    pub ack: Vec<u32>,
    /// Dictionary codes of each packet's payload.
    pub payload_code: Vec<u32>,
    /// The payload dictionary the codes index into.
    pub dict: PayloadDict,
}

impl PacketColumns {
    /// An empty columnar trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one packet, interning its payload.
    pub fn push(&mut self, p: &Packet) {
        self.ts_us.push(p.ts_us);
        self.src_ip.push(p.src_ip);
        self.dst_ip.push(p.dst_ip);
        self.src_port.push(p.src_port);
        self.dst_port.push(p.dst_port);
        self.proto.push(p.proto.number());
        self.len.push(p.len);
        self.flags.push(p.flags.0);
        self.seq.push(p.seq);
        self.ack.push(p.ack);
        self.payload_code.push(self.dict.intern(&p.payload));
    }

    /// Encode a row-oriented trace, preserving order.
    pub fn from_packets(packets: &[Packet]) -> Self {
        let mut cols = PacketColumns::new();
        cols.ts_us.reserve(packets.len());
        for p in packets {
            cols.push(p);
        }
        cols
    }

    /// Number of packets stored.
    pub fn len(&self) -> usize {
        self.ts_us.len()
    }

    /// Whether the trace holds no packets.
    pub fn is_empty(&self) -> bool {
        self.ts_us.is_empty()
    }

    /// Materialize row `i` (payload bytes are copied out of the dictionary).
    ///
    /// # Panics
    /// Panics if `i >= self.len()`.
    pub fn row(&self, i: usize) -> Packet {
        Packet {
            ts_us: self.ts_us[i],
            src_ip: self.src_ip[i],
            dst_ip: self.dst_ip[i],
            src_port: self.src_port[i],
            dst_port: self.dst_port[i],
            proto: Proto::from_number(self.proto[i]),
            len: self.len[i],
            flags: TcpFlags(self.flags[i]),
            seq: self.seq[i],
            ack: self.ack[i],
            payload: self.dict.decode(self.payload_code[i]).to_vec(),
        }
    }

    /// Emit the trace as row shards of at most `shard_size` packets each
    /// (the last shard may be shorter), wrapped in `Arc` so protected views
    /// built with `pinq::Queryable::from_shared_shards` share the buffers
    /// instead of re-cloning the trace per experiment run. Flat order is
    /// the source order, so releases over the shards are bit-identical to
    /// releases over the original row vector.
    ///
    /// # Panics
    /// Panics if `shard_size` is zero.
    pub fn to_shards(&self, shard_size: usize) -> Vec<Arc<Vec<Packet>>> {
        assert!(shard_size > 0, "shard_size must be positive");
        let mut shards = Vec::with_capacity(self.len().div_ceil(shard_size));
        let mut i = 0;
        while i < self.len() {
            let hi = (i + shard_size).min(self.len());
            shards.push(Arc::new((i..hi).map(|j| self.row(j)).collect()));
            i = hi;
        }
        shards
    }

    /// Heap bytes held by the column arrays and the payload dictionary —
    /// the number a row layout should be compared against.
    pub fn heap_bytes(&self) -> usize {
        let fixed = self.len()
            * (8 /* ts */ + 4 + 4 /* ips */ + 2 + 2 /* ports */ + 1 /* proto */
                + 2 /* len */ + 1 /* flags */ + 4 + 4 /* seq/ack */ + 4/* code */);
        let dict: usize = self.dict.table.iter().map(Vec::len).sum();
        fixed + dict
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn packet(i: u32, payload: &[u8]) -> Packet {
        Packet {
            ts_us: u64::from(i) * 10,
            src_ip: 0x0a00_0000 | i,
            dst_ip: 0xc0a8_0001,
            src_port: 40_000 + i as u16,
            dst_port: 80,
            proto: if i % 3 == 0 { Proto::Udp } else { Proto::Tcp },
            len: 40 + i as u16,
            flags: TcpFlags::new(i % 2 == 0, true, false, false, i % 5 == 0),
            seq: i * 1000,
            ack: i * 500,
            payload: payload.to_vec(),
        }
    }

    fn pool_trace(n: u32) -> Vec<Packet> {
        let pool: [&[u8]; 3] = [b"GET / HTTP/1.1", b"", b"wormbody"];
        (0..n).map(|i| packet(i, pool[i as usize % 3])).collect()
    }

    #[test]
    fn rows_round_trip_exactly() {
        let packets = pool_trace(50);
        let cols = PacketColumns::from_packets(&packets);
        assert_eq!(cols.len(), 50);
        for (i, p) in packets.iter().enumerate() {
            assert_eq!(&cols.row(i), p, "row {i} diverged");
        }
    }

    #[test]
    fn dictionary_deduplicates_payloads() {
        let cols = PacketColumns::from_packets(&pool_trace(300));
        assert_eq!(cols.dict.len(), 3, "3 distinct payloads in the pool");
        // Same bytes → same code, across the whole trace.
        assert_eq!(cols.payload_code[0], cols.payload_code[3]);
        assert_ne!(cols.payload_code[0], cols.payload_code[1]);
    }

    #[test]
    fn interning_is_stable_and_injective() {
        let mut dict = PayloadDict::new();
        let a = dict.intern(b"alpha");
        let b = dict.intern(b"beta");
        assert_ne!(a, b);
        assert_eq!(dict.intern(b"alpha"), a);
        assert_eq!(dict.decode(a), b"alpha");
        assert_eq!(dict.decode(b), b"beta");
        assert_eq!(dict.len(), 2);
    }

    #[test]
    fn shards_preserve_flat_order_for_any_shard_size() {
        let packets = pool_trace(23);
        let cols = PacketColumns::from_packets(&packets);
        for shard_size in [1, 4, 7, 23, 100] {
            let shards = cols.to_shards(shard_size);
            let flat: Vec<Packet> = shards.iter().flat_map(|s| s.iter().cloned()).collect();
            assert_eq!(flat, packets, "shard_size {shard_size}");
            assert!(shards.iter().all(|s| s.len() <= shard_size));
        }
    }

    #[test]
    fn empty_trace_emits_no_shards() {
        let cols = PacketColumns::new();
        assert!(cols.is_empty());
        assert!(cols.to_shards(8).is_empty());
        assert_eq!(cols.heap_bytes(), 0);
    }

    #[test]
    fn columnar_heap_is_smaller_than_row_heap_for_pooled_payloads() {
        let packets = pool_trace(1000);
        let cols = PacketColumns::from_packets(&packets);
        // Rows: every packet re-owns its payload bytes.
        let row_payload_heap: usize = packets.iter().map(|p| p.payload.len()).sum();
        let dict_heap: usize = cols.dict.table.iter().map(Vec::len).sum();
        assert!(dict_heap < row_payload_heap / 100);
    }
}
