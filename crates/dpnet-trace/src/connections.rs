//! TCP connection identification — the paper's §5.2.1 missing piece.
//!
//! Swing computes statistics *per connection* (e.g. packets per
//! connection), but "a (5-tuple) flow may include multiple TCP connections,
//! and we could not isolate the connections within a flow using the
//! currently available operations. … The data owner could pre-process the
//! traces to add a 'connection id' field." This module is that owner-side
//! pre-processing: it walks a trace and annotates every TCP packet with a
//! connection identifier, splitting a conversation at each fresh client SYN.
//!
//! With the annotation in place, connection-level analyses become ordinary
//! `GroupBy(conn_id)` queries — see
//! `dpnet_analyses::flow_stats::connection_size_cdf`.

use crate::flow::FlowKey;
use crate::packet::Packet;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// A packet annotated with the TCP connection it belongs to. Non-TCP
/// packets receive a connection id derived from their flow alone.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ConnPacket {
    /// Opaque connection identifier: stable across runs for the same trace.
    pub conn_id: u64,
    /// The annotated packet.
    pub packet: Packet,
}

fn conn_hash(key: &FlowKey, ordinal: u32) -> u64 {
    let mut h = DefaultHasher::new();
    (key.canonical(), ordinal).hash(&mut h);
    h.finish()
}

/// Annotate a time-sorted trace with connection ids.
///
/// Within each bidirectional conversation (canonical 5-tuple), a *pure SYN*
/// (SYN without ACK) that follows any earlier traffic of the conversation
/// starts a new connection; every subsequent packet belongs to that
/// connection until the next such SYN. Packets seen before any SYN (a
/// capture that starts mid-connection) belong to ordinal 0 — distinct from
/// the connection a later SYN opens. A *retransmitted* SYN therefore also
/// splits; that only matters when the original got no reply at all, an
/// acceptable owner-side semantic.
pub fn annotate_connections(packets: &[Packet]) -> Vec<ConnPacket> {
    let mut ordinal: HashMap<FlowKey, u32> = HashMap::new();
    let mut seen_any: HashMap<FlowKey, bool> = HashMap::new();
    packets
        .iter()
        .map(|p| {
            let key = FlowKey::of(p).canonical();
            if key.is_tcp() && p.flags.is_syn() && !p.flags.is_ack() {
                let ord = ordinal.entry(key).or_insert(0);
                if *seen_any.get(&key).unwrap_or(&false) {
                    *ord += 1;
                }
            }
            seen_any.insert(key, true);
            let ord = *ordinal.get(&key).unwrap_or(&0);
            ConnPacket {
                conn_id: conn_hash(&key, ord),
                packet: p.clone(),
            }
        })
        .collect()
}

/// Exact packets-per-connection sizes (the noise-free baseline for the
/// connection-level Swing statistic), for TCP connections only.
pub fn packets_per_connection(packets: &[Packet]) -> Vec<usize> {
    let annotated = annotate_connections(packets);
    let mut counts: HashMap<u64, usize> = HashMap::new();
    for cp in &annotated {
        if FlowKey::of(&cp.packet).is_tcp() {
            *counts.entry(cp.conn_id).or_default() += 1;
        }
    }
    let mut out: Vec<usize> = counts.into_values().collect();
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Proto, TcpFlags};

    fn tcp(
        ts: u64,
        src: u32,
        dst: u32,
        sp: u16,
        dp: u16,
        flags: TcpFlags,
        payload: usize,
    ) -> Packet {
        Packet {
            ts_us: ts,
            src_ip: src,
            dst_ip: dst,
            src_port: sp,
            dst_port: dp,
            proto: Proto::Tcp,
            len: (40 + payload) as u16,
            flags,
            seq: ts as u32,
            ack: 0,
            payload: vec![0; payload],
        }
    }

    #[test]
    fn one_connection_keeps_one_id() {
        let pkts = vec![
            tcp(0, 1, 2, 10, 80, TcpFlags::syn(), 0),
            tcp(1, 2, 1, 80, 10, TcpFlags::syn_ack(), 0),
            tcp(2, 1, 2, 10, 80, TcpFlags::ack(), 100),
            tcp(3, 2, 1, 80, 10, TcpFlags::ack(), 100),
        ];
        let annotated = annotate_connections(&pkts);
        let ids: std::collections::HashSet<u64> = annotated.iter().map(|c| c.conn_id).collect();
        assert_eq!(ids.len(), 1, "both directions share one connection");
    }

    #[test]
    fn second_syn_starts_a_new_connection() {
        let pkts = vec![
            tcp(0, 1, 2, 10, 80, TcpFlags::syn(), 0),
            tcp(1, 1, 2, 10, 80, TcpFlags::ack(), 50),
            tcp(
                2,
                1,
                2,
                10,
                80,
                TcpFlags::new(false, true, true, false, false),
                0,
            ),
            tcp(3, 1, 2, 10, 80, TcpFlags::syn(), 0), // connection #2
            tcp(4, 1, 2, 10, 80, TcpFlags::ack(), 50),
        ];
        let annotated = annotate_connections(&pkts);
        assert_eq!(annotated[0].conn_id, annotated[1].conn_id);
        assert_eq!(annotated[0].conn_id, annotated[2].conn_id);
        assert_ne!(annotated[2].conn_id, annotated[3].conn_id);
        assert_eq!(annotated[3].conn_id, annotated[4].conn_id);
    }

    #[test]
    fn retransmitted_syn_does_not_split() {
        // A retransmitted SYN is still the first handshake: but our rule
        // splits on every fresh SYN after traffic. A SYN immediately
        // following a SYN (no intervening established traffic) is the same
        // connection in spirit; the rule splits it, which only matters if
        // the first SYN got no reply — acceptable owner-side semantics.
        // What we *do* guarantee: SYN-ACKs never split.
        let pkts = vec![
            tcp(0, 1, 2, 10, 80, TcpFlags::syn(), 0),
            tcp(1, 2, 1, 80, 10, TcpFlags::syn_ack(), 0),
            tcp(2, 2, 1, 80, 10, TcpFlags::syn_ack(), 0), // retransmitted SYN-ACK
            tcp(3, 1, 2, 10, 80, TcpFlags::ack(), 10),
        ];
        let annotated = annotate_connections(&pkts);
        let ids: std::collections::HashSet<u64> = annotated.iter().map(|c| c.conn_id).collect();
        assert_eq!(ids.len(), 1);
    }

    #[test]
    fn mid_capture_traffic_gets_ordinal_zero() {
        let pkts = vec![
            tcp(0, 1, 2, 10, 80, TcpFlags::ack(), 10), // no SYN seen yet
            tcp(1, 1, 2, 10, 80, TcpFlags::syn(), 0),  // later: a real new conn
            tcp(2, 1, 2, 10, 80, TcpFlags::ack(), 10),
        ];
        let annotated = annotate_connections(&pkts);
        // The pre-SYN packet and post-SYN packets belong to different
        // connections.
        assert_ne!(annotated[0].conn_id, annotated[1].conn_id);
        assert_eq!(annotated[1].conn_id, annotated[2].conn_id);
    }

    #[test]
    fn different_flows_never_share_ids() {
        let pkts = vec![
            tcp(0, 1, 2, 10, 80, TcpFlags::syn(), 0),
            tcp(1, 3, 4, 10, 80, TcpFlags::syn(), 0),
        ];
        let annotated = annotate_connections(&pkts);
        assert_ne!(annotated[0].conn_id, annotated[1].conn_id);
    }

    #[test]
    fn packets_per_connection_counts_both_directions() {
        let pkts = vec![
            tcp(0, 1, 2, 10, 80, TcpFlags::syn(), 0),
            tcp(1, 2, 1, 80, 10, TcpFlags::syn_ack(), 0),
            tcp(2, 1, 2, 10, 80, TcpFlags::ack(), 10),
            tcp(3, 1, 2, 10, 80, TcpFlags::syn(), 0), // second connection
            tcp(4, 2, 1, 80, 10, TcpFlags::syn_ack(), 0),
        ];
        let sizes = packets_per_connection(&pkts);
        assert_eq!(sizes, vec![2, 3]);
    }

    #[test]
    fn ids_are_stable_across_runs() {
        let pkts = vec![tcp(0, 1, 2, 10, 80, TcpFlags::syn(), 0)];
        let a = annotate_connections(&pkts);
        let b = annotate_connections(&pkts);
        assert_eq!(a[0].conn_id, b[0].conn_id);
    }
}
