//! The packet record model.
//!
//! Records mirror what a tcpdump-style capture of an access link yields:
//! timestamped packets with addresses, ports, TCP header fields, and —
//! unlike publicly released traces — *unaltered payloads*. The paper's
//! Hotspot dataset has exactly this shape (`<timestamp, packet>`), and its
//! analyses rely on the sensitive fields (payloads for worm fingerprinting,
//! addresses/ports for stepping stones) that sanitized public traces remove.

use std::fmt;

/// Transport protocol of a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Proto {
    /// Transmission Control Protocol.
    Tcp,
    /// User Datagram Protocol.
    Udp,
    /// Internet Control Message Protocol.
    Icmp,
    /// Anything else, carrying the raw IP protocol number.
    Other(u8),
}

impl Proto {
    /// IANA protocol number.
    pub fn number(self) -> u8 {
        match self {
            Proto::Tcp => 6,
            Proto::Udp => 17,
            Proto::Icmp => 1,
            Proto::Other(n) => n,
        }
    }

    /// Build from an IANA protocol number.
    pub fn from_number(n: u8) -> Self {
        match n {
            6 => Proto::Tcp,
            17 => Proto::Udp,
            1 => Proto::Icmp,
            other => Proto::Other(other),
        }
    }
}

/// TCP header flags, packed into one byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TcpFlags(pub u8);

impl TcpFlags {
    /// FIN bit.
    pub const FIN: u8 = 0x01;
    /// SYN bit.
    pub const SYN: u8 = 0x02;
    /// RST bit.
    pub const RST: u8 = 0x04;
    /// PSH bit.
    pub const PSH: u8 = 0x08;
    /// ACK bit.
    pub const ACK: u8 = 0x10;

    /// Construct from individual bits.
    pub fn new(syn: bool, ack: bool, fin: bool, rst: bool, psh: bool) -> Self {
        let mut f = 0;
        if syn {
            f |= Self::SYN;
        }
        if ack {
            f |= Self::ACK;
        }
        if fin {
            f |= Self::FIN;
        }
        if rst {
            f |= Self::RST;
        }
        if psh {
            f |= Self::PSH;
        }
        TcpFlags(f)
    }

    /// A plain SYN (connection request).
    pub fn syn() -> Self {
        TcpFlags(Self::SYN)
    }

    /// A SYN-ACK (connection accept).
    pub fn syn_ack() -> Self {
        TcpFlags(Self::SYN | Self::ACK)
    }

    /// A plain ACK.
    pub fn ack() -> Self {
        TcpFlags(Self::ACK)
    }

    /// Whether the SYN bit is set.
    pub fn is_syn(self) -> bool {
        self.0 & Self::SYN != 0
    }

    /// Whether the ACK bit is set.
    pub fn is_ack(self) -> bool {
        self.0 & Self::ACK != 0
    }

    /// Whether the FIN bit is set.
    pub fn is_fin(self) -> bool {
        self.0 & Self::FIN != 0
    }

    /// Whether the RST bit is set.
    pub fn is_rst(self) -> bool {
        self.0 & Self::RST != 0
    }

    /// Whether the PSH bit is set.
    pub fn is_psh(self) -> bool {
        self.0 & Self::PSH != 0
    }
}

impl fmt::Display for TcpFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        for (bit, c) in [
            (Self::SYN, 'S'),
            (Self::ACK, 'A'),
            (Self::FIN, 'F'),
            (Self::RST, 'R'),
            (Self::PSH, 'P'),
        ] {
            if self.0 & bit != 0 {
                out.push(c);
            }
        }
        if out.is_empty() {
            out.push('.');
        }
        f.write_str(&out)
    }
}

/// One captured packet. The `<timestamp, packet>` record of the paper's
/// Hotspot dataset.
///
/// Timestamps are microseconds since the start of the trace: integral
/// timestamps keep generation and analysis exactly reproducible.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Packet {
    /// Capture time, microseconds since trace start.
    pub ts_us: u64,
    /// Source IPv4 address (host byte order).
    pub src_ip: u32,
    /// Destination IPv4 address (host byte order).
    pub dst_ip: u32,
    /// Source transport port.
    pub src_port: u16,
    /// Destination transport port.
    pub dst_port: u16,
    /// Transport protocol.
    pub proto: Proto,
    /// Total packet length in bytes (header + payload).
    pub len: u16,
    /// TCP flags (zero for non-TCP packets).
    pub flags: TcpFlags,
    /// TCP sequence number (zero for non-TCP).
    pub seq: u32,
    /// TCP acknowledgment number (zero for non-TCP).
    pub ack: u32,
    /// Application payload bytes. Kept verbatim — this is sensitive data the
    /// DP layer is responsible for protecting.
    pub payload: Vec<u8>,
}

impl Packet {
    /// Capture time in whole milliseconds.
    pub fn ts_ms(&self) -> u64 {
        self.ts_us / 1000
    }

    /// Capture time in seconds as a float (for display only; analysis code
    /// uses the integral microsecond clock).
    pub fn ts_secs(&self) -> f64 {
        self.ts_us as f64 / 1e6
    }
}

/// Render an IPv4 address stored as a `u32` in dotted-quad form.
pub fn format_ip(ip: u32) -> String {
    format!(
        "{}.{}.{}.{}",
        (ip >> 24) & 0xff,
        (ip >> 16) & 0xff,
        (ip >> 8) & 0xff,
        ip & 0xff
    )
}

/// Parse a dotted-quad IPv4 address into a `u32`. Returns `None` on
/// malformed input.
pub fn parse_ip(s: &str) -> Option<u32> {
    let mut parts = s.split('.');
    let mut ip: u32 = 0;
    for _ in 0..4 {
        let octet: u32 = parts.next()?.parse().ok()?;
        if octet > 255 {
            return None;
        }
        ip = (ip << 8) | octet;
    }
    if parts.next().is_some() {
        return None;
    }
    Some(ip)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proto_numbers_round_trip() {
        for p in [Proto::Tcp, Proto::Udp, Proto::Icmp, Proto::Other(89)] {
            assert_eq!(Proto::from_number(p.number()), p);
        }
    }

    #[test]
    fn flags_constructors_and_accessors() {
        assert!(TcpFlags::syn().is_syn());
        assert!(!TcpFlags::syn().is_ack());
        assert!(TcpFlags::syn_ack().is_syn());
        assert!(TcpFlags::syn_ack().is_ack());
        let f = TcpFlags::new(false, true, true, false, true);
        assert!(f.is_ack() && f.is_fin() && f.is_psh());
        assert!(!f.is_syn() && !f.is_rst());
    }

    #[test]
    fn flags_display_is_compact() {
        assert_eq!(TcpFlags::syn_ack().to_string(), "SA");
        assert_eq!(TcpFlags::default().to_string(), ".");
    }

    #[test]
    fn timestamps_convert() {
        let p = Packet {
            ts_us: 1_500_000,
            src_ip: 0,
            dst_ip: 0,
            src_port: 0,
            dst_port: 0,
            proto: Proto::Tcp,
            len: 40,
            flags: TcpFlags::ack(),
            seq: 0,
            ack: 0,
            payload: vec![],
        };
        assert_eq!(p.ts_ms(), 1500);
        assert!((p.ts_secs() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn ip_formatting_round_trips() {
        for s in ["0.0.0.0", "10.1.2.3", "255.255.255.255", "192.168.69.100"] {
            assert_eq!(format_ip(parse_ip(s).unwrap()), s);
        }
    }

    #[test]
    fn ip_parsing_rejects_garbage() {
        assert!(parse_ip("1.2.3").is_none());
        assert!(parse_ip("1.2.3.4.5").is_none());
        assert!(parse_ip("1.2.3.256").is_none());
        assert!(parse_ip("a.b.c.d").is_none());
    }
}
