//! Property-based tests of the trace substrate: format round-trips for
//! arbitrary packets, TCP interpretation invariants, connection annotation
//! invariants.

use dpnet_trace::connections::annotate_connections;
use dpnet_trace::format::text::{read_text, write_text};
use dpnet_trace::format::{read_trace, write_trace};
use dpnet_trace::packet::{Packet, Proto, TcpFlags};
use dpnet_trace::tcp::{activation_correlation, activations};
use proptest::prelude::*;

fn arb_packet() -> impl Strategy<Value = Packet> {
    (
        0u64..10_000_000_000,
        any::<u32>(),
        any::<u32>(),
        any::<u16>(),
        any::<u16>(),
        0u8..4,
        any::<u16>(),
        0u8..32,
        any::<u32>(),
        any::<u32>(),
        prop::collection::vec(any::<u8>(), 0..32),
    )
        .prop_map(
            |(ts_us, src_ip, dst_ip, src_port, dst_port, proto, len, flags, seq, ack, payload)| {
                Packet {
                    ts_us,
                    src_ip,
                    dst_ip,
                    src_port,
                    dst_port,
                    proto: match proto {
                        0 => Proto::Tcp,
                        1 => Proto::Udp,
                        2 => Proto::Icmp,
                        _ => Proto::Other(42),
                    },
                    len,
                    flags: TcpFlags(flags),
                    seq,
                    ack,
                    payload,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn binary_format_round_trips(packets in prop::collection::vec(arb_packet(), 0..50)) {
        let mut buf = Vec::new();
        write_trace(&mut buf, &packets).unwrap();
        let back = read_trace(&buf[..]).unwrap();
        prop_assert_eq!(back, packets);
    }

    #[test]
    fn text_format_round_trips(packets in prop::collection::vec(arb_packet(), 0..50)) {
        let mut buf = Vec::new();
        write_text(&mut buf, &packets).unwrap();
        let back = read_text(&buf[..]).unwrap();
        prop_assert_eq!(back, packets);
    }

    #[test]
    fn truncated_binary_never_panics(
        packets in prop::collection::vec(arb_packet(), 1..20),
        cut in 0usize..200,
    ) {
        let mut buf = Vec::new();
        write_trace(&mut buf, &packets).unwrap();
        let cut = cut.min(buf.len());
        // Must return an error or a (possibly shorter) valid trace, never
        // panic.
        let _ = read_trace(&buf[..cut]);
    }

    #[test]
    fn activations_are_subset_of_packets_and_spaced(
        mut times in prop::collection::vec(0u64..100_000_000, 1..80),
        t_idle in 100_000u64..5_000_000,
    ) {
        times.sort_unstable();
        let packets: Vec<Packet> = times
            .iter()
            .map(|&ts| Packet {
                ts_us: ts,
                src_ip: 1,
                dst_ip: 2,
                src_port: 10,
                dst_port: 22,
                proto: Proto::Tcp,
                len: 60,
                flags: TcpFlags::ack(),
                seq: 0,
                ack: 0,
                payload: vec![1],
            })
            .collect();
        let acts = activations(&packets, t_idle);
        // At least the first packet activates; consecutive activations of
        // the single flow are at least t_idle apart.
        prop_assert!(!acts.is_empty());
        prop_assert_eq!(acts[0].ts_us, times[0]);
        for w in acts.windows(2) {
            prop_assert!(w[1].ts_us - w[0].ts_us >= t_idle);
        }
    }

    #[test]
    fn correlation_is_a_fraction_and_self_correlation_is_full(
        mut a in prop::collection::vec(0u64..1_000_000_000, 1..50),
        delta in 1u64..1_000_000,
    ) {
        a.sort_unstable();
        let c_self = activation_correlation(&a, &a, delta);
        prop_assert!((c_self - 1.0).abs() < 1e-12);
        let c_none = activation_correlation(&a, &[], delta);
        prop_assert_eq!(c_none, 0.0);
    }

    #[test]
    fn decision_tree_always_agrees_with_linear_scan(
        packets in prop::collection::vec(arb_packet(), 0..200),
        leaf_size in 1usize..6,
    ) {
        use dpnet_trace::classify::{example_ruleset, DecisionTree};
        let cls = example_ruleset();
        let tree = DecisionTree::build(cls.clone(), leaf_size, 24);
        for p in &packets {
            prop_assert_eq!(tree.classify(p), cls.classify(p));
        }
    }

    #[test]
    fn connection_annotation_preserves_packets_and_flow_locality(
        packets in prop::collection::vec(arb_packet(), 0..60),
    ) {
        let annotated = annotate_connections(&packets);
        prop_assert_eq!(annotated.len(), packets.len());
        for (cp, p) in annotated.iter().zip(&packets) {
            prop_assert_eq!(&cp.packet, p);
        }
        // Packets of different conversations never share a connection id.
        for i in 0..annotated.len() {
            for j in (i + 1)..annotated.len() {
                let ki = dpnet_trace::FlowKey::of(&annotated[i].packet).canonical();
                let kj = dpnet_trace::FlowKey::of(&annotated[j].packet).canonical();
                if annotated[i].conn_id == annotated[j].conn_id {
                    prop_assert_eq!(ki, kj, "shared conn_id across conversations");
                }
            }
        }
    }
}
