//! End-to-end semantics of the serving path: budget races admit exactly
//! the affordable prefix, the server path is bit-identical to the library
//! path, per-session audit files are complete, and the daemon sustains a
//! thousand concurrent sessions without a single unexpected failure.

use dpnet_bench::registry;
use dpnet_serve::loadtest::LoadtestConfig;
use dpnet_serve::{run_loadtest, serve, Client, ClientError, ErrorKind, ServeConfig};
use dpnet_trace::{Packet, Proto, TcpFlags};
use pinq::{NoiseSource, SessionManager};
use std::sync::Arc;

fn packets(n: u32) -> Vec<Packet> {
    (0..n)
        .map(|i| Packet {
            ts_us: u64::from(i) * 10,
            src_ip: 0x0a00_0000 | (i % 64),
            dst_ip: 0xc0a8_0001,
            src_port: 40_000 + (i % 1000) as u16,
            dst_port: if i % 4 == 0 { 443 } else { 80 },
            proto: if i % 7 == 0 { Proto::Udp } else { Proto::Tcp },
            len: 40 + (i % 1400) as u16,
            flags: TcpFlags::new(i % 11 == 0, true, false, false, i % 5 == 0),
            seq: i * 1000,
            ack: i * 500,
            payload: Vec::new(),
        })
        .collect()
}

/// Many clients race one analyst's cap: with dyadic ε (no rounding
/// residue) exactly the budget-feasible prefix succeeds — the kernel's
/// transactional charges mean no interleaving can over- or under-admit.
#[test]
fn concurrent_clients_racing_one_cap_admit_exactly_the_affordable_prefix() {
    let handle = serve(
        vec![Arc::new(packets(300))],
        NoiseSource::seeded(7),
        ServeConfig {
            global_eps: 100.0,
            analyst_cap: 1.0,
            ..ServeConfig::default()
        },
    )
    .expect("daemon");
    let addr = handle.addr();

    let outcomes: Vec<Result<(), ErrorKind>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..16)
            .map(|_| {
                scope.spawn(move || {
                    let mut c = Client::connect(addr).expect("connect");
                    c.open("shared-analyst").expect("open");
                    let r = match c.query("count", 0.125) {
                        Ok(_) => Ok(()),
                        Err(ClientError::Server(e)) => Err(e.kind),
                        Err(other) => panic!("unexpected failure: {other}"),
                    };
                    c.close().expect("close");
                    r
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("no panic"))
            .collect()
    });

    let ok = outcomes.iter().filter(|r| r.is_ok()).count();
    let exhausted = outcomes
        .iter()
        .filter(|r| matches!(r, Err(ErrorKind::BudgetExhausted)))
        .count();
    assert_eq!(ok, 8, "cap 1.0 at ε 0.125 affords exactly 8: {outcomes:?}");
    assert_eq!(exhausted, 8);
    let spent = handle
        .broker()
        .manager()
        .analyst_budget("shared-analyst")
        .spent();
    assert!((spent - 1.0).abs() < 1e-12, "cap fully consumed: {spent}");
}

/// A fixed-seed single-session run through the server releases values and
/// spend readings bit-identical to the equivalent library-path calls: the
/// wire (shortest-roundtrip f64) adds no drift, and the daemon adds no
/// hidden ε.
#[test]
fn server_path_is_bit_identical_to_the_library_path() {
    let trace = packets(400);
    let seed = 0xd5ee_d001u64;

    // Library path: same manager shape the daemon builds internally.
    let manager = SessionManager::new(trace.clone(), NoiseSource::seeded(seed), 10.0, 2.0);
    let session = manager.open("alice");
    let lib_count = registry::find("count")
        .unwrap()
        .run(session.queryable(), 0.25)
        .expect("library count");
    let lib_lengths = registry::find("lengths")
        .unwrap()
        .run(session.queryable(), 0.25)
        .expect("library lengths");
    let lib_spent = session.spent();

    // Server path: identical trace, seed, and budgets, over real TCP.
    let handle = serve(
        vec![Arc::new(trace)],
        NoiseSource::seeded(seed),
        ServeConfig {
            global_eps: 10.0,
            analyst_cap: 2.0,
            ..ServeConfig::default()
        },
    )
    .expect("daemon");
    let mut client = Client::connect(handle.addr()).expect("connect");
    client.open("alice").expect("open");
    let srv_count = client.query("count", 0.25).expect("served count");
    let srv_lengths = client.query("lengths", 0.25).expect("served lengths");
    let spend = client.spend().expect("spend");

    assert_eq!(lib_count.values, srv_count.values, "count releases differ");
    assert_eq!(
        lib_lengths.values, srv_lengths.values,
        "lengths releases differ"
    );
    assert_eq!(lib_count.text, srv_count.text);
    assert_eq!(
        lib_spent.to_bits(),
        spend.session_spent.to_bits(),
        "spend readings differ: {lib_spent} vs {}",
        spend.session_spent
    );
    let final_spent = client.close().expect("close");
    assert_eq!(final_spent.to_bits(), lib_spent.to_bits());
}

/// Per-session audit files: a live JSONL stream of the session's charges,
/// closed out with the exact ledger, one file per session, plus the
/// owner's stream with session open/close events.
#[test]
fn audit_dir_gets_per_session_streams_and_the_owner_ledger() {
    let dir = std::env::temp_dir().join(format!("dpnet-serve-audit-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let handle = serve(
        vec![Arc::new(packets(200))],
        NoiseSource::seeded(3),
        ServeConfig {
            global_eps: 10.0,
            analyst_cap: 2.0,
            audit_dir: Some(dir.clone()),
            ..ServeConfig::default()
        },
    )
    .expect("daemon");

    let mut a = Client::connect(handle.addr()).expect("connect");
    a.open("alice").expect("open");
    a.query("count", 0.25).expect("query");
    a.close().expect("close");

    let mut b = Client::connect(handle.addr()).expect("connect");
    b.open("bob").expect("open");
    b.query("count", 0.125).expect("query");
    drop(b); // disconnect without close: the server still finalizes

    // Wait for the connection thread to flush bob's file.
    let bob_path = || {
        std::fs::read_dir(&dir).ok().and_then(|entries| {
            entries.filter_map(|e| e.ok()).map(|e| e.path()).find(|p| {
                p.file_name()
                    .is_some_and(|n| n.to_string_lossy().contains("bob"))
            })
        })
    };
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    loop {
        if let Some(p) = bob_path() {
            if std::fs::read_to_string(&p).is_ok_and(|t| t.contains("\"summary\"")) {
                break;
            }
        }
        assert!(
            std::time::Instant::now() < deadline,
            "bob's audit file never finalized"
        );
        std::thread::sleep(std::time::Duration::from_millis(20));
    }

    // Every session file is valid JSONL ending in an exact ledger.
    let mut session_files = 0;
    for entry in std::fs::read_dir(&dir).expect("audit dir") {
        let path = entry.expect("entry").path();
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let text = std::fs::read_to_string(&path).expect("readable");
        for line in text.lines() {
            assert!(
                dpnet_obs::json::parse_value(line).is_some(),
                "invalid JSONL line in {name}: {line}"
            );
        }
        if name.starts_with("session-") {
            session_files += 1;
            assert!(text.contains("\"type\":\"summary\""), "{name} lacks ledger");
            assert!(text.contains("\"charge\""), "{name} saw no charges");
        }
    }
    assert_eq!(session_files, 2, "one audit file per session");

    // The owner stream carries the session lifecycle events.
    let owner = std::fs::read_to_string(dir.join("serve-audit.jsonl")).expect("owner stream");
    assert!(owner.contains("\"session\""), "{owner}");
    assert!(owner.contains("\"opened\""), "{owner}");
    assert!(owner.contains("\"closed\""), "{owner}");
    assert!(owner.contains("alice") && owner.contains("bob"), "{owner}");

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The headline scale requirement: ≥ 1000 concurrent analyst sessions,
/// zero panics, zero unexpected errors, graceful budget refusals only.
#[test]
fn one_thousand_concurrent_sessions_with_zero_unexpected_errors() {
    let handle = serve(
        vec![Arc::new(packets(300))],
        NoiseSource::seeded(11),
        ServeConfig {
            // 100 analysts × cap 1.0 ≥ 1000 sessions × 2 requests × 1e-4,
            // so every request is affordable; any refusal is a bug here.
            global_eps: 1000.0,
            analyst_cap: 1.0,
            max_concurrent_jobs: 16,
            ..ServeConfig::default()
        },
    )
    .expect("daemon");

    let cfg = LoadtestConfig {
        sessions: 1000,
        requests: 2,
        analysts: 100,
        analysis: "count".to_string(),
        eps: 1e-4,
    };
    let outcome = run_loadtest(handle.addr(), &cfg).expect("loadtest");

    assert_eq!(outcome.errors, Vec::<String>::new(), "unexpected errors");
    assert_eq!(outcome.sessions, 1000, "all sessions opened");
    assert_eq!(outcome.requests, 2000);
    assert_eq!(outcome.ok, 2000, "all requests affordable");
    assert_eq!(outcome.budget_exhausted, 0);
    let summary = outcome.summary();
    assert!(summary.p50_ns > 0 && summary.p50_ns <= summary.p95_ns);
    assert!(summary.p95_ns <= summary.p99_ns && summary.p99_ns <= summary.max_ns);

    // Every session closed; the books balance exactly.
    let broker = handle.broker().clone();
    assert_eq!(broker.live_sessions(), 0, "sessions leaked");
    let spent = broker.manager().global().spent();
    assert!(
        (spent - 2000.0 * 1e-4).abs() < 1e-9,
        "global spend off: {spent}"
    );
    handle.shutdown();
}
