//! Hostile-input robustness: the daemon must never panic and must answer
//! every decodable request with a typed response. Malformed JSON,
//! truncated frames, and oversized length prefixes are all exercised over
//! real TCP.

use dpnet_serve::{serve, Client, ErrorKind, Response, ServeConfig};
use dpnet_trace::{Packet, Proto, TcpFlags};
use pinq::NoiseSource;
use proptest::prelude::*;
use std::io::Write as _;
use std::net::TcpStream;
use std::sync::Arc;

fn packets(n: u32) -> Vec<Packet> {
    (0..n)
        .map(|i| Packet {
            ts_us: u64::from(i) * 10,
            src_ip: 0x0a00_0000 | (i % 64),
            dst_ip: 0xc0a8_0001,
            src_port: 40_000 + (i % 1000) as u16,
            dst_port: 80,
            proto: Proto::Tcp,
            len: 40 + (i % 1400) as u16,
            flags: TcpFlags::ack(),
            seq: i * 1000,
            ack: i * 500,
            payload: Vec::new(),
        })
        .collect()
}

fn daemon() -> dpnet_serve::ServerHandle {
    serve(
        vec![Arc::new(packets(300))],
        NoiseSource::seeded(0xbad),
        ServeConfig {
            global_eps: 100.0,
            analyst_cap: 10.0,
            ..ServeConfig::default()
        },
    )
    .expect("daemon starts")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary bytes never panic the request parser: every input maps
    /// to a parsed request or a typed error.
    #[test]
    fn request_parser_never_panics(payload in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = dpnet_serve::Request::parse(&payload);
    }

    /// Arbitrary bytes never panic the response parser either (a hostile
    /// server must not crash a client).
    #[test]
    fn response_parser_never_panics(payload in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = Response::parse(&payload);
    }
}

#[test]
fn garbage_payloads_get_typed_errors_and_the_session_survives() {
    let handle = daemon();
    let mut client = Client::connect(handle.addr()).expect("connect");
    client.open("mallory").expect("open");
    client.query("count", 0.01).expect("first query");

    // A parade of well-framed garbage: every one answers with a typed
    // error, none kills the connection or the session.
    let cases: &[(&[u8], ErrorKind)] = &[
        (b"", ErrorKind::BadFrame),
        (b"\xff\xfe\x00garbage", ErrorKind::BadFrame),
        (b"[1,2,3]", ErrorKind::BadFrame),
        (b"{\"op\":42}", ErrorKind::BadFrame),
        (b"{\"op\":\"query\"}", ErrorKind::InvalidRequest),
        (
            b"{\"op\":\"query\",\"analysis\":\"count\",\"eps\":\"lots\"}",
            ErrorKind::InvalidRequest,
        ),
        (
            b"{\"op\":\"query\",\"analysis\":\"count\",\"eps\":0}",
            ErrorKind::InvalidRequest,
        ),
        (
            b"{\"op\":\"open\",\"analyst\":\"x\"}",
            ErrorKind::SessionAlreadyOpen,
        ),
        (b"{\"op\":\"teleport\"}", ErrorKind::InvalidRequest),
    ];
    for (payload, kind) in cases {
        match client.send_raw_frame(payload).expect("typed response") {
            Response::Error(e) => assert_eq!(e.kind, *kind, "payload {payload:?}"),
            other => panic!("expected error for {payload:?}, got {other:?}"),
        }
    }

    // The session shrugged it all off: still answering, still metered.
    client.query("count", 0.01).expect("query after garbage");
    let spend = client.spend().expect("spend");
    assert!((spend.session_spent - 0.02).abs() < 1e-12, "{spend:?}");
    client.close().expect("close");
}

#[test]
fn truncated_frames_drop_the_connection_but_not_the_daemon() {
    let handle = daemon();
    // Claim 100 bytes, send 5, hang up.
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    stream.write_all(&100u32.to_be_bytes()).unwrap();
    stream.write_all(b"trunc").unwrap();
    drop(stream);

    // Hang up mid-length-prefix too.
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    stream.write_all(&[0, 0]).unwrap();
    drop(stream);

    // The daemon keeps serving fresh connections.
    let mut client = Client::connect(handle.addr()).expect("connect after truncations");
    client.ping().expect("ping");
    client.open("carol").expect("open");
    client.query("count", 0.01).expect("query");
}

#[test]
fn oversized_frames_are_refused_with_a_typed_error_then_disconnected() {
    let handle = daemon();
    let mut client = Client::connect(handle.addr()).expect("connect");
    client.open("dave").expect("open");

    // A hostile length prefix far past MAX_FRAME. The server answers
    // frame_too_large, then closes (the stream cannot be resynced).
    client
        .stream_mut()
        .write_all(&(u32::MAX).to_be_bytes())
        .unwrap();
    client.stream_mut().write_all(b"xx").unwrap();
    match client.read_response().expect("typed refusal") {
        Response::Error(e) => assert_eq!(e.kind, ErrorKind::FrameTooLarge),
        other => panic!("expected frame_too_large, got {other:?}"),
    }
    assert!(
        client.ping().is_err(),
        "connection should be closed after an oversized frame"
    );

    // The abandoned session was closed server-side; the analyst can
    // reconnect and open a new one.
    let mut client = Client::connect(handle.addr()).expect("reconnect");
    client.open("dave").expect("open again");
    client.query("count", 0.01).expect("query");
    let broker = handle.broker().clone();
    assert_eq!(broker.live_sessions(), 1, "stale session not reaped");
}

#[test]
fn requests_before_open_get_session_not_open() {
    let handle = daemon();
    let mut client = Client::connect(handle.addr()).expect("connect");
    for attempt in [
        client.query("count", 0.1).unwrap_err(),
        client.spend().unwrap_err(),
        client.close().unwrap_err(),
    ] {
        let e = attempt.server_error().expect("typed");
        assert_eq!(e.kind, ErrorKind::SessionNotOpen);
    }
    // Catalogue and ping work unauthenticated.
    client.ping().expect("ping");
    let catalogue = client.analyses().expect("analyses");
    assert!(catalogue.iter().any(|(name, _, _)| name == "count"));
}
