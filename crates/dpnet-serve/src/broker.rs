//! The admission layer between analyst sessions and the shared executor.
//!
//! One [`QueryBroker`] fronts one [`SessionManager`]: it tracks the live
//! sessions the daemon has opened, bounds how many analysis jobs run on
//! the shared worker pool at once (a `JobSlots` counting gate — the
//! `ExecPool` spawns scoped worker threads per job, so unbounded
//! admission under thousands of sessions would explode thread counts),
//! and converts every failure into a typed [`ServeError`]. The key
//! conversion is `pinq::Error::BudgetExceeded` → `budget_exhausted`: the
//! kernel's transactional refusal (nothing charged) becomes a graceful
//! wire response and the session stays open.

use crate::protocol::{ErrorKind, ServeError};
use dpnet_bench::registry;
use dpnet_bench::registry::AnalysisOutput;
use dpnet_trace::Packet;
use pinq::{Session, SessionManager, SessionSpend};
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Broker tuning knobs.
#[derive(Debug, Clone)]
pub struct BrokerConfig {
    /// Maximum analysis jobs running on the shared pool at once; further
    /// admitted queries wait for a slot. Connections, opens, spends, and
    /// pings are never gated — only query execution is.
    pub max_concurrent_jobs: usize,
}

impl Default for BrokerConfig {
    fn default() -> Self {
        BrokerConfig {
            max_concurrent_jobs: 8,
        }
    }
}

/// A counting semaphore over `std::sync` primitives (the vendored
/// `parking_lot` shim has no `Condvar`).
struct JobSlots {
    free: Mutex<usize>,
    cv: Condvar,
}

impl JobSlots {
    fn new(n: usize) -> Self {
        JobSlots {
            free: Mutex::new(n.max(1)),
            cv: Condvar::new(),
        }
    }

    fn acquire(&self) -> SlotGuard<'_> {
        let mut free = self.free.lock().expect("job-slot mutex poisoned");
        while *free == 0 {
            free = self.cv.wait(free).expect("job-slot mutex poisoned");
        }
        *free -= 1;
        SlotGuard { slots: self }
    }
}

struct SlotGuard<'a> {
    slots: &'a JobSlots,
}

impl Drop for SlotGuard<'_> {
    fn drop(&mut self) {
        let mut free = self.slots.free.lock().expect("job-slot mutex poisoned");
        *free += 1;
        self.slots.cv.notify_one();
    }
}

/// Tracks live sessions and schedules their queries onto the shared pool.
pub struct QueryBroker {
    manager: SessionManager<Packet>,
    sessions: Mutex<HashMap<u64, Arc<Session<Packet>>>>,
    slots: JobSlots,
}

impl QueryBroker {
    /// Wrap `manager` with admission control.
    pub fn new(manager: SessionManager<Packet>, cfg: BrokerConfig) -> Self {
        QueryBroker {
            manager,
            sessions: Mutex::new(HashMap::new()),
            slots: JobSlots::new(cfg.max_concurrent_jobs),
        }
    }

    /// The mediated session registry (owner-side monitoring).
    pub fn manager(&self) -> &SessionManager<Packet> {
        &self.manager
    }

    /// Open a session for `analyst` and register it as live.
    pub fn open(&self, analyst: &str) -> Arc<Session<Packet>> {
        let session = Arc::new(self.manager.open(analyst));
        self.sessions
            .lock()
            .expect("session map poisoned")
            .insert(session.id(), session.clone());
        session
    }

    /// Look a live session up by id.
    pub fn session(&self, id: u64) -> Result<Arc<Session<Packet>>, ServeError> {
        self.sessions
            .lock()
            .expect("session map poisoned")
            .get(&id)
            .cloned()
            .ok_or_else(|| {
                ServeError::new(
                    ErrorKind::SessionNotOpen,
                    format!("no open session with id {id}"),
                )
            })
    }

    /// Number of sessions currently registered as live.
    pub fn live_sessions(&self) -> usize {
        self.sessions.lock().expect("session map poisoned").len()
    }

    /// Run catalogue analysis `analysis` at `eps` through session `id`.
    /// Blocks for a job slot, then executes on the session's inherited
    /// execution context. Returns the released output plus the job's wall
    /// time in ns; every failure is a typed [`ServeError`] and never
    /// perturbs the session.
    pub fn query(
        &self,
        id: u64,
        analysis: &str,
        eps: f64,
    ) -> Result<(AnalysisOutput, u64), ServeError> {
        let session = self.session(id)?;
        let spec = registry::find(analysis).ok_or_else(|| {
            ServeError::new(
                ErrorKind::UnknownAnalysis,
                format!(
                    "no analysis named '{analysis}'; known: {}",
                    registry::names().join(", ")
                ),
            )
        })?;
        let _slot = self.slots.acquire();
        let start = Instant::now();
        match spec.run(session.queryable(), eps) {
            Ok(out) => Ok((out, start.elapsed().as_nanos() as u64)),
            Err(pinq::Error::BudgetExceeded {
                requested,
                available,
            }) => Err(ServeError::budget_exhausted(requested, available)),
            Err(other) => Err(ServeError::new(
                ErrorKind::InvalidRequest,
                format!("analysis rejected the request: {other}"),
            )),
        }
    }

    /// A point-in-time budget reading for session `id`.
    pub fn spend(&self, id: u64) -> Result<SessionSpend, ServeError> {
        Ok(self.session(id)?.snapshot())
    }

    /// Close session `id`: unregister it and return its final reading.
    pub fn close(&self, id: u64) -> Result<SessionSpend, ServeError> {
        let session = self
            .sessions
            .lock()
            .expect("session map poisoned")
            .remove(&id)
            .ok_or_else(|| {
                ServeError::new(
                    ErrorKind::SessionNotOpen,
                    format!("no open session with id {id}"),
                )
            })?;
        drop(session);
        self.manager.close(id).ok_or_else(|| {
            ServeError::new(
                ErrorKind::Internal,
                format!("session {id} vanished from the manager"),
            )
        })
    }

    /// The per-analyst ledger (name, ε spent), sorted by name.
    pub fn ledger(&self) -> Vec<(String, f64)> {
        self.manager.ledger()
    }

    /// The analysis catalogue as wire rows: `(name, summary, default ε)`.
    pub fn catalogue(&self) -> Vec<(String, String, f64)> {
        registry::REGISTRY
            .iter()
            .map(|a| (a.name.to_string(), a.summary.to_string(), a.default_eps))
            .collect()
    }
}

impl std::fmt::Debug for QueryBroker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryBroker")
            .field("live_sessions", &self.live_sessions())
            .field("global_spent", &self.manager.global().spent())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinq::NoiseSource;

    fn broker(global: f64, cap: f64) -> QueryBroker {
        let trace = crate::testdata::packets(500);
        let manager = SessionManager::new(trace, NoiseSource::seeded(42), global, cap);
        QueryBroker::new(manager, BrokerConfig::default())
    }

    #[test]
    fn queries_run_and_budget_refusals_are_typed() {
        let b = broker(10.0, 0.5);
        let s = b.open("alice");
        let (out, wall) = b.query(s.id(), "count", 0.25).expect("count runs");
        assert_eq!(out.values[0].0, "count");
        assert!(wall > 0);
        // Second query overdraws the analyst cap: typed refusal, session
        // alive, spend unchanged.
        let err = b.query(s.id(), "count", 0.5).unwrap_err();
        assert_eq!(err.kind, ErrorKind::BudgetExhausted);
        assert_eq!(err.requested, Some(0.5));
        assert!((b.spend(s.id()).unwrap().session_spent - 0.25).abs() < 1e-12);
        // A cheaper request still succeeds afterwards.
        b.query(s.id(), "count", 0.125).expect("cheaper retry");
    }

    #[test]
    fn unknown_analyses_and_dead_sessions_are_typed() {
        let b = broker(10.0, 1.0);
        let s = b.open("bob");
        let err = b.query(s.id(), "warp-speed", 0.1).unwrap_err();
        assert_eq!(err.kind, ErrorKind::UnknownAnalysis);
        let spend = b.close(s.id()).expect("close once");
        assert_eq!(spend.session_id, s.id());
        assert_eq!(
            b.query(s.id(), "count", 0.1).unwrap_err().kind,
            ErrorKind::SessionNotOpen
        );
        assert_eq!(b.close(s.id()).unwrap_err().kind, ErrorKind::SessionNotOpen);
    }

    #[test]
    fn job_slots_serialize_more_jobs_than_slots() {
        let trace = crate::testdata::packets(500);
        let manager = SessionManager::new(trace, NoiseSource::seeded(42), 100.0, 100.0);
        let b = Arc::new(QueryBroker::new(
            manager,
            BrokerConfig {
                max_concurrent_jobs: 2,
            },
        ));
        let ids: Vec<u64> = (0..8).map(|i| b.open(&format!("a{i}")).id()).collect();
        std::thread::scope(|scope| {
            for id in ids {
                let b = b.clone();
                scope.spawn(move || b.query(id, "count", 0.1).expect("gated query"));
            }
        });
        assert!((b.manager().global().spent() - 0.8).abs() < 1e-9);
    }
}
