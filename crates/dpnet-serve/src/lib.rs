//! # dpnet-serve — the owner-side serving daemon
//!
//! The paper's deployment model (§7) is *mediated* analysis: the data
//! owner holds the raw trace and runs PINQ queries on behalf of untrusted
//! analysts, under budget policies. This crate is that mediation as a
//! network service:
//!
//! * the daemon loads a protected trace **once** as shared shards — every
//!   analyst session reuses the same chunks zero-copy;
//! * analysts connect over TCP and speak a length-framed JSON protocol
//!   ([`protocol`]): open a session, invoke catalogued analyses by name
//!   with a per-request ε, read spend snapshots, close;
//! * a [`broker::QueryBroker`] admission layer schedules query jobs onto
//!   one shared `ExecPool` (bounded concurrency) and converts kernel
//!   budget refusals into graceful, typed `budget_exhausted` responses —
//!   a refused analyst keeps their connection and their remaining budget;
//! * per-session audit JSONL streams live to the owner's audit directory
//!   and each file ends with the session's exact spend ledger.
//!
//! Everything is `std::net` + threads: no async runtime, no new
//! dependencies. The privacy semantics live below in `pinq` — this crate
//! never touches ε state directly; it can only open sessions and run
//! registry analyses, and the sealed kernel enforces every charge.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod broker;
pub mod client;
pub mod loadtest;
pub mod protocol;
pub mod server;

pub use broker::{BrokerConfig, QueryBroker};
pub use client::{Client, ClientError};
pub use loadtest::{run_loadtest, LoadtestConfig, LoadtestOutcome};
pub use protocol::{ErrorKind, Request, Response, ServeError, MAX_FRAME};
pub use server::{serve, ServeConfig, ServerHandle};

use dpnet_trace::Packet;
use std::sync::Arc;

/// Chunk a flat packet vector into shards sized for the worker pool
/// (`8 × DEFAULT_CHUNK` records each): the one-time load the daemon does
/// before accepting sessions. A pre-sharded trace can be passed to
/// [`serve`] directly instead.
pub fn shard_packets(packets: Vec<Packet>) -> Vec<Arc<Vec<Packet>>> {
    const SHARD: usize = 8 * 8192;
    if packets.len() <= SHARD {
        return vec![Arc::new(packets)];
    }
    let mut out = Vec::with_capacity(packets.len() / SHARD + 1);
    let mut rest = packets;
    while rest.len() > SHARD {
        let tail = rest.split_off(SHARD);
        out.push(Arc::new(rest));
        rest = tail;
    }
    out.push(Arc::new(rest));
    out
}

#[cfg(test)]
pub(crate) mod testdata {
    use dpnet_trace::{Packet, Proto, TcpFlags};

    /// A tiny deterministic synthetic trace: enough structure for `count`
    /// and `heavy-hosts` to release something, cheap enough for unit tests.
    pub fn packets(n: u32) -> Vec<Packet> {
        (0..n)
            .map(|i| Packet {
                ts_us: u64::from(i) * 10,
                src_ip: 0x0a00_0000 | (i % 64),
                dst_ip: 0xc0a8_0001,
                src_port: 40_000 + (i % 1000) as u16,
                dst_port: if i % 4 == 0 { 443 } else { 80 },
                proto: if i % 7 == 0 { Proto::Udp } else { Proto::Tcp },
                len: 40 + (i % 1400) as u16,
                flags: TcpFlags::new(i % 11 == 0, true, false, false, i % 5 == 0),
                seq: i * 1000,
                ack: i * 500,
                payload: Vec::new(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharding_preserves_order_and_length() {
        let packets: Vec<Packet> = Vec::new();
        assert_eq!(shard_packets(packets).len(), 1);

        let many = testdata::packets(3 * 8 * 8192 / 2);
        let flat: Vec<Packet> = many.clone();
        let shards = shard_packets(many);
        assert!(shards.len() > 1);
        let rejoined: Vec<Packet> = shards.iter().flat_map(|s| s.iter().cloned()).collect();
        assert_eq!(rejoined, flat);
    }
}
