//! The wire protocol: length-framed JSON over TCP.
//!
//! ## Frame format
//!
//! Every message — request or response — is one frame:
//!
//! ```text
//! +----------------------+-----------------------+
//! | length: u32, big-end | payload: length bytes |
//! +----------------------+-----------------------+
//! ```
//!
//! The payload is one UTF-8 JSON document. Frames larger than
//! [`MAX_FRAME`] are refused with a typed `frame_too_large` error and the
//! connection is closed (the stream cannot be resynchronized without
//! trusting the hostile length). Everything *inside* a well-sized frame —
//! garbage bytes, malformed JSON, unknown ops, missing fields — yields a
//! typed `invalid_request`/`bad_frame` response and the session stays
//! alive.
//!
//! ## Requests
//!
//! ```json
//! {"op":"open","analyst":"alice"}
//! {"op":"query","analysis":"count","eps":0.1}
//! {"op":"spend"}
//! {"op":"ledger"}
//! {"op":"analyses"}
//! {"op":"ping"}
//! {"op":"close"}
//! ```
//!
//! ## Responses
//!
//! Every response object carries `"ok":true|false`. Successful responses
//! echo the op's result; failures carry `"error":"<kind>"` plus a
//! human-readable `"detail"` and, for budget refusals, the `requested`
//! and `remaining` ε readings. A `budget_exhausted` response is a
//! *graceful* outcome: nothing was charged, the session stays open, and
//! cheaper requests may still succeed.

use dpnet_obs::json::{escape, number, parse_value, JsonValue};
use std::io::{Read, Write};

/// Hard cap on a frame payload, bytes. Catalogue responses and CDF value
/// lists fit in a few KiB; a megabyte is generous for every legitimate
/// message and small enough that a hostile length prefix cannot balloon
/// server memory.
pub const MAX_FRAME: usize = 1 << 20;

/// Frame-layer failure.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed mid-frame or the transport failed.
    Io(std::io::Error),
    /// The declared payload length exceeds [`MAX_FRAME`].
    TooLarge(usize),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame i/o: {e}"),
            FrameError::TooLarge(n) => write!(f, "frame of {n} bytes exceeds {MAX_FRAME}"),
        }
    }
}

/// Read one frame. `Ok(None)` is a clean end-of-stream (the peer closed
/// between frames); an EOF inside a frame is an error.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, FrameError> {
    let mut len = [0u8; 4];
    // Distinguish "closed before any byte" from "closed mid-prefix".
    match r.read(&mut len[..1]).map_err(FrameError::Io)? {
        0 => return Ok(None),
        _ => r.read_exact(&mut len[1..]).map_err(FrameError::Io)?,
    }
    let n = u32::from_be_bytes(len) as usize;
    if n > MAX_FRAME {
        return Err(FrameError::TooLarge(n));
    }
    let mut buf = vec![0u8; n];
    r.read_exact(&mut buf).map_err(FrameError::Io)?;
    Ok(Some(buf))
}

/// Write one frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    debug_assert!(payload.len() <= MAX_FRAME);
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Typed failure kinds, stable on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// A budget (session, analyst cap, or global) cannot afford the
    /// request. Nothing was charged; the session stays open.
    BudgetExhausted,
    /// The request was well-framed JSON but semantically invalid
    /// (bad ε, wrong field types, invalid parameters).
    InvalidRequest,
    /// The requested analysis is not in the catalogue.
    UnknownAnalysis,
    /// A query/spend/close arrived before `open`.
    SessionNotOpen,
    /// A second `open` on a connection that already has a session.
    SessionAlreadyOpen,
    /// The frame payload was not a JSON object with a string `op`.
    BadFrame,
    /// The declared frame length exceeds [`MAX_FRAME`]; the connection
    /// closes after this response.
    FrameTooLarge,
    /// Server-side failure unrelated to the request.
    Internal,
}

impl ErrorKind {
    /// Stable wire string.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorKind::BudgetExhausted => "budget_exhausted",
            ErrorKind::InvalidRequest => "invalid_request",
            ErrorKind::UnknownAnalysis => "unknown_analysis",
            ErrorKind::SessionNotOpen => "session_not_open",
            ErrorKind::SessionAlreadyOpen => "session_already_open",
            ErrorKind::BadFrame => "bad_frame",
            ErrorKind::FrameTooLarge => "frame_too_large",
            ErrorKind::Internal => "internal",
        }
    }

    /// Parse a wire string back into a kind.
    pub fn parse(s: &str) -> Option<ErrorKind> {
        Some(match s {
            "budget_exhausted" => ErrorKind::BudgetExhausted,
            "invalid_request" => ErrorKind::InvalidRequest,
            "unknown_analysis" => ErrorKind::UnknownAnalysis,
            "session_not_open" => ErrorKind::SessionNotOpen,
            "session_already_open" => ErrorKind::SessionAlreadyOpen,
            "bad_frame" => ErrorKind::BadFrame,
            "frame_too_large" => ErrorKind::FrameTooLarge,
            "internal" => ErrorKind::Internal,
            _ => return None,
        })
    }
}

/// A typed refusal: what went wrong, in both machine and human form.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeError {
    /// The failure class.
    pub kind: ErrorKind,
    /// Human-readable explanation.
    pub detail: String,
    /// ε the refused charge requested (budget refusals only).
    pub requested: Option<f64>,
    /// ε the binding budget had left (budget refusals only).
    pub remaining: Option<f64>,
}

impl ServeError {
    /// A non-budget error of `kind`.
    pub fn new(kind: ErrorKind, detail: impl Into<String>) -> Self {
        ServeError {
            kind,
            detail: detail.into(),
            requested: None,
            remaining: None,
        }
    }

    /// A graceful budget refusal.
    pub fn budget_exhausted(requested: f64, remaining: f64) -> Self {
        ServeError {
            kind: ErrorKind::BudgetExhausted,
            detail: format!(
                "budget cannot afford the request: {requested}ε requested, {remaining}ε remaining"
            ),
            requested: Some(requested),
            remaining: Some(remaining),
        }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.kind.as_str(), self.detail)
    }
}

/// A parsed analyst request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Open a session as `analyst`.
    Open {
        /// The analyst name sessions and ledgers are keyed by.
        analyst: String,
    },
    /// Run catalogue analysis `analysis` at accuracy `eps`.
    Query {
        /// Registry name of the analysis.
        analysis: String,
        /// Requested ε.
        eps: f64,
    },
    /// Read this session's budget snapshot.
    Spend,
    /// Read the owner's per-analyst ledger.
    Ledger,
    /// List the analysis catalogue.
    Analyses,
    /// Liveness probe.
    Ping,
    /// Close the session (the connection may keep pinging).
    Close,
}

impl Request {
    /// Parse one frame payload. Never panics: any malformed input maps to
    /// a typed [`ServeError`].
    pub fn parse(payload: &[u8]) -> Result<Request, ServeError> {
        let text = std::str::from_utf8(payload)
            .map_err(|e| ServeError::new(ErrorKind::BadFrame, format!("payload not UTF-8: {e}")))?;
        let value = parse_value(text)
            .ok_or_else(|| ServeError::new(ErrorKind::BadFrame, "payload is not valid JSON"))?;
        let op = value
            .get("op")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| ServeError::new(ErrorKind::BadFrame, "missing string field 'op'"))?;
        match op {
            "open" => {
                let analyst = value
                    .get("analyst")
                    .and_then(JsonValue::as_str)
                    .ok_or_else(|| {
                        ServeError::new(ErrorKind::InvalidRequest, "open requires string 'analyst'")
                    })?;
                if analyst.is_empty() || analyst.len() > 128 {
                    return Err(ServeError::new(
                        ErrorKind::InvalidRequest,
                        "analyst name must be 1..=128 characters",
                    ));
                }
                Ok(Request::Open {
                    analyst: analyst.to_string(),
                })
            }
            "query" => {
                let analysis = value
                    .get("analysis")
                    .and_then(JsonValue::as_str)
                    .ok_or_else(|| {
                        ServeError::new(
                            ErrorKind::InvalidRequest,
                            "query requires string 'analysis'",
                        )
                    })?;
                let eps = value
                    .get("eps")
                    .and_then(JsonValue::as_f64)
                    .ok_or_else(|| {
                        ServeError::new(ErrorKind::InvalidRequest, "query requires numeric 'eps'")
                    })?;
                if !(eps.is_finite() && eps > 0.0) {
                    return Err(ServeError::new(
                        ErrorKind::InvalidRequest,
                        format!("eps must be finite and positive, got {eps}"),
                    ));
                }
                Ok(Request::Query {
                    analysis: analysis.to_string(),
                    eps,
                })
            }
            "spend" => Ok(Request::Spend),
            "ledger" => Ok(Request::Ledger),
            "analyses" => Ok(Request::Analyses),
            "ping" => Ok(Request::Ping),
            "close" => Ok(Request::Close),
            other => Err(ServeError::new(
                ErrorKind::InvalidRequest,
                format!("unknown op '{other}'"),
            )),
        }
    }

    /// Serialize for the wire (client side).
    pub fn to_json(&self) -> String {
        match self {
            Request::Open { analyst } => {
                format!("{{\"op\":\"open\",\"analyst\":{}}}", escape(analyst))
            }
            Request::Query { analysis, eps } => format!(
                "{{\"op\":\"query\",\"analysis\":{},\"eps\":{}}}",
                escape(analysis),
                number(*eps)
            ),
            Request::Spend => "{\"op\":\"spend\"}".to_string(),
            Request::Ledger => "{\"op\":\"ledger\"}".to_string(),
            Request::Analyses => "{\"op\":\"analyses\"}".to_string(),
            Request::Ping => "{\"op\":\"ping\"}".to_string(),
            Request::Close => "{\"op\":\"close\"}".to_string(),
        }
    }
}

/// A session budget reading on the wire (all DP-policy metadata).
#[derive(Debug, Clone, PartialEq)]
pub struct SpendWire {
    /// Session id.
    pub session: u64,
    /// Analyst name.
    pub analyst: String,
    /// ε spent through this session.
    pub session_spent: f64,
    /// ε spent by the analyst across sessions.
    pub analyst_spent: f64,
    /// The analyst's cap.
    pub analyst_cap: f64,
    /// ε spent against the global budget.
    pub global_spent: f64,
    /// The global budget.
    pub global_total: f64,
}

/// A server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Session opened.
    Opened {
        /// Assigned session id.
        session: u64,
        /// Echoed analyst name.
        analyst: String,
    },
    /// Query answered with released values.
    Values {
        /// Echoed analysis name.
        analysis: String,
        /// Echoed ε.
        eps: f64,
        /// Released `(name, value)` pairs.
        values: Vec<(String, f64)>,
        /// Rendered text report.
        text: String,
        /// Server-side wall time, ns.
        wall_ns: u64,
    },
    /// Budget snapshot.
    Spend(SpendWire),
    /// Per-analyst `(name, spent)` ledger.
    Ledger(Vec<(String, f64)>),
    /// The analysis catalogue: `(name, summary, default_eps)`.
    Analyses(Vec<(String, String, f64)>),
    /// Liveness reply.
    Pong,
    /// Session closed.
    Closed {
        /// The closed session's id.
        session: u64,
        /// Final ε spent through the session.
        session_spent: f64,
    },
    /// A typed refusal.
    Error(ServeError),
}

impl Response {
    /// Serialize for the wire.
    pub fn to_json(&self) -> String {
        match self {
            Response::Opened { session, analyst } => format!(
                "{{\"ok\":true,\"session\":{session},\"analyst\":{}}}",
                escape(analyst)
            ),
            Response::Values {
                analysis,
                eps,
                values,
                text,
                wall_ns,
            } => {
                let mut out = format!(
                    "{{\"ok\":true,\"analysis\":{},\"eps\":{},\"values\":[",
                    escape(analysis),
                    number(*eps)
                );
                for (i, (k, v)) in values.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!("[{},{}]", escape(k), number(*v)));
                }
                out.push_str(&format!(
                    "],\"text\":{},\"wall_ns\":{wall_ns}}}",
                    escape(text)
                ));
                out
            }
            Response::Spend(s) => format!(
                "{{\"ok\":true,\"session\":{},\"analyst\":{},\"session_spent\":{},\
                 \"analyst_spent\":{},\"analyst_cap\":{},\"global_spent\":{},\
                 \"global_total\":{}}}",
                s.session,
                escape(&s.analyst),
                number(s.session_spent),
                number(s.analyst_spent),
                number(s.analyst_cap),
                number(s.global_spent),
                number(s.global_total)
            ),
            Response::Ledger(rows) => {
                let mut out = String::from("{\"ok\":true,\"ledger\":[");
                for (i, (name, spent)) in rows.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!("[{},{}]", escape(name), number(*spent)));
                }
                out.push_str("]}");
                out
            }
            Response::Analyses(rows) => {
                let mut out = String::from("{\"ok\":true,\"analyses\":[");
                for (i, (name, summary, eps)) in rows.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!(
                        "{{\"name\":{},\"summary\":{},\"default_eps\":{}}}",
                        escape(name),
                        escape(summary),
                        number(*eps)
                    ));
                }
                out.push_str("]}");
                out
            }
            Response::Pong => "{\"ok\":true,\"pong\":true}".to_string(),
            Response::Closed {
                session,
                session_spent,
            } => format!(
                "{{\"ok\":true,\"closed\":{session},\"session_spent\":{}}}",
                number(*session_spent)
            ),
            Response::Error(e) => {
                let mut out = format!(
                    "{{\"ok\":false,\"error\":{},\"detail\":{}",
                    escape(e.kind.as_str()),
                    escape(&e.detail)
                );
                if let Some(r) = e.requested {
                    out.push_str(&format!(",\"requested\":{}", number(r)));
                }
                if let Some(r) = e.remaining {
                    out.push_str(&format!(",\"remaining\":{}", number(r)));
                }
                out.push('}');
                out
            }
        }
    }

    /// Parse a response payload (client side). Never panics.
    pub fn parse(payload: &[u8]) -> Result<Response, ServeError> {
        let bad = |d: &str| ServeError::new(ErrorKind::BadFrame, d.to_string());
        let text = std::str::from_utf8(payload).map_err(|_| bad("response not UTF-8"))?;
        let v = parse_value(text).ok_or_else(|| bad("response is not valid JSON"))?;
        let ok = match v.get("ok") {
            Some(JsonValue::Bool(b)) => *b,
            _ => return Err(bad("response missing boolean 'ok'")),
        };
        if !ok {
            let kind = v
                .get("error")
                .and_then(JsonValue::as_str)
                .and_then(ErrorKind::parse)
                .ok_or_else(|| bad("error response with unknown kind"))?;
            return Ok(Response::Error(ServeError {
                kind,
                detail: v
                    .get("detail")
                    .and_then(JsonValue::as_str)
                    .unwrap_or_default()
                    .to_string(),
                requested: v.get("requested").and_then(JsonValue::as_f64),
                remaining: v.get("remaining").and_then(JsonValue::as_f64),
            }));
        }
        if let Some(values) = v.get("values").and_then(JsonValue::items) {
            let mut pairs = Vec::with_capacity(values.len());
            for pair in values {
                let items = pair.items().ok_or_else(|| bad("value row not an array"))?;
                match items {
                    [JsonValue::Str(k), JsonValue::Num(x)] => pairs.push((k.clone(), *x)),
                    _ => return Err(bad("value row is not [name, number]")),
                }
            }
            return Ok(Response::Values {
                analysis: v
                    .get("analysis")
                    .and_then(JsonValue::as_str)
                    .unwrap_or_default()
                    .to_string(),
                eps: v.get("eps").and_then(JsonValue::as_f64).unwrap_or(0.0),
                values: pairs,
                text: v
                    .get("text")
                    .and_then(JsonValue::as_str)
                    .unwrap_or_default()
                    .to_string(),
                wall_ns: v.get("wall_ns").and_then(JsonValue::as_f64).unwrap_or(0.0) as u64,
            });
        }
        if let Some(rows) = v.get("ledger").and_then(JsonValue::items) {
            let mut ledger = Vec::with_capacity(rows.len());
            for row in rows {
                match row.items() {
                    Some([JsonValue::Str(name), JsonValue::Num(spent)]) => {
                        ledger.push((name.clone(), *spent))
                    }
                    _ => return Err(bad("ledger row is not [name, number]")),
                }
            }
            return Ok(Response::Ledger(ledger));
        }
        if let Some(rows) = v.get("analyses").and_then(JsonValue::items) {
            let mut analyses = Vec::with_capacity(rows.len());
            for row in rows {
                let name = row.get("name").and_then(JsonValue::as_str);
                let summary = row.get("summary").and_then(JsonValue::as_str);
                let eps = row.get("default_eps").and_then(JsonValue::as_f64);
                match (name, summary, eps) {
                    (Some(n), Some(s), Some(e)) => analyses.push((n.to_string(), s.to_string(), e)),
                    _ => return Err(bad("catalogue row missing fields")),
                }
            }
            return Ok(Response::Analyses(analyses));
        }
        if v.get("session_spent").is_some() && v.get("analyst").is_some() {
            let f = |k: &str| v.get(k).and_then(JsonValue::as_f64).unwrap_or(0.0);
            return Ok(Response::Spend(SpendWire {
                session: f("session") as u64,
                analyst: v
                    .get("analyst")
                    .and_then(JsonValue::as_str)
                    .unwrap_or_default()
                    .to_string(),
                session_spent: f("session_spent"),
                analyst_spent: f("analyst_spent"),
                analyst_cap: f("analyst_cap"),
                global_spent: f("global_spent"),
                global_total: f("global_total"),
            }));
        }
        if let Some(id) = v.get("closed").and_then(JsonValue::as_f64) {
            return Ok(Response::Closed {
                session: id as u64,
                session_spent: v
                    .get("session_spent")
                    .and_then(JsonValue::as_f64)
                    .unwrap_or(0.0),
            });
        }
        if v.get("pong").is_some() {
            return Ok(Response::Pong);
        }
        if let (Some(session), Some(analyst)) = (
            v.get("session").and_then(JsonValue::as_f64),
            v.get("analyst").and_then(JsonValue::as_str),
        ) {
            return Ok(Response::Opened {
                session: session as u64,
                analyst: analyst.to_string(),
            });
        }
        Err(bad("unrecognized response shape"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"{\"op\":\"ping\"}").unwrap();
        let mut cursor = &buf[..];
        let frame = read_frame(&mut cursor).unwrap().unwrap();
        assert_eq!(frame, b"{\"op\":\"ping\"}");
        assert!(read_frame(&mut cursor).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn oversized_declared_length_is_refused_without_allocating() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_be_bytes());
        buf.extend_from_slice(b"xx");
        match read_frame(&mut &buf[..]) {
            Err(FrameError::TooLarge(n)) => assert_eq!(n, u32::MAX as usize),
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn truncated_frame_is_an_io_error_not_a_panic() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&100u32.to_be_bytes());
        buf.extend_from_slice(b"short");
        assert!(matches!(read_frame(&mut &buf[..]), Err(FrameError::Io(_))));
        // Truncated inside the length prefix too.
        assert!(matches!(
            read_frame(&mut &[0u8, 1][..]),
            Err(FrameError::Io(_))
        ));
    }

    #[test]
    fn requests_round_trip_through_the_wire_form() {
        let reqs = [
            Request::Open {
                analyst: "alice \"quoted\"".to_string(),
            },
            Request::Query {
                analysis: "count".to_string(),
                eps: 0.125,
            },
            Request::Spend,
            Request::Ledger,
            Request::Analyses,
            Request::Ping,
            Request::Close,
        ];
        for r in reqs {
            let parsed = Request::parse(r.to_json().as_bytes()).unwrap();
            assert_eq!(parsed, r);
        }
    }

    #[test]
    fn invalid_requests_map_to_typed_errors() {
        let cases: [(&[u8], ErrorKind); 6] = [
            (b"\xff\xfe", ErrorKind::BadFrame),
            (b"not json", ErrorKind::BadFrame),
            (b"{\"no\":\"op\"}", ErrorKind::BadFrame),
            (b"{\"op\":\"warp\"}", ErrorKind::InvalidRequest),
            (
                b"{\"op\":\"query\",\"analysis\":\"count\"}",
                ErrorKind::InvalidRequest,
            ),
            (
                b"{\"op\":\"query\",\"analysis\":\"count\",\"eps\":-1}",
                ErrorKind::InvalidRequest,
            ),
        ];
        for (payload, kind) in cases {
            let err = Request::parse(payload).unwrap_err();
            assert_eq!(err.kind, kind, "payload {payload:?}");
        }
    }

    #[test]
    fn responses_round_trip_through_the_wire_form() {
        let resps = [
            Response::Opened {
                session: 7,
                analyst: "bob".to_string(),
            },
            Response::Values {
                analysis: "count".to_string(),
                eps: 0.1,
                values: vec![("count".to_string(), 12345.678901234567)],
                text: "noisy packet count: 12345.7\n".to_string(),
                wall_ns: 420,
            },
            Response::Spend(SpendWire {
                session: 7,
                analyst: "bob".to_string(),
                session_spent: 0.30000000000000004,
                analyst_spent: 0.4,
                analyst_cap: 1.0,
                global_spent: 0.7,
                global_total: 10.0,
            }),
            Response::Ledger(vec![("alice".to_string(), 0.25), ("bob".to_string(), 0.5)]),
            Response::Analyses(vec![(
                "count".to_string(),
                "noisy packet count".to_string(),
                0.1,
            )]),
            Response::Pong,
            Response::Closed {
                session: 7,
                session_spent: 0.3,
            },
            Response::Error(ServeError::budget_exhausted(0.5, 0.25)),
            Response::Error(ServeError::new(ErrorKind::UnknownAnalysis, "no 'x'")),
        ];
        for r in resps {
            let parsed = Response::parse(r.to_json().as_bytes()).unwrap();
            assert_eq!(parsed, r);
        }
    }

    #[test]
    fn f64_values_survive_the_wire_bit_exactly() {
        // number() prints shortest-roundtrip floats; the parser reads them
        // back exactly — the bit-identity acceptance rests on this.
        let v = 0.1 + 0.2; // 0.30000000000000004
        let r = Response::Values {
            analysis: "count".to_string(),
            eps: v,
            values: vec![("x".to_string(), 1e-17 + 2.5)],
            text: String::new(),
            wall_ns: 0,
        };
        match Response::parse(r.to_json().as_bytes()).unwrap() {
            Response::Values { eps, values, .. } => {
                assert_eq!(eps.to_bits(), v.to_bits());
                assert_eq!(values[0].1.to_bits(), (1e-17f64 + 2.5).to_bits());
            }
            other => panic!("{other:?}"),
        }
    }
}
