//! The daemon: accept loop, per-connection protocol state machine, and
//! per-session audit streams.
//!
//! One thread per connection (`std::net` blocking I/O — no async runtime).
//! Each connection owns at most one open [`pinq::Session`]; the shared
//! [`QueryBroker`] gates how many of those sessions' queries execute on
//! the worker pool at once. Protocol errors are graceful: anything wrong
//! *inside* a well-sized frame answers with a typed error and the
//! connection (and session) live on. Only an oversized length prefix ends
//! the connection, because the stream cannot be resynchronized without
//! trusting the hostile length.

use crate::broker::{BrokerConfig, QueryBroker};
use crate::protocol::{
    read_frame, write_frame, ErrorKind, FrameError, Request, Response, ServeError, SpendWire,
};
use dpnet_obs::JsonlSink;
use dpnet_trace::Packet;
use pinq::{ExecCtx, ExecPool, NoiseSource, Session, SessionManager};
use std::fs::File;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address, e.g. `127.0.0.1:7070`. Port 0 binds an ephemeral
    /// port (read it back from [`ServerHandle::addr`]).
    pub addr: String,
    /// Dataset-wide ε budget shared by all analysts.
    pub global_eps: f64,
    /// Per-analyst lifetime ε cap.
    pub analyst_cap: f64,
    /// Worker threads in the shared execution pool (0 = sequential).
    pub workers: usize,
    /// Maximum analysis jobs on the pool at once (admission gate).
    pub max_concurrent_jobs: usize,
    /// Where to stream audit JSONL. When set, the daemon writes
    /// `serve-audit.jsonl` (owner stream: every charge against the global
    /// budget plus session open/close events) and one
    /// `session-<id>-<analyst>.jsonl` per session (that session's charges,
    /// closed out with its exact spend ledger).
    pub audit_dir: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            global_eps: 10.0,
            analyst_cap: 1.0,
            workers: 0,
            max_concurrent_jobs: 8,
            audit_dir: None,
        }
    }
}

/// A running daemon: the bound address, the shared broker, and the accept
/// thread.
pub struct ServerHandle {
    addr: SocketAddr,
    broker: Arc<QueryBroker>,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the daemon actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared broker (owner-side monitoring: live sessions, ledger,
    /// global spend).
    pub fn broker(&self) -> &Arc<QueryBroker> {
        &self.broker
    }

    /// Stop accepting connections and join the accept thread. In-flight
    /// connection threads finish serving their clients and exit when those
    /// clients disconnect; they hold their own broker reference, so
    /// dropping the handle is safe at any point.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the blocking accept() with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }

    /// Block until the daemon is shut down from another thread (the CLI
    /// foreground mode). Returns immediately if already stopped.
    pub fn join(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

/// Start the daemon over a pre-sharded protected trace. Loads nothing:
/// the shards are shared zero-copy into every session. Returns once the
/// listener is bound; serving happens on background threads.
pub fn serve(
    shards: Vec<Arc<Vec<Packet>>>,
    noise: NoiseSource,
    cfg: ServeConfig,
) -> io::Result<ServerHandle> {
    let mut manager =
        SessionManager::from_shared_shards(shards, noise, cfg.global_eps, cfg.analyst_cap);
    if cfg.workers > 0 {
        let pool = ExecPool::new(cfg.workers)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        manager = manager.with_ctx(ExecCtx::pool(&pool));
    }
    if let Some(dir) = &cfg.audit_dir {
        std::fs::create_dir_all(dir)?;
        let owner_log = File::create(dir.join("serve-audit.jsonl"))?;
        manager
            .global()
            .set_sink(Some(Arc::new(JsonlSink::new(owner_log))));
    }
    let broker = Arc::new(QueryBroker::new(
        manager,
        BrokerConfig {
            max_concurrent_jobs: cfg.max_concurrent_jobs,
        },
    ));

    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let accept = {
        let broker = broker.clone();
        let shutdown = shutdown.clone();
        let audit_dir = cfg.audit_dir.clone();
        std::thread::Builder::new()
            .name("dpnet-serve-accept".to_string())
            .spawn(move || {
                for conn in listener.incoming() {
                    if shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    let broker = broker.clone();
                    let audit_dir = audit_dir.clone();
                    let _ = std::thread::Builder::new()
                        .name("dpnet-serve-conn".to_string())
                        .spawn(move || {
                            let mut conn = Connection {
                                broker,
                                audit_dir,
                                session: None,
                                audit_path: None,
                            };
                            conn.run(stream);
                        });
                }
            })?
    };

    Ok(ServerHandle {
        addr,
        broker,
        shutdown,
        accept: Some(accept),
    })
}

/// Per-connection protocol state: at most one open session.
struct Connection {
    broker: Arc<QueryBroker>,
    audit_dir: Option<PathBuf>,
    session: Option<Arc<Session<Packet>>>,
    audit_path: Option<PathBuf>,
}

impl Connection {
    fn run(&mut self, mut stream: TcpStream) {
        loop {
            let frame = match read_frame(&mut stream) {
                Ok(Some(frame)) => frame,
                Ok(None) => break, // clean disconnect
                Err(FrameError::TooLarge(n)) => {
                    // Answer, then hang up: the stream position is lost.
                    let resp = Response::Error(ServeError::new(
                        ErrorKind::FrameTooLarge,
                        format!("declared frame of {n} bytes exceeds the limit"),
                    ));
                    let _ = write_frame(&mut stream, resp.to_json().as_bytes());
                    // Briefly drain whatever the peer already sent: closing
                    // with unread bytes in the receive buffer raises an RST
                    // that can destroy the refusal before the peer reads it.
                    drain(&mut stream);
                    break;
                }
                Err(FrameError::Io(_)) => break, // truncated mid-frame
            };
            let resp = match Request::parse(&frame) {
                Ok(req) => self.dispatch(req),
                Err(e) => Response::Error(e),
            };
            if write_frame(&mut stream, resp.to_json().as_bytes()).is_err() {
                break;
            }
        }
        // Disconnect (clean or not) closes any session left open, so its
        // audit file still ends with the exact ledger.
        self.close_session();
    }

    fn dispatch(&mut self, req: Request) -> Response {
        match req {
            Request::Open { analyst } => {
                if let Some(s) = &self.session {
                    return Response::Error(ServeError::new(
                        ErrorKind::SessionAlreadyOpen,
                        format!("this connection already drives session {}", s.id()),
                    ));
                }
                let session = self.broker.open(&analyst);
                if let Some(dir) = &self.audit_dir {
                    let path = dir.join(format!(
                        "session-{}-{}.jsonl",
                        session.id(),
                        sanitize(&analyst)
                    ));
                    match File::create(&path) {
                        Ok(f) => {
                            session
                                .accountant()
                                .set_sink(Some(Arc::new(JsonlSink::new(f))));
                            self.audit_path = Some(path);
                        }
                        Err(_) => self.audit_path = None,
                    }
                }
                let resp = Response::Opened {
                    session: session.id(),
                    analyst,
                };
                self.session = Some(session);
                resp
            }
            Request::Query { analysis, eps } => match self.require_session() {
                Err(e) => Response::Error(e),
                Ok(s) => match self.broker.query(s.id(), &analysis, eps) {
                    Ok((out, wall_ns)) => Response::Values {
                        analysis,
                        eps,
                        values: out.values,
                        text: out.text,
                        wall_ns,
                    },
                    Err(e) => Response::Error(e),
                },
            },
            Request::Spend => match self.require_session() {
                Err(e) => Response::Error(e),
                Ok(s) => {
                    let snap = s.snapshot();
                    Response::Spend(SpendWire {
                        session: snap.session_id,
                        analyst: snap.analyst,
                        session_spent: snap.session_spent,
                        analyst_spent: snap.analyst_spent,
                        analyst_cap: snap.analyst_cap,
                        global_spent: snap.global_spent,
                        global_total: snap.global_total,
                    })
                }
            },
            Request::Ledger => Response::Ledger(self.broker.ledger()),
            Request::Analyses => Response::Analyses(self.broker.catalogue()),
            Request::Ping => Response::Pong,
            Request::Close => match self.close_session() {
                Some((id, spent)) => Response::Closed {
                    session: id,
                    session_spent: spent,
                },
                None => Response::Error(ServeError::new(
                    ErrorKind::SessionNotOpen,
                    "no session open on this connection",
                )),
            },
        }
    }

    fn require_session(&self) -> Result<&Arc<Session<Packet>>, ServeError> {
        self.session.as_ref().ok_or_else(|| {
            ServeError::new(
                ErrorKind::SessionNotOpen,
                "open a session first: {\"op\":\"open\",\"analyst\":...}",
            )
        })
    }

    /// Close the connection's session if one is open: detach the live
    /// audit sink, append the exact spend ledger to the session's audit
    /// file, and release it from the broker.
    fn close_session(&mut self) -> Option<(u64, f64)> {
        let session = self.session.take()?;
        session.accountant().set_sink(None);
        if let Some(path) = self.audit_path.take() {
            if let Ok(mut f) = File::options().append(true).open(&path) {
                let _ = session.export_audit_jsonl(&mut f);
                let _ = f.flush();
            }
        }
        let id = session.id();
        drop(session);
        let spent = match self.broker.close(id) {
            Ok(spend) => spend.session_spent,
            Err(_) => 0.0,
        };
        Some((id, spent))
    }
}

/// Swallow pending input for a bounded moment so a close after a protocol
/// error delivers as FIN, not RST (which would discard the in-flight
/// typed refusal on many TCP stacks).
fn drain(stream: &mut TcpStream) {
    use std::io::Read as _;
    let _ = stream.set_read_timeout(Some(std::time::Duration::from_millis(50)));
    let deadline = std::time::Instant::now() + std::time::Duration::from_millis(250);
    let mut sink = [0u8; 4096];
    while std::time::Instant::now() < deadline {
        match stream.read(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
}

/// Keep analyst-derived file names to a safe alphabet.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .take(64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitize_keeps_names_path_safe() {
        assert_eq!(sanitize("alice"), "alice");
        assert_eq!(sanitize("../../etc/passwd"), "______etc_passwd");
        assert_eq!(sanitize("a b\"c"), "a_b_c");
    }
}
