//! A blocking analyst client for the serve protocol.
//!
//! One [`Client`] drives one connection (and hence at most one session).
//! Typed server refusals surface as [`ClientError::Server`] — a
//! `budget_exhausted` there is an expected, graceful outcome, not a
//! transport failure. The raw escape hatches ([`Client::send_raw_frame`],
//! [`Client::stream_mut`]) exist for the robustness tests that feed the
//! daemon garbage.

use crate::protocol::{
    read_frame, write_frame, FrameError, Request, Response, ServeError, SpendWire,
};
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, write, or mid-frame EOF).
    Io(io::Error),
    /// The server closed the connection between frames.
    Disconnected,
    /// The server's response frame could not be parsed.
    BadResponse(ServeError),
    /// The server answered with a typed error (`budget_exhausted`,
    /// `invalid_request`, …).
    Server(ServeError),
    /// The server answered with a well-formed response of the wrong shape
    /// for the request.
    Unexpected(Response),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport: {e}"),
            ClientError::Disconnected => write!(f, "server closed the connection"),
            ClientError::BadResponse(e) => write!(f, "unparseable response: {e}"),
            ClientError::Server(e) => write!(f, "server refused: {e}"),
            ClientError::Unexpected(r) => write!(f, "unexpected response shape: {r:?}"),
        }
    }
}

impl ClientError {
    /// The typed server error, when this is a refusal.
    pub fn server_error(&self) -> Option<&ServeError> {
        match self {
            ClientError::Server(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A released query result.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryReply {
    /// Released `(name, value)` pairs.
    pub values: Vec<(String, f64)>,
    /// Rendered text report.
    pub text: String,
    /// Server-side execution wall time, ns.
    pub wall_ns: u64,
}

/// A blocking connection to a dpnet-serve daemon.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connect once.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Client { stream })
    }

    /// Connect with retries (for racing a daemon that is still binding).
    pub fn connect_retry(
        addr: impl ToSocketAddrs + Clone,
        attempts: u32,
        delay: Duration,
    ) -> io::Result<Client> {
        let mut last = io::Error::other("no attempts made");
        for _ in 0..attempts.max(1) {
            match Client::connect(addr.clone()) {
                Ok(c) => return Ok(c),
                Err(e) => last = e,
            }
            std::thread::sleep(delay);
        }
        Err(last)
    }

    /// Send one request and read one response.
    pub fn request(&mut self, req: &Request) -> Result<Response, ClientError> {
        self.send_raw_frame(req.to_json().as_bytes())
    }

    /// Frame an arbitrary payload (valid or garbage) and read the
    /// response. Robustness tests use this to deliver malformed JSON.
    pub fn send_raw_frame(&mut self, payload: &[u8]) -> Result<Response, ClientError> {
        write_frame(&mut self.stream, payload)?;
        self.read_response()
    }

    /// Read one response frame without sending anything first.
    pub fn read_response(&mut self) -> Result<Response, ClientError> {
        let frame = match read_frame(&mut self.stream) {
            Ok(Some(frame)) => frame,
            Ok(None) => return Err(ClientError::Disconnected),
            Err(FrameError::Io(e)) => return Err(ClientError::Io(e)),
            Err(FrameError::TooLarge(_)) => {
                return Err(ClientError::BadResponse(ServeError::new(
                    crate::protocol::ErrorKind::BadFrame,
                    "server sent an oversized frame",
                )))
            }
        };
        Response::parse(&frame).map_err(ClientError::BadResponse)
    }

    /// Raw stream access (robustness tests: truncated frames, hostile
    /// length prefixes).
    pub fn stream_mut(&mut self) -> &mut TcpStream {
        &mut self.stream
    }

    /// Open a session; returns the session id.
    pub fn open(&mut self, analyst: &str) -> Result<u64, ClientError> {
        match self.request(&Request::Open {
            analyst: analyst.to_string(),
        })? {
            Response::Opened { session, .. } => Ok(session),
            Response::Error(e) => Err(ClientError::Server(e)),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Run a catalogue analysis at `eps`.
    pub fn query(&mut self, analysis: &str, eps: f64) -> Result<QueryReply, ClientError> {
        match self.request(&Request::Query {
            analysis: analysis.to_string(),
            eps,
        })? {
            Response::Values {
                values,
                text,
                wall_ns,
                ..
            } => Ok(QueryReply {
                values,
                text,
                wall_ns,
            }),
            Response::Error(e) => Err(ClientError::Server(e)),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Read this session's budget snapshot.
    pub fn spend(&mut self) -> Result<SpendWire, ClientError> {
        match self.request(&Request::Spend)? {
            Response::Spend(s) => Ok(s),
            Response::Error(e) => Err(ClientError::Server(e)),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Read the owner's per-analyst ledger.
    pub fn ledger(&mut self) -> Result<Vec<(String, f64)>, ClientError> {
        match self.request(&Request::Ledger)? {
            Response::Ledger(rows) => Ok(rows),
            Response::Error(e) => Err(ClientError::Server(e)),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// List the analysis catalogue: `(name, summary, default ε)`.
    pub fn analyses(&mut self) -> Result<Vec<(String, String, f64)>, ClientError> {
        match self.request(&Request::Analyses)? {
            Response::Analyses(rows) => Ok(rows),
            Response::Error(e) => Err(ClientError::Server(e)),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.request(&Request::Ping)? {
            Response::Pong => Ok(()),
            Response::Error(e) => Err(ClientError::Server(e)),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Close the session; returns its final ε spend.
    pub fn close(&mut self) -> Result<f64, ClientError> {
        match self.request(&Request::Close)? {
            Response::Closed { session_spent, .. } => Ok(session_spent),
            Response::Error(e) => Err(ClientError::Server(e)),
            other => Err(ClientError::Unexpected(other)),
        }
    }
}
