//! Concurrent-session load generator.
//!
//! Spawns N analyst sessions as real TCP clients against a running
//! daemon, releases them through a barrier so they arrive together, has
//! each run a fixed request script, and aggregates client-observed
//! request latencies into the percentile summary the bench reports carry
//! ([`LatencySummary`]). Budget refusals are *expected* outcomes here —
//! the point of the exercise is that a daemon driven past its caps keeps
//! answering gracefully — so they are counted, not treated as failures.
//! Anything else unexpected (transport errors, malformed responses,
//! panics) lands in [`LoadtestOutcome::errors`].

use crate::client::{Client, ClientError};
use crate::protocol::ErrorKind;
use dpnet_bench::report::LatencySummary;
use std::io;
use std::net::SocketAddr;
use std::sync::{Barrier, Mutex};
use std::time::{Duration, Instant};

/// Load shape.
#[derive(Debug, Clone)]
pub struct LoadtestConfig {
    /// Concurrent sessions (one client connection + thread each).
    pub sessions: usize,
    /// Queries each session issues.
    pub requests: usize,
    /// Distinct analyst identities the sessions share (sessions are
    /// assigned round-robin, so caps are contended when this is smaller
    /// than `sessions`).
    pub analysts: usize,
    /// Catalogue analysis every query invokes.
    pub analysis: String,
    /// ε per query.
    pub eps: f64,
}

impl Default for LoadtestConfig {
    fn default() -> Self {
        LoadtestConfig {
            sessions: 64,
            requests: 4,
            analysts: 8,
            analysis: "count".to_string(),
            eps: 0.01,
        }
    }
}

/// Aggregated outcome of one load run.
#[derive(Debug)]
pub struct LoadtestOutcome {
    /// Sessions that opened successfully.
    pub sessions: u64,
    /// Queries issued.
    pub requests: u64,
    /// Queries answered with released values.
    pub ok: u64,
    /// Queries refused gracefully with `budget_exhausted`.
    pub budget_exhausted: u64,
    /// Queries refused with other typed errors.
    pub invalid: u64,
    /// Client-observed per-query latencies, ns, sorted ascending.
    pub latencies_ns: Vec<u64>,
    /// Unexpected failures (transport errors, bad responses, panicked
    /// session threads). Empty on a healthy run.
    pub errors: Vec<String>,
    /// Wall time of the whole run.
    pub wall: Duration,
}

impl LoadtestOutcome {
    /// The `p`-th percentile latency in ns (nearest-rank), 0 when empty.
    pub fn percentile_ns(&self, p: f64) -> u64 {
        if self.latencies_ns.is_empty() {
            return 0;
        }
        let n = self.latencies_ns.len();
        let rank = ((p / 100.0) * n as f64).ceil() as usize;
        self.latencies_ns[rank.clamp(1, n) - 1]
    }

    /// The percentile summary bench reports carry.
    pub fn summary(&self) -> LatencySummary {
        LatencySummary {
            sessions: self.sessions,
            requests: self.requests,
            ok: self.ok,
            budget_exhausted: self.budget_exhausted,
            invalid: self.invalid,
            p50_ns: self.percentile_ns(50.0),
            p95_ns: self.percentile_ns(95.0),
            p99_ns: self.percentile_ns(99.0),
            max_ns: self.latencies_ns.last().copied().unwrap_or(0),
        }
    }
}

struct SessionTally {
    requests: u64,
    ok: u64,
    budget_exhausted: u64,
    invalid: u64,
    latencies_ns: Vec<u64>,
    errors: Vec<String>,
}

/// Run the load against a daemon at `addr`. Blocks until every session
/// finishes its script (or fails), then returns the aggregate.
pub fn run_loadtest(addr: SocketAddr, cfg: &LoadtestConfig) -> io::Result<LoadtestOutcome> {
    assert!(cfg.sessions > 0 && cfg.requests > 0 && cfg.analysts > 0);
    let barrier = Barrier::new(cfg.sessions);
    let tallies: Mutex<Vec<SessionTally>> = Mutex::new(Vec::with_capacity(cfg.sessions));
    let opened: Mutex<u64> = Mutex::new(0);
    let start = Instant::now();

    std::thread::scope(|scope| {
        for i in 0..cfg.sessions {
            let barrier = &barrier;
            let tallies = &tallies;
            let opened = &opened;
            let cfg = &cfg;
            scope.spawn(move || {
                let mut tally = SessionTally {
                    requests: 0,
                    ok: 0,
                    budget_exhausted: 0,
                    invalid: 0,
                    latencies_ns: Vec::with_capacity(cfg.requests),
                    errors: Vec::new(),
                };
                // Connect before the barrier so the query burst is
                // synchronized, not staggered by connect times.
                let client = Client::connect_retry(addr, 50, Duration::from_millis(20));
                barrier.wait();
                let analyst = format!("analyst-{}", i % cfg.analysts);
                let opened_session = client
                    .map_err(ClientError::from)
                    .and_then(|c| open_session(addr, c, &analyst));
                match opened_session {
                    Ok(mut client) => {
                        *opened.lock().expect("opened count poisoned") += 1;
                        run_script(&mut client, cfg, &mut tally);
                        if let Err(e) = client.close() {
                            tally.errors.push(format!("session {i} close: {e}"));
                        }
                    }
                    Err(e) => tally.errors.push(format!("session {i} open: {e}")),
                }
                tallies.lock().expect("tally mutex poisoned").push(tally);
            });
        }
    });

    let mut out = LoadtestOutcome {
        sessions: *opened.lock().expect("opened count poisoned"),
        requests: 0,
        ok: 0,
        budget_exhausted: 0,
        invalid: 0,
        latencies_ns: Vec::new(),
        errors: Vec::new(),
        wall: start.elapsed(),
    };
    for t in tallies.into_inner().expect("tally mutex poisoned") {
        out.requests += t.requests;
        out.ok += t.ok;
        out.budget_exhausted += t.budget_exhausted;
        out.invalid += t.invalid;
        out.latencies_ns.extend(t.latencies_ns);
        out.errors.extend(t.errors);
    }
    out.latencies_ns.sort_unstable();
    Ok(out)
}

/// Open a session on `client`, redialing on transport failure. Under a
/// burst of simultaneous connects the listener's accept backlog (a fixed
/// 128 in `std`) can overflow, and the kernel resets connections the
/// daemon never accepted — the handshake completed, so the client only
/// learns when its `open` write bounces. A failed `open` spent no budget
/// and created no server-side session, so redialing is safe and is what
/// any real client does. Typed server refusals are returned immediately.
fn open_session(addr: SocketAddr, first: Client, analyst: &str) -> Result<Client, ClientError> {
    let mut client = first;
    let mut attempts = 0;
    loop {
        match client.open(analyst) {
            Ok(_) => return Ok(client),
            Err(e @ ClientError::Server(_)) => return Err(e),
            Err(e) => {
                attempts += 1;
                if attempts >= 50 {
                    return Err(e);
                }
            }
        }
        std::thread::sleep(Duration::from_millis(20));
        client = Client::connect_retry(addr, 50, Duration::from_millis(20))?;
    }
}

fn run_script(client: &mut Client, cfg: &LoadtestConfig, tally: &mut SessionTally) {
    for _ in 0..cfg.requests {
        let t = Instant::now();
        let result = client.query(&cfg.analysis, cfg.eps);
        let elapsed = t.elapsed().as_nanos() as u64;
        tally.requests += 1;
        tally.latencies_ns.push(elapsed);
        match result {
            Ok(_) => tally.ok += 1,
            Err(ClientError::Server(e)) if e.kind == ErrorKind::BudgetExhausted => {
                tally.budget_exhausted += 1;
            }
            Err(ClientError::Server(_)) => tally.invalid += 1,
            Err(other) => tally.errors.push(format!("query: {other}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank() {
        let out = LoadtestOutcome {
            sessions: 1,
            requests: 4,
            ok: 4,
            budget_exhausted: 0,
            invalid: 0,
            latencies_ns: vec![10, 20, 30, 40],
            errors: Vec::new(),
            wall: Duration::ZERO,
        };
        assert_eq!(out.percentile_ns(50.0), 20);
        assert_eq!(out.percentile_ns(95.0), 40);
        assert_eq!(out.percentile_ns(99.0), 40);
        assert_eq!(out.summary().max_ns, 40);

        let empty = LoadtestOutcome {
            latencies_ns: Vec::new(),
            ..out
        };
        assert_eq!(empty.percentile_ns(50.0), 0);
    }
}
