//! Minimal flag parsing for the CLI (no external dependencies).
//!
//! Grammar: `dpnet <command> [positional ...] [--flag value ...]`.

use std::collections::HashMap;

/// Parsed invocation: a command, positional arguments, and `--key value`
/// flags.
#[derive(Debug, Clone, PartialEq)]
pub struct Args {
    /// The subcommand name.
    pub command: String,
    /// Positional arguments in order.
    pub positional: Vec<String>,
    /// `--key value` flags.
    pub flags: HashMap<String, String>,
}

/// Errors from argument parsing.
#[derive(Debug, PartialEq)]
pub enum ArgError {
    /// No subcommand given.
    MissingCommand,
    /// A `--flag` with no following value.
    MissingValue(String),
}

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgError::MissingCommand => write!(f, "no command given"),
            ArgError::MissingValue(flag) => write!(f, "flag --{flag} needs a value"),
        }
    }
}

impl Args {
    /// Parse an argument vector (without the program name).
    pub fn parse<I: IntoIterator<Item = String>>(argv: I) -> Result<Args, ArgError> {
        let mut it = argv.into_iter().peekable();
        let command = it.next().ok_or(ArgError::MissingCommand)?;
        let mut positional = Vec::new();
        let mut flags = HashMap::new();
        while let Some(tok) = it.next() {
            if let Some(name) = tok.strip_prefix("--") {
                let value = it
                    .next()
                    .ok_or_else(|| ArgError::MissingValue(name.to_string()))?;
                flags.insert(name.to_string(), value);
            } else {
                positional.push(tok);
            }
        }
        Ok(Args {
            command,
            positional,
            flags,
        })
    }

    /// A flag parsed to some type, with a default.
    pub fn flag_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("invalid value '{raw}' for --{name}")),
        }
    }

    /// A required positional argument.
    pub fn positional(&self, index: usize, name: &str) -> Result<&str, String> {
        self.positional
            .get(index)
            .map(|s| s.as_str())
            .ok_or_else(|| format!("missing <{name}> argument"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Result<Args, ArgError> {
        Args::parse(tokens.iter().map(|s| s.to_string()))
    }

    #[test]
    fn commands_positionals_and_flags() {
        let a = parse(&["analyze", "trace.dpnt", "--budget", "1.5", "--seed", "7"]).unwrap();
        assert_eq!(a.command, "analyze");
        assert_eq!(a.positional, vec!["trace.dpnt"]);
        assert_eq!(a.flags["budget"], "1.5");
        assert_eq!(a.flag_or("budget", 0.0f64).unwrap(), 1.5);
        assert_eq!(a.flag_or("seed", 0u64).unwrap(), 7);
        assert_eq!(a.flag_or("missing", 42u64).unwrap(), 42);
    }

    #[test]
    fn missing_command_and_values_are_errors() {
        assert_eq!(parse(&[]), Err(ArgError::MissingCommand));
        assert_eq!(
            parse(&["generate", "--seed"]),
            Err(ArgError::MissingValue("seed".into()))
        );
    }

    #[test]
    fn bad_flag_values_surface_cleanly() {
        let a = parse(&["x", "--n", "abc"]).unwrap();
        assert!(a.flag_or("n", 1u32).is_err());
    }

    #[test]
    fn positional_access_is_checked() {
        let a = parse(&["inspect"]).unwrap();
        assert!(a.positional(0, "file").is_err());
    }
}
