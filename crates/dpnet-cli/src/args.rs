//! Minimal flag parsing for the CLI (no external dependencies).
//!
//! Grammar: `dpnet <command> [positional ...] [--flag value ...]`. A flag
//! followed by another flag (or by nothing) is a bare boolean and parses
//! as the value `"true"` — so `dpnet explain fig1 --analyze` works without
//! an explicit `--analyze true`.

use std::collections::HashMap;

/// Parsed invocation: a command, positional arguments, and `--key value`
/// flags.
#[derive(Debug, Clone, PartialEq)]
pub struct Args {
    /// The subcommand name.
    pub command: String,
    /// Positional arguments in order.
    pub positional: Vec<String>,
    /// `--key value` flags.
    pub flags: HashMap<String, String>,
}

/// Errors from argument parsing.
#[derive(Debug, PartialEq)]
pub enum ArgError {
    /// No subcommand given.
    MissingCommand,
}

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgError::MissingCommand => write!(f, "no command given"),
        }
    }
}

impl Args {
    /// Parse an argument vector (without the program name).
    pub fn parse<I: IntoIterator<Item = String>>(argv: I) -> Result<Args, ArgError> {
        let mut it = argv.into_iter().peekable();
        let command = it.next().ok_or(ArgError::MissingCommand)?;
        let mut positional = Vec::new();
        let mut flags = HashMap::new();
        while let Some(tok) = it.next() {
            if let Some(name) = tok.strip_prefix("--") {
                // A flag trailed by another flag or by nothing is a bare
                // boolean: `--analyze` parses as `--analyze true`.
                let value = match it.peek() {
                    Some(next) if !next.starts_with("--") => it.next().expect("peeked"),
                    _ => "true".to_string(),
                };
                flags.insert(name.to_string(), value);
            } else {
                positional.push(tok);
            }
        }
        Ok(Args {
            command,
            positional,
            flags,
        })
    }

    /// A flag parsed to some type, with a default.
    pub fn flag_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("invalid value '{raw}' for --{name}")),
        }
    }

    /// A required positional argument.
    pub fn positional(&self, index: usize, name: &str) -> Result<&str, String> {
        self.positional
            .get(index)
            .map(|s| s.as_str())
            .ok_or_else(|| format!("missing <{name}> argument"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Result<Args, ArgError> {
        Args::parse(tokens.iter().map(|s| s.to_string()))
    }

    #[test]
    fn commands_positionals_and_flags() {
        let a = parse(&["analyze", "trace.dpnt", "--budget", "1.5", "--seed", "7"]).unwrap();
        assert_eq!(a.command, "analyze");
        assert_eq!(a.positional, vec!["trace.dpnt"]);
        assert_eq!(a.flags["budget"], "1.5");
        assert_eq!(a.flag_or("budget", 0.0f64).unwrap(), 1.5);
        assert_eq!(a.flag_or("seed", 0u64).unwrap(), 7);
        assert_eq!(a.flag_or("missing", 42u64).unwrap(), 42);
    }

    #[test]
    fn missing_command_is_an_error() {
        assert_eq!(parse(&[]), Err(ArgError::MissingCommand));
    }

    #[test]
    fn bare_flags_parse_as_booleans() {
        // Trailing flag, flag before another flag, and the explicit form.
        let a = parse(&["explain", "fig1", "--analyze"]).unwrap();
        assert_eq!(a.flags["analyze"], "true");
        assert!(a.flag_or("analyze", false).unwrap());
        let a = parse(&["explain", "fig1", "--analyze", "--format", "json"]).unwrap();
        assert_eq!(a.flags["analyze"], "true");
        assert_eq!(a.flags["format"], "json");
        let a = parse(&["explain", "fig1", "--analyze", "false"]).unwrap();
        assert!(!a.flag_or("analyze", true).unwrap());
        // A value-taking flag left bare now fails at typed access, not
        // at the parser: the token "true" is not a number.
        let a = parse(&["generate", "--seed"]).unwrap();
        assert!(a.flag_or("seed", 0u64).is_err());
    }

    #[test]
    fn bad_flag_values_surface_cleanly() {
        let a = parse(&["x", "--n", "abc"]).unwrap();
        assert!(a.flag_or("n", 1u32).is_err());
    }

    #[test]
    fn positional_access_is_checked() {
        let a = parse(&["inspect"]).unwrap();
        assert!(a.positional(0, "file").is_err());
    }
}
