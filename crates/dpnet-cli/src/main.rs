//! `dpnet` — the command-line face of the library: generate synthetic
//! traces, convert between formats, inspect them owner-side, and run
//! privacy-budgeted analyses.

mod args;
mod commands;

use args::Args;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match Args::parse(argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", commands::usage());
            std::process::exit(2);
        }
    };
    let result = match parsed.command.as_str() {
        "generate" => commands::generate_cmd(&parsed),
        "convert" => commands::convert_cmd(&parsed),
        "inspect" => commands::inspect_cmd(&parsed),
        "analyze" => commands::analyze_cmd(&parsed),
        "classify" => commands::classify_cmd(&parsed),
        "audit" => commands::audit_cmd(&parsed),
        "serve" => commands::serve_cmd(&parsed),
        "loadtest" => commands::loadtest_cmd(&parsed),
        "profile" => commands::profile_cmd(&parsed),
        "explain" => commands::explain_cmd(&parsed),
        "help" | "--help" | "-h" => {
            println!("{}", commands::usage());
            return;
        }
        other => Err(format!(
            "unknown command '{other}'\n\n{}",
            commands::usage()
        )),
    };
    match result {
        Ok(report) => println!("{report}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
