//! CLI subcommand implementations. Each returns its report as a `String`
//! so the logic is unit-testable without process spawning.

use crate::args::Args;
use dpnet_bench::registry;
use dpnet_trace::format::{read_text, read_trace, write_text, write_trace};
use dpnet_trace::gen::hotspot::{generate, HotspotConfig};
use dpnet_trace::{FlowKey, Packet};
use pinq::{Accountant, NoiseSource, Queryable};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::fs::File;
use std::path::Path;

fn extension(path: &str) -> Option<&str> {
    Path::new(path).extension().and_then(|e| e.to_str())
}

/// Load a trace, dispatching on extension: `.txt` is the text format,
/// `.pcap` is libpcap, anything else the native binary format.
pub fn load_trace(path: &str) -> Result<Vec<Packet>, String> {
    let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    match extension(path) {
        Some("txt") => read_text(file).map_err(|e| e.to_string()),
        Some("pcap") => dpnet_trace::format::read_pcap(file).map_err(|e| e.to_string()),
        _ => read_trace(file).map_err(|e| e.to_string()),
    }
}

/// Store a trace, dispatching on extension like [`load_trace`].
pub fn store_trace(path: &str, packets: &[Packet]) -> Result<(), String> {
    let file = File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
    match extension(path) {
        Some("txt") => write_text(file, packets).map_err(|e| e.to_string()),
        Some("pcap") => dpnet_trace::format::write_pcap(file, packets).map_err(|e| e.to_string()),
        _ => write_trace(file, packets).map_err(|e| e.to_string()),
    }
}

/// `dpnet generate <out> [--seed N] [--flows N]` — synthesize a Hotspot
/// trace and write it out.
pub fn generate_cmd(args: &Args) -> Result<String, String> {
    let out = args.positional(0, "output file")?;
    let seed: u64 = args.flag_or("seed", 0x00d0_9e75u64)?;
    let flows: usize = args.flag_or("flows", 1000usize)?;
    let trace = generate(HotspotConfig {
        seed,
        web_flows: flows,
        ..HotspotConfig::default()
    });
    store_trace(out, &trace.packets)?;
    Ok(format!(
        "wrote {} packets to {out} (seed {seed}, {flows} web flows)",
        trace.packets.len()
    ))
}

/// `dpnet convert <in> <out>` — re-encode between the binary and text
/// formats (direction chosen by file extensions).
pub fn convert_cmd(args: &Args) -> Result<String, String> {
    let input = args.positional(0, "input file")?;
    let output = args.positional(1, "output file")?;
    let packets = load_trace(input)?;
    store_trace(output, &packets)?;
    Ok(format!(
        "converted {} packets: {input} → {output}",
        packets.len()
    ))
}

/// Owner-side (non-private) trace summary for `dpnet inspect <file>`.
pub fn inspect_packets(packets: &[Packet]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "packets: {}", packets.len());
    if packets.is_empty() {
        return out;
    }
    let first = packets.iter().map(|p| p.ts_us).min().unwrap_or(0);
    let last = packets.iter().map(|p| p.ts_us).max().unwrap_or(0);
    let _ = writeln!(out, "duration: {:.1} s", (last - first) as f64 / 1e6);
    let flows: std::collections::HashSet<FlowKey> =
        packets.iter().map(|p| FlowKey::of(p).canonical()).collect();
    let _ = writeln!(out, "conversations: {}", flows.len());
    let bytes: u64 = packets.iter().map(|p| p.len as u64).sum();
    let _ = writeln!(out, "bytes: {bytes}");
    let mut ports: HashMap<u16, usize> = HashMap::new();
    for p in packets {
        *ports.entry(p.dst_port).or_default() += 1;
    }
    let mut top: Vec<(u16, usize)> = ports.into_iter().collect();
    top.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
    let _ = writeln!(out, "top destination ports:");
    for (port, n) in top.into_iter().take(5) {
        let _ = writeln!(out, "  {port:>5}: {n}");
    }
    out
}

/// `dpnet inspect <file>`.
pub fn inspect_cmd(args: &Args) -> Result<String, String> {
    let path = args.positional(0, "trace file")?;
    let packets = load_trace(path)?;
    Ok(inspect_packets(&packets))
}

/// Run one named analysis from the shared registry against an
/// already-protected trace, returning its report text. Shared by
/// `analyze` and `audit`, and the same catalogue the serving daemon
/// exposes — one definition, three frontends.
fn run_query(q: &Queryable<Packet>, query: &str, eps: f64) -> Result<String, String> {
    let analysis = registry::find(query).ok_or_else(|| {
        format!(
            "unknown query '{query}' (one of: {})",
            registry::names().join(", ")
        )
    })?;
    analysis
        .run(q, eps)
        .map(|out| out.text)
        .map_err(|e| e.to_string())
}

/// Build the accountant/noise/queryable triple shared by the private
/// subcommands. `seed == 0` means fresh entropy.
fn protect(
    packets: Vec<Packet>,
    budget_eps: f64,
    seed: u64,
    label: Option<&str>,
) -> (Accountant, Queryable<Packet>) {
    let budget = Accountant::new(budget_eps);
    let noise = if seed == 0 {
        NoiseSource::from_entropy()
    } else {
        NoiseSource::seeded(seed)
    };
    let mut q = Queryable::new(packets, &budget, &noise);
    if let Some(label) = label {
        q = q.with_label(label);
    }
    (budget, q)
}

/// Write the accountant's JSONL audit ledger to `path`.
fn write_audit(budget: &Accountant, path: &str) -> Result<(), String> {
    let mut file = File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
    budget
        .export_audit_jsonl(&mut file)
        .map_err(|e| format!("cannot write {path}: {e}"))
}

/// `dpnet analyze <file> <query> [--budget E] [--eps E] [--seed N]
/// [--label L] [--audit-out FILE]` — run a private analysis. Queries:
/// `count`, `lengths`, `ports`, `rtt`, `loss`, `heavy-hosts`.
pub fn analyze_cmd(args: &Args) -> Result<String, String> {
    let path = args.positional(0, "trace file")?;
    let query = args.positional(1, "query")?.to_string();
    let budget_eps: f64 = args.flag_or("budget", 1.0f64)?;
    let eps: f64 = args.flag_or("eps", 0.1f64)?;
    let seed: u64 = args.flag_or("seed", 0u64)?;

    let packets = load_trace(path)?;
    let (budget, q) = protect(
        packets,
        budget_eps,
        seed,
        args.flags.get("label").map(|s| s.as_str()),
    );
    let mut out = run_query(&q, &query, eps)?;
    let _ = writeln!(
        out,
        "budget: spent {:.3} of {:.3}",
        budget.spent(),
        budget.total()
    );
    if let Some(audit_path) = args.flags.get("audit-out") {
        write_audit(&budget, audit_path)?;
        let _ = writeln!(out, "audit ledger written to {audit_path}");
    }
    Ok(out)
}

/// Tail a JSONL audit stream: print complete lines as they are appended.
/// Stops after `max_lines` lines (0 = unlimited) or once no new data
/// arrived for `idle_ms` milliseconds (0 = wait forever). Returns the
/// number of lines emitted. Malformed (non-JSON) lines are still printed
/// but flagged, so a corrupted stream is visible instead of silent.
pub fn follow_file(
    path: &Path,
    max_lines: u64,
    idle_ms: u64,
    out: &mut dyn std::io::Write,
) -> Result<u64, String> {
    use std::io::Read as _;
    let poll = std::time::Duration::from_millis(25);
    let mut file = File::open(path).map_err(|e| format!("cannot open {}: {e}", path.display()))?;
    let mut pending = String::new();
    let mut printed = 0u64;
    let mut idle = std::time::Duration::ZERO;
    loop {
        let mut chunk = String::new();
        file.read_to_string(&mut chunk)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        if chunk.is_empty() {
            if idle_ms > 0 && idle.as_millis() as u64 >= idle_ms {
                return Ok(printed);
            }
            std::thread::sleep(poll);
            idle += poll;
            continue;
        }
        idle = std::time::Duration::ZERO;
        pending.push_str(&chunk);
        while let Some(nl) = pending.find('\n') {
            let line: String = pending.drain(..=nl).collect();
            let line = line.trim_end();
            if line.is_empty() {
                continue;
            }
            let annotation = if dpnet_obs::json::parse_value(line).is_none() {
                "  <- not valid JSON"
            } else {
                ""
            };
            writeln!(out, "{line}{annotation}").map_err(|e| format!("cannot write output: {e}"))?;
            printed += 1;
            if max_lines > 0 && printed >= max_lines {
                return Ok(printed);
            }
        }
    }
}

/// `dpnet audit --follow <file.jsonl> [--max-lines N] [--idle-ms M]` —
/// tail an audit JSONL stream (e.g. a serving daemon's per-session file)
/// live, like `tail -f`. The file may ride on the flag
/// (`--follow file.jsonl`) or stand as the positional argument.
fn audit_follow_cmd(args: &Args, flag_value: &str) -> Result<String, String> {
    let path = if flag_value == "true" {
        args.positional(0, "audit JSONL file")?.to_string()
    } else {
        flag_value.to_string()
    };
    let max_lines: u64 = args.flag_or("max-lines", 0u64)?;
    let idle_ms: u64 = args.flag_or("idle-ms", 0u64)?;
    let stdout = std::io::stdout();
    let mut lock = stdout.lock();
    let printed = follow_file(Path::new(&path), max_lines, idle_ms, &mut lock)?;
    Ok(format!("followed {printed} line(s) from {path}"))
}

/// `dpnet audit <file> <query> [--budget E] [--eps E] [--seed N]
/// [--label L] [--out FILE]` — run a private analysis and report the
/// owner-side view: per-operator ε spend (with provenance-exact totals
/// that sum to the accountant's reading), ledger retention, and optionally
/// the full JSONL audit export. With `--follow`, tail an audit JSONL file
/// instead (see [`follow_file`]).
pub fn audit_cmd(args: &Args) -> Result<String, String> {
    if let Some(v) = args.flags.get("follow") {
        let v = v.clone();
        return audit_follow_cmd(args, &v);
    }
    let path = args.positional(0, "trace file")?;
    let query = args.positional(1, "query")?.to_string();
    let budget_eps: f64 = args.flag_or("budget", 1.0f64)?;
    let eps: f64 = args.flag_or("eps", 0.1f64)?;
    let seed: u64 = args.flag_or("seed", 0u64)?;
    let label = args
        .flags
        .get("label")
        .cloned()
        .unwrap_or_else(|| query.clone());

    let packets = load_trace(path)?;
    let (budget, q) = protect(packets, budget_eps, seed, Some(&label));
    let analysis = run_query(&q, &query, eps)?;

    let mut out = analysis;
    let _ = writeln!(out, "per-operator ε spend (label '{label}'):");
    let totals = budget.operator_totals();
    let mut sum = 0.0;
    for (op, t) in &totals {
        sum += t.epsilon;
        // Raw float formatting: the audit view must be exact, not rounded.
        let _ = writeln!(
            out,
            "  {:<16} eps {}  ({} charges)",
            op, t.epsilon, t.entries
        );
    }
    let _ = writeln!(out, "  {:<16} eps {}", "total", sum);
    let _ = writeln!(
        out,
        "accountant: spent {} of {} ({} ledger entries retained, {} evicted)",
        budget.spent(),
        budget.total(),
        budget.audit_log().len(),
        budget.evicted_entries()
    );
    if let Some(out_path) = args.flags.get("out") {
        write_audit(&budget, out_path)?;
        let _ = writeln!(out, "audit ledger written to {out_path}");
    }
    Ok(out)
}

/// `dpnet classify <file> [--rules FILE] [--eps E] [--budget E] [--seed N]`
/// — private per-rule traffic shares under a classification policy.
pub fn classify_cmd(args: &Args) -> Result<String, String> {
    use dpnet_analyses::classification::rule_traffic;
    use dpnet_trace::classify::{example_ruleset, Classifier};

    let path = args.positional(0, "trace file")?;
    let budget_eps: f64 = args.flag_or("budget", 1.0f64)?;
    let eps: f64 = args.flag_or("eps", 0.1f64)?;
    let seed: u64 = args.flag_or("seed", 0u64)?;
    let classifier = match args.flags.get("rules") {
        Some(rule_path) => {
            let text = std::fs::read_to_string(rule_path)
                .map_err(|e| format!("cannot read {rule_path}: {e}"))?;
            Classifier::parse(&text)?
        }
        None => example_ruleset(),
    };

    let packets = load_trace(path)?;
    let (budget, q) = protect(
        packets,
        budget_eps,
        seed,
        args.flags.get("label").map(|s| s.as_str()),
    );
    let shares = rule_traffic(&q, &classifier, 1500.0, eps).map_err(|e| e.to_string())?;

    let mut out = String::new();
    let _ = writeln!(out, "per-rule traffic (private, eps={eps}):");
    for s in &shares {
        let _ = writeln!(
            out,
            "  {:<12} packets ≈ {:>12.1}   bytes ≈ {:>15.0}",
            s.rule, s.packets, s.bytes
        );
    }
    let _ = writeln!(
        out,
        "budget: spent {:.3} of {:.3}",
        budget.spent(),
        budget.total()
    );
    if let Some(audit_path) = args.flags.get("audit-out") {
        write_audit(&budget, audit_path)?;
        let _ = writeln!(out, "audit ledger written to {audit_path}");
    }
    Ok(out)
}

/// `dpnet profile <experiment> [--workers N] [--trace-out FILE]
/// [--max-overhead R] [--report-dir DIR] [--spans full|agg]` — run one
/// paper experiment with the span profiler installed, write the
/// attribution-bearing `BENCH_<experiment>-wN.json` report, and optionally
/// a Chrome-trace JSON loadable in Perfetto (`ui.perfetto.dev`) or
/// `chrome://tracing`. `--spans agg` folds the high-frequency aggregation
/// spans into count + total-ns rows per charge path instead of recording
/// each one (attribution tables and traces keep working; large partitioned
/// runs stop materializing millions of span records).
pub fn profile_cmd(args: &Args) -> Result<String, String> {
    use dpnet_bench::profile::{run_profiled, ProfileConfig, IDS};
    use dpnet_obs::SpanMode;
    use std::path::PathBuf;

    let experiment = args.positional(0, "experiment")?;
    if !IDS.contains(&experiment) {
        return Err(format!(
            "unknown experiment '{experiment}' (one of: {})",
            IDS.join(" ")
        ));
    }
    let workers: usize = args.flag_or("workers", 1usize)?;
    let max_overhead = match args.flags.get("max-overhead") {
        Some(raw) => Some(
            raw.parse::<f64>()
                .map_err(|_| format!("invalid value '{raw}' for --max-overhead"))?,
        ),
        None => None,
    };
    let span_mode = match args
        .flags
        .get("spans")
        .map(String::as_str)
        .unwrap_or("full")
    {
        "full" => SpanMode::Full,
        "agg" => SpanMode::Aggregate,
        other => return Err(format!("invalid value '{other}' for --spans (full|agg)")),
    };
    let cfg = ProfileConfig {
        experiment: experiment.to_string(),
        workers,
        report_dir: PathBuf::from(
            args.flags
                .get("report-dir")
                .map(String::as_str)
                .unwrap_or("bench-reports"),
        ),
        trace_out: args.flags.get("trace-out").map(PathBuf::from),
        max_overhead,
        span_mode,
    };
    let outcome = run_profiled(&cfg)?;

    let mut out = String::new();
    let _ = writeln!(out, "{}", outcome.output.trim_end());
    if !outcome.attribution.is_empty() {
        let _ = writeln!(out, "\n{}", outcome.attribution.trim_end());
    }
    let _ = writeln!(
        out,
        "\nprofiled {experiment} at {workers} worker(s): {} spans in {:.1} ms",
        outcome.spans,
        outcome.profiled_wall_ns as f64 / 1e6
    );
    if outcome.aggregated > 0 {
        let _ = writeln!(
            out,
            "aggregated spans: {} (name, charge path) rows folded (--spans agg)",
            outcome.aggregated
        );
    }
    if let (Some(base), Some(overhead)) = (outcome.baseline_wall_ns, outcome.overhead()) {
        let _ = writeln!(
            out,
            "profiler overhead: {:+.1}% (unprofiled baseline {:.1} ms)",
            overhead * 100.0,
            base as f64 / 1e6
        );
    }
    let _ = writeln!(out, "run report: {}", outcome.report_path.display());
    if let Some(trace) = &outcome.trace_path {
        let _ = writeln!(
            out,
            "trace: {} (load in ui.perfetto.dev or chrome://tracing)",
            trace.display()
        );
    }
    Ok(out)
}

/// `dpnet explain <experiment> [--analyze] [--format tree|dot|json]
/// [--workers N] [--out FILE] [--trace-out FILE]` — EXPLAIN / EXPLAIN
/// ANALYZE: run one paper experiment with the charge-path recorder
/// installed and report every aggregation site's predicted ε per budget
/// root. With `--analyze`, the run is also profiled and the report gains
/// measured ε, span self-time, and plan-materialization stats; with
/// `--trace-out`, the Chrome trace includes ε burn-down counter tracks.
pub fn explain_cmd(args: &Args) -> Result<String, String> {
    use dpnet_bench::explain::{run_explained, ExplainConfig, ExplainFormat};
    use dpnet_bench::profile::IDS;
    use std::path::PathBuf;

    let experiment = args.positional(0, "experiment")?;
    if !IDS.contains(&experiment) {
        return Err(format!(
            "unknown experiment '{experiment}' (one of: {})",
            IDS.join(" ")
        ));
    }
    let workers: usize = args.flag_or("workers", 1usize)?;
    let analyze: bool = args.flag_or("analyze", false)?;
    let format = ExplainFormat::parse(
        args.flags
            .get("format")
            .map(String::as_str)
            .unwrap_or("tree"),
    )?;
    let trace_out = args.flags.get("trace-out").map(PathBuf::from);
    if trace_out.is_some() && !analyze {
        return Err("--trace-out needs --analyze (the trace comes from the profiled run)".into());
    }
    let cfg = ExplainConfig {
        experiment: experiment.to_string(),
        workers,
        analyze,
        trace_out,
    };
    let outcome = run_explained(&cfg)?;
    let rendered = outcome.render(format);

    let mut out = String::new();
    match args.flags.get("out") {
        Some(path) => {
            if let Some(dir) = Path::new(path)
                .parent()
                .filter(|d| !d.as_os_str().is_empty())
            {
                std::fs::create_dir_all(dir)
                    .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
            }
            std::fs::write(path, &rendered).map_err(|e| format!("cannot write {path}: {e}"))?;
            let _ = writeln!(out, "explain report written to {path}");
        }
        None => {
            out.push_str(&rendered);
            if !rendered.ends_with('\n') {
                out.push('\n');
            }
        }
    }
    if let Some(trace) = &outcome.trace_path {
        let _ = writeln!(
            out,
            "trace: {} (load in ui.perfetto.dev or chrome://tracing)",
            trace.display()
        );
    }
    Ok(out)
}

/// Build the noise source the serving commands share: seed 0 means fresh
/// entropy, anything else a fixed deterministic stream.
fn noise_from_seed(seed: u64) -> NoiseSource {
    if seed == 0 {
        NoiseSource::from_entropy()
    } else {
        NoiseSource::seeded(seed)
    }
}

/// `dpnet serve <trace> [--addr A] [--global-eps G] [--analyst-cap C]
/// [--workers N] [--jobs J] [--seed N] [--audit-dir DIR]
/// [--duration-s S]` — load the protected trace once and serve concurrent
/// analyst sessions over length-framed JSON-over-TCP. Foreground: blocks
/// until killed, or for `--duration-s` seconds when given (then prints
/// the owner's ledger).
pub fn serve_cmd(args: &Args) -> Result<String, String> {
    use dpnet_serve::{serve, shard_packets, ServeConfig};
    use std::path::PathBuf;

    let path = args.positional(0, "trace file")?;
    let addr = args
        .flags
        .get("addr")
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:7070".to_string());
    let global_eps: f64 = args.flag_or("global-eps", 10.0f64)?;
    let analyst_cap: f64 = args.flag_or("analyst-cap", 1.0f64)?;
    let workers: usize = args.flag_or("workers", 0usize)?;
    let jobs: usize = args.flag_or("jobs", 8usize)?;
    let seed: u64 = args.flag_or("seed", 0u64)?;
    let duration_s: f64 = args.flag_or("duration-s", 0.0f64)?;
    let audit_dir = args.flags.get("audit-dir").map(PathBuf::from);

    let packets = load_trace(path)?;
    let loaded = packets.len();
    let handle = serve(
        shard_packets(packets),
        noise_from_seed(seed),
        ServeConfig {
            addr,
            global_eps,
            analyst_cap,
            workers,
            max_concurrent_jobs: jobs,
            audit_dir,
        },
    )
    .map_err(|e| format!("cannot start daemon: {e}"))?;
    // Announce readiness on stdout immediately: scripts wait for this line.
    println!(
        "dpnet-serve listening on {} ({loaded} packets, global ε {global_eps}, analyst cap {analyst_cap}, {workers} workers)",
        handle.addr()
    );
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    if duration_s > 0.0 {
        std::thread::sleep(std::time::Duration::from_secs_f64(duration_s));
        let broker = handle.broker().clone();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "daemon stopped after {duration_s} s: {} live session(s), global ε spent {} of {}",
            broker.live_sessions(),
            broker.manager().global().spent(),
            broker.manager().global().total()
        );
        for (analyst, spent) in broker.ledger() {
            let _ = writeln!(out, "  {analyst:<20} ε {spent}");
        }
        handle.shutdown();
        Ok(out)
    } else {
        handle.join();
        Ok("daemon stopped".to_string())
    }
}

/// `dpnet loadtest [--sessions N] [--requests N] [--analysts N]
/// [--analysis NAME] [--eps E] [--addr A] [--flows N] [--global-eps G]
/// [--analyst-cap C] [--workers N] [--jobs J] [--seed N]
/// [--report-dir DIR]` — drive N concurrent analyst sessions. Without
/// `--addr` it spins up an in-process daemon over a synthetic trace
/// (fully reproducible via `--seed`); with `--addr` it targets a running
/// daemon. Writes latency percentiles into `BENCH_serve.json` when
/// `--report-dir` is given. Fails if any session hits an *unexpected*
/// error — graceful `budget_exhausted` refusals are counted, not failed.
pub fn loadtest_cmd(args: &Args) -> Result<String, String> {
    use dpnet_bench::report::RunReport;
    use dpnet_serve::loadtest::LoadtestConfig;
    use dpnet_serve::{run_loadtest, serve, shard_packets, ServeConfig};
    use dpnet_trace::gen::hotspot::{generate, HotspotConfig};
    use std::path::PathBuf;

    let cfg = LoadtestConfig {
        sessions: args.flag_or("sessions", 64usize)?,
        requests: args.flag_or("requests", 4usize)?,
        analysts: args.flag_or("analysts", 8usize)?,
        analysis: args
            .flags
            .get("analysis")
            .cloned()
            .unwrap_or_else(|| "count".to_string()),
        eps: args.flag_or("eps", 0.01f64)?,
    };
    let workers: usize = args.flag_or("workers", 0usize)?;
    let seed: u64 = args.flag_or("seed", 0x10adu64)?;

    // Either drive an external daemon or bring one up in-process.
    let (outcome, eps_charged) = match args.flags.get("addr") {
        Some(addr) => {
            let addr: std::net::SocketAddr = addr
                .parse()
                .map_err(|e| format!("invalid --addr '{addr}': {e}"))?;
            let outcome = run_loadtest(addr, &cfg).map_err(|e| e.to_string())?;
            (outcome, f64::NAN) // the remote owner holds the ledger
        }
        None => {
            let flows: usize = args.flag_or("flows", 200usize)?;
            let trace = generate(HotspotConfig {
                seed,
                web_flows: flows,
                ..HotspotConfig::default()
            });
            let handle = serve(
                shard_packets(trace.packets),
                noise_from_seed(seed),
                ServeConfig {
                    addr: "127.0.0.1:0".to_string(),
                    global_eps: args.flag_or("global-eps", 50.0f64)?,
                    analyst_cap: args.flag_or("analyst-cap", 5.0f64)?,
                    workers,
                    max_concurrent_jobs: args.flag_or("jobs", 8usize)?,
                    audit_dir: args.flags.get("audit-dir").map(PathBuf::from),
                },
            )
            .map_err(|e| format!("cannot start daemon: {e}"))?;
            let outcome = run_loadtest(handle.addr(), &cfg).map_err(|e| e.to_string())?;
            let spent = handle.broker().manager().global().spent();
            handle.shutdown();
            (outcome, spent)
        }
    };

    let summary = outcome.summary();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "loadtest: {} session(s), {} request(s) in {:.1} ms",
        summary.sessions,
        summary.requests,
        outcome.wall.as_secs_f64() * 1e3
    );
    let _ = writeln!(
        out,
        "  ok {}  budget_exhausted {}  invalid {}",
        summary.ok, summary.budget_exhausted, summary.invalid
    );
    let _ = writeln!(
        out,
        "  latency p50 {:.3} ms  p95 {:.3} ms  p99 {:.3} ms  max {:.3} ms",
        summary.p50_ns as f64 / 1e6,
        summary.p95_ns as f64 / 1e6,
        summary.p99_ns as f64 / 1e6,
        summary.max_ns as f64 / 1e6
    );
    if eps_charged.is_finite() {
        let _ = writeln!(out, "  global ε charged: {eps_charged}");
    }

    if let Some(dir) = args.flags.get("report-dir") {
        let mut report = RunReport::new("serve");
        report.set_workers(workers.max(1));
        report.record_latency(
            "serve-loadtest",
            outcome.wall.as_nanos() as u64,
            if eps_charged.is_finite() {
                eps_charged
            } else {
                0.0
            },
            summary,
        );
        let path = report
            .write_json(Path::new(dir))
            .map_err(|e| format!("cannot write report: {e}"))?;
        let _ = writeln!(out, "  report: {}", path.display());
    }

    if !outcome.errors.is_empty() {
        let mut msg = format!(
            "loadtest hit {} unexpected error(s):\n",
            outcome.errors.len()
        );
        for e in outcome.errors.iter().take(10) {
            let _ = writeln!(msg, "  {e}");
        }
        msg.push_str(&out);
        return Err(msg);
    }
    Ok(out)
}

/// Usage text.
pub fn usage() -> String {
    "dpnet — differentially-private network trace analysis\n\
     \n\
     usage: dpnet <command> [args]\n\
     \n\
     commands:\n\
       generate <out> [--seed N] [--flows N]   synthesize a hotspot trace\n\
       convert  <in> <out>                     re-encode (.txt text, .pcap libpcap, else binary)\n\
       inspect  <file>                         owner-side summary (non-private)\n\
       analyze  <file> <query> [--budget E] [--eps E] [--seed N] [--label L] [--audit-out FILE]\n\
                queries: count lengths ports rtt loss heavy-hosts retx-cdf itemsets worm\n\
       classify <file> [--rules FILE] [--budget E] [--eps E] [--seed N] [--audit-out FILE]\n\
                private per-rule traffic shares\n\
       audit    <file> <query> [--budget E] [--eps E] [--seed N] [--label L] [--out FILE]\n\
                run a query, then print the owner-side per-operator \u{3b5} ledger\n\
       audit    --follow <file.jsonl> [--max-lines N] [--idle-ms M]\n\
                tail an audit JSONL stream live (e.g. a serve session file)\n\
       serve    <trace> [--addr A] [--global-eps G] [--analyst-cap C] [--workers N]\n\
                [--jobs J] [--seed N] [--audit-dir DIR] [--duration-s S]\n\
                daemon: concurrent analyst sessions over JSON-over-TCP,\n\
                budget-mediated; per-session audit JSONL in --audit-dir\n\
       loadtest [--sessions N] [--requests N] [--analysts N] [--analysis NAME]\n\
                [--eps E] [--addr A] [--report-dir DIR] [--seed N]\n\
                drive N concurrent analyst sessions (in-process daemon\n\
                unless --addr); writes BENCH_serve.json latency percentiles\n\
       profile  <experiment> [--workers N] [--trace-out FILE] [--max-overhead R]\n\
                [--spans full|agg]\n\
                run a paper experiment under the span profiler; writes\n\
                bench-reports/BENCH_<experiment>-wN.json and a Perfetto trace;\n\
                --spans agg folds high-frequency aggregation spans into\n\
                count + total-ns rows per charge path\n\
       explain  <experiment> [--analyze] [--format tree|dot|json] [--workers N]\n\
                [--out FILE] [--trace-out FILE]\n\
                EXPLAIN / EXPLAIN ANALYZE: predicted \u{3b5} per charge path and\n\
                aggregation site; --analyze overlays measured \u{3b5}, self time,\n\
                and plan stats, and puts \u{3b5} burn-down counters in the trace\n"
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Args;

    fn args(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().map(|s| s.to_string())).unwrap()
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("dpnet-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn profile_rejects_unknown_experiments_and_bad_flags() {
        let err = profile_cmd(&args(&["profile", "nope"])).unwrap_err();
        assert!(err.contains("unknown experiment"), "{err}");
        assert!(err.contains("fig1"), "error should list valid ids: {err}");
        let err = profile_cmd(&args(&["profile", "fig1", "--max-overhead", "lots"])).unwrap_err();
        assert!(err.contains("--max-overhead"), "{err}");
        assert!(profile_cmd(&args(&["profile"])).is_err());
    }

    #[test]
    fn explain_rejects_unknown_experiments_formats_and_flag_combos() {
        let err = explain_cmd(&args(&["explain", "nope"])).unwrap_err();
        assert!(err.contains("unknown experiment"), "{err}");
        let err = explain_cmd(&args(&["explain", "fig1", "--format", "yaml"])).unwrap_err();
        assert!(err.contains("unknown explain format"), "{err}");
        let err = explain_cmd(&args(&["explain", "fig1", "--trace-out", "t.json"])).unwrap_err();
        assert!(err.contains("--analyze"), "{err}");
        assert!(explain_cmd(&args(&["explain"])).is_err());
    }

    #[test]
    fn explain_writes_a_parseable_json_report() {
        let path = tmp("t11.explain.json");
        let report = explain_cmd(&args(&[
            "explain",
            "example23",
            "--format",
            "json",
            "--out",
            &path,
        ]))
        .unwrap();
        assert!(report.contains("explain report written"), "{report}");
        let text = std::fs::read_to_string(&path).unwrap();
        let doc = dpnet_obs::json::parse_value(&text).expect("valid JSON");
        assert_eq!(
            doc.get("explain").and_then(|v| v.as_str()),
            Some("example23")
        );
        assert!(doc
            .get("predicted_total")
            .and_then(|v| v.as_f64())
            .is_some());
        assert!(doc.get("aggregations").is_some());
        // Static explain carries no measured overlay.
        assert!(doc.get("analyze").is_none());
    }

    #[test]
    fn generate_inspect_analyze_round_trip() {
        let path = tmp("t1.dpnt");
        let report =
            generate_cmd(&args(&["generate", &path, "--seed", "5", "--flows", "60"])).unwrap();
        assert!(report.contains("wrote"));

        let summary = inspect_cmd(&args(&["inspect", &path])).unwrap();
        assert!(summary.contains("packets:"));
        assert!(summary.contains("top destination ports"));

        let analysis = analyze_cmd(&args(&[
            "analyze", &path, "count", "--budget", "1.0", "--eps", "0.5", "--seed", "9",
        ]))
        .unwrap();
        assert!(analysis.contains("noisy packet count"));
        assert!(analysis.contains("spent 0.500"));
    }

    #[test]
    fn convert_between_formats() {
        let bin = tmp("t2.dpnt");
        let txt = tmp("t2.txt");
        generate_cmd(&args(&["generate", &bin, "--flows", "20"])).unwrap();
        convert_cmd(&args(&["convert", &bin, &txt])).unwrap();
        let back = tmp("t2back.dpnt");
        convert_cmd(&args(&["convert", &txt, &back])).unwrap();
        assert_eq!(load_trace(&bin).unwrap(), load_trace(&back).unwrap());
    }

    #[test]
    fn convert_to_pcap_and_back_preserves_tcp_fields() {
        let bin = tmp("t6.dpnt");
        let pcap = tmp("t6.pcap");
        generate_cmd(&args(&["generate", &bin, "--flows", "15"])).unwrap();
        convert_cmd(&args(&["convert", &bin, &pcap])).unwrap();
        let original = load_trace(&bin).unwrap();
        let restored = load_trace(&pcap).unwrap();
        assert_eq!(original.len(), restored.len());
        for (a, b) in original.iter().zip(&restored) {
            assert_eq!(a.src_ip, b.src_ip);
            assert_eq!(a.ts_us, b.ts_us);
            assert_eq!(a.payload, b.payload);
        }
    }

    #[test]
    fn classify_reports_rule_shares() {
        let path = tmp("t7.dpnt");
        generate_cmd(&args(&["generate", &path, "--flows", "40"])).unwrap();
        let report =
            classify_cmd(&args(&["classify", &path, "--eps", "0.5", "--seed", "13"])).unwrap();
        assert!(report.contains("web-in"));
        assert!(report.contains("catch-all"));
        assert!(report.contains("spent 1.000")); // 2 × 0.5

        // A custom rule file works too.
        let rules = tmp("t7.rules");
        std::fs::write(&rules, "only-ssh tcp any any -> any 22\n").unwrap();
        let report = classify_cmd(&args(&[
            "classify", &path, "--rules", &rules, "--eps", "0.5", "--seed", "13",
        ]))
        .unwrap();
        assert!(report.contains("only-ssh"));
    }

    #[test]
    fn analyze_respects_budget() {
        let path = tmp("t3.dpnt");
        generate_cmd(&args(&["generate", &path, "--flows", "20"])).unwrap();
        let err = analyze_cmd(&args(&[
            "analyze", &path, "rtt", "--budget", "0.1", "--eps", "0.2", "--seed", "3",
        ]))
        .unwrap_err();
        assert!(err.contains("budget"), "unexpected error: {err}");
    }

    #[test]
    fn unknown_query_and_missing_file_fail_cleanly() {
        let path = tmp("t4.dpnt");
        generate_cmd(&args(&["generate", &path, "--flows", "10"])).unwrap();
        assert!(analyze_cmd(&args(&["analyze", &path, "nonsense"])).is_err());
        assert!(inspect_cmd(&args(&["inspect", "/nonexistent/file.dpnt"])).is_err());
    }

    #[test]
    fn inspect_of_empty_trace() {
        assert!(inspect_packets(&[]).contains("packets: 0"));
    }

    /// Parse the raw-float eps values out of an `audit` report: the
    /// per-operator lines and the `total` line, plus the spent figure.
    fn parse_audit(report: &str) -> (Vec<(String, f64)>, f64, f64) {
        let mut ops = Vec::new();
        let mut total = f64::NAN;
        let mut spent = f64::NAN;
        for line in report.lines() {
            let t = line.trim();
            if let Some(rest) = t.strip_prefix("accountant: spent ") {
                spent = rest.split(' ').next().unwrap().parse().unwrap();
            } else if let Some((name, rest)) = t.split_once(" eps ") {
                let value: f64 = rest.split(' ').next().unwrap().parse().unwrap();
                if name.trim() == "total" {
                    total = value;
                } else {
                    ops.push((name.trim().to_string(), value));
                }
            }
        }
        (ops, total, spent)
    }

    #[test]
    fn audit_per_operator_spend_sums_to_accountant_total() {
        let path = tmp("t8.dpnt");
        generate_cmd(&args(&["generate", &path, "--flows", "40"])).unwrap();
        // rtt exercises a multi-operator chain (join → group_by → counts).
        let report = audit_cmd(&args(&[
            "audit", &path, "rtt", "--budget", "5.0", "--eps", "0.07", "--seed", "21",
        ]))
        .unwrap();
        let (ops, total, spent) = parse_audit(&report);
        assert!(!ops.is_empty(), "no per-operator lines in:\n{report}");
        let sum: f64 = ops.iter().map(|(_, e)| e).sum();
        assert!(
            (sum - spent).abs() < 1e-9,
            "operator sum {sum} vs spent {spent}\n{report}"
        );
        assert!((total - spent).abs() < 1e-9);
        assert!(report.contains("label 'rtt'"));
    }

    #[test]
    fn audit_exports_a_parseable_ledger() {
        let path = tmp("t9.dpnt");
        let ledger = tmp("t9.audit.jsonl");
        generate_cmd(&args(&["generate", &path, "--flows", "30"])).unwrap();
        let report = audit_cmd(&args(&[
            "audit",
            &path,
            "count",
            "--eps",
            "0.25",
            "--seed",
            "3",
            "--out",
            &ledger,
            "--label",
            "session-42",
        ]))
        .unwrap();
        assert!(report.contains("audit ledger written"));
        assert!(report.contains("label 'session-42'"));
        let text = std::fs::read_to_string(&ledger).unwrap();
        let mut saw_summary = false;
        for line in text.lines() {
            let obj = dpnet_obs::json::parse_flat_object(line)
                .unwrap_or_else(|| panic!("unparseable audit line: {line}"));
            if obj["type"].as_str() == Some("summary") {
                saw_summary = true;
                assert!((obj["spent"].as_f64().unwrap() - 0.25).abs() < 1e-9);
            }
        }
        assert!(saw_summary, "no summary line in:\n{text}");
    }

    #[test]
    fn analyze_audit_out_writes_the_ledger() {
        let path = tmp("t10.dpnt");
        let ledger = tmp("t10.audit.jsonl");
        generate_cmd(&args(&["generate", &path, "--flows", "20"])).unwrap();
        let report = analyze_cmd(&args(&[
            "analyze",
            &path,
            "count",
            "--seed",
            "2",
            "--audit-out",
            &ledger,
            "--label",
            "weekly",
        ]))
        .unwrap();
        assert!(report.contains("audit ledger written"));
        let text = std::fs::read_to_string(&ledger).unwrap();
        assert!(text.contains("\"label\":\"weekly\""));
        assert!(text.contains("\"op\":\"noisy_count\""));
    }

    #[test]
    fn follow_tails_lines_appended_while_running() {
        use std::io::Write as _;
        let path = tmp("t12.follow.jsonl");
        std::fs::write(&path, "{\"type\":\"charge\",\"eps\":0.1}\n").unwrap();
        let writer_path = path.clone();
        let writer = std::thread::spawn(move || {
            for i in 0..3 {
                std::thread::sleep(std::time::Duration::from_millis(60));
                let mut f = File::options().append(true).open(&writer_path).unwrap();
                writeln!(f, "{{\"type\":\"charge\",\"eps\":0.{i}}}").unwrap();
            }
            let mut f = File::options().append(true).open(&writer_path).unwrap();
            writeln!(f, "not json at all").unwrap();
        });
        let mut out = Vec::new();
        let printed = follow_file(Path::new(&path), 5, 0, &mut out).unwrap();
        writer.join().unwrap();
        assert_eq!(printed, 5);
        let text = String::from_utf8(out).unwrap();
        assert_eq!(text.lines().count(), 5);
        assert!(
            text.contains("not json at all  <- not valid JSON"),
            "{text}"
        );
    }

    #[test]
    fn follow_stops_when_idle() {
        let path = tmp("t13.follow.jsonl");
        std::fs::write(&path, "{\"a\":1}\n{\"b\":2}\n").unwrap();
        let mut out = Vec::new();
        // No writer: drains the two lines, then gives up after idle-ms.
        let printed = follow_file(Path::new(&path), 0, 120, &mut out).unwrap();
        assert_eq!(printed, 2);
        let report = audit_cmd(&args(&[
            "audit",
            "--follow",
            &path,
            "--max-lines",
            "1",
            "--idle-ms",
            "100",
        ]))
        .unwrap();
        assert!(report.contains("followed 1 line(s)"), "{report}");
    }

    #[test]
    fn loadtest_runs_in_process_and_writes_the_serve_report() {
        let dir = tmp("t14-reports");
        let report = loadtest_cmd(&args(&[
            "loadtest",
            "--sessions",
            "4",
            "--requests",
            "2",
            "--analysts",
            "2",
            "--flows",
            "20",
            "--eps",
            "0.01",
            "--seed",
            "77",
            "--report-dir",
            &dir,
        ]))
        .unwrap();
        assert!(report.contains("4 session(s), 8 request(s)"), "{report}");
        assert!(
            report.contains("ok 8"),
            "all cheap queries succeed: {report}"
        );
        let text = std::fs::read_to_string(Path::new(&dir).join("BENCH_serve.json")).unwrap();
        for key in [
            "\"latency\":",
            "\"p50_ns\":",
            "\"p95_ns\":",
            "\"p99_ns\":",
            "\"sessions\":4",
        ] {
            assert!(text.contains(key), "missing {key} in:\n{text}");
        }
    }

    #[test]
    fn loadtest_counts_budget_exhaustion_gracefully() {
        // Per-analyst cap 0.25 at eps 0.1: each of the 2 analysts affords
        // exactly 2 of its 4 requests (one session per analyst).
        let report = loadtest_cmd(&args(&[
            "loadtest",
            "--sessions",
            "2",
            "--requests",
            "4",
            "--analysts",
            "2",
            "--flows",
            "20",
            "--eps",
            "0.1",
            "--seed",
            "78",
            "--analyst-cap",
            "0.25",
            "--global-eps",
            "10.0",
        ]))
        .unwrap();
        assert!(report.contains("ok 4"), "{report}");
        assert!(report.contains("budget_exhausted 4"), "{report}");
    }

    #[test]
    fn seeded_analyze_is_reproducible() {
        let path = tmp("t5.dpnt");
        generate_cmd(&args(&["generate", &path, "--flows", "30"])).unwrap();
        let a = analyze_cmd(&args(&["analyze", &path, "count", "--seed", "11"])).unwrap();
        let b = analyze_cmd(&args(&["analyze", &path, "count", "--seed", "11"])).unwrap();
        assert_eq!(a, b);
    }
}
