//! EXPLAIN's core contract, end to end: the ε the recorder *predicts* per
//! exact charge path equals the net ε each accountant actually booked per
//! path (`Accountant::path_totals`) after a real run. The two sides come
//! from independent bookkeeping — predictions are the traced per-root
//! deltas folded in `pinq::explain`, path totals the accountant's own
//! eviction-proof per-path ledger — so agreement is a real check of the
//! privacy-cost arithmetic, not a tautology.
//!
//! The pipelines mirror the two experiments the CI golden gate covers:
//! fig1's three CDF estimators (naive, partition, hierarchical) and worm's
//! group-by → dispersion-filter → noisy-count sweep, on reduced data so
//! debug-mode runs stay fast.

use dpnet_bench::explain::{run_explained, ExplainConfig};
use dpnet_toolkit::cdf::{cdf_hierarchical, cdf_naive, cdf_partition};
use pinq::{
    install_explain_recorder, uninstall_explain_recorder, Accountant, ExplainRecorder,
    ExplainReport, NoiseSource, Queryable,
};
use std::collections::HashSet;
use std::sync::{Arc, Mutex, MutexGuard};

/// The explain recorder (and, for analyze, the sink and span profiler)
/// are process-global; tests in this binary must not overlap.
fn global_guard() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0)
}

/// Every path the accountant booked must carry a matching prediction, and
/// the predictions must account for the entire spend.
fn assert_predictions_match(report: &ExplainReport, acct: &Accountant) {
    let totals = acct.path_totals();
    assert!(!totals.is_empty(), "the run must have charged something");
    for (path, total) in &totals {
        let predicted = report
            .full_paths
            .iter()
            .find(|p| p.path == **path)
            .unwrap_or_else(|| panic!("no prediction for accountant path {path}"))
            .predicted_eps;
        assert!(
            close(predicted, total.epsilon),
            "path {path}: predicted ε {predicted} vs accountant {}",
            total.epsilon
        );
    }
    let predicted_sum: f64 = report.full_paths.iter().map(|p| p.predicted_eps).sum();
    assert!(
        close(predicted_sum, acct.spent()),
        "predicted total {predicted_sum} vs spent {}",
        acct.spent()
    );
    assert!(
        close(report.predicted_total(), acct.spent()),
        "normalized-path total {} vs spent {}",
        report.predicted_total(),
        acct.spent()
    );
}

#[test]
fn fig1_shaped_predictions_equal_accountant_path_totals() {
    let _g = global_guard();
    const BUCKETS: usize = 16;
    let data: Vec<usize> = (0..400).map(|i| (i * 7) % BUCKETS).collect();
    let acct = Accountant::new(1e6);
    let noise = NoiseSource::seeded(0xf1);
    let q = Queryable::new(data, &acct, &noise);

    let rec = Arc::new(ExplainRecorder::new());
    install_explain_recorder(rec.clone());
    // The same estimator triple as E-F1, at fig1's per-estimator budgets.
    let naive = cdf_naive(&q, BUCKETS, 1.0 / BUCKETS as f64);
    let partition = cdf_partition(&q, BUCKETS, 1.0);
    let levels = (BUCKETS.next_power_of_two().trailing_zeros() + 1) as f64;
    let hierarchical = cdf_hierarchical(&q, BUCKETS, 1.0 / levels);
    uninstall_explain_recorder();
    naive.expect("cdf1");
    partition.expect("cdf2");
    hierarchical.expect("cdf3");

    let report = rec.report();
    // Partitioned estimators must show up as part paths, absorbed or not.
    assert!(
        report
            .full_paths
            .iter()
            .any(|p| p.path.starts_with("part[")),
        "no partition charge paths in {:?}",
        report.full_paths
    );
    assert_predictions_match(&report, &acct);
}

#[derive(Clone)]
struct Pkt {
    payload: u16,
    src: u8,
    dst: u8,
}

#[test]
fn worm_shaped_predictions_equal_accountant_path_totals() {
    let _g = global_guard();
    // 24 payload groups with dispersion proportional to the payload id:
    // the high-payload groups pass the dispersion filter, the rest don't.
    let data: Vec<Pkt> = (0..24u16)
        .flat_map(|payload| {
            (0..=payload / 2).map(move |i| Pkt {
                payload,
                src: (i % 13) as u8,
                dst: ((i * 5) % 11) as u8,
            })
        })
        .collect();
    let acct = Accountant::new(1e6);
    let noise = NoiseSource::seeded(0x3042);
    let q = Queryable::new(data, &acct, &noise);

    let rec = Arc::new(ExplainRecorder::new());
    install_explain_recorder(rec.clone());
    // E-WORM's sweep: one group → filter → count per privacy level.
    let mut counts = Vec::new();
    for eps in [0.1, 1.0, 10.0] {
        let count = q
            .group_by(|p| p.payload)
            .filter(|g| {
                let srcs: HashSet<u8> = g.items.iter().map(|p| p.src).collect();
                let dsts: HashSet<u8> = g.items.iter().map(|p| p.dst).collect();
                srcs.len() >= 3 && dsts.len() >= 3
            })
            .noisy_count(eps);
        counts.push(count);
    }
    uninstall_explain_recorder();
    for count in counts {
        count.expect("worm-shaped count");
    }

    let report = rec.report();
    // GroupBy doubles stability, so each count charges 2ε at the root.
    let agg = report
        .aggregations
        .iter()
        .find(|a| a.operator == "noisy_count" && a.path == "root")
        .expect("the counts charge through the plain root");
    assert_eq!(agg.calls, 3);
    assert!(close(agg.requested_eps, 2.0 * (0.1 + 1.0 + 10.0)));
    assert_predictions_match(&report, &acct);
}

#[test]
fn analyze_overlays_measured_eps_and_self_time_on_every_aggregation() {
    let _g = global_guard();
    let cfg = ExplainConfig {
        experiment: "example23".to_string(),
        workers: 1,
        analyze: true,
        trace_out: None,
    };
    let out = run_explained(&cfg).expect("analyzed run");
    let overlay = out.overlay.expect("analyze builds an overlay");
    assert!(
        !out.report.aggregations.is_empty(),
        "example23 must aggregate"
    );
    for agg in &out.report.aggregations {
        let key = (agg.operator.clone(), agg.path.clone());
        let measured = overlay
            .measured_aggs
            .get(&key)
            .unwrap_or_else(|| panic!("no measured ε for {} @ {}", agg.operator, agg.path));
        // Prediction and measurement derive from independent event streams
        // (traced deltas vs accountant charge events) — they must agree.
        assert!(
            close(*measured, agg.predicted_eps),
            "{} @ {}: measured ε {measured} vs predicted {}",
            agg.operator,
            agg.path,
            agg.predicted_eps
        );
        assert!(
            overlay.self_ns.contains_key(&agg.operator),
            "no span self-time for operator {}",
            agg.operator
        );
    }
}
