//! Parallel-kernel benches: the chunked partition construction, the
//! parallel synthetic-trace generator at 1 vs 4 workers, and the
//! pipeline-depth bench comparing lazy fused plans against eager
//! per-operator materialization.
//!
//! These are the kernels the CI `bench-smoke` job watches: on a
//! multi-core runner the 4-worker variants should show a clear speedup
//! (the acceptance bar is ≥1.5×); on a single-core machine they degrade
//! gracefully to the sequential path plus scheduling overhead. The
//! `plan_pipeline` group runs a filter→map→partition chain over 1M
//! records two ways — lazily (one fused pass, no intermediate buffers)
//! and eagerly (`collect_protected` after every operator) — and is the
//! measured evidence behind the lazy execution model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dpnet_obs::{install_recorder, uninstall_recorder, TraceRecorder};
use dpnet_trace::gen::scatter::{generate_with, ScatterConfig};
use pinq::{Accountant, ExecCtx, ExecPool, NoiseSource, Queryable};
use std::sync::Arc;

const KEYS: usize = 256;

/// Records in the pipeline-depth bench. The acceptance bar for the lazy
/// execution model is measured at this scale: deep chains over ≥1M
/// records must beat the eager per-operator path.
const PIPELINE_N: usize = 1_000_000;

fn dataset(n: usize) -> Queryable<u32> {
    let acct = Accountant::new(f64::MAX / 2.0);
    let noise = NoiseSource::seeded(11);
    let values: Vec<u32> = (0..n as u32).map(|i| i.wrapping_mul(2654435761)).collect();
    Queryable::new(values, &acct, &noise)
}

fn bench_partition(c: &mut Criterion) {
    let mut g = c.benchmark_group("exec_partition");
    let q = dataset(200_000);
    let keys: Vec<u32> = (0..KEYS as u32).collect();
    for &workers in &[1usize, 4] {
        let pool = ExecPool::new(workers).unwrap();
        let q = q.clone().with_ctx(ExecCtx::pool(&pool));
        g.bench_with_input(
            BenchmarkId::new("partition_200k", workers),
            &workers,
            |b, _| b.iter(|| q.partition(&keys, |&v| v % KEYS as u32).unwrap().len()),
        );
    }
    g.finish();
}

fn bench_trace_gen(c: &mut Criterion) {
    let mut g = c.benchmark_group("exec_trace_gen");
    let cfg = ScatterConfig {
        seed: 7,
        ips: 8_000,
        ..ScatterConfig::default()
    };
    for &workers in &[1usize, 4] {
        let pool = ExecPool::new(workers).unwrap();
        g.bench_with_input(
            BenchmarkId::new("scatter_8k_ips", workers),
            &workers,
            |b, _| b.iter(|| generate_with(cfg.clone(), &pool).records.len()),
        );
    }
    g.finish();
}

/// The canonical deep chain: filter (keep ~half) → map → partition.
/// `eager` forces a full materialization after every transform — the
/// pre-refactor per-operator behaviour; the lazy variant materializes
/// exactly once, inside `partition`, through the fused runner.
fn pipeline(q: &Queryable<u32>, keys: &[u32], eager: bool) -> usize {
    let force = |q: Queryable<u32>| if eager { q.collect_protected() } else { q };
    let filtered = force(q.filter(|&v| v % 2 == 0));
    let mapped = force(filtered.map(|&v| v / 2));
    mapped.partition(keys, |&v| v % KEYS as u32).unwrap().len()
}

fn bench_pipeline_depth(c: &mut Criterion) {
    let mut g = c.benchmark_group("plan_pipeline");
    g.sample_size(10);
    g.throughput(Throughput::Elements(PIPELINE_N as u64));
    let q = dataset(PIPELINE_N);
    let keys: Vec<u32> = (0..KEYS as u32).collect();
    g.bench_function("filter_map_partition_1m_lazy", |b| {
        b.iter(|| pipeline(&q, &keys, false))
    });
    g.bench_function("filter_map_partition_1m_eager", |b| {
        b.iter(|| pipeline(&q, &keys, true))
    });
    for &workers in &[2usize, 4] {
        let pool = ExecPool::new(workers).unwrap();
        let q = q.clone().with_ctx(ExecCtx::pool(&pool));
        g.bench_with_input(
            BenchmarkId::new("filter_map_partition_1m_lazy_pool", workers),
            &workers,
            |b, _| b.iter(|| pipeline(&q, &keys, false)),
        );
    }
    g.finish();
}

/// Span-profiler cost on the canonical pipeline, both ways: `off` is the
/// disabled path (instrumentation compiled in, no recorder installed —
/// each span site is one relaxed atomic load; budget ≤1% over the
/// pre-instrumentation pipeline), `on` records every span into an
/// installed [`TraceRecorder`] (budget ≤5% over `off`).
fn bench_profiler_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("profiler_overhead");
    g.sample_size(10);
    g.throughput(Throughput::Elements(PIPELINE_N as u64));
    let q = dataset(PIPELINE_N);
    let keys: Vec<u32> = (0..KEYS as u32).collect();
    g.bench_function("plan_pipeline_1m_profiler_off", |b| {
        b.iter(|| pipeline(&q, &keys, false))
    });
    g.bench_function("plan_pipeline_1m_profiler_on", |b| {
        let rec = Arc::new(TraceRecorder::new());
        install_recorder(rec.clone());
        b.iter(|| {
            rec.clear();
            pipeline(&q, &keys, false)
        });
        uninstall_recorder();
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_partition, bench_trace_gen, bench_pipeline_depth, bench_profiler_overhead
}
criterion_main!(benches);
