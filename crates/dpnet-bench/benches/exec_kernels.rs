//! Parallel-kernel benches: the chunked partition construction and the
//! parallel synthetic-trace generator at 1 vs 4 workers.
//!
//! These are the kernels the CI `bench-smoke` job watches: on a
//! multi-core runner the 4-worker variants should show a clear speedup
//! (the acceptance bar is ≥1.5×); on a single-core machine they degrade
//! gracefully to the sequential path plus scheduling overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpnet_trace::gen::scatter::{generate_with, ScatterConfig};
use pinq::{Accountant, ExecPool, NoiseSource, Queryable};

const KEYS: usize = 256;

fn dataset(n: usize) -> Queryable<u32> {
    let acct = Accountant::new(f64::MAX / 2.0);
    let noise = NoiseSource::seeded(11);
    let values: Vec<u32> = (0..n as u32).map(|i| i.wrapping_mul(2654435761)).collect();
    Queryable::new(values, &acct, &noise)
}

fn bench_partition(c: &mut Criterion) {
    let mut g = c.benchmark_group("exec_partition");
    let q = dataset(200_000);
    let keys: Vec<u32> = (0..KEYS as u32).collect();
    for &workers in &[1usize, 4] {
        let pool = ExecPool::new(workers).unwrap();
        g.bench_with_input(
            BenchmarkId::new("partition_200k", workers),
            &workers,
            |b, _| b.iter(|| q.partition_with(&keys, |&v| v % KEYS as u32, &pool).len()),
        );
    }
    g.finish();
}

fn bench_trace_gen(c: &mut Criterion) {
    let mut g = c.benchmark_group("exec_trace_gen");
    let cfg = ScatterConfig {
        seed: 7,
        ips: 8_000,
        ..ScatterConfig::default()
    };
    for &workers in &[1usize, 4] {
        let pool = ExecPool::new(workers).unwrap();
        g.bench_with_input(
            BenchmarkId::new("scatter_8k_ips", workers),
            &workers,
            |b, _| b.iter(|| generate_with(cfg.clone(), &pool).records.len()),
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_partition, bench_trace_gen
}
criterion_main!(benches);
