//! End-to-end Criterion benches: one per paper analysis, on reduced traces,
//! measuring the full private pipeline including trace transformation and
//! budget accounting.

use criterion::{criterion_group, criterion_main, Criterion};
use dpnet_analyses::anomaly::{private_anomaly_norms, AnomalyConfig};
use dpnet_analyses::example_s23::heavy_hosts_to_port;
use dpnet_analyses::flow_stats::{loss_rate_cdf, rtt_cdf};
use dpnet_analyses::packet_dist::{packet_length_cdf, port_cdf};
use dpnet_analyses::stepping_stones::{stepping_stones, SteppingStoneConfig};
use dpnet_analyses::topology::{private_topology_clusters, TopologyConfig};
use dpnet_analyses::worm::{worm_fingerprints, WormConfig};
use dpnet_toolkit::kmeans::random_centers;
use dpnet_trace::gen::hotspot::{self, HotspotConfig};
use dpnet_trace::gen::isp::{self, IspConfig};
use dpnet_trace::gen::scatter::{self, ScatterConfig};
use pinq::{Accountant, NoiseSource, Queryable};

fn hotspot_q() -> Queryable<dpnet_trace::Packet> {
    let trace = hotspot::generate(HotspotConfig {
        web_flows: 400,
        worms_above_threshold: 4,
        worms_below_threshold: 2,
        stepping_stone_pairs: 3,
        interactive_decoys: 4,
        itemset_hosts: 20,
        ..HotspotConfig::default()
    });
    let acct = Accountant::new(f64::MAX / 2.0);
    let noise = NoiseSource::seeded(11);
    Queryable::new(trace.packets, &acct, &noise)
}

fn bench_packet_level(c: &mut Criterion) {
    let q = hotspot_q();
    c.bench_function("e2e_example_s23", |b| {
        b.iter(|| heavy_hosts_to_port(&q, 80, 1024, 0.1).unwrap())
    });
    c.bench_function("e2e_packet_length_cdf", |b| {
        b.iter(|| packet_length_cdf(&q, 1500, 10, 0.1).unwrap())
    });
    c.bench_function("e2e_port_cdf", |b| {
        b.iter(|| port_cdf(&q, 64, 0.1).unwrap())
    });
    c.bench_function("e2e_worm_fingerprinting", |b| {
        b.iter(|| {
            worm_fingerprints(
                &q,
                &WormConfig {
                    eps: 1.0,
                    presence_threshold: 50.0,
                    ..WormConfig::default()
                },
            )
            .unwrap()
        })
    });
}

fn bench_flow_level(c: &mut Criterion) {
    let q = hotspot_q();
    c.bench_function("e2e_rtt_cdf", |b| {
        b.iter(|| rtt_cdf(&q, 600, 10, 0.1).unwrap())
    });
    c.bench_function("e2e_loss_rate_cdf", |b| {
        b.iter(|| loss_rate_cdf(&q, 100, 10, 0.1).unwrap())
    });
    c.bench_function("e2e_stepping_stones", |b| {
        b.iter(|| {
            stepping_stones(
                &q,
                &SteppingStoneConfig {
                    eps: 1.0,
                    flow_threshold: 80.0,
                    pair_threshold: 20.0,
                    top_k: 10,
                    ..SteppingStoneConfig::default()
                },
            )
            .unwrap()
        })
    });
}

fn bench_graph_level(c: &mut Criterion) {
    let isp = isp::generate(IspConfig {
        links: 40,
        windows: 96,
        anomalies: 3,
        mean_packets: 30.0,
        ..IspConfig::default()
    });
    let acct = Accountant::new(f64::MAX / 2.0);
    let noise = NoiseSource::seeded(12);
    let q = Queryable::new(isp.to_records(), &acct, &noise);
    let cfg = AnomalyConfig {
        links: 40,
        windows: 96,
        components: 2,
        sweeps: 30,
        eps: 1.0,
    };
    c.bench_function("e2e_anomaly_detection_40x96", |b| {
        b.iter(|| private_anomaly_norms(&q, &cfg).unwrap())
    });

    let sc = scatter::generate(ScatterConfig {
        ips: 3000,
        ..ScatterConfig::default()
    });
    let acct = Accountant::new(f64::MAX / 2.0);
    let q = Queryable::new(sc.records, &acct, &noise);
    let init = random_centers(9, 38, 5.0, 25.0, 13);
    c.bench_function("e2e_topology_mapping_3k_ips", |b| {
        b.iter(|| {
            private_topology_clusters(
                &q,
                &TopologyConfig {
                    iterations: 3,
                    ..TopologyConfig::default()
                },
                init.clone(),
            )
            .unwrap()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_packet_level, bench_flow_level, bench_graph_level
}
criterion_main!(benches);
