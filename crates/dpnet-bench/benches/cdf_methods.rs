//! Ablation bench: the three CDF estimators across bucket counts.
//!
//! Measures wall-clock cost; the *privacy* cost ablation is what the paper's
//! Figure 1 (and experiment E-F1) shows — cdf1's cost grows linearly with
//! resolution, cdf2's stays constant, cdf3's grows logarithmically. Run time
//! mirrors the same structure: cdf1 re-filters the data per bucket, cdf2
//! partitions once, cdf3 partitions log-many times.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpnet_toolkit::cdf::{cdf_hierarchical, cdf_naive, cdf_partition};
use pinq::{Accountant, NoiseSource, Queryable};

fn dataset(n: usize, buckets: usize) -> Queryable<usize> {
    let acct = Accountant::new(f64::MAX / 2.0);
    let noise = NoiseSource::seeded(2);
    let values: Vec<usize> = (0..n).map(|i| (i * 7919) % buckets).collect();
    Queryable::new(values, &acct, &noise)
}

fn bench_cdfs(c: &mut Criterion) {
    let mut g = c.benchmark_group("cdf_methods");
    for &buckets in &[64usize, 256, 1024] {
        let q = dataset(50_000, buckets);
        g.bench_with_input(
            BenchmarkId::new("cdf1_naive", buckets),
            &buckets,
            |b, &n| b.iter(|| cdf_naive(&q, n, 0.001).unwrap()),
        );
        g.bench_with_input(
            BenchmarkId::new("cdf2_partition", buckets),
            &buckets,
            |b, &n| b.iter(|| cdf_partition(&q, n, 0.001).unwrap()),
        );
        g.bench_with_input(
            BenchmarkId::new("cdf3_hierarchical", buckets),
            &buckets,
            |b, &n| b.iter(|| cdf_hierarchical(&q, n, 0.001).unwrap()),
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_cdfs
}
criterion_main!(benches);
