//! Criterion benches for the core engine: aggregation and transformation
//! throughput, and the budget accountant's overhead.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use pinq::{Accountant, NoiseSource, Queryable};

const N: usize = 100_000;

fn records() -> Vec<u64> {
    (0..N as u64).collect()
}

fn protected() -> Queryable<u64> {
    let acct = Accountant::new(f64::MAX / 2.0);
    let noise = NoiseSource::seeded(1);
    Queryable::new(records(), &acct, &noise)
}

fn bench_aggregations(c: &mut Criterion) {
    let q = protected();
    let mut g = c.benchmark_group("aggregations");
    g.throughput(Throughput::Elements(N as u64));
    g.bench_function("noisy_count", |b| b.iter(|| q.noisy_count(1.0).unwrap()));
    g.bench_function("noisy_sum", |b| {
        b.iter(|| q.noisy_sum(1.0, |&x| x as f64 / N as f64).unwrap())
    });
    g.bench_function("noisy_average", |b| {
        b.iter(|| q.noisy_average(1.0, |&x| x as f64 / N as f64).unwrap())
    });
    g.bench_function("noisy_median_200_buckets", |b| {
        b.iter(|| {
            q.noisy_median(1.0, 0.0, N as f64, 200, |&x| x as f64)
                .unwrap()
        })
    });
    g.bench_function("noisy_sum_vector_8d", |b| {
        b.iter(|| {
            q.noisy_sum_vector(1.0, 8, 8.0, |&x| vec![(x % 8) as f64; 8])
                .unwrap()
        })
    });
    g.finish();
}

fn bench_transformations(c: &mut Criterion) {
    let q = protected();
    let mut g = c.benchmark_group("transformations");
    g.throughput(Throughput::Elements(N as u64));
    g.bench_function("filter_half", |b| b.iter(|| q.filter(|&x| x % 2 == 0)));
    g.bench_function("map_identity", |b| b.iter(|| q.map(|&x| x)));
    g.bench_function("group_by_1k_keys", |b| b.iter(|| q.group_by(|&x| x % 1000)));
    g.bench_function("distinct_by_mod_4k", |b| {
        b.iter(|| q.distinct_by(|&x| x % 4096))
    });
    let keys: Vec<u64> = (0..64).collect();
    g.bench_function("partition_64_parts", |b| {
        b.iter(|| q.partition(&keys, |&x| x % 64).unwrap())
    });
    g.bench_function("join_self_1k_keys", |b| {
        b.iter(|| q.join(&q, |&x| x % 1000, |&x| x % 1000))
    });
    g.finish();
}

fn bench_accounting(c: &mut Criterion) {
    let mut g = c.benchmark_group("accounting");
    g.bench_function("charge", |b| {
        b.iter_batched(
            || Accountant::new(f64::MAX / 2.0),
            |acct| {
                for _ in 0..1000 {
                    acct.charge(0.001).unwrap();
                }
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("partition_ledger_charge", |b| {
        let q = protected();
        let keys: Vec<u64> = (0..16).collect();
        let parts = q.partition(&keys, |&x| x % 16).unwrap();
        b.iter(|| {
            for p in &parts {
                p.noisy_count(0.001).unwrap();
            }
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_aggregations, bench_transformations, bench_accounting
}
criterion_main!(benches);
