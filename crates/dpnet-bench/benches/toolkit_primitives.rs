//! Criterion benches for the §4 toolkit primitives and supporting linear
//! algebra.

use criterion::{criterion_group, criterion_main, Criterion};
use dpnet_toolkit::freqstrings::{frequent_strings, FrequentStringsConfig};
use dpnet_toolkit::isotonic_regression;
use dpnet_toolkit::itemsets::{frequent_itemsets, ItemsetConfig};
use dpnet_toolkit::kmeans::{dp_kmeans, random_centers, KMeansConfig};
use dpnet_toolkit::linalg::{jacobi_eigen, pca_residual_norms, top_eigenvectors, Matrix};
use pinq::{Accountant, NoiseSource, Queryable};
use std::collections::BTreeSet;

fn bench_freqstrings(c: &mut Criterion) {
    // 20k 4-byte records: three planted strings + noise.
    let mut records: Vec<Vec<u8>> = Vec::new();
    for i in 0..20_000u32 {
        if i % 4 == 0 {
            records.push(b"AAAA".to_vec());
        } else {
            records.push(i.to_be_bytes().to_vec());
        }
    }
    let acct = Accountant::new(f64::MAX / 2.0);
    let noise = NoiseSource::seeded(3);
    let q = Queryable::new(records, &acct, &noise);
    let cfg = FrequentStringsConfig {
        length: 4,
        eps_per_level: 1.0,
        threshold: 500.0,
        max_viable: 128,
    };
    c.bench_function("frequent_strings_20k_len4", |b| {
        b.iter(|| frequent_strings(&q, &cfg).unwrap())
    });
}

fn bench_itemsets(c: &mut Criterion) {
    let mut records: Vec<BTreeSet<u16>> = Vec::new();
    for i in 0..5000u16 {
        let mut s: BTreeSet<u16> = [i % 8, 8 + i % 4].into_iter().collect();
        s.insert(1000 + i); // unique marker
        records.push(s);
    }
    let acct = Accountant::new(f64::MAX / 2.0);
    let noise = NoiseSource::seeded(4);
    let q = Queryable::new(records, &acct, &noise);
    let cfg = ItemsetConfig {
        universe: (0u16..12).collect(),
        max_size: 2,
        eps_per_level: 1.0,
        threshold: 50.0,
    };
    c.bench_function("itemsets_5k_records_12_items", |b| {
        b.iter(|| frequent_itemsets(&q, &cfg).unwrap())
    });
}

fn bench_kmeans(c: &mut Criterion) {
    let points: Vec<Vec<f64>> = (0..5000)
        .map(|i| (0..8).map(|d| ((i * (d + 3)) % 100) as f64).collect())
        .collect();
    let acct = Accountant::new(f64::MAX / 2.0);
    let noise = NoiseSource::seeded(5);
    let q = Queryable::new(points, &acct, &noise);
    let cfg = KMeansConfig {
        dims: 8,
        iterations: 3,
        eps_per_iteration: 1.0,
        l1_bound: 800.0,
    };
    let init = random_centers(6, 8, 0.0, 100.0, 9);
    c.bench_function("dp_kmeans_5k_points_3_iters", |b| {
        b.iter(|| dp_kmeans(&q, &cfg, init.clone()).unwrap())
    });
}

fn bench_linalg(c: &mut Criterion) {
    // Symmetric 100×100 matrix.
    let n = 100;
    let mut m = Matrix::zeros(n, n);
    for i in 0..n {
        for j in i..n {
            let v = ((i * 31 + j * 17) % 101) as f64 / 101.0;
            m.set(i, j, v);
            m.set(j, i, v);
        }
    }
    c.bench_function("jacobi_eigen_100x100", |b| b.iter(|| jacobi_eigen(&m, 20)));
    c.bench_function("power_iteration_top4_100x100", |b| {
        b.iter(|| top_eigenvectors(&m, 4, 50))
    });

    // PCA residuals of a 500×100 data matrix.
    let data = Matrix::from_vec(
        500,
        100,
        (0..500 * 100).map(|i| ((i * 13) % 97) as f64).collect(),
    );
    c.bench_function("pca_residual_norms_500x100", |b| {
        b.iter(|| pca_residual_norms(&data, 4, 40))
    });
}

fn bench_isotonic(c: &mut Criterion) {
    let input: Vec<f64> = (0..10_000)
        .map(|i| i as f64 + 50.0 * (((i * 2654435761u64) % 97) as f64 / 97.0 - 0.5))
        .collect();
    c.bench_function("isotonic_regression_10k", |b| {
        b.iter(|| isotonic_regression(&input))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_freqstrings, bench_itemsets, bench_kmeans, bench_linalg, bench_isotonic
}
criterion_main!(benches);
