//! # dpnet-bench — the experiment harness
//!
//! Regenerates every table and figure of *McSherry & Mahajan (SIGCOMM
//! 2010)* against the synthetic datasets of [`dpnet_trace`], and hosts the
//! Criterion performance benches for the engine and toolkit.
//!
//! Run all experiments (or one by id) with the `repro` binary:
//!
//! ```text
//! cargo run --release -p dpnet-bench --bin repro -- all
//! cargo run --release -p dpnet-bench --bin repro -- fig1
//! ```
//!
//! Every experiment prints the paper's expected values or shape next to the
//! measured ones; `EXPERIMENTS.md` at the repository root records a full
//! run.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod datasets;
pub mod experiments;
pub mod explain;
pub mod profile;
pub mod registry;
pub mod report;

/// Tests that install process-global observers (the explain recorder, the
/// span profiler, the event sink) must not overlap; they serialize on this
/// crate-wide lock.
#[cfg(test)]
pub(crate) fn test_global_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}
