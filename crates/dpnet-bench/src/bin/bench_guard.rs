//! `bench_guard` — regression and speedup gates over `BENCH_*.json` reports.
//!
//! ```text
//! bench_guard compare <current.json> <baseline.json> [--threshold 0.25]
//! bench_guard speedup <seq.json> <par.json> [--min 1.5]
//! bench_guard kernel-speedup [--workers 4] [--min 1.5]
//! bench_guard record [--out bench-reports] [<id> ...]
//! bench_guard record --check [--out bench-reports]
//! bench_guard golden <current.json> <golden.json>
//! ```
//!
//! `compare` fails (exit 1) if any experiment's wall time regressed more
//! than the threshold against the baseline. Wall times are compared as
//! multiples of each report's own `calibration_ns` — the wall time of a
//! fixed CPU spin measured on the machine that produced the report — so a
//! baseline recorded on one machine remains meaningful on another.
//!
//! `speedup` fails (exit 1) if the parallel report's total wall time is not
//! at least `--min` times faster than the sequential report's. When the
//! running machine has fewer CPUs than the parallel report's worker count,
//! the check is skipped with a warning (exit 0): a 4-worker pool cannot
//! beat 1 worker on a single core.
//!
//! `kernel-speedup` times the two data-movement kernels the pool was built
//! for — chunked partition construction and parallel synthetic-trace
//! generation — at 1 vs `--workers` workers, in this process, and fails if
//! the *better* of the two speedups is below `--min`. Skipped (exit 0) on
//! machines with fewer CPUs than workers.
//!
//! `record` reruns the baseline experiment set (`fig1 itemsets worm` unless
//! ids are given) in this process and rewrites
//! `bench-reports/BENCH_baseline.json`, recalibrating for the current
//! machine. Run it after an intentional engine change, then commit the
//! refreshed baseline alongside the change.
//!
//! `record --check` is the dry-run staleness gate: it touches nothing and
//! instead verifies that the committed fixtures the other gates consume —
//! `BENCH_baseline.json` and every `GOLDEN_*.json` under the report
//! directory — were produced by the current report schema. Run-report
//! fixtures must carry `schema_version` equal to
//! [`dpnet_bench::report::SCHEMA_VERSION`]; explain-format fixtures must
//! parse with the current explain-semantics reader. Any stale file fails
//! (exit 1) with the exact regeneration command, so a schema bump cannot
//! silently turn the compare/golden gates into no-ops that misread old
//! field layouts.
//!
//! `golden` compares only the *semantic* fields of two reports — experiment
//! ids, their `eps_charged`, and each phase's name and `eps_spent` — and
//! ignores wall times entirely. CI runs a fast fixed-seed experiment and
//! diffs it against a committed `GOLDEN_*.json` fixture: any drift in
//! released values' privacy charges fails the build even on noisy runners.
//!
//! `profile` diffs the per-operator time attribution of two profiled
//! reports (produced by `dpnet profile` or `repro --profile`). Self times
//! are normalized by each report's own `calibration_ns`, operators are
//! aligned by name, and the table is sorted by the change in self time —
//! the operator whose cost moved most is printed first, and each report's
//! top-3 self-time operators are named. Informational: always exits 0
//! unless a report cannot be read.
//!
//! `explain` diffs two `dpnet explain --format json` reports on their
//! noise-independent content: the plan/charge structure (operators,
//! normalized charge paths, call counts) and the *predicted* ε per
//! aggregation site and per path. CI runs `dpnet explain fig1` and diffs
//! it against the committed `GOLDEN_explain_fig1.json`: any drift in query
//! structure or privacy-cost arithmetic fails the build, while noise draws
//! and wall times cannot.

use dpnet_bench::experiments as exp;
use dpnet_bench::report::{RunReport, SCHEMA_VERSION};
use dpnet_obs::{set_global_sink, MemorySink};
use dpnet_trace::gen::scatter::{generate_with, ScatterConfig};
use pinq::{Accountant, ExecCtx, ExecPool, NoiseSource, Queryable};
use std::process::exit;
use std::sync::Arc;
use std::time::Instant;

/// First `"key":<number>` occurrence in `json`, parsed as u64.
fn field_u64(json: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let start = json.find(&pat)? + pat.len();
    let digits: String = json[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

/// First `"key":<number>` occurrence in `json`, parsed as f64 (accepts a
/// sign, a decimal point, and an exponent).
fn field_f64(json: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let start = json.find(&pat)? + pat.len();
    let digits: String = json[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E'))
        .collect();
    digits.parse().ok()
}

/// The semantic (machine-independent) content of one experiment entry:
/// its id, total ε charged, and each phase's `(name, eps_spent)`.
#[derive(Debug, Clone, PartialEq)]
struct ExpSemantics {
    id: String,
    eps_charged: f64,
    phases: Vec<(String, f64)>,
}

/// Extract the semantic fields of every experiment in a report, in file
/// order. Wall times and calibration are deliberately not read.
fn experiment_semantics(json: &str) -> Vec<ExpSemantics> {
    let mut out: Vec<ExpSemantics> = Vec::new();
    let mut rest = json;
    while let Some(pos) = rest.find("\"id\":\"") {
        rest = &rest[pos + 6..];
        let Some(end) = rest.find('"') else { break };
        let id = rest[..end].to_string();
        rest = &rest[end..];
        // This experiment's fields run until the next "id" key (or EOF).
        let segment_end = rest.find("\"id\":\"").unwrap_or(rest.len());
        let segment = &rest[..segment_end];
        let eps_charged = field_f64(segment, "eps_charged").unwrap_or(f64::NAN);
        let mut phases = Vec::new();
        let mut phase_rest = segment;
        while let Some(npos) = phase_rest.find("\"name\":\"") {
            phase_rest = &phase_rest[npos + 8..];
            let Some(nend) = phase_rest.find('"') else {
                break;
            };
            let name = phase_rest[..nend].to_string();
            if let Some(eps) = field_f64(phase_rest, "eps_spent") {
                phases.push((name, eps));
            }
            phase_rest = &phase_rest[nend..];
        }
        out.push(ExpSemantics {
            id,
            eps_charged,
            phases,
        });
    }
    out
}

/// Per-experiment `(id, wall_ns)` pairs. Relies on the report writer's
/// field order: each experiment object opens with `"id"` immediately
/// followed by `"wall_ns"`.
fn experiment_walls(json: &str) -> Vec<(String, u64)> {
    let mut out = Vec::new();
    let mut rest = json;
    while let Some(pos) = rest.find("\"id\":\"") {
        rest = &rest[pos + 6..];
        let Some(end) = rest.find('"') else { break };
        let id = rest[..end].to_string();
        if let Some(wall) = field_u64(rest, "wall_ns") {
            out.push((id, wall));
        }
        rest = &rest[end..];
    }
    out
}

/// One operator's folded attribution totals, as read from a report.
#[derive(Debug, Default, Clone, PartialEq)]
struct AttrTotals {
    count: u64,
    total_ns: u64,
    self_ns: u64,
}

/// Fold every `"attribution":[...]` array in a report into per-operator
/// totals. Objects inside the arrays are flat, so a brace scan suffices.
fn attribution_totals(json: &str) -> std::collections::BTreeMap<String, AttrTotals> {
    let mut out: std::collections::BTreeMap<String, AttrTotals> = std::collections::BTreeMap::new();
    let mut rest = json;
    while let Some(pos) = rest.find("\"attribution\":[") {
        rest = &rest[pos + 15..];
        let body_end = rest.find(']').unwrap_or(rest.len());
        let mut body = &rest[..body_end];
        while let Some(open) = body.find('{') {
            let Some(close) = body[open..].find('}') else {
                break;
            };
            let obj = &body[open..=open + close];
            if let Some(map) = dpnet_obs::json::parse_flat_object(obj) {
                let name = map.get("name").and_then(|v| v.as_str()).map(str::to_string);
                let num = |key: &str| map.get(key).and_then(|v| v.as_f64()).unwrap_or(0.0) as u64;
                if let Some(name) = name {
                    let row = out.entry(name).or_default();
                    row.count += num("count");
                    row.total_ns += num("total_ns");
                    row.self_ns += num("self_ns");
                }
            }
            body = &body[open + close + 1..];
        }
        rest = &rest[body_end..];
    }
    out
}

struct Report {
    calibration_ns: u64,
    workers: u64,
    walls: Vec<(String, u64)>,
}

fn load(path: &str) -> Result<Report, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    Ok(Report {
        calibration_ns: field_u64(&text, "calibration_ns")
            .ok_or_else(|| format!("{path}: no calibration_ns field"))?
            .max(1),
        workers: field_u64(&text, "workers").unwrap_or(1),
        walls: experiment_walls(&text),
    })
}

/// Trailing `--flag <value>` parse with a default.
fn flag_f64(args: &[String], flag: &str, default: f64) -> f64 {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn cmd_compare(current: &str, baseline: &str, threshold: f64) -> i32 {
    let (cur, base) = match (load(current), load(baseline)) {
        (Ok(c), Ok(b)) => (c, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let mut failed = false;
    for (id, wall) in &cur.walls {
        let Some((_, base_wall)) = base.walls.iter().find(|(b, _)| b == id) else {
            eprintln!("[skip] {id}: not in baseline");
            continue;
        };
        let cur_units = *wall as f64 / cur.calibration_ns as f64;
        let base_units = *base_wall as f64 / base.calibration_ns as f64;
        let ratio = cur_units / base_units.max(f64::MIN_POSITIVE);
        let verdict = if ratio > 1.0 + threshold {
            failed = true;
            "REGRESSED"
        } else {
            "ok"
        };
        println!(
            "[{verdict}] {id}: {cur_units:.1} vs baseline {base_units:.1} calibration units ({ratio:.2}x)"
        );
    }
    for (id, _) in &base.walls {
        if !cur.walls.iter().any(|(c, _)| c == id) {
            eprintln!("[warn] {id}: in baseline but missing from current run");
        }
    }
    if failed {
        eprintln!(
            "bench_guard: wall-clock regression beyond {threshold:.0}% threshold",
            threshold = threshold * 100.0
        );
        1
    } else {
        0
    }
}

/// Surface a skipped gate in the GitHub Actions checks UI. Silent `[skip]`
/// lines on stderr vanish into the log on single-core runners, so a parallel
/// gate can stop gating without anyone noticing; this also emits the
/// `::warning::` workflow command (rendered as an annotation) and appends a
/// line to the job summary when `$GITHUB_STEP_SUMMARY` is set.
fn ci_skip_warning(gate: &str, reason: &str) {
    eprintln!("[skip] {gate}: {reason}");
    println!("::warning title={gate} gate skipped::{reason}");
    if let Ok(path) = std::env::var("GITHUB_STEP_SUMMARY") {
        if !path.is_empty() {
            append_skip_summary(&path, gate, reason);
        }
    }
}

/// The job-summary half of [`ci_skip_warning`]: one appended markdown line.
fn append_skip_summary(path: &str, gate: &str, reason: &str) {
    use std::io::Write;
    match std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
    {
        Ok(mut f) => {
            let _ = writeln!(f, ":warning: `{gate}` gate **skipped**: {reason}");
        }
        Err(e) => eprintln!("[warn] cannot append to job summary {path}: {e}"),
    }
}

fn cmd_speedup(seq_path: &str, par_path: &str, min: f64) -> i32 {
    let (seq, par) = match (load(seq_path), load(par_path)) {
        (Ok(s), Ok(p)) => (s, p),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get() as u64)
        .unwrap_or(1);
    if cpus < par.workers {
        ci_skip_warning(
            "speedup",
            &format!(
                "machine has {cpus} CPUs, parallel run used {} workers — \
                 parallel speedup was NOT checked",
                par.workers
            ),
        );
        return 0;
    }
    let seq_wall: u64 = seq.walls.iter().map(|(_, w)| w).sum();
    let par_wall: u64 = par.walls.iter().map(|(_, w)| w).sum::<u64>().max(1);
    let speedup = seq_wall as f64 / par_wall as f64;
    println!(
        "speedup at {} workers: {speedup:.2}x (sequential {seq_wall} ns, parallel {par_wall} ns)",
        par.workers
    );
    if speedup < min {
        eprintln!("bench_guard: speedup {speedup:.2}x below the {min:.2}x bar");
        1
    } else {
        0
    }
}

/// Best-of-3 wall time of `f`.
fn best_of_3(mut f: impl FnMut()) -> u64 {
    (0..3)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_nanos() as u64
        })
        .min()
        .expect("three rounds")
        .max(1)
}

fn cmd_kernel_speedup(workers: usize, min: f64) -> i32 {
    let cpus = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    if cpus < workers {
        ci_skip_warning(
            "kernel-speedup",
            &format!(
                "machine has {cpus} CPUs, need {workers} — \
                 kernel speedup was NOT checked"
            ),
        );
        return 0;
    }
    let seq = ExecPool::sequential();
    let par = match ExecPool::new(workers) {
        Ok(pool) => pool,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };

    // Partition construction: 200k records into 256 parts.
    let acct = Accountant::new(f64::MAX / 2.0);
    let noise = NoiseSource::seeded(11);
    let values: Vec<u32> = (0..200_000u32)
        .map(|i| i.wrapping_mul(2654435761))
        .collect();
    let q = Queryable::new(values, &acct, &noise);
    let keys: Vec<u32> = (0..256u32).collect();
    let q_seq = q.clone().with_ctx(ExecCtx::pool(&seq));
    let q_par = q.clone().with_ctx(ExecCtx::pool(&par));
    let part_seq = best_of_3(|| {
        q_seq.partition(&keys, |&v| v % 256).expect("distinct keys");
    });
    let part_par = best_of_3(|| {
        q_par.partition(&keys, |&v| v % 256).expect("distinct keys");
    });
    let part_speedup = part_seq as f64 / part_par as f64;

    // Synthetic trace generation: scatter trace, 8k IPs.
    let cfg = ScatterConfig {
        seed: 7,
        ips: 8_000,
        ..ScatterConfig::default()
    };
    let gen_seq = best_of_3(|| {
        generate_with(cfg.clone(), &seq);
    });
    let gen_par = best_of_3(|| {
        generate_with(cfg.clone(), &par);
    });
    let gen_speedup = gen_seq as f64 / gen_par as f64;

    println!("partition kernel:  {part_speedup:.2}x at {workers} workers");
    println!("trace-gen kernel:  {gen_speedup:.2}x at {workers} workers");
    let best = part_speedup.max(gen_speedup);
    if best < min {
        eprintln!("bench_guard: best kernel speedup {best:.2}x below the {min:.2}x bar");
        1
    } else {
        0
    }
}

/// Top-N operators named explicitly by `profile`.
const PROFILE_TOP: usize = 3;

fn cmd_profile(a_path: &str, b_path: &str) -> i32 {
    let read =
        |path: &str| std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"));
    let (a_text, b_text) = match (read(a_path), read(b_path)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let a_cal = field_u64(&a_text, "calibration_ns").unwrap_or(1).max(1) as f64;
    let b_cal = field_u64(&b_text, "calibration_ns").unwrap_or(1).max(1) as f64;
    // Reports written before the profiler existed have no attribution
    // array at all; name the offending file instead of diffing nothing.
    for (path, text) in [(a_path, &a_text), (b_path, &b_text)] {
        if !text.contains("\"attribution\":[") {
            eprintln!(
                "bench_guard: {path} carries no attribution array — it was \
                 not produced by a profiled run; regenerate it with \
                 `dpnet profile <id>` or `repro --profile <id>`"
            );
            return 2;
        }
    }
    let a_rows = attribution_totals(&a_text);
    let b_rows = attribution_totals(&b_text);
    if a_rows.is_empty() && b_rows.is_empty() {
        eprintln!("bench_guard: neither report carries attribution (profiled runs only)");
        return 2;
    }

    // Align by operator name; normalize to calibration units so reports
    // from different machines stay comparable.
    let names: std::collections::BTreeSet<&String> = a_rows.keys().chain(b_rows.keys()).collect();
    let mut diff: Vec<(&str, f64, f64, u64, u64)> = names
        .into_iter()
        .map(|name| {
            let a = a_rows.get(name).cloned().unwrap_or_default();
            let b = b_rows.get(name).cloned().unwrap_or_default();
            (
                name.as_str(),
                a.self_ns as f64 / a_cal,
                b.self_ns as f64 / b_cal,
                a.count,
                b.count,
            )
        })
        .collect();
    diff.sort_by(|x, y| {
        let (dx, dy) = ((x.2 - x.1).abs(), (y.2 - y.1).abs());
        dy.partial_cmp(&dx).unwrap_or(std::cmp::Ordering::Equal)
    });

    println!("attribution diff: {a_path} -> {b_path} (self time, calibration units)");
    println!(
        "{:<24} {:>10} {:>10} {:>10} {:>8}  {:>7} {:>7}",
        "operator", "a.self", "b.self", "delta", "ratio", "a.count", "b.count"
    );
    for (name, a_self, b_self, a_count, b_count) in &diff {
        let ratio = if *a_self > 0.0 {
            format!("{:.2}x", b_self / a_self)
        } else {
            "-".to_string()
        };
        println!(
            "{name:<24} {a_self:>10.2} {b_self:>10.2} {:>+10.2} {ratio:>8}  {a_count:>7} {b_count:>7}",
            b_self - a_self
        );
    }

    let top = |rows: &std::collections::BTreeMap<String, AttrTotals>, label: &str| {
        let mut by_self: Vec<(&String, u64)> = rows.iter().map(|(n, r)| (n, r.self_ns)).collect();
        by_self.sort_by_key(|row| std::cmp::Reverse(row.1));
        let names: Vec<String> = by_self
            .iter()
            .take(PROFILE_TOP)
            .enumerate()
            .map(|(i, (n, _))| format!("{}. {n}", i + 1))
            .collect();
        println!("top self-time ({label}): {}", names.join("  "));
    };
    top(&a_rows, a_path);
    top(&b_rows, b_path);
    0
}

/// The experiment set the committed baseline covers.
const BASELINE_IDS: [&str; 3] = ["fig1", "itemsets", "worm"];

/// Run one pool-aware experiment for `record`, discarding its report text.
fn run_baseline_experiment(id: &str, pool: &ExecPool) -> Result<(), String> {
    match id {
        "fig1" => exp::fig1::run_with(1.0, pool)
            .map(|_| ())
            .map_err(|e| e.to_string()),
        "itemsets" => {
            exp::itemsets_exp::run_with(1.0, pool);
            Ok(())
        }
        "worm" => {
            exp::worm_exp::run_with(pool);
            Ok(())
        }
        other => Err(format!(
            "unknown baseline experiment id '{other}' (expected one of {})",
            BASELINE_IDS.join(" ")
        )),
    }
}

fn cmd_record(out_dir: &str, ids: &[String]) -> i32 {
    let ids: Vec<&str> = if ids.is_empty() {
        BASELINE_IDS.to_vec()
    } else {
        ids.iter().map(String::as_str).collect()
    };
    let pool = match ExecPool::new(1) {
        Ok(pool) => pool,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let sink = Arc::new(MemorySink::new());
    set_global_sink(Some(sink.clone()));
    let mut report = RunReport::new("baseline");
    report.set_workers(1);
    let mut failed = false;
    for id in &ids {
        sink.clear();
        let start = Instant::now();
        match run_baseline_experiment(id, &pool) {
            Ok(()) => {
                let wall = start.elapsed();
                println!("[{id} recorded in {wall:.1?}]");
                report.record(id, wall.as_nanos() as u64, &sink.drain());
            }
            Err(e) => {
                eprintln!("experiment {id} failed: {e}");
                failed = true;
            }
        }
    }
    set_global_sink(None);
    if failed {
        return 1;
    }
    match report.write_json(std::path::Path::new(out_dir)) {
        Ok(path) => {
            println!("baseline recorded: {}", path.display());
            0
        }
        Err(e) => {
            eprintln!("could not write baseline report: {e}");
            2
        }
    }
}

/// True when `seg` is one grammar segment of a kernel charge path:
/// `root` | `scale(x<float>)` | `part[<digits>|*]` | `in[<digits>]`
/// (the `*` form is the normalized per-part wildcard explain reports use).
fn valid_path_segment(seg: &str) -> bool {
    if seg == "root" {
        return true;
    }
    if let Some(inner) = seg
        .strip_prefix("scale(x")
        .and_then(|s| s.strip_suffix(')'))
    {
        return inner.parse::<f64>().map(f64::is_finite).unwrap_or(false);
    }
    if let Some(inner) = seg.strip_prefix("part[").and_then(|s| s.strip_suffix(']')) {
        return inner == "*" || (!inner.is_empty() && inner.bytes().all(|b| b.is_ascii_digit()));
    }
    if let Some(inner) = seg.strip_prefix("in[").and_then(|s| s.strip_suffix(']')) {
        return !inner.is_empty() && inner.bytes().all(|b| b.is_ascii_digit());
    }
    false
}

/// True when `path` parses under the kernel charge-path grammar:
/// slash-separated [`valid_path_segment`]s, leaf to root, so the last
/// segment is always `root` (every charge terminates at a root budget).
fn valid_charge_path(path: &str) -> bool {
    path.split('/').all(valid_path_segment) && path.ends_with("root")
}

/// Every `"path":"…"` value in `text`, in order of appearance. Fixture
/// paths never contain escapes, so a plain quote scan is exact.
fn extract_path_fields(text: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut rest = text;
    while let Some(i) = rest.find("\"path\":\"") {
        let after = &rest[i + "\"path\":\"".len()..];
        let Some(j) = after.find('"') else { break };
        out.push(&after[..j]);
        rest = &after[j..];
    }
    out
}

/// Validate every `"path"` field in a fixture against the charge-path
/// grammar, returning how many were checked. The kernel refactor could
/// silently change how paths render; this pins the committed fixtures to
/// the grammar the kernel actually emits.
fn check_path_fields(text: &str) -> Result<usize, String> {
    let paths = extract_path_fields(text);
    for p in &paths {
        if !valid_charge_path(p) {
            return Err(format!(
                "\"path\":\"{p}\" is not a kernel charge path \
                 (segments root | scale(x<float>) | part[<digits>|*] | in[<digits>], \
                 last segment root)"
            ));
        }
    }
    Ok(paths.len())
}

/// One fixture's freshness verdict for `record --check`: `Ok` carries a
/// printable status, `Err` the reason the file is stale. Pure on the file
/// name and contents so the logic is testable without a filesystem.
fn check_fixture_text(name: &str, text: &str) -> Result<String, String> {
    let n_paths = check_path_fields(text)?;
    if text.contains("\"explain\":") {
        // Explain-format fixtures carry no run-report schema_version; the
        // current-parser round trip is the schema check.
        return match explain_semantics(text, name) {
            Ok(s) => Ok(format!(
                "explain report for '{}' parses ({} aggregation sites, {} charge paths, \
                 {n_paths} path fields in grammar)",
                s.title,
                s.aggregations.len(),
                s.paths.len()
            )),
            Err(e) => Err(format!("does not parse as a current explain report: {e}")),
        };
    }
    match field_u64(text, "schema_version") {
        Some(v) if v == SCHEMA_VERSION => {
            if name == "BENCH_serve.json" {
                // Serve reports (schema 3) must carry the latency section:
                // a serve fixture without percentiles predates the serving
                // architecture no matter what version it stamps.
                for field in ["\"latency\":", "\"p50_ns\":", "\"p95_ns\":", "\"p99_ns\":"] {
                    if !text.contains(field) {
                        return Err(format!(
                            "schema_version {v} but no {field} section — not a serve report"
                        ));
                    }
                }
                return Ok(format!("schema_version {v}, latency percentiles present"));
            }
            Ok(format!("schema_version {v}"))
        }
        Some(v) => Err(format!(
            "schema_version {v}, current schema is {SCHEMA_VERSION}"
        )),
        None => Err(format!(
            "no schema_version field (predates schema {SCHEMA_VERSION})"
        )),
    }
}

/// The exact command that regenerates a stale fixture, by file name.
fn regenerate_hint(name: &str) -> String {
    if name == "BENCH_baseline.json" {
        return "cargo run --release -p dpnet-bench --bin bench_guard -- record".to_string();
    }
    if name == "BENCH_serve.json" {
        return "cargo run --release -p dpnet-cli --bin dpnet -- loadtest \
                --sessions 64 --requests 4 --report-dir bench-reports"
            .to_string();
    }
    if let Some(id) = name
        .strip_prefix("GOLDEN_explain_")
        .and_then(|s| s.strip_suffix(".json"))
    {
        return format!(
            "cargo run --release -p dpnet-cli --bin dpnet -- explain {id} --format json \
             --out bench-reports/{name}"
        );
    }
    if let Some(id) = name
        .strip_prefix("GOLDEN_")
        .and_then(|s| s.strip_suffix(".json"))
    {
        return format!(
            "cargo run --release -p dpnet-bench --bin repro -- {id} && \
             cp bench-reports/BENCH_{id}.json bench-reports/{name}"
        );
    }
    format!("regenerate bench-reports/{name} with the tool that produced it")
}

fn cmd_record_check(out_dir: &str) -> i32 {
    let dir = std::path::Path::new(out_dir);
    // The baseline is checked even when absent; the serve report is
    // checked when committed; goldens are whatever is committed (sorted so
    // the output is stable).
    let mut names = vec!["BENCH_baseline.json".to_string()];
    if dir.join("BENCH_serve.json").exists() {
        names.push("BENCH_serve.json".to_string());
    }
    match std::fs::read_dir(dir) {
        Ok(entries) => {
            let mut goldens: Vec<String> = entries
                .filter_map(Result::ok)
                .filter_map(|e| e.file_name().into_string().ok())
                .filter(|n| n.starts_with("GOLDEN_") && n.ends_with(".json"))
                .collect();
            goldens.sort();
            names.extend(goldens);
        }
        Err(e) => {
            eprintln!("cannot read {out_dir}: {e}");
            return 2;
        }
    }
    let mut stale = Vec::new();
    for name in &names {
        match std::fs::read_to_string(dir.join(name)) {
            Ok(text) => match check_fixture_text(name, &text) {
                Ok(status) => println!("[fresh] {name}: {status}"),
                Err(reason) => {
                    eprintln!("[STALE] {name}: {reason}");
                    stale.push(name.clone());
                }
            },
            Err(e) => {
                eprintln!("[STALE] {name}: cannot read: {e}");
                stale.push(name.clone());
            }
        }
    }
    if stale.is_empty() {
        println!("record --check: all committed fixtures match schema {SCHEMA_VERSION}");
        return 0;
    }
    eprintln!(
        "\nbench_guard: {} committed fixture(s) stale against schema {SCHEMA_VERSION}; \
         regenerate and commit:",
        stale.len()
    );
    for name in &stale {
        eprintln!("  {}", regenerate_hint(name));
    }
    1
}

fn cmd_golden(current: &str, golden: &str) -> i32 {
    let read =
        |path: &str| std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"));
    let (cur_text, gold_text) = match (read(current), read(golden)) {
        (Ok(c), Ok(g)) => (c, g),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let cur = experiment_semantics(&cur_text);
    let gold = experiment_semantics(&gold_text);
    let mut failed = false;
    let close = |a: f64, b: f64| (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0);
    for g in &gold {
        let failed_before = failed;
        let Some(c) = cur.iter().find(|c| c.id == g.id) else {
            eprintln!("[MISSING] {}: in golden but not in current run", g.id);
            failed = true;
            continue;
        };
        if !close(c.eps_charged, g.eps_charged) {
            eprintln!(
                "[DRIFT] {}: eps_charged {} vs golden {}",
                g.id, c.eps_charged, g.eps_charged
            );
            failed = true;
        }
        if c.phases.len() != g.phases.len() {
            eprintln!(
                "[DRIFT] {}: {} phases vs golden {}",
                g.id,
                c.phases.len(),
                g.phases.len()
            );
            failed = true;
        } else {
            for ((cn, ce), (gn, ge)) in c.phases.iter().zip(&g.phases) {
                if cn != gn || !close(*ce, *ge) {
                    eprintln!(
                        "[DRIFT] {}: phase {cn} eps {ce} vs golden phase {gn} eps {ge}",
                        g.id
                    );
                    failed = true;
                }
            }
        }
        if failed == failed_before {
            println!(
                "[ok] {}: eps_charged and {} phases match",
                g.id,
                g.phases.len()
            );
        }
    }
    for c in &cur {
        if !gold.iter().any(|g| g.id == c.id) {
            eprintln!("[warn] {}: in current run but not in golden fixture", c.id);
        }
    }
    if failed {
        eprintln!("bench_guard: semantic drift against the golden fixture");
        1
    } else {
        0
    }
}

/// The noise-independent content of a `dpnet explain --format json`
/// report: the experiment, the predicted ε totals, and the plan/charge
/// structure (operators, normalized paths, call counts). Wall times,
/// measured overlays, and anything analyze-only are deliberately not read.
#[derive(Debug, Clone, PartialEq)]
struct ExplainSemantics {
    title: String,
    predicted_total: f64,
    /// `(operator, path, calls, requested_eps, predicted_eps)` per site.
    aggregations: Vec<(String, String, u64, f64, f64)>,
    /// `(path, calls, predicted_eps)` per normalized charge path.
    paths: Vec<(String, u64, f64)>,
}

/// Parse one explain-JSON document into its semantic fields.
fn explain_semantics(text: &str, origin: &str) -> Result<ExplainSemantics, String> {
    use dpnet_obs::json::{parse_value, JsonValue};
    let bad = |what: &str| format!("{origin}: not an explain report ({what})");
    let doc = parse_value(text).ok_or_else(|| bad("unparseable JSON"))?;
    let title = doc
        .get("explain")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| bad("no explain title"))?
        .to_string();
    let predicted_total = doc
        .get("predicted_total")
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| bad("no predicted_total"))?;
    let str_of = |v: &JsonValue, key: &str| {
        v.get(key)
            .and_then(JsonValue::as_str)
            .map(str::to_string)
            .ok_or_else(|| bad(&format!("missing {key}")))
    };
    let num_of = |v: &JsonValue, key: &str| {
        v.get(key)
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| bad(&format!("missing {key}")))
    };
    let mut aggregations = Vec::new();
    for a in doc
        .get("aggregations")
        .and_then(JsonValue::items)
        .ok_or_else(|| bad("no aggregations array"))?
    {
        aggregations.push((
            str_of(a, "operator")?,
            str_of(a, "path")?,
            num_of(a, "calls")? as u64,
            num_of(a, "requested_eps")?,
            num_of(a, "predicted_eps")?,
        ));
    }
    let mut paths = Vec::new();
    for p in doc
        .get("paths")
        .and_then(JsonValue::items)
        .ok_or_else(|| bad("no paths array"))?
    {
        paths.push((
            str_of(p, "path")?,
            num_of(p, "calls")? as u64,
            num_of(p, "predicted_eps")?,
        ));
    }
    Ok(ExplainSemantics {
        title,
        predicted_total,
        aggregations,
        paths,
    })
}

/// Structural and predicted-ε drift between two explain reports, as
/// printable messages (empty = match). Noise never enters the predicted
/// fields, so exact structure plus 1e-9-relative ε equality is fair.
fn explain_drift(cur: &ExplainSemantics, gold: &ExplainSemantics) -> Vec<String> {
    let close = |a: f64, b: f64| (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0);
    let mut drift = Vec::new();
    if cur.title != gold.title {
        drift.push(format!(
            "experiment '{}' vs golden '{}'",
            cur.title, gold.title
        ));
    }
    if !close(cur.predicted_total, gold.predicted_total) {
        drift.push(format!(
            "predicted_total {} vs golden {}",
            cur.predicted_total, gold.predicted_total
        ));
    }
    if cur.aggregations.len() != gold.aggregations.len() {
        drift.push(format!(
            "{} aggregation sites vs golden {}",
            cur.aggregations.len(),
            gold.aggregations.len()
        ));
    } else {
        for (c, g) in cur.aggregations.iter().zip(&gold.aggregations) {
            if c.0 != g.0 || c.1 != g.1 || c.2 != g.2 || !close(c.3, g.3) || !close(c.4, g.4) {
                drift.push(format!("aggregation {c:?} vs golden {g:?}"));
            }
        }
    }
    if cur.paths.len() != gold.paths.len() {
        drift.push(format!(
            "{} charge paths vs golden {}",
            cur.paths.len(),
            gold.paths.len()
        ));
    } else {
        for (c, g) in cur.paths.iter().zip(&gold.paths) {
            if c.0 != g.0 || c.1 != g.1 || !close(c.2, g.2) {
                drift.push(format!("path {c:?} vs golden {g:?}"));
            }
        }
    }
    drift
}

fn cmd_explain(current: &str, golden: &str) -> i32 {
    let read =
        |path: &str| std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"));
    let parsed = read(current)
        .and_then(|c| explain_semantics(&c, current))
        .and_then(|c| Ok((c, read(golden).and_then(|g| explain_semantics(&g, golden))?)));
    let (cur, gold) = match parsed {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let drift = explain_drift(&cur, &gold);
    if drift.is_empty() {
        println!(
            "[ok] {}: {} aggregation sites, {} charge paths, predicted ε {} match the golden fixture",
            gold.title,
            gold.aggregations.len(),
            gold.paths.len(),
            gold.predicted_total
        );
        0
    } else {
        for d in &drift {
            eprintln!("[DRIFT] {d}");
        }
        eprintln!("bench_guard: explain drift against the golden fixture");
        1
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("compare") if args.len() >= 3 => {
            cmd_compare(&args[1], &args[2], flag_f64(&args, "--threshold", 0.25))
        }
        Some("speedup") if args.len() >= 3 => {
            cmd_speedup(&args[1], &args[2], flag_f64(&args, "--min", 1.5))
        }
        Some("kernel-speedup") => cmd_kernel_speedup(
            flag_f64(&args, "--workers", 4.0) as usize,
            flag_f64(&args, "--min", 1.5),
        ),
        Some("record") => {
            let out = args
                .iter()
                .position(|a| a == "--out")
                .and_then(|i| args.get(i + 1))
                .cloned()
                .unwrap_or_else(|| "bench-reports".to_string());
            if args.iter().any(|a| a == "--check") {
                cmd_record_check(&out)
            } else {
                let ids: Vec<String> = {
                    let mut rest = Vec::new();
                    let mut skip = false;
                    for a in &args[1..] {
                        if skip {
                            skip = false;
                            continue;
                        }
                        if a == "--out" {
                            skip = true;
                            continue;
                        }
                        rest.push(a.clone());
                    }
                    rest
                };
                cmd_record(&out, &ids)
            }
        }
        Some("golden") if args.len() >= 3 => cmd_golden(&args[1], &args[2]),
        Some("profile") if args.len() >= 3 => cmd_profile(&args[1], &args[2]),
        Some("explain") if args.len() >= 3 => cmd_explain(&args[1], &args[2]),
        _ => {
            eprintln!(
                "usage: bench_guard compare <current.json> <baseline.json> [--threshold 0.25]\n\
                 \x20      bench_guard speedup <seq.json> <par.json> [--min 1.5]\n\
                 \x20      bench_guard kernel-speedup [--workers 4] [--min 1.5]\n\
                 \x20      bench_guard record [--out bench-reports] [<id> ...]\n\
                 \x20      bench_guard record --check [--out bench-reports]\n\
                 \x20      bench_guard golden <current.json> <golden.json>\n\
                 \x20      bench_guard profile <a.json> <b.json>\n\
                 \x20      bench_guard explain <current.json> <golden.json>"
            );
            2
        }
    };
    exit(code);
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{"target":"fig1","workers":4,"calibration_ns":1000,"generated_at_s":1,"experiments":[{"id":"fig1","wall_ns":5000,"eps_charged":1,"phases":[{"name":"p","eps_spent":1,"wall_ns":9}]},{"id":"worm","wall_ns":7000,"eps_charged":1,"phases":[]}],"metrics":{}}"#;

    #[test]
    fn charge_path_grammar_accepts_kernel_shapes() {
        for good in [
            "root",
            "scale(x2)/root",
            "scale(x0.5)/root",
            "part[*]/scale(x1)/root",
            "part[12]/scale(x1)/root",
            "in[0]/root",
            "in[1]/scale(x3)/root",
            "part[*]/scale(x1)/part[*]/scale(x2)/root",
        ] {
            assert!(valid_charge_path(good), "rejected valid path {good:?}");
        }
        for bad in [
            "",
            "scale(x1)",         // does not terminate at a root budget
            "root/scale(x1)",    // root must be last
            "scale(1)/root",     // missing the x
            "scale(xoops)/root", // not a float
            "part[]/root",       // empty index
            "part[a]/root",      // non-digit index
            "in[*]/root",        // inputs are never wildcarded
            "notroot",           // unknown segment
            "part[*]//root",     // empty segment
        ] {
            assert!(!valid_charge_path(bad), "accepted invalid path {bad:?}");
        }
    }

    #[test]
    fn record_check_rejects_fixtures_with_malformed_paths() {
        // A schema-current run report with a path field that no longer
        // parses under the kernel grammar must be flagged stale.
        let good = format!(
            r#"{{"schema_version":{SCHEMA_VERSION},"target":"x","path":"part[*]/scale(x1)/root"}}"#
        );
        assert!(check_fixture_text("BENCH_x.json", &good).is_ok());
        let drifted = good.replace("part[*]/scale(x1)/root", "partition:3/mult-1/ROOT");
        let err = check_fixture_text("BENCH_x.json", &drifted).unwrap_err();
        assert!(err.contains("not a kernel charge path"), "got: {err}");
        assert!(err.contains("partition:3/mult-1/ROOT"), "got: {err}");
        // The committed explain golden passes end-to-end, paths included.
        let committed = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../bench-reports/GOLDEN_explain_fig1.json"
        ))
        .unwrap();
        let status = check_fixture_text("GOLDEN_explain_fig1.json", &committed).unwrap();
        assert!(status.contains("path fields in grammar"), "got: {status}");
        assert_eq!(
            extract_path_fields(&committed).len(),
            check_path_fields(&committed).unwrap()
        );
    }

    #[test]
    fn skip_summary_lines_append_without_clobbering() {
        let path = std::env::temp_dir().join("dpnet-bench-guard-summary-test.md");
        let path_s = path.to_str().unwrap();
        std::fs::remove_file(&path).ok();
        append_skip_summary(path_s, "speedup", "machine has 1 CPUs");
        append_skip_summary(path_s, "kernel-speedup", "machine has 1 CPUs, need 4");
        let summary = std::fs::read_to_string(&path).unwrap();
        assert_eq!(
            summary,
            ":warning: `speedup` gate **skipped**: machine has 1 CPUs\n\
             :warning: `kernel-speedup` gate **skipped**: machine has 1 CPUs, need 4\n"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fields_parse() {
        assert_eq!(field_u64(SAMPLE, "calibration_ns"), Some(1000));
        assert_eq!(field_u64(SAMPLE, "workers"), Some(4));
        assert_eq!(field_u64(SAMPLE, "missing"), None);
    }

    #[test]
    fn experiment_walls_skip_phase_walls() {
        let walls = experiment_walls(SAMPLE);
        assert_eq!(
            walls,
            vec![("fig1".to_string(), 5000), ("worm".to_string(), 7000)]
        );
    }

    #[test]
    fn semantics_capture_eps_and_phases_but_not_walls() {
        let sems = experiment_semantics(SAMPLE);
        assert_eq!(
            sems,
            vec![
                ExpSemantics {
                    id: "fig1".to_string(),
                    eps_charged: 1.0,
                    phases: vec![("p".to_string(), 1.0)],
                },
                ExpSemantics {
                    id: "worm".to_string(),
                    eps_charged: 1.0,
                    phases: vec![],
                },
            ]
        );
    }

    #[test]
    fn attribution_arrays_fold_across_experiments() {
        let json = r#"{"calibration_ns":100,"experiments":[
            {"id":"a","attribution":[{"name":"noisy_count","count":2,"total_ns":900,"self_ns":300},
                                     {"name":"plan/materialize","count":1,"total_ns":600,"self_ns":600}]},
            {"id":"b","attribution":[{"name":"noisy_count","count":1,"total_ns":100,"self_ns":100}]}
        ]}"#;
        let rows = attribution_totals(json);
        assert_eq!(rows.len(), 2);
        assert_eq!(
            rows["noisy_count"],
            AttrTotals {
                count: 3,
                total_ns: 1000,
                self_ns: 400
            }
        );
        assert_eq!(rows["plan/materialize"].self_ns, 600);
        assert!(attribution_totals(r#"{"experiments":[{"id":"a","attribution":[]}]}"#).is_empty());
    }

    const EXPLAIN_SAMPLE: &str = r#"{"explain":"fig1","predicted_total":3.0,"aggregations":[{"operator":"noisy_count","path":"part[*]/scale(x1)/root","calls":250,"requested_eps":2.0,"predicted_eps":1.0},{"operator":"noisy_count","path":"root","calls":250,"requested_eps":2.0,"predicted_eps":2.0}],"paths":[{"path":"part[*]/scale(x1)/root","calls":500,"predicted_eps":1.0},{"path":"root","calls":250,"predicted_eps":2.0}]}"#;

    #[test]
    fn explain_semantics_parse_structure_and_predictions() {
        let s = explain_semantics(EXPLAIN_SAMPLE, "sample").unwrap();
        assert_eq!(s.title, "fig1");
        assert_eq!(s.predicted_total, 3.0);
        assert_eq!(s.aggregations.len(), 2);
        assert_eq!(s.aggregations[0].1, "part[*]/scale(x1)/root");
        assert_eq!(s.aggregations[0].2, 250);
        assert_eq!(s.paths[1], ("root".to_string(), 250, 2.0));
        // Reports from other subcommands are named, not mis-parsed.
        let err = explain_semantics(SAMPLE, "bench.json").unwrap_err();
        assert!(err.contains("bench.json"), "{err}");
        assert!(explain_semantics("not json", "x").is_err());
    }

    #[test]
    fn explain_drift_catches_structure_and_eps_changes_only() {
        let base = explain_semantics(EXPLAIN_SAMPLE, "a").unwrap();
        assert!(explain_drift(&base, &base).is_empty());
        // ε within 1e-9 relative tolerance is not drift.
        let mut wiggled = base.clone();
        wiggled.predicted_total += 1e-12;
        wiggled.aggregations[0].4 += 1e-12;
        assert!(explain_drift(&wiggled, &base).is_empty());
        // A changed predicted ε is.
        let mut eps = base.clone();
        eps.paths[0].2 = 1.5;
        let drift = explain_drift(&eps, &base);
        assert_eq!(drift.len(), 1, "{drift:?}");
        assert!(drift[0].contains("part[*]"), "{drift:?}");
        // So are a lost aggregation site and a renamed path.
        let mut fewer = base.clone();
        fewer.aggregations.pop();
        assert!(explain_drift(&fewer, &base)
            .iter()
            .any(|d| d.contains("aggregation sites")));
        let mut renamed = base.clone();
        renamed.paths[1].0 = "scale(x2)/root".to_string();
        assert!(!explain_drift(&renamed, &base).is_empty());
    }

    #[test]
    fn fixture_check_accepts_the_current_schema_only() {
        let current = format!("{{\"schema_version\":{SCHEMA_VERSION},\"target\":\"baseline\"}}");
        assert!(check_fixture_text("BENCH_baseline.json", &current).is_ok());
        // An older version and a pre-versioned report are both stale.
        let old = "{\"schema_version\":1,\"target\":\"baseline\"}";
        let reason = check_fixture_text("BENCH_baseline.json", old).unwrap_err();
        assert!(reason.contains("schema_version 1"), "{reason}");
        let reason = check_fixture_text("BENCH_baseline.json", SAMPLE).unwrap_err();
        assert!(reason.contains("no schema_version"), "{reason}");
    }

    #[test]
    fn serve_fixtures_require_the_latency_section() {
        // Right version but no percentiles: not a serve report.
        let bare = format!("{{\"schema_version\":{SCHEMA_VERSION},\"target\":\"serve\"}}");
        let reason = check_fixture_text("BENCH_serve.json", &bare).unwrap_err();
        assert!(reason.contains("latency"), "{reason}");
        // The same text is fine for a non-serve report.
        assert!(check_fixture_text("BENCH_baseline.json", &bare).is_ok());
        let full = format!(
            "{{\"schema_version\":{SCHEMA_VERSION},\"target\":\"serve\",\
             \"experiments\":[{{\"id\":\"loadtest\",\"wall_ns\":1,\"eps_charged\":0.5,\
             \"phases\":[],\"attribution\":[],\"latency\":{{\"sessions\":4,\
             \"requests\":16,\"ok\":12,\"budget_exhausted\":4,\"invalid\":0,\
             \"p50_ns\":100,\"p95_ns\":200,\"p99_ns\":300,\"max_ns\":400}}}}],\
             \"metrics\":{{}}}}"
        );
        let status = check_fixture_text("BENCH_serve.json", &full).unwrap();
        assert!(status.contains("latency percentiles present"), "{status}");
    }

    #[test]
    fn fixture_check_round_trips_explain_fixtures_through_the_parser() {
        let status = check_fixture_text("GOLDEN_explain_fig1.json", EXPLAIN_SAMPLE).unwrap();
        assert!(status.contains("2 aggregation sites"), "{status}");
        let reason =
            check_fixture_text("GOLDEN_explain_fig1.json", "{\"explain\":\"x\"}").unwrap_err();
        assert!(reason.contains("explain report"), "{reason}");
    }

    #[test]
    fn regenerate_hints_name_the_producing_command() {
        assert!(regenerate_hint("BENCH_baseline.json").contains("bench_guard -- record"));
        let serve = regenerate_hint("BENCH_serve.json");
        assert!(serve.contains("dpnet -- loadtest"), "{serve}");
        assert!(serve.contains("--report-dir bench-reports"), "{serve}");
        let golden = regenerate_hint("GOLDEN_fig1.json");
        assert!(golden.contains("repro -- fig1"), "{golden}");
        assert!(
            golden.contains("cp bench-reports/BENCH_fig1.json"),
            "{golden}"
        );
        let explain = regenerate_hint("GOLDEN_explain_fig1.json");
        assert!(explain.contains("explain fig1 --format json"), "{explain}");
    }

    #[test]
    fn float_fields_parse_with_fractions_and_exponents() {
        let json = r#"{"eps_charged":6.000000000000003,"tiny":1e-9}"#;
        assert_eq!(field_f64(json, "eps_charged"), Some(6.000000000000003));
        assert_eq!(field_f64(json, "tiny"), Some(1e-9));
        assert_eq!(field_f64(json, "absent"), None);
    }
}
