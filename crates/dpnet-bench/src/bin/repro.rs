//! `repro` — regenerate the paper's tables and figures.
//!
//! Usage:
//!
//! ```text
//! repro all                 # every experiment, in paper order
//! repro <id> [<id> ...]     # one or more of:
//!       table1 example23 fig1 table4 itemsets fig2 worm fig3
//!       table5 fig4 fig5 table2
//! ```
//!
//! A [`MemorySink`] is installed as the process-global event sink for the
//! whole run, so every engine charge and toolkit phase is captured. After
//! the experiment output, `repro` prints a per-phase ε/latency budget
//! report and writes `bench-reports/BENCH_<target>.json` with the same
//! data in machine-readable form.

use dpnet_bench::experiments as exp;
use dpnet_bench::report::RunReport;
use dpnet_obs::{set_global_sink, MemorySink};
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

const IDS: [&str; 18] = [
    "table1",
    "example23",
    "fig1",
    "table4",
    "itemsets",
    "fig2",
    "worm",
    "fig3",
    "table5",
    "fig4",
    "fig5",
    "table2",
    "rules",
    "connections",
    "principals",
    "ablation",
    "graphdist",
    "classify",
];

fn run_one(id: &str) -> Result<String, String> {
    match id {
        "table1" => Ok(exp::table1::run(3000).1),
        "example23" => Ok(exp::example23::run(400).1),
        "fig1" => exp::fig1::run(1.0)
            .map(|(_, s)| s)
            .map_err(|e| e.to_string()),
        "table4" => Ok(exp::table4::run(10, 1.0).1),
        "itemsets" => Ok(exp::itemsets_exp::run(1.0).1),
        "fig2" => Ok(exp::fig2::run().1),
        "worm" => Ok(exp::worm_exp::run().1),
        "fig3" => Ok(exp::fig3::run().1),
        "table5" => Ok(exp::table5::run().1),
        "fig4" => Ok(exp::fig4::run().1),
        "fig5" => Ok(exp::fig5::run(10).1),
        "table2" => Ok(exp::table2::run().1),
        "rules" => Ok(exp::rules_exp::run().1),
        "connections" => Ok(exp::connections_exp::run().1),
        "principals" => Ok(exp::principals::run(400).1),
        "ablation" => Ok(exp::ablation::run().1),
        "graphdist" => Ok(exp::graphdist_exp::run().1),
        "classify" => Ok(exp::classify_exp::run().1),
        other => Err(format!("unknown experiment id '{other}'")),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" {
        eprintln!("usage: repro all | <id> [<id> ...]\nids: {}", IDS.join(" "));
        std::process::exit(2);
    }
    let all = args.iter().any(|a| a == "all");
    let ids: Vec<&str> = if all {
        IDS.to_vec()
    } else {
        args.iter().map(|s| s.as_str()).collect()
    };
    // Observe the whole run: toolkit phases and engine charges land here.
    let sink = Arc::new(MemorySink::new());
    set_global_sink(Some(sink.clone()));
    let target = if all {
        "all".to_string()
    } else {
        ids.join("-")
    };
    let mut report = RunReport::new(&target);

    let mut failed = false;
    for id in ids {
        sink.clear();
        let start = Instant::now();
        match run_one(id) {
            Ok(text) => {
                let wall = start.elapsed();
                println!("{text}");
                println!("[{id} completed in {wall:.1?}]");
                report.record(id, wall.as_nanos() as u64, &sink.drain());
            }
            Err(e) => {
                eprintln!("experiment {id} failed: {e}");
                failed = true;
            }
        }
    }
    set_global_sink(None);

    println!("{}", report.render_budget_report());
    match report.write_json(Path::new("bench-reports")) {
        Ok(path) => println!("run report: {}", path.display()),
        Err(e) => eprintln!("could not write run report: {e}"),
    }
    if failed {
        std::process::exit(1);
    }
}
