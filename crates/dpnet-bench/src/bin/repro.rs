//! `repro` — regenerate the paper's tables and figures.
//!
//! Usage:
//!
//! ```text
//! repro all                 # every experiment, in paper order
//! repro <id> [<id> ...]     # one or more of:
//!       table1 example23 fig1 table4 itemsets fig2 worm fig3
//!       table5 fig4 fig5 table2
//! repro --workers N <id>…   # run pool-aware experiments on N workers
//! ```
//!
//! With `--workers N` (N ≥ 1), the experiments that have worker-pool
//! variants (`fig1`, `itemsets`, `worm`) run on a shared [`pinq::ExecPool`];
//! the rest are unaffected. Output is deterministic: for a fixed seed, any
//! two worker counts produce identical results. The report target gains a
//! `-wN` suffix when N > 1, so `BENCH_fig1.json` and `BENCH_fig1-w4.json`
//! can be compared side by side.
//!
//! A [`MemorySink`] is installed as the process-global event sink for the
//! whole run, so every engine charge and toolkit phase is captured. After
//! the experiment output, `repro` prints a per-phase ε/latency budget
//! report and writes `bench-reports/BENCH_<target>.json` with the same
//! data in machine-readable form.

use dpnet_bench::experiments as exp;
use dpnet_bench::report::RunReport;
use dpnet_obs::{set_global_sink, MemorySink};
use pinq::ExecPool;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

const IDS: [&str; 18] = [
    "table1",
    "example23",
    "fig1",
    "table4",
    "itemsets",
    "fig2",
    "worm",
    "fig3",
    "table5",
    "fig4",
    "fig5",
    "table2",
    "rules",
    "connections",
    "principals",
    "ablation",
    "graphdist",
    "classify",
];

fn run_one(id: &str, pool: &ExecPool) -> Result<String, String> {
    match id {
        "table1" => Ok(exp::table1::run(3000).1),
        "example23" => Ok(exp::example23::run(400).1),
        "fig1" => exp::fig1::run_with(1.0, pool)
            .map(|(_, s)| s)
            .map_err(|e| e.to_string()),
        "table4" => Ok(exp::table4::run(10, 1.0).1),
        "itemsets" => Ok(exp::itemsets_exp::run_with(1.0, pool).1),
        "fig2" => Ok(exp::fig2::run().1),
        "worm" => Ok(exp::worm_exp::run_with(pool).1),
        "fig3" => Ok(exp::fig3::run().1),
        "table5" => Ok(exp::table5::run().1),
        "fig4" => Ok(exp::fig4::run().1),
        "fig5" => Ok(exp::fig5::run(10).1),
        "table2" => Ok(exp::table2::run().1),
        "rules" => Ok(exp::rules_exp::run().1),
        "connections" => Ok(exp::connections_exp::run().1),
        "principals" => Ok(exp::principals::run(400).1),
        "ablation" => Ok(exp::ablation::run().1),
        "graphdist" => Ok(exp::graphdist_exp::run().1),
        "classify" => Ok(exp::classify_exp::run().1),
        other => Err(format!("unknown experiment id '{other}'")),
    }
}

/// Split `--workers N` / `--workers=N` out of the raw argument list,
/// returning the worker count and the remaining (non-flag) arguments.
fn parse_workers(raw: Vec<String>) -> Result<(usize, Vec<String>), String> {
    let mut workers = 1usize;
    let mut rest = Vec::new();
    let mut it = raw.into_iter();
    while let Some(arg) = it.next() {
        if arg == "--workers" {
            let val = it.next().ok_or("--workers requires a value")?;
            workers = val
                .parse()
                .map_err(|_| format!("invalid --workers value '{val}'"))?;
        } else if let Some(val) = arg.strip_prefix("--workers=") {
            workers = val
                .parse()
                .map_err(|_| format!("invalid --workers value '{val}'"))?;
        } else {
            rest.push(arg);
        }
    }
    Ok((workers, rest))
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let (workers, args) = match parse_workers(raw) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" {
        eprintln!(
            "usage: repro [--workers N] all | <id> [<id> ...]\nids: {}",
            IDS.join(" ")
        );
        std::process::exit(2);
    }
    let pool = match ExecPool::new(workers) {
        Ok(pool) => pool,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let all = args.iter().any(|a| a == "all");
    let ids: Vec<&str> = if all {
        IDS.to_vec()
    } else {
        args.iter().map(|s| s.as_str()).collect()
    };
    // Observe the whole run: toolkit phases and engine charges land here.
    let sink = Arc::new(MemorySink::new());
    set_global_sink(Some(sink.clone()));
    let mut target = if all {
        "all".to_string()
    } else {
        ids.join("-")
    };
    if workers > 1 {
        target.push_str(&format!("-w{workers}"));
    }
    let mut report = RunReport::new(&target);
    report.set_workers(workers);

    let mut failed = false;
    for id in ids {
        sink.clear();
        let start = Instant::now();
        match run_one(id, &pool) {
            Ok(text) => {
                let wall = start.elapsed();
                println!("{text}");
                println!("[{id} completed in {wall:.1?}]");
                report.record(id, wall.as_nanos() as u64, &sink.drain());
            }
            Err(e) => {
                eprintln!("experiment {id} failed: {e}");
                failed = true;
            }
        }
    }
    set_global_sink(None);

    println!("{}", report.render_budget_report());
    match report.write_json(Path::new("bench-reports")) {
        Ok(path) => println!("run report: {}", path.display()),
        Err(e) => eprintln!("could not write run report: {e}"),
    }
    if failed {
        std::process::exit(1);
    }
}
