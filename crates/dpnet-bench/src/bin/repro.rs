//! `repro` — regenerate the paper's tables and figures.
//!
//! Usage:
//!
//! ```text
//! repro all                 # every experiment, in paper order
//! repro <id> [<id> ...]     # one or more of:
//!       table1 example23 fig1 table4 itemsets fig2 worm fig3
//!       table5 fig4 fig5 table2
//! repro --workers N <id>…   # run pool-aware experiments on N workers
//! repro --profile <id>…     # record spans; adds per-operator attribution
//! repro --explain <id>…     # also write bench-reports/EXPLAIN_<id>.txt
//! ```
//!
//! With `--workers N` (N ≥ 1), the experiments that have worker-pool
//! variants (`fig1`, `itemsets`, `worm`) run on a shared [`pinq::ExecPool`];
//! the rest are unaffected. Output is deterministic: for a fixed seed, any
//! two worker counts produce identical results. The report target gains a
//! `-wN` suffix when N > 1, so `BENCH_fig1.json` and `BENCH_fig1-w4.json`
//! can be compared side by side.
//!
//! A [`MemorySink`] is installed as the process-global event sink for the
//! whole run, so every engine charge and toolkit phase is captured. After
//! the experiment output, `repro` prints a per-phase ε/latency budget
//! report and writes `bench-reports/BENCH_<target>.json` with the same
//! data in machine-readable form.
//!
//! With `--profile`, a [`dpnet_obs::TraceRecorder`] is installed too: every
//! operator span is captured, the report gains per-operator time
//! attribution, and an attribution table is printed after the budget
//! report. (For single-experiment profiled runs with a Chrome trace, use
//! `dpnet profile` instead.)
//!
//! With `--explain`, a [`pinq::ExplainRecorder`] is installed as well:
//! every aggregation's charge-path predictions are folded per experiment
//! and written to `bench-reports/EXPLAIN_<id>.txt` — the committed
//! `EXPLAIN_fig1.txt` / `EXPLAIN_worm.txt` artifacts come from this flag.
//! (For a single experiment with the measured overlay or the DOT/JSON
//! forms, use `dpnet explain` instead.)

use dpnet_bench::profile::{run_experiment, IDS};
use dpnet_bench::report::RunReport;
use dpnet_obs::{install_recorder, set_global_sink, uninstall_recorder, MemorySink, TraceRecorder};
use pinq::{install_explain_recorder, uninstall_explain_recorder, ExecPool, ExplainRecorder};
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

/// Split `--workers N` / `--workers=N` / `--profile` / `--explain` out of
/// the raw argument list, returning the worker count, the two flags, and
/// the remaining (non-flag) arguments.
fn parse_flags(raw: Vec<String>) -> Result<(usize, bool, bool, Vec<String>), String> {
    let mut workers = 1usize;
    let mut profile = false;
    let mut explain = false;
    let mut rest = Vec::new();
    let mut it = raw.into_iter();
    while let Some(arg) = it.next() {
        if arg == "--workers" {
            let val = it.next().ok_or("--workers requires a value")?;
            workers = val
                .parse()
                .map_err(|_| format!("invalid --workers value '{val}'"))?;
        } else if let Some(val) = arg.strip_prefix("--workers=") {
            workers = val
                .parse()
                .map_err(|_| format!("invalid --workers value '{val}'"))?;
        } else if arg == "--profile" {
            profile = true;
        } else if arg == "--explain" {
            explain = true;
        } else {
            rest.push(arg);
        }
    }
    Ok((workers, profile, explain, rest))
}

/// Write one experiment's explain tree to `bench-reports/EXPLAIN_<id>.txt`.
fn write_explain(id: &str, recorder: &ExplainRecorder) -> Result<std::path::PathBuf, String> {
    let mut report = recorder.report();
    report.title = id.to_string();
    let dir = Path::new("bench-reports");
    std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    let path = dir.join(format!("EXPLAIN_{id}.txt"));
    std::fs::write(&path, report.render_text(None))
        .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    Ok(path)
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let (workers, profile, explain, args) = match parse_flags(raw) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" {
        eprintln!(
            "usage: repro [--workers N] [--profile] [--explain] all | <id> [<id> ...]\nids: {}",
            IDS.join(" ")
        );
        std::process::exit(2);
    }
    let pool = match ExecPool::new(workers) {
        Ok(pool) => pool,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let all = args.iter().any(|a| a == "all");
    let ids: Vec<&str> = if all {
        IDS.to_vec()
    } else {
        args.iter().map(|s| s.as_str()).collect()
    };
    // Observe the whole run: toolkit phases and engine charges land here.
    let sink = Arc::new(MemorySink::new());
    set_global_sink(Some(sink.clone()));
    let recorder = profile.then(|| {
        let rec = Arc::new(TraceRecorder::new());
        install_recorder(rec.clone());
        rec
    });
    let explainer = explain.then(|| {
        let rec = Arc::new(ExplainRecorder::new());
        install_explain_recorder(rec.clone());
        rec
    });
    let mut target = if all {
        "all".to_string()
    } else {
        ids.join("-")
    };
    if workers > 1 {
        target.push_str(&format!("-w{workers}"));
    }
    let mut report = RunReport::new(&target);
    report.set_workers(workers);

    let mut failed = false;
    for id in ids {
        sink.clear();
        if let Some(rec) = &recorder {
            rec.clear();
        }
        if let Some(rec) = &explainer {
            rec.clear();
        }
        let start = Instant::now();
        match run_experiment(id, &pool) {
            Ok(text) => {
                let wall = start.elapsed();
                println!("{text}");
                println!("[{id} completed in {wall:.1?}]");
                let spans = recorder.as_ref().map(|r| r.take()).unwrap_or_default();
                report.record_with_spans(id, wall.as_nanos() as u64, &sink.drain(), &spans);
                if let Some(rec) = &explainer {
                    match write_explain(id, rec) {
                        Ok(path) => println!("explain report: {}", path.display()),
                        Err(e) => {
                            eprintln!("could not write explain report for {id}: {e}");
                            failed = true;
                        }
                    }
                }
            }
            Err(e) => {
                eprintln!("experiment {id} failed: {e}");
                failed = true;
            }
        }
    }
    if recorder.is_some() {
        uninstall_recorder();
    }
    if explainer.is_some() {
        uninstall_explain_recorder();
    }
    set_global_sink(None);

    println!("{}", report.render_budget_report());
    let attribution = report.render_attribution_report();
    if !attribution.is_empty() {
        println!("{attribution}");
    }
    match report.write_json(Path::new("bench-reports")) {
        Ok(path) => println!("run report: {}", path.display()),
        Err(e) => eprintln!("could not write run report: {e}"),
    }
    if failed {
        std::process::exit(1);
    }
}
