//! The analysis registry: named, ε-parameterized analyses over a protected
//! [`Queryable<Packet>`].
//!
//! The paper's mediation model (§7) has analysts submit *analyses*, not
//! raw queries: the owner exposes a fixed catalogue and the analyst picks
//! one plus a privacy level. This module is that catalogue, extracted from
//! the experiment drivers so one definition serves three frontends:
//!
//! * `dpnet analyze` (CLI, owner-side one-shot runs),
//! * the `dpnet-serve` daemon (remote analysts invoking analyses by name
//!   with per-request ε),
//! * the bench/loadtest harness.
//!
//! Every runner takes the protected view and an ε, spends through whatever
//! budgets that view charges (the kernel enforces them), and returns both
//! machine-readable `(name, value)` pairs — everything in them is a
//! DP-released number, safe to put on the wire — and a rendered text
//! report.

use crate::experiments::{fig1, itemsets_exp};
use dpnet_analyses::example_s23::heavy_hosts_to_port;
use dpnet_analyses::flow_stats::{loss_rate_cdf, rtt_cdf};
use dpnet_analyses::packet_dist::{packet_length_cdf, port_cdf, CdfResult};
use dpnet_analyses::worm::{worm_fingerprints, WormConfig};
use dpnet_toolkit::cdf::cdf_partition;
use dpnet_toolkit::itemsets::{frequent_itemsets, ItemsetConfig};
use dpnet_trace::gen::hotspot::COMMON_PORTS;
use dpnet_trace::Packet;
use pinq::{Queryable, Result};
use std::fmt::Write as _;

/// The result of one registry analysis: released values plus a rendered
/// report. Every number is DP-released (it went through a mechanism), so
/// the whole struct is safe to serialize to an analyst.
#[derive(Debug, Clone)]
pub struct AnalysisOutput {
    /// Named released values, in report order.
    pub values: Vec<(String, f64)>,
    /// Human-readable report.
    pub text: String,
}

/// One named analysis: a parameterized runner over a protected view.
pub struct Analysis {
    /// Stable invocation name (`count`, `retx-cdf`, …).
    pub name: &'static str,
    /// One-line description shown in catalogues.
    pub summary: &'static str,
    /// What the ε parameter means for this analysis (per-aggregation,
    /// per-level, total, …) — the analyst's cost model.
    pub eps_semantics: &'static str,
    /// Suggested ε for a quick run.
    pub default_eps: f64,
    runner: fn(&Queryable<Packet>, f64) -> Result<AnalysisOutput>,
}

impl Analysis {
    /// Run the analysis at accuracy `eps` over `packets`, charging the
    /// view's budgets.
    pub fn run(&self, packets: &Queryable<Packet>, eps: f64) -> Result<AnalysisOutput> {
        (self.runner)(packets, eps)
    }
}

impl std::fmt::Debug for Analysis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Analysis")
            .field("name", &self.name)
            .field("summary", &self.summary)
            .finish_non_exhaustive()
    }
}

/// The catalogue, in presentation order.
pub const REGISTRY: &[Analysis] = &[
    Analysis {
        name: "count",
        summary: "noisy packet count",
        eps_semantics: "total",
        default_eps: 0.1,
        runner: run_count,
    },
    Analysis {
        name: "heavy-hosts",
        summary: "hosts sending >1 KB to port 80 (paper §2.3 example)",
        eps_semantics: "total",
        default_eps: 0.1,
        runner: run_heavy_hosts,
    },
    Analysis {
        name: "lengths",
        summary: "packet-length CDF, 50-byte buckets",
        eps_semantics: "total (parallel composition)",
        default_eps: 0.1,
        runner: run_lengths,
    },
    Analysis {
        name: "ports",
        summary: "destination-port CDF, 1024-port buckets",
        eps_semantics: "total (parallel composition)",
        default_eps: 0.1,
        runner: run_ports,
    },
    Analysis {
        name: "rtt",
        summary: "handshake RTT CDF, 20 ms buckets",
        eps_semantics: "total; the self-join doubles stability, so 2ε",
        default_eps: 0.1,
        runner: run_rtt,
    },
    Analysis {
        name: "loss",
        summary: "flow loss-rate CDF, 5% buckets",
        eps_semantics: "total; GroupBy doubles stability, so 2ε",
        default_eps: 0.1,
        runner: run_loss,
    },
    Analysis {
        name: "retx-cdf",
        summary: "retransmission-delay CDF via Partition (fig1-shaped)",
        eps_semantics: "total (parallel composition over 250 buckets)",
        default_eps: 0.1,
        runner: run_retx_cdf,
    },
    Analysis {
        name: "itemsets",
        summary: "frequent co-used port pairs (paper §4.3-shaped)",
        eps_semantics: "per candidate level",
        default_eps: 1.0,
        runner: run_itemsets,
    },
    Analysis {
        name: "worm",
        summary: "worm fingerprinting: high-dispersion payloads (§5.1.2-shaped)",
        eps_semantics: "per aggregation (8ε search + 2ε dispersion)",
        default_eps: 1.0,
        runner: run_worm,
    },
];

/// Look an analysis up by name.
pub fn find(name: &str) -> Option<&'static Analysis> {
    REGISTRY.iter().find(|a| a.name == name)
}

/// All registered analysis names, in presentation order.
pub fn names() -> Vec<&'static str> {
    REGISTRY.iter().map(|a| a.name).collect()
}

/// The catalogue as a rendered listing (for `--help`-ish surfaces and the
/// server's `analyses` op).
pub fn render_catalogue() -> String {
    let mut out = String::new();
    for a in REGISTRY {
        let _ = writeln!(
            out,
            "  {:<12} {}  [eps: {}; default {}]",
            a.name, a.summary, a.eps_semantics, a.default_eps
        );
    }
    out
}

fn run_count(q: &Queryable<Packet>, eps: f64) -> Result<AnalysisOutput> {
    let c = q.noisy_count(eps)?;
    Ok(AnalysisOutput {
        values: vec![("count".to_string(), c)],
        text: format!("noisy packet count: {c:.1}\n"),
    })
}

fn run_heavy_hosts(q: &Queryable<Packet>, eps: f64) -> Result<AnalysisOutput> {
    let c = heavy_hosts_to_port(q, 80, 1024, eps)?;
    Ok(AnalysisOutput {
        values: vec![("heavy_hosts".to_string(), c)],
        text: format!("hosts sending >1 KB to port 80 ≈ {c:.1}\n"),
    })
}

/// Downsample a CDF into `(≤edge, value)` pairs every `step` buckets —
/// the report shape all CDF analyses share.
fn cdf_output(
    cdf: &CdfResult,
    step: usize,
    title: &str,
    label: impl Fn(u64) -> String,
) -> AnalysisOutput {
    let mut values = Vec::new();
    let mut text = format!("{title}\n");
    for (edge, v) in cdf.bucket_edges.iter().zip(&cdf.cdf).step_by(step) {
        values.push((format!("le_{edge}"), *v));
        let _ = writeln!(text, "  {:>8}: {v:>12.1}", label(*edge));
    }
    AnalysisOutput { values, text }
}

fn run_lengths(q: &Queryable<Packet>, eps: f64) -> Result<AnalysisOutput> {
    let cdf = packet_length_cdf(q, 1500, 50, eps)?;
    Ok(cdf_output(
        &cdf,
        5,
        "packet-length CDF (50-byte buckets):",
        |e| format!("≤{e} B"),
    ))
}

fn run_ports(q: &Queryable<Packet>, eps: f64) -> Result<AnalysisOutput> {
    let cdf = port_cdf(q, 1024, eps)?;
    Ok(cdf_output(
        &cdf,
        8,
        "destination-port CDF (1024-port buckets):",
        |e| format!("≤{e}"),
    ))
}

fn run_rtt(q: &Queryable<Packet>, eps: f64) -> Result<AnalysisOutput> {
    let cdf = rtt_cdf(q, 600, 20, eps)?;
    Ok(cdf_output(
        &cdf,
        5,
        "handshake RTT CDF (20 ms buckets; join costs 2ε):",
        |e| format!("≤{e} ms"),
    ))
}

fn run_loss(q: &Queryable<Packet>, eps: f64) -> Result<AnalysisOutput> {
    let cdf = loss_rate_cdf(q, 20, 10, eps)?;
    Ok(cdf_output(
        &cdf,
        2,
        "flow loss-rate CDF (5% buckets; GroupBy costs 2ε):",
        |e| format!("≤{}%", e * 5),
    ))
}

fn run_retx_cdf(q: &Queryable<Packet>, eps: f64) -> Result<AnalysisOutput> {
    let delays = fig1::private_retx_delays(q);
    let cdf = cdf_partition(&delays, fig1::BUCKETS, eps)?;
    let mut values = Vec::new();
    let mut text = format!(
        "retransmission-delay CDF via Partition ({} 1 ms buckets):\n",
        fig1::BUCKETS
    );
    for (ms, v) in cdf.iter().enumerate().step_by(25) {
        values.push((format!("le_{ms}_ms"), *v));
        let _ = writeln!(text, "  ≤{ms:>3} ms: {v:>12.1}");
    }
    Ok(AnalysisOutput { values, text })
}

fn run_itemsets(q: &Queryable<Packet>, eps: f64) -> Result<AnalysisOutput> {
    let records = itemsets_exp::private_host_port_sets(q);
    let universe: Vec<u32> = COMMON_PORTS.iter().map(|&p| p as u32).collect();
    let found = frequent_itemsets(
        &records,
        &ItemsetConfig {
            universe,
            max_size: 2,
            eps_per_level: eps,
            threshold: 8.0,
        },
    )?;
    let mut pairs: Vec<(Vec<u16>, f64)> = found
        .iter()
        .filter(|m| m.size == 2)
        .map(|m| {
            let mut ports: Vec<u16> = m.items.iter().map(|&i| i as u16).collect();
            ports.sort_unstable();
            (ports, m.noisy_count)
        })
        .collect();
    pairs.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite counts"));
    let mut values = Vec::new();
    let mut text = String::from("frequent co-used port pairs (noisy support):\n");
    for (ports, support) in pairs.iter().take(8) {
        let name = format!("({},{})", ports[0], ports[1]);
        let _ = writeln!(text, "  {name:>12}: {support:>10.1}");
        values.push((name, *support));
    }
    Ok(AnalysisOutput { values, text })
}

fn run_worm(q: &Queryable<Packet>, eps: f64) -> Result<AnalysisOutput> {
    let cfg = WormConfig {
        eps,
        presence_threshold: 50.0,
        ..WormConfig::default()
    };
    let found = worm_fingerprints(q, &cfg)?;
    Ok(AnalysisOutput {
        values: vec![("signatures".to_string(), found.len() as f64)],
        text: format!(
            "worm fingerprinting: {} high-dispersion payload signatures found\n",
            found.len()
        ),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinq::{Accountant, NoiseSource};

    fn protected() -> (Queryable<Packet>, Accountant) {
        let trace = crate::datasets::hotspot_tenth();
        let budget = Accountant::new(1e9);
        let noise = NoiseSource::seeded(0xcafe);
        let q = Queryable::new(trace.packets.clone(), &budget, &noise);
        (q, budget)
    }

    #[test]
    fn every_registered_analysis_runs_and_spends() {
        let skip_slow = &["worm", "itemsets", "retx-cdf"];
        for a in REGISTRY {
            if skip_slow.contains(&a.name) {
                continue; // exercised by their own experiment suites
            }
            let (q, budget) = protected();
            let out = a
                .run(&q, 0.5)
                .unwrap_or_else(|e| panic!("{}: {e:?}", a.name));
            assert!(!out.values.is_empty(), "{} released nothing", a.name);
            assert!(!out.text.is_empty(), "{} rendered nothing", a.name);
            assert!(budget.spent() > 0.0, "{} spent nothing", a.name);
            for (k, v) in &out.values {
                assert!(v.is_finite(), "{}: {k} not finite", a.name);
            }
        }
    }

    #[test]
    fn registry_lookup_is_by_stable_name() {
        assert!(find("count").is_some());
        assert!(find("retx-cdf").is_some());
        assert!(find("no-such-analysis").is_none());
        assert_eq!(names().len(), REGISTRY.len());
        assert!(render_catalogue().contains("retx-cdf"));
    }

    #[test]
    fn count_is_deterministic_at_a_fixed_seed() {
        let (q1, _b1) = protected();
        let (q2, _b2) = protected();
        let a = find("count").unwrap();
        let x = a.run(&q1, 0.5).unwrap();
        let y = a.run(&q2, 0.5).unwrap();
        assert_eq!(x.values, y.values);
    }
}
