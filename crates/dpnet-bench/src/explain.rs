//! EXPLAIN / EXPLAIN ANALYZE — plan and privacy-cost introspection for the
//! paper experiments, behind `dpnet explain` and `repro --explain`.
//!
//! [`run_explained`] runs one experiment with a [`pinq::ExplainRecorder`]
//! installed: every successful aggregation charge is folded into an
//! [`ExplainReport`] — per (operator, charge-path) call counts, the ε the
//! analyst requested, and the ε *predicted* to reach each budget root
//! (after max-of-parts absorption). The prediction is the traced per-root
//! delta captured under the ledger locks, so it equals what the
//! accountants actually applied — the CI golden diff and the
//! `explain_integration` test hold it to `Accountant::path_totals`.
//!
//! With `analyze: true`, the run also installs the span profiler and a
//! [`MemorySink`], and folds measured reality into a [`pinq::Overlay`]:
//! net ε per charge path (from the accountant's charge events), span
//! self-time per operator, and plan-materialization counts. The optional
//! Chrome trace gains one `"ph":"C"` counter track per budget — the ε
//! burn-down, rendered by Perfetto as a stepped chart next to the worker
//! lanes.

use crate::profile::run_experiment;
use dpnet_obs::{
    attribution, install_recorder, set_global_sink, uninstall_recorder, CompletedSpan,
    CounterSample, Event, MemorySink, TraceRecorder,
};
use pinq::explain::normalize_path;
use pinq::{
    install_explain_recorder, uninstall_explain_recorder, ExecPool, ExplainRecorder, ExplainReport,
    Overlay,
};
use std::io::BufWriter;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// How an explain report should be rendered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExplainFormat {
    /// Charge-path tree plus one line per aggregation site (the default).
    #[default]
    Tree,
    /// Graphviz DOT of the charge-path DAG.
    Dot,
    /// Machine-readable JSON (what `bench_guard explain` diffs).
    Json,
}

impl ExplainFormat {
    /// Parse a `--format` value.
    pub fn parse(raw: &str) -> Result<ExplainFormat, String> {
        match raw {
            "tree" => Ok(ExplainFormat::Tree),
            "dot" => Ok(ExplainFormat::Dot),
            "json" => Ok(ExplainFormat::Json),
            other => Err(format!(
                "unknown explain format '{other}' (expected tree, dot, or json)"
            )),
        }
    }
}

/// What [`run_explained`] should do.
pub struct ExplainConfig {
    /// Experiment id (one of [`crate::profile::IDS`]).
    pub experiment: String,
    /// Worker count for the shared [`ExecPool`]. The predicted ε totals
    /// are worker-count-independent; keep the default 1 for golden runs.
    pub workers: usize,
    /// EXPLAIN ANALYZE: also profile the run and overlay measured reality.
    pub analyze: bool,
    /// With `analyze`, where to write the Chrome trace (spans plus the
    /// ε burn-down counter tracks).
    pub trace_out: Option<PathBuf>,
}

/// Everything one explained run produced.
pub struct ExplainOutcome {
    /// Folded predictions: aggregation sites and charge paths.
    pub report: ExplainReport,
    /// Measured reality, when `analyze` was requested.
    pub overlay: Option<Overlay>,
    /// The experiment's own printable output.
    pub output: String,
    /// Path of the written Chrome trace, when one was requested.
    pub trace_path: Option<PathBuf>,
}

impl ExplainOutcome {
    /// Render the report (with the overlay, when the run was analyzed).
    pub fn render(&self, format: ExplainFormat) -> String {
        let overlay = self.overlay.as_ref();
        match format {
            ExplainFormat::Tree => self.report.render_text(overlay),
            ExplainFormat::Dot => self.report.render_dot(overlay),
            ExplainFormat::Json => self.report.to_json(overlay),
        }
    }
}

/// Run `cfg.experiment` with the explain recorder installed and fold the
/// traced charges into a report; with `cfg.analyze`, profile the same run
/// and attach the measured overlay.
pub fn run_explained(cfg: &ExplainConfig) -> Result<ExplainOutcome, String> {
    let pool = ExecPool::new(cfg.workers).map_err(|e| e.to_string())?;
    let rec = Arc::new(ExplainRecorder::new());
    install_explain_recorder(rec.clone());
    let observers = cfg.analyze.then(|| {
        let sink = Arc::new(MemorySink::new());
        set_global_sink(Some(sink.clone()));
        let tracer = Arc::new(TraceRecorder::new());
        install_recorder(tracer.clone());
        (sink, tracer)
    });

    let start = Instant::now();
    let result = run_experiment(&cfg.experiment, &pool);
    let wall_ns = (start.elapsed().as_nanos() as u64).max(1);

    if observers.is_some() {
        uninstall_recorder();
        set_global_sink(None);
    }
    uninstall_explain_recorder();
    let output = result?;

    let mut report = rec.report();
    report.title = cfg.experiment.clone();

    let mut overlay = None;
    let mut trace_path = None;
    if let Some((sink, tracer)) = observers {
        let events = sink.drain();
        let spans = tracer.take();
        let (folded, counters) = fold_overlay(&events, &spans, wall_ns);
        if let Some(path) = &cfg.trace_out {
            write_analyze_trace(path, &spans, &tracer, &counters)?;
            trace_path = Some(path.clone());
        }
        overlay = Some(folded);
    }
    Ok(ExplainOutcome {
        report,
        overlay,
        output,
        trace_path,
    })
}

/// Fold a profiled run's events and spans into the measured overlay, plus
/// the ε burn-down counter samples (one per accountant charge, valued at
/// the budget's cumulative spend after that charge).
pub fn fold_overlay(
    events: &[Event],
    spans: &[CompletedSpan],
    wall_ns: u64,
) -> (Overlay, Vec<CounterSample>) {
    let mut overlay = Overlay {
        wall_ns,
        ..Overlay::default()
    };
    let mut counters = Vec::new();
    for event in events {
        match event {
            Event::Charge(c) => {
                let norm = normalize_path(&c.path);
                *overlay.measured_paths.entry(norm.clone()).or_default() += c.epsilon;
                *overlay
                    .measured_aggs
                    .entry((c.operator.to_string(), norm))
                    .or_default() += c.epsilon;
                counters.push(CounterSample {
                    name: format!("eps spent ({})", c.label.as_deref().unwrap_or("budget")),
                    series: "eps",
                    at_ns: c.at_ns,
                    value: c.spent_after,
                });
            }
            Event::Plan(p) => {
                overlay.materializations += 1;
                overlay.max_fused_stages = overlay.max_fused_stages.max(p.fused_stages);
            }
            _ => {}
        }
    }
    for row in attribution(spans) {
        *overlay.self_ns.entry(row.name).or_default() += row.self_ns;
    }
    (overlay, counters)
}

fn write_analyze_trace(
    path: &Path,
    spans: &[CompletedSpan],
    tracer: &TraceRecorder,
    counters: &[CounterSample],
) -> Result<(), String> {
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    }
    let file = std::fs::File::create(path)
        .map_err(|e| format!("cannot create {}: {e}", path.display()))?;
    dpnet_obs::write_chrome_trace_with_counters(
        BufWriter::new(file),
        spans,
        &tracer.track_names(),
        counters,
    )
    .map_err(|e| format!("cannot write {}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_parse_accepts_the_three_names_only() {
        assert_eq!(ExplainFormat::parse("tree"), Ok(ExplainFormat::Tree));
        assert_eq!(ExplainFormat::parse("dot"), Ok(ExplainFormat::Dot));
        assert_eq!(ExplainFormat::parse("json"), Ok(ExplainFormat::Json));
        assert!(ExplainFormat::parse("yaml").is_err());
    }

    #[test]
    fn static_explain_reports_aggregations_without_an_overlay() {
        let _g = crate::test_global_guard();
        let cfg = ExplainConfig {
            experiment: "example23".to_string(),
            workers: 1,
            analyze: false,
            trace_out: None,
        };
        let out = run_explained(&cfg).expect("explained run");
        assert!(out.overlay.is_none());
        assert!(out.trace_path.is_none());
        assert_eq!(out.report.title, "example23");
        assert!(!out.output.is_empty());
        assert!(
            !out.report.aggregations.is_empty(),
            "example23 aggregates, so the recorder must see charges"
        );
        assert!(out.report.predicted_total() > 0.0);
        // All three renderings carry the experiment id.
        for format in [ExplainFormat::Tree, ExplainFormat::Dot, ExplainFormat::Json] {
            assert!(out.render(format).contains("example23"));
        }
    }

    #[test]
    fn analyze_attaches_an_overlay_and_writes_eps_counters() {
        let _g = crate::test_global_guard();
        let dir = std::env::temp_dir().join("dpnet-explain-test");
        let trace = dir.join("analyze-trace.json");
        let cfg = ExplainConfig {
            experiment: "example23".to_string(),
            workers: 1,
            analyze: true,
            trace_out: Some(trace.clone()),
        };
        let out = run_explained(&cfg).expect("analyzed run");
        let overlay = out.overlay.as_ref().expect("analyze builds an overlay");
        assert!(overlay.wall_ns > 0);
        assert!(
            !overlay.measured_paths.is_empty(),
            "charges must be observed"
        );
        assert!(!overlay.self_ns.is_empty(), "spans must be observed");
        let json = std::fs::read_to_string(out.trace_path.as_ref().unwrap()).unwrap();
        assert!(json.contains("\"ph\":\"C\""), "eps counters in {json}");
        assert!(json.contains("eps spent ("));
        assert!(json.contains("\"ph\":\"X\""), "spans in the same trace");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn overlay_folds_charges_plans_and_span_self_time() {
        use dpnet_obs::{ChargeEvent, PlanEvent};
        use std::sync::Arc as A;
        let events = vec![
            Event::Charge(ChargeEvent {
                operator: A::from("noisy_count"),
                path: A::from("part[0]/scale(x1)/root"),
                label: Some(A::from("cdf")),
                epsilon: 0.2,
                spent_after: 0.2,
                sequence: 1,
                at_ns: 10,
            }),
            Event::Charge(ChargeEvent {
                operator: A::from("noisy_count"),
                path: A::from("part[4]/scale(x1)/root"),
                label: Some(A::from("cdf")),
                epsilon: 0.1,
                spent_after: 0.3,
                sequence: 2,
                at_ns: 20,
            }),
            Event::Plan(PlanEvent {
                materialization: 1,
                fused_stages: 3,
                mode: "sequential",
                workers: 1,
                wall_ns: 5,
                at_ns: 15,
                #[cfg(feature = "trusted-owner")]
                source_records: 0,
                #[cfg(feature = "trusted-owner")]
                output_records: 0,
            }),
        ];
        let spans = vec![CompletedSpan {
            id: 1,
            parent: None,
            name: "noisy_count",
            detail: None,
            track: 1,
            start_ns: 0,
            dur_ns: 100,
            child_ns: 40,
            #[cfg(feature = "trusted-owner")]
            records: 0,
        }];
        let (overlay, counters) = fold_overlay(&events, &spans, 777);
        assert_eq!(overlay.wall_ns, 777);
        // Sibling parts fold into one normalized path.
        assert_eq!(overlay.measured_paths.len(), 1);
        let eps = overlay.measured_paths["part[*]/scale(x1)/root"];
        assert!((eps - 0.3).abs() < 1e-12);
        let key = (
            "noisy_count".to_string(),
            "part[*]/scale(x1)/root".to_string(),
        );
        assert!((overlay.measured_aggs[&key] - 0.3).abs() < 1e-12);
        assert_eq!(overlay.materializations, 1);
        assert_eq!(overlay.max_fused_stages, 3);
        assert_eq!(overlay.self_ns["noisy_count"], 60);
        // One burn-down sample per charge, valued at the running total.
        assert_eq!(counters.len(), 2);
        assert_eq!(counters[0].name, "eps spent (cdf)");
        assert!((counters[1].value - 0.3).abs() < 1e-12);
        assert_eq!(counters[1].at_ns, 20);
    }
}
