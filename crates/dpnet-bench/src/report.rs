//! Plain-text table rendering for experiment reports.
//!
//! Every experiment prints a paper-style table: a caption referencing the
//! paper artifact it regenerates, column headers, and rows. Keeping the
//! rendering here keeps the experiment code about the experiment.

/// A simple fixed-width text table builder.
#[derive(Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (cells are stringified by the caller).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Render with column widths fitted to content.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                line.push_str(&format!("{:<w$}  ", cells[i], w = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * cols;
        out.push_str(&"-".repeat(total.min(100)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Format a float with sensible precision for reports.
pub fn f(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 1000.0 {
        format!("{x:.0}")
    } else if x.abs() >= 10.0 {
        format!("{x:.1}")
    } else if x.abs() >= 0.01 {
        format!("{x:.3}")
    } else {
        format!("{x:.5}")
    }
}

/// Format a fraction as a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.3}%", x * 100.0)
}

/// Render bytes as hexadecimal (the paper shows payload strings hashed; we
/// show them hex-encoded).
pub fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02X}")).collect()
}

/// A standard experiment header block.
pub fn header(id: &str, caption: &str) -> String {
    format!("\n=== {id} — {caption} ===\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["x".into(), "1".into()]);
        t.row(vec!["longer".into(), "22".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[3].starts_with("longer"));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_is_checked() {
        Table::new(&["a", "b"]).row(vec!["only-one".into()]);
    }

    #[test]
    fn float_formatting_scales() {
        assert_eq!(f(0.0), "0");
        assert_eq!(f(12345.6), "12346");
        assert_eq!(f(12.34), "12.3");
        assert_eq!(f(0.5), "0.500");
        assert_eq!(f(0.0001), "0.00010");
    }

    #[test]
    fn hex_encodes() {
        assert_eq!(hex(&[0xDE, 0xAD]), "DEAD");
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.0123), "1.230%");
    }
}
