//! Plain-text table rendering and machine-readable run reports.
//!
//! Every experiment prints a paper-style table: a caption referencing the
//! paper artifact it regenerates, column headers, and rows. Keeping the
//! rendering here keeps the experiment code about the experiment.
//!
//! The [`RunReport`] half collects what the observability layer saw while
//! the experiments ran — phase events from the toolkit, charge/aggregate
//! events from the engine — and turns them into the per-phase ε/latency
//! budget report `repro` prints, plus a timestamped `BENCH_<target>.json`
//! for dashboards and regression tracking.

use dpnet_obs::json::{escape, number};
use dpnet_obs::{
    attribution_with_aggregates, unix_time_s, AggregatedSpans, AttributionRow, CompletedSpan,
    Event, MetricsRegistry,
};
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// A simple fixed-width text table builder.
#[derive(Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (cells are stringified by the caller).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Render with column widths fitted to content.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                line.push_str(&format!("{:<w$}  ", cells[i], w = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * cols;
        out.push_str(&"-".repeat(total.min(100)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Format a float with sensible precision for reports.
pub fn f(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 1000.0 {
        format!("{x:.0}")
    } else if x.abs() >= 10.0 {
        format!("{x:.1}")
    } else if x.abs() >= 0.01 {
        format!("{x:.3}")
    } else {
        format!("{x:.5}")
    }
}

/// Format a fraction as a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.3}%", x * 100.0)
}

/// Render bytes as hexadecimal (the paper shows payload strings hashed; we
/// show them hex-encoded).
pub fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02X}")).collect()
}

/// A standard experiment header block.
pub fn header(id: &str, caption: &str) -> String {
    format!("\n=== {id} — {caption} ===\n")
}

/// One named phase observed during an experiment.
#[derive(Debug, Clone)]
pub struct PhaseLine {
    /// Phase name (e.g. `cdf_partition`).
    pub name: String,
    /// ε the phase spent (by construction of the emitting algorithm).
    pub eps_spent: f64,
    /// Wall-clock duration of the phase.
    pub wall_ns: u64,
}

/// Everything observed while one experiment ran.
#[derive(Debug, Clone)]
pub struct ExperimentRun {
    /// Experiment id (`fig1`, `table4`, …).
    pub id: String,
    /// End-to-end wall time of the experiment.
    pub wall_ns: u64,
    /// ε total from the engine's charge events (refund-adjusted).
    pub eps_charged: f64,
    /// Named phases, in emission order.
    pub phases: Vec<PhaseLine>,
    /// Per-operator time attribution from profiler spans (top rows by
    /// self-time, descending). Empty when the run was not profiled.
    pub attribution: Vec<AttributionRow>,
    /// Request-latency percentiles, present only for serving runs
    /// (`dpnet loadtest`). Schema 3.
    pub latency: Option<LatencySummary>,
}

/// Request-latency percentiles and outcome counts from a serving load
/// test: the report shape behind `BENCH_serve.json`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencySummary {
    /// Concurrent analyst sessions driven.
    pub sessions: u64,
    /// Total requests sent.
    pub requests: u64,
    /// Requests answered with a released value.
    pub ok: u64,
    /// Requests refused with a typed `budget_exhausted` (graceful, not an
    /// error: the cap or the global budget bound).
    pub budget_exhausted: u64,
    /// Requests refused as invalid (unknown analysis, bad ε, bad frame).
    pub invalid: u64,
    /// Median request latency, ns.
    pub p50_ns: u64,
    /// 95th-percentile request latency, ns.
    pub p95_ns: u64,
    /// 99th-percentile request latency, ns.
    pub p99_ns: u64,
    /// Worst observed request latency, ns.
    pub max_ns: u64,
}

/// How many attribution rows a run report keeps per experiment: the top
/// ones by self-time. Rows beyond this are folded into the profile's noise
/// floor rather than serialized.
pub const ATTRIBUTION_TOP: usize = 10;

/// Version of the `BENCH_*.json` / `GOLDEN_*.json` schema. Bump this when
/// the report layout changes shape (fields added/removed/renamed) so
/// `bench_guard record --check` can flag committed baselines that predate
/// the change instead of letting the naive field scanners misread them.
///
/// History: 1 = pre-versioned reports (no `schema_version` field);
/// 2 = columnar data plane (adds `schema_version`);
/// 3 = serving architecture (adds the optional per-experiment `latency`
/// section: request/latency percentiles from `dpnet loadtest`).
pub const SCHEMA_VERSION: u64 = 3;

/// Wall time of a fixed CPU-bound spin, measured on this machine right
/// now (best of three to dodge scheduler noise). Recorded in every run
/// report so the regression guard can compare wall times across machines
/// as multiples of this unit instead of raw nanoseconds.
pub fn calibrate_ns() -> u64 {
    (0..3)
        .map(|round| {
            let start = std::time::Instant::now();
            let mut x = 0x9E37_79B9_7F4A_7C15u64 ^ round;
            for _ in 0..2_000_000u32 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
            }
            std::hint::black_box(x);
            start.elapsed().as_nanos() as u64
        })
        .min()
        .expect("three calibration rounds")
        .max(1)
}

/// Collects per-experiment observability data across a `repro` run and
/// renders the budget report and the machine-readable run report.
#[derive(Debug)]
pub struct RunReport {
    target: String,
    workers: usize,
    calibration_ns: u64,
    runs: Vec<ExperimentRun>,
    registry: MetricsRegistry,
}

impl RunReport {
    /// Start an empty report for `target` (names the output file). The
    /// machine is calibrated once, here, before any experiment runs.
    pub fn new(target: &str) -> Self {
        RunReport {
            target: target.to_string(),
            workers: 1,
            calibration_ns: calibrate_ns(),
            runs: Vec::new(),
            registry: MetricsRegistry::new(),
        }
    }

    /// Record the worker-pool size the experiments ran with.
    pub fn set_workers(&mut self, workers: usize) {
        self.workers = workers;
    }

    /// The metrics registry fed by [`RunReport::record`]; exposed so
    /// callers can add their own counters before export.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Record one finished experiment and the events captured while it ran.
    pub fn record(&mut self, id: &str, wall_ns: u64, events: &[Event]) {
        self.record_with_spans(id, wall_ns, events, &[]);
    }

    /// [`RunReport::record`], additionally folding profiler spans captured
    /// during the experiment into a per-operator time-attribution table
    /// (top [`ATTRIBUTION_TOP`] rows by self-time).
    pub fn record_with_spans(
        &mut self,
        id: &str,
        wall_ns: u64,
        events: &[Event],
        spans: &[CompletedSpan],
    ) {
        self.record_with_profile(id, wall_ns, events, spans, &[]);
    }

    /// [`RunReport::record_with_spans`] for runs profiled in
    /// [`dpnet_obs::SpanMode::Aggregate`]: the folded aggregate rows join
    /// the full spans in the attribution table, so the table is the same
    /// whichever span mode recorded the run.
    pub fn record_with_profile(
        &mut self,
        id: &str,
        wall_ns: u64,
        events: &[Event],
        spans: &[CompletedSpan],
        aggs: &[AggregatedSpans],
    ) {
        let mut phases = Vec::new();
        let mut eps_charged = 0.0;
        for ev in events {
            self.registry
                .counter(&format!("events.{}", ev.kind()))
                .inc();
            match ev {
                Event::Phase(p) => {
                    self.registry
                        .histogram(&format!("phase.{}.wall_ns", p.name))
                        .record_ns(p.wall_ns);
                    phases.push(PhaseLine {
                        name: p.name.to_string(),
                        eps_spent: p.eps_spent,
                        wall_ns: p.wall_ns,
                    });
                }
                Event::Charge(c) => eps_charged += c.epsilon,
                Event::Aggregate(a) => {
                    self.registry
                        .histogram(&format!("aggregate.{}.wall_ns", a.operator))
                        .record_ns(a.wall_ns);
                }
                Event::Exec(e) => {
                    self.registry
                        .histogram(&format!("exec.{}.wall_ns", e.kernel))
                        .record_ns(e.wall_ns);
                }
                Event::Plan(p) => {
                    self.registry.counter("plan.materializations").inc();
                    self.registry
                        .histogram("plan.materialize.wall_ns")
                        .record_ns(p.wall_ns);
                }
                Event::Transform(_) | Event::Session(_) => {}
            }
        }
        self.registry.counter("experiments.completed").inc();
        self.registry
            .histogram("experiment.wall_ns")
            .record_ns(wall_ns);
        let mut rows = attribution_with_aggregates(spans, aggs);
        rows.truncate(ATTRIBUTION_TOP);
        self.runs.push(ExperimentRun {
            id: id.to_string(),
            wall_ns,
            eps_charged,
            phases,
            attribution: rows,
            latency: None,
        });
    }

    /// Record a serving load-test run: latency percentiles instead of
    /// phases/attribution. `eps_charged` is the total ε the driven
    /// sessions burned (a released policy reading, not an event sum).
    pub fn record_latency(
        &mut self,
        id: &str,
        wall_ns: u64,
        eps_charged: f64,
        latency: LatencySummary,
    ) {
        self.registry.counter("experiments.completed").inc();
        self.registry
            .histogram("experiment.wall_ns")
            .record_ns(wall_ns);
        self.registry
            .histogram("serve.request_p50_ns")
            .record_ns(latency.p50_ns);
        self.runs.push(ExperimentRun {
            id: id.to_string(),
            wall_ns,
            eps_charged,
            phases: Vec::new(),
            attribution: Vec::new(),
            latency: Some(latency),
        });
    }

    /// The human-readable per-operator time-attribution report: for each
    /// profiled experiment, where the wall-clock actually went (self time,
    /// i.e. excluding nested spans), descending. Empty string when no run
    /// was profiled.
    pub fn render_attribution_report(&self) -> String {
        if self.runs.iter().all(|r| r.attribution.is_empty()) {
            return String::new();
        }
        let mut t = Table::new(&["experiment", "operator", "count", "total", "self", "self%"]);
        for run in &self.runs {
            let profiled: u64 = run.attribution.iter().map(|r| r.self_ns).sum();
            for (i, row) in run.attribution.iter().enumerate() {
                let share = if profiled == 0 {
                    0.0
                } else {
                    row.self_ns as f64 / profiled as f64
                };
                t.row(vec![
                    if i == 0 {
                        run.id.clone()
                    } else {
                        String::new()
                    },
                    row.name.clone(),
                    row.count.to_string(),
                    ms(row.total_ns),
                    ms(row.self_ns),
                    pct(share),
                ]);
            }
        }
        format!(
            "{}{}",
            header("profile", "per-operator self-time attribution"),
            t.render()
        )
    }

    /// The human-readable per-phase ε/latency budget report.
    pub fn render_budget_report(&self) -> String {
        let mut t = Table::new(&["experiment", "phase", "eps", "wall"]);
        for run in &self.runs {
            t.row(vec![
                run.id.clone(),
                "(total)".into(),
                f(run.eps_charged),
                ms(run.wall_ns),
            ]);
            for p in &run.phases {
                t.row(vec![
                    String::new(),
                    p.name.clone(),
                    f(p.eps_spent),
                    ms(p.wall_ns),
                ]);
            }
        }
        format!(
            "{}{}",
            header("budget", "per-experiment ε spend and latency"),
            t.render()
        )
    }

    /// The machine-readable run report. Nested JSON, built by hand on the
    /// `dpnet-obs` escaping primitives (no serde in the workspace).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push('{');
        out.push_str(&format!("\"schema_version\":{SCHEMA_VERSION},"));
        out.push_str(&format!("\"target\":{},", escape(&self.target)));
        out.push_str(&format!("\"workers\":{},", self.workers));
        out.push_str(&format!("\"calibration_ns\":{},", self.calibration_ns));
        out.push_str(&format!("\"generated_at_s\":{},", unix_time_s()));
        out.push_str("\"experiments\":[");
        for (i, run) in self.runs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            out.push_str(&format!("\"id\":{},", escape(&run.id)));
            out.push_str(&format!("\"wall_ns\":{},", run.wall_ns));
            out.push_str(&format!("\"eps_charged\":{},", number(run.eps_charged)));
            out.push_str("\"phases\":[");
            for (j, p) in run.phases.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"name\":{},\"eps_spent\":{},\"wall_ns\":{}}}",
                    escape(&p.name),
                    number(p.eps_spent),
                    p.wall_ns
                ));
            }
            out.push_str("],");
            out.push_str("\"attribution\":[");
            for (j, a) in run.attribution.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"name\":{},\"count\":{},\"total_ns\":{},\"self_ns\":{}}}",
                    escape(&a.name),
                    a.count,
                    a.total_ns,
                    a.self_ns
                ));
            }
            out.push(']');
            if let Some(l) = &run.latency {
                out.push_str(&format!(
                    ",\"latency\":{{\"sessions\":{},\"requests\":{},\"ok\":{},\
                     \"budget_exhausted\":{},\"invalid\":{},\"p50_ns\":{},\
                     \"p95_ns\":{},\"p99_ns\":{},\"max_ns\":{}}}",
                    l.sessions,
                    l.requests,
                    l.ok,
                    l.budget_exhausted,
                    l.invalid,
                    l.p50_ns,
                    l.p95_ns,
                    l.p99_ns,
                    l.max_ns
                ));
            }
            out.push('}');
        }
        out.push_str("],");
        out.push_str(&format!("\"metrics\":{}", self.registry.to_json()));
        out.push('}');
        out
    }

    /// Write `BENCH_<target>.json` under `dir` (created if missing) and
    /// return its path.
    pub fn write_json(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("BENCH_{}.json", self.target));
        let mut file = std::fs::File::create(&path)?;
        writeln!(file, "{}", self.to_json())?;
        Ok(path)
    }
}

/// Format nanoseconds as milliseconds for reports.
pub fn ms(ns: u64) -> String {
    format!("{:.1} ms", ns as f64 / 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["x".into(), "1".into()]);
        t.row(vec!["longer".into(), "22".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[3].starts_with("longer"));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_is_checked() {
        Table::new(&["a", "b"]).row(vec!["only-one".into()]);
    }

    #[test]
    fn float_formatting_scales() {
        assert_eq!(f(0.0), "0");
        assert_eq!(f(12345.6), "12346");
        assert_eq!(f(12.34), "12.3");
        assert_eq!(f(0.5), "0.500");
        assert_eq!(f(0.0001), "0.00010");
    }

    #[test]
    fn hex_encodes() {
        assert_eq!(hex(&[0xDE, 0xAD]), "DEAD");
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.0123), "1.230%");
    }

    fn sample_events() -> Vec<Event> {
        use dpnet_obs::event::{ChargeEvent, ExecEvent, PhaseEvent};
        use std::sync::Arc;
        vec![
            Event::Phase(PhaseEvent {
                name: Arc::from("cdf_partition"),
                eps_spent: 0.5,
                wall_ns: 2_000_000,
                at_ns: 1,
            }),
            Event::Charge(ChargeEvent {
                operator: Arc::from("noisy_count"),
                path: Arc::from("root"),
                label: None,
                epsilon: 0.5,
                spent_after: 0.5,
                sequence: 1,
                at_ns: 2,
            }),
            Event::Exec(ExecEvent {
                kernel: "partition",
                workers: 4,
                wall_ns: 1_000_000,
                at_ns: 3,
                #[cfg(feature = "trusted-owner")]
                tasks: 8,
            }),
        ]
    }

    #[test]
    fn run_report_collects_phases_and_charges() {
        let mut r = RunReport::new("test");
        r.record("fig1", 5_000_000, &sample_events());
        let text = r.render_budget_report();
        assert!(text.contains("fig1"));
        assert!(text.contains("cdf_partition"));
        assert!(text.contains("0.500"));
        assert_eq!(r.registry().counter("experiments.completed").get(), 1);
        assert_eq!(r.registry().counter("events.phase").get(), 1);
        assert_eq!(r.registry().counter("events.exec").get(), 1);
    }

    #[test]
    fn run_report_records_workers_and_calibration() {
        let mut r = RunReport::new("test");
        r.set_workers(4);
        let json = r.to_json();
        assert!(json.contains("\"workers\":4"));
        assert!(json.contains("\"calibration_ns\":"));
    }

    #[test]
    fn calibration_is_positive_and_repeatable_within_an_order() {
        let a = calibrate_ns();
        let b = calibrate_ns();
        assert!(a > 0 && b > 0);
        let ratio = a.max(b) as f64 / a.min(b) as f64;
        assert!(ratio < 10.0, "calibration unstable: {a} vs {b}");
    }

    #[test]
    fn latency_runs_serialize_the_latency_section() {
        let mut r = RunReport::new("serve");
        r.record_latency(
            "loadtest",
            7_000_000,
            0.75,
            LatencySummary {
                sessions: 8,
                requests: 32,
                ok: 24,
                budget_exhausted: 8,
                invalid: 0,
                p50_ns: 1_000,
                p95_ns: 5_000,
                p99_ns: 9_000,
                max_ns: 12_000,
            },
        );
        let json = r.to_json();
        assert!(json.contains("\"latency\":{\"sessions\":8,"));
        assert!(json.contains("\"budget_exhausted\":8"));
        assert!(json.contains("\"p50_ns\":1000"));
        assert!(json.contains("\"p99_ns\":9000"));
        // The latency object is flat and parses with the obs parser.
        let start = json.find("\"latency\":").unwrap() + "\"latency\":".len();
        let end = json[start..].find('}').unwrap() + start + 1;
        let parsed = dpnet_obs::json::parse_flat_object(&json[start..end]).unwrap();
        assert_eq!(parsed["p95_ns"].as_f64(), Some(5_000.0));
        // Runs without latency do not carry the key.
        let mut plain = RunReport::new("x");
        plain.record("fig1", 1, &[]);
        assert!(!plain.to_json().contains("\"latency\""));
    }

    #[test]
    fn run_report_json_carries_the_schema_version() {
        let r = RunReport::new("test");
        let json = r.to_json();
        assert!(
            json.starts_with(&format!("{{\"schema_version\":{SCHEMA_VERSION},")),
            "schema_version must lead the report: {json}"
        );
    }

    #[test]
    fn run_report_json_is_parseable_at_the_phase_level() {
        let mut r = RunReport::new("test");
        r.record("fig1", 5_000_000, &sample_events());
        let json = r.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"target\":\"test\""));
        assert!(json.contains("\"id\":\"fig1\""));
        assert!(json.contains("\"name\":\"cdf_partition\""));
        assert!(json.contains("\"eps_charged\":0.5"));
        // The inner phase objects are flat and parse with the obs parser.
        let start = json.find("{\"name\":").unwrap();
        let end = json[start..].find('}').unwrap() + start + 1;
        let parsed = dpnet_obs::json::parse_flat_object(&json[start..end]).unwrap();
        assert_eq!(parsed["eps_spent"].as_f64(), Some(0.5));
    }

    fn sample_spans() -> Vec<CompletedSpan> {
        let span = |id: u64, parent: Option<u64>, name: &'static str, dur: u64, child: u64| {
            CompletedSpan {
                id,
                parent,
                name,
                detail: None,
                track: 1,
                start_ns: id,
                dur_ns: dur,
                child_ns: child,
                #[cfg(feature = "trusted-owner")]
                records: 0,
            }
        };
        vec![
            span(1, None, "noisy_count", 900, 700),
            span(2, Some(1), "plan/materialize", 700, 0),
            span(3, None, "noisy_median", 80, 0),
        ]
    }

    #[test]
    fn run_report_folds_spans_into_attribution() {
        let mut r = RunReport::new("test");
        r.record_with_spans("fig1", 1_000, &[], &sample_spans());
        let run = &r.runs[0];
        assert_eq!(run.attribution.len(), 3);
        // Sorted by self time: the plan materialization dominates.
        assert_eq!(run.attribution[0].name, "plan/materialize");
        assert_eq!(run.attribution[0].self_ns, 700);
        assert_eq!(run.attribution[1].name, "noisy_count");
        assert_eq!(run.attribution[1].self_ns, 200);
        let text = r.render_attribution_report();
        assert!(text.contains("plan/materialize"));
        assert!(text.contains("self%"));
        let json = r.to_json();
        assert!(json.contains("\"attribution\":[{\"name\":\"plan/materialize\""));
        assert!(json.contains("\"self_ns\":700"));
    }

    #[test]
    fn unprofiled_reports_have_empty_attribution() {
        let mut r = RunReport::new("test");
        r.record("fig1", 1_000, &[]);
        assert!(r.runs[0].attribution.is_empty());
        assert_eq!(r.render_attribution_report(), "");
        assert!(r.to_json().contains("\"attribution\":[]"));
    }

    #[test]
    fn attribution_is_capped_at_the_top_rows() {
        let mut spans = Vec::new();
        for i in 0..25u64 {
            spans.push(CompletedSpan {
                id: i + 1,
                parent: None,
                // Distinct static names: leak a tiny string per test run.
                name: Box::leak(format!("op{i}").into_boxed_str()),
                detail: None,
                track: 1,
                start_ns: i,
                dur_ns: 1000 - i,
                child_ns: 0,
                #[cfg(feature = "trusted-owner")]
                records: 0,
            });
        }
        let mut r = RunReport::new("test");
        r.record_with_spans("x", 1, &[], &spans);
        assert_eq!(r.runs[0].attribution.len(), ATTRIBUTION_TOP);
        // The kept rows are the largest self-times.
        assert_eq!(r.runs[0].attribution[0].self_ns, 1000);
    }

    #[test]
    fn run_report_writes_the_target_file() {
        let dir = std::env::temp_dir().join("dpnet-bench-report-test");
        let mut r = RunReport::new("unit");
        r.record("x", 1, &[]);
        let path = r.write_json(&dir).unwrap();
        assert!(path.ends_with("BENCH_unit.json"));
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"generated_at_s\""));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ms_formats() {
        assert_eq!(ms(2_500_000), "2.5 ms");
    }
}
