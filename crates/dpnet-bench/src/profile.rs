//! Profiled experiment runs — the shared dispatcher behind the `repro`
//! binary and the `dpnet profile` command.
//!
//! [`run_experiment`] maps an experiment id to its implementation in
//! [`crate::experiments`]; [`run_profiled`] runs one experiment under an
//! installed [`TraceRecorder`], folds the captured spans into a
//! [`RunReport`] (per-operator time attribution in `BENCH_<id>-wN.json`),
//! and optionally writes a Chrome-trace/Perfetto JSON of the run.
//!
//! When an overhead ceiling is requested, the experiment is first run
//! *unprofiled* on the same pool and the profiled wall time is compared
//! against that baseline — CI uses this to keep the profiler honest.

use crate::experiments as exp;
use crate::report::RunReport;
use dpnet_obs::{
    install_recorder, set_global_sink, uninstall_recorder, write_chrome_trace_aggregated,
    AggregatedSpans, MemorySink, SpanMode, TraceRecorder,
};
use pinq::ExecPool;
use std::io::BufWriter;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// Every experiment id, in paper order.
pub const IDS: [&str; 18] = [
    "table1",
    "example23",
    "fig1",
    "table4",
    "itemsets",
    "fig2",
    "worm",
    "fig3",
    "table5",
    "fig4",
    "fig5",
    "table2",
    "rules",
    "connections",
    "principals",
    "ablation",
    "graphdist",
    "classify",
];

/// Run one experiment by id on `pool`, returning its printable output.
pub fn run_experiment(id: &str, pool: &ExecPool) -> Result<String, String> {
    match id {
        "table1" => Ok(exp::table1::run(3000).1),
        "example23" => Ok(exp::example23::run(400).1),
        "fig1" => exp::fig1::run_with(1.0, pool)
            .map(|(_, s)| s)
            .map_err(|e| e.to_string()),
        "table4" => Ok(exp::table4::run(10, 1.0).1),
        "itemsets" => Ok(exp::itemsets_exp::run_with(1.0, pool).1),
        "fig2" => Ok(exp::fig2::run().1),
        "worm" => Ok(exp::worm_exp::run_with(pool).1),
        "fig3" => Ok(exp::fig3::run().1),
        "table5" => Ok(exp::table5::run().1),
        "fig4" => Ok(exp::fig4::run().1),
        "fig5" => Ok(exp::fig5::run(10).1),
        "table2" => Ok(exp::table2::run().1),
        "rules" => Ok(exp::rules_exp::run().1),
        "connections" => Ok(exp::connections_exp::run().1),
        "principals" => Ok(exp::principals::run(400).1),
        "ablation" => Ok(exp::ablation::run().1),
        "graphdist" => Ok(exp::graphdist_exp::run().1),
        "classify" => Ok(exp::classify_exp::run().1),
        other => Err(format!("unknown experiment id '{other}'")),
    }
}

/// What [`run_profiled`] should do.
pub struct ProfileConfig {
    /// Experiment id (one of [`IDS`]).
    pub experiment: String,
    /// Worker count for the shared [`ExecPool`].
    pub workers: usize,
    /// Where `BENCH_<experiment>-w<workers>.json` is written.
    pub report_dir: PathBuf,
    /// Optional path for the Chrome-trace JSON of the profiled run.
    pub trace_out: Option<PathBuf>,
    /// When set, also time an *unprofiled* run first and fail if the
    /// profiled run is more than `(1 + ceiling)` times slower.
    pub max_overhead: Option<f64>,
    /// How the recorder treats high-frequency aggregation spans:
    /// [`SpanMode::Full`] keeps every span; [`SpanMode::Aggregate`] folds
    /// them into count + total-ns rows per charge path (`--spans agg`),
    /// which keeps large partitioned runs from materializing millions of
    /// span records.
    pub span_mode: SpanMode,
}

/// Everything one profiled run produced.
pub struct ProfileOutcome {
    /// The experiment's own printable output.
    pub output: String,
    /// Rendered per-operator attribution table (empty if no spans).
    pub attribution: String,
    /// Path of the written `BENCH_*.json` report.
    pub report_path: PathBuf,
    /// Path of the written trace, when requested.
    pub trace_path: Option<PathBuf>,
    /// Wall time of the profiled run.
    pub profiled_wall_ns: u64,
    /// Wall time of the unprofiled baseline run, when one was made.
    pub baseline_wall_ns: Option<u64>,
    /// Number of individually recorded spans.
    pub spans: usize,
    /// Number of aggregate rows the recorder folded (aggregate mode only).
    pub aggregated: usize,
}

impl ProfileOutcome {
    /// Profiler overhead as a fraction of the unprofiled baseline
    /// (`0.03` = 3% slower), when a baseline run was made.
    pub fn overhead(&self) -> Option<f64> {
        self.baseline_wall_ns
            .map(|base| self.profiled_wall_ns as f64 / base.max(1) as f64 - 1.0)
    }
}

/// Run `cfg.experiment` with the span profiler installed, write the
/// attribution-bearing report (and optionally a Chrome trace), and check
/// the overhead ceiling if one was requested.
pub fn run_profiled(cfg: &ProfileConfig) -> Result<ProfileOutcome, String> {
    let pool = ExecPool::new(cfg.workers).map_err(|e| e.to_string())?;

    // Unprofiled baseline first: same pool, recorder not installed, so
    // the per-span cost reduces to one relaxed atomic load.
    let baseline_wall_ns = match cfg.max_overhead {
        Some(_) => {
            let start = Instant::now();
            run_experiment(&cfg.experiment, &pool)?;
            Some((start.elapsed().as_nanos() as u64).max(1))
        }
        None => None,
    };

    let sink = Arc::new(MemorySink::new());
    set_global_sink(Some(sink.clone()));
    let rec = Arc::new(TraceRecorder::with_mode(cfg.span_mode));
    install_recorder(rec.clone());
    let start = Instant::now();
    let result = run_experiment(&cfg.experiment, &pool);
    let profiled_wall_ns = (start.elapsed().as_nanos() as u64).max(1);
    uninstall_recorder();
    set_global_sink(None);
    let output = result?;
    let spans = rec.take();
    let aggs = rec.take_aggregated();

    let mut report = RunReport::new(&format!("{}-w{}", cfg.experiment, cfg.workers));
    report.set_workers(cfg.workers);
    report.record_with_profile(
        &cfg.experiment,
        profiled_wall_ns,
        &sink.drain(),
        &spans,
        &aggs,
    );
    let attribution = report.render_attribution_report();
    let report_path = report
        .write_json(&cfg.report_dir)
        .map_err(|e| format!("could not write run report: {e}"))?;

    let trace_path = match &cfg.trace_out {
        Some(path) => {
            write_trace(path, &spans, &aggs, &rec)?;
            Some(path.clone())
        }
        None => None,
    };

    let outcome = ProfileOutcome {
        output,
        attribution,
        report_path,
        trace_path,
        profiled_wall_ns,
        baseline_wall_ns,
        spans: spans.len(),
        aggregated: aggs.len(),
    };
    if let (Some(ceiling), Some(overhead)) = (cfg.max_overhead, outcome.overhead()) {
        if overhead > ceiling {
            return Err(format!(
                "profiler overhead {:.1}% exceeds the {:.1}% ceiling \
                 (unprofiled {} ns, profiled {} ns)",
                overhead * 100.0,
                ceiling * 100.0,
                outcome.baseline_wall_ns.unwrap_or(0),
                outcome.profiled_wall_ns,
            ));
        }
    }
    Ok(outcome)
}

fn write_trace(
    path: &Path,
    spans: &[dpnet_obs::CompletedSpan],
    aggs: &[AggregatedSpans],
    rec: &TraceRecorder,
) -> Result<(), String> {
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    }
    let file = std::fs::File::create(path)
        .map_err(|e| format!("cannot create {}: {e}", path.display()))?;
    write_chrome_trace_aggregated(BufWriter::new(file), spans, &rec.track_names(), &[], aggs)
        .map_err(|e| format!("cannot write {}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_global_guard as global_guard;

    #[test]
    fn unknown_ids_are_rejected() {
        let pool = ExecPool::sequential();
        assert!(run_experiment("nope", &pool).is_err());
    }

    #[test]
    fn profiled_run_writes_report_with_attribution_and_trace() {
        let _g = global_guard();
        let dir = std::env::temp_dir().join("dpnet-profile-test");
        let cfg = ProfileConfig {
            experiment: "example23".to_string(),
            workers: 1,
            report_dir: dir.clone(),
            trace_out: Some(dir.join("trace.json")),
            max_overhead: None,
            span_mode: SpanMode::Full,
        };
        let out = run_profiled(&cfg).expect("profiled run");
        assert!(out.spans > 0, "experiment should record spans");
        assert_eq!(out.aggregated, 0, "full mode folds nothing");
        assert!(!out.attribution.is_empty());
        let report = std::fs::read_to_string(&out.report_path).unwrap();
        assert!(report.contains("\"target\":\"example23-w1\""));
        assert!(report.contains("\"attribution\":[{\"name\":"));
        let trace = std::fs::read_to_string(out.trace_path.as_ref().unwrap()).unwrap();
        assert!(trace.contains("\"traceEvents\""));
        assert!(trace.contains("\"ph\":\"X\""));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn aggregate_mode_folds_aggregation_spans_and_still_exports_a_trace() {
        let _g = global_guard();
        let dir = std::env::temp_dir().join("dpnet-profile-agg-test");
        let run = |span_mode| {
            let cfg = ProfileConfig {
                experiment: "fig1".to_string(),
                workers: 1,
                report_dir: dir.clone(),
                trace_out: Some(dir.join(format!("trace-{span_mode:?}.json"))),
                max_overhead: None,
                span_mode,
            };
            run_profiled(&cfg).expect("profiled run")
        };
        let full = run(SpanMode::Full);
        let agg = run(SpanMode::Aggregate);
        assert!(agg.aggregated > 0, "fig1 charges through aggregation spans");
        assert!(
            agg.spans < full.spans,
            "aggregate mode must store fewer individual spans ({} vs {})",
            agg.spans,
            full.spans
        );
        // The attribution table still names the folded operators.
        assert!(agg.attribution.contains("noisy_count"));
        // The trace stays loadable and gains the dedicated aggregate lane.
        let trace = std::fs::read_to_string(agg.trace_path.as_ref().unwrap()).unwrap();
        assert!(trace.contains("\"traceEvents\""));
        assert!(trace.contains("aggregated spans"));
        assert!(trace.contains("\"cat\":\"dpnet-agg\""));
        std::fs::remove_dir_all(&dir).ok();
    }
}
