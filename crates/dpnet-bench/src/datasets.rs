//! Standard experiment-scale dataset configurations.
//!
//! Every experiment harness target pulls its data from here, so all
//! tables/figures are computed over the same traces (as in the paper, where
//! all Hotspot experiments share one capture). Datasets are generated once
//! per process and cached. Scales are chosen so the full suite runs in
//! minutes on a laptop; the generators accept larger scales for paper-sized
//! runs.

use dpnet_trace::gen::hotspot::{self, HotspotConfig, HotspotTrace};
use dpnet_trace::gen::isp::{self, IspConfig, IspTrace};
use dpnet_trace::gen::scatter::{self, ScatterConfig, ScatterTrace};
use dpnet_trace::Packet;
use std::sync::{Arc, OnceLock};

/// The experiment Hotspot trace (~a few hundred thousand packets; the
/// paper's capture had 7.0 M — same structure, smaller constant).
pub fn hotspot() -> &'static HotspotTrace {
    static CACHE: OnceLock<HotspotTrace> = OnceLock::new();
    CACHE.get_or_init(|| hotspot::generate(HotspotConfig::default()))
}

/// The experiment Hotspot packets as `Arc`-shared shards, built once per
/// process. Experiments wrap these with
/// `pinq::Queryable::from_shared_shards`, so each protected view costs one
/// reference bump per shard instead of cloning a few hundred thousand
/// packets per run; the flat record order is [`fn@hotspot`]'s packet
/// order, so releases are bit-identical to views over the row vector.
pub fn hotspot_shards() -> &'static Vec<Arc<Vec<Packet>>> {
    static CACHE: OnceLock<Vec<Arc<Vec<Packet>>>> = OnceLock::new();
    CACHE.get_or_init(|| hotspot().packet_shards())
}

/// A reduced Hotspot trace for quick runs and 1/10th-data experiments.
pub fn hotspot_tenth() -> &'static HotspotTrace {
    static CACHE: OnceLock<HotspotTrace> = OnceLock::new();
    CACHE.get_or_init(|| {
        let mut cfg = HotspotConfig::default();
        cfg.web_flows /= 10;
        cfg.itemset_hosts /= 10;
        cfg.seed ^= 0x7e47;
        hotspot::generate(cfg)
    })
}

/// The experiment IspTraffic dataset: paper-scale matrix dimensions
/// (400 links × 672 fifteen-minute windows) at reduced per-cell packet
/// density.
pub fn isp() -> &'static IspTrace {
    static CACHE: OnceLock<IspTrace> = OnceLock::new();
    CACHE.get_or_init(|| isp::generate(IspConfig::default()))
}

/// A reduced ISP dataset for unit-test-speed runs.
pub fn isp_small() -> &'static IspTrace {
    static CACHE: OnceLock<IspTrace> = OnceLock::new();
    CACHE.get_or_init(|| {
        isp::generate(IspConfig {
            links: 60,
            windows: 144,
            anomalies: 6,
            ..IspConfig::default()
        })
    })
}

/// The experiment IPscatter dataset: 38 monitors, planted 9-cluster
/// topology.
pub fn scatter() -> &'static ScatterTrace {
    static CACHE: OnceLock<ScatterTrace> = OnceLock::new();
    CACHE.get_or_init(|| scatter::generate(ScatterConfig::default()))
}

/// The paper's three privacy levels: high, medium, and low privacy.
pub const EPSILONS: [f64; 3] = [0.1, 1.0, 10.0];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hotspot_scales_are_consistent() {
        let full = hotspot();
        let tenth = hotspot_tenth();
        let ratio = full.packets.len() as f64 / tenth.packets.len() as f64;
        assert!(ratio > 4.0, "tenth trace not much smaller: ratio {ratio}");
    }

    #[test]
    fn isp_matrix_is_paper_scale() {
        let t = isp();
        assert_eq!(t.links, 400);
        assert_eq!(t.windows, 672);
    }

    #[test]
    fn scatter_has_38_monitors() {
        assert_eq!(scatter().monitors, 38);
    }

    #[test]
    fn caches_return_the_same_instance() {
        assert!(std::ptr::eq(hotspot(), hotspot()));
        assert!(std::ptr::eq(isp_small(), isp_small()));
    }
}
