//! E-ITEM — paper §4.3: frequent port itemsets.
//!
//! "We use it to discover the common sets of ports that are used
//! simultaneously by hosts. … The top-five, which are all correct, in the
//! Hotspot trace are (22,80), (25,22), (443,80), (445,139), and (993,22)."
//!
//! The reproduced claim is that the privately discovered top pairs are the
//! *truly* most frequent co-used port pairs. In our trace that includes
//! both the explicitly planted itemset hosts and the organic pairs the
//! traffic model creates (e.g. (53, 80): web clients resolve names before
//! fetching), so scoring compares against exact per-host support.

use crate::datasets;
use crate::report::{f, header, Table};
use dpnet_toolkit::itemsets::{exact_support, frequent_itemsets, ItemsetConfig};
use dpnet_trace::gen::hotspot::COMMON_PORTS;
use pinq::{Accountant, ExecCtx, ExecPool, NoiseSource, Queryable};
use std::collections::BTreeSet;

/// One discovered port pair.
#[derive(Debug, Clone)]
pub struct ItemsetRow {
    /// The port pair.
    pub ports: Vec<u16>,
    /// Noisy partitioned support.
    pub noisy_count: f64,
    /// Exact number of hosts using both ports.
    pub exact: usize,
}

/// Build the exact per-host port-set records (the same view the private
/// query constructs).
fn host_port_sets(packets: &[dpnet_trace::Packet]) -> Vec<BTreeSet<u32>> {
    let mut per_host: std::collections::HashMap<u32, BTreeSet<u32>> =
        std::collections::HashMap::new();
    for p in packets {
        if p.dst_port > 0 {
            per_host
                .entry(p.src_ip)
                .or_default()
                .insert(p.dst_port as u32);
        }
    }
    per_host.into_values().collect()
}

/// Run the port-itemset discovery at per-level accuracy `eps`.
pub fn run(eps: f64) -> (Vec<ItemsetRow>, String) {
    run_ctx(eps, ExecCtx::Sequential)
}

/// [`run`] on a worker pool. Mining is bit-identical to the sequential
/// path for every worker count (only partition data movement fans out).
pub fn run_with(eps: f64, pool: &ExecPool) -> (Vec<ItemsetRow>, String) {
    run_ctx(eps, ExecCtx::pool(pool))
}

/// The private per-host port-set view: one `BTreeSet<u32>` record per
/// source host, holding its destination ports. Each record carries the
/// host address as an item outside the 16-bit port space, keeping records
/// distinct (the partition rotation needs record diversity) without
/// affecting port candidates. Shared with the analysis registry.
pub fn private_host_port_sets(
    packets: &Queryable<dpnet_trace::Packet>,
) -> Queryable<BTreeSet<u32>> {
    packets.group_by(|p| p.src_ip).map(|g| -> BTreeSet<u32> {
        let mut set: BTreeSet<u32> = g
            .items
            .iter()
            .map(|p| p.dst_port as u32)
            .filter(|&p| p > 0)
            .collect();
        set.insert(0x1_0000 + g.key);
        set
    })
}

fn run_ctx(eps: f64, ctx: ExecCtx) -> (Vec<ItemsetRow>, String) {
    let trace = datasets::hotspot();
    let budget = Accountant::new(1e9);
    let noise = NoiseSource::seeded(0x17e3);
    let q = Queryable::from_shared_shards(datasets::hotspot_shards().clone(), &budget, &noise)
        .with_ctx(ctx);

    let records = private_host_port_sets(&q);

    let universe: Vec<u32> = COMMON_PORTS.iter().map(|&p| p as u32).collect();
    let found = frequent_itemsets(
        &records,
        &ItemsetConfig {
            universe,
            max_size: 2,
            eps_per_level: eps,
            threshold: 8.0,
        },
    )
    .expect("budget is huge");

    let exact_records = host_port_sets(&trace.packets);
    let mut rows: Vec<ItemsetRow> = found
        .iter()
        .filter(|m| m.size == 2)
        .map(|m| {
            let mut ports: Vec<u16> = m.items.iter().map(|&i| i as u16).collect();
            ports.sort_unstable();
            let items_u32: Vec<u32> = ports.iter().map(|&p| p as u32).collect();
            ItemsetRow {
                ports,
                noisy_count: m.noisy_count,
                exact: exact_support(&exact_records, &items_u32),
            }
        })
        .collect();
    rows.sort_by(|a, b| {
        b.noisy_count
            .partial_cmp(&a.noisy_count)
            .expect("finite counts")
    });

    let mut table = Table::new(&["port set", "noisy support", "exact host support"]);
    for r in rows.iter().take(8) {
        table.row(vec![
            format!(
                "({})",
                r.ports
                    .iter()
                    .map(|p| p.to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            ),
            f(r.noisy_count),
            r.exact.to_string(),
        ]);
    }
    let mut out = header("E-ITEM", "frequent port itemsets (paper §4.3)");
    out.push_str(&format!("eps per level = {}\n", f(eps)));
    out.push_str(&table.render());
    out.push_str(&format!(
        "\nexplicitly planted sets (host counts): {:?}\n\
         organic pairs (DNS-before-fetch) also rank, as they should\n\
         paper shape: the top discovered sets are truly frequent, in order\n",
        trace.truth.port_sets
    ));
    (rows, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planted_port_pairs_are_recovered_in_order() {
        let (rows, report) = run(1.0);
        assert!(rows.len() >= 5, "too few pairs: {}", rows.len());
        // Every one of the top-5 discovered pairs is genuinely frequent.
        let mut exacts: Vec<usize> = rows.iter().map(|r| r.exact).collect();
        exacts.sort_unstable_by(|a, b| b.cmp(a));
        let bar = exacts.get(7).copied().unwrap_or(0); // 8th-highest support
        for r in rows.iter().take(5) {
            assert!(
                r.exact >= bar.max(10),
                "top pair {:?} has weak exact support {}",
                r.ports,
                r.exact
            );
        }
        // The #1 discovered pair is the #1 by exact support.
        let best_exact = rows.iter().map(|r| r.exact).max().unwrap();
        assert_eq!(
            rows[0].exact, best_exact,
            "top discovered pair is not the true top: {rows:?}"
        );
        // The explicitly planted itemset pairs are found too.
        let trace = crate::datasets::hotspot();
        for (set, n) in &trace.truth.port_sets {
            if *n >= 15 {
                let mut sorted = set.clone();
                sorted.sort_unstable();
                assert!(
                    rows.iter().any(|r| r.ports == sorted),
                    "planted {sorted:?} (n={n}) not discovered"
                );
            }
        }
        assert!(report.contains("E-ITEM"));
    }
}
