//! E-T2 — paper Table 2: the summary of analyses.
//!
//! Table 2 records, per analysis, (a) *expressibility* — how faithfully the
//! analysis could be written against the DP engine — and (b) the privacy
//! level at which *high accuracy* was achieved. Expressibility is a
//! property of the implementations in `dpnet-analyses` (static text below,
//! matching this reproduction's choices); the accuracy level is measured by
//! running each analysis at ε = 0.1, 1, 10 and applying a fixed criterion.

use crate::experiments::{fig2, fig3, fig5, table5, worm_exp};
use crate::report::{header, Table};
use dpnet_analyses::anomaly::{
    anomaly_norms, flag_anomalies, private_anomaly_norms, AnomalyConfig,
};
use pinq::{Accountant, NoiseSource, Queryable};

/// One summary row.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Analysis name.
    pub analysis: &'static str,
    /// Expressibility of this reproduction (mirrors the paper's column).
    pub expressibility: &'static str,
    /// Measured privacy level achieving high accuracy ("strong" = ε 0.1,
    /// "medium" = ε 1, "weak" = ε 10, or "none").
    pub high_accuracy: &'static str,
    /// The paper's reported accuracy level.
    pub paper: &'static str,
}

fn level_name(eps: Option<f64>) -> &'static str {
    match eps {
        Some(e) if e <= 0.1 => "strong privacy",
        Some(e) if e <= 1.0 => "medium privacy",
        Some(_) => "weak privacy",
        None => "none",
    }
}

/// Measure the anomaly-detection accuracy level on the reduced ISP dataset.
/// The paper's claim is DP-vs-exact equivalence ("no significant anomaly
/// should go unnoticed"), so the criterion is: the private run flags every
/// planted anomaly the *noise-free* run flags.
fn anomaly_level() -> Option<f64> {
    let trace = crate::datasets::isp_small();
    let truth: Vec<usize> = trace.truth.iter().map(|a| a.window as usize).collect();
    let exact = anomaly_norms(&trace.matrix_f64(), 2, 40);
    let exact_flagged = flag_anomalies(&exact, 8.0);
    let exact_hits: Vec<usize> = truth
        .iter()
        .filter(|w| exact_flagged.contains(w))
        .cloned()
        .collect();
    if exact_hits.is_empty() {
        return None;
    }
    let records = trace.to_records();
    for &eps in &crate::datasets::EPSILONS {
        let budget = Accountant::new(1e9);
        let noise = NoiseSource::seeded(0x72 ^ eps.to_bits());
        let q = Queryable::new(records.clone(), &budget, &noise);
        let cfg = AnomalyConfig {
            links: trace.links,
            windows: trace.windows,
            components: 2,
            sweeps: 40,
            eps,
        };
        let norms = private_anomaly_norms(&q, &cfg).expect("budget");
        let flagged = flag_anomalies(&norms, 8.0);
        if exact_hits.iter().all(|w| flagged.contains(w)) {
            return Some(eps);
        }
    }
    None
}

/// Run the summary: executes the per-analysis experiments and classifies
/// each one's accuracy level.
pub fn run() -> (Vec<Table2Row>, String) {
    // Packet distributions: smallest ε with rel RMSE below 1% on lengths.
    let (f2, _) = fig2::run();
    let dist_eps = f2
        .length_rmse
        .iter()
        .find(|(_, r)| *r < 0.01)
        .map(|(e, _)| *e);

    // Worm fingerprinting: smallest ε recovering ≥ 95% of signatures.
    let (wr, _) = worm_exp::run();
    let worm_eps = wr
        .recovery
        .iter()
        .find(|r| r.recovered as f64 >= 0.95 * wr.exact_count as f64)
        .map(|r| r.eps);

    // Flow statistics: smallest ε with RTT rel RMSE below 5%.
    let (f3, _) = fig3::run();
    let flow_eps = f3.rtt_rmse.iter().find(|(_, r)| *r < 0.05).map(|(e, _)| *e);

    // Stepping stones: smallest ε with < 25% false positives and mean
    // exact correlation above the 0.3 threshold.
    let (t5, _) = table5::run();
    let stone_eps = t5
        .iter()
        .find(|r| {
            r.pairs > 0 && (r.false_positives as f64) < 0.25 * r.pairs as f64 && r.exact_mean > 0.3
        })
        .map(|r| r.eps);

    // Anomaly detection: smallest ε with full planted-anomaly detection.
    let anomaly_eps = anomaly_level();

    // Topology mapping: smallest ε within 15% of the noise-free objective.
    let (f5, _) = fig5::run(6);
    let base = *f5.baseline.last().expect("has iterations");
    let topo_eps = f5
        .private
        .iter()
        .find(|(_, curve)| *curve.last().expect("has iterations") < base * 1.15 + 0.2)
        .map(|(e, _)| *e);

    let rows = vec![
        Table2Row {
            analysis: "Packet size and port dist. (5.1.1)",
            expressibility: "faithful",
            high_accuracy: level_name(dist_eps),
            paper: "strong privacy",
        },
        Table2Row {
            analysis: "Worm fingerprinting (5.1.2)",
            expressibility: "faithful",
            high_accuracy: level_name(worm_eps),
            paper: "weak privacy",
        },
        Table2Row {
            analysis: "Common flow properties (5.2.1)",
            expressibility: "could not isolate connections in a flow",
            high_accuracy: level_name(flow_eps),
            paper: "strong privacy",
        },
        Table2Row {
            analysis: "Stepping stone detection (5.2.2)",
            expressibility: "sliding windows approximated (bucketed)",
            high_accuracy: level_name(stone_eps),
            paper: "medium privacy",
        },
        Table2Row {
            analysis: "Anomaly detection (5.3.1)",
            expressibility: "faithful",
            high_accuracy: level_name(anomaly_eps),
            paper: "strong privacy",
        },
        Table2Row {
            analysis: "Passive topology mapping (5.3.2)",
            expressibility: "simpler clustering (k-means, not Gaussian EM)",
            high_accuracy: level_name(topo_eps),
            paper: "weak privacy",
        },
    ];

    let mut table = Table::new(&["analysis", "expressibility", "measured", "paper"]);
    for r in &rows {
        table.row(vec![
            r.analysis.to_string(),
            r.expressibility.to_string(),
            r.high_accuracy.to_string(),
            r.paper.to_string(),
        ]);
    }
    let mut out = header("E-T2", "summary of the analyses (paper Table 2)");
    out.push_str(&table.render());
    out.push_str(
        "\nnote: 'measured' uses fixed criteria (see module docs); our traces are smaller\n\
         than the paper's, so strong-privacy error is relatively larger at equal eps\n",
    );
    (rows, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[ignore = "runs every analysis; exercised by the repro binary"]
    fn summary_assembles() {
        let (rows, report) = run();
        assert_eq!(rows.len(), 6);
        assert!(report.contains("E-T2"));
    }
}
