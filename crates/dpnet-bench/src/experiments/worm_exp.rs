//! E-WORM — paper §5.1.2: worm fingerprinting recovery per privacy level.
//!
//! The noise-free computation finds 29 high-dispersion payloads (dispersion
//! threshold 50 on sources and destinations); private search recovers 7, 24,
//! and 29 of them at ε = 0.1, 1.0, 10.0 — the missed payloads being those
//! with low overall presence but above-average dispersal.

use crate::datasets::{self, EPSILONS};
use crate::report::{f, header, Table};
use dpnet_analyses::worm::{
    worm_fingerprints, worm_fingerprints_exact, worm_fingerprints_with, WormConfig,
};
use dpnet_trace::FlowKey;
use pinq::{Accountant, ExecPool, NoiseSource, Queryable};
use std::collections::HashSet;

/// Recovery result per privacy level.
#[derive(Debug, Clone)]
pub struct WormRecovery {
    /// ε used (per aggregation).
    pub eps: f64,
    /// Signatures recovered out of the noise-free set.
    pub recovered: usize,
    /// False positives (reported signatures outside the noise-free set).
    pub false_positives: usize,
}

/// Full result of the worm experiment.
#[derive(Debug, Clone)]
pub struct WormResult {
    /// Size of the noise-free signature set.
    pub exact_count: usize,
    /// Noisy count of high-dispersion payload groups (the paper's
    /// "2739 ± 10, with thresholds at 5" companion measurement).
    pub group_count: f64,
    /// Recovery at each privacy level.
    pub recovery: Vec<WormRecovery>,
}

/// Run the worm experiment over the standard Hotspot trace.
pub fn run() -> (WormResult, String) {
    run_on(datasets::hotspot())
}

/// [`run`] on a worker pool. The fingerprint search itself is deterministic
/// for every worker count, but draws per-part noise substreams, so its
/// released values form a different (equally valid) sample than the
/// sequential [`run`] at the same seed.
pub fn run_with(pool: &ExecPool) -> (WormResult, String) {
    run_on_with(datasets::hotspot(), pool)
}

/// Run the worm experiment over a caller-supplied trace (used by tests to
/// keep debug-mode runtimes reasonable).
pub fn run_on(trace: &dpnet_trace::gen::hotspot::HotspotTrace) -> (WormResult, String) {
    run_on_impl(trace, None)
}

/// [`run_on`] on a worker pool.
pub fn run_on_with(
    trace: &dpnet_trace::gen::hotspot::HotspotTrace,
    pool: &ExecPool,
) -> (WormResult, String) {
    run_on_impl(trace, Some(pool))
}

fn run_on_impl(
    trace: &dpnet_trace::gen::hotspot::HotspotTrace,
    pool: Option<&ExecPool>,
) -> (WormResult, String) {
    let exact = worm_fingerprints_exact(&trace.packets, 8, 50, 50);

    let budget = Accountant::new(1e9);
    let noise = NoiseSource::seeded(0x3042);
    // Generator-emitted shards: the trace enters the engine pre-chunked
    // (flat order unchanged, so releases are identical to a flat source).
    let q = Queryable::from_shared_shards(trace.packet_shards(), &budget, &noise);

    // The paper's companion measurement: count payload groups with > 5
    // distinct sources and destinations, without revealing the payloads.
    let group_count = q
        .group_by(|p| p.payload.clone())
        .filter(|g| {
            let srcs: HashSet<u32> = g.items.iter().map(|p| p.src_ip).collect();
            let dsts: HashSet<u32> = g.items.iter().map(|p| p.dst_ip).collect();
            srcs.len() > 5 && dsts.len() > 5 && FlowKey::of(&g.items[0]).is_tcp()
        })
        .noisy_count(0.1)
        .expect("budget");

    let mut recovery = Vec::new();
    for &eps in &EPSILONS {
        let cfg = WormConfig {
            eps,
            presence_threshold: 50.0,
            ..WormConfig::default()
        };
        let found = match pool {
            None => worm_fingerprints(&q, &cfg),
            Some(pool) => worm_fingerprints_with(&q, &cfg, pool),
        }
        .expect("budget");
        let found_set: HashSet<Vec<u8>> = found.iter().map(|w| w.payload.clone()).collect();
        let recovered = exact.iter().filter(|p| found_set.contains(*p)).count();
        let false_positives = found_set.len() - recovered.min(found_set.len());
        recovery.push(WormRecovery {
            eps,
            recovered,
            false_positives,
        });
    }

    let result = WormResult {
        exact_count: exact.len(),
        group_count,
        recovery: recovery.clone(),
    };

    let mut out = header("E-WORM", "worm fingerprinting recovery (paper §5.1.2)");
    out.push_str(&format!(
        "noise-free signatures (dispersion > 50): {}\n\
         noisy high-dispersion group count (thresholds at 5, eps=0.1): {}\n\n",
        exact.len(),
        f(group_count)
    ));
    let mut table = Table::new(&["eps", "recovered", "of", "false positives"]);
    for r in &recovery {
        table.row(vec![
            r.eps.to_string(),
            r.recovered.to_string(),
            result.exact_count.to_string(),
            r.false_positives.to_string(),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(
        "\npaper: 29 noise-free; recovered 7 / 24 / 29 at eps 0.1 / 1.0 / 10.0\n\
         paper shape: recovery grows with eps; misses are low-presence, high-dispersal payloads\n",
    );
    (result, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovery_grows_with_epsilon() {
        // Reduced trace: same planted-worm structure, debug-mode friendly.
        let trace = dpnet_trace::gen::hotspot::generate(dpnet_trace::gen::hotspot::HotspotConfig {
            web_flows: 400,
            worms_above_threshold: 24,
            worms_below_threshold: 6,
            stepping_stone_pairs: 2,
            interactive_decoys: 3,
            itemset_hosts: 20,
            ..Default::default()
        });
        let (r, report) = run_on(&trace);
        assert!(
            r.exact_count >= 20,
            "exact set too small: {}",
            r.exact_count
        );
        // Monotone (weakly) in ε, full recovery at the weakest level.
        assert!(r.recovery[0].recovered <= r.recovery[1].recovered);
        assert!(r.recovery[1].recovered <= r.recovery[2].recovered);
        assert!(
            r.recovery[2].recovered as f64 >= 0.95 * r.exact_count as f64,
            "weak privacy recovered only {}/{}",
            r.recovery[2].recovered,
            r.exact_count
        );
        // Strong privacy misses a substantial fraction.
        assert!(
            (r.recovery[0].recovered as f64) < 0.8 * r.exact_count as f64,
            "strong privacy recovered {}/{}",
            r.recovery[0].recovered,
            r.exact_count
        );
        assert!(report.contains("E-WORM"));
    }
}
