//! E-S23 — the paper's §2.3 worked example.
//!
//! "Count distinct hosts that send more than 1024 bytes to port 80." On the
//! paper's Hotspot trace the noise-free answer is 120 and one ε = 0.1 run
//! returned 121, with expected error ±10. Our synthetic Hotspot has its own
//! noise-free answer; the point reproduced is the noise behaviour around it.

use crate::datasets;
use crate::report::{f, header};
use dpnet_analyses::example_s23::{heavy_hosts_to_port, heavy_hosts_to_port_exact};
use pinq::{Accountant, NoiseSource, Queryable};

/// Result of the worked example.
#[derive(Debug, Clone)]
pub struct Example23 {
    /// Noise-free answer on the synthetic trace.
    pub exact: usize,
    /// One private draw at ε = 0.1.
    pub single_draw: f64,
    /// Mean absolute error over repeated draws.
    pub mean_abs_error: f64,
}

/// Run the example: one headline draw plus an error characterization.
pub fn run(trials: usize) -> (Example23, String) {
    let trace = datasets::hotspot();
    let exact = heavy_hosts_to_port_exact(&trace.packets, 80, 1024);

    let budget = Accountant::new(1e9);
    let noise = NoiseSource::seeded(0x23);
    let q = Queryable::new(trace.packets.clone(), &budget, &noise);

    let single_draw = heavy_hosts_to_port(&q, 80, 1024, 0.1).expect("budget");
    let errors: Vec<f64> = (0..trials)
        .map(|_| (heavy_hosts_to_port(&q, 80, 1024, 0.1).expect("budget") - exact as f64).abs())
        .collect();
    let mean_abs_error = dpnet_toolkit::mean(&errors);

    let result = Example23 {
        exact,
        single_draw,
        mean_abs_error,
    };
    let mut out = header("E-S23", "distinct heavy hosts to port 80 (paper §2.3)");
    out.push_str(&format!(
        "paper:    noise-free 120, one eps=0.1 run gave 121, expected error ±10\n\
         measured: noise-free {}, one eps=0.1 run gave {}, mean abs error ±{} ({} trials)\n",
        exact,
        f(single_draw),
        f(mean_abs_error),
        trials
    ));
    (result, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_reproduces_the_error_scale() {
        let (r, report) = run(400);
        assert!(r.exact > 100, "trace should have many heavy hosts");
        // Mean |Lap(10)| = 10, the paper's ±10.
        assert!(
            (r.mean_abs_error - 10.0).abs() < 2.5,
            "mean abs error {}",
            r.mean_abs_error
        );
        assert!((r.single_draw - r.exact as f64).abs() < 60.0);
        assert!(report.contains("E-S23"));
    }
}
