//! E-ABL — ablations of the design choices DESIGN.md calls out.
//!
//! 1. **Partition vs sequential composition** — the same per-port counting
//!    done naively (`Where`+`Count` per port, costs add) and with
//!    `Partition` (costs max): identical answers, ~n× budget difference.
//! 2. **Privacy–accuracy sweep** — the packet-length CDF's relative RMSE
//!    across a dense ε grid, tracing the trade-off curve the paper's three
//!    ε points sample.

use crate::datasets;
use crate::report::{f, header, pct, Table};
use dpnet_analyses::packet_dist::{packet_length_cdf, packet_length_cdf_exact};
use dpnet_toolkit::stats::relative_rmse;
use pinq::{Accountant, NoiseSource, Queryable};

/// Results of the partition-vs-sequential ablation.
#[derive(Debug, Clone)]
pub struct CompositionAblation {
    /// Number of port bins counted.
    pub bins: usize,
    /// ε per count.
    pub eps: f64,
    /// Budget consumed by the sequential (Where+Count) approach.
    pub sequential_cost: f64,
    /// Budget consumed by the Partition approach.
    pub partition_cost: f64,
}

/// The ε grid of the accuracy sweep.
pub const SWEEP: [f64; 8] = [0.01, 0.03, 0.1, 0.3, 1.0, 3.0, 10.0, 30.0];

/// Run both ablations.
pub fn run() -> ((CompositionAblation, Vec<(f64, f64)>), String) {
    let trace = datasets::hotspot();
    let noise = NoiseSource::seeded(0xab1);

    // ---- 1: composition ----------------------------------------------------
    let ports: Vec<u16> = vec![80, 443, 53, 22, 25, 110, 143, 993, 445, 139, 8080, 123];
    let eps = 0.1;

    let seq_budget = Accountant::new(1e9);
    let q = Queryable::new(trace.packets.clone(), &seq_budget, &noise);
    let mut seq_counts = Vec::new();
    for &port in &ports {
        seq_counts.push(
            q.filter(move |p| p.dst_port == port)
                .noisy_count(eps)
                .expect("budget"),
        );
    }
    let sequential_cost = seq_budget.spent();

    let part_budget = Accountant::new(1e9);
    let q = Queryable::new(trace.packets.clone(), &part_budget, &noise);
    let parts = q.partition(&ports, |p| p.dst_port).expect("distinct ports");
    let mut part_counts = Vec::new();
    for part in &parts {
        part_counts.push(part.noisy_count(eps).expect("budget"));
    }
    let partition_cost = part_budget.spent();

    let composition = CompositionAblation {
        bins: ports.len(),
        eps,
        sequential_cost,
        partition_cost,
    };

    // ---- 2: ε sweep ---------------------------------------------------------
    let exact = packet_length_cdf_exact(&trace.packets, 1500, 10);
    let sweep_budget = Accountant::new(1e9);
    let q = Queryable::new(trace.packets.clone(), &sweep_budget, &noise);
    let mut sweep = Vec::new();
    for &e in &SWEEP {
        let cdf = packet_length_cdf(&q, 1500, 10, e).expect("budget");
        sweep.push((e, relative_rmse(&cdf.cdf, &exact)));
    }

    let mut out = header(
        "E-ABL",
        "design ablations: composition rule and privacy-accuracy sweep",
    );
    out.push_str(&format!(
        "1) per-port counts, {} ports at eps={} each:\n\
           sequential (Where+Count): budget {}   |   Partition: budget {}\n\
           same answers, {}x budget difference — the parallel-composition rule\n\n",
        composition.bins,
        composition.eps,
        f(sequential_cost),
        f(partition_cost),
        f(sequential_cost / partition_cost)
    ));
    out.push_str("2) packet-length CDF accuracy across eps:\n");
    let mut table = Table::new(&["eps", "rel RMSE"]);
    for (e, r) in &sweep {
        table.row(vec![e.to_string(), pct(*r)]);
    }
    out.push_str(&table.render());
    out.push_str("\nerror falls ~1/eps until it hits the data's own resolution\n");
    ((composition, sweep), out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn composition_and_sweep_behave() {
        let ((comp, sweep), report) = run();
        // Sequential costs ~bins ×; Partition costs one ε.
        assert!((comp.partition_cost - comp.eps).abs() < 1e-9);
        assert!((comp.sequential_cost - comp.eps * comp.bins as f64).abs() < 1e-9);
        // The sweep is (weakly) monotone decreasing in ε overall.
        assert!(sweep[0].1 > sweep.last().unwrap().1 * 3.0);
        // And tiny at the weak end.
        assert!(sweep.last().unwrap().1 < 0.01);
        assert!(report.contains("E-ABL"));
    }
}
