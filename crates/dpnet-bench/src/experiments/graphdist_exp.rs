//! E-GRAPH — §5.3's introductory claims about graph-level statistics.
//!
//! "Distributions of in and out degrees … are relatively easy to produce;
//! some useful properties, such as the diameter of the graph or the
//! maximum degree, are difficult or impossible." Both halves measured:
//! degree CDFs at three privacy levels, and the max-degree release shown
//! flattened against its true value.

use crate::datasets::{self, EPSILONS};
use crate::report::{f, header, pct, Table};
use dpnet_analyses::graph_dist::{
    max_degree_exact, noisy_max_degree, out_degree_cdf, out_degree_cdf_exact,
};
use dpnet_toolkit::stats::relative_rmse;
use pinq::{Accountant, NoiseSource, Queryable};

/// Results of the graph-distribution experiment.
#[derive(Debug, Clone)]
pub struct GraphDistResult {
    /// (ε, relative RMSE) of the out-degree CDF.
    pub degree_rmse: Vec<(f64, f64)>,
    /// True maximum out-degree.
    pub max_degree_true: usize,
    /// (ε, released "max degree") per level — expected to flatten.
    pub max_degree_released: Vec<(f64, f64)>,
}

/// Run on the standard Hotspot trace.
pub fn run() -> (GraphDistResult, String) {
    let trace = datasets::hotspot();
    let exact = out_degree_cdf_exact(&trace.packets, None, 60);
    let max_true = max_degree_exact(&trace.packets);

    let budget = Accountant::new(1e9);
    let noise = NoiseSource::seeded(0x3dc);
    let q = Queryable::new(trace.packets.clone(), &budget, &noise);

    let mut degree_rmse = Vec::new();
    let mut max_released = Vec::new();
    for &eps in &EPSILONS {
        let cdf = out_degree_cdf(&q, None, 60, eps).expect("budget");
        degree_rmse.push((eps, relative_rmse(&cdf.cdf, &exact)));
        let m = noisy_max_degree(&q, 800, eps).expect("budget");
        max_released.push((eps, m));
    }

    let result = GraphDistResult {
        degree_rmse: degree_rmse.clone(),
        max_degree_true: max_true,
        max_degree_released: max_released.clone(),
    };

    let mut out = header(
        "E-GRAPH",
        "degree distributions easy, max degree impossible (paper §5.3 intro)",
    );
    let mut table = Table::new(&["eps", "out-degree CDF rel RMSE", "released max degree"]);
    for ((eps, r), (_, m)) in degree_rmse.iter().zip(&max_released) {
        table.row(vec![eps.to_string(), pct(*r), f(*m)]);
    }
    out.push_str(&table.render());
    out.push_str(&format!(
        "\ntrue maximum out-degree: {max_true}\n\
         paper shape: distributional statistics accurate at every eps; the maximum\n\
         'relies on a handful of records' and flattens toward the bulk under DP\n",
    ));
    (result, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degrees_easy_max_impossible() {
        let (r, report) = run();
        // Degree CDFs accurate from medium privacy.
        assert!(r.degree_rmse[1].1 < 0.05, "eps=1: {}", r.degree_rmse[1].1);
        assert!(r.degree_rmse[2].1 < 0.01, "eps=10: {}", r.degree_rmse[2].1);
        // The max-degree release collapses far below the truth at all eps.
        for &(eps, m) in &r.max_degree_released {
            assert!(
                m < r.max_degree_true as f64 * 0.5,
                "eps {eps}: released {m} vs true {}",
                r.max_degree_true
            );
        }
        assert!(report.contains("E-GRAPH"));
    }
}
