//! E-T1 — paper Table 1: noise calibration of the PINQ aggregations.
//!
//! Empirically measures the noise each aggregation adds and checks it
//! against the paper's stated calibration:
//!
//! * Count, Sum: noise std `√2/ε`
//! * Average: noise std `√8/(εn)`
//! * Median: returned value splits the input into halves differing by
//!   `≈ √2/ε` ranks

use crate::report::{f, header, Table};
use pinq::{Accountant, NoiseSource, Queryable};

/// Measured-vs-theory row for one aggregation.
#[derive(Debug, Clone)]
pub struct NoiseRow {
    /// Aggregation name.
    pub op: &'static str,
    /// ε used.
    pub eps: f64,
    /// Empirical noise standard deviation (or rank gap for median).
    pub measured: f64,
    /// The paper's theoretical value.
    pub theory: f64,
}

/// Run the calibration measurement: `trials` repetitions per op and ε.
pub fn run(trials: usize) -> (Vec<NoiseRow>, String) {
    let n = 10_000usize;
    let values: Vec<f64> = (0..n).map(|i| (i % 100) as f64 / 100.0).collect();
    let mut rows = Vec::new();

    for &eps in &[0.1f64, 1.0] {
        let budget = Accountant::new(1e9);
        let noise = NoiseSource::seeded(0xab1e ^ eps.to_bits());
        let q = Queryable::new(values.clone(), &budget, &noise);

        // Count.
        let errs: Vec<f64> = (0..trials)
            .map(|_| q.noisy_count(eps).expect("budget is huge") - n as f64)
            .collect();
        rows.push(NoiseRow {
            op: "Count",
            eps,
            measured: dpnet_toolkit::std_dev(&errs),
            theory: (2.0f64).sqrt() / eps,
        });

        // Sum (values clamped to [-1,1]; ours are within already).
        let true_sum: f64 = values.iter().sum();
        let errs: Vec<f64> = (0..trials)
            .map(|_| q.noisy_sum(eps, |&v| v).expect("budget") - true_sum)
            .collect();
        rows.push(NoiseRow {
            op: "Sum",
            eps,
            measured: dpnet_toolkit::std_dev(&errs),
            theory: (2.0f64).sqrt() / eps,
        });

        // Average.
        let true_avg = true_sum / n as f64;
        let errs: Vec<f64> = (0..trials)
            .map(|_| q.noisy_average(eps, |&v| v).expect("budget") - true_avg)
            .collect();
        rows.push(NoiseRow {
            op: "Average",
            eps,
            measured: dpnet_toolkit::std_dev(&errs),
            theory: (8.0f64).sqrt() / (eps * n as f64),
        });

        // Median: measure the rank imbalance of the returned cut point.
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let gaps: Vec<f64> = (0..trials)
            .map(|_| {
                let m = q.noisy_median(eps, 0.0, 1.0, 200, |&v| v).expect("budget");
                let below = sorted.partition_point(|&v| v < m) as f64;
                (below - n as f64 / 2.0).abs()
            })
            .collect();
        rows.push(NoiseRow {
            op: "Median (rank gap)",
            eps,
            measured: dpnet_toolkit::mean(&gaps),
            theory: (2.0f64).sqrt() / eps,
        });
    }

    let mut table = Table::new(&["operation", "eps", "measured", "theory (Table 1)"]);
    for r in &rows {
        table.row(vec![r.op.to_string(), f(r.eps), f(r.measured), f(r.theory)]);
    }
    let mut out = header(
        "E-T1",
        "noise calibration of PINQ aggregations (paper Table 1)",
    );
    out.push_str(&format!("{} records, {} trials per cell\n", n, trials));
    out.push_str(&table.render());
    (rows, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_noise_matches_theory() {
        let (rows, report) = run(3000);
        assert!(report.contains("E-T1"));
        for r in rows {
            if r.op == "Median (rank gap)" {
                // Median's rank gap: same order as theory (grid
                // discretization adds up to one 50-rank cell at n=10k/200).
                assert!(
                    r.measured < r.theory + 60.0,
                    "{} at eps {}: {} vs {}",
                    r.op,
                    r.eps,
                    r.measured,
                    r.theory
                );
            } else {
                let rel = (r.measured - r.theory).abs() / r.theory;
                assert!(
                    rel < 0.10,
                    "{} at eps {}: measured {} vs theory {}",
                    r.op,
                    r.eps,
                    r.measured,
                    r.theory
                );
            }
        }
    }
}
