//! E-CLS — §5.1.3: private traffic classification.
//!
//! The paper surmises classification algorithms "can also be implemented in
//! the differentially private manner"; this experiment confirms it: an
//! example enterprise policy (nine rules over the classic five dimensions)
//! is applied as a transformation, and per-rule traffic shares are released
//! via one `Partition` — the whole histogram for `2ε`.

use crate::datasets::{self, EPSILONS};
use crate::report::{f, header, Table};
use dpnet_analyses::classification::{rule_traffic, rule_traffic_exact};
use dpnet_trace::classify::example_ruleset;
use pinq::{Accountant, NoiseSource, Queryable};

/// Per-ε worst-case relative error across rules with substantial traffic.
#[derive(Debug, Clone)]
pub struct ClassifyResult {
    /// Exact (rule, packets) pairs.
    pub exact: Vec<(String, usize)>,
    /// (ε, worst relative packet-count error over rules with ≥ 100
    /// packets).
    pub worst_rel_err: Vec<(f64, f64)>,
}

/// Run on the standard Hotspot trace.
pub fn run() -> (ClassifyResult, String) {
    let trace = datasets::hotspot();
    let cls = example_ruleset();
    let exact_full = rule_traffic_exact(&trace.packets, &cls);
    let exact: Vec<(String, usize)> = exact_full.iter().map(|(n, c, _)| (n.clone(), *c)).collect();

    let budget = Accountant::new(1e9);
    let noise = NoiseSource::seeded(0xc15);
    let q = Queryable::new(trace.packets.clone(), &budget, &noise);

    let mut worst = Vec::new();
    let mut sample = Vec::new();
    for &eps in &EPSILONS {
        let shares = rule_traffic(&q, &cls, 1500.0, eps).expect("budget");
        let mut w: f64 = 0.0;
        for (s, (_, n)) in shares.iter().zip(&exact) {
            if *n >= 100 {
                w = w.max((s.packets - *n as f64).abs() / *n as f64);
            }
        }
        worst.push((eps, w));
        if eps == 0.1 {
            sample = shares;
        }
    }

    let result = ClassifyResult {
        exact: exact.clone(),
        worst_rel_err: worst.clone(),
    };

    let mut out = header("E-CLS", "private traffic classification (paper §5.1.3)");
    let mut table = Table::new(&["rule", "exact packets", "private (eps=0.1)"]);
    for (s, (name, n)) in sample.iter().zip(&exact) {
        table.row(vec![name.clone(), n.to_string(), f(s.packets)]);
    }
    out.push_str(&table.render());
    out.push_str("\nworst relative error over busy rules: ");
    for (eps, w) in &worst {
        out.push_str(&format!("eps={eps}: {:.3}%  ", w * 100.0));
    }
    out.push_str(
        "\npaper shape: classification is a transformation; the released per-rule\n\
         histogram is accurate even at strong privacy (one partition, 2 eps total)\n",
    );
    (result, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_is_accurate_at_strong_privacy() {
        let (r, report) = run();
        // Busy rules are measured within 2% even at eps=0.1.
        assert!(
            r.worst_rel_err[0].1 < 0.02,
            "eps=0.1 worst error {}",
            r.worst_rel_err[0].1
        );
        assert!(r.worst_rel_err[2].1 < 0.001);
        // The policy sees real traffic on several rules.
        let busy = r.exact.iter().filter(|(_, n)| *n >= 100).count();
        assert!(busy >= 4, "only {busy} busy rules");
        assert!(report.contains("E-CLS"));
    }
}
