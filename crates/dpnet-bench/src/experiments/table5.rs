//! E-T5 — paper Table 5: private stepping-stone detection per privacy level.
//!
//! For each ε, the top-20 candidate pairs by noisy bucketed correlation are
//! scored against the faithful non-private implementation (the paper's Perl
//! script): mean ± std of the noisy correlations, mean ± std of the exact
//! correlations of those same pairs, and the number of false positives
//! (pairs with no real correlation — exact correlation below the original
//! algorithm's 0.3 threshold).
//!
//! Paper's Table 5: ε = 0.1 → noisy 0.06±0.07, 18/20 false positives;
//! ε = 1.0 → noisy 0.72±0.10, 1/20; ε = 10.0 → 0.78±0.03, 2/20.

use crate::datasets::{self, EPSILONS};
use crate::report::{f, header, Table};
use dpnet_analyses::stepping_stones::{
    exact_pair_correlation, stepping_stones, SteppingStoneConfig,
};
use dpnet_toolkit::stats::{mean, std_dev};
use pinq::{Accountant, NoiseSource, Queryable};

/// One row of the reproduced Table 5.
#[derive(Debug, Clone)]
pub struct Table5Row {
    /// ε used per aggregation.
    pub eps: f64,
    /// Mean of the noisy correlations of the reported pairs.
    pub noisy_mean: f64,
    /// Std of the noisy correlations.
    pub noisy_std: f64,
    /// Mean of the exact correlations of the same pairs.
    pub exact_mean: f64,
    /// Std of the exact correlations.
    pub exact_std: f64,
    /// Pairs with exact correlation below 0.3 (false positives).
    pub false_positives: usize,
    /// Number of pairs reported (≤ top-20).
    pub pairs: usize,
}

/// Correlation threshold of the original Zhang-Paxson algorithm.
pub const CORRELATION_THRESHOLD: f64 = 0.3;

/// Run Table 5 over the standard Hotspot trace.
pub fn run() -> (Vec<Table5Row>, String) {
    run_on(datasets::hotspot())
}

/// Run Table 5 over a caller-supplied trace (used by tests to keep
/// debug-mode runtimes reasonable).
pub fn run_on(trace: &dpnet_trace::gen::hotspot::HotspotTrace) -> (Vec<Table5Row>, String) {
    let mut rows = Vec::new();

    for &eps in &EPSILONS {
        let budget = Accountant::new(1e9);
        let noise = NoiseSource::seeded(0x7ab1e5 ^ eps.to_bits());
        let q = Queryable::new(trace.packets.clone(), &budget, &noise);
        let cfg = SteppingStoneConfig {
            eps,
            flow_threshold: 80.0,
            pair_threshold: 25.0,
            top_k: 20,
            ..SteppingStoneConfig::default()
        };
        let pairs = stepping_stones(&q, &cfg).expect("budget");

        let noisy: Vec<f64> = pairs.iter().map(|p| p.noisy_correlation).collect();
        let exact: Vec<f64> = pairs
            .iter()
            .map(|p| {
                exact_pair_correlation(
                    &trace.packets,
                    &p.flow_a,
                    &p.flow_b,
                    cfg.t_idle_us,
                    cfg.delta_us,
                )
                .max(exact_pair_correlation(
                    &trace.packets,
                    &p.flow_b,
                    &p.flow_a,
                    cfg.t_idle_us,
                    cfg.delta_us,
                ))
            })
            .collect();
        let false_positives = exact.iter().filter(|&&c| c < CORRELATION_THRESHOLD).count();
        rows.push(Table5Row {
            eps,
            noisy_mean: mean(&noisy),
            noisy_std: std_dev(&noisy),
            exact_mean: mean(&exact),
            exact_std: std_dev(&exact),
            false_positives,
            pairs: pairs.len(),
        });
    }

    let mut table = Table::new(&["eps", "noisy corr", "noise-free corr", "false positives"]);
    for r in &rows {
        table.row(vec![
            r.eps.to_string(),
            format!("{} ± {}", f(r.noisy_mean), f(r.noisy_std)),
            format!("{} ± {}", f(r.exact_mean), f(r.exact_std)),
            format!("{}/{}", r.false_positives, r.pairs),
        ]);
    }
    let mut out = header("E-T5", "private stepping-stone detection (paper Table 5)");
    out.push_str(&table.render());
    out.push_str(
        "\npaper: eps=0.1 → 0.06±0.07, 18/20 FP; eps=1.0 → 0.72±0.10, 1/20; eps=10 → 0.78±0.03, 2/20\n\
         paper shape: strong privacy floods the top pairs with false positives;\n\
         medium and weak privacy find genuinely correlated pairs above the 0.3 threshold\n",
    );
    (rows, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_shape_holds() {
        // Reduced trace with the same planted stepping-stone structure.
        let trace = dpnet_trace::gen::hotspot::generate(dpnet_trace::gen::hotspot::HotspotConfig {
            web_flows: 150,
            worms_above_threshold: 1,
            worms_below_threshold: 1,
            stepping_stone_pairs: 8,
            interactive_decoys: 16,
            itemset_hosts: 10,
            ..Default::default()
        });
        let (rows, report) = run_on(&trace);
        assert_eq!(rows.len(), 3);
        let weak = &rows[2]; // eps = 10
        let medium = &rows[1];
        let strong = &rows[0];
        // Weak and medium privacy find real stones: high exact correlation,
        // few false positives.
        assert!(weak.pairs >= 5, "weak privacy found {} pairs", weak.pairs);
        assert!(weak.exact_mean > 0.5, "weak exact mean {}", weak.exact_mean);
        assert!(
            (weak.false_positives as f64) < 0.3 * weak.pairs as f64,
            "weak FPs {}/{}",
            weak.false_positives,
            weak.pairs
        );
        assert!(
            medium.exact_mean > 0.4,
            "medium exact mean {}",
            medium.exact_mean
        );
        // Strong privacy degrades: lower exact correlation among reported
        // pairs or a higher false-positive rate than weak privacy.
        let strong_fp_rate = strong.false_positives as f64 / strong.pairs.max(1) as f64;
        let weak_fp_rate = weak.false_positives as f64 / weak.pairs.max(1) as f64;
        assert!(
            strong.exact_mean < weak.exact_mean || strong_fp_rate > weak_fp_rate,
            "strong privacy did not degrade: {strong:?} vs {weak:?}"
        );
        assert!(report.contains("E-T5"));
    }
}
