//! E-F1 — paper Figure 1: the three CDF estimators on retransmission delays.
//!
//! The measured quantity is the time difference between a packet and its
//! retransmission in the Hotspot trace, discretized to 1 ms over 0–250 ms.
//! All three estimators are given the same *total* privacy allotment, so:
//!
//! * cdf1 splits it across 250 direct cumulative counts — error ∝ |buckets|;
//! * cdf2 spends it once via `Partition` — error ∝ √|buckets|;
//! * cdf3 spends it across log₂ levels — error ∝ log^{3/2}|buckets|.
//!
//! The paper's Figure 1(a): cdf1's error is "incredibly high"; cdf2 and cdf3
//! are indistinguishable from the truth at full scale.

use crate::datasets;
use crate::report::{f, header, pct, Table};
use dpnet_toolkit::cdf::{cdf_hierarchical, cdf_naive, cdf_partition, noise_free_cdf};
use dpnet_toolkit::stats::rmse;
use dpnet_trace::{FlowKey, Packet};
use pinq::{Accountant, ExecCtx, ExecPool, NoiseSource, Queryable, Result};

/// Number of 1 ms buckets: 0–250 ms, as in the paper.
pub const BUCKETS: usize = 250;

/// Per-method results.
#[derive(Debug, Clone)]
pub struct Fig1 {
    /// Noise-free CDF.
    pub truth: Vec<f64>,
    /// cdf1 estimate.
    pub cdf1: Vec<f64>,
    /// cdf2 estimate.
    pub cdf2: Vec<f64>,
    /// cdf3 estimate.
    pub cdf3: Vec<f64>,
}

/// Build the protected retransmission-delay dataset (in 1 ms buckets) from
/// protected packets: group by (flow, seq), difference consecutive
/// transmissions, keep the first retransmission delay per group.
pub fn private_retx_delays(packets: &Queryable<Packet>) -> Queryable<usize> {
    packets
        .filter(|p| FlowKey::of(p).is_tcp() && !p.flags.is_syn() && !p.payload.is_empty())
        .group_by(|p| (FlowKey::of(p), p.seq))
        .filter(|g| g.items.len() >= 2)
        .map(|g| {
            let mut times: Vec<u64> = g.items.iter().map(|p| p.ts_us).collect();
            times.sort_unstable();
            let delay_ms = (times[1] - times[0]) / 1000;
            (delay_ms as usize).min(BUCKETS - 1)
        })
}

/// Run Figure 1 with the given total ε per estimator.
pub fn run(eps_total: f64) -> Result<(Fig1, String)> {
    run_ctx(eps_total, ExecCtx::Sequential)
}

/// [`run`] on a worker pool. The parallel CDF estimators are bit-identical
/// to the sequential ones (noise draws never move off the calling thread),
/// so the output is the same for every worker count.
pub fn run_with(eps_total: f64, pool: &ExecPool) -> Result<(Fig1, String)> {
    run_ctx(eps_total, ExecCtx::pool(pool))
}

fn run_ctx(eps_total: f64, ctx: ExecCtx) -> Result<(Fig1, String)> {
    let trace = datasets::hotspot();

    // Noise-free reference from the exact reference computation.
    let exact_values: Vec<usize> = dpnet_trace::tcp::retransmission_delays(&trace.packets)
        .into_iter()
        .map(|us| ((us / 1000) as usize).min(BUCKETS - 1))
        .collect();
    let truth = noise_free_cdf(&exact_values, BUCKETS);

    let budget = Accountant::new(1e9);
    let noise = NoiseSource::seeded(0xf1);
    // Shared shards: wrapping is Arc bumps, not a trace copy, and the flat
    // order matches `trace.packets`, so releases are unchanged.
    let q = Queryable::from_shared_shards(datasets::hotspot_shards().clone(), &budget, &noise)
        .with_ctx(ctx);
    let delays = private_retx_delays(&q);

    let levels = (BUCKETS.next_power_of_two().trailing_zeros() + 1) as f64;
    let cdf1 = cdf_naive(&delays, BUCKETS, eps_total / BUCKETS as f64)?;
    let cdf2 = cdf_partition(&delays, BUCKETS, eps_total)?;
    let cdf3 = cdf_hierarchical(&delays, BUCKETS, eps_total / levels)?;

    let result = Fig1 {
        truth: truth.clone(),
        cdf1: cdf1.clone(),
        cdf2: cdf2.clone(),
        cdf3: cdf3.clone(),
    };

    let mut out = header(
        "E-F1",
        "three CDF estimators on retransmission delays (paper Figure 1)",
    );
    out.push_str(&format!(
        "{} retransmission pairs, 1 ms buckets over 0-250 ms, total eps {} per method\n\n",
        exact_values.len(),
        eps_total
    ));
    let mut table = Table::new(&["ms", "noise-free", "cdf1", "cdf2", "cdf3"]);
    for ms in (24..BUCKETS).step_by(25) {
        table.row(vec![
            ms.to_string(),
            f(truth[ms]),
            f(cdf1[ms]),
            f(cdf2[ms]),
            f(cdf3[ms]),
        ]);
    }
    out.push_str(&table.render());
    // Normalized RMSE: absolute RMSE over the curve divided by the total
    // count, so empty early buckets do not blow a relative metric up.
    let total = truth.last().copied().unwrap_or(1.0).max(1.0);
    out.push_str(&format!(
        "\nRMSE / total vs noise-free: cdf1 {}, cdf2 {}, cdf3 {}\n\
         paper shape: cdf1 error incredibly high; cdf2/cdf3 indistinguishable from truth\n",
        pct(rmse(&cdf1, &truth) / total),
        pct(rmse(&cdf2, &truth) / total),
        pct(rmse(&cdf3, &truth) / total),
    ));
    Ok((result, out))
}

/// Normalized error of an estimate against the truth: RMSE over the curve
/// divided by the total count.
pub fn normalized_error(estimate: &[f64], truth: &[f64]) -> f64 {
    let total = truth.last().copied().unwrap_or(1.0).max(1.0);
    rmse(estimate, truth) / total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_shape_holds() {
        let (r, report) = run(1.0).unwrap();
        let e1 = normalized_error(&r.cdf1, &r.truth);
        let e2 = normalized_error(&r.cdf2, &r.truth);
        let e3 = normalized_error(&r.cdf3, &r.truth);
        // cdf1 is far worse than both partition-based estimators.
        assert!(e1 > 3.0 * e2, "cdf1 {e1} vs cdf2 {e2}");
        assert!(e1 > 3.0 * e3, "cdf1 {e1} vs cdf3 {e3}");
        // cdf2/cdf3 are accurate (a few percent of total mass).
        assert!(e2 < 0.05, "cdf2 normalized error {e2}");
        assert!(e3 < 0.08, "cdf3 normalized error {e3}");
        assert!(report.contains("E-F1"));
    }

    #[test]
    fn parallel_run_is_bit_identical_to_sequential() {
        let (seq, _) = run(1.0).unwrap();
        let pool = ExecPool::new(2).unwrap();
        let (par, _) = run_with(1.0, &pool).unwrap();
        assert_eq!(seq.cdf1, par.cdf1);
        assert_eq!(seq.cdf2, par.cdf2);
        assert_eq!(seq.cdf3, par.cdf3);
    }
}
