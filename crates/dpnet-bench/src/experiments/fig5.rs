//! E-F5 — paper Figure 5: clustering error vs. iteration for passive
//! topology mapping.
//!
//! Nine centers, ten iterations, all privacy levels initialized from the
//! same random vectors. The y-axis is the k-means objective (mean distance
//! from each point to its nearest center) evaluated on the exact imputed
//! vectors. The paper: ε = 0.1 ends ~50% worse than noise-free; ε = 1 is
//! close; ε = 10 is nearly identical. Also includes the §5.3.2 ablation —
//! Gaussian EM's extra moment query makes it *less* accurate than k-means
//! at the same per-iteration budget.

use crate::datasets;
use crate::report::{f, header, Table};
use dpnet_analyses::topology::{private_topology_clusters, TopologyConfig};
use dpnet_toolkit::kmeans::{clustering_rmse, kmeans_baseline, random_centers};
use pinq::{Accountant, NoiseSource, Queryable};

/// Results of the Figure 5 reproduction.
#[derive(Debug, Clone)]
pub struct Fig5 {
    /// Objective per iteration for the noise-free baseline.
    pub baseline: Vec<f64>,
    /// (ε, objective per iteration) per privacy level.
    pub private: Vec<(f64, Vec<f64>)>,
    /// Gaussian-EM ablation at ε = 1 (objective per iteration).
    pub gaussian_em: Vec<f64>,
}

/// Compute the objective trajectory of a clustering run against the exact
/// vectors.
fn objectives(vectors: &[Vec<f64>], centers: &[Vec<Vec<f64>>]) -> Vec<f64> {
    centers
        .iter()
        .map(|c| clustering_rmse(vectors, c))
        .collect()
}

/// Run Figure 5 on the standard IPscatter dataset.
pub fn run(iterations: usize) -> (Fig5, String) {
    let trace = datasets::scatter();
    let exact_vectors: Vec<Vec<f64>> = trace
        .vectors_mean_imputed()
        .into_iter()
        .map(|(_, v)| v)
        .collect();
    // "initialized to a common random set of vectors for each execution"
    let init = random_centers(9, 38, 5.0, 25.0, 0xf5);

    let base = kmeans_baseline(&exact_vectors, iterations, init.clone());
    let baseline = objectives(&exact_vectors, &base.centers);

    let mut private = Vec::new();
    let mut em_curve = Vec::new();
    for &eps in &crate::datasets::EPSILONS {
        let budget = Accountant::new(1e9);
        let noise = NoiseSource::seeded(0x55 ^ eps.to_bits());
        let q = Queryable::new(trace.records.clone(), &budget, &noise);
        let cfg = TopologyConfig {
            iterations,
            eps_per_iteration: eps,
            ..TopologyConfig::default()
        };
        let traj = private_topology_clusters(&q, &cfg, init.clone()).expect("budget");
        private.push((eps, objectives(&exact_vectors, &traj.centers)));

        if eps == 1.0 {
            let budget = Accountant::new(1e9);
            let noise = NoiseSource::seeded(0x56);
            let q = Queryable::new(trace.records.clone(), &budget, &noise);
            let traj = private_topology_clusters(
                &q,
                &TopologyConfig {
                    gaussian_em: true,
                    ..cfg
                },
                init.clone(),
            )
            .expect("budget");
            em_curve = objectives(&exact_vectors, &traj.centers);
        }
    }

    let result = Fig5 {
        baseline: baseline.clone(),
        private: private.clone(),
        gaussian_em: em_curve.clone(),
    };

    let mut out = header(
        "E-F5",
        "clustering error vs iteration, 9 centers (paper Figure 5)",
    );
    let mut table = Table::new(&[
        "iteration",
        "noise-free",
        "eps=0.1",
        "eps=1",
        "eps=10",
        "EM eps=1",
    ]);
    for i in 0..=iterations {
        table.row(vec![
            i.to_string(),
            f(baseline[i]),
            f(private[0].1[i]),
            f(private[1].1[i]),
            f(private[2].1[i]),
            f(em_curve[i]),
        ]);
    }
    out.push_str(&table.render());
    let last = iterations;
    out.push_str(&format!(
        "\nfinal RMSE ratios vs noise-free: eps=0.1 ×{}, eps=1 ×{}, eps=10 ×{}, EM(eps=1) ×{}\n\
         paper: eps=0.1 ~50% worse; eps=1 close; eps=10 almost identical;\n\
         Gaussian EM costs more per iteration and is consequently less accurate (§5.3.2)\n",
        f(private[0].1[last] / baseline[last]),
        f(private[1].1[last] / baseline[last]),
        f(private[2].1[last] / baseline[last]),
        f(em_curve[last] / baseline[last]),
    ));
    (result, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure5_shape_holds() {
        let (r, report) = run(6);
        let last = 6;
        let base = r.baseline[last];
        let strong = r.private[0].1[last];
        let medium = r.private[1].1[last];
        let weak = r.private[2].1[last];
        // Weak privacy ≈ noise-free.
        assert!(weak < base * 1.10 + 0.2, "weak {weak} vs base {base}");
        // Strong privacy notably worse than weak.
        assert!(strong > weak * 1.15, "strong {strong} vs weak {weak}");
        // Medium sits between (weakly).
        assert!(
            medium <= strong * 1.05,
            "medium {medium} vs strong {strong}"
        );
        // EM at eps=1 is no better than k-means at eps=1 (the ablation).
        let em = r.gaussian_em[last];
        assert!(em >= medium * 0.9, "EM {em} vs k-means {medium}");
        assert!(report.contains("E-F5"));
    }
}
