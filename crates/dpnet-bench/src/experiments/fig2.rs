//! E-F2 — paper Figure 2: packet-length and port CDFs at three privacy
//! levels.
//!
//! The paper's numbers: relative RMSE 0.01% (lengths) and 0.07% (ports) at
//! ε = 0.1, rising to only 0.02% / 0.7% on a tenth of the data; the CDFs
//! preserve the 40 B and 1492 B spikes. Ours reproduce the ordering (error
//! shrinks as ε grows; ports err more than lengths; less data errs more) at
//! our trace scale.

use crate::datasets::{self, EPSILONS};
use crate::report::{header, pct, Table};
use dpnet_analyses::packet_dist::{
    packet_length_cdf, packet_length_cdf_exact, port_cdf, port_cdf_exact,
};
use dpnet_toolkit::stats::relative_rmse;
use pinq::{Accountant, NoiseSource, Queryable};

/// Results of the Figure 2 reproduction.
#[derive(Debug, Clone)]
pub struct Fig2 {
    /// (ε, relative RMSE) for packet lengths on the full trace.
    pub length_rmse: Vec<(f64, f64)>,
    /// (ε, relative RMSE) for ports on the full trace.
    pub port_rmse: Vec<(f64, f64)>,
    /// Relative RMSE at ε = 0.1 on a tenth of the data (lengths, ports).
    pub tenth_data: (f64, f64),
}

/// Run Figure 2: both CDFs at the three privacy levels plus the 1/10-data
/// variant.
pub fn run() -> (Fig2, String) {
    let trace = datasets::hotspot();
    let exact_len = packet_length_cdf_exact(&trace.packets, 1500, 10);
    let exact_port = port_cdf_exact(&trace.packets, 64);

    let budget = Accountant::new(1e9);
    let noise = NoiseSource::seeded(0xf2);
    let q = Queryable::new(trace.packets.clone(), &budget, &noise);

    let mut length_rmse = Vec::new();
    let mut port_rmse = Vec::new();
    for &eps in &EPSILONS {
        let l = packet_length_cdf(&q, 1500, 10, eps).expect("budget");
        let p = port_cdf(&q, 64, eps).expect("budget");
        length_rmse.push((eps, relative_rmse(&l.cdf, &exact_len)));
        port_rmse.push((eps, relative_rmse(&p.cdf, &exact_port)));
    }

    // A tenth of the data at the strongest privacy level.
    let tenth = datasets::hotspot_tenth();
    let exact_len_t = packet_length_cdf_exact(&tenth.packets, 1500, 10);
    let exact_port_t = port_cdf_exact(&tenth.packets, 64);
    let budget_t = Accountant::new(1e9);
    let qt = Queryable::new(tenth.packets.clone(), &budget_t, &noise);
    let lt = packet_length_cdf(&qt, 1500, 10, 0.1).expect("budget");
    let pt = port_cdf(&qt, 64, 0.1).expect("budget");
    let tenth_data = (
        relative_rmse(&lt.cdf, &exact_len_t),
        relative_rmse(&pt.cdf, &exact_port_t),
    );

    let result = Fig2 {
        length_rmse: length_rmse.clone(),
        port_rmse: port_rmse.clone(),
        tenth_data,
    };

    let mut out = header(
        "E-F2",
        "packet-length and port CDFs at three privacy levels (paper Figure 2)",
    );
    let mut table = Table::new(&["eps", "rel RMSE length", "rel RMSE port"]);
    for ((eps, rl), (_, rp)) in length_rmse.iter().zip(&port_rmse) {
        table.row(vec![eps.to_string(), pct(*rl), pct(*rp)]);
    }
    out.push_str(&table.render());
    out.push_str(&format!(
        "\n1/10th data at eps=0.1: length {}, port {}\n\
         paper: 0.01% / 0.07% at eps=0.1 on 7M packets; 0.02% / 0.7% on 1/10th data\n\
         paper shape: errors tiny at all eps; ports err more than lengths; less data errs more\n",
        pct(tenth_data.0),
        pct(tenth_data.1)
    ));
    (result, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_shape_holds() {
        let (r, report) = run();
        // Errors small at every ε (scaled trace → percent-level rather than
        // the paper's hundredths of a percent).
        for &(eps, rmse) in &r.length_rmse {
            assert!(rmse < 0.05, "length rel RMSE {rmse} at eps {eps}");
        }
        // Error decreases (weakly) as ε grows.
        assert!(r.length_rmse[0].1 >= r.length_rmse[2].1);
        // Ports err more than lengths at the strongest privacy.
        assert!(r.port_rmse[0].1 > r.length_rmse[0].1);
        // A tenth of the data errs more than the full trace.
        assert!(r.tenth_data.0 > r.length_rmse[0].1);
        assert!(report.contains("E-F2"));
    }
}
