//! E-RULES — §5.2.3: communication-rule mining (Kandula et al.).
//!
//! The paper reproduced this analysis "with a high fidelity" but omitted
//! results for space; this experiment supplies them. The generator plants
//! two service dependencies — every web fetch is preceded by a DNS lookup
//! to the shared resolver, and fetching from the most popular server
//! usually also touches its CDN companion — and the experiment measures
//! whether private rule mining recovers both, per privacy level.

use crate::datasets::{self, EPSILONS};
use crate::report::{f, header, Table};
use dpnet_analyses::comm_rules::{
    communication_rules, exact_rule_confidence, CommRule, CommRulesConfig,
};
use dpnet_trace::format_ip;
use pinq::{Accountant, NoiseSource, Queryable};

/// Recovery of the two planted rules at one privacy level.
#[derive(Debug, Clone)]
pub struct RulesRow {
    /// ε used per aggregation.
    pub eps: f64,
    /// Rules reported in total.
    pub rules_found: usize,
    /// Whether some web server ⇒ resolver rule was recovered.
    pub dns_rule: bool,
    /// Whether the popular-server ⇒ companion rule was recovered.
    pub companion_rule: bool,
    /// Confidence estimate of the best resolver rule (0 if absent).
    pub dns_confidence: f64,
}

/// Run the experiment on the standard Hotspot trace.
pub fn run() -> (Vec<RulesRow>, String) {
    let trace = datasets::hotspot();
    let dns = trace.truth.dns_server;
    let (popular, companion) = trace.truth.companion_rule;
    let base_cfg = CommRulesConfig::default();

    let mut rows = Vec::new();
    let mut sample_rules: Vec<CommRule> = Vec::new();
    for &eps in &EPSILONS {
        let budget = Accountant::new(1e9);
        let noise = NoiseSource::seeded(0x2e5 ^ eps.to_bits());
        let q = Queryable::new(trace.packets.clone(), &budget, &noise);
        let rules = communication_rules(
            &q,
            &CommRulesConfig {
                eps,
                ..base_cfg.clone()
            },
        )
        .expect("budget");
        let dns_rules: Vec<&CommRule> = rules.iter().filter(|r| r.implied == dns).collect();
        let dns_rule = !dns_rules.is_empty();
        let dns_confidence = dns_rules
            .iter()
            .map(|r| r.confidence)
            .fold(0.0f64, f64::max);
        let companion_found = rules
            .iter()
            .any(|r| r.trigger == popular && r.implied == companion);
        if eps == 1.0 {
            sample_rules = rules.clone();
        }
        rows.push(RulesRow {
            eps,
            rules_found: rules.len(),
            dns_rule,
            companion_rule: companion_found,
            dns_confidence,
        });
    }

    let mut out = header(
        "E-RULES",
        "communication rules, Kandula et al. (paper §5.2.3)",
    );
    let exact_dns = exact_rule_confidence(&trace.packets, &base_cfg, popular, dns);
    out.push_str(&format!(
        "planted: web ⇒ resolver ({}) and {} ⇒ {} (CDN companion)\n\
         exact confidence of popular-server ⇒ resolver: {}\n\n",
        format_ip(dns),
        format_ip(popular),
        format_ip(companion),
        f(exact_dns)
    ));
    let mut table = Table::new(&["eps", "rules", "dns rule", "companion rule", "dns conf"]);
    for r in &rows {
        table.row(vec![
            r.eps.to_string(),
            r.rules_found.to_string(),
            r.dns_rule.to_string(),
            r.companion_rule.to_string(),
            f(r.dns_confidence),
        ]);
    }
    out.push_str(&table.render());
    out.push_str("\ntop rules at eps=1:\n");
    for r in sample_rules.iter().take(6) {
        out.push_str(&format!(
            "  {} ⇒ {}  confidence {}  support {}\n",
            format_ip(r.trigger),
            format_ip(r.implied),
            f(r.confidence),
            f(r.support)
        ));
    }
    out.push_str(
        "\npaper: reproduced 'with a high fidelity', results omitted for space\n\
         shape here: both planted dependencies recovered at medium and weak privacy\n",
    );
    (rows, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planted_rules_recovered_at_medium_privacy() {
        let (rows, report) = run();
        let medium = &rows[1];
        assert!(medium.dns_rule, "resolver rule missed at eps=1");
        assert!(medium.companion_rule, "companion rule missed at eps=1");
        assert!(medium.dns_confidence > 0.4);
        let weak = &rows[2];
        assert!(weak.dns_rule && weak.companion_rule);
        assert!(report.contains("E-RULES"));
    }
}
