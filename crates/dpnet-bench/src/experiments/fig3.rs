//! E-F3 — paper Figure 3: RTT and loss-rate CDFs at three privacy levels.
//!
//! The paper: both flow statistics are "high-fidelity even at the strongest
//! privacy level" — relative RMSE 2.8% (RTT) and 0.2% (loss) at ε = 0.1.
//! Loss errs less than RTT at fixed ε on the paper's data; at our reduced
//! flow counts the absolute figures are larger but the ε-ordering and the
//! usability of the curves reproduce.

use crate::datasets::{self, EPSILONS};
use crate::report::{header, pct, Table};
use dpnet_analyses::flow_stats::{loss_rate_cdf, loss_rate_cdf_exact, rtt_cdf, rtt_cdf_exact};
use dpnet_toolkit::stats::relative_rmse;
use pinq::{Accountant, NoiseSource, Queryable};

/// Results of the Figure 3 reproduction.
#[derive(Debug, Clone)]
pub struct Fig3 {
    /// (ε, relative RMSE) for the RTT CDF.
    pub rtt_rmse: Vec<(f64, f64)>,
    /// (ε, relative RMSE) for the loss-rate CDF.
    pub loss_rmse: Vec<(f64, f64)>,
    /// Number of measured handshakes (noise-free).
    pub handshakes: f64,
    /// Number of measured flows in the loss CDF (noise-free).
    pub loss_flows: f64,
}

/// Run Figure 3 on the standard Hotspot trace.
pub fn run() -> (Fig3, String) {
    let trace = datasets::hotspot();
    let exact_rtt = rtt_cdf_exact(&trace.packets, 600, 10);
    let exact_loss = loss_rate_cdf_exact(&trace.packets, 100, 10);

    let budget = Accountant::new(1e9);
    let noise = NoiseSource::seeded(0xf3);
    let q = Queryable::new(trace.packets.clone(), &budget, &noise);

    let mut rtt_rmse = Vec::new();
    let mut loss_rmse = Vec::new();
    for &eps in &EPSILONS {
        let r = rtt_cdf(&q, 600, 10, eps).expect("budget");
        let l = loss_rate_cdf(&q, 100, 10, eps).expect("budget");
        rtt_rmse.push((eps, relative_rmse(&r.cdf, &exact_rtt)));
        loss_rmse.push((eps, relative_rmse(&l.cdf, &exact_loss)));
    }

    let result = Fig3 {
        rtt_rmse: rtt_rmse.clone(),
        loss_rmse: loss_rmse.clone(),
        handshakes: *exact_rtt.last().unwrap_or(&0.0),
        loss_flows: *exact_loss.last().unwrap_or(&0.0),
    };

    let mut out = header(
        "E-F3",
        "RTT and loss-rate CDFs at three privacy levels (paper Figure 3)",
    );
    out.push_str(&format!(
        "{} handshakes; {} flows with >10 data packets\n\n",
        result.handshakes, result.loss_flows
    ));
    let mut table = Table::new(&["eps", "rel RMSE RTT", "rel RMSE loss"]);
    for ((eps, rr), (_, rl)) in rtt_rmse.iter().zip(&loss_rmse) {
        table.row(vec![eps.to_string(), pct(*rr), pct(*rl)]);
    }
    out.push_str(&table.render());
    out.push_str(
        "\npaper: 2.8% (RTT) and 0.2% (loss) at eps=0.1 on ~100k flows\n\
         paper shape: errors shrink with eps; curves usable at every level\n",
    );
    (result, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure3_shape_holds() {
        let (r, report) = run();
        // Weak privacy is near-exact for both statistics.
        assert!(r.rtt_rmse[2].1 < 0.01, "RTT at eps=10: {}", r.rtt_rmse[2].1);
        assert!(
            r.loss_rmse[2].1 < 0.01,
            "loss at eps=10: {}",
            r.loss_rmse[2].1
        );
        // Error ordering across ε.
        assert!(r.rtt_rmse[0].1 > r.rtt_rmse[2].1);
        assert!(r.loss_rmse[0].1 > r.loss_rmse[2].1);
        // Medium privacy already yields single-digit-percent error.
        assert!(r.rtt_rmse[1].1 < 0.10, "RTT at eps=1: {}", r.rtt_rmse[1].1);
        assert!(report.contains("E-F3"));
    }
}
