//! E-CONN — §5.2.1's missing statistic: packets per connection.
//!
//! The paper could not isolate TCP connections within a 5-tuple flow and
//! proposed that "the data owner could pre-process the traces to add a
//! 'connection id' field". This experiment runs exactly that pipeline:
//! owner-side [`dpnet_trace::connections::annotate_connections`], then the
//! Swing packets-per-connection CDF privately at the three privacy levels.

use crate::datasets::{self, EPSILONS};
use crate::report::{f, header, pct, Table};
use dpnet_analyses::flow_stats::{connection_size_cdf, connection_size_cdf_exact};
use dpnet_toolkit::stats::relative_rmse;
use pinq::{Accountant, NoiseSource, Queryable};

/// Results of the connection-size experiment.
#[derive(Debug, Clone)]
pub struct ConnResult {
    /// Number of TCP connections (noise-free).
    pub connections: f64,
    /// Number of bidirectional conversations carrying them.
    pub conversations: usize,
    /// (ε, relative RMSE of the private CDF).
    pub rmse: Vec<(f64, f64)>,
}

/// Run the experiment on the standard Hotspot trace.
pub fn run() -> (ConnResult, String) {
    let trace = datasets::hotspot();
    let max_packets = 150;
    let exact = connection_size_cdf_exact(&trace.packets, max_packets);
    let conversations = dpnet_trace::flow::assemble_conversations(
        &trace
            .packets
            .iter()
            .filter(|p| p.proto == dpnet_trace::Proto::Tcp)
            .cloned()
            .collect::<Vec<_>>(),
    )
    .len();

    // Owner-side pre-processing, then protection.
    let annotated = dpnet_trace::annotate_connections(&trace.packets);
    let budget = Accountant::new(1e9);
    let noise = NoiseSource::seeded(0xc0);
    let q = Queryable::new(annotated, &budget, &noise);

    let mut rmse = Vec::new();
    for &eps in &EPSILONS {
        let cdf = connection_size_cdf(&q, max_packets, eps).expect("budget");
        rmse.push((eps, relative_rmse(&cdf.cdf, &exact)));
    }

    let result = ConnResult {
        connections: *exact.last().unwrap_or(&0.0),
        conversations,
        rmse: rmse.clone(),
    };

    let mut out = header(
        "E-CONN",
        "packets-per-connection CDF via connection-id pre-processing (§5.2.1)",
    );
    out.push_str(&format!(
        "{} TCP connections carried by {} conversations ({} flows multiplex \
         several connections)\n\n",
        f(result.connections),
        result.conversations,
        trace.truth.multi_connection_flows
    ));
    let mut table = Table::new(&["eps", "rel RMSE"]);
    for (eps, r) in &rmse {
        table.row(vec![eps.to_string(), pct(*r)]);
    }
    out.push_str(&table.render());
    out.push_str(
        "\npaper: 'once connections are identified, the connection-level analyses\n\
         are straightforward' — confirmed: same fidelity profile as the flow CDFs\n",
    );
    (result, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connection_cdf_is_accurate_and_multiplexing_visible() {
        let (r, report) = run();
        // More connections than conversations: the pre-processing resolves
        // what the flow key cannot.
        assert!(r.connections > r.conversations as f64);
        // Medium privacy is already accurate.
        assert!(r.rmse[1].1 < 0.05, "eps=1 rel RMSE {}", r.rmse[1].1);
        assert!(r.rmse[2].1 < 0.01, "eps=10 rel RMSE {}", r.rmse[2].1);
        assert!(report.contains("E-CONN"));
    }
}
