//! E-F4 — paper Figure 4: the norm of anomalous traffic over time.
//!
//! The IspTraffic link×time matrix is measured privately (nested
//! `Partition` + counts — one ε total), PCA residual norms are computed per
//! time bin, and the private curves are compared with the noise-free one.
//! The paper: "all four lines are indistinguishable", relative RMSE 0.17%
//! at ε = 0.1, with anomalies (e.g. at time unit 270) clearly standing out.
//!
//! Scale note: the paper's cells held ~58k packets (15.7 B records), making
//! ε = 0.1 noise invisible; our cells hold ~60, so the strongest level
//! shows an elevated noise floor on *normal* bins while anomalies still
//! stand out at every level.

use crate::datasets::{self, EPSILONS};
use crate::report::{f, header, pct, Table};
use dpnet_analyses::anomaly::{
    anomaly_norms, flag_anomalies, private_anomaly_norms, AnomalyConfig,
};
use dpnet_toolkit::stats::relative_rmse;
use pinq::{Accountant, NoiseSource, Queryable};

/// Results of the Figure 4 reproduction.
#[derive(Debug, Clone)]
pub struct Fig4 {
    /// Noise-free residual norms per time bin.
    pub exact: Vec<f64>,
    /// (ε, private norms) per level.
    pub private: Vec<(f64, Vec<f64>)>,
    /// Planted anomaly windows.
    pub truth_windows: Vec<usize>,
    /// (ε, number of planted anomalies flagged) per level.
    pub detected: Vec<(f64, usize)>,
}

/// Run Figure 4 on the standard IspTraffic dataset.
pub fn run() -> (Fig4, String) {
    let trace = datasets::isp();
    let truth_windows: Vec<usize> = trace.truth.iter().map(|a| a.window as usize).collect();
    let cfg_base = AnomalyConfig {
        links: trace.links,
        windows: trace.windows,
        components: 4,
        sweeps: 60,
        eps: 1.0,
    };

    let exact = anomaly_norms(&trace.matrix_f64(), cfg_base.components, cfg_base.sweeps);
    let records = trace.to_records();

    let mut private = Vec::new();
    let mut detected = Vec::new();
    for &eps in &EPSILONS {
        let budget = Accountant::new(1e9);
        let noise = NoiseSource::seeded(0xf4 ^ eps.to_bits());
        let q = Queryable::new(records.clone(), &budget, &noise);
        let norms = private_anomaly_norms(
            &q,
            &AnomalyConfig {
                eps,
                ..cfg_base.clone()
            },
        )
        .expect("budget");
        let flagged = flag_anomalies(&norms, 8.0);
        let hit = truth_windows.iter().filter(|w| flagged.contains(w)).count();
        detected.push((eps, hit));
        private.push((eps, norms));
    }

    let result = Fig4 {
        exact: exact.clone(),
        private: private.clone(),
        truth_windows: truth_windows.clone(),
        detected: detected.clone(),
    };

    let mut out = header(
        "E-F4",
        "norm of anomalous traffic over time (paper Figure 4)",
    );
    out.push_str(&format!(
        "{} links × {} windows; planted anomalies at windows {:?}\n\n",
        trace.links, trace.windows, truth_windows
    ));
    let mut table = Table::new(&["window", "noise-free", "eps=0.1", "eps=1", "eps=10"]);
    let mut shown: Vec<usize> = truth_windows.clone();
    shown.extend((0..trace.windows).step_by(96)); // context rows
    shown.sort_unstable();
    shown.dedup();
    for w in shown {
        let mark = if truth_windows.contains(&w) { "*" } else { " " };
        table.row(vec![
            format!("{w}{mark}"),
            f(exact[w]),
            f(private[0].1[w]),
            f(private[1].1[w]),
            f(private[2].1[w]),
        ]);
    }
    out.push_str(&table.render());
    for (eps, norms) in &private {
        // Relative RMSE over anomalous bins (where the curve carries
        // signal).
        let paired: (Vec<f64>, Vec<f64>) = exact
            .iter()
            .zip(norms)
            .enumerate()
            .filter(|(w, _)| truth_windows.contains(w))
            .map(|(_, (e, p))| (*p, *e))
            .unzip();
        out.push_str(&format!(
            "eps={eps}: rel RMSE on anomalous bins {}, detected {}/{}\n",
            pct(relative_rmse(&paired.0, &paired.1)),
            detected
                .iter()
                .find(|(e, _)| e == eps)
                .map(|(_, d)| *d)
                .unwrap_or(0),
            truth_windows.len()
        ));
    }
    out.push_str(
        "(* = planted anomaly)\npaper: all four curves indistinguishable; rel RMSE 0.17% at eps=0.1\n\
         paper shape: anomalies stand out at every privacy level\n",
    );
    (result, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets;

    /// The full paper-scale run is minutes of work; the unit test runs the
    /// same pipeline on the reduced dataset.
    #[test]
    fn figure4_shape_holds_small() {
        let trace = datasets::isp_small();
        let truth: Vec<usize> = trace.truth.iter().map(|a| a.window as usize).collect();
        let cfg = AnomalyConfig {
            links: trace.links,
            windows: trace.windows,
            components: 2,
            sweeps: 40,
            eps: 1.0,
        };
        let exact = anomaly_norms(&trace.matrix_f64(), 2, 40);
        let budget = Accountant::new(1e9);
        let noise = NoiseSource::seeded(0x44);
        let q = Queryable::new(trace.to_records(), &budget, &noise);
        let norms = private_anomaly_norms(&q, &cfg).expect("budget");
        // The exact run detects most planted anomalies (a weak spike can be
        // partially absorbed by the normal subspace), and the private run
        // detects everything the exact run does — the paper's actual claim.
        let flagged_exact = flag_anomalies(&exact, 8.0);
        let flagged_priv = flag_anomalies(&norms, 8.0);
        let exact_hits: Vec<usize> = truth
            .iter()
            .filter(|w| flagged_exact.contains(w))
            .cloned()
            .collect();
        assert!(
            exact_hits.len() * 2 > truth.len(),
            "exact run detected only {}/{}",
            exact_hits.len(),
            truth.len()
        );
        for w in &exact_hits {
            assert!(flagged_priv.contains(w), "private missed window {w}");
        }
    }
}
