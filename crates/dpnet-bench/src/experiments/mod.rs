//! One module per paper artifact — each regenerates a table or figure.
//!
//! | module | paper artifact |
//! |---|---|
//! | [`table1`] | Table 1 — aggregation noise calibration |
//! | [`example23`] | §2.3 worked example |
//! | [`fig1`] | Figure 1 — three CDF estimators |
//! | [`table4`] | Table 4 — top-10 payload strings |
//! | [`itemsets_exp`] | §4.3 — frequent port itemsets |
//! | [`fig2`] | Figure 2 — packet length & port CDFs |
//! | [`worm_exp`] | §5.1.2 — worm signature recovery |
//! | [`fig3`] | Figure 3 — RTT & loss CDFs |
//! | [`table5`] | Table 5 — stepping-stone detection |
//! | [`fig4`] | Figure 4 — anomalous traffic norm |
//! | [`fig5`] | Figure 5 — clustering error vs iteration |
//! | [`table2`] | Table 2 — analysis summary |
//!
//! Beyond the paper's figures, four experiments cover what the paper
//! mentions but does not show:
//!
//! | module | covers |
//! |---|---|
//! | [`rules_exp`] | §5.2.3 — Kandula communication rules ("results omitted") |
//! | [`connections_exp`] | §5.2.1 — packets-per-connection via owner pre-processing |
//! | [`principals`] | §3 — privacy-principal granularity cost |
//! | [`ablation`] | composition-rule ablation + privacy-accuracy sweep |

pub mod ablation;
pub mod classify_exp;
pub mod connections_exp;
pub mod example23;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod graphdist_exp;
pub mod itemsets_exp;
pub mod principals;
pub mod rules_exp;
pub mod table1;
pub mod table2;
pub mod table4;
pub mod table5;
pub mod worm_exp;
