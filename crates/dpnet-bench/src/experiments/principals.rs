//! E-PRIN — §3's privacy-principal granularity trade-off.
//!
//! The paper's guarantees hold for *records*; if the owner wants to protect
//! higher-level principals (hosts rather than packets), "finer-grained
//! records that share the same higher-level principal can be aggregated
//! into one logical record … But in general, the analysis fidelity will
//! decrease as fewer records are able to contribute to the output
//! statistics."
//!
//! This experiment quantifies that: the same question — how much traffic
//! targets port 80 — asked at the packet principal (count packets) and at
//! the host principal (records are per-host packet bundles; count hosts),
//! at equal ε. The absolute noise is identical (√2/ε), but the host-level
//! true count is ~40× smaller, so its *relative* error is ~40× larger: the
//! cost of the stronger per-host guarantee.

use crate::datasets::{self, EPSILONS};
use crate::report::{f, header, pct, Table};
use dpnet_toolkit::stats::{mean, std_dev};
use pinq::{Accountant, NoiseSource, Queryable};
use std::collections::HashMap;

/// Per-ε comparison of relative errors under the two principals.
#[derive(Debug, Clone)]
pub struct PrincipalRow {
    /// ε used.
    pub eps: f64,
    /// Relative error std at the packet principal.
    pub packet_rel_err: f64,
    /// Relative error std at the host principal.
    pub host_rel_err: f64,
}

/// Run the principal-granularity experiment.
pub fn run(trials: usize) -> (Vec<PrincipalRow>, String) {
    let trace = datasets::hotspot();

    // Packet principal: records are packets.
    let packet_truth = trace.packets.iter().filter(|p| p.dst_port == 80).count() as f64;

    // Host principal (owner-side view): one logical record per source
    // host, carrying all of that host's packets.
    let mut per_host: HashMap<u32, Vec<dpnet_trace::Packet>> = HashMap::new();
    for p in &trace.packets {
        per_host.entry(p.src_ip).or_default().push(p.clone());
    }
    let host_records: Vec<(u32, Vec<dpnet_trace::Packet>)> = per_host.into_iter().collect();
    let host_truth = host_records
        .iter()
        .filter(|(_, pkts)| pkts.iter().any(|p| p.dst_port == 80))
        .count() as f64;

    let noise = NoiseSource::seeded(0x9217);
    let packet_budget = Accountant::new(1e9);
    let packets = Queryable::new(trace.packets.clone(), &packet_budget, &noise);
    let host_budget = Accountant::new(1e9);
    let hosts = Queryable::new(host_records, &host_budget, &noise);

    let mut rows = Vec::new();
    for &eps in &EPSILONS {
        let packet_errs: Vec<f64> = (0..trials)
            .map(|_| {
                let c = packets
                    .filter(|p| p.dst_port == 80)
                    .noisy_count(eps)
                    .expect("budget");
                (c - packet_truth) / packet_truth
            })
            .collect();
        let host_errs: Vec<f64> = (0..trials)
            .map(|_| {
                let c = hosts
                    .filter(|(_, pkts)| pkts.iter().any(|p| p.dst_port == 80))
                    .noisy_count(eps)
                    .expect("budget");
                (c - host_truth) / host_truth
            })
            .collect();
        rows.push(PrincipalRow {
            eps,
            packet_rel_err: std_dev(&packet_errs) + mean(&packet_errs).abs(),
            host_rel_err: std_dev(&host_errs) + mean(&host_errs).abs(),
        });
    }

    let mut out = header(
        "E-PRIN",
        "privacy-principal granularity: packet vs host records (paper §3)",
    );
    out.push_str(&format!(
        "question: traffic to port 80. true counts — packets {}, hosts {}\n\n",
        f(packet_truth),
        f(host_truth)
    ));
    let mut table = Table::new(&[
        "eps",
        "rel err (packet principal)",
        "rel err (host principal)",
    ]);
    for r in &rows {
        table.row(vec![
            r.eps.to_string(),
            pct(r.packet_rel_err),
            pct(r.host_rel_err),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(&format!(
        "\nsame ±√2/ε absolute noise; the host principal protects whole hosts but\n\
         has {}× fewer records, hence proportionally larger relative error —\n\
         the paper's predicted fidelity cost of coarser principals\n",
        f(packet_truth / host_truth)
    ));
    (rows, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_principal_pays_in_relative_error() {
        let (rows, report) = run(200);
        for r in &rows {
            assert!(
                r.host_rel_err > 5.0 * r.packet_rel_err,
                "eps {}: host {} vs packet {}",
                r.eps,
                r.host_rel_err,
                r.packet_rel_err
            );
        }
        // Both shrink as ε grows.
        assert!(rows[0].host_rel_err > rows[2].host_rel_err);
        assert!(report.contains("E-PRIN"));
    }
}
