//! E-T4 — paper Table 4: true vs. estimated counts of the top-10 payload
//! strings.
//!
//! The frequent-string tool (§4.2) discovers the most common payload
//! strings in the Hotspot trace and estimates each one's count. The paper's
//! result: the top 10 are discovered *correctly, in order*, with relative
//! count errors of a few hundredths of a percent.

use crate::datasets;
use crate::report::{f, header, hex, Table};
use dpnet_toolkit::freqstrings::{frequent_strings, FrequentStringsConfig};
use pinq::{Accountant, NoiseSource, Queryable};
use std::collections::HashMap;

/// One row of the reproduced Table 4.
#[derive(Debug, Clone)]
pub struct Table4Row {
    /// The discovered string.
    pub string: Vec<u8>,
    /// True count from the generator's ground truth.
    pub true_count: usize,
    /// Estimated (noisy) count.
    pub est_count: f64,
    /// Relative error in percent.
    pub pct_err: f64,
    /// Whether this string is at the correct rank.
    pub rank_correct: bool,
}

/// Run the top-`k` frequent string discovery at per-level accuracy `eps`.
pub fn run(k: usize, eps: f64) -> (Vec<Table4Row>, String) {
    let trace = datasets::hotspot();
    let truth: HashMap<Vec<u8>, usize> = trace.truth.payload_counts.iter().cloned().collect();
    let true_order: Vec<Vec<u8>> = trace
        .truth
        .payload_counts
        .iter()
        .map(|(s, _)| s.clone())
        .collect();

    let budget = Accountant::new(1e9);
    let noise = NoiseSource::seeded(0x7ab4e4);
    let q = Queryable::new(trace.packets.clone(), &budget, &noise);
    let payloads = q
        .filter(|p| p.payload.len() >= 8)
        .map(|p| p.payload[..8].to_vec());

    // Threshold well below the k-th true count so ranking is the test.
    let kth_count = trace
        .truth
        .payload_counts
        .get(k.saturating_sub(1))
        .map(|(_, c)| *c)
        .unwrap_or(0) as f64;
    let found = frequent_strings(
        &payloads,
        &FrequentStringsConfig {
            length: 8,
            eps_per_level: eps,
            threshold: (kth_count * 0.5).max(20.0),
            max_viable: 512,
        },
    )
    .expect("budget is huge");

    let mut rows = Vec::new();
    for (rank, fstr) in found.iter().take(k).enumerate() {
        let true_count = truth.get(&fstr.bytes).copied().unwrap_or(0);
        let pct_err = if true_count > 0 {
            (fstr.noisy_count - true_count as f64) / true_count as f64 * 100.0
        } else {
            f64::INFINITY
        };
        let rank_correct = true_order.get(rank) == Some(&fstr.bytes);
        rows.push(Table4Row {
            string: fstr.bytes.clone(),
            true_count,
            est_count: fstr.noisy_count,
            pct_err,
            rank_correct,
        });
    }

    let mut table = Table::new(&["string", "true count", "est. count", "% err", "rank ok"]);
    for r in &rows {
        table.row(vec![
            hex(&r.string),
            r.true_count.to_string(),
            format!("{:.3}", r.est_count),
            format!("{:+.3}", r.pct_err),
            r.rank_correct.to_string(),
        ]);
    }
    let mut out = header(
        "E-T4",
        "true and noisy counts of the top payload strings (paper Table 4)",
    );
    out.push_str(&format!("eps per level = {}\n", f(eps)));
    out.push_str(&table.render());
    out.push_str("\npaper shape: top-10 discovered correctly, in order, with low count error\n");
    (rows, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_strings_are_found_in_order_with_low_error() {
        let (rows, report) = run(10, 1.0);
        assert_eq!(rows.len(), 10);
        let correct = rows.iter().filter(|r| r.rank_correct).count();
        assert!(correct >= 8, "only {correct}/10 ranks correct");
        for r in rows.iter().take(5) {
            assert!(r.pct_err.abs() < 5.0, "top string error {}%", r.pct_err);
        }
        assert!(report.contains("E-T4"));
    }
}
