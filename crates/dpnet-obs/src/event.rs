//! Structured engine events.
//!
//! One event per interesting engine action: a transformation derived a new
//! queryable, an aggregation ran (and either charged budget or was denied),
//! the accountant recorded a spend, or a toolkit phase completed. Every
//! field obeys the crate-level privacy-safety rule: privacy metadata,
//! timings, and DP-released values only. Data-dependent fields (true record
//! counts) compile in only under the `trusted-owner` feature.

use crate::json::JsonObj;
use std::sync::Arc;

/// How an aggregation request ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Budget charged, value released.
    Ok,
    /// The accountant refused the charge (budget exhausted).
    Denied,
    /// The request was invalid (e.g. non-positive ε) and nothing charged.
    Invalid,
}

impl Outcome {
    /// Stable string form used in serialized events.
    pub fn as_str(self) -> &'static str {
        match self {
            Outcome::Ok => "ok",
            Outcome::Denied => "denied",
            Outcome::Invalid => "invalid",
        }
    }
}

/// A transformation produced a derived queryable.
#[derive(Debug, Clone)]
pub struct TransformEvent {
    /// Operator name, e.g. `"where"`, `"join"`, `"partition"`.
    pub operator: &'static str,
    /// Analysis label of the source queryable, if one was set.
    pub label: Option<Arc<str>>,
    /// Stability multiplier of the source.
    pub stability_in: f64,
    /// Stability multiplier of the derived queryable.
    pub stability_out: f64,
    /// Wall time the transformation took, ns.
    pub wall_ns: u64,
    /// Monotonic timestamp (ns since process clock epoch).
    pub at_ns: u64,
    /// True record count of the derived queryable. Data-dependent:
    /// owner-side builds only.
    #[cfg(feature = "trusted-owner")]
    pub output_records: u64,
}

/// An aggregation ran against the accountant.
#[derive(Debug, Clone)]
pub struct AggregateEvent {
    /// Operator name, e.g. `"noisy_count"`, `"noisy_median"`.
    pub operator: &'static str,
    /// Noise mechanism, e.g. `"laplace"`, `"exponential"`.
    pub mechanism: &'static str,
    /// Analysis label of the queryable, if one was set.
    pub label: Option<Arc<str>>,
    /// Stability multiplier in effect.
    pub stability: f64,
    /// ε the caller asked for.
    pub eps_requested: f64,
    /// ε actually charged (`stability × eps_requested` when `Ok`, else 0).
    pub eps_charged: f64,
    /// How the request ended.
    pub outcome: Outcome,
    /// The DP-released value, when the aggregation releases a single
    /// scalar. Already noised — safe to log by definition.
    pub released: Option<f64>,
    /// Wall time of the aggregation, ns.
    pub wall_ns: u64,
    /// Monotonic timestamp (ns since process clock epoch).
    pub at_ns: u64,
    /// True input record count. Data-dependent: owner-side builds only.
    #[cfg(feature = "trusted-owner")]
    pub input_records: u64,
}

/// The accountant recorded a spend — the ledger's unit of provenance.
#[derive(Debug, Clone)]
pub struct ChargeEvent {
    /// Operator that initiated the charge.
    pub operator: Arc<str>,
    /// Charge path through the composition tree, e.g.
    /// `"scale(x2)/part[3]/root"`.
    pub path: Arc<str>,
    /// Analysis label, if one was set.
    pub label: Option<Arc<str>>,
    /// ε recorded against the accountant by this spend (for partitions,
    /// the max-of-parts *increase*).
    pub epsilon: f64,
    /// Cumulative ε spent after this charge.
    pub spent_after: f64,
    /// Ledger sequence number.
    pub sequence: u64,
    /// Monotonic timestamp (ns since process clock epoch).
    pub at_ns: u64,
}

/// A parallel kernel run finished on a worker pool.
///
/// Emitted once per pool-driven kernel invocation (chunked partition
/// construction, chunked sums, per-part fan-out, trace generation) so that
/// speedups are observable per kernel. The worker count is analyst-chosen
/// configuration, not data; the task (chunk) count is derived from the
/// record count and therefore compiles in only under `trusted-owner`.
#[derive(Debug, Clone)]
pub struct ExecEvent {
    /// Kernel name, e.g. `"partition"`, `"noisy_sum"`, `"map_parts"`.
    pub kernel: &'static str,
    /// Worker threads the pool was configured with.
    pub workers: u64,
    /// Wall time of the kernel run, ns.
    pub wall_ns: u64,
    /// Monotonic timestamp (ns since process clock epoch).
    pub at_ns: u64,
    /// Number of tasks (chunks) dispatched. Data-dependent: owner-side
    /// builds only.
    #[cfg(feature = "trusted-owner")]
    pub tasks: u64,
}

/// A lazy query plan materialized its fused pipeline.
///
/// Emitted once per *actual* materialization — memoized re-reads of an
/// already-forced plan emit nothing — so the number of `Plan` events is the
/// number of intermediate buffers the engine really allocated. The fusion
/// width (how many adjacent operators collapsed into the single pass) and
/// the execution mode are analyst-chosen query structure, not data; the
/// true source/output record counts are data-dependent and compile in only
/// under `trusted-owner`.
#[derive(Debug, Clone)]
pub struct PlanEvent {
    /// Process-wide materialization ordinal (1-based): which actual
    /// materialization this was. Counts engine activity, not data — it
    /// lets an explain-analyze overlay report how many buffers a run
    /// allocated and how effectively operators fused into each.
    pub materialization: u64,
    /// Number of adjacent operators fused into the materialized pass.
    pub fused_stages: u64,
    /// Execution mode that forced the plan: `"sequential"` or `"pool"`.
    pub mode: &'static str,
    /// Worker threads used by the forcing run (1 for sequential).
    pub workers: u64,
    /// Wall time of the materialization, ns.
    pub wall_ns: u64,
    /// Monotonic timestamp (ns since process clock epoch).
    pub at_ns: u64,
    /// True record count of the plan's source. Data-dependent: owner-side
    /// builds only.
    #[cfg(feature = "trusted-owner")]
    pub source_records: u64,
    /// True record count of the materialized output. Data-dependent:
    /// owner-side builds only.
    #[cfg(feature = "trusted-owner")]
    pub output_records: u64,
}

/// A named phase of a higher-level analysis finished.
#[derive(Debug, Clone)]
pub struct PhaseEvent {
    /// Phase name, e.g. `"cdf"`, `"kmeans/iter"`.
    pub name: Arc<str>,
    /// ε spent during the phase (difference of accountant readings).
    pub eps_spent: f64,
    /// Wall time of the phase, ns.
    pub wall_ns: u64,
    /// Monotonic timestamp (ns since process clock epoch).
    pub at_ns: u64,
}

/// An analyst session opened or closed.
///
/// Emitted by the policy/serving layer, not the engine: sessions are the
/// unit of mediation (paper §7) and the owner audits their lifecycle the
/// same way they audit spends. Carries only the session's identity and its
/// budget reading — both owner-side policy metadata, never record data.
#[derive(Debug, Clone)]
pub struct SessionEvent {
    /// Process-unique session id assigned by the session manager.
    pub session_id: u64,
    /// Analyst the session belongs to.
    pub analyst: Arc<str>,
    /// `"opened"` or `"closed"`.
    pub action: &'static str,
    /// ε the session had spent when the event fired (0 at open).
    pub session_spent: f64,
    /// Monotonic timestamp (ns since process clock epoch).
    pub at_ns: u64,
}

/// Any engine event.
#[derive(Debug, Clone)]
pub enum Event {
    /// A transformation derived a queryable.
    Transform(TransformEvent),
    /// An aggregation ran.
    Aggregate(AggregateEvent),
    /// The accountant recorded a spend.
    Charge(ChargeEvent),
    /// An analysis phase finished.
    Phase(PhaseEvent),
    /// A parallel kernel run finished.
    Exec(ExecEvent),
    /// A lazy query plan materialized.
    Plan(PlanEvent),
    /// An analyst session opened or closed.
    Session(SessionEvent),
}

impl Event {
    /// The event's kind as a stable string (`"transform"`, `"aggregate"`,
    /// `"charge"`, `"phase"`, `"exec"`, `"plan"`, `"session"`).
    pub fn kind(&self) -> &'static str {
        match self {
            Event::Transform(_) => "transform",
            Event::Aggregate(_) => "aggregate",
            Event::Charge(_) => "charge",
            Event::Phase(_) => "phase",
            Event::Exec(_) => "exec",
            Event::Plan(_) => "plan",
            Event::Session(_) => "session",
        }
    }

    /// Serialize as one flat JSON object (one JSONL line, no trailing
    /// newline). This is the canonical wire form; the privacy test in
    /// `pinq` inspects exactly this output.
    pub fn to_json(&self) -> String {
        let mut o = JsonObj::new();
        o.field_str("type", self.kind());
        match self {
            Event::Transform(e) => {
                o.field_str("op", e.operator)
                    .field_opt_str("label", e.label.as_deref())
                    .field_f64("stability_in", e.stability_in)
                    .field_f64("stability_out", e.stability_out)
                    .field_u64("wall_ns", e.wall_ns)
                    .field_u64("at_ns", e.at_ns);
                #[cfg(feature = "trusted-owner")]
                o.field_u64("output_records", e.output_records);
            }
            Event::Aggregate(e) => {
                o.field_str("op", e.operator)
                    .field_str("mechanism", e.mechanism)
                    .field_opt_str("label", e.label.as_deref())
                    .field_f64("stability", e.stability)
                    .field_f64("eps_requested", e.eps_requested)
                    .field_f64("eps_charged", e.eps_charged)
                    .field_str("outcome", e.outcome.as_str())
                    .field_opt_f64("released", e.released)
                    .field_u64("wall_ns", e.wall_ns)
                    .field_u64("at_ns", e.at_ns);
                #[cfg(feature = "trusted-owner")]
                o.field_u64("input_records", e.input_records);
            }
            Event::Charge(e) => {
                o.field_str("op", &e.operator)
                    .field_str("path", &e.path)
                    .field_opt_str("label", e.label.as_deref())
                    .field_f64("eps", e.epsilon)
                    .field_f64("spent_after", e.spent_after)
                    .field_u64("seq", e.sequence)
                    .field_u64("at_ns", e.at_ns);
            }
            Event::Phase(e) => {
                o.field_str("name", &e.name)
                    .field_f64("eps_spent", e.eps_spent)
                    .field_u64("wall_ns", e.wall_ns)
                    .field_u64("at_ns", e.at_ns);
            }
            Event::Exec(e) => {
                o.field_str("kernel", e.kernel)
                    .field_u64("workers", e.workers)
                    .field_u64("wall_ns", e.wall_ns)
                    .field_u64("at_ns", e.at_ns);
                #[cfg(feature = "trusted-owner")]
                o.field_u64("tasks", e.tasks);
            }
            Event::Plan(e) => {
                o.field_u64("materialization", e.materialization)
                    .field_u64("fused_stages", e.fused_stages)
                    .field_str("mode", e.mode)
                    .field_u64("workers", e.workers)
                    .field_u64("wall_ns", e.wall_ns)
                    .field_u64("at_ns", e.at_ns);
                #[cfg(feature = "trusted-owner")]
                o.field_u64("source_records", e.source_records)
                    .field_u64("output_records", e.output_records);
            }
            Event::Session(e) => {
                o.field_u64("session", e.session_id)
                    .field_str("analyst", &e.analyst)
                    .field_str("action", e.action)
                    .field_f64("session_spent", e.session_spent)
                    .field_u64("at_ns", e.at_ns);
            }
        }
        o.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse_flat_object;

    fn sample_aggregate() -> AggregateEvent {
        AggregateEvent {
            operator: "noisy_count",
            mechanism: "laplace",
            label: Some(Arc::from("ports")),
            stability: 2.0,
            eps_requested: 0.1,
            eps_charged: 0.2,
            outcome: Outcome::Ok,
            released: Some(41.7),
            wall_ns: 1234,
            at_ns: 99,
            #[cfg(feature = "trusted-owner")]
            input_records: 1000,
        }
    }

    #[test]
    fn aggregate_serializes_flat() {
        let j = Event::Aggregate(sample_aggregate()).to_json();
        let m = parse_flat_object(&j).expect("valid flat JSON");
        assert_eq!(m["type"].as_str(), Some("aggregate"));
        assert_eq!(m["op"].as_str(), Some("noisy_count"));
        assert_eq!(m["eps_charged"].as_f64(), Some(0.2));
        assert_eq!(m["outcome"].as_str(), Some("ok"));
        assert_eq!(m["released"].as_f64(), Some(41.7));
    }

    #[test]
    fn charge_serializes_flat() {
        let e = Event::Charge(ChargeEvent {
            operator: Arc::from("noisy_sum"),
            path: Arc::from("scale(x3)/root"),
            label: None,
            epsilon: 0.3,
            spent_after: 0.5,
            sequence: 4,
            at_ns: 11,
        });
        let m = parse_flat_object(&e.to_json()).expect("valid flat JSON");
        assert_eq!(m["type"].as_str(), Some("charge"));
        assert_eq!(m["path"].as_str(), Some("scale(x3)/root"));
        assert_eq!(m["eps"].as_f64(), Some(0.3));
        assert!(!m.contains_key("label"));
    }

    #[test]
    fn no_data_dependent_fields_without_trusted_owner() {
        // The privacy-safety rule, checked at the source: in the default
        // configuration, no serialized event mentions record counts.
        let t = Event::Transform(TransformEvent {
            operator: "where",
            label: None,
            stability_in: 1.0,
            stability_out: 1.0,
            wall_ns: 10,
            at_ns: 20,
            #[cfg(feature = "trusted-owner")]
            output_records: 5,
        });
        let a = Event::Aggregate(sample_aggregate());
        for e in [t, a] {
            let j = e.to_json();
            if cfg!(feature = "trusted-owner") {
                continue;
            }
            assert!(!j.contains("records"), "data-dependent field in {j}");
        }
        let x = Event::Exec(ExecEvent {
            kernel: "partition",
            workers: 4,
            wall_ns: 5,
            at_ns: 6,
            #[cfg(feature = "trusted-owner")]
            tasks: 13,
        });
        let j = x.to_json();
        if !cfg!(feature = "trusted-owner") {
            assert!(!j.contains("tasks"), "data-dependent field in {j}");
        }
        let p = Event::Plan(PlanEvent {
            materialization: 1,
            fused_stages: 3,
            mode: "pool",
            workers: 4,
            wall_ns: 9,
            at_ns: 10,
            #[cfg(feature = "trusted-owner")]
            source_records: 1000,
            #[cfg(feature = "trusted-owner")]
            output_records: 500,
        });
        let j = p.to_json();
        if !cfg!(feature = "trusted-owner") {
            assert!(!j.contains("records"), "data-dependent field in {j}");
        }
    }

    #[test]
    fn plan_serializes_flat() {
        let e = Event::Plan(PlanEvent {
            materialization: 4,
            fused_stages: 2,
            mode: "sequential",
            workers: 1,
            wall_ns: 321,
            at_ns: 7,
            #[cfg(feature = "trusted-owner")]
            source_records: 10,
            #[cfg(feature = "trusted-owner")]
            output_records: 4,
        });
        let m = parse_flat_object(&e.to_json()).expect("valid flat JSON");
        assert_eq!(m["type"].as_str(), Some("plan"));
        assert_eq!(m["materialization"].as_f64(), Some(4.0));
        assert_eq!(m["fused_stages"].as_f64(), Some(2.0));
        assert_eq!(m["mode"].as_str(), Some("sequential"));
        assert_eq!(m["workers"].as_f64(), Some(1.0));
    }

    #[test]
    fn exec_serializes_flat() {
        let e = Event::Exec(ExecEvent {
            kernel: "noisy_sum",
            workers: 8,
            wall_ns: 777,
            at_ns: 42,
            #[cfg(feature = "trusted-owner")]
            tasks: 3,
        });
        let m = parse_flat_object(&e.to_json()).expect("valid flat JSON");
        assert_eq!(m["type"].as_str(), Some("exec"));
        assert_eq!(m["kernel"].as_str(), Some("noisy_sum"));
        assert_eq!(m["workers"].as_f64(), Some(8.0));
        assert_eq!(m["wall_ns"].as_f64(), Some(777.0));
    }
}
