//! Hand-rolled metrics: atomic counters, fixed-bucket latency histograms,
//! and a process-wide registry.
//!
//! Everything here is lock-free on the hot path (relaxed atomics; metric
//! reads are statistical, not transactional) and allocation-free after
//! registration, so instrumenting the engine costs nanoseconds per event.

use crate::json::JsonObj;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter starting at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of power-of-two latency buckets: bucket `i` holds samples in
/// `[2^(i-1), 2^i)` ns (bucket 0 holds `0..1` ns). The last bucket is an
/// unbounded overflow bucket: every sample at or above 2⁴⁰ ns ≈ 18 minutes
/// lands there, so nothing is ever dropped however extreme the duration.
pub const HISTOGRAM_BUCKETS: usize = 42;

/// A fixed-bucket (power-of-two) histogram of nanosecond durations.
///
/// Recording is two relaxed atomic adds; no locks, no allocation.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
        }
    }
}

fn bucket_index(ns: u64) -> usize {
    ((64 - ns.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
}

/// Upper bound (exclusive) of bucket `i` in nanoseconds. The last bucket is
/// the unbounded overflow bucket, so its bound reports as `u64::MAX` —
/// quantiles landing there clamp instead of claiming a 2⁴¹ ns ceiling the
/// samples may well exceed.
fn bucket_upper_ns(i: usize) -> u64 {
    if i >= HISTOGRAM_BUCKETS - 1 {
        u64::MAX
    } else {
        1u64 << i
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Record one duration in nanoseconds. Durations above the top bucket
    /// boundary count into the overflow bucket — never dropped.
    pub fn record_ns(&self, ns: u64) {
        let idx = bucket_index(ns);
        debug_assert!(
            idx < HISTOGRAM_BUCKETS,
            "bucket index {idx} out of range for {ns}ns"
        );
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded durations, ns.
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns.load(Ordering::Relaxed)
    }

    /// Mean recorded duration, ns (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum_ns() as f64 / n as f64
        }
    }

    /// A point-in-time copy of the histogram contents.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count(),
            sum_ns: self.sum_ns(),
        }
    }

    /// Approximate quantile `q` in `[0, 1]`: the upper bound of the bucket
    /// containing the `q`-th sample. Zero when empty.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        self.snapshot().quantile_ns(q)
    }
}

/// An immutable copy of a [`Histogram`]'s state.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (power-of-two bucket boundaries).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Sum of sample durations, ns.
    pub sum_ns: u64,
}

impl HistogramSnapshot {
    /// Approximate quantile (see [`Histogram::quantile_ns`]).
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper_ns(i);
            }
        }
        bucket_upper_ns(HISTOGRAM_BUCKETS - 1)
    }
}

/// A named collection of counters and histograms.
///
/// `counter`/`histogram` return shared handles: call once at setup and
/// update through the `Arc` on hot paths, or call per-use (a `BTreeMap`
/// lookup under a mutex) where convenience wins.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// The process-wide registry.
    pub fn global() -> &'static MetricsRegistry {
        static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
        GLOBAL.get_or_init(MetricsRegistry::new)
    }

    /// Get or create the counter `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        lock(&self.counters)
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Get or create the histogram `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        lock(&self.histograms)
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> Vec<(String, u64)> {
        lock(&self.counters)
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }

    /// All histograms, sorted by name.
    pub fn histograms(&self) -> Vec<(String, HistogramSnapshot)> {
        lock(&self.histograms)
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect()
    }

    /// Human-readable dump of every metric.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (name, v) in self.counters() {
            out.push_str(&format!("{name} = {v}\n"));
        }
        for (name, h) in self.histograms() {
            out.push_str(&format!(
                "{name}: n={} mean={:.0}ns p50={}ns p99={}ns\n",
                h.count,
                if h.count == 0 {
                    0.0
                } else {
                    h.sum_ns as f64 / h.count as f64
                },
                h.quantile_ns(0.5),
                h.quantile_ns(0.99),
            ));
        }
        out
    }

    /// Machine-readable JSON object of every metric.
    pub fn to_json(&self) -> String {
        let mut obj = JsonObj::new();
        for (name, v) in self.counters() {
            obj.field_u64(&name, v);
        }
        for (name, h) in self.histograms() {
            obj.field_u64(&format!("{name}.count"), h.count);
            obj.field_u64(&format!("{name}.sum_ns"), h.sum_ns);
            obj.field_u64(&format!("{name}.p50_ns"), h.quantile_ns(0.5));
            obj.field_u64(&format!("{name}.p99_ns"), h.quantile_ns(0.99));
        }
        obj.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_count() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn histogram_buckets_cover_the_range() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn histogram_quantiles_bracket_samples() {
        let h = Histogram::new();
        for ns in [10u64, 20, 30, 40, 1_000_000] {
            h.record_ns(ns);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum_ns(), 1_000_100);
        // p50 lands in the bucket of 20–30ns samples: upper bound 32 or 64.
        let p50 = h.quantile_ns(0.5);
        assert!((32..=64).contains(&p50), "p50 = {p50}");
        // p100 lands in the bucket containing 1ms.
        assert!(h.quantile_ns(1.0) >= 1_000_000);
        assert!((h.mean_ns() - 200_020.0).abs() < 1.0);
    }

    #[test]
    fn values_above_the_top_bucket_clamp_into_the_overflow_bucket() {
        let h = Histogram::new();
        h.record_ns(1u64 << 45); // above the 2^41 top-bucket boundary
        h.record_ns(u64::MAX); // extreme value: must neither panic nor drop
        h.record_ns(10);
        let snap = h.snapshot();
        assert_eq!(snap.count, 3);
        assert_eq!(
            snap.buckets.iter().sum::<u64>(),
            snap.count,
            "overflow samples must be counted in a bucket"
        );
        assert_eq!(snap.buckets[HISTOGRAM_BUCKETS - 1], 2);
        // Percentiles that land in the overflow bucket clamp to u64::MAX
        // (the bucket is unbounded) instead of reporting a 2^41 ceiling.
        assert_eq!(snap.quantile_ns(1.0), u64::MAX);
        assert_eq!(snap.quantile_ns(0.67), u64::MAX);
        assert!(snap.quantile_ns(0.01) <= 16, "small sample mis-bucketed");
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.quantile_ns(0.5), 0);
        assert_eq!(h.mean_ns(), 0.0);
    }

    #[test]
    fn registry_shares_handles_by_name() {
        let r = MetricsRegistry::new();
        r.counter("events").inc();
        r.counter("events").inc();
        assert_eq!(r.counter("events").get(), 2);
        r.histogram("lat").record_ns(100);
        assert_eq!(r.histogram("lat").count(), 1);
        let text = r.render_text();
        assert!(text.contains("events = 2"));
        assert!(text.contains("lat:"));
        let json = r.to_json();
        assert!(json.contains("\"events\":2"));
        assert!(json.contains("\"lat.count\":1"));
    }

    #[test]
    fn concurrent_updates_are_not_lost() {
        let c = Arc::new(Counter::new());
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 80_000);
    }
}
