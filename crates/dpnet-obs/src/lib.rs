//! # dpnet-obs — observability for the privacy engine
//!
//! The paper's setting is *mediated* trace analysis: a data owner runs
//! analyses on behalf of researchers and must be able to see — and justify —
//! exactly what privacy budget was spent, by which operator, and when
//! (paper §2, §7). This crate is the substrate for that: hand-rolled atomic
//! [`Counter`]s and fixed-bucket latency [`Histogram`]s, [`SpanTimer`]s, a
//! pluggable [`EventSink`] for structured engine events, and a tiny JSON
//! layer for the owner-side JSONL audit export. No external dependencies.
//!
//! ## The privacy-safety rule
//!
//! Observability must not become a side channel. Events may carry only:
//!
//! * **privacy metadata** — ε requested/charged, stability multipliers,
//!   operator names, charge paths, analysis labels, sequence numbers;
//! * **timings** — wall-clock durations and monotonic timestamps;
//! * **DP-released values** — numbers that already went through a noise
//!   mechanism and are safe to publish by definition.
//!
//! Never raw record counts or any other record-derived value. Fields that
//! break this rule (e.g. true input sizes, useful to the owner for capacity
//! planning) exist only under the `trusted-owner` cargo feature, which an
//! analyst-facing build must not enable. A unit test in `pinq` enforces
//! that the serialized form of every event type is free of such fields in
//! the default configuration.
//!
//! Timing side channels remain (as in any DP system that reports latency);
//! the owner controls whether events leave their machine at all.
//!
//! ## Wiring
//!
//! Sinks bind in two ways:
//!
//! * per-accountant, via `pinq::Accountant::set_sink` — scoped to one
//!   protected dataset/session;
//! * process-global, via [`set_global_sink`] — picked up by any accountant
//!   or queryable without an explicit sink, which is how the benchmark
//!   harness observes experiments without threading a handle through
//!   every constructor.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod clock;
pub mod event;
pub mod json;
pub mod metrics;
pub mod sink;
pub mod span;
pub mod trace_export;

pub use clock::{now_ns, unix_time_s, SpanTimer};
pub use event::{
    AggregateEvent, ChargeEvent, Event, ExecEvent, Outcome, PhaseEvent, PlanEvent, SessionEvent,
    TransformEvent,
};
pub use metrics::{Counter, Histogram, HistogramSnapshot, MetricsRegistry};
pub use sink::{
    emit_exec_global, emit_phase_global, global_sink, set_global_sink, EventSink, JsonlSink,
    MemorySink, NullSink, SinkHandle,
};
pub use span::{
    attribution, attribution_with_aggregates, install_recorder, profiling_enabled,
    uninstall_recorder, AggregatedSpans, AttributionRow, CompletedSpan, SpanGuard, SpanMode,
    TraceRecorder,
};
pub use trace_export::{
    chrome_trace_json, chrome_trace_json_aggregated, chrome_trace_json_with_counters,
    write_chrome_trace, write_chrome_trace_aggregated, write_chrome_trace_with_counters,
    CounterSample,
};
