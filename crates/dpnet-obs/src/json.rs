//! A deliberately tiny JSON layer: an object writer for event/report
//! serialization and a parser for *flat* objects (string/number/bool/null
//! values only — exactly the shape of the JSONL audit export). Not a general
//! JSON implementation, and not trying to be one; the point is zero
//! dependencies and a surface small enough to audit by eye.

use std::collections::BTreeMap;

/// Escape `s` into a JSON string literal (including the quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Render an `f64` the way the audit format expects: finite values via
/// Rust's shortest-roundtrip `Display`, non-finite as `null`.
pub fn number(v: f64) -> String {
    if v.is_finite() {
        // Guarantee a numeric token that parses back as f64 (Display prints
        // integers without a fractional part, which is still valid JSON).
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Incremental writer for one flat JSON object.
#[derive(Debug, Default)]
pub struct JsonObj {
    buf: String,
}

impl JsonObj {
    /// Start an empty object.
    pub fn new() -> Self {
        JsonObj { buf: String::new() }
    }

    fn key(&mut self, name: &str) {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
        self.buf.push_str(&escape(name));
        self.buf.push(':');
    }

    /// Add a string field.
    pub fn field_str(&mut self, name: &str, value: &str) -> &mut Self {
        self.key(name);
        self.buf.push_str(&escape(value));
        self
    }

    /// Add a string field only when `value` is `Some`.
    pub fn field_opt_str(&mut self, name: &str, value: Option<&str>) -> &mut Self {
        if let Some(v) = value {
            self.field_str(name, v);
        }
        self
    }

    /// Add an unsigned integer field.
    pub fn field_u64(&mut self, name: &str, value: u64) -> &mut Self {
        self.key(name);
        self.buf.push_str(&value.to_string());
        self
    }

    /// Add a float field (`null` when non-finite).
    pub fn field_f64(&mut self, name: &str, value: f64) -> &mut Self {
        self.key(name);
        self.buf.push_str(&number(value));
        self
    }

    /// Add a float field only when `value` is `Some`.
    pub fn field_opt_f64(&mut self, name: &str, value: Option<f64>) -> &mut Self {
        if let Some(v) = value {
            self.field_f64(name, v);
        }
        self
    }

    /// Add a boolean field.
    pub fn field_bool(&mut self, name: &str, value: bool) -> &mut Self {
        self.key(name);
        self.buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// Close the object and return the JSON text.
    pub fn finish(&mut self) -> String {
        format!("{{{}}}", self.buf)
    }
}

/// A scalar value from a flat JSON object.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonScalar {
    /// A string value (unescaped).
    Str(String),
    /// A numeric value.
    Num(f64),
    /// A boolean.
    Bool(bool),
    /// JSON `null`.
    Null,
}

impl JsonScalar {
    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonScalar::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonScalar::Num(n) => Some(*n),
            _ => None,
        }
    }
}

type CharStream<'a> = std::iter::Peekable<std::str::Chars<'a>>;

fn skip_ws(chars: &mut CharStream<'_>) {
    while matches!(chars.peek(), Some(c) if c.is_whitespace()) {
        chars.next();
    }
}

fn parse_string(chars: &mut CharStream<'_>) -> Option<String> {
    if chars.next()? != '"' {
        return None;
    }
    let mut s = String::new();
    loop {
        match chars.next()? {
            '"' => return Some(s),
            '\\' => match chars.next()? {
                '"' => s.push('"'),
                '\\' => s.push('\\'),
                '/' => s.push('/'),
                'n' => s.push('\n'),
                'r' => s.push('\r'),
                't' => s.push('\t'),
                'u' => {
                    let hex: String = (0..4).map_while(|_| chars.next()).collect();
                    if hex.len() != 4 {
                        return None;
                    }
                    let code = u32::from_str_radix(&hex, 16).ok()?;
                    s.push(char::from_u32(code)?);
                }
                _ => return None,
            },
            c => s.push(c),
        }
    }
}

/// Parse one flat JSON object (`{"k": scalar, ...}` — no nesting, no
/// arrays). Returns `None` on any malformed input rather than guessing.
pub fn parse_flat_object(line: &str) -> Option<BTreeMap<String, JsonScalar>> {
    let mut chars = line.trim().chars().peekable();
    let mut out = BTreeMap::new();

    skip_ws(&mut chars);
    if chars.next()? != '{' {
        return None;
    }
    skip_ws(&mut chars);
    if chars.peek() == Some(&'}') {
        return Some(out);
    }
    loop {
        skip_ws(&mut chars);
        let key = parse_string(&mut chars)?;
        skip_ws(&mut chars);
        if chars.next()? != ':' {
            return None;
        }
        skip_ws(&mut chars);
        let value = match chars.peek()? {
            '"' => JsonScalar::Str(parse_string(&mut chars)?),
            't' | 'f' | 'n' => {
                let word: String =
                    std::iter::from_fn(|| chars.next_if(|c| c.is_ascii_alphabetic())).collect();
                match word.as_str() {
                    "true" => JsonScalar::Bool(true),
                    "false" => JsonScalar::Bool(false),
                    "null" => JsonScalar::Null,
                    _ => return None,
                }
            }
            _ => {
                let tok: String = std::iter::from_fn(|| {
                    chars
                        .next_if(|c| c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E'))
                })
                .collect();
                JsonScalar::Num(tok.parse().ok()?)
            }
        };
        out.insert(key, value);
        skip_ws(&mut chars);
        match chars.next()? {
            ',' => continue,
            '}' => break,
            _ => return None,
        }
    }
    skip_ws(&mut chars);
    if chars.next().is_some() {
        return None;
    }
    Some(out)
}

/// Any JSON value, nesting included. Returned by [`parse_value`]; used to
/// verify that documents the crate *emits* (Chrome traces, explain
/// reports) parse back without an external JSON library.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// A string (unescaped).
    Str(String),
    /// A number.
    Num(f64),
    /// A boolean.
    Bool(bool),
    /// JSON `null`.
    Null,
    /// An array of values.
    Arr(Vec<JsonValue>),
    /// An object, keys sorted.
    Obj(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Member `key`, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn items(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Nesting cap for [`parse_value`]: plenty for anything this workspace
/// emits, small enough that hostile input cannot blow the stack.
const MAX_DEPTH: usize = 64;

/// Parse one complete JSON document of arbitrary (bounded) nesting.
/// Returns `None` on malformed input, trailing garbage, or nesting deeper
/// than `MAX_DEPTH` (64).
pub fn parse_value(text: &str) -> Option<JsonValue> {
    let mut chars = text.trim().chars().peekable();
    let v = parse_value_inner(&mut chars, 0)?;
    skip_ws(&mut chars);
    if chars.next().is_some() {
        return None;
    }
    Some(v)
}

fn parse_value_inner(chars: &mut CharStream<'_>, depth: usize) -> Option<JsonValue> {
    if depth > MAX_DEPTH {
        return None;
    }
    skip_ws(chars);
    match chars.peek()? {
        '"' => Some(JsonValue::Str(parse_string(chars)?)),
        '{' => {
            chars.next();
            let mut out = BTreeMap::new();
            skip_ws(chars);
            if chars.peek() == Some(&'}') {
                chars.next();
                return Some(JsonValue::Obj(out));
            }
            loop {
                skip_ws(chars);
                let key = parse_string(chars)?;
                skip_ws(chars);
                if chars.next()? != ':' {
                    return None;
                }
                let value = parse_value_inner(chars, depth + 1)?;
                out.insert(key, value);
                skip_ws(chars);
                match chars.next()? {
                    ',' => continue,
                    '}' => return Some(JsonValue::Obj(out)),
                    _ => return None,
                }
            }
        }
        '[' => {
            chars.next();
            let mut out = Vec::new();
            skip_ws(chars);
            if chars.peek() == Some(&']') {
                chars.next();
                return Some(JsonValue::Arr(out));
            }
            loop {
                out.push(parse_value_inner(chars, depth + 1)?);
                skip_ws(chars);
                match chars.next()? {
                    ',' => continue,
                    ']' => return Some(JsonValue::Arr(out)),
                    _ => return None,
                }
            }
        }
        't' | 'f' | 'n' => {
            let word: String =
                std::iter::from_fn(|| chars.next_if(|c| c.is_ascii_alphabetic())).collect();
            match word.as_str() {
                "true" => Some(JsonValue::Bool(true)),
                "false" => Some(JsonValue::Bool(false)),
                "null" => Some(JsonValue::Null),
                _ => None,
            }
        }
        _ => {
            let tok: String = std::iter::from_fn(|| {
                chars.next_if(|c| c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E'))
            })
            .collect();
            Some(JsonValue::Num(tok.parse().ok()?))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_produces_valid_flat_objects() {
        let mut o = JsonObj::new();
        o.field_str("type", "spend")
            .field_f64("eps", 0.25)
            .field_u64("seq", 7)
            .field_bool("ok", true)
            .field_opt_str("label", None)
            .field_f64("bad", f64::NAN);
        let s = o.finish();
        assert_eq!(
            s,
            r#"{"type":"spend","eps":0.25,"seq":7,"ok":true,"bad":null}"#
        );
    }

    #[test]
    fn escaping_roundtrips() {
        let nasty = "a\"b\\c\nd\te\u{1}f";
        let mut o = JsonObj::new();
        o.field_str("k", nasty);
        let parsed = parse_flat_object(&o.finish()).expect("parses");
        assert_eq!(parsed["k"].as_str(), Some(nasty));
    }

    #[test]
    fn writer_output_parses_back() {
        let mut o = JsonObj::new();
        o.field_str("op", "noisy_count")
            .field_f64("eps", 1e-9)
            .field_f64("neg", -2.5)
            .field_u64("n", u64::MAX);
        let m = parse_flat_object(&o.finish()).expect("parses");
        assert_eq!(m["op"].as_str(), Some("noisy_count"));
        assert_eq!(m["eps"].as_f64(), Some(1e-9));
        assert_eq!(m["neg"].as_f64(), Some(-2.5));
        assert_eq!(m["n"].as_f64(), Some(u64::MAX as f64));
    }

    #[test]
    fn malformed_lines_are_rejected() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "{\"a\":1,}",
            "{\"a\":1} trailing",
            "[1,2]",
            "{\"a\":{\"nested\":1}}",
        ] {
            assert!(parse_flat_object(bad).is_none(), "accepted {bad:?}");
        }
    }

    #[test]
    fn empty_object_is_fine() {
        assert!(parse_flat_object("{}").expect("parses").is_empty());
    }

    #[test]
    fn parse_value_handles_nesting() {
        let v = parse_value(r#"{"a":[1,{"b":"x\n"},[]],"c":{"d":null,"e":true}}"#).expect("parses");
        let a = v.get("a").and_then(JsonValue::items).expect("array");
        assert_eq!(a[0].as_f64(), Some(1.0));
        assert_eq!(a[1].get("b").and_then(JsonValue::as_str), Some("x\n"));
        assert_eq!(a[2].items(), Some(&[][..]));
        assert_eq!(v.get("c").and_then(|c| c.get("d")), Some(&JsonValue::Null));
        assert_eq!(
            v.get("c").and_then(|c| c.get("e")),
            Some(&JsonValue::Bool(true))
        );
    }

    #[test]
    fn parse_value_rejects_malformed_and_deep_input() {
        for bad in ["", "{", "[1,", "{\"a\":1} x", "[1 2]", "{\"a\" 1}"] {
            assert!(parse_value(bad).is_none(), "accepted {bad:?}");
        }
        let deep = format!("{}1{}", "[".repeat(100), "]".repeat(100));
        assert!(parse_value(&deep).is_none(), "accepted 100-deep nesting");
        let fine = format!("{}1{}", "[".repeat(10), "]".repeat(10));
        assert!(parse_value(&fine).is_some());
    }

    #[test]
    fn parse_value_agrees_with_flat_parser_on_flat_objects() {
        let line = r#"{"op":"noisy_count","eps":0.25,"ok":true,"label":null}"#;
        let flat = parse_flat_object(line).expect("flat parses");
        let v = parse_value(line).expect("value parses");
        assert_eq!(flat["op"].as_str(), v.get("op").and_then(JsonValue::as_str));
        assert_eq!(
            flat["eps"].as_f64(),
            v.get("eps").and_then(JsonValue::as_f64)
        );
    }
}
