//! Event sinks: where structured engine events go.
//!
//! The engine emits through a [`SinkHandle`]; each handle can carry its own
//! sink (per-accountant scoping) and otherwise falls back to the process
//! [`global_sink`]. Event construction is lazy — a handle with no sink
//! bound anywhere costs one relaxed atomic load per emission site.

use crate::event::Event;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// Receives structured engine events. Implementations must be cheap and
/// must never panic back into the engine.
pub trait EventSink: Send + Sync {
    /// Handle one event.
    fn emit(&self, event: &Event);
    /// Flush any buffered output (default: no-op).
    fn flush(&self) {}
}

/// Discards everything. Useful to explicitly silence a handle that would
/// otherwise fall back to the global sink.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl EventSink for NullSink {
    fn emit(&self, _event: &Event) {}
}

/// Buffers events in memory; the test and benchmark workhorse.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<Event>>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// Copy of everything captured so far.
    pub fn events(&self) -> Vec<Event> {
        lock(&self.events).clone()
    }

    /// Number of captured events.
    pub fn len(&self) -> usize {
        lock(&self.events).len()
    }

    /// True when nothing has been captured.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop all captured events.
    pub fn clear(&self) {
        lock(&self.events).clear();
    }

    /// Remove and return everything captured so far.
    pub fn drain(&self) -> Vec<Event> {
        std::mem::take(&mut *lock(&self.events))
    }
}

impl EventSink for MemorySink {
    fn emit(&self, event: &Event) {
        lock(&self.events).push(event.clone());
    }
}

/// Writes each event as one JSON line to any `Write` target.
pub struct JsonlSink<W: std::io::Write + Send> {
    writer: Mutex<W>,
}

impl<W: std::io::Write + Send> JsonlSink<W> {
    /// Wrap a writer.
    pub fn new(writer: W) -> Self {
        JsonlSink {
            writer: Mutex::new(writer),
        }
    }

    /// Consume the sink, returning the writer (flushed).
    pub fn into_inner(self) -> W {
        let mut w = self.writer.into_inner().unwrap_or_else(|p| p.into_inner());
        let _ = w.flush();
        w
    }
}

impl<W: std::io::Write + Send> std::fmt::Debug for JsonlSink<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlSink").finish_non_exhaustive()
    }
}

impl<W: std::io::Write + Send> EventSink for JsonlSink<W> {
    fn emit(&self, event: &Event) {
        let mut w = lock(&self.writer);
        // Sinks must not panic back into the engine; a full disk becomes a
        // dropped event, not a failed analysis.
        let _ = writeln!(w, "{}", event.to_json());
    }

    fn flush(&self) {
        let _ = lock(&self.writer).flush();
    }
}

struct GlobalSink {
    sink: Mutex<Option<Arc<dyn EventSink>>>,
    bound: AtomicBool,
}

fn global() -> &'static GlobalSink {
    static GLOBAL: OnceLock<GlobalSink> = OnceLock::new();
    GLOBAL.get_or_init(|| GlobalSink {
        sink: Mutex::new(None),
        bound: AtomicBool::new(false),
    })
}

/// Install (or with `None`, remove) the process-wide fallback sink.
/// Returns the previously installed sink, if any.
pub fn set_global_sink(sink: Option<Arc<dyn EventSink>>) -> Option<Arc<dyn EventSink>> {
    let g = global();
    let mut slot = lock(&g.sink);
    g.bound.store(sink.is_some(), Ordering::Release);
    std::mem::replace(&mut *slot, sink)
}

/// Emit a [`crate::PhaseEvent`] to the global sink (no-op when none is
/// installed). The convenience path for analysis toolkits that want to
/// report named phases without threading a sink handle through their APIs;
/// `eps_spent` is the ε the phase charges *by construction* of the
/// algorithm (e.g. iterations × ε-per-iteration).
pub fn emit_phase_global(name: &str, eps_spent: f64, wall_ns: u64) {
    if let Some(sink) = global_sink() {
        sink.emit(&Event::Phase(crate::event::PhaseEvent {
            name: Arc::from(name),
            eps_spent,
            wall_ns,
            at_ns: crate::clock::now_ns(),
        }));
    }
}

/// Emit an [`crate::ExecEvent`] to the global sink (no-op when none is
/// installed). For parallel drivers outside the engine — e.g. chunked
/// synthetic-trace generation — that want their kernel runs observable
/// without a sink handle. `tasks` is data-dependent (a chunk count) and is
/// therefore serialized only under `trusted-owner`.
pub fn emit_exec_global(kernel: &'static str, workers: usize, tasks: usize, wall_ns: u64) {
    let _ = tasks;
    if let Some(sink) = global_sink() {
        sink.emit(&Event::Exec(crate::event::ExecEvent {
            kernel,
            workers: workers as u64,
            wall_ns,
            at_ns: crate::clock::now_ns(),
            #[cfg(feature = "trusted-owner")]
            tasks: tasks as u64,
        }));
    }
}

/// The currently installed global sink, if any.
pub fn global_sink() -> Option<Arc<dyn EventSink>> {
    let g = global();
    if !g.bound.load(Ordering::Acquire) {
        return None;
    }
    lock(&g.sink).clone()
}

/// An emission point: an optional local sink with global fallback.
///
/// Cloning shares the local binding (all clones see a later
/// [`SinkHandle::bind`]), which is how one accountant's sink covers every
/// queryable derived from it.
#[derive(Clone, Default)]
pub struct SinkHandle {
    local: Arc<Mutex<Option<Arc<dyn EventSink>>>>,
}

impl std::fmt::Debug for SinkHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let bound = lock(&self.local).is_some();
        f.debug_struct("SinkHandle").field("bound", &bound).finish()
    }
}

impl SinkHandle {
    /// A handle with no local sink (global fallback only).
    pub fn new() -> Self {
        SinkHandle {
            local: Arc::new(Mutex::new(None)),
        }
    }

    /// Bind (or with `None`, unbind) this handle's local sink. Affects all
    /// clones of the handle.
    pub fn bind(&self, sink: Option<Arc<dyn EventSink>>) {
        *lock(&self.local) = sink;
    }

    /// The sink this handle currently resolves to: local first, then the
    /// process-wide fallback.
    pub fn resolve(&self) -> Option<Arc<dyn EventSink>> {
        if let Some(s) = lock(&self.local).clone() {
            return Some(s);
        }
        global_sink()
    }

    /// Emit an event built by `make` — which runs only if a sink is
    /// actually bound, so emission sites pay nothing when unobserved.
    pub fn emit(&self, make: impl FnOnce() -> Event) {
        if let Some(sink) = self.resolve() {
            sink.emit(&make());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::PhaseEvent;

    fn phase(name: &str) -> Event {
        Event::Phase(PhaseEvent {
            name: Arc::from(name),
            eps_spent: 0.1,
            wall_ns: 5,
            at_ns: 1,
        })
    }

    #[test]
    fn memory_sink_captures_and_drains() {
        let sink = MemorySink::new();
        sink.emit(&phase("a"));
        sink.emit(&phase("b"));
        assert_eq!(sink.len(), 2);
        let drained = sink.drain();
        assert_eq!(drained.len(), 2);
        assert!(sink.is_empty());
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        let sink = JsonlSink::new(Vec::new());
        sink.emit(&phase("x"));
        sink.emit(&phase("y"));
        let buf = sink.into_inner();
        let text = String::from_utf8(buf).expect("utf8");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"name\":\"x\""));
        assert!(lines[1].contains("\"name\":\"y\""));
    }

    #[test]
    fn handle_prefers_local_over_global() {
        // Note: global-sink tests share process state; this test only ever
        // *reads* the global slot while it is unset for this handle's path.
        let handle = SinkHandle::new();
        let local = Arc::new(MemorySink::new());
        handle.bind(Some(local.clone()));
        handle.emit(|| phase("local"));
        assert_eq!(local.len(), 1);
        handle.bind(None);
        // With no local and no global, the closure must not run.
        handle.emit(|| panic!("emitted with no sink bound"));
    }

    #[test]
    fn clones_share_the_binding() {
        let a = SinkHandle::new();
        let b = a.clone();
        let sink = Arc::new(MemorySink::new());
        a.bind(Some(sink.clone()));
        b.emit(|| phase("via-clone"));
        assert_eq!(sink.len(), 1);
    }
}
