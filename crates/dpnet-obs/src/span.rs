//! Hierarchical span profiling: enter/exit timing with parent links.
//!
//! A span is one timed region of engine work (a kernel run, a plan
//! materialization, an aggregation). Spans nest: entering a span while
//! another is open on the same thread records the open span as its parent,
//! so a completed trace reconstructs the call tree — and *self time* (a
//! span's duration minus its children's) attributes wall-clock to the code
//! that actually burned it rather than to everything above it on the stack.
//!
//! The machinery is built for a near-zero disabled path: every `enter` site
//! costs one relaxed atomic load when no [`TraceRecorder`] is installed.
//! When recording, the per-thread span stack is a plain `thread_local`
//! (lock-free; no cross-thread synchronization until a span *completes*,
//! at which point it is pushed onto the recorder under a mutex).
//!
//! ## Privacy
//!
//! Spans obey the crate-level privacy-safety rule: name, detail, parent
//! links, track ids and timings are analyst-chosen metadata or timings.
//! Record-derived magnitudes (e.g. how many records a task touched) attach
//! via [`SpanGuard::set_records`] and exist on the serialized span only
//! under the `trusted-owner` feature.

use crate::clock::now_ns;
use crate::json::JsonObj;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// One finished span, as assembled by the [`TraceRecorder`].
#[derive(Debug, Clone)]
pub struct CompletedSpan {
    /// Process-unique span id (never zero).
    pub id: u64,
    /// Id of the span that was open on the same thread at enter time.
    pub parent: Option<u64>,
    /// Static span name, e.g. `"noisy_sum"`, `"exec/task"`.
    pub name: &'static str,
    /// Optional free-form metadata (a charge path, an experiment id).
    pub detail: Option<Arc<str>>,
    /// Track (thread lane) the span ran on.
    pub track: u64,
    /// Monotonic start timestamp (ns since process clock epoch).
    pub start_ns: u64,
    /// Span duration, ns.
    pub dur_ns: u64,
    /// Total duration of direct children, ns.
    pub child_ns: u64,
    /// Records the span touched. Data-dependent: owner-side builds only.
    #[cfg(feature = "trusted-owner")]
    pub records: u64,
}

impl CompletedSpan {
    /// Duration not attributable to any child span, ns.
    pub fn self_ns(&self) -> u64 {
        self.dur_ns.saturating_sub(self.child_ns)
    }

    /// Serialize as one flat JSON object. Like [`crate::Event::to_json`],
    /// this is the canonical wire form the privacy tests inspect: in the
    /// default configuration it carries no record-derived fields.
    pub fn to_json(&self) -> String {
        let mut o = JsonObj::new();
        o.field_str("type", "span")
            .field_u64("id", self.id)
            .field_str("name", self.name)
            .field_opt_str("detail", self.detail.as_deref())
            .field_u64("track", self.track)
            .field_u64("start_ns", self.start_ns)
            .field_u64("dur_ns", self.dur_ns)
            .field_u64("self_ns", self.self_ns());
        if let Some(p) = self.parent {
            o.field_u64("parent", p);
        }
        #[cfg(feature = "trusted-owner")]
        o.field_u64("records", self.records);
        o.finish()
    }
}

/// How a [`TraceRecorder`] treats spans opened through [`enter_agg_with`]
/// (the high-frequency aggregation-barrier sites, one span per charge).
///
/// Large partitioned experiments open one aggregation span per part —
/// on the order of a million spans for worm at 4 workers — and keeping
/// each one as a [`CompletedSpan`] dominates the recorder's memory and
/// lock traffic. [`SpanMode::Aggregate`] folds those spans into one
/// [`AggregatedSpans`] row per `(name, detail)` pair instead (count +
/// total ns per charge path), while every other span is recorded in full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SpanMode {
    /// Record every span individually (the default; exact timelines).
    #[default]
    Full,
    /// Fold aggregation-barrier spans into per-`(name, detail)` rows.
    Aggregate,
}

/// All spans from one [`enter_agg_with`] site sharing a `(name, detail)`
/// pair, folded by a [`SpanMode::Aggregate`] recorder into one row.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregatedSpans {
    /// Static span name, e.g. `"noisy_count"`.
    pub name: &'static str,
    /// The detail the spans shared (for aggregation sites: a charge path).
    pub detail: Option<Arc<str>>,
    /// Number of spans folded into this row.
    pub count: u64,
    /// Sum of span durations, ns.
    pub total_ns: u64,
    /// Sum of the spans' direct-children durations, ns.
    pub child_ns: u64,
}

impl AggregatedSpans {
    /// Total duration not attributable to child spans, ns.
    pub fn self_ns(&self) -> u64 {
        self.total_ns.saturating_sub(self.child_ns)
    }
}

/// Aggregate-fold key: the `(name, detail)` pair spans share.
type AggKey = (&'static str, Option<Arc<str>>);

/// Collects [`CompletedSpan`]s from every thread while installed.
#[derive(Debug, Default)]
pub struct TraceRecorder {
    mode: SpanMode,
    spans: Mutex<Vec<CompletedSpan>>,
    aggs: Mutex<BTreeMap<AggKey, AggregatedSpans>>,
    tracks: Mutex<BTreeMap<u64, Arc<str>>>,
}

impl TraceRecorder {
    /// An empty recorder in [`SpanMode::Full`].
    pub fn new() -> Self {
        TraceRecorder::default()
    }

    /// An empty recorder in the given mode.
    pub fn with_mode(mode: SpanMode) -> Self {
        TraceRecorder {
            mode,
            ..TraceRecorder::default()
        }
    }

    /// The mode this recorder was built with.
    pub fn mode(&self) -> SpanMode {
        self.mode
    }

    /// Copy of every span completed so far (completion order).
    pub fn spans(&self) -> Vec<CompletedSpan> {
        lock(&self.spans).clone()
    }

    /// Remove and return every span completed so far.
    pub fn take(&self) -> Vec<CompletedSpan> {
        std::mem::take(&mut *lock(&self.spans))
    }

    /// Number of completed spans held.
    pub fn len(&self) -> usize {
        lock(&self.spans).len()
    }

    /// True when no span has completed yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop all held spans and aggregate rows (track names are kept).
    pub fn clear(&self) {
        lock(&self.spans).clear();
        lock(&self.aggs).clear();
    }

    /// Copy of every aggregate row folded so far, ordered by `(name,
    /// detail)` for determinism. Empty unless the recorder runs in
    /// [`SpanMode::Aggregate`] and [`enter_agg_with`] sites fired.
    pub fn aggregated(&self) -> Vec<AggregatedSpans> {
        lock(&self.aggs).values().cloned().collect()
    }

    /// Remove and return every aggregate row folded so far, ordered by
    /// `(name, detail)`.
    pub fn take_aggregated(&self) -> Vec<AggregatedSpans> {
        std::mem::take(&mut *lock(&self.aggs))
            .into_values()
            .collect()
    }

    /// Human-readable names for tracks, as registered by
    /// [`set_track_name`]. Unnamed tracks are absent.
    pub fn track_names(&self) -> BTreeMap<u64, Arc<str>> {
        lock(&self.tracks).clone()
    }

    fn push(&self, span: CompletedSpan) {
        lock(&self.spans).push(span);
    }

    fn push_agg(&self, span: &CompletedSpan) {
        let mut aggs = lock(&self.aggs);
        let row = aggs
            .entry((span.name, span.detail.clone()))
            .or_insert_with(|| AggregatedSpans {
                name: span.name,
                detail: span.detail.clone(),
                count: 0,
                total_ns: 0,
                child_ns: 0,
            });
        row.count += 1;
        row.total_ns += span.dur_ns;
        row.child_ns += span.child_ns;
    }

    fn name_track(&self, track: u64, name: &str) {
        lock(&self.tracks).insert(track, Arc::from(name));
    }
}

struct Profiler {
    enabled: AtomicBool,
    recorder: Mutex<Option<Arc<TraceRecorder>>>,
}

fn profiler() -> &'static Profiler {
    static GLOBAL: OnceLock<Profiler> = OnceLock::new();
    GLOBAL.get_or_init(|| Profiler {
        enabled: AtomicBool::new(false),
        recorder: Mutex::new(None),
    })
}

/// Install the process-wide span recorder, enabling profiling everywhere.
/// Returns the previously installed recorder, if any.
pub fn install_recorder(recorder: Arc<TraceRecorder>) -> Option<Arc<TraceRecorder>> {
    let p = profiler();
    let mut slot = lock(&p.recorder);
    let old = slot.replace(recorder);
    p.enabled.store(true, Ordering::Release);
    old
}

/// Remove the process-wide span recorder, disabling profiling. Returns
/// the recorder that was installed, if any.
pub fn uninstall_recorder() -> Option<Arc<TraceRecorder>> {
    let p = profiler();
    let mut slot = lock(&p.recorder);
    p.enabled.store(false, Ordering::Release);
    slot.take()
}

/// True when a recorder is installed. One relaxed atomic load — the fast
/// path every instrumentation site checks before doing any work.
#[inline]
pub fn profiling_enabled() -> bool {
    profiler().enabled.load(Ordering::Relaxed)
}

/// The currently installed recorder, if any.
pub fn recorder() -> Option<Arc<TraceRecorder>> {
    if !profiling_enabled() {
        return None;
    }
    lock(&profiler().recorder).clone()
}

/// A span currently open on this thread's stack.
struct ActiveSpan {
    id: u64,
    parent: Option<u64>,
    name: &'static str,
    detail: Option<Arc<str>>,
    started: Instant,
    start_ns: u64,
    child_ns: u64,
    records: u64,
    /// Opened through [`enter_agg_with`]: an aggregation-barrier span a
    /// [`SpanMode::Aggregate`] recorder folds instead of storing.
    agg: bool,
}

struct ThreadCtx {
    track: u64,
    stack: Vec<ActiveSpan>,
}

thread_local! {
    static CTX: RefCell<ThreadCtx> = RefCell::new(ThreadCtx {
        track: {
            static NEXT_TRACK: AtomicU64 = AtomicU64::new(1);
            NEXT_TRACK.fetch_add(1, Ordering::Relaxed)
        },
        stack: Vec::new(),
    });
}

fn next_span_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// Name this thread's track in the installed recorder (e.g. `"worker-3"`).
/// No-op when profiling is disabled.
pub fn set_track_name(name: &str) {
    if let Some(rec) = recorder() {
        let track = CTX.with(|c| c.borrow().track);
        rec.name_track(track, name);
    }
}

/// This thread's track id (assigned on first use, process-unique).
pub fn current_track() -> u64 {
    CTX.with(|c| c.borrow().track)
}

/// Open a span named `name` on this thread. Returns a guard that closes
/// the span when dropped. When profiling is disabled the call is one
/// relaxed atomic load and the guard does nothing.
#[inline]
pub fn enter(name: &'static str) -> SpanGuard {
    if !profiling_enabled() {
        return SpanGuard { armed: false };
    }
    enter_slow(name, None, false)
}

/// Like [`enter`], but attaches free-form detail built by `make` — which
/// runs only when profiling is enabled, so callers can format charge paths
/// or labels without paying on the disabled path.
#[inline]
pub fn enter_with(name: &'static str, make: impl FnOnce() -> String) -> SpanGuard {
    if !profiling_enabled() {
        return SpanGuard { armed: false };
    }
    enter_slow(name, Some(Arc::from(make().as_str())), false)
}

/// [`enter_with`] for high-frequency aggregation-barrier sites (one span
/// per charge). Under a [`SpanMode::Full`] recorder this is identical to
/// [`enter_with`]; a [`SpanMode::Aggregate`] recorder folds the completed
/// span into a per-`(name, detail)` [`AggregatedSpans`] row instead of
/// storing it individually.
#[inline]
pub fn enter_agg_with(name: &'static str, make: impl FnOnce() -> String) -> SpanGuard {
    if !profiling_enabled() {
        return SpanGuard { armed: false };
    }
    enter_slow(name, Some(Arc::from(make().as_str())), true)
}

fn enter_slow(name: &'static str, detail: Option<Arc<str>>, agg: bool) -> SpanGuard {
    CTX.with(|c| {
        let mut ctx = c.borrow_mut();
        let parent = ctx.stack.last().map(|s| s.id);
        ctx.stack.push(ActiveSpan {
            id: next_span_id(),
            parent,
            name,
            detail,
            started: Instant::now(),
            start_ns: now_ns(),
            child_ns: 0,
            records: 0,
            agg,
        });
    });
    SpanGuard { armed: true }
}

/// RAII guard for an open span; closing happens on drop. Not `Send`: a
/// span must close on the thread that opened it.
pub struct SpanGuard {
    armed: bool,
}

impl SpanGuard {
    /// Attach the number of records this span touched. The value reaches
    /// the serialized span only under `trusted-owner`; in default builds
    /// it is accepted and discarded (see the crate privacy rule).
    pub fn set_records(&self, n: u64) {
        if !self.armed {
            return;
        }
        CTX.with(|c| {
            if let Some(top) = c.borrow_mut().stack.last_mut() {
                top.records = n;
            }
        });
    }
}

impl std::fmt::Debug for SpanGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanGuard")
            .field("armed", &self.armed)
            .finish()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let completed = CTX.with(|c| {
            let mut ctx = c.borrow_mut();
            let span = ctx.stack.pop()?;
            let dur_ns = span.started.elapsed().as_nanos() as u64;
            if let Some(parent) = ctx.stack.last_mut() {
                parent.child_ns += dur_ns;
            }
            let records = span.records;
            // Quiet the unused warning when `trusted-owner` is off; the
            // count deliberately dies here in that configuration.
            let _ = records;
            let agg = span.agg;
            let completed = CompletedSpan {
                id: span.id,
                parent: span.parent,
                name: span.name,
                detail: span.detail,
                track: ctx.track,
                start_ns: span.start_ns,
                dur_ns,
                child_ns: span.child_ns,
                #[cfg(feature = "trusted-owner")]
                records,
            };
            Some((completed, agg))
        });
        if let Some((span, agg)) = completed {
            // The recorder may have been uninstalled while the span was
            // open; the span is then simply discarded.
            if let Some(rec) = recorder() {
                if agg && rec.mode() == SpanMode::Aggregate {
                    rec.push_agg(&span);
                } else {
                    rec.push(span);
                }
            }
        }
    }
}

/// One row of a time-attribution table: all spans sharing a name, folded.
#[derive(Debug, Clone, PartialEq)]
pub struct AttributionRow {
    /// Span name the row aggregates.
    pub name: String,
    /// Number of spans with this name.
    pub count: u64,
    /// Sum of span durations, ns (children included — overlapping work
    /// counts once per enclosing span).
    pub total_ns: u64,
    /// Sum of self times, ns. Self times are disjoint by construction, so
    /// summing this column over all rows ≈ total profiled wall-clock.
    pub self_ns: u64,
}

/// Fold completed spans into per-name attribution rows, sorted by
/// descending self time (ties broken by name for determinism).
pub fn attribution(spans: &[CompletedSpan]) -> Vec<AttributionRow> {
    attribution_with_aggregates(spans, &[])
}

/// [`attribution`] over full spans *and* the [`AggregatedSpans`] rows a
/// [`SpanMode::Aggregate`] recorder folded — so the per-operator table is
/// identical whichever mode recorded the run.
pub fn attribution_with_aggregates(
    spans: &[CompletedSpan],
    aggs: &[AggregatedSpans],
) -> Vec<AttributionRow> {
    let mut by_name: BTreeMap<&'static str, AttributionRow> = BTreeMap::new();
    fn row_for<'m>(
        by_name: &'m mut BTreeMap<&'static str, AttributionRow>,
        name: &'static str,
    ) -> &'m mut AttributionRow {
        by_name.entry(name).or_insert_with(|| AttributionRow {
            name: name.to_string(),
            count: 0,
            total_ns: 0,
            self_ns: 0,
        })
    }
    for s in spans {
        let row = row_for(&mut by_name, s.name);
        row.count += 1;
        row.total_ns += s.dur_ns;
        row.self_ns += s.self_ns();
    }
    for a in aggs {
        let row = row_for(&mut by_name, a.name);
        row.count += a.count;
        row.total_ns += a.total_ns;
        row.self_ns += a.self_ns();
    }
    let mut rows: Vec<AttributionRow> = by_name.into_values().collect();
    rows.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then(a.name.cmp(&b.name)));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialize installs on the process-wide profiler slot: these tests
    /// mutate global state, so they share one lock.
    fn global_guard() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn spin(iters: u64) -> u64 {
        let mut x = 1u64;
        for i in 0..iters {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        std::hint::black_box(x)
    }

    #[test]
    fn disabled_guard_records_nothing() {
        let _g = global_guard();
        // Whatever a previous test left behind, start uninstalled.
        uninstall_recorder();
        let rec = Arc::new(TraceRecorder::new());
        {
            let _span = enter("quiet");
        }
        assert!(rec.is_empty());
        assert!(!profiling_enabled());
    }

    #[test]
    fn nesting_links_parents_and_splits_self_time() {
        let _g = global_guard();
        let rec = Arc::new(TraceRecorder::new());
        install_recorder(rec.clone());
        {
            let _outer = enter("outer");
            spin(20_000);
            {
                let _inner = enter("inner");
                spin(20_000);
            }
            spin(20_000);
        }
        uninstall_recorder();
        let spans = rec.take();
        assert_eq!(spans.len(), 2);
        // Completion order: inner first.
        let inner = &spans[0];
        let outer = &spans[1];
        assert_eq!(inner.name, "inner");
        assert_eq!(outer.name, "outer");
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(outer.parent, None);
        assert!(outer.dur_ns >= inner.dur_ns);
        assert_eq!(outer.child_ns, inner.dur_ns);
        assert_eq!(outer.self_ns(), outer.dur_ns - inner.dur_ns);
        assert_eq!(inner.self_ns(), inner.dur_ns);
        assert_eq!(inner.track, outer.track);
    }

    #[test]
    fn detail_rides_along_and_serializes() {
        let _g = global_guard();
        let rec = Arc::new(TraceRecorder::new());
        install_recorder(rec.clone());
        {
            let _s = enter_with("noisy_sum", || "scale(x2)/root".to_string());
        }
        uninstall_recorder();
        let spans = rec.take();
        assert_eq!(spans.len(), 1);
        let j = spans[0].to_json();
        assert!(j.contains("\"type\":\"span\""));
        assert!(j.contains("\"name\":\"noisy_sum\""));
        assert!(j.contains("\"detail\":\"scale(x2)/root\""));
        let parsed = crate::json::parse_flat_object(&j).expect("flat JSON");
        assert_eq!(parsed["type"].as_str(), Some("span"));
        assert!(parsed["dur_ns"].as_f64().is_some());
    }

    #[test]
    fn default_serialized_span_has_no_record_fields() {
        let _g = global_guard();
        let rec = Arc::new(TraceRecorder::new());
        install_recorder(rec.clone());
        {
            let s = enter("kernel");
            s.set_records(12345);
        }
        uninstall_recorder();
        let j = rec.take()[0].to_json();
        if cfg!(feature = "trusted-owner") {
            assert!(j.contains("\"records\":12345"), "missing records in {j}");
        } else {
            assert!(!j.contains("records"), "data-dependent field in {j}");
        }
    }

    #[test]
    fn spans_across_threads_get_distinct_tracks() {
        let _g = global_guard();
        let rec = Arc::new(TraceRecorder::new());
        install_recorder(rec.clone());
        std::thread::scope(|scope| {
            for w in 0..2 {
                let _ = w;
                scope.spawn(move || {
                    set_track_name(&format!("worker-{w}"));
                    let _s = enter("task");
                    spin(10_000);
                });
            }
        });
        uninstall_recorder();
        let spans = rec.take();
        assert_eq!(spans.len(), 2);
        assert_ne!(spans[0].track, spans[1].track);
        // Cross-thread spans are roots of their own tracks.
        assert!(spans.iter().all(|s| s.parent.is_none()));
        let names = rec.track_names();
        assert_eq!(names.len(), 2);
        assert!(names.values().any(|n| &**n == "worker-0"));
    }

    #[test]
    fn attribution_folds_by_name_and_sorts_by_self_time() {
        let spans = vec![
            CompletedSpan {
                id: 1,
                parent: None,
                name: "a",
                detail: None,
                track: 1,
                start_ns: 0,
                dur_ns: 100,
                child_ns: 80,
                #[cfg(feature = "trusted-owner")]
                records: 0,
            },
            CompletedSpan {
                id: 2,
                parent: Some(1),
                name: "b",
                detail: None,
                track: 1,
                start_ns: 10,
                dur_ns: 80,
                child_ns: 0,
                #[cfg(feature = "trusted-owner")]
                records: 0,
            },
            CompletedSpan {
                id: 3,
                parent: None,
                name: "b",
                detail: None,
                track: 1,
                start_ns: 200,
                dur_ns: 5,
                child_ns: 0,
                #[cfg(feature = "trusted-owner")]
                records: 0,
            },
        ];
        let rows = attribution(&spans);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].name, "b");
        assert_eq!(rows[0].count, 2);
        assert_eq!(rows[0].total_ns, 85);
        assert_eq!(rows[0].self_ns, 85);
        assert_eq!(rows[1].name, "a");
        assert_eq!(rows[1].self_ns, 20);
        // Self times tile the profiled wall-clock.
        let total_self: u64 = rows.iter().map(|r| r.self_ns).sum();
        assert_eq!(total_self, 105);
    }

    #[test]
    fn aggregate_mode_folds_agg_spans_by_name_and_detail() {
        let _g = global_guard();
        let rec = Arc::new(TraceRecorder::with_mode(SpanMode::Aggregate));
        install_recorder(rec.clone());
        {
            let _outer = enter("exec/run");
            for _ in 0..3 {
                let _s = enter_agg_with("noisy_count", || "part[*]/scale(x1)/root".to_string());
                spin(5_000);
            }
            let _other = enter_agg_with("noisy_sum", || "root".to_string());
        }
        uninstall_recorder();
        // Only the non-agg span is stored individually.
        let spans = rec.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "exec/run");
        let aggs = rec.aggregated();
        assert_eq!(aggs.len(), 2);
        let count_row = &aggs[0];
        assert_eq!(count_row.name, "noisy_count");
        assert_eq!(count_row.detail.as_deref(), Some("part[*]/scale(x1)/root"));
        assert_eq!(count_row.count, 3);
        assert!(count_row.total_ns > 0);
        assert_eq!(aggs[1].name, "noisy_sum");
        assert_eq!(aggs[1].count, 1);
        // The parent still sees the folded spans as children.
        assert_eq!(
            spans[0].child_ns,
            aggs.iter().map(|a| a.total_ns).sum::<u64>()
        );
        // Attribution is fed from both sources.
        let rows = attribution_with_aggregates(&spans, &aggs);
        assert_eq!(rows.len(), 3);
        let nc = rows.iter().find(|r| r.name == "noisy_count").unwrap();
        assert_eq!(nc.count, 3);
        assert_eq!(nc.total_ns, count_row.total_ns);
        assert!(rec.take_aggregated().len() == 2 && rec.aggregated().is_empty());
    }

    #[test]
    fn full_mode_records_agg_spans_individually() {
        let _g = global_guard();
        let rec = Arc::new(TraceRecorder::new());
        assert_eq!(rec.mode(), SpanMode::Full);
        install_recorder(rec.clone());
        for _ in 0..2 {
            let _s = enter_agg_with("noisy_count", || "root".to_string());
        }
        uninstall_recorder();
        assert_eq!(rec.spans().len(), 2);
        assert!(rec.aggregated().is_empty());
    }

    #[test]
    fn reinstall_returns_the_previous_recorder() {
        let _g = global_guard();
        let a = Arc::new(TraceRecorder::new());
        let b = Arc::new(TraceRecorder::new());
        assert!(install_recorder(a.clone()).is_none());
        let old = install_recorder(b).expect("a was installed");
        assert!(Arc::ptr_eq(&old, &a));
        assert!(uninstall_recorder().is_some());
        assert!(!profiling_enabled());
    }
}
