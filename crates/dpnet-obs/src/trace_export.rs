//! Chrome trace-event export for completed spans.
//!
//! Writes the JSON object format understood by `chrome://tracing` and
//! Perfetto (<https://ui.perfetto.dev>): a `traceEvents` array of complete
//! (`"ph":"X"`) events, one per [`CompletedSpan`], with timestamps and
//! durations in *microseconds* (fractional — the format takes floats, so
//! nanosecond precision survives). Each span track becomes one `tid` lane
//! under a single `pid`, named through `"ph":"M"` `thread_name` metadata
//! events where [`crate::span::set_track_name`] registered a name.
//!
//! The exporter serializes exactly what the spans carry, so the crate's
//! privacy-safety rule flows through unchanged: in default builds a trace
//! file contains names, details, links and timings — never record counts.

use crate::json::{escape, number};
use crate::span::{AggregatedSpans, CompletedSpan};
use std::collections::BTreeMap;
use std::io::{self, Write};
use std::sync::Arc;

/// The `tid` lane synthetic aggregate events render on. Real span tracks
/// are numbered from 1, so lane 0 is free.
const AGG_TRACK: u64 = 0;

fn us(ns: u64) -> String {
    number(ns as f64 / 1000.0)
}

/// One sample of a Chrome trace *counter* track (`"ph":"C"`). Perfetto
/// renders a counter's samples as a stepped area chart alongside the span
/// lanes — this is how EXPLAIN ANALYZE shows the privacy budget draining
/// (ε spent after each charge) in the same timeline as the worker tracks.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterSample {
    /// Counter track name, e.g. `"eps spent (root)"`.
    pub name: String,
    /// Series name inside the counter track, e.g. `"eps"`.
    pub series: &'static str,
    /// Sample timestamp (ns since the process clock epoch).
    pub at_ns: u64,
    /// The counter's value at `at_ns`.
    pub value: f64,
}

/// Write `spans` as one Chrome trace-event JSON document. `track_names`
/// maps track ids to display names (see
/// [`TraceRecorder::track_names`](crate::span::TraceRecorder::track_names));
/// unnamed tracks display as `track-<id>`.
pub fn write_chrome_trace<W: Write>(
    w: W,
    spans: &[CompletedSpan],
    track_names: &BTreeMap<u64, Arc<str>>,
) -> io::Result<()> {
    write_chrome_trace_with_counters(w, spans, track_names, &[])
}

/// [`write_chrome_trace`] with counter tracks appended: one `"ph":"C"`
/// event per [`CounterSample`], sharing the spans' `pid` so Perfetto
/// shows the counters in the same timeline.
pub fn write_chrome_trace_with_counters<W: Write>(
    w: W,
    spans: &[CompletedSpan],
    track_names: &BTreeMap<u64, Arc<str>>,
    counters: &[CounterSample],
) -> io::Result<()> {
    write_chrome_trace_aggregated(w, spans, track_names, counters, &[])
}

/// The full exporter: spans, counter tracks, *and* the folded
/// [`AggregatedSpans`] rows a [`crate::span::SpanMode::Aggregate`]
/// recorder produced. Each aggregate row becomes one
/// synthetic `"ph":"X"` event on a dedicated `tid 0` lane named
/// `"aggregated spans"`, laid end-to-end (the lane shows *total* time per
/// charge path, not a timeline) with the fold's `count` in its args.
pub fn write_chrome_trace_aggregated<W: Write>(
    mut w: W,
    spans: &[CompletedSpan],
    track_names: &BTreeMap<u64, Arc<str>>,
    counters: &[CounterSample],
    aggs: &[AggregatedSpans],
) -> io::Result<()> {
    write!(w, "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[")?;
    let mut first = true;
    let sep = |w: &mut W, first: &mut bool| -> io::Result<()> {
        if *first {
            *first = false;
            Ok(())
        } else {
            write!(w, ",")
        }
    };

    // One thread_name metadata event per track that appears in the data.
    let mut tracks: Vec<u64> = spans.iter().map(|s| s.track).collect();
    tracks.sort_unstable();
    tracks.dedup();
    if !aggs.is_empty() {
        sep(&mut w, &mut first)?;
        write!(
            w,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{AGG_TRACK},\
             \"args\":{{\"name\":\"aggregated spans\"}}}}"
        )?;
    }
    for track in &tracks {
        let name: String = match track_names.get(track) {
            Some(n) => n.to_string(),
            None => format!("track-{track}"),
        };
        sep(&mut w, &mut first)?;
        write!(
            w,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{track},\"args\":{{\"name\":{}}}}}",
            escape(&name)
        )?;
    }

    for s in spans {
        sep(&mut w, &mut first)?;
        write!(
            w,
            "{{\"name\":{},\"cat\":\"dpnet\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{},\"args\":{{\"id\":{}",
            escape(s.name),
            us(s.start_ns),
            us(s.dur_ns),
            s.track,
            s.id,
        )?;
        if let Some(parent) = s.parent {
            write!(w, ",\"parent\":{parent}")?;
        }
        write!(w, ",\"self_us\":{}", us(s.self_ns()))?;
        if let Some(detail) = &s.detail {
            write!(w, ",\"detail\":{}", escape(detail))?;
        }
        #[cfg(feature = "trusted-owner")]
        write!(w, ",\"records\":{}", s.records)?;
        write!(w, "}}}}")?;
    }
    // Aggregate rows: end-to-end on the dedicated lane, so a row's width
    // reads as total time spent under that (name, charge path).
    let mut cursor_ns = 0u64;
    for a in aggs {
        sep(&mut w, &mut first)?;
        write!(
            w,
            "{{\"name\":{},\"cat\":\"dpnet-agg\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
             \"pid\":1,\"tid\":{AGG_TRACK},\"args\":{{\"count\":{},\"self_us\":{}",
            escape(a.name),
            us(cursor_ns),
            us(a.total_ns),
            a.count,
            us(a.self_ns()),
        )?;
        if let Some(detail) = &a.detail {
            write!(w, ",\"detail\":{}", escape(detail))?;
        }
        write!(w, "}}}}")?;
        cursor_ns += a.total_ns;
    }
    for c in counters {
        sep(&mut w, &mut first)?;
        write!(
            w,
            "{{\"name\":{},\"ph\":\"C\",\"ts\":{},\"pid\":1,\"args\":{{{}:{}}}}}",
            escape(&c.name),
            us(c.at_ns),
            escape(c.series),
            number(c.value)
        )?;
    }
    write!(w, "]}}")?;
    w.flush()
}

/// [`write_chrome_trace`] into a `String`.
pub fn chrome_trace_json(spans: &[CompletedSpan], track_names: &BTreeMap<u64, Arc<str>>) -> String {
    chrome_trace_json_with_counters(spans, track_names, &[])
}

/// [`write_chrome_trace_with_counters`] into a `String`.
pub fn chrome_trace_json_with_counters(
    spans: &[CompletedSpan],
    track_names: &BTreeMap<u64, Arc<str>>,
    counters: &[CounterSample],
) -> String {
    chrome_trace_json_aggregated(spans, track_names, counters, &[])
}

/// [`write_chrome_trace_aggregated`] into a `String`.
pub fn chrome_trace_json_aggregated(
    spans: &[CompletedSpan],
    track_names: &BTreeMap<u64, Arc<str>>,
    counters: &[CounterSample],
    aggs: &[AggregatedSpans],
) -> String {
    let mut buf = Vec::new();
    write_chrome_trace_aggregated(&mut buf, spans, track_names, counters, aggs)
        .expect("writing to a Vec cannot fail");
    String::from_utf8(buf).expect("exporter emits UTF-8")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(id: u64, parent: Option<u64>, name: &'static str, track: u64) -> CompletedSpan {
        CompletedSpan {
            id,
            parent,
            name,
            detail: if id == 1 {
                Some(Arc::from("scale(x2)/root"))
            } else {
                None
            },
            track,
            start_ns: 1_500 * id,
            dur_ns: 2_250,
            child_ns: 0,
            #[cfg(feature = "trusted-owner")]
            records: 7,
        }
    }

    #[test]
    fn trace_has_complete_events_and_thread_names() {
        let spans = vec![span(1, None, "outer", 3), span(2, Some(1), "inner", 4)];
        let mut names = BTreeMap::new();
        names.insert(3u64, Arc::from("main"));
        let json = chrome_trace_json(&spans, &names);
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        // Metadata events for both tracks; the unnamed one gets a fallback.
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("{\"name\":\"main\"}"));
        assert!(json.contains("{\"name\":\"track-4\"}"));
        // Complete events in microseconds: 1500 ns → 1.5 µs, 2250 → 2.25.
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":1.5,"));
        assert!(json.contains("\"dur\":2.25,"));
        assert!(json.contains("\"parent\":1"));
        assert!(json.contains("\"detail\":\"scale(x2)/root\""));
    }

    #[test]
    fn event_count_matches_spans_plus_tracks() {
        let spans = vec![span(1, None, "a", 1), span(2, None, "b", 1)];
        let json = chrome_trace_json(&spans, &BTreeMap::new());
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 2);
        assert_eq!(json.matches("\"ph\":\"M\"").count(), 1);
        // Events are comma-separated (valid array syntax).
        assert!(!json.contains("}{"));
    }

    #[test]
    fn empty_trace_is_valid() {
        let json = chrome_trace_json(&[], &BTreeMap::new());
        assert_eq!(json, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}");
    }

    #[test]
    fn default_trace_omits_record_counts() {
        let json = chrome_trace_json(&[span(2, None, "k", 1)], &BTreeMap::new());
        if cfg!(feature = "trusted-owner") {
            assert!(json.contains("\"records\":7"));
        } else {
            assert!(!json.contains("records"), "data-dependent field in {json}");
        }
    }

    fn eps_counters() -> Vec<CounterSample> {
        vec![
            CounterSample {
                name: "eps spent (root)".to_string(),
                series: "eps",
                at_ns: 1_000,
                value: 0.1,
            },
            CounterSample {
                name: "eps spent (root)".to_string(),
                series: "eps",
                at_ns: 2_500,
                value: 0.35,
            },
        ]
    }

    #[test]
    fn counter_samples_become_ph_c_events() {
        let spans = vec![span(1, None, "outer", 3)];
        let json = chrome_trace_json_with_counters(&spans, &BTreeMap::new(), &eps_counters());
        assert_eq!(json.matches("\"ph\":\"C\"").count(), 2);
        assert!(json.contains("{\"name\":\"eps spent (root)\",\"ph\":\"C\",\"ts\":1,\"pid\":1,\"args\":{\"eps\":0.1}}"));
        assert!(json.contains("\"ts\":2.5,"));
        assert!(json.contains("{\"eps\":0.35}"));
        // Counters without spans still produce a valid document.
        let only = chrome_trace_json_with_counters(&[], &BTreeMap::new(), &eps_counters());
        assert!(only.starts_with("{\"displayTimeUnit\""));
        assert!(only.ends_with("]}"));
        assert!(!only.contains("}{"));
    }

    #[test]
    fn aggregate_rows_become_synthetic_events_on_their_own_lane() {
        use crate::json::{parse_value, JsonValue};
        let aggs = vec![
            AggregatedSpans {
                name: "noisy_count",
                detail: Some(Arc::from("part[*]/scale(x1)/root")),
                count: 1200,
                total_ns: 3_000,
                child_ns: 500,
            },
            AggregatedSpans {
                name: "noisy_sum",
                detail: None,
                count: 4,
                total_ns: 1_000,
                child_ns: 0,
            },
        ];
        let spans = vec![span(1, None, "exec/run", 3)];
        let json = chrome_trace_json_aggregated(&spans, &BTreeMap::new(), &[], &aggs);
        // Dedicated lane gets a name; rows lie end-to-end on tid 0.
        assert!(json.contains("{\"name\":\"aggregated spans\"}"));
        assert!(json.contains(
            "{\"name\":\"noisy_count\",\"cat\":\"dpnet-agg\",\"ph\":\"X\",\"ts\":0,\"dur\":3,\
             \"pid\":1,\"tid\":0,\"args\":{\"count\":1200,\"self_us\":2.5,\
             \"detail\":\"part[*]/scale(x1)/root\"}}"
        ));
        assert!(
            json.contains("{\"name\":\"noisy_sum\",\"cat\":\"dpnet-agg\",\"ph\":\"X\",\"ts\":3,")
        );
        let doc = parse_value(&json).expect("aggregated trace is parseable JSON");
        let events = doc.get("traceEvents").and_then(JsonValue::items).unwrap();
        // 1 agg-lane meta + 1 span-track meta + 1 span + 2 aggregate rows.
        assert_eq!(events.len(), 5);
        // Without aggregate rows the document is unchanged from the
        // counters-only writer (full mode stays byte-stable).
        assert_eq!(
            chrome_trace_json_aggregated(&spans, &BTreeMap::new(), &[], &[]),
            chrome_trace_json(&spans, &BTreeMap::new())
        );
    }

    #[test]
    fn emitted_trace_round_trips_through_the_vendored_parser() {
        use crate::json::{parse_value, JsonValue};
        let spans = vec![
            span(1, None, "outer", 3),
            span(2, Some(1), "agg \"quoted\"\nname", 4),
        ];
        let mut names = BTreeMap::new();
        names.insert(3u64, Arc::from("main"));
        let json = chrome_trace_json_with_counters(&spans, &names, &eps_counters());
        let doc = parse_value(&json).expect("emitted trace is parseable JSON");
        assert_eq!(
            doc.get("displayTimeUnit").and_then(JsonValue::as_str),
            Some("ms")
        );
        let events = doc
            .get("traceEvents")
            .and_then(JsonValue::items)
            .expect("traceEvents array");
        // 2 thread_name metas + 2 spans + 2 counter samples.
        assert_eq!(events.len(), 6);
        let phases: Vec<&str> = events
            .iter()
            .map(|e| e.get("ph").and_then(JsonValue::as_str).unwrap())
            .collect();
        assert_eq!(phases, ["M", "M", "X", "X", "C", "C"]);
        // The nasty span name survived escaping and unescaping.
        assert!(events.iter().any(|e| {
            e.get("name").and_then(JsonValue::as_str) == Some("agg \"quoted\"\nname")
        }));
        // Counter values are reachable as nested numbers.
        let last = events.last().unwrap();
        assert_eq!(
            last.get("args")
                .and_then(|a| a.get("eps"))
                .and_then(JsonValue::as_f64),
            Some(0.35)
        );
    }
}
