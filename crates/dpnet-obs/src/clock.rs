//! Monotonic process clock and span timing.
//!
//! Ledger entries and events are stamped with nanoseconds since the first
//! use of the clock in this process — monotonic, cheap, and meaningful for
//! ordering and latency arithmetic within one run. Wall-clock time (for
//! naming report files and stamping audit exports) comes separately from
//! [`unix_time_s`].

use std::sync::OnceLock;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process clock epoch (first call in this process).
/// Monotonic: later calls never return smaller values.
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// Seconds since the Unix epoch (wall clock), for stamping exports.
pub fn unix_time_s() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// Measures one span of work.
#[derive(Debug, Clone, Copy)]
pub struct SpanTimer {
    started: Instant,
    started_ns: u64,
}

impl SpanTimer {
    /// Start timing now.
    pub fn start() -> Self {
        SpanTimer {
            started: Instant::now(),
            started_ns: now_ns(),
        }
    }

    /// Nanoseconds elapsed since [`SpanTimer::start`].
    pub fn elapsed_ns(&self) -> u64 {
        self.started.elapsed().as_nanos() as u64
    }

    /// The monotonic timestamp at which the span started.
    pub fn started_at_ns(&self) -> u64 {
        self.started_ns
    }
}

/// Run `f`, returning its result and the elapsed nanoseconds.
pub fn timed<R>(f: impl FnOnce() -> R) -> (R, u64) {
    let t = SpanTimer::start();
    let r = f();
    (r, t.elapsed_ns())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn now_is_monotonic() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }

    #[test]
    fn spans_measure_nonzero_work() {
        let (sum, ns) = timed(|| (0..10_000u64).sum::<u64>());
        assert_eq!(sum, 49_995_000);
        assert!(ns > 0);
    }

    #[test]
    fn unix_time_is_plausible() {
        // After 2020-01-01, before 2100.
        let t = unix_time_s();
        assert!(t > 1_577_836_800 && t < 4_102_444_800, "t = {t}");
    }
}
