//! Property tests for the span profiler: arbitrary enter/exit sequences —
//! including across threads — must always yield well-formed parent/child
//! trees with non-negative self time, and the default serialized form must
//! stay free of record-derived fields.

use dpnet_obs::span::{enter, enter_with, set_track_name};
use dpnet_obs::{
    chrome_trace_json, install_recorder, uninstall_recorder, CompletedSpan, TraceRecorder,
};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard};

/// Tests in this binary mutate the process-wide profiler slot; serialize.
fn global_guard() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

const NAMES: [&str; 4] = ["alpha", "beta", "gamma", "delta"];
const MAX_DEPTH: usize = 8;

/// Interpret one thread's program: each token either opens a span (kind 0–2,
/// varying name / detail / records) or closes the innermost open one. Any
/// guards still open at the end close in LIFO order by construction — a
/// `SpanGuard` drop always pops the top of the thread's stack.
fn run_program(worker: usize, program: &[u8]) {
    set_track_name(&format!("prop-worker-{worker}"));
    let mut guards = Vec::new();
    for &tok in program {
        let kind = tok % 4;
        if kind < 3 && guards.len() < MAX_DEPTH {
            let name = NAMES[(tok as usize / 4) % NAMES.len()];
            let g = match kind {
                0 => enter(name),
                1 => enter_with(name, || format!("scale(x2)/part[{tok}]/root")),
                _ => {
                    let g = enter(name);
                    g.set_records(u64::from(tok) + 1);
                    g
                }
            };
            guards.push(g);
        } else {
            guards.pop();
        }
    }
    while guards.pop().is_some() {}
}

/// Structural well-formedness of a completed trace.
fn check_tree(spans: &[CompletedSpan]) -> Result<(), String> {
    let mut by_id: BTreeMap<u64, &CompletedSpan> = BTreeMap::new();
    for s in spans {
        if by_id.insert(s.id, s).is_some() {
            return Err(format!("duplicate span id {}", s.id));
        }
    }
    let mut child_sums: BTreeMap<u64, u64> = BTreeMap::new();
    for s in spans {
        // Non-negative self time, exactly: duration covers all child time.
        if s.child_ns > s.dur_ns {
            return Err(format!(
                "span {} ({}) child_ns {} > dur_ns {}",
                s.id, s.name, s.child_ns, s.dur_ns
            ));
        }
        if s.self_ns() != s.dur_ns - s.child_ns {
            return Err(format!("span {} self_ns mismatch", s.id));
        }
        if let Some(pid) = s.parent {
            let p = by_id
                .get(&pid)
                .ok_or_else(|| format!("span {} has dangling parent {pid}", s.id))?;
            if p.track != s.track {
                return Err(format!("span {} crosses tracks to parent {pid}", s.id));
            }
            // Ids are allocated at enter time, so a child is strictly
            // younger than its parent — this also rules out cycles.
            if s.id <= pid {
                return Err(format!("span {} not younger than parent {pid}", s.id));
            }
            if s.start_ns < p.start_ns {
                return Err(format!("span {} starts before parent {pid}", s.id));
            }
            *child_sums.entry(pid).or_insert(0) += s.dur_ns;
        }
    }
    // A parent's child_ns is exactly the sum of its direct children's
    // durations (the drop path adds each child as it completes).
    for s in spans {
        let expect = child_sums.get(&s.id).copied().unwrap_or(0);
        if s.child_ns != expect {
            return Err(format!(
                "span {} ({}) child_ns {} != sum of children {}",
                s.id, s.name, s.child_ns, expect
            ));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn arbitrary_enter_exit_sequences_yield_well_formed_trees(
        programs in prop::collection::vec(
            prop::collection::vec(any::<u8>(), 0..40),
            1..4,
        ),
    ) {
        let _g = global_guard();
        let rec = Arc::new(TraceRecorder::new());
        install_recorder(rec.clone());
        std::thread::scope(|scope| {
            for (w, program) in programs.iter().enumerate() {
                scope.spawn(move || run_program(w, program));
            }
        });
        uninstall_recorder();
        let spans = rec.take();

        if let Err(e) = check_tree(&spans) {
            prop_assert!(false, "{e}");
        }

        // Every thread ran on its own track; parent links never cross
        // tracks (checked above), so each track holds an independent tree.
        let mut tracks: Vec<u64> = spans.iter().map(|s| s.track).collect();
        tracks.sort_unstable();
        tracks.dedup();
        prop_assert!(tracks.len() <= programs.len());
        for t in &tracks {
            prop_assert!(
                spans.iter().any(|s| s.track == *t && s.parent.is_none()),
                "track {t} has spans but no root"
            );
        }

        // The Chrome trace carries exactly one complete event per span.
        let json = chrome_trace_json(&spans, &rec.track_names());
        prop_assert_eq!(json.matches("\"ph\":\"X\"").count(), spans.len());
    }

    #[test]
    fn default_serialized_spans_are_free_of_record_fields(
        program in prop::collection::vec(any::<u8>(), 1..32),
    ) {
        let _g = global_guard();
        let rec = Arc::new(TraceRecorder::new());
        install_recorder(rec.clone());
        run_program(0, &program);
        uninstall_recorder();
        let spans = rec.take();
        let trace = chrome_trace_json(&spans, &rec.track_names());
        for s in &spans {
            let j = s.to_json();
            if cfg!(feature = "trusted-owner") {
                // Owner builds may carry counts; the field must then parse.
                prop_assert!(j.contains("\"records\":"), "missing records in {}", j);
            } else {
                prop_assert!(!j.contains("records"), "data-dependent field in {}", j);
                prop_assert!(!j.contains("tasks"), "data-dependent field in {}", j);
            }
        }
        if !cfg!(feature = "trusted-owner") {
            prop_assert!(!trace.contains("records"), "data-dependent field in trace");
        }
    }
}
