//! Property-based tests of the toolkit primitives.

use dpnet_toolkit::cdf::{cdf_hierarchical, cdf_partition, noise_free_cdf};
use dpnet_toolkit::isotonic::isotonic_regression;
use dpnet_toolkit::linalg::{jacobi_eigen, subspace_residual, top_eigenvectors, Matrix};
use dpnet_toolkit::quantiles::quantiles_from_cdf;
use dpnet_toolkit::stats::{percentile, relative_rmse};
use pinq::{Accountant, NoiseSource, Queryable};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn noise_free_cdf_is_monotone_and_bounded(
        values in prop::collection::vec(0usize..200, 0..300),
        buckets in 1usize..200,
    ) {
        let cdf = noise_free_cdf(&values, buckets);
        prop_assert_eq!(cdf.len(), buckets);
        prop_assert!(cdf.windows(2).all(|w| w[0] <= w[1]));
        let in_range = values.iter().filter(|&&v| v < buckets).count() as f64;
        prop_assert_eq!(*cdf.last().unwrap_or(&0.0), in_range);
    }

    #[test]
    fn cdf_estimators_converge_at_huge_epsilon(
        values in prop::collection::vec(0usize..64, 1..500),
        buckets in 2usize..64,
    ) {
        let truth = noise_free_cdf(&values, buckets);
        let acct = Accountant::new(f64::MAX / 2.0);
        let noise = NoiseSource::seeded(7);
        let q = Queryable::new(values, &acct, &noise);
        let c2 = cdf_partition(&q, buckets, 1e6).unwrap();
        let c3 = cdf_hierarchical(&q, buckets, 1e6).unwrap();
        for b in 0..buckets {
            prop_assert!((c2[b] - truth[b]).abs() < 0.1, "cdf2 at {b}");
            prop_assert!((c3[b] - truth[b]).abs() < 0.1, "cdf3 at {b}");
        }
    }

    #[test]
    fn isotonic_output_is_monotone_and_idempotent(
        input in prop::collection::vec(-1e6f64..1e6, 0..200),
    ) {
        let out = isotonic_regression(&input);
        prop_assert_eq!(out.len(), input.len());
        prop_assert!(out.windows(2).all(|w| w[0] <= w[1] + 1e-9));
        let again = isotonic_regression(&out);
        for (a, b) in out.iter().zip(&again) {
            prop_assert!((a - b).abs() < 1e-9);
        }
        // Mass is preserved.
        let s1: f64 = input.iter().sum();
        let s2: f64 = out.iter().sum();
        prop_assert!((s1 - s2).abs() < 1e-6 * (1.0 + s1.abs()));
    }

    #[test]
    fn quantiles_from_cdf_are_sorted(
        cdf_steps in prop::collection::vec(0.0f64..100.0, 1..100),
        fracs in prop::collection::vec(0.0f64..1.0, 1..8),
    ) {
        // Build a cumulative curve from non-negative steps.
        let mut cdf = Vec::with_capacity(cdf_steps.len());
        let mut acc = 0.0;
        for s in &cdf_steps {
            acc += s;
            cdf.push(acc);
        }
        let mut sorted_fracs = fracs.clone();
        sorted_fracs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let qs = quantiles_from_cdf(&cdf, &sorted_fracs);
        prop_assert!(qs.windows(2).all(|w| w[0] <= w[1]));
        prop_assert!(qs.iter().all(|&q| q < cdf.len()));
    }

    #[test]
    fn jacobi_and_power_iteration_agree_on_the_top_component(
        seed_vals in prop::collection::vec(-5.0f64..5.0, 6),
    ) {
        // Symmetric 3×3 from the seed values.
        let m = Matrix::from_vec(3, 3, vec![
            seed_vals[0].abs() + 3.0, seed_vals[1], seed_vals[2],
            seed_vals[1], seed_vals[3].abs() + 2.0, seed_vals[4],
            seed_vals[2], seed_vals[4], seed_vals[5].abs() + 1.0,
        ]);
        let (vals, vecs) = jacobi_eigen(&m, 60);
        let power = top_eigenvectors(&m, 1, 300);
        prop_assume!(vals[0] > vals[1] + 0.05); // distinct top eigenvalue
        if power.is_empty() { return Ok(()); }
        let dot: f64 = vecs[0].iter().zip(&power[0]).map(|(a, b)| a * b).sum();
        prop_assert!(dot.abs() > 0.999, "top eigenvector disagreement: {dot}");
    }

    #[test]
    fn residuals_are_orthogonal_to_the_basis(
        x in prop::collection::vec(-10.0f64..10.0, 4),
    ) {
        let basis = vec![
            vec![1.0, 0.0, 0.0, 0.0],
            vec![0.0, std::f64::consts::FRAC_1_SQRT_2, std::f64::consts::FRAC_1_SQRT_2, 0.0],
        ];
        let r = subspace_residual(&x, &basis);
        for b in &basis {
            let dot: f64 = r.iter().zip(b).map(|(a, c)| a * c).sum();
            prop_assert!(dot.abs() < 1e-9, "residual not orthogonal: {dot}");
        }
    }

    #[test]
    fn relative_rmse_is_zero_iff_equal(
        series in prop::collection::vec(1.0f64..1e6, 1..50),
    ) {
        prop_assert_eq!(relative_rmse(&series, &series), 0.0);
        let shifted: Vec<f64> = series.iter().map(|v| v * 1.01).collect();
        prop_assert!((relative_rmse(&shifted, &series) - 0.01).abs() < 1e-9);
    }

    #[test]
    fn percentile_brackets_the_data(
        mut xs in prop::collection::vec(-1e9f64..1e9, 1..100),
        p in 0.0f64..100.0,
    ) {
        let v = percentile(&xs, p);
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert!(v >= xs[0] && v <= xs[xs.len() - 1]);
        prop_assert_eq!(percentile(&xs, 0.0), xs[0]);
        prop_assert_eq!(percentile(&xs, 100.0), xs[xs.len() - 1]);
    }
}
