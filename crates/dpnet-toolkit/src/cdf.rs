//! The three CDF estimators of the paper's §4.1.
//!
//! Empirical CDFs at arbitrary resolution are *impossible* under
//! differential privacy — as the resolution shrinks, `cdf(x) − cdf(x−δ)`
//! depends on just a few records. The paper therefore approximates a CDF
//! over a fixed bucket grid, and §4.1 develops three estimators with very
//! different privacy-efficiency:
//!
//! | estimator | budget cost | error std at each point |
//! |---|---|---|
//! | [`cdf_naive`] (cdf1) | `|buckets| × ε` — or at fixed budget, error ∝ `|buckets|` | `√2/ε` per point, but ε must be split |
//! | [`cdf_partition`] (cdf2) | `ε` (parallel composition) | ∝ `√|buckets|` (prefix-sum accumulation) |
//! | [`cdf_hierarchical`] (cdf3) | `≈ (log₂|buckets|+1) × ε` | ∝ `log(|buckets|)^{3/2}` |
//!
//! Inputs are bucket indices in `0..n_buckets`; the caller discretizes raw
//! values (e.g. 1-ms bins for the paper's retransmission-delay CDF).
//! Outputs are estimates of `#{records with bucket ≤ b}` for each `b`.

//! ## Parallel evaluation
//!
//! The estimators honor the execution context carried by the input
//! queryable: bind a pool once with
//! `data.with_ctx(ExecCtx::pool(&pool))` and every plan materialization
//! and partition inside runs chunked on that pool. Every noise draw still
//! happens on the calling thread in the same order as the sequential path,
//! so at a fixed seed the released values are **bit-identical** for any
//! worker count, and budget charges are identical by construction.

use dpnet_obs::span;
use dpnet_obs::{emit_phase_global, SpanTimer};
use pinq::{Queryable, Result};

/// Noise-free reference CDF over bucket indices. Records with out-of-range
/// buckets are ignored, mirroring the private estimators.
pub fn noise_free_cdf(values: &[usize], n_buckets: usize) -> Vec<f64> {
    let mut hist = vec![0u64; n_buckets];
    for &v in values {
        if v < n_buckets {
            hist[v] += 1;
        }
    }
    let mut out = Vec::with_capacity(n_buckets);
    let mut acc = 0u64;
    for h in hist {
        acc += h;
        out.push(acc as f64);
    }
    out
}

/// cdf1: measure every cumulative count directly with `Where` + `Count`.
///
/// Simple but privacy-hungry: the queries overlap, so sequential composition
/// applies and the total cost is `n_buckets × ε`. Given a fixed total
/// budget, each count gets only `budget/|buckets|`, and the paper's Figure 1
/// shows the resulting error is "incredibly high".
pub fn cdf_naive(data: &Queryable<usize>, n_buckets: usize, eps: f64) -> Result<Vec<f64>> {
    let _prof = span::enter("cdf_naive");
    let timer = SpanTimer::start();
    let mut out = Vec::with_capacity(n_buckets);
    for b in 0..n_buckets {
        let c = data
            .filter(move |&v| v <= b && v < n_buckets)
            .noisy_count(eps)?;
        out.push(c);
    }
    // ε by construction for a stability-1 input: one count per bucket.
    emit_phase_global("cdf_naive", n_buckets as f64 * eps, timer.elapsed_ns());
    Ok(out)
}

/// cdf2: `Partition` into buckets, count each part once, prefix-sum.
///
/// Parallel composition makes the total cost `ε` regardless of resolution.
/// Per-bucket errors accumulate along the prefix sum, but they are
/// independent and cancel somewhat: the error std at any point is
/// `O(√|buckets|)·√2/ε`, and the estimate tends to drift coherently (the
/// paper notes a run may consistently under- or over-estimate).
pub fn cdf_partition(data: &Queryable<usize>, n_buckets: usize, eps: f64) -> Result<Vec<f64>> {
    let _prof = span::enter("cdf_partition");
    let timer = SpanTimer::start();
    // Batched fan-out: one shard-parallel histogram pass instead of
    // materializing 256 single-bucket parts. Charges and noise draws run in
    // part order through the same partition ledger, so the releases are
    // bit-identical to the per-part loop this replaces.
    let keys: Vec<usize> = (0..n_buckets).collect();
    let counts = data.partition_noisy_counts(&keys, |&v| v, eps)?;
    let mut out = Vec::with_capacity(n_buckets);
    let mut tally = 0.0;
    for c in counts {
        tally += c;
        out.push(tally);
    }
    // Parallel composition: ε total regardless of resolution.
    emit_phase_global("cdf_partition", eps, timer.elapsed_ns());
    Ok(out)
}

/// cdf3: hierarchical measurement at log-many resolutions.
///
/// Recursively halve the range with `Partition`; each CDF value is then the
/// sum of at most `log₂|buckets|` released counts, so the error std is
/// `O(log^{3/2}|buckets|)·(1/ε)` while the budget cost is
/// `(log₂|buckets|+1)×ε` — still independent of the resolution itself.
///
/// `n_buckets` is padded internally to a power of two; only the first
/// `n_buckets` outputs are returned.
pub fn cdf_hierarchical(data: &Queryable<usize>, n_buckets: usize, eps: f64) -> Result<Vec<f64>> {
    if n_buckets == 0 {
        return Ok(Vec::new());
    }
    let _prof = span::enter("cdf_hierarchical");
    let timer = SpanTimer::start();
    let max = n_buckets.next_power_of_two();
    // Drop out-of-range values so padding buckets stay empty.
    let data = data.filter(move |&v| v < n_buckets);
    let mut out = Vec::with_capacity(max);
    rec(&data, eps, max, &mut out)?;
    out.truncate(n_buckets);
    let levels = (max.trailing_zeros() + 1) as f64;
    emit_phase_global("cdf_hierarchical", levels * eps, timer.elapsed_ns());
    return Ok(out);

    fn rec(data: &Queryable<usize>, eps: f64, max: usize, out: &mut Vec<f64>) -> Result<()> {
        if max == 1 {
            out.push(data.noisy_count(eps)?);
            return Ok(());
        }
        let half = max / 2;
        let keys = [0usize, 1];
        let parts = data.partition(&keys, move |&v| usize::from(v >= half))?;
        // Cumulative counts within [0, half).
        rec(&parts[0], eps, half, out)?;
        // One cumulative count for the whole left half, then frequencies
        // for [half, max) shifted on top of it.
        let count = parts[0].noisy_count(eps)?;
        let shifted = parts[1].map(move |&v| v - half);
        let mark = out.len();
        rec(&shifted, eps, half, out)?;
        for v in &mut out[mark..] {
            *v += count;
        }
        Ok(())
    }
}

/// Theoretical error standard deviation of `cdf2` at bucket `b` (0-based):
/// the prefix sum of `b+1` independent `Lap(1/ε)` draws.
pub fn cdf_partition_error_std(b: usize, eps: f64) -> f64 {
    (2.0 * (b + 1) as f64).sqrt() / eps
}

/// Upper bound on the error std of `cdf3` at any bucket: at most
/// `log₂(buckets)+1` independent counts are summed.
pub fn cdf_hierarchical_error_std(n_buckets: usize, eps: f64) -> f64 {
    let levels = (n_buckets.next_power_of_two().trailing_zeros() + 1) as f64;
    (2.0 * levels).sqrt() / eps
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinq::{Accountant, ExecCtx, ExecPool, NoiseSource};

    fn dataset(seed: u64, budget: f64) -> (Accountant, Queryable<usize>, Vec<usize>) {
        // Triangular-ish distribution over 64 buckets.
        let mut values = Vec::new();
        for b in 0..64usize {
            for _ in 0..(64 - b) * 20 {
                values.push(b);
            }
        }
        let acct = Accountant::new(budget);
        let noise = NoiseSource::seeded(seed);
        let q = Queryable::new(values.clone(), &acct, &noise);
        (acct, q, values)
    }

    #[test]
    fn noise_free_cdf_is_monotone_and_total() {
        let values = vec![0, 1, 1, 3, 63, 64, 100];
        let cdf = noise_free_cdf(&values, 64);
        assert_eq!(cdf.len(), 64);
        assert!(cdf.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(cdf[63], 5.0); // 64 and 100 are out of range
        assert_eq!(cdf[0], 1.0);
        assert_eq!(cdf[1], 3.0);
    }

    #[test]
    fn cdf_naive_costs_buckets_times_eps() {
        let (acct, q, _) = dataset(1, 100.0);
        cdf_naive(&q, 64, 0.5).unwrap();
        assert!((acct.spent() - 32.0).abs() < 1e-9);
    }

    #[test]
    fn cdf_partition_costs_eps_total() {
        let (acct, q, _) = dataset(2, 1.0);
        cdf_partition(&q, 64, 0.5).unwrap();
        assert!((acct.spent() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn cdf_hierarchical_costs_log_levels() {
        let (acct, q, _) = dataset(3, 10.0);
        cdf_hierarchical(&q, 64, 0.5).unwrap();
        // 64 buckets → log2 = 6 levels of partition + leaf = 7 charges of
        // 0.5 on the deepest path.
        assert!((acct.spent() - 3.5).abs() < 1e-9, "spent {}", acct.spent());
    }

    #[test]
    fn partition_and_hierarchical_track_truth() {
        let (_, q, values) = dataset(4, 100.0);
        let truth = noise_free_cdf(&values, 64);
        let eps = 1.0;
        let c2 = cdf_partition(&q, 64, eps).unwrap();
        let c3 = cdf_hierarchical(&q, 64, eps).unwrap();
        let total = *truth.last().unwrap();
        for b in 0..64 {
            assert!(
                (c2[b] - truth[b]).abs() < 0.02 * total,
                "cdf2 at {b}: {} vs {}",
                c2[b],
                truth[b]
            );
            assert!(
                (c3[b] - truth[b]).abs() < 0.02 * total,
                "cdf3 at {b}: {} vs {}",
                c3[b],
                truth[b]
            );
        }
    }

    #[test]
    fn naive_is_much_worse_at_fixed_budget() {
        // Paper Figure 1(a): at a fixed total budget, cdf1's error is
        // "incredibly high" compared with cdf2/cdf3.
        let n = 64;
        let budget_total = 1.0;
        let (_, q1, values) = dataset(5, 1000.0);
        let truth = noise_free_cdf(&values, n);
        // Split the same total budget across methods.
        let c1 = cdf_naive(&q1, n, budget_total / n as f64).unwrap();
        let c2 = cdf_partition(&q1, n, budget_total).unwrap();
        let err = |est: &[f64]| -> f64 {
            est.iter()
                .zip(&truth)
                .map(|(a, b)| (a - b).powi(2))
                .sum::<f64>()
                .sqrt()
        };
        assert!(
            err(&c1) > 3.0 * err(&c2),
            "cdf1 err {} vs cdf2 err {}",
            err(&c1),
            err(&c2)
        );
    }

    #[test]
    fn hierarchical_handles_non_power_of_two() {
        let (_, q, values) = dataset(6, 100.0);
        let c3 = cdf_hierarchical(&q, 50, 1.0).unwrap();
        assert_eq!(c3.len(), 50);
        let truth = noise_free_cdf(&values, 50);
        let total = *truth.last().unwrap();
        assert!((c3[49] - truth[49]).abs() < 0.03 * total);
    }

    #[test]
    fn hierarchical_of_zero_buckets_is_empty() {
        let (_, q, _) = dataset(7, 1.0);
        assert!(cdf_hierarchical(&q, 0, 1.0).unwrap().is_empty());
    }

    #[test]
    fn single_bucket_cdf_is_a_count() {
        let (_, q, values) = dataset(8, 100.0);
        let c = cdf_hierarchical(&q, 1, 10.0).unwrap();
        let truth = values.iter().filter(|&&v| v == 0).count() as f64;
        assert_eq!(c.len(), 1);
        assert!((c[0] - truth).abs() < 2.0);
    }

    #[test]
    fn pool_variants_release_identical_values_and_charges() {
        // The determinism contract, end to end: binding a pool `ExecCtx`
        // matches the sequential path bit-for-bit at a fixed seed, for any
        // worker count, with identical budget spends.
        let run = |workers: Option<usize>| -> (Vec<f64>, Vec<f64>, Vec<f64>, f64) {
            let (acct, q, _) = dataset(0xCDF, 1000.0);
            let q = match workers {
                None => q,
                Some(w) => q.with_ctx(ExecCtx::pool(&ExecPool::new(w).unwrap())),
            };
            let (c1, c2, c3) = (
                cdf_naive(&q, 32, 0.1).unwrap(),
                cdf_partition(&q, 32, 1.0).unwrap(),
                cdf_hierarchical(&q, 32, 0.5).unwrap(),
            );
            (c1, c2, c3, acct.spent())
        };
        let sequential = run(None);
        for workers in [1, 2, 8] {
            assert_eq!(sequential, run(Some(workers)), "workers={workers}");
        }
    }

    #[test]
    fn error_std_helpers_are_monotone() {
        assert!(cdf_partition_error_std(63, 0.1) > cdf_partition_error_std(0, 0.1));
        assert!(cdf_hierarchical_error_std(1024, 0.1) > cdf_hierarchical_error_std(2, 0.1));
        // At 64 buckets, the cdf3 bound beats cdf2's worst point.
        assert!(cdf_hierarchical_error_std(64, 0.1) < cdf_partition_error_std(63, 0.1));
    }
}
