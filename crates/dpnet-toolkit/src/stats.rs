//! Accuracy metrics and summary statistics.
//!
//! The paper's headline accuracy figure is a *relative* RMSE (§5.1.1):
//! `√( (1/n) Σᵢ (1 − vp[i]/vnf[i])² )`, where `vp` is the privately
//! computed value and `vnf` the noise-free value at index `i`. This module
//! implements that metric plus plain helpers used across the harness.

/// The paper's relative RMSE between a private and a noise-free series.
/// Indices where the noise-free value is zero are skipped (the ratio is
/// undefined there); if every index is skipped the result is 0.
pub fn relative_rmse(private: &[f64], noise_free: &[f64]) -> f64 {
    assert_eq!(private.len(), noise_free.len(), "series lengths must match");
    let mut total = 0.0;
    let mut n = 0usize;
    for (&vp, &vnf) in private.iter().zip(noise_free) {
        if vnf == 0.0 {
            continue;
        }
        total += (1.0 - vp / vnf).powi(2);
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        (total / n as f64).sqrt()
    }
}

/// Absolute RMSE between two series.
pub fn rmse(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    if a.is_empty() {
        return 0.0;
    }
    let total: f64 = a.iter().zip(b).map(|(x, y)| (x - y).powi(2)).sum();
    (total / a.len() as f64).sqrt()
}

/// Arithmetic mean (0 for an empty slice).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population standard deviation (0 for fewer than two values).
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// `p`-th percentile (0 ≤ p ≤ 100) by nearest-rank on a copy of the data.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    assert!((0.0..=100.0).contains(&p), "percentile out of range");
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("comparable values"));
    let rank = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_rmse_matches_hand_computation() {
        // vp/vnf ratios: 1.1 and 0.9 → (0.1² + 0.1²)/2 = 0.01 → 0.1.
        let r = relative_rmse(&[110.0, 90.0], &[100.0, 100.0]);
        assert!((r - 0.1).abs() < 1e-12);
    }

    #[test]
    fn relative_rmse_skips_zero_denominators() {
        let r = relative_rmse(&[5.0, 110.0], &[0.0, 100.0]);
        assert!((r - 0.1).abs() < 1e-12);
        assert_eq!(relative_rmse(&[1.0], &[0.0]), 0.0);
    }

    #[test]
    fn perfect_agreement_is_zero() {
        assert_eq!(relative_rmse(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        assert_eq!(rmse(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn rmse_basic() {
        assert!((rmse(&[0.0, 0.0], &[3.0, 4.0]) - (12.5f64).sqrt()).abs() < 1e-12);
        assert_eq!(rmse(&[], &[]), 0.0);
    }

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(std_dev(&[5.0]), 0.0);
        assert!((std_dev(&[2.0, 4.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_nearest_rank() {
        let xs = vec![10.0, 20.0, 30.0, 40.0, 50.0];
        assert_eq!(percentile(&xs, 0.0), 10.0);
        assert_eq!(percentile(&xs, 50.0), 30.0);
        assert_eq!(percentile(&xs, 100.0), 50.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "series lengths")]
    fn mismatched_lengths_panic() {
        relative_rmse(&[1.0], &[1.0, 2.0]);
    }
}
