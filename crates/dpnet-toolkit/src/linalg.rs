//! Small dense linear algebra: matrices, Jacobi eigendecomposition, PCA.
//!
//! The anomaly-detection analysis (Lakhina et al., paper §5.3.1) applies
//! principal components analysis to a link×time traffic matrix: the top few
//! principal components span the "normal" traffic subspace, and the norm of
//! each time bin's residual (its projection onto the complement) flags
//! volume anomalies. PCA itself runs on *released* (noisy) aggregates, so it
//! needs no privacy machinery — just a working eigensolver, provided here
//! via the classical Jacobi rotation method for symmetric matrices.

use std::fmt;

/// A dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Create a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Create from row-major data.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        Matrix { rows, cols, data }
    }

    /// Create from nested rows.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map(|x| x.len()).unwrap_or(0);
        assert!(rows.iter().all(|row| row.len() == c), "ragged rows");
        Matrix {
            rows: r,
            cols: c,
            data: rows.iter().flatten().cloned().collect(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }

    /// One row as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Matrix product `self × other`.
    ///
    /// # Panics
    /// Panics on incompatible shapes.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "inner dimensions must agree");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(r, k);
                if a == 0.0 {
                    continue;
                }
                for c in 0..other.cols {
                    out.data[r * other.cols + c] += a * other.get(k, c);
                }
            }
        }
        out
    }

    /// Subtract the column means in place, returning the means. PCA is
    /// conventionally performed on centered data.
    pub fn center_columns(&mut self) -> Vec<f64> {
        let mut means = vec![0.0; self.cols];
        for r in 0..self.rows {
            for (c, m) in means.iter_mut().enumerate() {
                *m += self.get(r, c);
            }
        }
        for m in means.iter_mut() {
            *m /= self.rows.max(1) as f64;
        }
        for r in 0..self.rows {
            for (c, &m) in means.iter().enumerate() {
                let v = self.get(r, c) - m;
                self.set(r, c, v);
            }
        }
        means
    }

    /// The Gram matrix `Xᵀ X / (rows − 1)`: the covariance of the columns
    /// when the matrix has been centered.
    pub fn column_covariance(&self) -> Matrix {
        let xt = self.transpose();
        let mut g = xt.matmul(self);
        let denom = (self.rows.max(2) - 1) as f64;
        for v in g.data.iter_mut() {
            *v /= denom;
        }
        g
    }
}

impl fmt::Display for Matrix {
    /// Render (a corner of) the matrix for debugging.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows.min(8) {
            for c in 0..self.cols.min(8) {
                write!(f, "{:10.3} ", self.get(r, c))?;
            }
            writeln!(f, "{}", if self.cols > 8 { "…" } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "…")?;
        }
        Ok(())
    }
}

/// Eigendecomposition of a symmetric matrix via cyclic Jacobi rotations.
/// Returns `(eigenvalues, eigenvectors)` with eigenvalues sorted descending
/// and `eigenvectors[i]` the unit eigenvector of `eigenvalues[i]`.
pub fn jacobi_eigen(a: &Matrix, max_sweeps: usize) -> (Vec<f64>, Vec<Vec<f64>>) {
    assert_eq!(a.rows(), a.cols(), "matrix must be square");
    let n = a.rows();
    let mut m = a.clone();
    // Eigenvector accumulator starts as identity.
    let mut v = Matrix::zeros(n, n);
    for i in 0..n {
        v.set(i, i, 1.0);
    }

    for _ in 0..max_sweeps {
        // Off-diagonal Frobenius mass; stop when negligible.
        let mut off = 0.0;
        for r in 0..n {
            for c in (r + 1)..n {
                off += m.get(r, c).powi(2);
            }
        }
        if off < 1e-20 {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m.get(p, q);
                if apq.abs() < 1e-15 {
                    continue;
                }
                let app = m.get(p, p);
                let aqq = m.get(q, q);
                // Standard stable rotation computation.
                let tau = (aqq - app) / (2.0 * apq);
                let t = if tau >= 0.0 {
                    1.0 / (tau + (1.0 + tau * tau).sqrt())
                } else {
                    -1.0 / (-tau + (1.0 + tau * tau).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;

                // Apply rotation to rows/cols p and q of m.
                for i in 0..n {
                    let mip = m.get(i, p);
                    let miq = m.get(i, q);
                    m.set(i, p, c * mip - s * miq);
                    m.set(i, q, s * mip + c * miq);
                }
                for i in 0..n {
                    let mpi = m.get(p, i);
                    let mqi = m.get(q, i);
                    m.set(p, i, c * mpi - s * mqi);
                    m.set(q, i, s * mpi + c * mqi);
                }
                // Accumulate the rotation into the eigenvector matrix.
                for i in 0..n {
                    let vip = v.get(i, p);
                    let viq = v.get(i, q);
                    v.set(i, p, c * vip - s * viq);
                    v.set(i, q, s * vip + c * viq);
                }
            }
        }
    }

    let mut pairs: Vec<(f64, Vec<f64>)> = (0..n)
        .map(|i| {
            let val = m.get(i, i);
            let vec: Vec<f64> = (0..n).map(|r| v.get(r, i)).collect();
            (val, vec)
        })
        .collect();
    pairs.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite eigenvalues"));
    let (vals, vecs) = pairs.into_iter().unzip();
    (vals, vecs)
}

/// Top-`k` eigenvectors of a symmetric positive-semidefinite matrix by
/// power iteration with deflation — much faster than a full Jacobi
/// decomposition when only a few leading components are needed (the PCA
/// anomaly detector wants 3–5 components of a 400×400 covariance).
///
/// Deterministic: iteration starts from fixed pseudo-random unit vectors.
pub fn top_eigenvectors(a: &Matrix, k: usize, iters: usize) -> Vec<Vec<f64>> {
    assert_eq!(a.rows(), a.cols(), "matrix must be square");
    let n = a.rows();
    let k = k.min(n);
    let mut basis: Vec<Vec<f64>> = Vec::with_capacity(k);
    for comp in 0..k {
        // Fixed, component-dependent start vector.
        let mut v: Vec<f64> = (0..n)
            .map(|i| {
                let x = ((i * 2654435761 + comp * 40503 + 12345) % 1000) as f64;
                x / 1000.0 - 0.5
            })
            .collect();
        for _ in 0..iters {
            // Deflate: remove projections onto already-found components.
            for b in &basis {
                let dot: f64 = v.iter().zip(b).map(|(x, y)| x * y).sum();
                for (vi, bi) in v.iter_mut().zip(b) {
                    *vi -= dot * bi;
                }
            }
            // Multiply by the matrix.
            let mut w = vec![0.0; n];
            for (r, wr) in w.iter_mut().enumerate() {
                let row = a.row(r);
                *wr = row.iter().zip(&v).map(|(x, y)| x * y).sum();
            }
            let nrm = norm(&w);
            if nrm < 1e-30 {
                break; // matrix annihilates the deflated start vector
            }
            for x in w.iter_mut() {
                *x /= nrm;
            }
            v = w;
        }
        // Final deflation + normalization to guard orthogonality.
        for b in &basis {
            let dot: f64 = v.iter().zip(b).map(|(x, y)| x * y).sum();
            for (vi, bi) in v.iter_mut().zip(b) {
                *vi -= dot * bi;
            }
        }
        let nrm = norm(&v);
        if nrm < 1e-30 {
            break;
        }
        for x in v.iter_mut() {
            *x /= nrm;
        }
        basis.push(v);
    }
    basis
}

/// Project a vector onto the subspace spanned by (orthonormal) `basis`
/// vectors and return the *residual* (the component outside the subspace).
pub fn subspace_residual(x: &[f64], basis: &[Vec<f64>]) -> Vec<f64> {
    let mut res = x.to_vec();
    for b in basis {
        let dot: f64 = x.iter().zip(b).map(|(a, c)| a * c).sum();
        for (r, c) in res.iter_mut().zip(b) {
            *r -= dot * c;
        }
    }
    res
}

/// Euclidean norm.
pub fn norm(x: &[f64]) -> f64 {
    x.iter().map(|v| v * v).sum::<f64>().sqrt()
}

/// PCA anomaly scores per row of a (time × link) matrix: the residual norm
/// of each row after removing the top-`k` principal components of the
/// column covariance. This is Lakhina et al.'s subspace method.
///
/// `sweeps` bounds the eigensolver's iterations. Small matrices (≤ 64
/// columns) use the exact Jacobi decomposition; larger ones use power
/// iteration for the top components only.
pub fn pca_residual_norms(matrix: &Matrix, k: usize, sweeps: usize) -> Vec<f64> {
    let mut centered = matrix.clone();
    centered.center_columns();
    let cov = centered.column_covariance();
    let basis: Vec<Vec<f64>> = if cov.cols() <= 64 {
        let (_, vecs) = jacobi_eigen(&cov, sweeps);
        vecs.into_iter().take(k).collect()
    } else {
        top_eigenvectors(&cov, k, sweeps.max(30))
    };
    (0..centered.rows())
        .map(|r| norm(&subspace_residual(centered.row(r), &basis)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_against_hand_computation() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.get(0, 0), 58.0);
        assert_eq!(c.get(0, 1), 64.0);
        assert_eq!(c.get(1, 0), 139.0);
        assert_eq!(c.get(1, 1), 154.0);
    }

    #[test]
    fn transpose_round_trips() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn centering_zeroes_column_means() {
        let mut a = Matrix::from_rows(&[vec![1.0, 10.0], vec![3.0, 30.0]]);
        let means = a.center_columns();
        assert_eq!(means, vec![2.0, 20.0]);
        assert_eq!(a.get(0, 0), -1.0);
        assert_eq!(a.get(1, 1), 10.0);
    }

    #[test]
    fn jacobi_diagonalizes_a_known_matrix() {
        // [[2, 1], [1, 2]] has eigenvalues 3 and 1.
        let a = Matrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, 2.0]);
        let (vals, vecs) = jacobi_eigen(&a, 50);
        assert!((vals[0] - 3.0).abs() < 1e-10);
        assert!((vals[1] - 1.0).abs() < 1e-10);
        // Eigenvector of 3 is (1,1)/√2 up to sign.
        let v = &vecs[0];
        assert!((v[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-8);
        assert!((v[0] - v[1]).abs() < 1e-8 || (v[0] + v[1]).abs() < 1e-8);
    }

    #[test]
    fn jacobi_eigenvectors_are_orthonormal() {
        // A random-ish symmetric 6×6.
        let n = 6;
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                let v = ((i * 7 + j * 13) % 17) as f64 / 4.0;
                a.set(i, j, v);
                a.set(j, i, v);
            }
        }
        let (vals, vecs) = jacobi_eigen(&a, 100);
        assert_eq!(vals.len(), n);
        for i in 0..n {
            for j in 0..n {
                let dot: f64 = vecs[i].iter().zip(&vecs[j]).map(|(a, b)| a * b).sum();
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!((dot - expected).abs() < 1e-8, "v{i}·v{j} = {dot}");
            }
        }
        // Trace is preserved.
        let trace: f64 = (0..n).map(|i| a.get(i, i)).sum();
        let sum: f64 = vals.iter().sum();
        assert!((trace - sum).abs() < 1e-8);
    }

    #[test]
    fn residual_of_in_subspace_vector_is_zero() {
        let basis = vec![vec![1.0, 0.0, 0.0], vec![0.0, 1.0, 0.0]];
        let r = subspace_residual(&[3.0, 4.0, 0.0], &basis);
        assert!(norm(&r) < 1e-12);
        let r2 = subspace_residual(&[0.0, 0.0, 2.0], &basis);
        assert!((norm(&r2) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn pca_flags_a_planted_anomaly() {
        // 200 time bins × 8 links: rank-1 normal traffic + one spike.
        let mut rows = Vec::new();
        for t in 0..200 {
            let level = 100.0 + 20.0 * (t as f64 / 8.0).sin();
            let row: Vec<f64> = (0..8).map(|l| level * (1.0 + 0.1 * l as f64)).collect();
            rows.push(row);
        }
        rows[25][3] += 400.0; // the anomaly
        let m = Matrix::from_rows(&rows);
        // Normal traffic is rank-1; k must not be large enough to let a
        // principal component absorb the anomaly direction itself.
        let scores = pca_residual_norms(&m, 1, 60);
        let max_idx = scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(max_idx, 25, "anomalous bin not flagged");
        // The anomalous bin's residual dominates the second-largest: the
        // single spike can tilt the principal component slightly, leaving
        // small residuals on normal bins, but not comparably large ones.
        let mut rest = scores.clone();
        rest.remove(25);
        let second = rest.iter().cloned().fold(0.0, f64::max);
        assert!(
            scores[25] > 4.0 * second.max(1e-9),
            "anomaly {} vs runner-up {second}",
            scores[25]
        );
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn from_vec_checks_shape() {
        Matrix::from_vec(2, 2, vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_checks_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        a.matmul(&b);
    }
}
