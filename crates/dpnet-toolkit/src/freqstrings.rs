//! Frequent (sub)string discovery — the paper's §4.2.
//!
//! Learning which byte strings occur frequently *sounds* at odds with
//! privacy, but a string occurring many times is a statistical trend, not a
//! single record's secret. The naive approach — partition by all `256^B`
//! possible values — is privacy-cheap but computationally exorbitant.
//! Instead, the paper reveals strings byte by byte:
//!
//! 1. Partition records by their first byte; count the 256 bins.
//! 2. Every bin whose noisy count clears a threshold is *viable*: all
//!    frequent strings contribute to their prefix's bin, so no frequent
//!    string is lost (up to noise).
//! 3. Extend each viable prefix by all 256 bytes and repeat on two-byte
//!    prefixes — and so on to length `B`.
//!
//! Each round costs one partitioned count (parallel composition within a
//! round; sequential across the `B` rounds). The final counts estimate the
//! number of records carrying each surviving `B`-byte string.

use dpnet_obs::{emit_phase_global, SpanTimer};
use pinq::{Queryable, Result};

/// Pack up to 8 prefix bytes into one big-endian `u64` code. Distinct
/// prefixes of one length map to distinct codes, so at `length ≤ 8` each
/// extension round can partition on integer keys instead of `Vec<u8>`
/// allocations.
fn pack(bytes: &[u8]) -> u64 {
    debug_assert!(bytes.len() <= 8);
    let mut code = 0u64;
    for &b in bytes {
        code = (code << 8) | u64::from(b);
    }
    code
}

/// Configuration for the frequent-string search.
#[derive(Debug, Clone)]
pub struct FrequentStringsConfig {
    /// Target string length `B` in bytes.
    pub length: usize,
    /// ε spent per extension round (total cost = `length × eps_per_level`).
    pub eps_per_level: f64,
    /// Noisy-count threshold a prefix must clear to be extended. The paper
    /// notes counterintuitively high thresholds *help*: they focus the
    /// budget's evidence on genuinely common strings.
    pub threshold: f64,
    /// Hard cap on viable prefixes carried to the next level, keeping the
    /// highest noisy counts. At strong privacy, noise can push large
    /// numbers of empty bins past any threshold; without a cap the
    /// candidate set grows by ×256 per level. This is the "aggressively
    /// restricting the candidate sets" discipline of §4.3 applied to the
    /// string search — noise-promoted prefixes sit near the threshold while
    /// genuinely frequent ones rank far above it.
    pub max_viable: usize,
}

impl Default for FrequentStringsConfig {
    fn default() -> Self {
        FrequentStringsConfig {
            length: 8,
            eps_per_level: 0.1,
            threshold: 100.0,
            max_viable: 512,
        }
    }
}

/// A discovered frequent string with its estimated occurrence count.
#[derive(Debug, Clone, PartialEq)]
pub struct FrequentString {
    /// The discovered bytes (full configured length).
    pub bytes: Vec<u8>,
    /// Noisy count of records whose prefix equals `bytes`.
    pub noisy_count: f64,
}

/// Run the iterative prefix-extension search over records of raw bytes
/// (records shorter than the configured length never match any candidate).
///
/// Returns surviving strings sorted by estimated count, descending.
pub fn frequent_strings(
    data: &Queryable<Vec<u8>>,
    cfg: &FrequentStringsConfig,
) -> Result<Vec<FrequentString>> {
    assert!(cfg.length > 0, "string length must be positive");
    let timer = SpanTimer::start();
    // Viable prefixes from the previous round (starts with the empty one).
    let mut viable: Vec<Vec<u8>> = vec![Vec::new()];
    let mut counts: Vec<f64> = vec![f64::INFINITY];
    let mut levels_run = 0usize;

    for level in 1..=cfg.length {
        levels_run = level;
        // Candidates: every viable prefix extended by every byte value, in
        // prefix-then-byte order. One batched partitioned count covers the
        // whole round — a single histogram pass over the records instead of
        // materializing up to `max_viable × 256` per-part buffers. Records
        // too short for a `level`-byte prefix map to a key outside the
        // candidate list and are dropped, as under `partition`.
        let round_counts: Vec<f64> = if cfg.length <= 8 {
            // Fast path: prefixes pack into u64 codes, so each record is
            // keyed by one shift-or loop and candidate keys cost nothing to
            // build. `None` marks too-short records; it can never collide
            // with a candidate code.
            let mut codes: Vec<Option<u64>> = Vec::with_capacity(viable.len() * 256);
            for prefix in &viable {
                let base = pack(prefix) << 8;
                for b in 0..=255u64 {
                    codes.push(Some(base | b));
                }
            }
            data.partition_noisy_counts(
                &codes,
                move |rec: &Vec<u8>| (rec.len() >= level).then(|| pack(&rec[..level])),
                cfg.eps_per_level,
            )?
        } else {
            let mut candidates: Vec<Vec<u8>> = Vec::with_capacity(viable.len() * 256);
            for prefix in &viable {
                for b in 0..=255u8 {
                    let mut c = prefix.clone();
                    c.push(b);
                    candidates.push(c);
                }
            }
            data.partition_noisy_counts(
                &candidates,
                move |rec: &Vec<u8>| {
                    if rec.len() >= level {
                        rec[..level].to_vec()
                    } else {
                        Vec::new() // never a candidate at level ≥ 1
                    }
                },
                cfg.eps_per_level,
            )?
        };
        // Keep only the strongest candidates (post-processing of released
        // counts — no privacy cost). Candidate `i` is `viable[i / 256]`
        // extended by byte `i % 256`; only survivors get their bytes built.
        let mut survivors: Vec<(usize, f64)> = round_counts
            .into_iter()
            .enumerate()
            .filter(|&(_, c)| c > cfg.threshold)
            .collect();
        survivors.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite counts"));
        survivors.truncate(cfg.max_viable);
        viable = survivors
            .iter()
            .map(|&(i, _)| {
                let mut c = viable[i / 256].clone();
                c.push((i % 256) as u8);
                c
            })
            .collect();
        counts = survivors.into_iter().map(|(_, c)| c).collect();
        if viable.is_empty() {
            break;
        }
    }

    let mut out: Vec<FrequentString> = viable
        .into_iter()
        .zip(counts)
        .filter(|(s, _)| s.len() == cfg.length)
        .map(|(bytes, noisy_count)| FrequentString { bytes, noisy_count })
        .collect();
    out.sort_by(|a, b| {
        b.noisy_count
            .partial_cmp(&a.noisy_count)
            .expect("noisy counts are finite")
    });
    // One partitioned count per extension round actually executed.
    emit_phase_global(
        "frequent_strings",
        levels_run as f64 * cfg.eps_per_level,
        timer.elapsed_ns(),
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinq::{Accountant, NoiseSource};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Dataset: a few planted frequent strings plus unique-random noise.
    #[allow(clippy::type_complexity)]
    fn dataset(seed: u64) -> (Vec<Vec<u8>>, Vec<(Vec<u8>, usize)>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let planted: Vec<(Vec<u8>, usize)> = vec![
            (b"AAAA".to_vec(), 3000),
            (b"BBBB".to_vec(), 900),
            (b"ABCD".to_vec(), 400),
        ];
        let mut records = Vec::new();
        for (s, n) in &planted {
            for _ in 0..*n {
                records.push(s.clone());
            }
        }
        for _ in 0..4000 {
            let mut r = vec![0u8; 4];
            rng.fill(&mut r[..]);
            records.push(r);
        }
        (records, planted)
    }

    fn protect(records: Vec<Vec<u8>>, budget: f64, seed: u64) -> (Accountant, Queryable<Vec<u8>>) {
        let acct = Accountant::new(budget);
        let noise = NoiseSource::seeded(seed);
        let q = Queryable::new(records, &acct, &noise);
        (acct, q)
    }

    #[test]
    fn planted_strings_are_found_in_order() {
        let (records, planted) = dataset(1);
        let (_, q) = protect(records, 100.0, 2);
        let cfg = FrequentStringsConfig {
            length: 4,
            eps_per_level: 1.0,
            threshold: 150.0,
            max_viable: 512,
        };
        let found = frequent_strings(&q, &cfg).unwrap();
        assert!(found.len() >= 3, "found {}", found.len());
        assert_eq!(found[0].bytes, planted[0].0);
        assert_eq!(found[1].bytes, planted[1].0);
        assert_eq!(found[2].bytes, planted[2].0);
        // Counts are accurate to ~Lap(1/eps).
        assert!((found[0].noisy_count - 3000.0).abs() < 10.0);
    }

    #[test]
    fn privacy_cost_is_levels_times_eps() {
        let (records, _) = dataset(3);
        let (acct, q) = protect(records, 100.0, 4);
        let cfg = FrequentStringsConfig {
            length: 4,
            eps_per_level: 0.5,
            threshold: 150.0,
            max_viable: 512,
        };
        frequent_strings(&q, &cfg).unwrap();
        // One partitioned count per level: 4 × 0.5.
        assert!((acct.spent() - 2.0).abs() < 1e-9, "spent {}", acct.spent());
    }

    #[test]
    fn high_threshold_prunes_everything() {
        let (records, _) = dataset(5);
        let (_, q) = protect(records, 100.0, 6);
        let cfg = FrequentStringsConfig {
            length: 4,
            eps_per_level: 1.0,
            threshold: 1e7,
            max_viable: 512,
        };
        assert!(frequent_strings(&q, &cfg).unwrap().is_empty());
    }

    #[test]
    fn threshold_separates_planted_from_noise() {
        let (records, _) = dataset(7);
        let (_, q) = protect(records, 100.0, 8);
        let cfg = FrequentStringsConfig {
            length: 4,
            eps_per_level: 1.0,
            threshold: 300.0,
            max_viable: 512,
        };
        let found = frequent_strings(&q, &cfg).unwrap();
        // Only AAAA (3000) and BBBB (900) clear 300; ABCD (400) does too.
        assert_eq!(found.len(), 3);
    }

    #[test]
    fn short_records_are_ignored() {
        let mut records = vec![b"AB".to_vec(); 1000]; // too short for length 4
        records.extend(vec![b"XYZW".to_vec(); 1000]);
        let (_, q) = protect(records, 100.0, 9);
        let cfg = FrequentStringsConfig {
            length: 4,
            eps_per_level: 1.0,
            threshold: 200.0,
            max_viable: 512,
        };
        let found = frequent_strings(&q, &cfg).unwrap();
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].bytes, b"XYZW".to_vec());
    }

    #[test]
    fn results_are_sorted_descending() {
        let (records, _) = dataset(11);
        let (_, q) = protect(records, 100.0, 12);
        let cfg = FrequentStringsConfig {
            length: 4,
            eps_per_level: 1.0,
            threshold: 150.0,
            max_viable: 512,
        };
        let found = frequent_strings(&q, &cfg).unwrap();
        assert!(found
            .windows(2)
            .all(|w| w[0].noisy_count >= w[1].noisy_count));
    }
}
