//! Isotonic regression for smoothing noisy CDFs.
//!
//! Noisy measurement makes estimated CDFs non-monotone. When a monotone
//! curve is required, the paper points to isotonic regression via the
//! linear-time *pool adjacent violators* (PAV) algorithm of Ayer et al.,
//! which finds the non-decreasing sequence minimizing squared error to the
//! input. Because this is post-processing of already-released values it is
//! free of privacy cost — but it irreversibly discards information, so the
//! paper (and this toolkit) does not apply it by default.

/// Pool-adjacent-violators: the non-decreasing sequence minimizing
/// `Σ (out[i] − input[i])²`. Runs in `O(n)`.
pub fn isotonic_regression(input: &[f64]) -> Vec<f64> {
    // Blocks of pooled values: (mean, weight).
    let mut means: Vec<f64> = Vec::with_capacity(input.len());
    let mut weights: Vec<f64> = Vec::with_capacity(input.len());
    for &x in input {
        let mut m = x;
        let mut w = 1.0;
        // Merge backwards while the monotonicity constraint is violated.
        while let Some(&prev) = means.last() {
            if prev <= m {
                break;
            }
            let pw = weights.pop().expect("parallel stacks");
            means.pop();
            m = (m * w + prev * pw) / (w + pw);
            w += pw;
        }
        means.push(m);
        weights.push(w);
    }
    let mut out = Vec::with_capacity(input.len());
    for (m, w) in means.into_iter().zip(weights) {
        for _ in 0..w as usize {
            out.push(m);
        }
    }
    out
}

/// Squared-error distance between two equal-length sequences.
pub fn squared_error(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y).powi(2)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_non_decreasing(xs: &[f64]) -> bool {
        xs.windows(2).all(|w| w[0] <= w[1] + 1e-12)
    }

    #[test]
    fn already_monotone_input_is_unchanged() {
        let input = vec![1.0, 2.0, 2.0, 5.0];
        assert_eq!(isotonic_regression(&input), input);
    }

    #[test]
    fn single_violation_is_pooled() {
        let input = vec![1.0, 3.0, 2.0, 4.0];
        let out = isotonic_regression(&input);
        assert!(is_non_decreasing(&out));
        assert_eq!(out, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn strictly_decreasing_input_pools_to_the_mean() {
        let input = vec![5.0, 4.0, 3.0, 2.0, 1.0];
        let out = isotonic_regression(&input);
        assert!(out.iter().all(|&x| (x - 3.0).abs() < 1e-12));
    }

    #[test]
    fn output_is_always_monotone() {
        // Deterministic pseudo-noise input.
        let input: Vec<f64> = (0..200)
            .map(|i| i as f64 + 30.0 * ((i * 2654435761u64 % 97) as f64 / 97.0 - 0.5))
            .collect();
        let out = isotonic_regression(&input);
        assert!(is_non_decreasing(&out));
        assert_eq!(out.len(), input.len());
    }

    #[test]
    fn pav_is_at_least_as_close_as_any_constant() {
        // PAV minimizes squared error among monotone sequences; in
        // particular it beats the best constant fit unless that is optimal.
        let input = vec![0.0, 10.0, 2.0, 12.0, 4.0];
        let out = isotonic_regression(&input);
        let mean = input.iter().sum::<f64>() / input.len() as f64;
        let const_fit: Vec<f64> = vec![mean; input.len()];
        assert!(squared_error(&out, &input) <= squared_error(&const_fit, &input) + 1e-9);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        assert!(isotonic_regression(&[]).is_empty());
        assert_eq!(isotonic_regression(&[7.0]), vec![7.0]);
    }

    #[test]
    fn pooling_preserves_total_mass() {
        let input = vec![3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let out = isotonic_regression(&input);
        let sum_in: f64 = input.iter().sum();
        let sum_out: f64 = out.iter().sum();
        assert!((sum_in - sum_out).abs() < 1e-9);
    }
}
