//! Association-rule mining on top of frequent itemsets.
//!
//! The paper reports (§5.2.3): "we are able to reproduce the
//! association-rule mining based analysis of Kandula et al. [What's going
//! on? Learning communication rules in edge networks, SIGCOMM 2008] with a
//! high fidelity; we omit results due to space constraints." This module
//! supplies that layer: given frequent itemsets (already privately mined —
//! their noisy counts are released values), derive rules `A ⇒ B` with
//! estimated support and confidence as pure post-processing, at **zero
//! additional privacy cost**.
//!
//! Confidence uses the *partitioned* supports the miner releases. Because
//! partitioning splits a record's evidence among the itemsets it supports,
//! partitioned supports are scaled-down estimates of true supports; ratios
//! of them remain meaningful for ranking (both numerator and denominator
//! shrink by comparable dilution), and the companion experiment validates
//! rule recovery against planted ground truth.

use crate::itemsets::FrequentItemset;
use dpnet_obs::{emit_phase_global, SpanTimer};
use std::collections::HashMap;
use std::hash::Hash;

/// An association rule `antecedent ⇒ consequent`.
#[derive(Debug, Clone, PartialEq)]
pub struct AssociationRule<I> {
    /// Items on the left-hand side.
    pub antecedent: Vec<I>,
    /// Items implied on the right-hand side.
    pub consequent: Vec<I>,
    /// Noisy (partitioned) support of the combined itemset.
    pub support: f64,
    /// Estimated confidence: support(A∪B) / support(A), clamped to [0, 1].
    pub confidence: f64,
}

/// Derive association rules from mined itemsets.
///
/// Every frequent itemset of size ≥ 2 is split into each (non-empty
/// antecedent, single-item consequent) combination; rules whose confidence
/// clears `min_confidence` are returned, sorted by confidence then support,
/// descending. Free post-processing: no queryable access, no budget.
pub fn association_rules<I>(
    itemsets: &[FrequentItemset<I>],
    min_confidence: f64,
) -> Vec<AssociationRule<I>>
where
    I: Ord + Hash + Clone,
{
    let timer = SpanTimer::start();
    // Index supports by itemset for denominator lookups.
    let support_of: HashMap<Vec<I>, f64> = itemsets
        .iter()
        .map(|m| (m.items.clone(), m.noisy_count))
        .collect();

    let mut rules = Vec::new();
    for m in itemsets.iter().filter(|m| m.size >= 2) {
        for skip in 0..m.items.len() {
            let consequent = vec![m.items[skip].clone()];
            let antecedent: Vec<I> = m
                .items
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != skip)
                .map(|(_, x)| x.clone())
                .collect();
            let Some(&ant_support) = support_of.get(&antecedent) else {
                continue; // antecedent was not itself frequent
            };
            if ant_support <= 0.0 {
                continue;
            }
            let confidence = (m.noisy_count / ant_support).clamp(0.0, 1.0);
            if confidence >= min_confidence {
                rules.push(AssociationRule {
                    antecedent,
                    consequent,
                    support: m.noisy_count,
                    confidence,
                });
            }
        }
    }
    rules.sort_by(|a, b| {
        b.confidence
            .partial_cmp(&a.confidence)
            .expect("finite confidence")
            .then(b.support.partial_cmp(&a.support).expect("finite support"))
    });
    // Pure post-processing of released counts: ε cost is zero, and the
    // phase event says so explicitly in the owner's timeline.
    emit_phase_global("association_rules", 0.0, timer.elapsed_ns());
    rules
}

#[cfg(test)]
mod tests {
    use super::*;

    fn itemset(items: &[u16], count: f64, size: usize) -> FrequentItemset<u16> {
        FrequentItemset {
            items: items.to_vec(),
            noisy_count: count,
            size,
        }
    }

    fn mined() -> Vec<FrequentItemset<u16>> {
        vec![
            itemset(&[53], 800.0, 1),
            itemset(&[80], 500.0, 1),
            itemset(&[443], 300.0, 1),
            itemset(&[53, 80], 450.0, 2), // 80 ⇒ 53 at 0.9
            itemset(&[80, 443], 60.0, 2), // 443 ⇒ 80 at 0.2
        ]
    }

    #[test]
    fn high_confidence_rules_are_found_and_ranked() {
        let rules = association_rules(&mined(), 0.5);
        assert!(!rules.is_empty());
        // Best rule: {80} ⇒ {53} with confidence 450/500 = 0.9.
        assert_eq!(rules[0].antecedent, vec![80]);
        assert_eq!(rules[0].consequent, vec![53]);
        assert!((rules[0].confidence - 0.9).abs() < 1e-9);
        // {53} ⇒ {80}: 450/800 ≈ 0.5625 also clears 0.5.
        assert!(rules
            .iter()
            .any(|r| r.antecedent == vec![53] && r.consequent == vec![80]));
    }

    #[test]
    fn low_confidence_rules_are_filtered() {
        let rules = association_rules(&mined(), 0.5);
        assert!(!rules
            .iter()
            .any(|r| r.antecedent == vec![443] && r.confidence < 0.5));
        // With the bar lowered they appear.
        let lax = association_rules(&mined(), 0.1);
        assert!(lax.iter().any(|r| r.antecedent == vec![443]));
    }

    #[test]
    fn missing_antecedent_support_skips_the_rule() {
        // {80,443} frequent but {443} missing from level-1 results.
        let partial = vec![itemset(&[80], 500.0, 1), itemset(&[80, 443], 100.0, 2)];
        let rules = association_rules(&partial, 0.0);
        assert_eq!(rules.len(), 1);
        assert_eq!(rules[0].antecedent, vec![80]);
    }

    #[test]
    fn confidence_is_clamped_despite_noise() {
        // Noise can make the pair's count exceed the singleton's.
        let noisy = vec![itemset(&[1], 50.0, 1), itemset(&[1, 2], 55.0, 2)];
        let rules = association_rules(&noisy, 0.0);
        assert!(rules.iter().all(|r| r.confidence <= 1.0));
    }

    #[test]
    fn triple_itemsets_yield_two_item_antecedents() {
        let with_triple = vec![
            itemset(&[1], 100.0, 1),
            itemset(&[2], 100.0, 1),
            itemset(&[3], 100.0, 1),
            itemset(&[1, 2], 90.0, 2),
            itemset(&[1, 2, 3], 85.0, 3),
        ];
        let rules = association_rules(&with_triple, 0.5);
        assert!(rules.iter().any(|r| r.antecedent == vec![1, 2]
            && r.consequent == vec![3]
            && (r.confidence - 85.0 / 90.0).abs() < 1e-9));
    }

    #[test]
    fn empty_input_yields_no_rules() {
        assert!(association_rules::<u16>(&[], 0.0).is_empty());
    }
}
