//! # dpnet-toolkit — privacy-efficient analysis primitives
//!
//! The reusable toolkit of *McSherry & Mahajan (SIGCOMM 2010)* §4: the
//! building blocks the paper factored out of its network analyses because
//! they recur across analyses and because getting their privacy cost low is
//! non-obvious.
//!
//! * [`cdf`] — three CDF estimators with different privacy/accuracy
//!   trade-offs (§4.1, Figure 1).
//! * [`isotonic`] — pool-adjacent-violators regression to restore
//!   monotonicity to noisy CDFs (post-processing, free of privacy cost).
//! * [`freqstrings`] — frequent string discovery by iterative prefix
//!   extension (§4.2, Table 4).
//! * [`itemsets`] — DP apriori frequent-itemset mining (§4.3).
//! * [`kmeans`] — DP k-means and a Gaussian-EM-style variant illustrating
//!   the algorithmic-complexity-vs-privacy-cost trade-off (§5.3.2).
//! * [`linalg`] — dense matrices, Jacobi eigendecomposition, and the PCA
//!   subspace method used by anomaly detection (§5.3.1).
//! * [`stats`] — the paper's relative-RMSE accuracy metric and friends.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod assoc;
pub mod cdf;
pub mod freqstrings;
pub mod isotonic;
pub mod itemsets;
pub mod kmeans;
pub mod linalg;
pub mod quantiles;
pub mod stats;

pub use assoc::{association_rules, AssociationRule};
pub use cdf::{cdf_hierarchical, cdf_naive, cdf_partition, noise_free_cdf};
pub use freqstrings::{frequent_strings, FrequentString, FrequentStringsConfig};
pub use isotonic::isotonic_regression;
pub use itemsets::{frequent_itemsets, FrequentItemset, ItemsetConfig};
pub use kmeans::{
    clustering_rmse, dp_gaussian_em, dp_kmeans, kmeans_baseline, random_centers,
    ClusteringTrajectory, KMeansConfig,
};
pub use linalg::{jacobi_eigen, pca_residual_norms, Matrix};
pub use quantiles::{noisy_quantile, quantiles_from_cdf};
pub use stats::{mean, percentile, relative_rmse, rmse, std_dev};
