//! Noisy quantiles.
//!
//! Two complementary routes to distributional summaries beyond the median:
//!
//! * [`noisy_quantile`] — the exponential mechanism, generalizing
//!   `NoisyMedian` from rank `n/2` to rank `q·n`. Costs ε per quantile.
//! * [`quantiles_from_cdf`] — free post-processing of an
//!   already-released noisy CDF (e.g. from
//!   [`crate::cdf::cdf_partition`]): invert the curve at the requested
//!   ranks. Costs nothing beyond the CDF itself, so extracting twenty
//!   quantiles is no more expensive than one — the privacy-efficiency
//!   mindset the paper teaches.

use pinq::error::{Error, Result};
use pinq::mechanisms::exponential_mechanism_index;
use pinq::rng::NoiseSource;

fn check_epsilon(eps: f64) -> Result<()> {
    if eps.is_finite() && eps > 0.0 {
        Ok(())
    } else {
        Err(Error::InvalidEpsilon(eps))
    }
}

/// Select the `q`-quantile (0 ≤ q ≤ 1) of `values` over the candidate grid
/// `[lo, hi]` with `buckets` cells, via the exponential mechanism. Each
/// candidate `c` is scored `-|#{x < c} − q·n|` (sensitivity ≤ 1).
pub fn noisy_quantile(
    noise: &NoiseSource,
    values: &[f64],
    q: f64,
    lo: f64,
    hi: f64,
    buckets: usize,
    eps: f64,
) -> Result<f64> {
    check_epsilon(eps)?;
    if !(0.0..=1.0).contains(&q) {
        return Err(Error::InvalidRange { lo: 0.0, hi: 1.0 });
    }
    if lo >= hi || !lo.is_finite() || !hi.is_finite() {
        return Err(Error::InvalidRange { lo, hi });
    }
    if buckets == 0 {
        return Err(Error::EmptyCandidates);
    }
    let n = values.len() as f64;
    let mut sorted: Vec<f64> = values.iter().map(|&v| v.clamp(lo, hi)).collect();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("clamped values compare"));
    let step = (hi - lo) / buckets as f64;
    let candidates: Vec<f64> = (0..=buckets).map(|i| lo + i as f64 * step).collect();
    let target = q * n;
    let scores: Vec<f64> = candidates
        .iter()
        .map(|&c| {
            let below = sorted.partition_point(|&v| v < c) as f64;
            -(below - target).abs()
        })
        .collect();
    let idx = exponential_mechanism_index(noise, &scores, eps, 1.0)?;
    Ok(candidates[idx])
}

/// Invert a released (noisy, cumulative-count) CDF at the requested rank
/// fractions. `cdf[b]` is the estimated count of records in buckets `≤ b`;
/// the returned value for fraction `q` is the first bucket index whose
/// cumulative count reaches `q × total`. Pure post-processing.
///
/// The CDF is made non-decreasing internally (isotonic regression) before
/// inversion, since noise can make raw prefix sums dip.
pub fn quantiles_from_cdf(cdf: &[f64], fractions: &[f64]) -> Vec<usize> {
    if cdf.is_empty() {
        return vec![0; fractions.len()];
    }
    let smooth = crate::isotonic::isotonic_regression(cdf);
    let total = smooth.last().copied().unwrap_or(0.0).max(0.0);
    fractions
        .iter()
        .map(|&q| {
            let target = q.clamp(0.0, 1.0) * total;
            smooth
                .iter()
                .position(|&c| c >= target)
                .unwrap_or(smooth.len() - 1)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponential_quantiles_land_near_truth() {
        let noise = NoiseSource::seeded(51);
        let values: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        for (q, truth) in [(0.25, 250.0), (0.5, 500.0), (0.9, 900.0)] {
            let mut total = 0.0;
            let trials = 100;
            for _ in 0..trials {
                total += noisy_quantile(&noise, &values, q, 0.0, 1000.0, 200, 2.0).unwrap();
            }
            let mean = total / trials as f64;
            assert!(
                (mean - truth).abs() < 40.0,
                "q={q}: estimate {mean} vs {truth}"
            );
        }
    }

    #[test]
    fn quantile_argument_validation() {
        let noise = NoiseSource::seeded(53);
        assert!(noisy_quantile(&noise, &[1.0], 1.5, 0.0, 1.0, 10, 1.0).is_err());
        assert!(noisy_quantile(&noise, &[1.0], 0.5, 1.0, 0.0, 10, 1.0).is_err());
        assert!(noisy_quantile(&noise, &[1.0], 0.5, 0.0, 1.0, 0, 1.0).is_err());
        assert!(noisy_quantile(&noise, &[1.0], 0.5, 0.0, 1.0, 10, -1.0).is_err());
    }

    #[test]
    fn cdf_inversion_matches_exact_quantiles() {
        // Exact CDF of a uniform distribution over 100 buckets.
        let cdf: Vec<f64> = (1..=100).map(|i| i as f64 * 10.0).collect();
        let qs = quantiles_from_cdf(&cdf, &[0.1, 0.5, 0.99]);
        assert_eq!(qs, vec![9, 49, 98]);
    }

    #[test]
    fn cdf_inversion_survives_noise_dips() {
        // A noisy CDF with local decreases.
        let mut cdf: Vec<f64> = (1..=50).map(|i| i as f64 * 4.0).collect();
        cdf[10] = cdf[9] - 15.0;
        cdf[30] = cdf[29] - 8.0;
        let qs = quantiles_from_cdf(&cdf, &[0.5]);
        // Still lands near the middle.
        assert!(
            (qs[0] as i64 - 24).unsigned_abs() <= 3,
            "median bucket {}",
            qs[0]
        );
    }

    #[test]
    fn cdf_inversion_edge_cases() {
        assert_eq!(quantiles_from_cdf(&[], &[0.5]), vec![0]);
        // All mass in one bucket: any positive fraction lands on it.
        let cdf = vec![0.0, 0.0, 100.0, 100.0];
        assert_eq!(quantiles_from_cdf(&cdf, &[0.01, 0.99]), vec![2, 2]);
        // Out-of-range fractions are clamped.
        assert_eq!(quantiles_from_cdf(&cdf, &[-1.0, 2.0]), vec![0, 2]);
    }

    #[test]
    fn many_quantiles_cost_one_cdf() {
        // Demonstrate the intended privacy-efficient pattern end to end.
        use pinq::{Accountant, Queryable};
        let acct = Accountant::new(1.0);
        let noise = NoiseSource::seeded(59);
        let values: Vec<usize> = (0..5000).map(|i| i % 100).collect();
        let q = Queryable::new(values, &acct, &noise);
        let cdf = crate::cdf::cdf_partition(&q, 100, 0.5).unwrap();
        let quartiles = quantiles_from_cdf(&cdf, &[0.25, 0.5, 0.75]);
        // One ε = 0.5 charge bought all three quantiles.
        assert!((acct.spent() - 0.5).abs() < 1e-12);
        assert!((quartiles[0] as i64 - 24).unsigned_abs() <= 2);
        assert!((quartiles[1] as i64 - 49).unsigned_abs() <= 2);
        assert!((quartiles[2] as i64 - 74).unsigned_abs() <= 2);
    }
}
