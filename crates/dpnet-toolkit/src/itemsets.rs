//! Differentially-private frequent itemset mining — the paper's §4.3.
//!
//! Frequently co-occurring items (e.g. ports used together by one host) hint
//! at correlation. The classic apriori algorithm counts candidate itemsets
//! level by level, keeping those with enough support. The privacy twist the
//! paper highlights: records (item *sets*) must be **partitioned among the
//! candidate itemsets** — a record contributes to the count of only one
//! candidate even when it supports several — because `Partition` is what
//! keeps the level's cost at one ε.
//!
//! With too many candidates the evidence spreads too thin; the paper's
//! remedy is aggressive thresholds, which "counter-intuitively allow us to
//! learn more". To avoid the *systematic* starvation of always picking the
//! same candidate for a multi-support record, the partition key rotates
//! deterministically (by record hash) among the candidates a record
//! supports; the count each candidate receives is then roughly its support
//! divided by the typical overlap, preserving support *order*.

use dpnet_obs::{emit_phase_global, SpanTimer};
use pinq::{Queryable, Result};
use std::collections::{BTreeSet, HashSet};
use std::hash::{Hash, Hasher};

/// Configuration for itemset mining.
#[derive(Debug, Clone)]
pub struct ItemsetConfig<I> {
    /// The data-independent universe of items considered at level 1.
    pub universe: Vec<I>,
    /// Largest itemset size to mine.
    pub max_size: usize,
    /// ε spent per level (total cost = `max_size × eps_per_level`).
    pub eps_per_level: f64,
    /// Noisy-count threshold for a candidate to survive a level.
    pub threshold: f64,
}

/// A frequent itemset with its (partitioned, noisy) support count.
#[derive(Debug, Clone, PartialEq)]
pub struct FrequentItemset<I> {
    /// The items, sorted.
    pub items: Vec<I>,
    /// Noisy partitioned support.
    pub noisy_count: f64,
    /// Itemset size (level it was found at).
    pub size: usize,
}

fn stable_hash<T: Hash>(t: &T) -> u64 {
    // FxHash-style multiplication hash over DefaultHasher for stability
    // within a run; determinism across runs comes from the same inputs.
    let mut h = std::collections::hash_map::DefaultHasher::new();
    t.hash(&mut h);
    h.finish()
}

/// Mine frequent itemsets from records that are sets of items.
///
/// Returns all surviving itemsets across levels `1..=max_size`, sorted by
/// size then by noisy count descending.
pub fn frequent_itemsets<I>(
    data: &Queryable<BTreeSet<I>>,
    cfg: &ItemsetConfig<I>,
) -> Result<Vec<FrequentItemset<I>>>
where
    I: Ord + Hash + Clone + Send + Sync + 'static,
{
    assert!(cfg.max_size > 0, "max_size must be positive");
    let timer = SpanTimer::start();
    let mut results: Vec<FrequentItemset<I>> = Vec::new();
    let mut levels_run = 0usize;

    // Level-1 candidates: singletons over the universe.
    let mut candidates: Vec<Vec<I>> = cfg.universe.iter().map(|i| vec![i.clone()]).collect();

    for level in 1..=cfg.max_size {
        if candidates.is_empty() {
            break;
        }
        levels_run = level;
        let keys: Vec<Vec<I>> = candidates.clone();
        let key_set: Vec<BTreeSet<I>> = keys.iter().map(|k| k.iter().cloned().collect()).collect();
        let keys_in_closure = keys.clone();
        // Partition records among the candidates they support, rotating by
        // record hash to spread the evidence.
        let parts = data.partition(&keys, move |rec: &BTreeSet<I>| {
            let keys = &keys_in_closure;
            let matching: Vec<usize> = key_set
                .iter()
                .enumerate()
                .filter(|(_, cand)| cand.is_subset(rec))
                .map(|(i, _)| i)
                .collect();
            if matching.is_empty() {
                // A key outside the candidate list: the record is dropped.
                Vec::new()
            } else {
                let pick = (stable_hash(rec) as usize) % matching.len();
                keys[matching[pick]].clone()
            }
        })?;

        let mut survivors: Vec<(Vec<I>, f64)> = Vec::new();
        for (cand, part) in candidates.iter().zip(&parts) {
            let c = part.noisy_count(cfg.eps_per_level)?;
            if c > cfg.threshold {
                survivors.push((cand.clone(), c));
            }
        }
        for (items, noisy_count) in &survivors {
            results.push(FrequentItemset {
                items: items.clone(),
                noisy_count: *noisy_count,
                size: level,
            });
        }

        // Apriori join: merge surviving k-sets sharing k−1 items, then prune
        // candidates with any infrequent subset.
        let frequent: HashSet<Vec<I>> = survivors.iter().map(|(c, _)| c.clone()).collect();
        let mut next: Vec<Vec<I>> = Vec::new();
        let mut seen: HashSet<Vec<I>> = HashSet::new();
        for (i, (a, _)) in survivors.iter().enumerate() {
            for (b, _) in survivors.iter().skip(i + 1) {
                let merged: BTreeSet<I> = a.iter().chain(b.iter()).cloned().collect();
                if merged.len() != level + 1 {
                    continue;
                }
                let cand: Vec<I> = merged.iter().cloned().collect();
                if seen.contains(&cand) {
                    continue;
                }
                // Prune: every `level`-subset must be frequent.
                let all_subsets_frequent = (0..cand.len()).all(|skip| {
                    let sub: Vec<I> = cand
                        .iter()
                        .enumerate()
                        .filter(|(j, _)| *j != skip)
                        .map(|(_, x)| x.clone())
                        .collect();
                    frequent.contains(&sub)
                });
                if all_subsets_frequent {
                    seen.insert(cand.clone());
                    next.push(cand);
                }
            }
        }
        candidates = next;
    }

    results.sort_by(|a, b| {
        a.size.cmp(&b.size).then(
            b.noisy_count
                .partial_cmp(&a.noisy_count)
                .expect("finite counts"),
        )
    });
    // One partitioned count per apriori level actually executed.
    emit_phase_global(
        "frequent_itemsets",
        levels_run as f64 * cfg.eps_per_level,
        timer.elapsed_ns(),
    );
    Ok(results)
}

/// Noise-free exact support counts for reference: the number of records
/// containing each queried itemset (standard apriori support, *without* the
/// partitioning dilution).
pub fn exact_support<I: Ord>(records: &[BTreeSet<I>], itemset: &[I]) -> usize {
    records
        .iter()
        .filter(|r| itemset.iter().all(|i| r.contains(i)))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinq::{Accountant, ExecCtx, ExecPool, NoiseSource};

    fn record(items: &[u16]) -> BTreeSet<u16> {
        items.iter().cloned().collect()
    }

    /// Hosts using planted port pairs, mirroring §4.3's discovery of
    /// (22,80), (443,80), etc. Each host's record carries a unique
    /// high-port marker (outside the universe), as real per-host port sets
    /// are distinct — the hash-rotated partitioning relies on record
    /// diversity to spread evidence.
    fn dataset() -> Vec<BTreeSet<u16>> {
        let mut recs = Vec::new();
        let mut host = 20_000u16;
        let mut push = |recs: &mut Vec<BTreeSet<u16>>, ports: &[u16]| {
            let mut r = record(ports);
            r.insert(host);
            host += 1;
            recs.push(r);
        };
        for _ in 0..400 {
            push(&mut recs, &[22, 80]);
        }
        for _ in 0..250 {
            push(&mut recs, &[443, 80]);
        }
        for _ in 0..150 {
            push(&mut recs, &[445, 139]);
        }
        // Background: singleton-port hosts.
        for i in 0..300u16 {
            push(&mut recs, &[8000 + (i % 50)]);
        }
        recs
    }

    fn protect(
        records: Vec<BTreeSet<u16>>,
        budget: f64,
        seed: u64,
    ) -> (Accountant, Queryable<BTreeSet<u16>>) {
        let acct = Accountant::new(budget);
        let noise = NoiseSource::seeded(seed);
        (acct.clone(), Queryable::new(records, &acct, &noise))
    }

    fn universe() -> Vec<u16> {
        vec![22, 80, 443, 445, 139, 25, 993]
    }

    #[test]
    fn planted_pairs_are_discovered_in_support_order() {
        let (_, q) = protect(dataset(), 100.0, 21);
        let cfg = ItemsetConfig {
            universe: universe(),
            max_size: 2,
            eps_per_level: 1.0,
            threshold: 40.0,
        };
        let found = frequent_itemsets(&q, &cfg).unwrap();
        let pairs: Vec<&FrequentItemset<u16>> = found.iter().filter(|f| f.size == 2).collect();
        assert!(pairs.len() >= 3, "pairs found: {}", pairs.len());
        assert_eq!(pairs[0].items, vec![22, 80]);
        assert_eq!(pairs[1].items, vec![80, 443]);
        assert_eq!(pairs[2].items, vec![139, 445]);
    }

    #[test]
    fn partitioned_support_undercounts_but_preserves_order() {
        // A record {22, 80} supports singletons 22 and 80; partitioning
        // splits its evidence. Exact support of 80 is 650 (400 + 250) but
        // partitioned count is roughly half of each pair's mass.
        let (_, q) = protect(dataset(), 100.0, 23);
        let cfg = ItemsetConfig {
            universe: universe(),
            max_size: 1,
            eps_per_level: 2.0,
            threshold: 10.0,
        };
        let found = frequent_itemsets(&q, &cfg).unwrap();
        let count_of = |item: u16| -> f64 {
            found
                .iter()
                .find(|f| f.items == vec![item])
                .map(|f| f.noisy_count)
                .unwrap_or(0.0)
        };
        let exact_80 = exact_support(&dataset(), &[80]);
        assert_eq!(exact_80, 650);
        assert!(count_of(80) < 651.0);
        assert!(count_of(80) > count_of(445), "80 should outrank 445");
    }

    #[test]
    fn cost_is_levels_times_eps() {
        let (acct, q) = protect(dataset(), 100.0, 25);
        let cfg = ItemsetConfig {
            universe: universe(),
            max_size: 2,
            eps_per_level: 0.5,
            threshold: 40.0,
        };
        frequent_itemsets(&q, &cfg).unwrap();
        assert!((acct.spent() - 1.0).abs() < 1e-9, "spent {}", acct.spent());
    }

    #[test]
    fn apriori_prunes_pairs_with_infrequent_members() {
        // Port 993 never occurs: no pair containing it should be counted.
        let (_, q) = protect(dataset(), 100.0, 27);
        let cfg = ItemsetConfig {
            universe: universe(),
            max_size: 2,
            eps_per_level: 1.0,
            threshold: 40.0,
        };
        let found = frequent_itemsets(&q, &cfg).unwrap();
        assert!(found.iter().all(|f| !f.items.contains(&993)));
    }

    #[test]
    fn empty_universe_yields_nothing() {
        let (_, q) = protect(dataset(), 100.0, 29);
        let cfg = ItemsetConfig::<u16> {
            universe: vec![],
            max_size: 3,
            eps_per_level: 1.0,
            threshold: 10.0,
        };
        assert!(frequent_itemsets(&q, &cfg).unwrap().is_empty());
    }

    #[test]
    fn triples_require_all_subpairs() {
        // Plant a strong triple {1,2,3} and verify it is found at level 3.
        // Unique per-record markers keep the hash rotation spreading.
        let mut recs = Vec::new();
        for i in 0..600u16 {
            let mut r = record(&[1, 2, 3]);
            r.insert(1000 + i);
            recs.push(r);
        }
        let (_, q) = protect(recs, 100.0, 31);
        let cfg = ItemsetConfig {
            universe: vec![1, 2, 3, 4],
            max_size: 3,
            eps_per_level: 1.0,
            threshold: 50.0,
        };
        let found = frequent_itemsets(&q, &cfg).unwrap();
        assert!(found
            .iter()
            .any(|f| f.size == 3 && f.items == vec![1, 2, 3]));
    }

    #[test]
    fn pool_mining_is_identical_for_any_worker_count() {
        let cfg = ItemsetConfig {
            universe: universe(),
            max_size: 2,
            eps_per_level: 1.0,
            threshold: 40.0,
        };
        let run = |workers: Option<usize>| {
            let (acct, q) = protect(dataset(), 100.0, 33);
            let q = match workers {
                None => q,
                Some(w) => q.with_ctx(ExecCtx::pool(&ExecPool::new(w).unwrap())),
            };
            let found = frequent_itemsets(&q, &cfg).unwrap();
            (found, acct.spent())
        };
        let sequential = run(None);
        for workers in [1, 2, 8] {
            assert_eq!(sequential, run(Some(workers)), "workers={workers}");
        }
    }

    #[test]
    fn exact_support_counts_supersets() {
        let recs = dataset();
        assert_eq!(exact_support(&recs, &[22, 80]), 400);
        assert_eq!(exact_support(&recs, &[22]), 400);
        assert_eq!(exact_support(&recs, &[22, 443]), 0);
    }
}
