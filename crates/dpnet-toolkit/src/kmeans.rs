//! Differentially-private k-means clustering (paper §5.3.2).
//!
//! Each iteration partitions the points by nearest current center (a
//! deterministic function of the record and the already-released centers,
//! so `Partition` applies), then re-estimates every center from one noisy
//! count and one noisy vector sum per cluster. Parallel composition makes
//! the iteration cost `ε` regardless of `k`; iterations compose
//! sequentially, so — as the paper puts it — "each iteration of the
//! algorithm consumes another multiple of the privacy cost. After 10
//! iterations, a value of ε = 0.1 costs 1."
//!
//! [`dp_gaussian_em`] is the ablation the paper discusses: Gaussian EM
//! (k-means with per-cluster variances) needs a *third* moment query per
//! iteration, so at a fixed per-iteration budget each query gets less ε —
//! "if their sophistication requires looking too closely at the data, the
//! necessary noise … can counteract these gains."

use dpnet_obs::{emit_phase_global, SpanTimer};
use pinq::{Queryable, Result};

/// Configuration shared by the private clustering algorithms.
#[derive(Debug, Clone)]
pub struct KMeansConfig {
    /// Dimensionality of the points.
    pub dims: usize,
    /// Number of iterations.
    pub iterations: usize,
    /// ε consumed per iteration (split among that iteration's queries).
    pub eps_per_iteration: f64,
    /// L1 clamp bound for the vector-sum mechanism; points are scaled onto
    /// this ball. Choose ≈ the maximum plausible L1 norm of a point.
    pub l1_bound: f64,
}

/// The trajectory of a clustering run: the centers after every iteration
/// (index 0 is the initial, caller-supplied set).
#[derive(Debug, Clone)]
pub struct ClusteringTrajectory {
    /// `centers[i]` are the centers after `i` iterations.
    pub centers: Vec<Vec<Vec<f64>>>,
}

impl ClusteringTrajectory {
    /// The final centers.
    pub fn last(&self) -> &Vec<Vec<f64>> {
        self.centers.last().expect("at least the initial centers")
    }
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y).powi(2)).sum()
}

fn nearest(point: &[f64], centers: &[Vec<f64>]) -> usize {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (i, c) in centers.iter().enumerate() {
        let d = sq_dist(point, c);
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    best
}

/// Run DP k-means from `initial` centers (which must be data-independent,
/// e.g. seeded random vectors — the paper initializes all privacy levels
/// from "a common random set of vectors").
///
/// Total privacy cost: `iterations × eps_per_iteration`.
pub fn dp_kmeans(
    data: &Queryable<Vec<f64>>,
    cfg: &KMeansConfig,
    initial: Vec<Vec<f64>>,
) -> Result<ClusteringTrajectory> {
    assert!(!initial.is_empty(), "need at least one center");
    assert!(initial.iter().all(|c| c.len() == cfg.dims));
    let timer = SpanTimer::start();
    let k = initial.len();
    let mut centers = initial.clone();
    let mut trajectory = vec![initial];

    // Two queries per cluster per iteration; parallel across clusters.
    let eps_q = cfg.eps_per_iteration / 2.0;

    for _ in 0..cfg.iterations {
        let keys: Vec<usize> = (0..k).collect();
        let assign_centers = centers.clone();
        let parts = data.partition(&keys, move |p: &Vec<f64>| nearest(p, &assign_centers))?;
        for (i, part) in parts.iter().enumerate() {
            let count = part.noisy_count(eps_q)?;
            let sum = part.noisy_sum_vector(eps_q, cfg.dims, cfg.l1_bound, |p| p.clone())?;
            if count >= 1.0 {
                centers[i] = sum.iter().map(|s| s / count).collect();
            }
            // Starved clusters keep their previous center, as in PINQ's
            // k-means: a noisy near-zero count would explode the division.
        }
        trajectory.push(centers.clone());
    }
    emit_phase_global(
        "dp_kmeans",
        cfg.iterations as f64 * cfg.eps_per_iteration,
        timer.elapsed_ns(),
    );
    Ok(ClusteringTrajectory {
        centers: trajectory,
    })
}

/// Run DP "Gaussian EM"-style clustering: like k-means, but each iteration
/// additionally estimates a per-cluster (spherical) variance and assigns
/// points by variance-normalized distance. Three queries per cluster per
/// iteration, so each receives `eps_per_iteration / 3`.
pub fn dp_gaussian_em(
    data: &Queryable<Vec<f64>>,
    cfg: &KMeansConfig,
    initial: Vec<Vec<f64>>,
) -> Result<ClusteringTrajectory> {
    assert!(!initial.is_empty());
    let timer = SpanTimer::start();
    let k = initial.len();
    let mut centers = initial.clone();
    let mut variances = vec![1.0f64; k];
    let mut trajectory = vec![initial];
    let eps_q = cfg.eps_per_iteration / 3.0;
    // Squared distances are clamped to this bound in the variance query.
    let sq_bound = cfg.l1_bound * cfg.l1_bound;

    for _ in 0..cfg.iterations {
        let keys: Vec<usize> = (0..k).collect();
        let assign_centers = centers.clone();
        let assign_vars = variances.clone();
        let parts = data.partition(&keys, move |p: &Vec<f64>| {
            // Variance-normalized assignment.
            let mut best = 0;
            let mut best_d = f64::INFINITY;
            for (i, c) in assign_centers.iter().enumerate() {
                let d = sq_dist(p, c) / assign_vars[i].max(1e-6);
                if d < best_d {
                    best_d = d;
                    best = i;
                }
            }
            best
        })?;
        for (i, part) in parts.iter().enumerate() {
            let count = part.noisy_count(eps_q)?;
            let sum = part.noisy_sum_vector(eps_q, cfg.dims, cfg.l1_bound, |p| p.clone())?;
            let center = centers[i].clone();
            let sq_sum = part.noisy_sum_clamped(eps_q, sq_bound, move |p| sq_dist(p, &center))?;
            if count >= 1.0 {
                centers[i] = sum.iter().map(|s| s / count).collect();
                variances[i] = (sq_sum / count / cfg.dims as f64).max(1e-6);
            }
        }
        trajectory.push(centers.clone());
    }
    emit_phase_global(
        "dp_gaussian_em",
        cfg.iterations as f64 * cfg.eps_per_iteration,
        timer.elapsed_ns(),
    );
    Ok(ClusteringTrajectory {
        centers: trajectory,
    })
}

/// Non-private Lloyd's k-means baseline, returning the same trajectory
/// shape for side-by-side objective curves.
pub fn kmeans_baseline(
    points: &[Vec<f64>],
    iterations: usize,
    initial: Vec<Vec<f64>>,
) -> ClusteringTrajectory {
    let k = initial.len();
    let mut centers = initial.clone();
    let mut trajectory = vec![initial];
    for _ in 0..iterations {
        let mut sums = vec![vec![0.0; centers[0].len()]; k];
        let mut counts = vec![0usize; k];
        for p in points {
            let i = nearest(p, &centers);
            counts[i] += 1;
            for (s, x) in sums[i].iter_mut().zip(p) {
                *s += x;
            }
        }
        for i in 0..k {
            if counts[i] > 0 {
                centers[i] = sums[i].iter().map(|s| s / counts[i] as f64).collect();
            }
        }
        trajectory.push(centers.clone());
    }
    ClusteringTrajectory {
        centers: trajectory,
    }
}

/// The paper's Figure 5 objective: root-mean-square distance from each
/// point to its nearest center.
pub fn clustering_rmse(points: &[Vec<f64>], centers: &[Vec<f64>]) -> f64 {
    if points.is_empty() {
        return 0.0;
    }
    let total: f64 = points
        .iter()
        .map(|p| sq_dist(p, &centers[nearest(p, centers)]))
        .sum();
    (total / points.len() as f64).sqrt()
}

/// Seeded, data-independent initial centers in a bounding box.
pub fn random_centers(k: usize, dims: usize, lo: f64, hi: f64, seed: u64) -> Vec<Vec<f64>> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    (0..k)
        .map(|_| (0..dims).map(|_| rng.gen_range(lo..hi)).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinq::{Accountant, NoiseSource};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Three well-separated planted clusters in 4 dimensions.
    fn dataset(n_per: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let true_centers = vec![
            vec![5.0, 5.0, 5.0, 5.0],
            vec![20.0, 5.0, 20.0, 5.0],
            vec![5.0, 20.0, 5.0, 20.0],
        ];
        let mut pts = Vec::new();
        for c in &true_centers {
            for _ in 0..n_per {
                pts.push(c.iter().map(|&x| x + rng.gen_range(-1.0..1.0)).collect());
            }
        }
        (pts, true_centers)
    }

    fn protect(points: Vec<Vec<f64>>, budget: f64, seed: u64) -> Queryable<Vec<f64>> {
        let acct = Accountant::new(budget);
        let noise = NoiseSource::seeded(seed);
        Queryable::new(points, &acct, &noise)
    }

    fn cfg() -> KMeansConfig {
        KMeansConfig {
            dims: 4,
            iterations: 8,
            eps_per_iteration: 1.0,
            l1_bound: 100.0,
        }
    }

    #[test]
    fn baseline_recovers_planted_centers() {
        let (pts, truth) = dataset(500, 1);
        // Lloyd's algorithm is init-sensitive; this seed's random centers
        // converge to the planted clusters rather than a local optimum.
        let init = random_centers(3, 4, 0.0, 25.0, 4);
        let traj = kmeans_baseline(&pts, 10, init);
        let final_rmse = clustering_rmse(&pts, traj.last());
        // Within-cluster jitter is ±1 per coordinate: RMSE ≈ sqrt(4/3)≈1.15.
        assert!(final_rmse < 2.0, "baseline RMSE {final_rmse}");
        let _ = truth;
    }

    #[test]
    fn dp_kmeans_approaches_baseline_at_weak_privacy() {
        let (pts, _) = dataset(800, 2);
        let init = random_centers(3, 4, 0.0, 25.0, 7);
        let q = protect(pts.clone(), 1000.0, 3);
        let traj = dp_kmeans(
            &q,
            &KMeansConfig {
                eps_per_iteration: 10.0,
                ..cfg()
            },
            init.clone(),
        )
        .unwrap();
        let base = kmeans_baseline(&pts, 8, init);
        let dp_rmse = clustering_rmse(&pts, traj.last());
        let base_rmse = clustering_rmse(&pts, base.last());
        assert!(
            dp_rmse < base_rmse * 1.3 + 0.5,
            "dp {dp_rmse} vs baseline {base_rmse}"
        );
    }

    #[test]
    fn strong_privacy_is_notably_worse() {
        // Figure 5's qualitative shape: ε=0.1/iteration is visibly worse
        // than ε=10/iteration.
        let (pts, _) = dataset(800, 4);
        let init = random_centers(3, 4, 0.0, 25.0, 7);
        let strong = dp_kmeans(
            &protect(pts.clone(), 1000.0, 5),
            &KMeansConfig {
                eps_per_iteration: 0.05,
                ..cfg()
            },
            init.clone(),
        )
        .unwrap();
        let weak = dp_kmeans(
            &protect(pts.clone(), 1000.0, 5),
            &KMeansConfig {
                eps_per_iteration: 10.0,
                ..cfg()
            },
            init,
        )
        .unwrap();
        let r_strong = clustering_rmse(&pts, strong.last());
        let r_weak = clustering_rmse(&pts, weak.last());
        assert!(
            r_strong > r_weak * 1.2,
            "strong {r_strong} vs weak {r_weak}"
        );
    }

    #[test]
    fn privacy_cost_is_iterations_times_eps() {
        let (pts, _) = dataset(100, 6);
        let acct = Accountant::new(100.0);
        let noise = NoiseSource::seeded(8);
        let q = Queryable::new(pts, &acct, &noise);
        let init = random_centers(3, 4, 0.0, 25.0, 7);
        dp_kmeans(
            &q,
            &KMeansConfig {
                iterations: 5,
                eps_per_iteration: 0.4,
                ..cfg()
            },
            init,
        )
        .unwrap();
        assert!((acct.spent() - 2.0).abs() < 1e-9, "spent {}", acct.spent());
    }

    #[test]
    fn gaussian_em_costs_the_same_but_is_noisier_per_query() {
        let (pts, _) = dataset(200, 9);
        let acct = Accountant::new(100.0);
        let noise = NoiseSource::seeded(10);
        let q = Queryable::new(pts, &acct, &noise);
        let init = random_centers(3, 4, 0.0, 25.0, 7);
        dp_gaussian_em(
            &q,
            &KMeansConfig {
                iterations: 4,
                eps_per_iteration: 0.3,
                ..cfg()
            },
            init,
        )
        .unwrap();
        // Same per-iteration ε as k-means would spend.
        assert!((acct.spent() - 1.2).abs() < 1e-9, "spent {}", acct.spent());
    }

    #[test]
    fn trajectory_includes_initial_centers() {
        let (pts, _) = dataset(50, 11);
        let q = protect(pts, 100.0, 12);
        let init = random_centers(2, 4, 0.0, 25.0, 13);
        let traj = dp_kmeans(
            &q,
            &KMeansConfig {
                iterations: 3,
                ..cfg()
            },
            init.clone(),
        )
        .unwrap();
        assert_eq!(traj.centers.len(), 4);
        assert_eq!(traj.centers[0], init);
    }

    #[test]
    fn rmse_of_perfect_centers_is_zero() {
        let pts = vec![vec![1.0, 2.0], vec![1.0, 2.0]];
        assert_eq!(clustering_rmse(&pts, &[vec![1.0, 2.0]]), 0.0);
        assert_eq!(clustering_rmse(&[], &[vec![0.0]]), 0.0);
    }

    #[test]
    fn random_centers_are_seeded() {
        assert_eq!(
            random_centers(3, 5, 0.0, 1.0, 42),
            random_centers(3, 5, 0.0, 1.0, 42)
        );
        assert_ne!(
            random_centers(3, 5, 0.0, 1.0, 42),
            random_centers(3, 5, 0.0, 1.0, 43)
        );
    }
}
