//! Passive network discovery (paper §5.3.2; Eriksson et al., SIGCOMM 2008).
//!
//! Topology is inferred by clustering IP addresses on their hop-count
//! distances to a set of monitors: addresses with similar distance vectors
//! are topologically close. The private reproduction follows the paper:
//!
//! 1. **Per-monitor averages** for imputing missing readings —
//!    `Partition` by monitor + `NoisyAverage` (one ε for all monitors).
//! 2. **Assemble per-IP vectors** — `Concat` the monitors' readings,
//!    `GroupBy` IP (stability 2), fill absent coordinates with the released
//!    averages. All of this is transformation logic, free of charge.
//! 3. **DP k-means** over the vectors (the paper uses PINQ's k-means with
//!    nine centers; each iteration costs another multiple of ε). The
//!    original analysis used Gaussian EM, but "it has a higher privacy cost
//!    and is consequently less accurate" — [`dpnet_toolkit::kmeans`]
//!    provides both for the ablation.
//!
//! Figure 5 plots the clustering objective (mean distance to nearest
//! center) per iteration: ε = 0.1 ends ~50% worse than noise-free, ε = 1 is
//! close, ε = 10 is nearly identical.

use dpnet_toolkit::kmeans::{dp_gaussian_em, dp_kmeans, ClusteringTrajectory, KMeansConfig};
use dpnet_trace::gen::scatter::ScatterRecord;
use pinq::{Queryable, Result};

/// Configuration for the private topology-mapping analysis.
#[derive(Debug, Clone)]
pub struct TopologyConfig {
    /// Number of monitors (vector dimensionality; paper: 38).
    pub monitors: usize,
    /// Number of cluster centers (paper: 9).
    pub centers: usize,
    /// k-means iterations (paper: 10).
    pub iterations: usize,
    /// Per-iteration ε (the paper's 0.1 / 1 / 10 axis).
    pub eps_per_iteration: f64,
    /// ε for the per-monitor average imputation step.
    pub eps_averages: f64,
    /// Maximum plausible hop count, used for clamping bounds.
    pub max_hops: f64,
    /// Use the Gaussian-EM variant instead of k-means (the ablation).
    pub gaussian_em: bool,
}

impl Default for TopologyConfig {
    fn default() -> Self {
        TopologyConfig {
            monitors: 38,
            centers: 9,
            iterations: 10,
            eps_per_iteration: 1.0,
            eps_averages: 0.1,
            max_hops: 40.0,
            gaussian_em: false,
        }
    }
}

/// Privately estimate each monitor's average hop count (for imputation).
/// Cost: `eps_averages` total (parallel across monitors).
pub fn private_monitor_averages(
    records: &Queryable<ScatterRecord>,
    cfg: &TopologyConfig,
) -> Result<Vec<f64>> {
    let keys: Vec<u16> = (0..cfg.monitors as u16).collect();
    let parts = records.partition(&keys, |r| r.monitor)?;
    let mut avgs = Vec::with_capacity(cfg.monitors);
    let max_hops = cfg.max_hops;
    for part in &parts {
        let a = part.noisy_average_in(cfg.eps_averages, 0.0, max_hops, |r| r.hops as f64)?;
        avgs.push(a.clamp(0.0, max_hops));
    }
    Ok(avgs)
}

/// Assemble the protected per-IP hop-count vectors, imputing missing
/// monitor readings with the released averages. The `GroupBy` doubles the
/// stability of the resulting dataset.
pub fn private_ip_vectors(
    records: &Queryable<ScatterRecord>,
    averages: &[f64],
    cfg: &TopologyConfig,
) -> Queryable<Vec<f64>> {
    let monitors = cfg.monitors;
    let averages = averages.to_vec();
    records.group_by(|r| r.ip).map(move |g| {
        let mut v = averages.clone();
        for r in &g.items {
            if (r.monitor as usize) < monitors {
                v[r.monitor as usize] = r.hops as f64;
            }
        }
        v
    })
}

/// Run the full private topology-mapping pipeline. Returns the clustering
/// trajectory (centers after every iteration) for objective curves.
///
/// Total privacy cost: `eps_averages + 2 × iterations × eps_per_iteration`
/// (the factor 2 from the `GroupBy` stability under the clustering).
pub fn private_topology_clusters(
    records: &Queryable<ScatterRecord>,
    cfg: &TopologyConfig,
    initial: Vec<Vec<f64>>,
) -> Result<ClusteringTrajectory> {
    let averages = private_monitor_averages(records, cfg)?;
    let vectors = private_ip_vectors(records, &averages, cfg);
    let km = KMeansConfig {
        dims: cfg.monitors,
        iterations: cfg.iterations,
        eps_per_iteration: cfg.eps_per_iteration,
        // Hop vectors could reach max_hops on every coordinate, but typical
        // Internet paths average well under half that; clamping the L1 ball
        // at (max_hops/2)·monitors halves the noise while leaving genuine
        // vectors essentially unscaled — a data-independent modeling choice
        // the analyst can justify a priori.
        l1_bound: cfg.max_hops / 2.0 * cfg.monitors as f64,
    };
    if cfg.gaussian_em {
        dp_gaussian_em(&vectors, &km, initial)
    } else {
        dp_kmeans(&vectors, &km, initial)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpnet_toolkit::kmeans::{clustering_rmse, kmeans_baseline, random_centers};
    use dpnet_trace::gen::scatter::{generate, ScatterConfig};
    use pinq::{Accountant, NoiseSource};

    fn scatter() -> dpnet_trace::gen::scatter::ScatterTrace {
        generate(ScatterConfig {
            ips: 3000,
            ..ScatterConfig::default()
        })
    }

    fn cfg() -> TopologyConfig {
        TopologyConfig {
            iterations: 6,
            ..TopologyConfig::default()
        }
    }

    fn protect(records: Vec<ScatterRecord>, seed: u64) -> (Accountant, Queryable<ScatterRecord>) {
        let acct = Accountant::new(1_000_000.0);
        let noise = NoiseSource::seeded(seed);
        (acct.clone(), Queryable::new(records, &acct, &noise))
    }

    #[test]
    fn monitor_averages_match_truth() {
        let t = scatter();
        let (_, q) = protect(t.records.clone(), 121);
        let avgs = private_monitor_averages(
            &q,
            &TopologyConfig {
                eps_averages: 1.0,
                ..cfg()
            },
        )
        .unwrap();
        assert_eq!(avgs.len(), 38);
        // Exact per-monitor means.
        for (m, avg) in avgs.iter().enumerate() {
            let vals: Vec<f64> = t
                .records
                .iter()
                .filter(|r| r.monitor == m as u16)
                .map(|r| r.hops as f64)
                .collect();
            let exact = vals.iter().sum::<f64>() / vals.len() as f64;
            assert!((avg - exact).abs() < 1.0, "monitor {m}: {avg} vs {exact}");
        }
    }

    #[test]
    fn ip_vectors_match_the_generators_imputation() {
        let t = scatter();
        let (acct, q) = protect(t.records.clone(), 123);
        let avgs = private_monitor_averages(
            &q,
            &TopologyConfig {
                eps_averages: 50.0,
                ..cfg()
            },
        )
        .unwrap();
        let vectors = private_ip_vectors(&q, &avgs, &cfg());
        // Transformation only: no extra cost beyond the averages.
        let spent_before = acct.spent();
        let n = vectors.noisy_count(1000.0).unwrap();
        assert!(acct.spent() > spent_before);
        assert!((n - 3000.0).abs() < 10.0, "IP count {n}");
    }

    #[test]
    fn weak_privacy_matches_baseline_clustering() {
        let t = scatter();
        let exact_vectors: Vec<Vec<f64>> = t
            .vectors_mean_imputed()
            .into_iter()
            .map(|(_, v)| v)
            .collect();
        let init = random_centers(9, 38, 5.0, 25.0, 999);
        let base = kmeans_baseline(&exact_vectors, 6, init.clone());
        let (_, q) = protect(t.records.clone(), 127);
        let traj = private_topology_clusters(
            &q,
            &TopologyConfig {
                eps_per_iteration: 50.0,
                eps_averages: 10.0,
                ..cfg()
            },
            init,
        )
        .unwrap();
        let r_dp = clustering_rmse(&exact_vectors, traj.last());
        let r_base = clustering_rmse(&exact_vectors, base.last());
        assert!(r_dp < r_base * 1.15 + 0.3, "dp {r_dp} vs baseline {r_base}");
    }

    #[test]
    fn strong_privacy_is_worse_as_in_figure5() {
        let t = scatter();
        let exact_vectors: Vec<Vec<f64>> = t
            .vectors_mean_imputed()
            .into_iter()
            .map(|(_, v)| v)
            .collect();
        let init = random_centers(9, 38, 5.0, 25.0, 999);
        let run = |eps: f64, seed: u64| {
            let (_, q) = protect(t.records.clone(), seed);
            let traj = private_topology_clusters(
                &q,
                &TopologyConfig {
                    eps_per_iteration: eps,
                    ..cfg()
                },
                init.clone(),
            )
            .unwrap();
            clustering_rmse(&exact_vectors, traj.last())
        };
        let strong = run(0.1, 131);
        let weak = run(10.0, 131);
        assert!(
            strong > weak * 1.1,
            "strong-privacy RMSE {strong} vs weak {weak}"
        );
    }

    #[test]
    fn privacy_cost_accounting_matches_the_formula() {
        let t = scatter();
        let acct = Accountant::new(1000.0);
        let noise = NoiseSource::seeded(137);
        let q = Queryable::new(t.records, &acct, &noise);
        let c = TopologyConfig {
            iterations: 3,
            eps_per_iteration: 0.5,
            eps_averages: 0.25,
            ..cfg()
        };
        let init = random_centers(9, 38, 5.0, 25.0, 1);
        private_topology_clusters(&q, &c, init).unwrap();
        // 0.25 + 2 (GroupBy) × 3 iterations × 0.5 = 3.25.
        assert!((acct.spent() - 3.25).abs() < 1e-9, "spent {}", acct.spent());
    }

    #[test]
    fn trajectory_has_one_entry_per_iteration_plus_initial() {
        let t = scatter();
        let (_, q) = protect(t.records, 139);
        let init = random_centers(9, 38, 5.0, 25.0, 2);
        let traj = private_topology_clusters(
            &q,
            &TopologyConfig {
                iterations: 4,
                ..cfg()
            },
            init,
        )
        .unwrap();
        assert_eq!(traj.centers.len(), 5);
    }
}
