//! The paper's §2.3 worked example.
//!
//! "Suppose we want to count distinct hosts that send more than 1024 bytes
//! to port 80." The computation groups packets by source, restricts on the
//! per-group byte total, and counts — the canonical first PINQ query. On
//! the paper's Hotspot trace the noise-free answer is 120; a run at
//! ε = 0.1 returned 121, with expected error ±10.

use dpnet_trace::Packet;
use pinq::{Queryable, Result};

/// Privately count distinct hosts sending more than `byte_threshold` bytes
/// to `port`. Privacy cost: `2ε` (the `GroupBy` doubles sensitivity).
pub fn heavy_hosts_to_port(
    packets: &Queryable<Packet>,
    port: u16,
    byte_threshold: u64,
    eps: f64,
) -> Result<f64> {
    packets
        .filter(move |p| p.dst_port == port)
        .group_by(|p| p.src_ip)
        .filter(move |g| g.items.iter().map(|p| p.len as u64).sum::<u64>() > byte_threshold)
        .noisy_count(eps)
}

/// Noise-free reference for the same computation.
pub fn heavy_hosts_to_port_exact(packets: &[Packet], port: u16, byte_threshold: u64) -> usize {
    let mut per_host: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();
    for p in packets {
        if p.dst_port == port {
            *per_host.entry(p.src_ip).or_default() += p.len as u64;
        }
    }
    per_host.values().filter(|&&b| b > byte_threshold).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpnet_trace::{Proto, TcpFlags};
    use pinq::{Accountant, NoiseSource};

    fn pkt(src: u32, port: u16, len: u16) -> Packet {
        Packet {
            ts_us: 0,
            src_ip: src,
            dst_ip: 1,
            src_port: 40000,
            dst_port: port,
            proto: Proto::Tcp,
            len,
            flags: TcpFlags::ack(),
            seq: 0,
            ack: 0,
            payload: vec![],
        }
    }

    fn trace() -> Vec<Packet> {
        let mut v = Vec::new();
        // 120 heavy hosts: two packets of 600 bytes each to port 80.
        for h in 0..120 {
            v.push(pkt(h, 80, 600));
            v.push(pkt(h, 80, 600));
        }
        // Light hosts and other-port traffic.
        for h in 1000..1100 {
            v.push(pkt(h, 80, 100));
            v.push(pkt(h, 443, 1492));
        }
        v
    }

    #[test]
    fn exact_answer_is_120() {
        assert_eq!(heavy_hosts_to_port_exact(&trace(), 80, 1024), 120);
    }

    #[test]
    fn private_answer_is_close_at_eps_01() {
        let acct = Accountant::new(100.0);
        let noise = NoiseSource::seeded(23);
        let q = Queryable::new(trace(), &acct, &noise);
        let mut answers = Vec::new();
        for _ in 0..50 {
            answers.push(heavy_hosts_to_port(&q, 80, 1024, 0.1).unwrap());
        }
        let mean: f64 = answers.iter().sum::<f64>() / answers.len() as f64;
        assert!((mean - 120.0).abs() < 8.0, "mean {mean}");
        // Mean absolute error ≈ 1/ε = 10 at ε = 0.1 (paper: "±10").
        let mae: f64 =
            answers.iter().map(|a| (a - 120.0).abs()).sum::<f64>() / answers.len() as f64;
        assert!(mae < 30.0, "mae {mae}");
    }

    #[test]
    fn privacy_cost_is_two_eps() {
        let acct = Accountant::new(1.0);
        let noise = NoiseSource::seeded(29);
        let q = Queryable::new(trace(), &acct, &noise);
        heavy_hosts_to_port(&q, 80, 1024, 0.1).unwrap();
        assert!((acct.spent() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn byte_threshold_is_respected() {
        // Raising the threshold above every host's total yields ~0.
        let acct = Accountant::new(100.0);
        let noise = NoiseSource::seeded(31);
        let q = Queryable::new(trace(), &acct, &noise);
        let c = heavy_hosts_to_port(&q, 80, 10_000_000, 10.0).unwrap();
        assert!(c.abs() < 2.0, "count {c}");
    }
}
