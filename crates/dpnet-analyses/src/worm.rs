//! Automated worm fingerprinting (paper §5.1.2; Singh et al., OSDI 2004).
//!
//! A worm signature is a payload that occurs frequently *and* is dispersed:
//! originated by many distinct sources and destined to many distinct
//! addresses. The private pipeline follows the paper:
//!
//! 1. **Spell out candidate payloads** with the frequent-string tool (§4.2)
//!    — frequent payloads are statistical trends and can be released.
//! 2. **Evaluate dispersion per candidate**: `Partition` the trace by
//!    candidate payload, then release a noisy count of distinct sources and
//!    distinct destinations for each part (the paper's code fragment:
//!    `Select(dstIP).Distinct().Count(ε)`).
//! 3. Report candidates whose noisy dispersions clear the thresholds
//!    (the paper uses 50 for both).
//!
//! The paper's accuracy result: the noise-free computation finds 29
//! high-dispersion payloads; private search recovers 7, 24, and 29 of them
//! at ε = 0.1, 1.0, 10.0 — the misses being payloads with low overall
//! presence but above-average dispersal.

use dpnet_toolkit::freqstrings::{frequent_strings, FrequentStringsConfig};
use dpnet_trace::Packet;
use pinq::parallel::parallel_map_parts_with;
use pinq::{ExecCtx, ExecPool, Queryable, Result};
use std::collections::{HashMap, HashSet};

/// Configuration for private worm fingerprinting.
#[derive(Debug, Clone)]
pub struct WormConfig {
    /// Signature length in bytes (the payload prefix examined).
    pub payload_len: usize,
    /// Per-aggregation accuracy ε (the axis the paper reports: "searching
    /// for prefixes privately with ε values of 0.1, 1.0, and 10.0").
    /// Total privacy cost: `payload_len × ε` for the search plus `2ε` for
    /// the dispersion checks.
    pub eps: f64,
    /// Noisy-count threshold for the frequent-string search.
    pub presence_threshold: f64,
    /// Dispersion threshold on distinct sources (paper: 50).
    pub src_threshold: f64,
    /// Dispersion threshold on distinct destinations (paper: 50).
    pub dst_threshold: f64,
}

impl Default for WormConfig {
    fn default() -> Self {
        WormConfig {
            payload_len: 8,
            eps: 1.0,
            presence_threshold: 100.0,
            src_threshold: 50.0,
            dst_threshold: 50.0,
        }
    }
}

/// A reported worm signature.
#[derive(Debug, Clone, PartialEq)]
pub struct WormFinding {
    /// The payload prefix identified as a signature.
    pub payload: Vec<u8>,
    /// Noisy count of distinct source IPs.
    pub distinct_sources: f64,
    /// Noisy count of distinct destination IPs.
    pub distinct_destinations: f64,
    /// Noisy total occurrence count from the string search.
    pub presence: f64,
}

/// Run private worm fingerprinting. Total privacy cost:
/// `(payload_len + 2) × ε`.
pub fn worm_fingerprints(
    packets: &Queryable<Packet>,
    cfg: &WormConfig,
) -> Result<Vec<WormFinding>> {
    let plen = cfg.payload_len;
    let payloads = packets
        .filter(move |p| p.payload.len() >= plen)
        .map(move |p| p.payload[..plen].to_vec());
    let candidates = frequent_strings(
        &payloads,
        &FrequentStringsConfig {
            length: plen,
            eps_per_level: cfg.eps,
            threshold: cfg.presence_threshold,
            max_viable: 512,
        },
    )?;
    if candidates.is_empty() {
        return Ok(Vec::new());
    }

    let keys: Vec<Vec<u8>> = candidates.iter().map(|c| c.bytes.clone()).collect();
    let parts = packets.partition(&keys, move |p: &Packet| {
        if p.payload.len() >= plen {
            p.payload[..plen].to_vec()
        } else {
            Vec::new()
        }
    })?;

    let mut findings = Vec::new();
    for (cand, part) in candidates.into_iter().zip(&parts) {
        let srcs = part.distinct_by(|p| p.src_ip).noisy_count(cfg.eps)?;
        let dsts = part.distinct_by(|p| p.dst_ip).noisy_count(cfg.eps)?;
        if srcs > cfg.src_threshold && dsts > cfg.dst_threshold {
            findings.push(WormFinding {
                payload: cand.bytes,
                distinct_sources: srcs,
                distinct_destinations: dsts,
                presence: cand.noisy_count,
            });
        }
    }
    findings.sort_by(|a, b| {
        b.presence
            .partial_cmp(&a.presence)
            .expect("finite presence")
    });
    Ok(findings)
}

/// [`worm_fingerprints`] on a worker pool: the candidate partition is built
/// by the chunked parallel kernel, and the per-candidate dispersion queries
/// (`distinct → count`, twice per part) fan out across workers with
/// deterministic per-part noise substreams. At a fixed seed the findings
/// are identical for **any** worker count; budget charges match the
/// sequential analysis exactly. (The released values differ from the
/// sequential [`worm_fingerprints`] at the same seed, because each part
/// draws from its own substream rather than the shared stream.)
pub fn worm_fingerprints_with(
    packets: &Queryable<Packet>,
    cfg: &WormConfig,
    pool: &ExecPool,
) -> Result<Vec<WormFinding>> {
    let plen = cfg.payload_len;
    // Bind the pool once: every plan materialization and partition below
    // runs chunked on it.
    let packets = packets.clone().with_ctx(ExecCtx::pool(pool));
    let payloads = packets
        .filter(move |p| p.payload.len() >= plen)
        .map(move |p| p.payload[..plen].to_vec());
    let candidates = frequent_strings(
        &payloads,
        &FrequentStringsConfig {
            length: plen,
            eps_per_level: cfg.eps,
            threshold: cfg.presence_threshold,
            max_viable: 512,
        },
    )?;
    if candidates.is_empty() {
        return Ok(Vec::new());
    }

    let keys: Vec<Vec<u8>> = candidates.iter().map(|c| c.bytes.clone()).collect();
    let parts = packets.partition(&keys, move |p: &Packet| {
        if p.payload.len() >= plen {
            p.payload[..plen].to_vec()
        } else {
            Vec::new()
        }
    })?;

    let eps = cfg.eps;
    let dispersions = parallel_map_parts_with(&parts, pool, |part| {
        let srcs = part.distinct_by(|p| p.src_ip).noisy_count(eps)?;
        let dsts = part.distinct_by(|p| p.dst_ip).noisy_count(eps)?;
        Ok((srcs, dsts))
    });

    let mut findings = Vec::new();
    for (cand, disp) in candidates.into_iter().zip(dispersions) {
        let (srcs, dsts): (f64, f64) = disp?;
        if srcs > cfg.src_threshold && dsts > cfg.dst_threshold {
            findings.push(WormFinding {
                payload: cand.bytes,
                distinct_sources: srcs,
                distinct_destinations: dsts,
                presence: cand.noisy_count,
            });
        }
    }
    findings.sort_by(|a, b| {
        b.presence
            .partial_cmp(&a.presence)
            .expect("finite presence")
    });
    Ok(findings)
}

/// A port-qualified worm signature (§5.1.2 extension: "reducing false
/// positives by incorporating the destination port into the signature").
#[derive(Debug, Clone, PartialEq)]
pub struct PortWormFinding {
    /// The payload prefix.
    pub payload: Vec<u8>,
    /// The destination port the signature is tied to.
    pub port: u16,
    /// Noisy distinct sources sending this (payload, port) pair.
    pub distinct_sources: f64,
    /// Noisy distinct destinations receiving it.
    pub distinct_destinations: f64,
}

/// Port-qualified worm fingerprinting: after the payload search, dispersion
/// is evaluated per (payload, destination-port) pair, so content that is
/// dispersed only *across* ports — a false-positive mode of the base
/// analysis — no longer qualifies. `ports` is the data-independent port
/// list to consider (e.g. well-known service ports).
///
/// Privacy cost: `payload_len × ε` (search) + `2ε` (the per-pair dispersion
/// counts compose in parallel).
pub fn worm_fingerprints_with_port(
    packets: &Queryable<Packet>,
    cfg: &WormConfig,
    ports: &[u16],
) -> Result<Vec<PortWormFinding>> {
    let plen = cfg.payload_len;
    let payloads = packets
        .filter(move |p| p.payload.len() >= plen)
        .map(move |p| p.payload[..plen].to_vec());
    let candidates = frequent_strings(
        &payloads,
        &FrequentStringsConfig {
            length: plen,
            eps_per_level: cfg.eps,
            threshold: cfg.presence_threshold,
            max_viable: 512,
        },
    )?;
    if candidates.is_empty() || ports.is_empty() {
        return Ok(Vec::new());
    }

    let mut keys: Vec<(Vec<u8>, u16)> = Vec::with_capacity(candidates.len() * ports.len());
    for c in &candidates {
        for &port in ports {
            keys.push((c.bytes.clone(), port));
        }
    }
    let parts = packets.partition(&keys, move |p: &Packet| {
        if p.payload.len() >= plen {
            (p.payload[..plen].to_vec(), p.dst_port)
        } else {
            (Vec::new(), 0)
        }
    })?;

    let mut findings = Vec::new();
    for ((payload, port), part) in keys.into_iter().zip(&parts) {
        let srcs = part.distinct_by(|p| p.src_ip).noisy_count(cfg.eps)?;
        let dsts = part.distinct_by(|p| p.dst_ip).noisy_count(cfg.eps)?;
        if srcs > cfg.src_threshold && dsts > cfg.dst_threshold {
            findings.push(PortWormFinding {
                payload,
                port,
                distinct_sources: srcs,
                distinct_destinations: dsts,
            });
        }
    }
    findings.sort_by(|a, b| {
        b.distinct_sources
            .partial_cmp(&a.distinct_sources)
            .expect("finite")
    });
    Ok(findings)
}

/// Configuration for the sliding-window variant.
#[derive(Debug, Clone)]
pub struct WindowedWormConfig {
    /// Window (signature) length in bytes.
    pub window_len: usize,
    /// Maximum payload windows considered per packet — the `SelectMany`
    /// fan-out bound, which multiplies every downstream privacy cost.
    pub max_windows: usize,
    /// Per-aggregation accuracy ε.
    pub eps: f64,
    /// Presence threshold for the window search.
    pub presence_threshold: f64,
    /// Source-dispersion threshold.
    pub src_threshold: f64,
    /// Destination-dispersion threshold.
    pub dst_threshold: f64,
}

impl Default for WindowedWormConfig {
    fn default() -> Self {
        WindowedWormConfig {
            window_len: 6,
            max_windows: 4,
            eps: 1.0,
            presence_threshold: 50.0,
            src_threshold: 50.0,
            dst_threshold: 50.0,
        }
    }
}

/// Sliding-window worm fingerprinting (§5.1.2 extension: "sliding a window
/// over the payloads to look for invariant content"): signatures are
/// `window_len`-byte substrings at *any* offset, so a worm that prepends
/// random padding no longer evades the prefix search. The `SelectMany`
/// expansion multiplies sensitivity by `max_windows` — the concrete example
/// of an easy computation with a high privacy cost (paper §7).
pub fn worm_fingerprints_windowed(
    packets: &Queryable<Packet>,
    cfg: &WindowedWormConfig,
) -> Result<Vec<WormFinding>> {
    let wlen = cfg.window_len;
    let maxw = cfg.max_windows;

    #[derive(Clone)]
    struct WindowRec {
        window: Vec<u8>,
        src: u32,
        dst: u32,
    }
    let windows = packets.select_many(maxw, move |p: &Packet| {
        if p.payload.len() < wlen {
            return Vec::new();
        }
        (0..=(p.payload.len() - wlen))
            .take(maxw)
            .map(|off| WindowRec {
                window: p.payload[off..off + wlen].to_vec(),
                src: p.src_ip,
                dst: p.dst_ip,
            })
            .collect()
    })?;

    let win_bytes = windows.map(|r| r.window.clone());
    let candidates = frequent_strings(
        &win_bytes,
        &FrequentStringsConfig {
            length: wlen,
            eps_per_level: cfg.eps,
            threshold: cfg.presence_threshold,
            max_viable: 512,
        },
    )?;
    if candidates.is_empty() {
        return Ok(Vec::new());
    }

    let keys: Vec<Vec<u8>> = candidates.iter().map(|c| c.bytes.clone()).collect();
    let parts = windows.partition(&keys, |r: &WindowRec| r.window.clone())?;
    let mut findings = Vec::new();
    for (cand, part) in candidates.into_iter().zip(&parts) {
        let srcs = part.distinct_by(|r| r.src).noisy_count(cfg.eps)?;
        let dsts = part.distinct_by(|r| r.dst).noisy_count(cfg.eps)?;
        if srcs > cfg.src_threshold && dsts > cfg.dst_threshold {
            findings.push(WormFinding {
                payload: cand.bytes,
                distinct_sources: srcs,
                distinct_destinations: dsts,
                presence: cand.noisy_count,
            });
        }
    }
    findings.sort_by(|a, b| b.presence.partial_cmp(&a.presence).expect("finite"));
    Ok(findings)
}

/// Noise-free reference: payload prefixes with at least `src_threshold`
/// distinct sources **and** `dst_threshold` distinct destinations.
pub fn worm_fingerprints_exact(
    packets: &[Packet],
    payload_len: usize,
    src_threshold: usize,
    dst_threshold: usize,
) -> Vec<Vec<u8>> {
    let mut srcs: HashMap<&[u8], HashSet<u32>> = HashMap::new();
    let mut dsts: HashMap<&[u8], HashSet<u32>> = HashMap::new();
    for p in packets {
        if p.payload.len() < payload_len {
            continue;
        }
        let key = &p.payload[..payload_len];
        srcs.entry(key).or_default().insert(p.src_ip);
        dsts.entry(key).or_default().insert(p.dst_ip);
    }
    let mut out: Vec<Vec<u8>> = srcs
        .into_iter()
        .filter(|(k, s)| {
            s.len() > src_threshold && dsts.get(k).map(|d| d.len()).unwrap_or(0) > dst_threshold
        })
        .map(|(k, _)| k.to_vec())
        .collect();
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpnet_trace::gen::hotspot::{generate, HotspotConfig};
    use pinq::{Accountant, NoiseSource};

    fn trace() -> dpnet_trace::gen::hotspot::HotspotTrace {
        generate(HotspotConfig {
            web_flows: 250,
            worms_above_threshold: 8,
            worms_below_threshold: 4,
            stepping_stone_pairs: 1,
            interactive_decoys: 1,
            itemset_hosts: 10,
            ..HotspotConfig::default()
        })
    }

    fn protect(pkts: Vec<Packet>, budget: f64, seed: u64) -> (Accountant, Queryable<Packet>) {
        let acct = Accountant::new(budget);
        let noise = NoiseSource::seeded(seed);
        (acct.clone(), Queryable::new(pkts, &acct, &noise))
    }

    #[test]
    fn exact_scan_matches_planted_truth() {
        let t = trace();
        let exact = worm_fingerprints_exact(&t.packets, 8, 50, 50);
        let planted: Vec<Vec<u8>> = t
            .truth
            .worms
            .iter()
            .filter(|w| w.sources > 50 && w.destinations > 50)
            .map(|w| w.payload.clone())
            .collect();
        for p in &planted {
            assert!(exact.contains(p), "planted worm not found by exact scan");
        }
        // Sub-threshold worms must not appear.
        for w in &t.truth.worms {
            if w.sources <= 50 || w.destinations <= 50 {
                assert!(!exact.contains(&w.payload));
            }
        }
    }

    #[test]
    fn weak_privacy_recovers_all_dispersed_worms() {
        let t = trace();
        let exact = worm_fingerprints_exact(&t.packets, 8, 50, 50);
        let (_, q) = protect(t.packets.clone(), 100.0, 61);
        let cfg = WormConfig {
            eps: 10.0,
            presence_threshold: 50.0,
            ..WormConfig::default()
        };
        let found = worm_fingerprints(&q, &cfg).unwrap();
        let found_payloads: std::collections::HashSet<Vec<u8>> =
            found.iter().map(|f| f.payload.clone()).collect();
        let recovered = exact.iter().filter(|p| found_payloads.contains(*p)).count();
        assert_eq!(
            recovered,
            exact.len(),
            "recovered {recovered}/{} at weak privacy",
            exact.len()
        );
    }

    #[test]
    fn strong_privacy_misses_low_presence_worms() {
        let t = trace();
        let exact = worm_fingerprints_exact(&t.packets, 8, 50, 50);
        let (_, q) = protect(t.packets.clone(), 100.0, 67);
        let cfg = WormConfig {
            eps: 0.1,
            presence_threshold: 50.0,
            ..WormConfig::default()
        };
        let found = worm_fingerprints(&q, &cfg).unwrap();
        let found_payloads: std::collections::HashSet<Vec<u8>> =
            found.iter().map(|f| f.payload.clone()).collect();
        let recovered = exact.iter().filter(|p| found_payloads.contains(*p)).count();
        assert!(
            recovered < exact.len(),
            "strong privacy should miss some of {} worms",
            exact.len()
        );
    }

    #[test]
    fn dispersion_estimates_are_accurate_at_weak_privacy() {
        let t = trace();
        let (_, q) = protect(t.packets.clone(), 1000.0, 71);
        let cfg = WormConfig {
            eps: 20.0,
            presence_threshold: 50.0,
            ..WormConfig::default()
        };
        let found = worm_fingerprints(&q, &cfg).unwrap();
        assert!(!found.is_empty());
        for f in &found {
            if let Some(truth) = t.truth.worms.iter().find(|w| w.payload == f.payload) {
                assert!(
                    (f.distinct_sources - truth.sources as f64).abs() < 5.0,
                    "src dispersion {} vs {}",
                    f.distinct_sources,
                    truth.sources
                );
                assert!((f.distinct_destinations - truth.destinations as f64).abs() < 5.0);
            }
        }
    }

    /// Synthetic packets carrying `payload` from many sources to many
    /// destinations on `port`.
    fn spray(payload: &[u8], n: usize, port: u16, base: u32) -> Vec<Packet> {
        (0..n)
            .map(|i| Packet {
                ts_us: i as u64,
                src_ip: base + i as u32,
                dst_ip: base + 1_000_000 + i as u32,
                src_port: 40000,
                dst_port: port,
                proto: dpnet_trace::Proto::Tcp,
                len: (40 + payload.len()) as u16,
                flags: dpnet_trace::TcpFlags::ack(),
                seq: i as u32,
                ack: 0,
                payload: payload.to_vec(),
            })
            .collect()
    }

    #[test]
    fn port_qualification_rejects_cross_port_dispersion() {
        // A payload dispersed across MANY ports (port-scanning noise, the
        // base analysis's false positive)…
        let mut pkts = Vec::new();
        for i in 0..120u16 {
            let mut batch = spray(b"SCANNOIS", 1, 1000 + i, 0x0100_0000 + i as u32 * 4096);
            pkts.append(&mut batch);
        }
        // …and a genuine worm concentrated on port 445.
        pkts.extend(spray(b"WORMCODE", 120, 445, 0x0200_0000));
        let (_, q) = protect(pkts.clone(), 1e6, 79);

        let base_cfg = WormConfig {
            eps: 10.0,
            presence_threshold: 60.0,
            ..WormConfig::default()
        };
        // The base analysis reports both.
        let base = worm_fingerprints(&q, &base_cfg).unwrap();
        assert!(base.iter().any(|f| f.payload == b"SCANNOIS".to_vec()));
        assert!(base.iter().any(|f| f.payload == b"WORMCODE".to_vec()));

        // Port qualification keeps the worm and drops the scanner noise.
        let ports: Vec<u16> = (1000..1120).chain([445]).collect();
        let qualified = worm_fingerprints_with_port(&q, &base_cfg, &ports).unwrap();
        assert!(qualified
            .iter()
            .any(|f| f.payload == b"WORMCODE".to_vec() && f.port == 445));
        assert!(!qualified.iter().any(|f| f.payload == b"SCANNOIS".to_vec()));
    }

    #[test]
    fn sliding_window_finds_offset_invariant_content() {
        // Worm content at a random offset inside each payload: prefix
        // search fails, window search succeeds.
        let mut pkts = Vec::new();
        for i in 0..150usize {
            let mut payload = vec![(i % 251) as u8, ((i * 7) % 251) as u8];
            payload.truncate(i % 3); // offset 0, 1 or 2
            payload.extend_from_slice(b"EVILBZ");
            payload.resize(9, 0x11);
            let mut p = spray(&payload, 1, 445, 0x0300_0000 + i as u32 * 512);
            pkts.append(&mut p);
        }
        let (_, q) = protect(pkts, 1e6, 83);

        let prefix = worm_fingerprints(
            &q,
            &WormConfig {
                eps: 10.0,
                presence_threshold: 60.0,
                ..WormConfig::default()
            },
        )
        .unwrap();
        assert!(
            prefix.is_empty(),
            "prefix search should miss offset content: {prefix:?}"
        );

        let windowed = worm_fingerprints_windowed(
            &q,
            &WindowedWormConfig {
                eps: 10.0,
                presence_threshold: 60.0,
                ..WindowedWormConfig::default()
            },
        )
        .unwrap();
        assert!(
            windowed.iter().any(|f| f.payload == b"EVILBZ".to_vec()),
            "window search missed the infix: {windowed:?}"
        );
    }

    #[test]
    fn windowed_search_pays_the_fanout_multiplier() {
        let pkts = spray(b"ABCDEFGHI", 100, 80, 0x0400_0000);
        let acct = Accountant::new(1e6);
        let noise = NoiseSource::seeded(87);
        let q = Queryable::new(pkts, &acct, &noise);
        let cfg = WindowedWormConfig {
            window_len: 6,
            max_windows: 4,
            eps: 0.5,
            presence_threshold: 50.0,
            ..WindowedWormConfig::default()
        };
        worm_fingerprints_windowed(&q, &cfg).unwrap();
        // Search: 6 levels × 0.5 × fanout 4 = 12; dispersion: 2 × 0.5 × 4
        // = 4 (parallel across candidates). Total 16.
        assert!((acct.spent() - 16.0).abs() < 1e-9, "spent {}", acct.spent());
    }

    #[test]
    fn pool_fingerprinting_is_identical_for_any_worker_count() {
        let t = trace();
        let cfg = WormConfig {
            eps: 10.0,
            presence_threshold: 50.0,
            ..WormConfig::default()
        };
        let run = |workers: usize| {
            let (acct, q) = protect(t.packets.clone(), 100.0, 89);
            let pool = ExecPool::new(workers).unwrap().with_chunk_size(64);
            let found = worm_fingerprints_with(&q, &cfg, &pool).unwrap();
            assert!(!found.is_empty(), "expected findings at weak privacy");
            (found, acct.spent())
        };
        let baseline = run(1);
        for workers in [2, 8] {
            assert_eq!(run(workers), baseline, "workers={workers} diverged");
        }
    }

    #[test]
    fn pool_fingerprinting_charges_match_sequential() {
        let t = trace();
        let cfg = WormConfig {
            eps: 1.0,
            presence_threshold: 50.0,
            ..WormConfig::default()
        };
        let (seq_acct, seq_q) = protect(t.packets.clone(), 100.0, 73);
        worm_fingerprints(&seq_q, &cfg).unwrap();
        let (par_acct, par_q) = protect(t.packets.clone(), 100.0, 73);
        let pool = ExecPool::new(4).unwrap().with_chunk_size(64);
        worm_fingerprints_with(&par_q, &cfg, &pool).unwrap();
        assert!(
            (par_acct.spent() - seq_acct.spent()).abs() < 1e-12,
            "parallel spent {} vs sequential {}",
            par_acct.spent(),
            seq_acct.spent()
        );
    }

    #[test]
    fn privacy_cost_matches_the_formula() {
        let t = trace();
        let (acct, q) = protect(t.packets, 100.0, 73);
        let cfg = WormConfig {
            eps: 1.0,
            presence_threshold: 50.0,
            ..WormConfig::default()
        };
        worm_fingerprints(&q, &cfg).unwrap();
        // Search: 8 levels × ε. Dispersion: 2 counts × ε, parallel across
        // candidates. Total (8 + 2) × ε.
        assert!((acct.spent() - 10.0).abs() < 1e-9, "spent {}", acct.spent());
    }
}
