//! # dpnet-analyses — differentially-private network trace analyses
//!
//! The six analyses of *McSherry & Mahajan (SIGCOMM 2010)* §5, each
//! implemented both privately (over [`pinq`]) and exactly (the noise-free
//! baseline the paper scores against), spanning the paper's three
//! granularities:
//!
//! | granularity | analysis | module | paper § |
//! |---|---|---|---|
//! | packet | size & port distributions | [`packet_dist`] | 5.1.1 |
//! | packet | worm fingerprinting | [`worm`] | 5.1.2 |
//! | flow | RTT & loss-rate statistics | [`flow_stats`] | 5.2.1 |
//! | flow | stepping-stone detection | [`stepping_stones`] | 5.2.2 |
//! | graph | volume anomaly detection | [`anomaly`] | 5.3.1 |
//! | graph | passive topology mapping | [`topology`] | 5.3.2 |
//!
//! Plus the worked example of §2.3 ([`example_s23`]). Each module's
//! documentation describes the privacy-efficiency choices the paper makes
//! (and the approximations required — e.g. bucketed activation windows for
//! stepping stones).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod anomaly;
pub mod classification;
pub mod comm_rules;
pub mod example_s23;
pub mod flow_stats;
pub mod graph_dist;
pub mod packet_dist;
pub mod stepping_stones;
pub mod topology;
pub mod worm;
