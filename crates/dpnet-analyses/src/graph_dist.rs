//! Graph-level distributional analyses (paper §5.3, introduction).
//!
//! "Some statistical properties are relatively easy to produce:
//! distributions of in and out degrees of nodes in the graph, restricted to
//! various ports or protocols, distributional properties of computed
//! quantities of edges (e.g., the distribution of loss rates across edges
//! in the graph). Some useful properties, such as the diameter of the graph
//! or the maximum degree, are difficult or impossible to compute because
//! they rely on a handful of records."
//!
//! This module implements both halves of that sentence:
//!
//! * [`out_degree_cdf`] / [`in_degree_cdf`] — degree distributions of the
//!   communication graph, optionally restricted to a port, via
//!   `GroupBy(host)` → distinct peers → `Partition`-CDF (cost `2ε`).
//! * [`edge_loss_cdf`] — a computed per-edge quantity (loss rate across
//!   each host-pair edge), same recipe.
//! * [`noisy_max_degree`] — the *fragile* statistic, included to
//!   demonstrate its failure mode: the true maximum depends on one node,
//!   so any DP release of it is dominated by noise/flattening. Tests
//!   document the inaccuracy rather than hide it.

use crate::packet_dist::CdfResult;
use dpnet_toolkit::cdf::{cdf_partition, noise_free_cdf};
use dpnet_trace::Packet;
use pinq::{Queryable, Result};
use std::collections::{HashMap, HashSet};

/// Private CDF of out-degrees (distinct destinations per source host),
/// restricted to `port` if given. Cost: `2ε`.
pub fn out_degree_cdf(
    packets: &Queryable<Packet>,
    port: Option<u16>,
    max_degree: usize,
    eps: f64,
) -> Result<CdfResult> {
    degree_cdf(packets, port, max_degree, eps, /*out=*/ true)
}

/// Private CDF of in-degrees (distinct sources per destination host),
/// restricted to `port` if given. Cost: `2ε`.
pub fn in_degree_cdf(
    packets: &Queryable<Packet>,
    port: Option<u16>,
    max_degree: usize,
    eps: f64,
) -> Result<CdfResult> {
    degree_cdf(packets, port, max_degree, eps, /*out=*/ false)
}

fn degree_cdf(
    packets: &Queryable<Packet>,
    port: Option<u16>,
    max_degree: usize,
    eps: f64,
    out: bool,
) -> Result<CdfResult> {
    assert!(max_degree > 0);
    let n_buckets = max_degree + 1;
    let filtered = packets.filter(move |p| port.map(|q| p.dst_port == q).unwrap_or(true));
    let degrees = filtered
        .group_by(move |p| if out { p.src_ip } else { p.dst_ip })
        .map(move |g| {
            let peers: HashSet<u32> = g
                .items
                .iter()
                .map(|p| if out { p.dst_ip } else { p.src_ip })
                .collect();
            peers.len().min(n_buckets - 1)
        });
    let cdf = cdf_partition(&degrees, n_buckets, eps)?;
    Ok(CdfResult {
        bucket_edges: (0..n_buckets as u64).collect(),
        cdf,
    })
}

/// Private CDF of per-edge loss rates: group TCP data packets by
/// (src, dst) edge, estimate each edge's retransmission fraction, bucket
/// into `resolution` cells over `[0, 1]`. Edges with ≤ `min_packets`
/// packets are excluded. Cost: `2ε`.
pub fn edge_loss_cdf(
    packets: &Queryable<Packet>,
    resolution: usize,
    min_packets: usize,
    eps: f64,
) -> Result<CdfResult> {
    assert!(resolution > 0);
    let n_buckets = resolution + 1;
    let data = packets.filter(|p| {
        p.proto == dpnet_trace::Proto::Tcp && !p.flags.is_syn() && !p.payload.is_empty()
    });
    let rates = data
        .group_by(|p| (p.src_ip, p.dst_ip))
        .filter(move |g| g.items.len() > min_packets)
        .map(move |g| {
            let distinct: HashSet<u32> = g.items.iter().map(|p| p.seq).collect();
            let loss = 1.0 - distinct.len() as f64 / g.items.len() as f64;
            ((loss * resolution as f64).floor() as usize).min(n_buckets - 1)
        });
    let cdf = cdf_partition(&rates, n_buckets, eps)?;
    Ok(CdfResult {
        bucket_edges: (0..n_buckets as u64).collect(),
        cdf,
    })
}

/// The fragile statistic: a noisy maximum out-degree, via the exponential
/// mechanism over degree buckets scored by how many hosts *reach* that
/// degree. Returned for demonstration; with a handful of high-degree hosts
/// the score landscape is nearly flat at the top and the release is
/// unreliable — exactly the paper's point that max/diameter "rely on a
/// handful of records". Cost: `2ε`.
pub fn noisy_max_degree(packets: &Queryable<Packet>, max_degree: usize, eps: f64) -> Result<f64> {
    let degrees = packets.group_by(|p| p.src_ip).map(move |g| {
        let peers: HashSet<u32> = g.items.iter().map(|p| p.dst_ip).collect();
        peers.len().min(max_degree)
    });
    // Median of the top region ≈ not meaningful; instead use the noisy
    // median machinery with a target at the extreme (the 100th percentile
    // cannot be targeted under DP — we ask for the highest candidate whose
    // reach-count is non-trivially supported).
    degrees.noisy_median(eps, 0.0, max_degree as f64, max_degree, |&d| d as f64)
}

/// Exact out-degree CDF with the same bucketing.
pub fn out_degree_cdf_exact(packets: &[Packet], port: Option<u16>, max_degree: usize) -> Vec<f64> {
    let n_buckets = max_degree + 1;
    let mut peers: HashMap<u32, HashSet<u32>> = HashMap::new();
    for p in packets {
        if port.map(|q| p.dst_port == q).unwrap_or(true) {
            peers.entry(p.src_ip).or_default().insert(p.dst_ip);
        }
    }
    let values: Vec<usize> = peers.values().map(|s| s.len().min(n_buckets - 1)).collect();
    noise_free_cdf(&values, n_buckets)
}

/// Exact maximum out-degree.
pub fn max_degree_exact(packets: &[Packet]) -> usize {
    let mut peers: HashMap<u32, HashSet<u32>> = HashMap::new();
    for p in packets {
        peers.entry(p.src_ip).or_default().insert(p.dst_ip);
    }
    peers.values().map(|s| s.len()).max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpnet_toolkit::stats::relative_rmse;
    use dpnet_trace::gen::hotspot::{generate, HotspotConfig};
    use pinq::{Accountant, NoiseSource};

    fn trace() -> Vec<Packet> {
        generate(HotspotConfig {
            web_flows: 400,
            worms_above_threshold: 3,
            worms_below_threshold: 1,
            stepping_stone_pairs: 1,
            interactive_decoys: 1,
            itemset_hosts: 20,
            ..HotspotConfig::default()
        })
        .packets
    }

    fn protect(pkts: Vec<Packet>, seed: u64) -> (Accountant, Queryable<Packet>) {
        let acct = Accountant::new(1e6);
        let noise = NoiseSource::seeded(seed);
        (acct.clone(), Queryable::new(pkts, &acct, &noise))
    }

    #[test]
    fn out_degree_cdf_tracks_exact() {
        let pkts = trace();
        let exact = out_degree_cdf_exact(&pkts, None, 50);
        let (acct, q) = protect(pkts, 301);
        let cdf = out_degree_cdf(&q, None, 50, 1.0).unwrap();
        assert!((acct.spent() - 2.0).abs() < 1e-9, "GroupBy cost");
        let r = relative_rmse(&cdf.cdf, &exact);
        assert!(r < 0.10, "relative RMSE {r}");
    }

    #[test]
    fn port_restriction_shrinks_the_graph() {
        let pkts = trace();
        let all = out_degree_cdf_exact(&pkts, None, 50);
        let ssh = out_degree_cdf_exact(&pkts, Some(22), 50);
        assert!(all.last().unwrap() > ssh.last().unwrap());
        // And the private version reflects it.
        let (_, q) = protect(pkts, 303);
        let p_all = out_degree_cdf(&q, None, 50, 5.0).unwrap();
        let p_ssh = out_degree_cdf(&q, Some(22), 50, 5.0).unwrap();
        assert!(p_all.cdf.last().unwrap() > p_ssh.cdf.last().unwrap());
    }

    #[test]
    fn in_degree_sees_the_popular_servers() {
        // Popular web servers and the DNS resolver receive from many
        // distinct clients, so a visible set of hosts sits in the
        // in-degree tail beyond 10 peers — ordinary clients never do.
        let pkts = trace();
        let (_, q) = protect(pkts, 307);
        let ind = in_degree_cdf(&q, None, 200, 5.0).unwrap();
        let total = *ind.cdf.last().unwrap();
        let below_10 = ind.cdf[10];
        assert!(
            total - below_10 > 4.0,
            "no high-in-degree hosts visible (tail {})",
            total - below_10
        );
    }

    #[test]
    fn edge_loss_cdf_is_mostly_low_loss() {
        let pkts = trace();
        let (_, q) = protect(pkts, 311);
        let cdf = edge_loss_cdf(&q, 20, 10, 1.0).unwrap();
        let total = *cdf.cdf.last().unwrap();
        assert!(total > 50.0, "too few edges measured: {total}");
        // Most edges lose less than 25%.
        assert!(cdf.cdf[5] / total > 0.8, "loss mass too high");
    }

    #[test]
    fn max_degree_is_fragile_as_the_paper_says() {
        let pkts = trace();
        let exact = max_degree_exact(&pkts) as f64;
        let (_, q) = protect(pkts, 313);
        // Even at weak privacy, the "max" comes out near the bulk of the
        // distribution, far below the true maximum: the statistic depends
        // on a handful of records and cannot be released faithfully.
        let released = noisy_max_degree(&q, 400, 10.0).unwrap();
        assert!(
            released < exact * 0.5,
            "released {released} vs true max {exact} — expected heavy flattening"
        );
    }
}
