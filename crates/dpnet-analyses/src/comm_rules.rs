//! Learning communication rules (paper §5.2.3; Kandula, Chandra & Katabi,
//! "What's going on? Learning communication rules in edge networks",
//! SIGCOMM 2008).
//!
//! The paper states it reproduced this association-rule-mining analysis
//! "with a high fidelity" but omitted results for space. The analysis asks:
//! which destination pairs does a client tend to contact *together*? Rules
//! like "whoever fetches from web server W also queries resolver D" expose
//! service dependencies.
//!
//! Private pipeline, assembled entirely from the §4 toolkit:
//!
//! 1. **Discover popular servers** — frequent-string search over the 4-byte
//!    destination addresses of client-originated packets (4 rounds).
//! 2. **Form transactions** — group packets by (client, time window); each
//!    group's set of contacted servers is one record (`GroupBy`,
//!    stability 2).
//! 3. **Mine pairs** — DP apriori over the transactions with the discovered
//!    servers as universe.
//! 4. **Refine supports** — apriori's `Partition` dilutes supports (a
//!    record's evidence goes to one candidate), which skews confidence
//!    ratios. For the *discovered* pairs, supports are re-measured
//!    undiluted with a bounded `SelectMany` expansion (each transaction
//!    contributes to every server/pair it contains, at stability
//!    × fan-out), and rules are scored from those.

use dpnet_toolkit::freqstrings::{frequent_strings, FrequentStringsConfig};
use dpnet_toolkit::itemsets::{frequent_itemsets, ItemsetConfig};
use dpnet_trace::Packet;
use pinq::{Queryable, Result};
use std::collections::BTreeSet;

/// Configuration of the communication-rule analysis.
#[derive(Debug, Clone)]
pub struct CommRulesConfig {
    /// Client subnet as (prefix, mask): packets whose source matches are
    /// client-originated. The data owner knows its own address plan.
    pub client_prefix: u32,
    /// Netmask for `client_prefix`.
    pub client_mask: u32,
    /// Transaction window width in microseconds.
    pub window_us: u64,
    /// Per-aggregation accuracy ε.
    pub eps: f64,
    /// Noisy-count threshold for a server to enter the universe.
    pub server_threshold: f64,
    /// Noisy-count threshold for itemset mining.
    pub pair_threshold: f64,
    /// Minimum confidence for a reported rule.
    pub min_confidence: f64,
    /// Fan-out bound of the support-refinement expansion: at most this many
    /// universe servers per transaction are counted (stability multiplier).
    pub expansion_bound: usize,
}

impl Default for CommRulesConfig {
    fn default() -> Self {
        CommRulesConfig {
            client_prefix: 0x0a00_0000, // 10.0.0.0/8
            client_mask: 0xff00_0000,
            window_us: 10_000_000,
            eps: 1.0,
            server_threshold: 50.0,
            pair_threshold: 20.0,
            min_confidence: 0.3,
            expansion_bound: 3,
        }
    }
}

/// A discovered communication rule: clients contacting `trigger` also
/// contact `implied`.
#[derive(Debug, Clone, PartialEq)]
pub struct CommRule {
    /// The antecedent server.
    pub trigger: u32,
    /// The implied server.
    pub implied: u32,
    /// Noisy partitioned support of the pair.
    pub support: f64,
    /// Estimated confidence.
    pub confidence: f64,
}

/// Transaction item space: server IPs as `u64`, plus per-transaction
/// markers above 2³² that never collide with addresses.
const MARKER_BASE: u64 = 1 << 33;

/// Run the private communication-rule analysis.
///
/// Privacy cost with the default `expansion_bound = 3`:
/// `4ε` (server discovery) + `2·2ε` (two mining levels, stability 2) +
/// `2·3ε` (singleton refinement) + `2·3ε` (pair refinement) = `20ε`.
pub fn communication_rules(
    packets: &Queryable<Packet>,
    cfg: &CommRulesConfig,
) -> Result<Vec<CommRule>> {
    let prefix = cfg.client_prefix;
    let mask = cfg.client_mask;
    let outbound = packets.filter(move |p| p.src_ip & mask == prefix);

    // Step 1: discover popular servers by their 4-byte addresses.
    let dst_bytes = outbound.map(|p| p.dst_ip.to_be_bytes().to_vec());
    let servers = frequent_strings(
        &dst_bytes,
        &FrequentStringsConfig {
            length: 4,
            eps_per_level: cfg.eps,
            threshold: cfg.server_threshold,
            max_viable: 256,
        },
    )?;
    let universe: Vec<u64> = servers
        .iter()
        .filter_map(|s| {
            let bytes: [u8; 4] = s.bytes.as_slice().try_into().ok()?;
            Some(u32::from_be_bytes(bytes) as u64)
        })
        .collect();
    if universe.len() < 2 {
        return Ok(Vec::new());
    }

    // Step 2: transactions = per-(client, window) sets of contacted
    // servers, with a unique marker item for partition-rotation diversity.
    let window = cfg.window_us;
    let transactions = outbound
        .group_by(move |p| (p.src_ip, p.ts_us / window))
        .map(|g| -> BTreeSet<u64> {
            let mut set: BTreeSet<u64> = g.items.iter().map(|p| p.dst_ip as u64).collect();
            set.insert(MARKER_BASE + ((g.key.0 as u64) << 20) + (g.key.1 & 0xfffff));
            set
        });

    // Step 3: mine frequent server pairs (candidate discovery).
    let mined = frequent_itemsets(
        &transactions,
        &ItemsetConfig {
            universe: universe.clone(),
            max_size: 2,
            eps_per_level: cfg.eps,
            threshold: cfg.pair_threshold,
        },
    )?;
    let candidate_pairs: Vec<(u64, u64)> = mined
        .iter()
        .filter(|m| m.size == 2)
        .map(|m| (m.items[0], m.items[1]))
        .collect();
    if candidate_pairs.is_empty() {
        return Ok(Vec::new());
    }

    // Step 4: undiluted supports for the discovered servers and pairs, via
    // bounded SelectMany expansion (every transaction contributes to every
    // server / pair it contains, up to the fan-out bound).
    let bound = cfg.expansion_bound.max(1);
    let uni = universe.clone();
    let singles = transactions.select_many(bound, move |set: &BTreeSet<u64>| {
        set.iter()
            .filter(|i| uni.contains(i))
            .take(bound)
            .cloned()
            .collect()
    })?;
    let single_parts = singles.partition(&universe, |&s| s)?;
    let mut single_support: std::collections::HashMap<u64, f64> = std::collections::HashMap::new();
    for (&server, part) in universe.iter().zip(&single_parts) {
        single_support.insert(server, part.noisy_count(cfg.eps)?);
    }

    let pair_bound = bound * (bound - 1) / 2;
    let uni = universe.clone();
    let pairs_q = transactions.select_many(pair_bound.max(1), move |set: &BTreeSet<u64>| {
        let members: Vec<u64> = set
            .iter()
            .filter(|i| uni.contains(i))
            .take(bound)
            .cloned()
            .collect();
        let mut out = Vec::new();
        for i in 0..members.len() {
            for j in (i + 1)..members.len() {
                out.push((members[i], members[j]));
            }
        }
        out
    })?;
    let pair_parts = pairs_q.partition(&candidate_pairs, |&p| p)?;

    // Rules from refined counts (ranking mirrors the association-rule
    // layer; see `dpnet_toolkit::assoc` for the generic free-post-
    // processing variant used when refinement is too expensive).
    let mut rules = Vec::new();
    for (&(a, b), part) in candidate_pairs.iter().zip(&pair_parts) {
        let pair_support = part.noisy_count(cfg.eps)?;
        for (trigger, implied) in [(a, b), (b, a)] {
            let denom = single_support.get(&trigger).copied().unwrap_or(0.0);
            if denom < 1.0 {
                continue;
            }
            let confidence = (pair_support / denom).clamp(0.0, 1.0);
            if confidence >= cfg.min_confidence {
                rules.push(CommRule {
                    trigger: trigger as u32,
                    implied: implied as u32,
                    support: pair_support,
                    confidence,
                });
            }
        }
    }
    rules.sort_by(|x, y| {
        y.confidence
            .partial_cmp(&x.confidence)
            .expect("finite confidence")
            .then(y.support.partial_cmp(&x.support).expect("finite support"))
    });
    Ok(rules)
}

/// Exact confidence of one rule: among (client, window) transactions that
/// contact `trigger`, the fraction that also contact `implied`.
pub fn exact_rule_confidence(
    packets: &[Packet],
    cfg: &CommRulesConfig,
    trigger: u32,
    implied: u32,
) -> f64 {
    use std::collections::{HashMap, HashSet};
    let mut transactions: HashMap<(u32, u64), HashSet<u32>> = HashMap::new();
    for p in packets {
        if p.src_ip & cfg.client_mask == cfg.client_prefix {
            transactions
                .entry((p.src_ip, p.ts_us / cfg.window_us))
                .or_default()
                .insert(p.dst_ip);
        }
    }
    let with_trigger: Vec<&HashSet<u32>> = transactions
        .values()
        .filter(|s| s.contains(&trigger))
        .collect();
    if with_trigger.is_empty() {
        return 0.0;
    }
    let both = with_trigger.iter().filter(|s| s.contains(&implied)).count();
    both as f64 / with_trigger.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpnet_trace::gen::hotspot::{generate, HotspotConfig};
    use pinq::{Accountant, NoiseSource};

    fn trace() -> dpnet_trace::gen::hotspot::HotspotTrace {
        generate(HotspotConfig {
            web_flows: 600,
            worms_above_threshold: 0,
            worms_below_threshold: 0,
            stepping_stone_pairs: 0,
            interactive_decoys: 0,
            itemset_hosts: 0,
            ..HotspotConfig::default()
        })
    }

    fn protect(pkts: Vec<Packet>, seed: u64) -> (Accountant, Queryable<Packet>) {
        let acct = Accountant::new(1e6);
        let noise = NoiseSource::seeded(seed);
        (acct.clone(), Queryable::new(pkts, &acct, &noise))
    }

    #[test]
    fn dns_dependency_is_discovered() {
        let t = trace();
        let (_, q) = protect(t.packets.clone(), 201);
        let rules = communication_rules(&q, &CommRulesConfig::default()).unwrap();
        assert!(!rules.is_empty(), "no rules found");
        let dns = t.truth.dns_server;
        // Some popular server implies the resolver with decent confidence.
        let dns_rules: Vec<&CommRule> = rules.iter().filter(|r| r.implied == dns).collect();
        assert!(
            !dns_rules.is_empty(),
            "no rule implies the resolver; rules: {rules:?}"
        );
        assert!(dns_rules.iter().any(|r| r.confidence > 0.5));
    }

    #[test]
    fn companion_dependency_is_discovered() {
        let t = trace();
        let (_, q) = protect(t.packets.clone(), 203);
        let cfg = CommRulesConfig {
            pair_threshold: 10.0,
            ..CommRulesConfig::default()
        };
        let rules = communication_rules(&q, &cfg).unwrap();
        let (popular, companion) = t.truth.companion_rule;
        assert!(
            rules
                .iter()
                .any(|r| r.trigger == popular && r.implied == companion),
            "companion rule not found"
        );
    }

    #[test]
    fn noisy_confidence_tracks_exact_confidence() {
        let t = trace();
        let (_, q) = protect(t.packets.clone(), 207);
        let cfg = CommRulesConfig {
            eps: 10.0,
            ..CommRulesConfig::default()
        };
        let rules = communication_rules(&q, &cfg).unwrap();
        assert!(!rules.is_empty());
        for r in rules.iter().take(5) {
            let exact = exact_rule_confidence(&t.packets, &cfg, r.trigger, r.implied);
            // Refined (undiluted) supports track exact confidence closely;
            // the residual gap is the expansion-bound truncation plus noise.
            assert!(
                (r.confidence - exact).abs() < 0.2,
                "rule {:x}->{:x}: noisy {} vs exact {exact}",
                r.trigger,
                r.implied,
                r.confidence
            );
        }
    }

    #[test]
    fn privacy_cost_matches_the_formula() {
        let t = trace();
        let (acct, q) = protect(t.packets, 211);
        let cfg = CommRulesConfig {
            eps: 0.5,
            ..CommRulesConfig::default()
        };
        communication_rules(&q, &cfg).unwrap();
        // 4 discovery + 2·2 mining + 2·3 singles + 2·3 pairs = 20 × 0.5.
        assert!((acct.spent() - 10.0).abs() < 1e-9, "spent {}", acct.spent());
    }

    #[test]
    fn exact_confidence_of_planted_dns_rule_is_high() {
        let t = trace();
        let cfg = CommRulesConfig::default();
        // The most popular server: trigger of the companion rule.
        let (popular, _) = t.truth.companion_rule;
        let c = exact_rule_confidence(&t.packets, &cfg, popular, t.truth.dns_server);
        assert!(c > 0.55, "dns rule confidence {c}");
    }

    #[test]
    fn rules_require_discoverable_universe() {
        // With an absurd server threshold nothing is popular → no rules.
        let t = trace();
        let (_, q) = protect(t.packets, 213);
        let cfg = CommRulesConfig {
            server_threshold: 1e9,
            ..CommRulesConfig::default()
        };
        assert!(communication_rules(&q, &cfg).unwrap().is_empty());
    }
}
