//! Private traffic classification (paper §5.1.3: "we surmise that many
//! other forms of packet-level analyses, such as various classification
//! algorithms [Gupta & McKeown], can also be implemented in the
//! differentially private manner").
//!
//! The classifier itself (rule matching) is a *transformation*: arbitrary
//! logic per record, no privacy cost. The released quantity is the traffic
//! share of each rule — one `Partition` by matched-rule index, so the whole
//! per-rule histogram costs a single ε. Byte volumes per rule use a second
//! ε via clamped sums.

use dpnet_trace::classify::Classifier;
use dpnet_trace::Packet;
use pinq::{Queryable, Result};
use std::sync::Arc;

/// Per-rule private traffic shares.
#[derive(Debug, Clone)]
pub struct RuleTraffic {
    /// Rule name (from the classifier, which is public policy).
    pub rule: String,
    /// Noisy packet count matched by this rule.
    pub packets: f64,
    /// Noisy byte volume matched by this rule (clamped per-packet at the
    /// MTU, so one packet moves the sum by at most `mtu`).
    pub bytes: f64,
}

/// Measure per-rule packet counts and byte volumes. Cost: `2ε` total
/// (counts and sums each compose in parallel across rules).
pub fn rule_traffic(
    packets: &Queryable<Packet>,
    classifier: &Classifier,
    mtu: f64,
    eps: f64,
) -> Result<Vec<RuleTraffic>> {
    let n_rules = classifier.rules().len();
    // Unmatched packets map to index n_rules and are dropped by Partition.
    let keys: Vec<usize> = (0..n_rules).collect();
    let cls = Arc::new(classifier.clone());
    let parts = packets.partition(&keys, move |p: &Packet| cls.classify(p).unwrap_or(n_rules))?;
    let mut out = Vec::with_capacity(n_rules);
    for (rule, part) in classifier.rules().iter().zip(&parts) {
        let count = part.noisy_count(eps)?;
        let bytes = part.noisy_sum_clamped(eps, mtu, |p| p.len as f64)?;
        out.push(RuleTraffic {
            rule: rule.name.clone(),
            packets: count,
            bytes,
        });
    }
    Ok(out)
}

/// Exact per-rule packet counts (the baseline).
pub fn rule_traffic_exact(
    packets: &[Packet],
    classifier: &Classifier,
) -> Vec<(String, usize, u64)> {
    let mut counts = vec![(0usize, 0u64); classifier.rules().len()];
    for p in packets {
        if let Some(i) = classifier.classify(p) {
            counts[i].0 += 1;
            counts[i].1 += p.len as u64;
        }
    }
    classifier
        .rules()
        .iter()
        .zip(counts)
        .map(|(r, (n, b))| (r.name.clone(), n, b))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpnet_trace::classify::example_ruleset;
    use dpnet_trace::gen::hotspot::{generate, HotspotConfig};
    use pinq::{Accountant, NoiseSource};

    fn trace() -> Vec<Packet> {
        generate(HotspotConfig {
            web_flows: 300,
            worms_above_threshold: 2,
            worms_below_threshold: 1,
            stepping_stone_pairs: 1,
            interactive_decoys: 1,
            itemset_hosts: 10,
            ..HotspotConfig::default()
        })
        .packets
    }

    #[test]
    fn private_rule_shares_track_exact() {
        let pkts = trace();
        let cls = example_ruleset();
        let exact = rule_traffic_exact(&pkts, &cls);
        let acct = Accountant::new(100.0);
        let noise = NoiseSource::seeded(401);
        let q = Queryable::new(pkts, &acct, &noise);
        let shares = rule_traffic(&q, &cls, 1500.0, 1.0).unwrap();
        assert!((acct.spent() - 2.0).abs() < 1e-9, "spent {}", acct.spent());
        for (s, (name, n, b)) in shares.iter().zip(&exact) {
            assert_eq!(&s.rule, name);
            assert!(
                (s.packets - *n as f64).abs() < 10.0,
                "{name}: {} vs {n}",
                s.packets
            );
            assert!(
                (s.bytes - *b as f64).abs() < 15_000.0,
                "{name}: {} vs {b}",
                s.bytes
            );
        }
    }

    #[test]
    fn web_dominates_the_example_policy() {
        let pkts = trace();
        let cls = example_ruleset();
        let exact = rule_traffic_exact(&pkts, &cls);
        let web = exact.iter().find(|(n, _, _)| n == "web-in").unwrap();
        let smb = exact.iter().find(|(n, _, _)| n == "smb-block").unwrap();
        assert!(web.1 > smb.1, "web {} vs smb {}", web.1, smb.1);
        // Every packet lands somewhere (catch-all).
        let total: usize = exact.iter().map(|(_, n, _)| n).sum();
        assert_eq!(total, trace().len());
    }

    #[test]
    fn empty_rule_set_measures_nothing() {
        let acct = Accountant::new(1.0);
        let noise = NoiseSource::seeded(402);
        let q = Queryable::new(trace(), &acct, &noise);
        let cls = Classifier::new(vec![]);
        let shares = rule_traffic(&q, &cls, 1500.0, 0.5).unwrap();
        assert!(shares.is_empty());
        assert_eq!(acct.spent(), 0.0);
    }
}
