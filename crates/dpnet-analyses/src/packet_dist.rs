//! Packet-size and port distributions (paper §5.1.1, Figure 2).
//!
//! The simplest packet-level analyses: CDFs of packet length and destination
//! port. The paper computes them with the `Partition`-based estimator
//! (toolkit method 2) and finds the error "minimal even at the strongest
//! privacy level" — relative RMSE 0.01% for lengths and 0.07% for ports at
//! ε = 0.1, correctly preserving features like the spikes at 40 and
//! 1492 bytes.

use dpnet_toolkit::cdf::{cdf_partition, noise_free_cdf};
use dpnet_trace::Packet;
use pinq::{Queryable, Result};

/// A CDF estimate paired with its bucketing, for presentation.
#[derive(Debug, Clone)]
pub struct CdfResult {
    /// Upper edge of each bucket (inclusive), in the measured unit.
    pub bucket_edges: Vec<u64>,
    /// Estimated cumulative counts per bucket.
    pub cdf: Vec<f64>,
}

/// Private CDF of packet lengths, one bucket per `bucket_width` bytes over
/// `[0, max_len]`. Cost: `ε` total (parallel composition).
pub fn packet_length_cdf(
    packets: &Queryable<Packet>,
    max_len: u64,
    bucket_width: u64,
    eps: f64,
) -> Result<CdfResult> {
    assert!(bucket_width > 0);
    let n_buckets = (max_len / bucket_width + 1) as usize;
    let values = packets.map(move |p| (p.len as u64 / bucket_width) as usize);
    let cdf = cdf_partition(&values, n_buckets, eps)?;
    Ok(CdfResult {
        bucket_edges: (0..n_buckets as u64)
            .map(|b| (b + 1) * bucket_width - 1)
            .collect(),
        cdf,
    })
}

/// Private CDF of destination ports, one bucket per `bucket_width` port
/// numbers over the full 16-bit range. Cost: `ε` total.
pub fn port_cdf(packets: &Queryable<Packet>, bucket_width: u64, eps: f64) -> Result<CdfResult> {
    assert!(bucket_width > 0);
    let n_buckets = (65536 / bucket_width + 1) as usize;
    let values = packets.map(move |p| (p.dst_port as u64 / bucket_width) as usize);
    let cdf = cdf_partition(&values, n_buckets, eps)?;
    Ok(CdfResult {
        bucket_edges: (0..n_buckets as u64)
            .map(|b| (b + 1) * bucket_width - 1)
            .collect(),
        cdf,
    })
}

/// Noise-free packet-length CDF with the same bucketing.
pub fn packet_length_cdf_exact(packets: &[Packet], max_len: u64, bucket_width: u64) -> Vec<f64> {
    let n_buckets = (max_len / bucket_width + 1) as usize;
    let values: Vec<usize> = packets
        .iter()
        .map(|p| (p.len as u64 / bucket_width) as usize)
        .collect();
    noise_free_cdf(&values, n_buckets)
}

/// Noise-free port CDF with the same bucketing.
pub fn port_cdf_exact(packets: &[Packet], bucket_width: u64) -> Vec<f64> {
    let n_buckets = (65536 / bucket_width + 1) as usize;
    let values: Vec<usize> = packets
        .iter()
        .map(|p| (p.dst_port as u64 / bucket_width) as usize)
        .collect();
    noise_free_cdf(&values, n_buckets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpnet_toolkit::stats::relative_rmse;
    use dpnet_trace::gen::hotspot::{generate, HotspotConfig};
    use pinq::{Accountant, NoiseSource};

    fn trace() -> Vec<Packet> {
        generate(HotspotConfig {
            web_flows: 400,
            worms_above_threshold: 2,
            worms_below_threshold: 1,
            stepping_stone_pairs: 1,
            interactive_decoys: 2,
            itemset_hosts: 10,
            ..HotspotConfig::default()
        })
        .packets
    }

    fn protect(packets: Vec<Packet>, budget: f64, seed: u64) -> (Accountant, Queryable<Packet>) {
        let acct = Accountant::new(budget);
        let noise = NoiseSource::seeded(seed);
        (acct.clone(), Queryable::new(packets, &acct, &noise))
    }

    #[test]
    fn length_cdf_matches_noise_free_closely() {
        let pkts = trace();
        let (_, q) = protect(pkts.clone(), 10.0, 41);
        let private = packet_length_cdf(&q, 1500, 10, 0.1).unwrap();
        let exact = packet_length_cdf_exact(&pkts, 1500, 10);
        let r = relative_rmse(&private.cdf, &exact);
        // Paper: 0.01% at eps=0.1 on 7M packets; our trace is smaller so
        // the relative error is larger but still far below 5%.
        assert!(r < 0.05, "relative RMSE {r}");
    }

    #[test]
    fn length_cdf_costs_eps_total() {
        let pkts = trace();
        let (acct, q) = protect(pkts, 1.0, 43);
        packet_length_cdf(&q, 1500, 10, 0.25).unwrap();
        assert!((acct.spent() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn length_cdf_preserves_the_mtu_spike() {
        // The jump at the 1492-byte bucket must be visible in the private
        // CDF: counts just below vs at the MTU bucket differ sharply.
        let pkts = trace();
        let (_, q) = protect(pkts.clone(), 10.0, 47);
        let private = packet_length_cdf(&q, 1500, 4, 0.1).unwrap();
        let mtu_bucket = 1492 / 4;
        let jump = private.cdf[mtu_bucket] - private.cdf[mtu_bucket - 1];
        let before = private.cdf[mtu_bucket - 1] - private.cdf[mtu_bucket - 2];
        assert!(
            jump > 10.0 * before.abs().max(10.0),
            "jump {jump} vs {before}"
        );
    }

    #[test]
    fn port_cdf_is_accurate_and_cheap() {
        let pkts = trace();
        let (acct, q) = protect(pkts.clone(), 1.0, 53);
        let private = port_cdf(&q, 64, 0.1).unwrap();
        let exact = port_cdf_exact(&pkts, 64);
        assert!((acct.spent() - 0.1).abs() < 1e-9);
        let r = relative_rmse(&private.cdf, &exact);
        assert!(r < 0.10, "relative RMSE {r}");
    }

    #[test]
    fn bucket_edges_cover_the_range() {
        let pkts = trace();
        let (_, q) = protect(pkts, 10.0, 59);
        let res = packet_length_cdf(&q, 1500, 100, 1.0).unwrap();
        assert_eq!(res.bucket_edges.len(), res.cdf.len());
        assert_eq!(res.bucket_edges[0], 99);
        assert!(*res.bucket_edges.last().unwrap() >= 1500);
    }
}
