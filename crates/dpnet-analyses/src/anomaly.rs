//! Network-wide traffic anomaly detection (paper §5.3.1; Lakhina et al.,
//! SIGCOMM 2004).
//!
//! The analysis assembles a link×time traffic-volume matrix, finds the
//! low-dimensional "normal" subspace with PCA, and flags time bins whose
//! traffic is poorly explained by it. Privately, only the *matrix assembly*
//! touches sensitive records: a nested `Partition` by link and then by time
//! window reduces the whole matrix to independently counted cells, so the
//! entire (links × windows)-cell measurement costs a single ε by parallel
//! composition. The PCA runs on released values and is free.
//!
//! "While the counts are noisy, the definition of a volume anomaly is
//! robust to small counting errors, and no significant anomaly should go
//! unnoticed" — the paper reports relative RMSE 0.17% at ε = 0.1, with all
//! four curves of Figure 4 indistinguishable.

use dpnet_toolkit::linalg::{pca_residual_norms, Matrix};
use dpnet_trace::gen::isp::LinkPacket;
use pinq::{Queryable, Result};

/// Configuration for the private anomaly detection.
#[derive(Debug, Clone)]
pub struct AnomalyConfig {
    /// Number of links (matrix rows of the partition).
    pub links: usize,
    /// Number of time windows (matrix columns).
    pub windows: usize,
    /// Per-count accuracy ε. Total privacy cost is also ε (nested
    /// partitions compose in parallel).
    pub eps: f64,
    /// Number of principal components spanning the normal subspace.
    pub components: usize,
    /// Jacobi sweeps for the eigendecomposition.
    pub sweeps: usize,
}

impl Default for AnomalyConfig {
    fn default() -> Self {
        AnomalyConfig {
            links: 400,
            windows: 672,
            eps: 1.0,
            components: 4,
            sweeps: 30,
        }
    }
}

/// Privately measure the link×time volume matrix:
/// `matrix[link][window] ≈ #packets(link, window)`. Cost: `ε` total.
pub fn private_volume_matrix(
    records: &Queryable<LinkPacket>,
    cfg: &AnomalyConfig,
) -> Result<Vec<Vec<f64>>> {
    let link_keys: Vec<u16> = (0..cfg.links as u16).collect();
    let window_keys: Vec<u16> = (0..cfg.windows as u16).collect();
    let rows = records.partition(&link_keys, |r| r.link)?;
    let mut matrix = Vec::with_capacity(cfg.links);
    for row in &rows {
        let cells = row.partition(&window_keys, |r| r.window)?;
        let mut out = Vec::with_capacity(cfg.windows);
        for cell in &cells {
            out.push(cell.noisy_count(cfg.eps)?);
        }
        matrix.push(out);
    }
    Ok(matrix)
}

/// The per-time-bin anomalous-traffic norm (Figure 4's y-axis): residual
/// norms of the (time × link) matrix after removing the top principal
/// components. Works on any volume matrix — private or exact — since PCA is
/// post-processing.
pub fn anomaly_norms(volumes: &[Vec<f64>], components: usize, sweeps: usize) -> Vec<f64> {
    // volumes is link-major; transpose into time-major rows for PCA over
    // link correlations.
    let links = volumes.len();
    let windows = volumes.first().map(|r| r.len()).unwrap_or(0);
    let mut time_major = Matrix::zeros(windows, links);
    for (l, row) in volumes.iter().enumerate() {
        for (t, &v) in row.iter().enumerate() {
            time_major.set(t, l, v);
        }
    }
    pca_residual_norms(&time_major, components, sweeps)
}

/// Full private pipeline: noisy matrix, then residual norms.
pub fn private_anomaly_norms(
    records: &Queryable<LinkPacket>,
    cfg: &AnomalyConfig,
) -> Result<Vec<f64>> {
    let m = private_volume_matrix(records, cfg)?;
    Ok(anomaly_norms(&m, cfg.components, cfg.sweeps))
}

/// Indices of time bins whose residual norm exceeds `k_sigma` standard
/// deviations above the median residual — a simple thresholding rule for
/// scoring detected anomalies against planted ground truth.
pub fn flag_anomalies(norms: &[f64], k_sigma: f64) -> Vec<usize> {
    if norms.is_empty() {
        return Vec::new();
    }
    let mut sorted = norms.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite norms"));
    let median = sorted[sorted.len() / 2];
    let mad: f64 = {
        let mut devs: Vec<f64> = norms.iter().map(|n| (n - median).abs()).collect();
        devs.sort_by(|a, b| a.partial_cmp(b).expect("finite devs"));
        devs[devs.len() / 2].max(1e-9)
    };
    norms
        .iter()
        .enumerate()
        .filter(|(_, &n)| (n - median) / (1.4826 * mad) > k_sigma)
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpnet_toolkit::stats::relative_rmse;
    use dpnet_trace::gen::isp::{generate, IspConfig};
    use pinq::{Accountant, NoiseSource};

    fn small_cfg() -> IspConfig {
        IspConfig {
            links: 30,
            windows: 96,
            anomalies: 3,
            mean_packets: 30.0,
            ..IspConfig::default()
        }
    }

    fn analysis_cfg() -> AnomalyConfig {
        AnomalyConfig {
            links: 30,
            windows: 96,
            eps: 0.1,
            // At this reduced scale each anomaly's eigenvalue rivals the
            // weaker temporal harmonics; a 4-component normal subspace
            // would absorb the anomaly directions themselves. Two
            // components suffice for the diurnal + half-daily structure.
            components: 2,
            sweeps: 30,
        }
    }

    #[test]
    fn private_matrix_is_close_to_truth_and_cheap() {
        let t = generate(small_cfg());
        let acct = Accountant::new(1.0);
        let noise = NoiseSource::seeded(111);
        let q = Queryable::new(t.to_records(), &acct, &noise);
        let m = private_volume_matrix(&q, &analysis_cfg()).unwrap();
        // Nested partitions: the whole matrix costs one ε.
        assert!((acct.spent() - 0.1).abs() < 1e-9, "spent {}", acct.spent());
        // Cells are within Laplace(1/0.1) noise of the true volumes.
        let mut max_err: f64 = 0.0;
        for (row, truth) in m.iter().zip(&t.volumes) {
            for (got, want) in row.iter().zip(truth) {
                max_err = max_err.max((got - *want as f64).abs());
            }
        }
        assert!(max_err < 150.0, "max cell error {max_err}");
    }

    #[test]
    fn exact_pipeline_flags_planted_anomalies() {
        let t = generate(small_cfg());
        let norms = anomaly_norms(&t.matrix_f64(), 2, 40);
        let flagged = flag_anomalies(&norms, 6.0);
        for a in &t.truth {
            assert!(
                flagged.contains(&(a.window as usize)),
                "anomaly at window {} not flagged (flagged: {flagged:?})",
                a.window
            );
        }
    }

    #[test]
    fn private_norms_are_indistinguishable_from_exact() {
        // Figure 4: the private and noise-free curves overlap. At this
        // reduced per-cell density the ε=0.1 noise floor is visible on
        // *normal* bins, so the overlap claim is checked at ε=1 on the
        // bins carrying real anomalous mass (the paper's cells held ~58k
        // packets, drowning the noise entirely).
        let t = generate(small_cfg());
        let exact = anomaly_norms(&t.matrix_f64(), 2, 40);
        let acct = Accountant::new(10.0);
        let noise = NoiseSource::seeded(113);
        let q = Queryable::new(t.to_records(), &acct, &noise);
        let cfg = AnomalyConfig {
            eps: 1.0,
            ..analysis_cfg()
        };
        let private = private_anomaly_norms(&q, &cfg).unwrap();
        let paired: (Vec<f64>, Vec<f64>) = exact
            .iter()
            .zip(&private)
            .filter(|(e, _)| **e > 100.0)
            .map(|(e, p)| (*e, *p))
            .unzip();
        assert!(!paired.0.is_empty());
        let r = relative_rmse(&paired.1, &paired.0);
        assert!(r < 0.15, "relative RMSE on anomalous bins {r}");
    }

    #[test]
    fn private_pipeline_flags_the_same_anomalies() {
        let t = generate(small_cfg());
        let acct = Accountant::new(10.0);
        let noise = NoiseSource::seeded(117);
        let q = Queryable::new(t.to_records(), &acct, &noise);
        // ε=1 at this cell density; see private_norms test for the scale
        // note.
        let cfg = AnomalyConfig {
            eps: 1.0,
            ..analysis_cfg()
        };
        let norms = private_anomaly_norms(&q, &cfg).unwrap();
        let flagged = flag_anomalies(&norms, 6.0);
        for a in &t.truth {
            assert!(
                flagged.contains(&(a.window as usize)),
                "anomaly at window {} missed privately",
                a.window
            );
        }
    }

    #[test]
    fn flag_anomalies_handles_edge_cases() {
        assert!(flag_anomalies(&[], 3.0).is_empty());
        let flat = vec![5.0; 50];
        assert!(flag_anomalies(&flat, 3.0).is_empty());
        let mut with_spike = vec![5.0; 50];
        with_spike[7] = 500.0;
        assert_eq!(flag_anomalies(&with_spike, 3.0), vec![7]);
    }
}
