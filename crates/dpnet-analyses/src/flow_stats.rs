//! Common flow statistics (paper §5.2.1; Swing, Vishwanath & Vahdat).
//!
//! Flow-level analyses derive per-flow quantities before aggregating:
//!
//! * **RTT** — join TCP SYNs with SYN-ACKs on matching flow endpoints and
//!   `ack = seq + 1`, and difference the timestamps. Considering only the
//!   handshake sidesteps delayed acknowledgments. PINQ's grouped `Join`
//!   emits one record per matched handshake key, so the result has bounded
//!   sensitivity despite retransmitted SYNs.
//! * **Downstream loss rate** — group packets by 5-tuple flow and compare
//!   distinct sequence numbers to total data packets: retransmissions seen
//!   at the monitor indicate loss beyond it.
//!
//! Both feed the `Partition`-based CDF estimator. The paper reports
//! relative RMSE of 2.8% (RTT) and 0.2% (loss) at ε = 0.1 — high fidelity
//! even at the strongest privacy level (Figure 3).

use crate::packet_dist::CdfResult;
use dpnet_toolkit::cdf::{cdf_partition, noise_free_cdf};
use dpnet_trace::{FlowKey, Packet};
use pinq::{Queryable, Result};

/// Private CDF of handshake RTTs in `bucket_ms`-millisecond buckets over
/// `[0, max_ms]`. Privacy cost: `2ε` — the join touches the packet data
/// twice (once for SYNs, once for SYN-ACKs).
pub fn rtt_cdf(
    packets: &Queryable<Packet>,
    max_ms: u64,
    bucket_ms: u64,
    eps: f64,
) -> Result<CdfResult> {
    assert!(bucket_ms > 0);
    let syns = packets.filter(|p| p.flags.is_syn() && !p.flags.is_ack());
    let synacks = packets.filter(|p| p.flags.is_syn() && p.flags.is_ack());
    let joined = syns.join(
        &synacks,
        |p| {
            (
                p.src_ip,
                p.dst_ip,
                p.src_port,
                p.dst_port,
                p.seq.wrapping_add(1),
            )
        },
        |p| (p.dst_ip, p.src_ip, p.dst_port, p.src_port, p.ack),
    );
    // One RTT per matched handshake: earliest SYN to earliest SYN-ACK, the
    // same convention as a monitor-side reference implementation.
    let n_buckets = (max_ms / bucket_ms + 1) as usize;
    let rtts = joined.map(move |jg| {
        let t_syn = jg.left.iter().map(|p| p.ts_us).min().unwrap_or(0);
        let t_ack = jg.right.iter().map(|p| p.ts_us).max().unwrap_or(0);
        let rtt_ms = t_ack.saturating_sub(t_syn) / 1000;
        ((rtt_ms / bucket_ms) as usize).min(n_buckets - 1)
    });
    let cdf = cdf_partition(&rtts, n_buckets, eps)?;
    Ok(CdfResult {
        bucket_edges: (0..n_buckets as u64)
            .map(|b| (b + 1) * bucket_ms - 1)
            .collect(),
        cdf,
    })
}

/// Private CDF of per-flow downstream loss rates, in `1/resolution`-wide
/// buckets over `[0, 1]`, restricted to flows with more than `min_packets`
/// data packets (paper: 10). Privacy cost: `2ε` (`GroupBy` stability).
pub fn loss_rate_cdf(
    packets: &Queryable<Packet>,
    resolution: usize,
    min_packets: usize,
    eps: f64,
) -> Result<CdfResult> {
    assert!(resolution > 0);
    let n_buckets = resolution + 1;
    let data = packets.filter(|p| {
        p.proto == dpnet_trace::Proto::Tcp && !p.flags.is_syn() && !p.payload.is_empty()
    });
    let rates = data
        .group_by(FlowKey::of)
        .filter(move |g| g.items.len() > min_packets)
        .map(move |g| {
            let distinct: std::collections::HashSet<u32> = g.items.iter().map(|p| p.seq).collect();
            let loss = 1.0 - distinct.len() as f64 / g.items.len() as f64;
            ((loss * resolution as f64).floor() as usize).min(n_buckets - 1)
        });
    let cdf = cdf_partition(&rates, n_buckets, eps)?;
    Ok(CdfResult {
        bucket_edges: (0..n_buckets as u64).collect(),
        cdf,
    })
}

/// Private CDF of packets-per-connection — the Swing statistic the paper
/// "could not immediately reproduce in PINQ" because a 5-tuple flow can
/// carry several TCP connections. With the owner-side connection-id
/// pre-processing of [`dpnet_trace::connections`], it becomes an ordinary
/// grouped query: `GroupBy(conn_id)` (stability 2), bucket the group sizes,
/// `Partition`-CDF. Privacy cost: `2ε`.
pub fn connection_size_cdf(
    annotated: &Queryable<dpnet_trace::ConnPacket>,
    max_packets: usize,
    eps: f64,
) -> Result<CdfResult> {
    assert!(max_packets > 0);
    let n_buckets = max_packets + 1;
    let sizes = annotated
        .filter(|cp| FlowKey::of(&cp.packet).is_tcp())
        .group_by(|cp| cp.conn_id)
        .map(move |g| g.items.len().min(n_buckets - 1));
    let cdf = cdf_partition(&sizes, n_buckets, eps)?;
    Ok(CdfResult {
        bucket_edges: (0..n_buckets as u64).collect(),
        cdf,
    })
}

/// Noise-free packets-per-connection CDF with the same bucketing.
pub fn connection_size_cdf_exact(packets: &[Packet], max_packets: usize) -> Vec<f64> {
    let n_buckets = max_packets + 1;
    let values: Vec<usize> = dpnet_trace::connections::packets_per_connection(packets)
        .into_iter()
        .map(|n| n.min(n_buckets - 1))
        .collect();
    noise_free_cdf(&values, n_buckets)
}

/// Noise-free RTT CDF with the same bucketing, from the exact handshake
/// reference computation.
pub fn rtt_cdf_exact(packets: &[Packet], max_ms: u64, bucket_ms: u64) -> Vec<f64> {
    let n_buckets = (max_ms / bucket_ms + 1) as usize;
    let values: Vec<usize> = dpnet_trace::tcp::handshake_rtts(packets)
        .into_iter()
        .map(|us| (((us / 1000) / bucket_ms) as usize).min(n_buckets - 1))
        .collect();
    noise_free_cdf(&values, n_buckets)
}

/// Noise-free loss-rate CDF with the same bucketing.
pub fn loss_rate_cdf_exact(packets: &[Packet], resolution: usize, min_packets: usize) -> Vec<f64> {
    let n_buckets = resolution + 1;
    let values: Vec<usize> = dpnet_trace::tcp::flow_loss_rates(packets, min_packets)
        .into_iter()
        .map(|(_, loss)| ((loss * resolution as f64).floor() as usize).min(n_buckets - 1))
        .collect();
    noise_free_cdf(&values, n_buckets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpnet_toolkit::stats::relative_rmse;
    use dpnet_trace::gen::hotspot::{generate, HotspotConfig};
    use pinq::{Accountant, NoiseSource};

    fn trace() -> Vec<Packet> {
        generate(HotspotConfig {
            web_flows: 600,
            worms_above_threshold: 1,
            worms_below_threshold: 1,
            stepping_stone_pairs: 1,
            interactive_decoys: 1,
            itemset_hosts: 5,
            ..HotspotConfig::default()
        })
        .packets
    }

    fn protect(pkts: Vec<Packet>, budget: f64, seed: u64) -> (Accountant, Queryable<Packet>) {
        let acct = Accountant::new(budget);
        let noise = NoiseSource::seeded(seed);
        (acct.clone(), Queryable::new(pkts, &acct, &noise))
    }

    #[test]
    fn rtt_cdf_tracks_exact_reference() {
        // The paper reports 2.8% relative RMSE at ε=0.1 on ~100k flows; at
        // our reduced scale (hundreds of flows) the same per-point noise is
        // relatively larger, so the fidelity check runs at ε=1.
        let pkts = trace();
        let exact = rtt_cdf_exact(&pkts, 600, 10);
        let (_, q) = protect(pkts, 10.0, 81);
        let private = rtt_cdf(&q, 600, 10, 1.0).unwrap();
        assert_eq!(private.cdf.len(), exact.len());
        let r = relative_rmse(&private.cdf, &exact);
        assert!(r < 0.10, "relative RMSE {r}");
        // The totals (last CDF point) agree closely.
        let t_priv = *private.cdf.last().unwrap();
        let t_exact = *exact.last().unwrap();
        assert!(
            (t_priv - t_exact).abs() / t_exact < 0.05,
            "{t_priv} vs {t_exact}"
        );
    }

    #[test]
    fn rtt_cdf_costs_two_eps() {
        let (acct, q) = protect(trace(), 10.0, 83);
        rtt_cdf(&q, 600, 10, 0.5).unwrap();
        // The join charges both the SYN and SYN-ACK views of the source.
        assert!((acct.spent() - 1.0).abs() < 1e-9, "spent {}", acct.spent());
    }

    #[test]
    fn loss_cdf_tracks_exact_reference() {
        // Same scale note as the RTT test: fidelity asserted at ε=1.
        let pkts = trace();
        let exact = loss_rate_cdf_exact(&pkts, 100, 10);
        let (_, q) = protect(pkts, 10.0, 87);
        let private = loss_rate_cdf(&q, 100, 10, 1.0).unwrap();
        let r = relative_rmse(&private.cdf, &exact);
        assert!(r < 0.10, "relative RMSE {r}");
    }

    #[test]
    fn loss_cdf_costs_two_eps_from_group_by() {
        let (acct, q) = protect(trace(), 10.0, 89);
        loss_rate_cdf(&q, 100, 10, 0.5).unwrap();
        assert!((acct.spent() - 1.0).abs() < 1e-9, "spent {}", acct.spent());
    }

    #[test]
    fn lossless_flows_dominate_the_low_buckets() {
        // Most flows are loss-free, so the exact CDF's first bucket already
        // holds the majority of flows.
        let pkts = trace();
        let exact = loss_rate_cdf_exact(&pkts, 100, 10);
        let total = *exact.last().unwrap();
        assert!(total > 50.0, "too few measured flows: {total}");
        assert!(
            exact[0] / total > 0.4,
            "zero-loss mass {}",
            exact[0] / total
        );
    }

    #[test]
    fn connection_cdf_tracks_exact_reference() {
        let pkts = trace();
        let exact = connection_size_cdf_exact(&pkts, 100);
        let annotated = dpnet_trace::annotate_connections(&pkts);
        let acct = Accountant::new(10.0);
        let noise = NoiseSource::seeded(91);
        let q = Queryable::new(annotated, &acct, &noise);
        let private = connection_size_cdf(&q, 100, 1.0).unwrap();
        let r = relative_rmse(&private.cdf, &exact);
        assert!(r < 0.10, "relative RMSE {r}");
        // GroupBy stability: 2ε.
        assert!((acct.spent() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn connections_outnumber_flows_when_multiplexed() {
        // The generator plants HTTP/1.0-style multi-connection flows; the
        // connection-level total exceeds the flow-level total, which is the
        // distinction the paper could not draw without preprocessing.
        let pkts = trace();
        let conn_total = *connection_size_cdf_exact(&pkts, 400).last().unwrap();
        let flows = dpnet_trace::flow::assemble_conversations(
            &pkts
                .iter()
                .filter(|p| p.proto == dpnet_trace::Proto::Tcp)
                .cloned()
                .collect::<Vec<_>>(),
        )
        .len() as f64;
        assert!(
            conn_total > flows,
            "connections {conn_total} vs conversations {flows}"
        );
    }

    #[test]
    fn rtt_exact_median_is_in_the_configured_range() {
        let pkts = trace();
        let exact = rtt_cdf_exact(&pkts, 600, 10);
        let total = *exact.last().unwrap();
        // Find the median bucket.
        let med = exact.iter().position(|&c| c >= total / 2.0).unwrap() as u64 * 10;
        assert!((20..250).contains(&med), "median RTT {med} ms");
    }
}
