//! Stepping-stone detection (paper §5.2.2; Zhang & Paxson, USENIX Sec 2000).
//!
//! A stepping stone relays an interactive session through an intermediate
//! host; the telltale is two flows whose idle→active transitions correlate
//! in time, repeatedly. The exact algorithm uses sliding windows
//! (`T_idle` = 0.5 s to declare a flow idle, δ = 40 ms to call two
//! activations correlated), which are awkward under differential privacy.
//! The paper's private pipeline, reproduced here:
//!
//! 1. **Activations via bucketed grouping** — group packets by
//!    (flow, ⌊t/2T⌋); within a bucket there is enough context to confirm an
//!    activation in the bucket's second half. A second pass with times
//!    shifted by `T` recovers activations in first halves. (Two groupings →
//!    the extraction carries stability 4.)
//! 2. **Discover busy flows** — the frequent-string tool over encoded flow
//!    keys finds flows with many activations, without being told any flow
//!    identities up front.
//! 3. **Candidate pairs via itemset mining** — bin activations by δ, treat
//!    each bin's set of active flows as a record, and mine frequent pairs.
//!    This replaces a second sliding window; the paper chose the same
//!    trade-off ("the double groupings required double the noise we must
//!    suffer … a better option is to bin the activations").
//! 4. **Evaluate candidates** — `Partition` activations by flow and, for
//!    each candidate pair, count δ-bins containing both flows (a `Join` of
//!    the two parts on bin index) against bins containing the first.
//!
//! The paper's Table 5 evaluates the top-20 pairs per ε against a faithful
//! non-private implementation (their Perl script; here
//! [`exact_pair_correlation`]).

use dpnet_toolkit::freqstrings::{frequent_strings, FrequentStringsConfig};
use dpnet_toolkit::itemsets::{frequent_itemsets, ItemsetConfig};
use dpnet_trace::{FlowKey, Packet};
use pinq::{Group, Queryable, Result};
use std::collections::BTreeSet;

/// Parameters of the private stepping-stone analysis.
#[derive(Debug, Clone)]
pub struct SteppingStoneConfig {
    /// Idle timeout `T_idle` (paper: 0.5 s).
    pub t_idle_us: u64,
    /// Correlation window δ (paper: 40 ms).
    pub delta_us: u64,
    /// Per-aggregation accuracy ε (the paper's 0.1 / 1.0 / 10.0 axis).
    pub eps: f64,
    /// Activation-count threshold for a flow to be considered at all
    /// (the paper focuses on flows with 1200–1400 activations; scale to
    /// the generated trace).
    pub flow_threshold: f64,
    /// Bins-containing-both threshold for candidate pair mining.
    pub pair_threshold: f64,
    /// How many top pairs to report (paper: 20).
    pub top_k: usize,
}

impl Default for SteppingStoneConfig {
    fn default() -> Self {
        SteppingStoneConfig {
            t_idle_us: 500_000,
            delta_us: 40_000,
            eps: 1.0,
            flow_threshold: 80.0,
            pair_threshold: 30.0,
            top_k: 20,
        }
    }
}

/// A reported stepping-stone candidate pair.
#[derive(Debug, Clone, PartialEq)]
pub struct StonePair {
    /// First flow of the pair.
    pub flow_a: FlowKey,
    /// Second flow of the pair.
    pub flow_b: FlowKey,
    /// Noisy bucketed correlation: bins containing both / bins containing
    /// the first flow.
    pub noisy_correlation: f64,
}

/// Encode a flow key as 13 bytes for the frequent-string machinery.
pub fn encode_flow(k: &FlowKey) -> Vec<u8> {
    let mut out = Vec::with_capacity(13);
    out.extend_from_slice(&k.src_ip.to_be_bytes());
    out.extend_from_slice(&k.dst_ip.to_be_bytes());
    out.extend_from_slice(&k.src_port.to_be_bytes());
    out.extend_from_slice(&k.dst_port.to_be_bytes());
    out.push(k.proto);
    out
}

/// Decode a 13-byte flow key. Returns `None` on wrong length.
pub fn decode_flow(bytes: &[u8]) -> Option<FlowKey> {
    if bytes.len() != 13 {
        return None;
    }
    Some(FlowKey {
        src_ip: u32::from_be_bytes(bytes[0..4].try_into().ok()?),
        dst_ip: u32::from_be_bytes(bytes[4..8].try_into().ok()?),
        src_port: u16::from_be_bytes(bytes[8..10].try_into().ok()?),
        dst_port: u16::from_be_bytes(bytes[10..12].try_into().ok()?),
        proto: bytes[12],
    })
}

/// Confirm the bucketed activation of one (flow, bucket) group: the last
/// packet in the bucket's second half with no same-flow packet in the
/// preceding `t_idle` — checkable entirely within the bucket.
fn bucket_activation(
    g: &Group<(FlowKey, u64), Packet>,
    t_idle_us: u64,
    shift: u64,
) -> Option<(FlowKey, u64)> {
    let width = 2 * t_idle_us;
    let bucket_start = g.key.1 * width;
    // Times are virtual (possibly shifted); activations report real time.
    let mut times: Vec<u64> = g.items.iter().map(|p| p.ts_us + shift).collect();
    times.sort_unstable();
    // Scan from the latest packet down, looking for a confirmed activation
    // in the second half.
    for (i, &t) in times.iter().enumerate().rev() {
        if t < bucket_start + t_idle_us {
            break; // first half: not confirmable in this pass
        }
        let quiet = times[..i]
            .iter()
            .all(|&prev| t.saturating_sub(prev) >= t_idle_us);
        if quiet {
            return Some((g.key.0, t - shift));
        }
    }
    None
}

/// Extract activations privately with the two-pass bucketed grouping.
/// The result is a protected dataset of `(flow, activation time)` records
/// with stability 4 relative to the packets (two `GroupBy` passes,
/// concatenated).
pub fn private_activations(
    packets: &Queryable<Packet>,
    t_idle_us: u64,
) -> Queryable<(FlowKey, u64)> {
    let width = 2 * t_idle_us;
    let pass = |shift: u64| {
        packets
            .group_by(move |p| (FlowKey::of(p), (p.ts_us + shift) / width))
            .map(move |g| bucket_activation(g, t_idle_us, shift))
            .filter(|a| a.is_some())
            .map(|a| a.expect("filtered to Some"))
    };
    let unshifted = pass(0);
    let shifted = pass(t_idle_us);
    unshifted.concat(&shifted)
}

/// Run the full private stepping-stone analysis, returning the top pairs by
/// noisy bucketed correlation.
pub fn stepping_stones(
    packets: &Queryable<Packet>,
    cfg: &SteppingStoneConfig,
) -> Result<Vec<StonePair>> {
    let acts = private_activations(packets, cfg.t_idle_us);

    // Step 2: discover flows with enough activations, spelling out their
    // 13-byte keys with the frequent-string tool.
    let flow_bytes = acts.map(|(flow, _)| encode_flow(flow));
    let found = frequent_strings(
        &flow_bytes,
        &FrequentStringsConfig {
            length: 13,
            eps_per_level: cfg.eps,
            threshold: cfg.flow_threshold,
            max_viable: 512,
        },
    )?;
    let flows: Vec<FlowKey> = found.iter().filter_map(|f| decode_flow(&f.bytes)).collect();
    if flows.len() < 2 {
        return Ok(Vec::new());
    }

    // Step 3: candidate pairs by itemset mining over per-bin flow sets.
    let delta = cfg.delta_us;
    let bins = acts
        .group_by(move |(_, ts)| ts / delta)
        .map(|g| -> BTreeSet<Vec<u8>> {
            g.items.iter().map(|(flow, _)| encode_flow(flow)).collect()
        });
    let universe: Vec<Vec<u8>> = flows.iter().map(encode_flow).collect();
    let mined = frequent_itemsets(
        &bins,
        &ItemsetConfig {
            universe,
            max_size: 2,
            eps_per_level: cfg.eps,
            threshold: cfg.pair_threshold,
        },
    )?;
    let mut candidates: Vec<(FlowKey, FlowKey, f64)> = mined
        .into_iter()
        .filter(|m| m.size == 2)
        .filter_map(|m| {
            let a = decode_flow(&m.items[0])?;
            let b = decode_flow(&m.items[1])?;
            Some((a, b, m.noisy_count))
        })
        .collect();
    candidates.sort_by(|x, y| y.2.partial_cmp(&x.2).expect("finite counts"));
    candidates.truncate(cfg.top_k);

    // Step 4: evaluate candidates — partition activations by flow, join the
    // two parts of each pair on δ-bin index.
    let flow_keys: Vec<FlowKey> = flows.clone();
    let parts = acts.partition(&flow_keys, |(flow, _)| *flow)?;
    let index_of = |k: &FlowKey| flow_keys.iter().position(|f| f == k);

    let mut out = Vec::new();
    for (a, b, _) in candidates {
        let (Some(ia), Some(ib)) = (index_of(&a), index_of(&b)) else {
            continue;
        };
        let bins_a = parts[ia].map(move |(_, ts)| ts / delta).distinct();
        // B's activation lags A's by up to δ, so it may land in A's bin or
        // the next one; expanding each B bin to {k, k−1} (SelectMany with
        // bound 2, doubling that side's budget cost) removes the bin-
        // boundary undercount of the plain binning approximation.
        let bins_b = parts[ib]
            .select_many(2, move |(_, ts)| {
                let k = ts / delta;
                if k > 0 {
                    vec![k, k - 1]
                } else {
                    vec![k]
                }
            })?
            .distinct();
        let both = bins_a.join(&bins_b, |&x| x, |&x| x);
        let n_both = both.noisy_count(cfg.eps)?;
        let n_a = bins_a.noisy_count(cfg.eps)?;
        let corr = if n_a > 1.0 {
            (n_both / n_a).clamp(-1.0, 2.0)
        } else {
            0.0
        };
        out.push(StonePair {
            flow_a: a,
            flow_b: b,
            noisy_correlation: corr,
        });
    }
    out.sort_by(|x, y| {
        y.noisy_correlation
            .partial_cmp(&x.noisy_correlation)
            .expect("finite correlations")
    });
    Ok(out)
}

/// The faithful non-private reference (the paper's Perl script): exact
/// sliding-window activations and exact Zhang-Paxson correlation for one
/// ordered pair of flows.
pub fn exact_pair_correlation(
    packets: &[Packet],
    a: &FlowKey,
    b: &FlowKey,
    t_idle_us: u64,
    delta_us: u64,
) -> f64 {
    let acts = dpnet_trace::tcp::activations(packets, t_idle_us);
    let ta: Vec<u64> = acts
        .iter()
        .filter(|x| x.flow == *a)
        .map(|x| x.ts_us)
        .collect();
    let tb: Vec<u64> = acts
        .iter()
        .filter(|x| x.flow == *b)
        .map(|x| x.ts_us)
        .collect();
    dpnet_trace::tcp::activation_correlation(&ta, &tb, delta_us)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpnet_trace::gen::hotspot::{generate, HotspotConfig};
    use pinq::{Accountant, NoiseSource};

    fn trace() -> dpnet_trace::gen::hotspot::HotspotTrace {
        generate(HotspotConfig {
            web_flows: 50,
            worms_above_threshold: 0,
            worms_below_threshold: 0,
            stepping_stone_pairs: 5,
            interactive_decoys: 8,
            itemset_hosts: 0,
            ..HotspotConfig::default()
        })
    }

    fn protect(pkts: Vec<Packet>, seed: u64) -> (Accountant, Queryable<Packet>) {
        let acct = Accountant::new(1_000_000.0);
        let noise = NoiseSource::seeded(seed);
        (acct.clone(), Queryable::new(pkts, &acct, &noise))
    }

    #[test]
    fn flow_key_encoding_round_trips() {
        let k = FlowKey {
            src_ip: 0x0a00_0001,
            dst_ip: 0x0808_0808,
            src_port: 40123,
            dst_port: 22,
            proto: 6,
        };
        assert_eq!(decode_flow(&encode_flow(&k)), Some(k));
        assert_eq!(decode_flow(&[1, 2, 3]), None);
    }

    #[test]
    fn bucketed_activations_approximate_exact_ones() {
        let t = trace();
        let exact = dpnet_trace::tcp::activations(&t.packets, 500_000);
        let (_, q) = protect(t.packets.clone(), 91);
        let acts = private_activations(&q, 500_000);
        // Count privately at very weak privacy to read the value.
        let n = acts.noisy_count(1000.0).unwrap();
        let exact_n = exact.len() as f64;
        // The two-pass bucketing recovers the large majority of the exact
        // activations (interactive traffic here is built from well-spaced
        // bursts).
        assert!(
            (n - exact_n).abs() / exact_n < 0.25,
            "bucketed {n} vs exact {exact_n}"
        );
    }

    #[test]
    fn activation_extraction_has_stability_four() {
        let t = trace();
        let acct = Accountant::new(100.0);
        let noise = NoiseSource::seeded(93);
        let q = Queryable::new(t.packets, &acct, &noise);
        let acts = private_activations(&q, 500_000);
        acts.noisy_count(0.5).unwrap();
        // Two GroupBy passes (stability 2 each) concatenated: 2·0.5 + 2·0.5.
        assert!((acct.spent() - 2.0).abs() < 1e-9, "spent {}", acct.spent());
    }

    #[test]
    fn planted_stones_rank_highly_at_weak_privacy() {
        let t = trace();
        let (_, q) = protect(t.packets.clone(), 97);
        let cfg = SteppingStoneConfig {
            eps: 10.0,
            flow_threshold: 80.0,
            pair_threshold: 20.0,
            top_k: 10,
            ..SteppingStoneConfig::default()
        };
        let pairs = stepping_stones(&q, &cfg).unwrap();
        assert!(!pairs.is_empty(), "no pairs found");
        // Check that most top pairs are planted stones (in either order).
        let planted: std::collections::HashSet<(FlowKey, FlowKey)> = t
            .truth
            .stones
            .iter()
            .flat_map(|s| [(s.flow_a, s.flow_b), (s.flow_b, s.flow_a)])
            .collect();
        let hits = pairs
            .iter()
            .take(5)
            .filter(|p| planted.contains(&(p.flow_a, p.flow_b)))
            .count();
        assert!(hits >= 3, "only {hits}/5 top pairs are planted stones");
    }

    #[test]
    fn noisy_correlation_tracks_exact_correlation() {
        let t = trace();
        let (_, q) = protect(t.packets.clone(), 101);
        let cfg = SteppingStoneConfig {
            eps: 10.0,
            flow_threshold: 80.0,
            pair_threshold: 20.0,
            top_k: 8,
            ..SteppingStoneConfig::default()
        };
        let pairs = stepping_stones(&q, &cfg).unwrap();
        for p in pairs.iter().take(4) {
            let exact = exact_pair_correlation(
                &t.packets,
                &p.flow_a,
                &p.flow_b,
                cfg.t_idle_us,
                cfg.delta_us,
            )
            .max(exact_pair_correlation(
                &t.packets,
                &p.flow_b,
                &p.flow_a,
                cfg.t_idle_us,
                cfg.delta_us,
            ));
            assert!(
                (p.noisy_correlation - exact).abs() < 0.35,
                "noisy {} vs exact {exact}",
                p.noisy_correlation
            );
        }
    }

    #[test]
    fn exact_correlation_of_planted_pairs_is_high() {
        let t = trace();
        for s in &t.truth.stones {
            let c = exact_pair_correlation(&t.packets, &s.flow_a, &s.flow_b, 500_000, 40_000);
            assert!(c > 0.5, "stone correlation {c} (rho {})", s.rho);
        }
    }

    #[test]
    fn unrelated_flows_have_low_exact_correlation() {
        let t = trace();
        // Correlate the first stone's A-flow against a different stone's
        // B-flow: unrelated trains.
        if t.truth.stones.len() >= 2 {
            let c = exact_pair_correlation(
                &t.packets,
                &t.truth.stones[0].flow_a,
                &t.truth.stones[1].flow_b,
                500_000,
                40_000,
            );
            assert!(c < 0.3, "unrelated correlation {c}");
        }
    }
}
