//! Shard-boundary edge cases for the columnar data plane: layouts that a
//! bug in global-index addressing would get wrong — empty shards, one
//! record per shard, shard sizes that do not divide the record count — and
//! partition keys that recur across shards.
//!
//! Every release here is checked against the same query over the flat
//! single-buffer source, so a failure localizes to the shard layout alone.

use pinq::{Accountant, ExecCtx, ExecPool, NoiseSource, Queryable};

fn acct() -> (Accountant, NoiseSource) {
    (Accountant::new(1_000.0), NoiseSource::seeded(0x5eed))
}

/// Release a count, a clamped sum, and a median from `q`; return the bits.
fn releases(q: &Queryable<u32>) -> (u64, u64, u64) {
    let count = q.noisy_count(1.0).unwrap();
    let sum = q.noisy_sum_clamped(1.0, 100.0, |&v| f64::from(v)).unwrap();
    let median = q
        .noisy_median(1.0, 0.0, 100.0, 16, |&v| f64::from(v))
        .unwrap();
    (count.to_bits(), sum.to_bits(), median.to_bits())
}

/// Flat baseline vs the given layout of the same records, sequentially and
/// on pools of 1, 2 and 8 workers: all releases bit-identical.
fn assert_layout_invisible(records: Vec<u32>, layout: Vec<Vec<u32>>) {
    assert_eq!(
        layout.iter().flatten().copied().collect::<Vec<_>>(),
        records,
        "test bug: layout must flatten to the records"
    );
    let (a, n) = acct();
    let flat = releases(&Queryable::new(records, &a, &n));
    let (a, n) = acct();
    let seq = releases(&Queryable::from_shards(layout.clone(), &a, &n));
    assert_eq!(seq, flat, "sequential releases diverged from flat source");
    for workers in [1usize, 2, 8] {
        let pool = ExecPool::new(workers).unwrap().with_chunk_size(3);
        let (a, n) = acct();
        let q = Queryable::from_shards(layout.clone(), &a, &n).with_ctx(ExecCtx::pool(&pool));
        assert_eq!(releases(&q), flat, "releases diverged at workers={workers}");
    }
}

#[test]
fn empty_shards_anywhere_are_invisible() {
    let records: Vec<u32> = (0..20).collect();
    let layout = vec![
        vec![],
        (0..7).collect(),
        vec![],
        vec![],
        (7..20).collect(),
        vec![],
    ];
    assert_layout_invisible(records, layout);
}

#[test]
fn an_all_empty_source_still_releases() {
    let (a, n) = acct();
    let q = Queryable::from_shards(vec![vec![], vec![], vec![]], &a, &n);
    let (a2, n2) = acct();
    let flat = Queryable::new(Vec::<u32>::new(), &a2, &n2);
    assert_eq!(releases(&q), releases(&flat));
}

#[test]
fn single_record_shards_are_invisible() {
    let records: Vec<u32> = (0..17).collect();
    let layout: Vec<Vec<u32>> = records.iter().map(|&v| vec![v]).collect();
    assert_layout_invisible(records, layout);
}

#[test]
fn shard_sizes_that_do_not_divide_the_count_are_invisible() {
    // 23 records in shards of 5: the last shard is short.
    let records: Vec<u32> = (0..23).collect();
    let layout: Vec<Vec<u32>> = records.chunks(5).map(<[u32]>::to_vec).collect();
    assert_layout_invisible(records, layout);
}

#[test]
fn transforms_fuse_across_shard_boundaries() {
    let records: Vec<u32> = (0..50).collect();
    let layout: Vec<Vec<u32>> = records.chunks(7).map(<[u32]>::to_vec).collect();
    let run = |q: Queryable<u32>| {
        q.filter(|&v| v % 2 == 0)
            .select_many(2, |&v| vec![v, v + 1])
            .unwrap()
            .noisy_count(0.5)
            .unwrap()
            .to_bits()
    };
    let (a, n) = acct();
    let flat = run(Queryable::new(records, &a, &n));
    let (a, n) = acct();
    assert_eq!(run(Queryable::from_shards(layout, &a, &n)), flat);
}

/// The same partition key recurring in many shards must land all its
/// records in one part — grouping is by key value, never by shard.
#[test]
fn partition_keys_colliding_across_shards_group_correctly() {
    // Key v % 3 appears in every shard.
    let layout: Vec<Vec<u32>> = (0..30u32)
        .collect::<Vec<_>>()
        .chunks(4)
        .map(<[u32]>::to_vec)
        .collect();
    let keys = [0u32, 1, 2];
    let (a, n) = acct();
    let sharded = Queryable::from_shards(layout, &a, &n);
    let parts = sharded.partition(&keys, |&v| v % 3).unwrap();
    let (a2, n2) = acct();
    let flat = Queryable::new((0..30u32).collect::<Vec<_>>(), &a2, &n2);
    let flat_parts = flat.partition(&keys, |&v| v % 3).unwrap();
    for (i, (p, fp)) in parts.iter().zip(flat_parts.iter()).enumerate() {
        assert_eq!(
            p.noisy_count(0.5).unwrap().to_bits(),
            fp.noisy_count(0.5).unwrap().to_bits(),
            "part {i} diverged between sharded and flat sources"
        );
    }
    // And the batched fan-out agrees with the loop, across shards too.
    let (a3, n3) = acct();
    let sharded = Queryable::from_shards(
        (0..30u32)
            .collect::<Vec<_>>()
            .chunks(4)
            .map(<[u32]>::to_vec)
            .collect(),
        &a3,
        &n3,
    );
    let batched = sharded
        .partition_noisy_counts(&keys, |&v| v % 3, 0.5)
        .unwrap();
    let (a4, n4) = acct();
    let flat = Queryable::new((0..30u32).collect::<Vec<_>>(), &a4, &n4);
    let looped: Vec<f64> = flat
        .partition(&keys, |&v| v % 3)
        .unwrap()
        .iter()
        .map(|p| p.noisy_count(0.5).unwrap())
        .collect();
    assert_eq!(
        batched.iter().map(|c| c.to_bits()).collect::<Vec<_>>(),
        looped.iter().map(|c| c.to_bits()).collect::<Vec<_>>(),
    );
}

/// Duplicate keys in a fan-out key list are rejected before any charge —
/// a duplicate would double-release one part's data under parallel
/// composition's max-of-parts accounting.
#[test]
fn duplicate_partition_keys_are_rejected_without_charging() {
    let (a, n) = acct();
    let layout: Vec<Vec<u32>> = (0..12u32)
        .collect::<Vec<_>>()
        .chunks(5)
        .map(<[u32]>::to_vec)
        .collect();
    let q = Queryable::from_shards(layout, &a, &n);
    let dup = [1u32, 2, 1];
    assert!(q.partition(&dup, |&v| v % 3).is_err());
    assert!(q.partition_noisy_counts(&dup, |&v| v % 3, 0.5).is_err());
    assert_eq!(a.spent(), 0.0, "rejection must not charge the budget");
}
