//! Property tests pinning the lazy/fused execution refactor to the eager
//! semantics it replaced.
//!
//! For any pipeline chaining the stability-interesting operators —
//! `select_many(bound)` × `filter` × `concat` — the lazy plan must release
//! **bit-identical** values, charge an **identical** ε, and report an
//! **identical** stability, whether the pipeline stays lazy or is forced
//! after every operator with `collect_protected`, and whether it is forced
//! sequentially or on a worker pool of 1, 2 or 8 workers. Stability and
//! charge bookkeeping happen at operator *declaration*, so laziness may
//! never shift what is charged — only when record buffers exist.

use pinq::{Accountant, ExecCtx, ExecPool, NoiseSource, Queryable};
use proptest::prelude::*;

fn dataset(n: usize, offset: u32) -> Vec<u32> {
    (0..n as u32).map(|v| v + offset).collect()
}

/// Run the pipeline and release one count and one median. Returns the two
/// released values (as raw bits), the total ε charged, and the pipeline's
/// final stability.
fn run_pipeline(
    n: usize,
    bound: usize,
    modulus: u32,
    seed: u64,
    ctx: ExecCtx,
    eager: bool,
) -> (u64, u64, f64, f64) {
    let acct = Accountant::new(1_000.0);
    let noise = NoiseSource::seeded(seed);
    // In eager mode, force materialization after every operator — the
    // pre-refactor engine's behavior.
    let force = |q: Queryable<u32>| if eager { q.collect_protected() } else { q };
    let left = Queryable::new(dataset(n, 0), &acct, &noise).with_ctx(ctx.clone());
    let right = Queryable::new(dataset(n / 2, 1), &acct, &noise).with_ctx(ctx);
    let expanded = force(left.select_many(bound, move |&v| vec![v; bound]).unwrap());
    let filtered = force(expanded.filter(move |&v| v % modulus == 0));
    let combined = force(filtered.concat(&right));
    let count = combined.noisy_count(1.0).unwrap();
    let median = combined
        .noisy_median(1.0, 0.0, n as f64 + 2.0, 16, |&v| f64::from(v))
        .unwrap();
    (
        count.to_bits(),
        median.to_bits(),
        acct.spent(),
        combined.stability(),
    )
}

/// Like [`run_pipeline`] (lazy mode), but the left source enters the engine
/// pre-sharded into chunks of `shard` records instead of as one flat `Vec`.
/// The physical layout must be invisible: identical releases, ε, stability.
fn run_sharded_pipeline(
    n: usize,
    shard: usize,
    bound: usize,
    modulus: u32,
    seed: u64,
    ctx: ExecCtx,
) -> (u64, u64, f64, f64) {
    let acct = Accountant::new(1_000.0);
    let noise = NoiseSource::seeded(seed);
    let flat = dataset(n, 0);
    let chunks: Vec<Vec<u32>> = flat.chunks(shard).map(<[u32]>::to_vec).collect();
    let left = Queryable::from_shards(chunks, &acct, &noise).with_ctx(ctx.clone());
    let right = Queryable::new(dataset(n / 2, 1), &acct, &noise).with_ctx(ctx);
    let expanded = left.select_many(bound, move |&v| vec![v; bound]).unwrap();
    let filtered = expanded.filter(move |&v| v % modulus == 0);
    let combined = filtered.concat(&right);
    let count = combined.noisy_count(1.0).unwrap();
    let median = combined
        .noisy_median(1.0, 0.0, n as f64 + 2.0, 16, |&v| f64::from(v))
        .unwrap();
    (
        count.to_bits(),
        median.to_bits(),
        acct.spent(),
        combined.stability(),
    )
}

/// Run a `k`-way partition fan-out of noisy counts, either through the
/// batched single-pass [`Queryable::partition_noisy_counts`] or through the
/// classic `partition` + per-part `noisy_count` loop. Returns the released
/// bits (in key order) and the total ε charged.
fn run_fanout(
    n: usize,
    k: u32,
    eps: f64,
    seed: u64,
    ctx: ExecCtx,
    batched: bool,
) -> (Vec<u64>, f64) {
    let acct = Accountant::new(1_000.0);
    let noise = NoiseSource::seeded(seed);
    let q = Queryable::new(dataset(n, 0), &acct, &noise)
        .with_ctx(ctx)
        .group_by(move |&v| v % (k + 1)); // stability ×2, so scaling matters
    let keys: Vec<u32> = (0..k).collect();
    let counts: Vec<f64> = if batched {
        q.partition_noisy_counts(&keys, move |g| g.key % k, eps)
            .unwrap()
    } else {
        let parts = q.partition(&keys, move |g| g.key % k).unwrap();
        parts.iter().map(|p| p.noisy_count(eps).unwrap()).collect()
    };
    (counts.iter().map(|c| c.to_bits()).collect(), acct.spent())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Lazy ≡ eager, for any worker count: releases bit-identical, spent ε
    /// equal, stability equal.
    #[test]
    fn lazy_pipelines_match_eager_semantics_for_any_worker_count(
        n in 1usize..400,
        bound in 1usize..4,
        modulus in 1u32..7,
        seed in 0u64..1_000,
    ) {
        let baseline = run_pipeline(n, bound, modulus, seed, ExecCtx::Sequential, true);
        let lazy_seq = run_pipeline(n, bound, modulus, seed, ExecCtx::Sequential, false);
        prop_assert_eq!(lazy_seq, baseline, "lazy sequential diverged from eager");
        for workers in [1usize, 2, 8] {
            let pool = ExecPool::new(workers).unwrap().with_chunk_size(64);
            let lazy_pool = run_pipeline(n, bound, modulus, seed, ExecCtx::pool(&pool), false);
            prop_assert_eq!(lazy_pool, baseline, "workers={} diverged", workers);
        }
    }

    /// Columnar ≡ row: a source pre-sharded at any chunk size releases the
    /// same bits, charges the same ε, and reports the same stability as the
    /// flat single-buffer source, sequentially and at workers 1/2/8.
    #[test]
    fn sharded_sources_match_flat_sources_for_any_layout(
        n in 1usize..400,
        shard in 1usize..64,
        bound in 1usize..4,
        modulus in 1u32..7,
        seed in 0u64..1_000,
    ) {
        let flat = run_pipeline(n, bound, modulus, seed, ExecCtx::Sequential, false);
        let seq = run_sharded_pipeline(n, shard, bound, modulus, seed, ExecCtx::Sequential);
        prop_assert_eq!(seq, flat, "sharded sequential diverged from flat");
        for workers in [1usize, 2, 8] {
            let pool = ExecPool::new(workers).unwrap().with_chunk_size(64);
            let pooled = run_sharded_pipeline(n, shard, bound, modulus, seed, ExecCtx::pool(&pool));
            prop_assert_eq!(pooled, flat, "shard={} workers={} diverged", shard, workers);
        }
    }

    /// The batched single-pass partition fan-out is indistinguishable from
    /// the classic per-part loop: bit-identical releases in key order and
    /// an identical total charge (max-of-parts through the same ledger),
    /// sequentially and at workers 1/2/8.
    #[test]
    fn batched_partition_counts_match_the_per_part_loop(
        n in 1usize..400,
        k in 1u32..6,
        seed in 0u64..1_000,
    ) {
        let eps = 0.5;
        let loop_form = run_fanout(n, k, eps, seed, ExecCtx::Sequential, false);
        let batched = run_fanout(n, k, eps, seed, ExecCtx::Sequential, true);
        prop_assert_eq!(&batched, &loop_form, "batched sequential diverged");
        for workers in [1usize, 2, 8] {
            let pool = ExecPool::new(workers).unwrap().with_chunk_size(64);
            let pooled = run_fanout(n, k, eps, seed, ExecCtx::pool(&pool), true);
            prop_assert_eq!(&pooled, &loop_form, "workers={} diverged", workers);
        }
    }
}

/// The empty-side `concat` short-circuit (an allocation optimization) must
/// not change accounting: both budgets are charged even when one input is
/// empty, because a *neighboring* dataset of the empty side could hold a
/// record.
#[test]
fn concat_with_empty_side_still_charges_both_budgets() {
    let a_budget = Accountant::new(1.0);
    let b_budget = Accountant::new(1.0);
    let noise = NoiseSource::seeded(7);
    let a = Queryable::new(dataset(100, 0), &a_budget, &noise);
    let empty = Queryable::new(Vec::<u32>::new(), &b_budget, &noise);
    a.concat(&empty).noisy_count(0.25).unwrap();
    assert!((a_budget.spent() - 0.25).abs() < 1e-12);
    assert!((b_budget.spent() - 0.25).abs() < 1e-12);
    empty.concat(&a).noisy_count(0.25).unwrap();
    assert!((a_budget.spent() - 0.5).abs() < 1e-12);
    assert!((b_budget.spent() - 0.5).abs() < 1e-12);
}
