//! Concurrency tests for the parallel execution layer: workers racing for
//! the last ε of a shared budget must never oversubscribe it, and the
//! composition rules (sequential sum, parallel max-of-parts) must hold
//! regardless of scheduling.

use pinq::kernel::model::{step, KernelState, NodeSpec, RootBudget, Transition};
use pinq::parallel::parallel_map_parts_with;
use pinq::{Accountant, ExecCtx, ExecPool, NoiseSource, Queryable, SessionManager, TimedRelease};
use proptest::prelude::*;

fn protect(n: usize, budget: f64, seed: u64) -> (Accountant, Queryable<u32>) {
    let acct = Accountant::new(budget);
    let noise = NoiseSource::seeded(seed);
    let data: Vec<u32> = (0..n as u32).collect();
    (acct.clone(), Queryable::new(data, &acct, &noise))
}

/// Twenty independent datasets share one accountant that can afford exactly
/// five ε=1 counts. Eight workers race for the last ε; sequential
/// composition must admit exactly five charges, whatever the interleaving.
#[test]
fn budget_exhaustion_race_admits_exactly_the_affordable_charges() {
    let acct = Accountant::new(5.0);
    let noise = NoiseSource::seeded(0xACE);
    let datasets: Vec<Queryable<u32>> = (0..20)
        .map(|i| Queryable::new(vec![i as u32; 10], &acct, &noise))
        .collect();
    let pool = ExecPool::new(8).unwrap();
    let results = parallel_map_parts_with(&datasets, &pool, |q| q.noisy_count(1.0));
    let successes = results.iter().filter(|r| r.is_ok()).count();
    assert_eq!(successes, 5, "exactly floor(budget/eps) charges must fit");
    assert!(
        acct.spent() <= acct.total() + 1e-9,
        "oversubscribed: spent {} of {}",
        acct.spent(),
        acct.total()
    );
    assert!((acct.spent() - 5.0).abs() < 1e-9);
}

/// Parts of one partition compose in parallel: with a budget of exactly ε,
/// counting *every* part concurrently must succeed, because the ledger
/// charges max-of-parts, not the sum. A race in the max-update would make
/// some parts fail spuriously or overcharge the root.
#[test]
fn concurrent_partition_counts_charge_only_the_max() {
    let (acct, q) = protect(160, 1.0, 0xBEE);
    let keys: Vec<u32> = (0..16).collect();
    let parts = q.partition(&keys, |&v| v % 16).unwrap();
    let pool = ExecPool::new(8).unwrap();
    let results = parallel_map_parts_with(&parts, &pool, |part| part.noisy_count(1.0));
    for r in &results {
        r.as_ref().expect("parallel composition affords every part");
    }
    assert!(
        (acct.spent() - 1.0).abs() < 1e-9,
        "max-of-parts must charge ε once, spent {}",
        acct.spent()
    );
}

/// One pipeline touching every parallel aggregation kernel releases
/// bit-identical values — and charges identical ε — at 1, 2 and 8 workers.
#[test]
fn kernel_released_values_are_identical_for_workers_1_2_8() {
    let run = |workers: usize| {
        let (acct, q) = protect(10_000, 100.0, 0xD1CE);
        let pool = ExecPool::new(workers).unwrap().with_chunk_size(512);
        let q = q.with_ctx(ExecCtx::pool(&pool));
        let count = q
            .filter(|&v| v % 3 == 0)
            .map(|&v| u64::from(v) * 2)
            .noisy_count(0.5)
            .unwrap();
        let sum = q.noisy_sum_clamped(0.5, 100.0, |&v| f64::from(v)).unwrap();
        let median = q
            .noisy_median(0.5, 0.0, 10_000.0, 64, |&v| f64::from(v))
            .unwrap();
        (count, sum, median, acct.spent())
    };
    let baseline = run(1);
    assert_eq!(run(2), baseline, "workers=2 diverged");
    assert_eq!(run(8), baseline, "workers=8 diverged");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever the budget, charge size, worker count and number of
    /// contenders, concurrent spends (a) never exceed the budget, (b) sum
    /// exactly to the successful charges, and (c) admit precisely as many
    /// charges as a sequential replay of the same accountant logic.
    #[test]
    fn concurrent_spends_respect_the_budget(
        total in 0.0f64..20.0,
        eps in 0.01f64..2.0,
        workers in 1usize..9,
        n in 1usize..40,
    ) {
        let acct = Accountant::new(total);
        let pool = ExecPool::new(workers).unwrap().with_chunk_size(1);
        let tasks: Vec<usize> = (0..n).collect();
        let outcomes = pool.run(&tasks, |_, _| acct.charge(eps).is_ok());
        let admitted = outcomes.iter().filter(|&&ok| ok).count();

        prop_assert!(acct.spent() <= acct.total() + 1e-6);
        prop_assert!((acct.spent() - admitted as f64 * eps).abs() < 1e-6);

        // All charges are equal, so the admission count is independent of
        // interleaving: replay the accountant's own rule sequentially.
        let mut sim_spent = 0.0f64;
        let mut sim_admitted = 0usize;
        for _ in 0..n {
            if sim_spent + eps <= total + 1e-9 {
                sim_spent += eps;
                sim_admitted += 1;
            }
        }
        prop_assert_eq!(admitted, sim_admitted);
    }

    /// `SessionManager` sessions racing noisy counts from pool workers must
    /// land exactly where a sequential replay of kernel `step` transitions
    /// over the same two-root Combined topology lands: per-analyst spends,
    /// global spend and total admissions all agree. Dyadic ε (multiples of
    /// 1/1024) keeps every comparison exact: with equal charges, which
    /// *analyst* wins a race can vary, but counts and sums cannot.
    #[test]
    fn session_manager_races_match_sequential_kernel_model(
        global_units in 1u32..1024,
        cap_units in 1u32..512,
        eps_units in 1u32..128,
        workers_idx in 0usize..3,
        n_analysts in 1usize..5,
        charges_each in 1usize..8,
    ) {
        let workers = [1usize, 2, 8][workers_idx];
        let global = f64::from(global_units) / 1024.0;
        let cap = f64::from(cap_units) / 1024.0;
        let eps = f64::from(eps_units) / 1024.0;

        let mgr = SessionManager::new((0..64u32).collect(), NoiseSource::seeded(9), global, cap);
        let names: Vec<String> = (0..n_analysts).map(|i| format!("analyst-{i}")).collect();
        // One task per (analyst, charge); workers race them all.
        let tasks: Vec<usize> = (0..n_analysts * charges_each).collect();
        let pool = ExecPool::new(workers).unwrap().with_chunk_size(1);
        let outcomes = pool.run(&tasks, |_, &t| {
            let session = mgr.session(&names[t % n_analysts]);
            session.noisy_count(eps).is_ok()
        });
        let admitted = outcomes.iter().filter(|&&ok| ok).count();

        // Sequential kernel replay: global root + one root per analyst,
        // each session a Combined(global, personal) — the exact topology
        // `SessionManager::session` builds — charged in analyst-major
        // order.
        let mut st = KernelState::new();
        let g = st.add_root(RootBudget::new(global));
        let g_node = st.add_node(NodeSpec::Root(g));
        let sessions: Vec<_> = (0..n_analysts)
            .map(|_| {
                let p = st.add_root(RootBudget::new(cap));
                let p_node = st.add_node(NodeSpec::Root(p));
                (p, st.add_node(NodeSpec::Combined(vec![g_node, p_node])))
            })
            .collect();
        let mut model = st;
        let mut model_admitted = 0usize;
        for _ in 0..charges_each {
            for &(_, node) in &sessions {
                if let Ok((next, _)) = step(&model, &Transition::Charge { node, eps }) {
                    model = next;
                    model_admitted += 1;
                }
            }
        }

        prop_assert_eq!(admitted, model_admitted);
        prop_assert_eq!(mgr.global().spent(), model.roots[0].spent);

        // When the global budget never binds (every personally-affordable
        // attempt fits), each analyst's spend is race-independent and must
        // match the model exactly, analyst by analyst. (When the global
        // DOES bind, *which* analyst wins the last slots is scheduling —
        // only the totals above are deterministic.)
        let personal_capacity = |n: usize| {
            let mut st = KernelState::new();
            let p = st.add_root(RootBudget::new(cap));
            let node = st.add_node(NodeSpec::Root(p));
            let mut m = st;
            let mut ok = 0usize;
            for _ in 0..n {
                if let Ok((next, _)) = step(&m, &Transition::Charge { node, eps }) {
                    m = next;
                    ok += 1;
                }
            }
            ok
        };
        let unconstrained: usize = (0..n_analysts).map(|_| personal_capacity(charges_each)).sum();
        if model_admitted == unconstrained {
            for (i, name) in names.iter().enumerate() {
                prop_assert_eq!(
                    mgr.analyst_budget(name).spent(),
                    model.roots[sessions[i].0 .0].spent
                );
            }
        }
    }

    /// Concurrent `TimedRelease::advance_to` calls racing from pool workers
    /// are idempotent and order-insensitive: the facade's final total must
    /// equal a sequential replay of clamped `Grant` transitions up to the
    /// maximum epoch — exactly, with dyadic per-epoch grants.
    #[test]
    fn timed_release_races_match_sequential_grant_replay(
        initial_units in 0u32..256,
        per_epoch_units in 1u32..64,
        ceiling_units in 0u32..2048,
        workers_idx in 0usize..3,
        epochs in prop::collection::vec(0u64..30, 1..12),
    ) {
        let workers = [1usize, 2, 8][workers_idx];
        let initial = f64::from(initial_units) / 1024.0;
        let per_epoch = f64::from(per_epoch_units) / 1024.0;
        let ceiling = initial + f64::from(ceiling_units) / 1024.0;

        let acct = Accountant::new(initial);
        let policy = TimedRelease::new(acct.clone(), per_epoch, Some(ceiling));
        let pool = ExecPool::new(workers).unwrap().with_chunk_size(1);
        pool.run(&epochs, |_, &e| policy.advance_to(e));

        // Sequential replay against the kernel model: the policy's clamp
        // feeds `Grant` transitions; racing advances collapse to one
        // monotone walk to the maximum epoch.
        let mut st = KernelState::new();
        let r = st.add_root(RootBudget::new(initial));
        let mut model = st.clone();
        let mut epoch = 0u64;
        for &e in &epochs {
            if e <= epoch {
                continue;
            }
            let steps = e - epoch;
            epoch = e;
            let mut grant = per_epoch * steps as f64;
            grant = grant.min((ceiling - model.roots[r.0].total).max(0.0));
            if grant > 0.0 {
                let (next, _) = step(&model, &Transition::Grant { root: r, extra: grant }).unwrap();
                model = next;
            }
        }

        prop_assert_eq!(policy.epoch(), epoch);
        prop_assert_eq!(acct.total(), model.roots[0].total);
        prop_assert_eq!(acct.spent(), 0.0);
    }
}
