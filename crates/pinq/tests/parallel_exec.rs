//! Concurrency tests for the parallel execution layer: workers racing for
//! the last ε of a shared budget must never oversubscribe it, and the
//! composition rules (sequential sum, parallel max-of-parts) must hold
//! regardless of scheduling.

use pinq::parallel::parallel_map_parts_with;
use pinq::{Accountant, ExecCtx, ExecPool, NoiseSource, Queryable};
use proptest::prelude::*;

fn protect(n: usize, budget: f64, seed: u64) -> (Accountant, Queryable<u32>) {
    let acct = Accountant::new(budget);
    let noise = NoiseSource::seeded(seed);
    let data: Vec<u32> = (0..n as u32).collect();
    (acct.clone(), Queryable::new(data, &acct, &noise))
}

/// Twenty independent datasets share one accountant that can afford exactly
/// five ε=1 counts. Eight workers race for the last ε; sequential
/// composition must admit exactly five charges, whatever the interleaving.
#[test]
fn budget_exhaustion_race_admits_exactly_the_affordable_charges() {
    let acct = Accountant::new(5.0);
    let noise = NoiseSource::seeded(0xACE);
    let datasets: Vec<Queryable<u32>> = (0..20)
        .map(|i| Queryable::new(vec![i as u32; 10], &acct, &noise))
        .collect();
    let pool = ExecPool::new(8).unwrap();
    let results = parallel_map_parts_with(&datasets, &pool, |q| q.noisy_count(1.0));
    let successes = results.iter().filter(|r| r.is_ok()).count();
    assert_eq!(successes, 5, "exactly floor(budget/eps) charges must fit");
    assert!(
        acct.spent() <= acct.total() + 1e-9,
        "oversubscribed: spent {} of {}",
        acct.spent(),
        acct.total()
    );
    assert!((acct.spent() - 5.0).abs() < 1e-9);
}

/// Parts of one partition compose in parallel: with a budget of exactly ε,
/// counting *every* part concurrently must succeed, because the ledger
/// charges max-of-parts, not the sum. A race in the max-update would make
/// some parts fail spuriously or overcharge the root.
#[test]
fn concurrent_partition_counts_charge_only_the_max() {
    let (acct, q) = protect(160, 1.0, 0xBEE);
    let keys: Vec<u32> = (0..16).collect();
    let parts = q.partition(&keys, |&v| v % 16).unwrap();
    let pool = ExecPool::new(8).unwrap();
    let results = parallel_map_parts_with(&parts, &pool, |part| part.noisy_count(1.0));
    for r in &results {
        r.as_ref().expect("parallel composition affords every part");
    }
    assert!(
        (acct.spent() - 1.0).abs() < 1e-9,
        "max-of-parts must charge ε once, spent {}",
        acct.spent()
    );
}

/// One pipeline touching every parallel aggregation kernel releases
/// bit-identical values — and charges identical ε — at 1, 2 and 8 workers.
#[test]
fn kernel_released_values_are_identical_for_workers_1_2_8() {
    let run = |workers: usize| {
        let (acct, q) = protect(10_000, 100.0, 0xD1CE);
        let pool = ExecPool::new(workers).unwrap().with_chunk_size(512);
        let q = q.with_ctx(ExecCtx::pool(&pool));
        let count = q
            .filter(|&v| v % 3 == 0)
            .map(|&v| u64::from(v) * 2)
            .noisy_count(0.5)
            .unwrap();
        let sum = q.noisy_sum_clamped(0.5, 100.0, |&v| f64::from(v)).unwrap();
        let median = q
            .noisy_median(0.5, 0.0, 10_000.0, 64, |&v| f64::from(v))
            .unwrap();
        (count, sum, median, acct.spent())
    };
    let baseline = run(1);
    assert_eq!(run(2), baseline, "workers=2 diverged");
    assert_eq!(run(8), baseline, "workers=8 diverged");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever the budget, charge size, worker count and number of
    /// contenders, concurrent spends (a) never exceed the budget, (b) sum
    /// exactly to the successful charges, and (c) admit precisely as many
    /// charges as a sequential replay of the same accountant logic.
    #[test]
    fn concurrent_spends_respect_the_budget(
        total in 0.0f64..20.0,
        eps in 0.01f64..2.0,
        workers in 1usize..9,
        n in 1usize..40,
    ) {
        let acct = Accountant::new(total);
        let pool = ExecPool::new(workers).unwrap().with_chunk_size(1);
        let tasks: Vec<usize> = (0..n).collect();
        let outcomes = pool.run(&tasks, |_, _| acct.charge(eps).is_ok());
        let admitted = outcomes.iter().filter(|&&ok| ok).count();

        prop_assert!(acct.spent() <= acct.total() + 1e-6);
        prop_assert!((acct.spent() - admitted as f64 * eps).abs() < 1e-6);

        // All charges are equal, so the admission count is independent of
        // interleaving: replay the accountant's own rule sequentially.
        let mut sim_spent = 0.0f64;
        let mut sim_admitted = 0usize;
        for _ in 0..n {
            if sim_spent + eps <= total + 1e-9 {
                sim_spent += eps;
                sim_admitted += 1;
            }
        }
        prop_assert_eq!(admitted, sim_admitted);
    }
}
