//! Integration tests of the observability layer against real queryables:
//! event/ledger consistency, the privacy-safety rule, and concurrent
//! budget enforcement.

use dpnet_obs::{Event, MemorySink, Outcome};
use pinq::{Accountant, NoiseSource, Queryable};
use proptest::prelude::*;
use std::sync::Arc;

fn observed(budget: f64, n: usize) -> (Accountant, Arc<MemorySink>, Queryable<u64>) {
    let acct = Accountant::new(budget);
    let sink = Arc::new(MemorySink::new());
    acct.set_sink(Some(sink.clone()));
    let noise = NoiseSource::seeded(17);
    let q = Queryable::new((0..n as u64).collect(), &acct, &noise);
    (acct, sink, q)
}

/// A mixed workload touching transformations, scaling, partitioning, and
/// several aggregation mechanisms.
fn mixed_workload(q: &Queryable<u64>) {
    let evens = q.filter(|v| v % 2 == 0).with_label("evens");
    evens.noisy_count(0.1).unwrap();
    evens.noisy_sum_clamped(0.05, 100.0, |&v| v as f64).unwrap();
    // GroupBy doubles stability: the aggregate charges 2 × ε.
    let grouped = q.group_by(|v| v % 5);
    grouped.noisy_count(0.02).unwrap();
    // Partition: max-of-parts accounting.
    let keys = [0u64, 1, 2];
    for part in &q.partition(&keys, |v| v % 3).unwrap() {
        part.noisy_count_int(0.03).unwrap();
    }
    q.noisy_median(0.04, 0.0, 1000.0, 50, |&v| v as f64)
        .unwrap();
}

#[test]
fn operator_totals_sum_to_spent_after_a_mixed_workload() {
    let (acct, _sink, q) = observed(10.0, 500);
    mixed_workload(&q);
    let totals = acct.operator_totals();
    assert!(totals.len() >= 3, "expected several operators: {totals:?}");
    let sum: f64 = totals.iter().map(|(_, t)| t.epsilon).sum();
    assert!(
        (sum - acct.spent()).abs() < 1e-9,
        "operator sum {sum} vs spent {}",
        acct.spent()
    );
}

#[test]
fn charge_events_mirror_the_accountant_exactly() {
    let (acct, sink, q) = observed(10.0, 300);
    mixed_workload(&q);
    let events = sink.events();
    let charged: f64 = events
        .iter()
        .filter_map(|e| match e {
            Event::Charge(c) => Some(c.epsilon),
            _ => None,
        })
        .sum();
    assert!(
        (charged - acct.spent()).abs() < 1e-9,
        "events {charged} vs spent {}",
        acct.spent()
    );
    // Every charge narrates a path ending at the root accountant.
    for e in &events {
        if let Event::Charge(c) = e {
            assert!(c.path.ends_with("root"), "odd path {}", c.path);
        }
    }
}

#[test]
fn aggregate_events_report_mechanism_outcome_and_scaled_cost() {
    let (_, sink, q) = observed(10.0, 200);
    q.group_by(|v| v % 3).noisy_count(0.5).unwrap();
    let events = sink.events();
    let agg = events
        .iter()
        .find_map(|e| match e {
            Event::Aggregate(a) if a.operator == "noisy_count" => Some(a.clone()),
            _ => None,
        })
        .expect("no aggregate event");
    assert_eq!(agg.mechanism, "laplace");
    assert_eq!(agg.outcome, Outcome::Ok);
    assert!((agg.eps_requested - 0.5).abs() < 1e-12);
    // GroupBy stability 2 ⇒ the charge is doubled.
    assert!((agg.eps_charged - 1.0).abs() < 1e-12);
    assert!(agg.released.is_some());
}

#[test]
fn denied_aggregations_emit_denied_outcomes_and_charge_nothing() {
    let (acct, sink, q) = observed(0.1, 100);
    assert!(q.noisy_count(0.5).is_err());
    assert_eq!(acct.spent(), 0.0);
    let events = sink.events();
    let agg = events
        .iter()
        .find_map(|e| match e {
            Event::Aggregate(a) => Some(a.clone()),
            _ => None,
        })
        .expect("no aggregate event");
    assert_eq!(agg.outcome, Outcome::Denied);
    assert!((agg.eps_charged - 0.0).abs() < 1e-12);
    assert!(agg.released.is_none());
}

/// The privacy-safety rule (tentpole acceptance): in the default build no
/// event type may expose raw record counts — or any other record-derived
/// field — through its serialized form. The `trusted-owner` feature is the
/// only gate for such fields.
#[test]
fn events_carry_no_data_dependent_fields_by_default() {
    let (_, sink, q) = observed(10.0, 400);
    mixed_workload(&q);
    let events = sink.events();
    assert!(!events.is_empty());
    let mut kinds_seen = std::collections::BTreeSet::new();
    for e in &events {
        kinds_seen.insert(e.kind());
        let json = e.to_json();
        if cfg!(feature = "trusted-owner") {
            continue; // owner builds may carry record counts
        }
        assert!(
            !json.contains("records"),
            "data-dependent field leaked from a {} event: {json}",
            e.kind()
        );
    }
    // The workload must have exercised both event families the rule governs.
    assert!(kinds_seen.contains("transform"), "kinds: {kinds_seen:?}");
    assert!(kinds_seen.contains("aggregate"), "kinds: {kinds_seen:?}");
}

#[cfg(feature = "trusted-owner")]
#[test]
fn trusted_owner_builds_do_expose_record_counts() {
    let (_, sink, q) = observed(10.0, 50);
    q.filter(|v| *v < 10).noisy_count(0.1).unwrap();
    let events = sink.events();
    assert!(
        events.iter().any(|e| e.to_json().contains("records")),
        "trusted-owner build should carry record counts"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Concurrent spends through real aggregations never oversubscribe the
    /// budget, regardless of thread count, per-query ε, or total.
    #[test]
    fn concurrent_spends_never_exceed_total(
        total in 0.5f64..4.0,
        eps in 0.01f64..0.3,
        n_threads in 2usize..8,
    ) {
        const TOLERANCE: f64 = 1e-9;
        let acct = Accountant::new(total);
        let noise = NoiseSource::seeded(23);
        let q = Queryable::new((0..100u64).collect(), &acct, &noise);
        std::thread::scope(|s| {
            for _ in 0..n_threads {
                let q = q.clone();
                s.spawn(move || {
                    // Hammer until the accountant refuses.
                    while q.noisy_count(eps).is_ok() {}
                });
            }
        });
        prop_assert!(
            acct.spent() <= total + TOLERANCE,
            "spent {} over total {total}",
            acct.spent()
        );
        // The threads only stopped on denial, so the budget is exhausted:
        // no further eps-sized charge can fit.
        prop_assert!(acct.spent() + eps > total - TOLERANCE);
    }
}
