//! Model-checking the privacy kernel.
//!
//! Two layers of assurance for `pinq::kernel::model`:
//!
//! 1. **Exhaustive state enumeration** — every transition sequence up to a
//!    fixed depth, over a family of small charge-DAG shapes (root, scaled,
//!    combined, partitioned, nested), asserting the kernel invariants after
//!    every step: budget soundness, monotone spend under charges,
//!    max-of-parts consistency, transactional `Combined` rollback, refund
//!    inverse, and delta/spend agreement.
//! 2. **Facade ≡ model** — the concurrent shells (`Accountant`,
//!    `Queryable::partition`, `SessionManager`) driven through the public
//!    API at 1/2/8 workers must land in exactly the state a sequential
//!    replay of kernel transitions predicts. Charges use dyadic-rational ε
//!    (multiples of 1/1024) so float addition is order-independent and the
//!    comparison can be exact.

use pinq::kernel::model::{
    predict, step, KernelState, LedgerBook, NodeId, NodeSpec, RootBudget, RootId, Transition,
    TOLERANCE,
};
use pinq::parallel::parallel_map_parts_with;
use pinq::{Accountant, ExecPool, NoiseSource, Queryable};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Shapes: small DAGs exercising every NodeSpec variant.
// ---------------------------------------------------------------------

/// A shape is a pre-built state plus the ids of its chargeable leaves.
struct Shape {
    name: &'static str,
    state: KernelState,
    leaves: Vec<NodeId>,
}

fn shapes() -> Vec<Shape> {
    let mut out = Vec::new();

    // One root.
    {
        let mut st = KernelState::new();
        let r = st.add_root(RootBudget::new(1.0));
        let n = st.add_node(NodeSpec::Root(r));
        out.push(Shape {
            name: "root",
            state: st,
            leaves: vec![n],
        });
    }

    // Root behind a ×2 scaling.
    {
        let mut st = KernelState::new();
        let r = st.add_root(RootBudget::new(2.0));
        let root = st.add_node(NodeSpec::Root(r));
        let s = st.add_node(NodeSpec::Scaled {
            parent: root,
            factor: 2.0,
        });
        out.push(Shape {
            name: "scaled",
            state: st,
            leaves: vec![s],
        });
    }

    // Two roots of unequal budget under a Combined (rollback territory).
    {
        let mut st = KernelState::new();
        let rich = st.add_root(RootBudget::new(2.0));
        let poor = st.add_root(RootBudget::new(0.5));
        let a = st.add_node(NodeSpec::Root(rich));
        let b = st.add_node(NodeSpec::Root(poor));
        let c = st.add_node(NodeSpec::Combined(vec![a, b]));
        out.push(Shape {
            name: "combined",
            state: st,
            leaves: vec![c],
        });
    }

    // A two-part ledger straight on a root (parallel composition).
    {
        let mut st = KernelState::new();
        let r = st.add_root(RootBudget::new(1.0));
        let root = st.add_node(NodeSpec::Root(r));
        let l = st.add_ledger(root, 2);
        let p0 = st.add_node(NodeSpec::Part {
            ledger: l,
            index: 0,
            slot: 0,
        });
        let p1 = st.add_node(NodeSpec::Part {
            ledger: l,
            index: 1,
            slot: 1,
        });
        out.push(Shape {
            name: "partition",
            state: st,
            leaves: vec![p0, p1],
        });
    }

    // Parts behind a scaling, plus a Combined of two parts of the *same*
    // ledger — the corner where a multi-input charge hits one book twice.
    {
        let mut st = KernelState::new();
        let r = st.add_root(RootBudget::new(2.0));
        let root = st.add_node(NodeSpec::Root(r));
        let s = st.add_node(NodeSpec::Scaled {
            parent: root,
            factor: 2.0,
        });
        let l = st.add_ledger(s, 2);
        let p0 = st.add_node(NodeSpec::Part {
            ledger: l,
            index: 0,
            slot: 0,
        });
        let p1 = st.add_node(NodeSpec::Part {
            ledger: l,
            index: 1,
            slot: 1,
        });
        let c = st.add_node(NodeSpec::Combined(vec![p0, p1]));
        out.push(Shape {
            name: "scaled-partition-combined",
            state: st,
            leaves: vec![p0, p1, c],
        });
    }

    out
}

/// The transition alphabet for one shape: charges at two magnitudes and a
/// refund per leaf, plus a grant on every root.
fn alphabet(shape: &Shape) -> Vec<Transition> {
    let mut out = Vec::new();
    for &leaf in &shape.leaves {
        out.push(Transition::Charge {
            node: leaf,
            eps: 0.375,
        });
        out.push(Transition::Charge {
            node: leaf,
            eps: 0.75,
        });
        out.push(Transition::Refund {
            node: leaf,
            eps: 0.375,
        });
    }
    for r in 0..shape.state.roots.len() {
        out.push(Transition::Grant {
            root: RootId(r),
            extra: 0.5,
        });
    }
    out
}

fn assert_invariants(name: &str, seq: &[usize], st: &KernelState) {
    for (i, root) in st.roots.iter().enumerate() {
        assert!(
            root.spent <= root.total + TOLERANCE,
            "{name} {seq:?}: root {i} oversubscribed: {} of {}",
            root.spent,
            root.total
        );
        assert!(
            root.spent >= 0.0,
            "{name} {seq:?}: root {i} negative spend {}",
            root.spent
        );
    }
    for (i, ledger) in st.ledgers.iter().enumerate() {
        let fold = ledger.book.spends.iter().cloned().fold(0.0, f64::max);
        assert!(
            (ledger.book.max - fold).abs() < 1e-12,
            "{name} {seq:?}: ledger {i} max {} drifted from fold {}",
            ledger.book.max,
            fold
        );
        assert!(
            ledger.book.spends.iter().all(|&s| s >= 0.0),
            "{name} {seq:?}: ledger {i} negative part spend"
        );
    }
}

/// Walk every transition sequence of length ≤ `depth` over `shape`,
/// checking invariants and step-local properties at each node of the tree.
fn enumerate(shape: &Shape, depth: usize) {
    let alpha = alphabet(shape);
    // Iterative DFS over sequences, carrying the state at each prefix.
    let mut stack: Vec<(KernelState, Vec<usize>)> = vec![(shape.state.clone(), Vec::new())];
    let mut visited = 0usize;
    while let Some((st, seq)) = stack.pop() {
        if seq.len() >= depth {
            continue;
        }
        for (ti, t) in alpha.iter().enumerate() {
            let mut next_seq = seq.clone();
            next_seq.push(ti);
            let before = st.clone();
            match step(&st, t) {
                Ok((next, deltas)) => {
                    assert_eq!(st, before, "step mutated its input");
                    assert_invariants(shape.name, &next_seq, &next);
                    // Per-root delta sums must equal the actual spend
                    // movement of this step.
                    for r in 0..next.roots.len() {
                        let moved: f64 = deltas
                            .iter()
                            .filter(|d| d.root == RootId(r))
                            .map(|d| d.eps)
                            .sum();
                        let diff = next.roots[r].spent - st.roots[r].spent;
                        assert!(
                            (moved - diff).abs() < 1e-12,
                            "{} {next_seq:?}: deltas say {moved}, root {r} moved {diff}",
                            shape.name
                        );
                    }
                    if let Transition::Charge { .. } = t {
                        for r in 0..next.roots.len() {
                            assert!(
                                next.roots[r].spent >= st.roots[r].spent - 1e-15,
                                "{} {next_seq:?}: charge lowered root {r}",
                                shape.name
                            );
                        }
                        // A successful charge's deltas match what predict
                        // promised on the pre-state — except through a
                        // `Combined`, where a charge commits earlier
                        // inputs' ledger books before walking later ones
                        // while predict (deliberately, like the live
                        // `predict_into`) reads one frozen state.
                        if let Transition::Charge { node, eps } = t {
                            if !matches!(st.nodes[node.0], NodeSpec::Combined(_)) {
                                let promised: Vec<(String, f64)> = predict(&st, *node, *eps)
                                    .into_iter()
                                    .map(|d| (d.path, d.eps))
                                    .collect();
                                let applied: Vec<(String, f64)> =
                                    deltas.iter().map(|d| (d.path.clone(), d.eps)).collect();
                                assert_eq!(
                                    promised, applied,
                                    "{} {next_seq:?}: predict/charge drift",
                                    shape.name
                                );
                            }
                        }
                    }
                    visited += 1;
                    stack.push((next, next_seq));
                }
                Err(_) => {
                    // A failed transition must be free: the (discarded)
                    // successor equals the input — `step` returns Err
                    // without a state, so purity of the input is the claim.
                    assert_eq!(st, before, "failed step mutated its input");
                    visited += 1;
                }
            }
        }
    }
    assert!(visited > 0, "{}: nothing enumerated", shape.name);
}

#[test]
fn exhaustive_enumeration_upholds_kernel_invariants() {
    for shape in shapes() {
        // Depth 4 over a ≤10-symbol alphabet ≈ 10^4 sequences per shape —
        // exhaustive yet fast, since states are tiny values.
        enumerate(&shape, 4);
    }
}

#[test]
fn combined_rollback_leaves_no_residue_in_the_model() {
    let mut st = KernelState::new();
    let rich = st.add_root(RootBudget::new(5.0));
    let poor = st.add_root(RootBudget::new(0.25));
    let a = st.add_node(NodeSpec::Root(rich));
    let b = st.add_node(NodeSpec::Root(poor));
    let c = st.add_node(NodeSpec::Combined(vec![a, b]));
    // Spend part of the poor budget, then overdraw through the Combined.
    let (st, _) = step(&st, &Transition::Charge { node: b, eps: 0.25 }).unwrap();
    let err = step(&st, &Transition::Charge { node: c, eps: 0.5 });
    assert!(err.is_err());
    // The pure model simply discards the failed successor: both roots hold
    // exactly their pre-attempt spends.
    assert_eq!(st.roots[0].spent, 0.0);
    assert_eq!(st.roots[1].spent, 0.25);
}

#[test]
fn refund_inverts_charge_across_every_shape() {
    for shape in shapes() {
        for &leaf in &shape.leaves {
            let eps = 0.375;
            let Ok((charged, _)) = step(&shape.state, &Transition::Charge { node: leaf, eps })
            else {
                continue;
            };
            let (refunded, deltas) =
                step(&charged, &Transition::Refund { node: leaf, eps }).unwrap();
            for (r, root) in refunded.roots.iter().enumerate() {
                assert!(
                    (root.spent - shape.state.roots[r].spent).abs() < 1e-12,
                    "{}: refund did not invert charge at root {r}",
                    shape.name
                );
            }
            assert!(
                deltas.iter().all(|d| d.eps <= 0.0),
                "{}: refund deltas must be non-positive",
                shape.name
            );
        }
    }
}

#[test]
fn extend_dag_and_new_ledger_grow_the_state_densely() {
    let mut st = KernelState::new();
    let (st1, _) = step(&st, &Transition::NewRoot { total: 1.0 }).unwrap();
    assert_eq!(st1.roots.len(), 1);
    let (st2, _) = step(
        &st1,
        &Transition::ExtendDag {
            spec: NodeSpec::Root(RootId(0)),
        },
    )
    .unwrap();
    let (st3, _) = step(
        &st2,
        &Transition::NewLedger {
            parent: NodeId(0),
            parts: 3,
        },
    )
    .unwrap();
    assert_eq!(st3.ledgers.len(), 1);
    assert_eq!(st3.ledgers[0].book, LedgerBook::new(3));
    // The original state never moved.
    st.add_root(RootBudget::new(9.0));
    assert_eq!(st.roots.len(), 1);
}

// ---------------------------------------------------------------------
// Facade ≡ model.
// ---------------------------------------------------------------------

/// ε quantized to 1/1024 so float sums are exact and order-independent.
fn dyadic(units: u32) -> f64 {
    f64::from(units) / 1024.0
}

/// The facade's partition pipeline at 1, 2 and 8 workers must land every
/// budget and ledger in exactly the state a sequential replay of kernel
/// transitions predicts — bit-for-bit, thanks to dyadic ε.
#[test]
fn partition_facade_matches_sequential_kernel_replay_at_1_2_8_workers() {
    let n_parts = 8usize;
    let charges_per_part = 5u32;
    let eps_units = 3u32; // 3/1024 per charge

    for &workers in &[1usize, 2, 8] {
        // Facade: partition a dataset, charge every part concurrently.
        let acct = Accountant::new(1.0);
        let noise = NoiseSource::seeded(0x5EED);
        let data: Vec<u32> = (0..512).collect();
        let q = Queryable::new(data, &acct, &noise);
        let keys: Vec<u32> = (0..n_parts as u32).collect();
        let parts = q.partition(&keys, |&v| v % n_parts as u32).unwrap();
        let pool = ExecPool::new(workers).unwrap();
        let results = parallel_map_parts_with(&parts, &pool, |part| {
            let mut ok = 0u32;
            for _ in 0..charges_per_part {
                part.noisy_count(dyadic(eps_units))?;
                ok += 1;
            }
            Ok::<u32, pinq::Error>(ok)
        });
        for r in &results {
            assert_eq!(*r.as_ref().unwrap(), charges_per_part);
        }

        // Model: the same topology, charges replayed sequentially in an
        // arbitrary (part-major) order — parallel composition makes the
        // final state order-independent when every charge succeeds.
        let mut st = KernelState::new();
        let r = st.add_root(RootBudget::new(1.0));
        let root = st.add_node(NodeSpec::Root(r));
        let scaled = st.add_node(NodeSpec::Scaled {
            parent: root,
            factor: 1.0,
        });
        let ledger = st.add_ledger(scaled, n_parts);
        let part_nodes: Vec<NodeId> = (0..n_parts)
            .map(|i| {
                st.add_node(NodeSpec::Part {
                    ledger,
                    index: i,
                    slot: i,
                })
            })
            .collect();
        let mut model = st;
        for &p in &part_nodes {
            for _ in 0..charges_per_part {
                let (next, _) = step(
                    &model,
                    &Transition::Charge {
                        node: p,
                        eps: dyadic(eps_units),
                    },
                )
                .unwrap();
                model = next;
            }
        }

        // Exact agreement: root spend and every ledger column.
        let facade_budget = acct.budget_snapshot();
        assert_eq!(
            facade_budget.spent, model.roots[0].spent,
            "workers={workers}: facade root diverged from model"
        );
        assert_eq!(
            facade_budget.total, model.roots[0].total,
            "workers={workers}: totals diverged"
        );
        // Every part spent the same; the root saw max-of-parts exactly.
        let expected_part = f64::from(charges_per_part * eps_units) / 1024.0;
        assert_eq!(model.ledgers[0].book.max, expected_part);
        assert_eq!(facade_budget.spent, expected_part);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Concurrent racing charges through the Accountant facade admit
    /// exactly as many spends as a sequential replay of kernel `step`
    /// transitions — at any worker count, with dyadic ε so the comparison
    /// is exact.
    #[test]
    fn accountant_facade_admission_matches_kernel_step(
        total_units in 0u32..2048,
        eps_units in 1u32..256,
        workers in 1usize..9,
        n in 1usize..40,
    ) {
        let total = dyadic(total_units);
        let eps = dyadic(eps_units);
        let acct = Accountant::new(total);
        let pool = ExecPool::new(workers).unwrap().with_chunk_size(1);
        let tasks: Vec<usize> = (0..n).collect();
        let outcomes = pool.run(&tasks, |_, _| acct.charge(eps).is_ok());
        let admitted = outcomes.iter().filter(|&&ok| ok).count();

        // Sequential kernel replay: same budget, same n attempts.
        let mut st = KernelState::new();
        let r = st.add_root(RootBudget::new(total));
        let node = st.add_node(NodeSpec::Root(r));
        let mut model = st;
        let mut model_admitted = 0usize;
        for _ in 0..n {
            if let Ok((next, _)) = step(&model, &Transition::Charge { node, eps }) {
                model = next;
                model_admitted += 1;
            }
        }

        prop_assert_eq!(admitted, model_admitted);
        prop_assert_eq!(acct.budget_snapshot().spent, model.roots[0].spent);
    }
}
