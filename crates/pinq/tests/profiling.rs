//! Integration tests of the span profiler against real queryables: span
//! trees from full query pipelines, worker-track telemetry, charge-path
//! tagging, sequential-mode kernel events, and the privacy rule end-to-end.

use dpnet_obs::{
    install_recorder, uninstall_recorder, CompletedSpan, Event, MemorySink, MetricsRegistry,
    TraceRecorder,
};
use pinq::{Accountant, ExecCtx, ExecPool, NoiseSource, Queryable};
use std::sync::{Arc, Mutex, MutexGuard};

/// Tests here install a process-wide recorder; serialize them.
fn global_guard() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

fn dataset(n: u64, budget: f64) -> (Accountant, Arc<MemorySink>, Queryable<u64>) {
    let acct = Accountant::new(budget);
    let sink = Arc::new(MemorySink::new());
    acct.set_sink(Some(sink.clone()));
    let noise = NoiseSource::seeded(7);
    let q = Queryable::new((0..n).collect(), &acct, &noise);
    (acct, sink, q)
}

fn profiled<R>(work: impl FnOnce() -> R) -> (R, Vec<CompletedSpan>, Arc<TraceRecorder>) {
    let rec = Arc::new(TraceRecorder::new());
    install_recorder(rec.clone());
    let out = work();
    uninstall_recorder();
    let spans = rec.take();
    (out, spans, rec)
}

/// Satellite fix: a sequential-context aggregation run is still a kernel
/// run. It must emit an [`dpnet_obs::ExecEvent`] with `workers: 1` instead
/// of being silently skipped.
#[test]
fn sequential_runs_emit_exec_events_with_one_worker() {
    let (_, sink, q) = dataset(2_000, 100.0);
    // Explicitly sequential: the default context.
    let q = q.with_ctx(ExecCtx::Sequential);
    q.noisy_sum_clamped(0.1, 10.0, |&v| v as f64).unwrap();
    q.noisy_median(0.1, 0.0, 2_000.0, 32, |&v| v as f64)
        .unwrap();
    let keys = [0u64, 1, 2];
    q.partition(&keys, |v| v % 3).unwrap();

    let mut kernels: Vec<(&'static str, u64)> = sink
        .events()
        .iter()
        .filter_map(|e| match e {
            Event::Exec(x) => Some((x.kernel, x.workers)),
            _ => None,
        })
        .collect();
    kernels.sort_unstable();
    assert_eq!(
        kernels,
        vec![("noisy_median", 1), ("noisy_sum", 1), ("partition", 1)],
        "sequential aggregations must emit workers:1 exec events"
    );
}

#[test]
fn pool_and_sequential_modes_emit_the_same_kernel_set() {
    let (_, seq_sink, q) = dataset(40_000, 100.0);
    q.noisy_sum_clamped(0.1, 10.0, |&v| v as f64).unwrap();
    let (_, pool_sink, q) = dataset(40_000, 100.0);
    let q = q.with_ctx(ExecCtx::pool(&ExecPool::new(4).unwrap()));
    q.noisy_sum_clamped(0.1, 10.0, |&v| v as f64).unwrap();
    let kernel_of = |sink: &MemorySink| {
        sink.events().iter().find_map(|e| match e {
            Event::Exec(x) => Some((x.kernel, x.workers)),
            _ => None,
        })
    };
    assert_eq!(kernel_of(&seq_sink), Some(("noisy_sum", 1)));
    assert_eq!(kernel_of(&pool_sink), Some(("noisy_sum", 4)));
}

#[test]
fn aggregations_open_spans_tagged_with_their_charge_path() {
    let _g = global_guard();
    let ((), spans, _) = profiled(|| {
        let (_, _, q) = dataset(5_000, 100.0);
        let doubled = q.group_by(|v| v % 7); // stability ×2
        doubled.noisy_count(0.1).unwrap();
        let keys = [0u64, 1, 2, 3];
        let parts = q.partition(&keys, |v| v % 4).unwrap();
        parts[2].noisy_count(0.05).unwrap();
    });
    let count_spans: Vec<&CompletedSpan> =
        spans.iter().filter(|s| s.name == "noisy_count").collect();
    assert_eq!(count_spans.len(), 2);
    let details: Vec<&str> = count_spans
        .iter()
        .map(|s| s.detail.as_deref().expect("aggregation spans carry paths"))
        .collect();
    // The grouped count charges through the root; the part count charges
    // through the partition ledger, and the detail names which part.
    assert!(details.contains(&"root"), "details: {details:?}");
    assert!(
        details.iter().any(|d| d.contains("part[2]")),
        "details: {details:?}"
    );
    // The partition barrier itself was profiled too.
    assert!(spans.iter().any(|s| s.name == "partition"));
}

#[test]
fn plan_materialization_is_spanned_inside_its_barrier() {
    let _g = global_guard();
    let ((), spans, _) = profiled(|| {
        let (_, _, q) = dataset(10_000, 100.0);
        let chained = q.filter(|v| v % 2 == 0).map(|v| v * 3);
        // Streaming aggregations fuse into the plan without materializing…
        chained.noisy_count(0.1).unwrap();
        // …so the first key-shuffling barrier is what forces it.
        let keys = [0u64, 1, 2];
        chained.partition(&keys, |v| v % 3).unwrap();
    });
    let count = spans
        .iter()
        .find(|s| s.name == "noisy_count")
        .expect("aggregation span");
    let plan = spans
        .iter()
        .find(|s| s.name == "plan/materialize")
        .expect("plan span");
    let barrier = spans
        .iter()
        .find(|s| s.name == "partition")
        .expect("barrier span");
    // The fused count streamed off the chain: no materialization under it.
    assert_ne!(plan.parent, Some(count.id));
    // The plan forced at the partition barrier: parent/child on one track.
    assert_eq!(plan.parent, Some(barrier.id));
    assert_eq!(plan.track, barrier.track);
    assert!(barrier.dur_ns >= plan.dur_ns);
    assert_eq!(plan.detail.as_deref(), Some("sequential"));
}

#[test]
fn pool_runs_produce_worker_tracks_tasks_and_telemetry() {
    let _g = global_guard();
    let before = MetricsRegistry::global()
        .histogram("exec.worker.busy_ns")
        .count();
    let ((), spans, rec) = profiled(|| {
        let (_, _, q) = dataset(100_000, 100.0);
        let q = q.with_ctx(ExecCtx::pool(&ExecPool::new(4).unwrap()));
        q.noisy_sum_clamped(0.1, 10.0, |&v| v as f64).unwrap();
    });
    // The coordinating thread holds the run span under the aggregation.
    let run = spans.iter().find(|s| s.name == "exec/run").expect("run");
    let agg = spans.iter().find(|s| s.name == "noisy_sum").expect("agg");
    assert_eq!(run.parent, Some(agg.id));
    // Tasks ran on worker tracks, distinct from the coordinator's.
    let tasks: Vec<&CompletedSpan> = spans.iter().filter(|s| s.name == "exec/task").collect();
    assert!(!tasks.is_empty());
    assert!(tasks.iter().all(|t| t.track != run.track));
    let names = rec.track_names();
    assert!(
        names.values().any(|n| n.starts_with("worker-")),
        "worker tracks should be named: {names:?}"
    );
    // Per-worker telemetry landed in the global registry.
    let reg = MetricsRegistry::global();
    assert!(reg.histogram("exec.worker.busy_ns").count() > before);
    assert!(reg.histogram("exec.worker.idle_ns").count() > 0);
    assert!(reg.histogram("exec.reassembly_wait_ns").count() > 0);
    #[cfg(feature = "trusted-owner")]
    assert!(reg.histogram("exec.queue_depth").count() > 0);
}

#[test]
fn unprofiled_runs_record_no_spans() {
    let _g = global_guard();
    let rec = Arc::new(TraceRecorder::new());
    {
        let (_, _, q) = dataset(10_000, 100.0);
        let q = q.with_ctx(ExecCtx::pool(&ExecPool::new(2).unwrap()));
        q.noisy_count(0.1).unwrap();
    }
    assert!(rec.is_empty());
    assert!(!dpnet_obs::profiling_enabled());
}

/// The privacy rule holds through the full pipeline: spans recorded from
/// real queries serialize without record-derived fields by default, even
/// though the engine attaches record counts to them internally.
#[test]
fn pipeline_spans_serialize_without_record_fields_by_default() {
    let _g = global_guard();
    let ((), spans, rec) = profiled(|| {
        let (_, _, q) = dataset(20_000, 100.0);
        let q = q.with_ctx(ExecCtx::pool(&ExecPool::new(2).unwrap()));
        q.filter(|v| v % 3 != 0)
            .noisy_median(0.1, 0.0, 20_000.0, 64, |&v| v as f64)
            .unwrap();
    });
    assert!(!spans.is_empty());
    let trace = dpnet_obs::chrome_trace_json(&spans, &rec.track_names());
    for json in spans.iter().map(|s| s.to_json()).chain([trace]) {
        if cfg!(feature = "trusted-owner") {
            continue;
        }
        assert!(!json.contains("records"), "leak: {json}");
        assert!(!json.contains("tasks"), "leak: {json}");
    }
}
