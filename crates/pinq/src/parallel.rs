//! Parallel execution over partitioned data.
//!
//! PINQ's declarative form is what lets analyses scale out — the paper's
//! footnote notes that "because it is based on LINQ, the analyses will also
//! automatically scale to a cluster (DryadLINQ)". The single-machine analog
//! here: the parts of a `Partition` are disjoint and every piece of shared
//! state (the budget accountant, the partition ledger, the noise source) is
//! thread-safe, so per-part queries can run on an [`ExecPool`] with no
//! change to the privacy semantics.
//!
//! Each part is handed its own deterministic noise substream (see
//! [`NoiseSource::substream`](crate::rng::NoiseSource::substream)), derived
//! on the coordinating thread in part order before dispatch. Workers
//! therefore never race on a shared generator, and the released values at a
//! fixed seed are identical for **any** worker count.
//!
//! ```
//! use pinq::{Accountant, ExecPool, NoiseSource, Queryable};
//! use pinq::parallel::parallel_map_parts;
//!
//! let budget = Accountant::new(1.0);
//! let noise = NoiseSource::seeded(1);
//! let data = Queryable::new((0..100_000u32).collect::<Vec<_>>(), &budget, &noise);
//! let keys: Vec<u32> = (0..16).collect();
//! let parts = data.partition(&keys, |&x| x % 16).unwrap();
//!
//! // Sixteen noisy counts, measured concurrently, one ε charged (parallel
//! // composition is about *privacy*; this module adds parallel *compute*).
//! let counts = parallel_map_parts(&parts, 4, |part| part.noisy_count(0.5)).unwrap();
//! assert_eq!(counts.len(), 16);
//! assert!((budget.spent() - 0.5).abs() < 1e-12);
//!
//! // `workers: 0` is refused, not clamped.
//! assert!(parallel_map_parts(&parts, 0, |p| p.stability()).is_err());
//! # let _ = ExecPool::new(2);
//! ```

use crate::error::Result;
use crate::exec::ExecPool;
use crate::queryable::Queryable;

/// Apply `f` to every part on up to `workers` threads, preserving order.
///
/// `f` runs on borrowed queryables; each invocation may perform its own
/// transformations and aggregations. Results come back in part order.
/// Returns [`crate::Error::InvalidWorkers`] for `workers: 0`.
pub fn parallel_map_parts<T, R, F>(parts: &[Queryable<T>], workers: usize, f: F) -> Result<Vec<R>>
where
    T: Send + Sync,
    R: Send,
    F: Fn(&Queryable<T>) -> R + Send + Sync,
{
    let pool = ExecPool::new(workers)?;
    Ok(parallel_map_parts_with(parts, &pool, f))
}

/// [`parallel_map_parts`] over a caller-supplied [`ExecPool`].
///
/// Before dispatch, each part is re-bound to a private noise substream —
/// derived in part order on the calling thread — so noise draws inside `f`
/// are deterministic at a fixed seed regardless of worker count or
/// scheduling. Budget accounting is untouched: parts keep their ledger, and
/// spends race safely on the thread-safe accountant.
pub fn parallel_map_parts_with<T, R, F>(parts: &[Queryable<T>], pool: &ExecPool, f: F) -> Vec<R>
where
    T: Send + Sync,
    R: Send,
    F: Fn(&Queryable<T>) -> R + Send + Sync,
{
    let prof = dpnet_obs::span::enter("map_parts");
    prof.set_records(parts.len() as u64);
    let timer = dpnet_obs::SpanTimer::start();
    let staged: Vec<Queryable<T>> = parts.iter().map(|p| p.with_substream()).collect();
    let out = pool.run(&staged, |_, part| f(part));
    if let Some(first) = parts.first() {
        first.emit_exec("map_parts", pool.workers(), parts.len(), timer.elapsed_ns());
    }
    out
}

/// Convenience: noisy counts of every part, concurrently. Returns one
/// result per part, in order. The outer `Result` reports an invalid worker
/// count; the inner ones report per-part budget refusals.
pub fn parallel_counts<T>(
    parts: &[Queryable<T>],
    workers: usize,
    eps: f64,
) -> Result<Vec<Result<f64>>>
where
    T: Send + Sync,
{
    parallel_map_parts(parts, workers, |p| p.noisy_count(eps))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Accountant;
    use crate::error::Error;
    use crate::rng::NoiseSource;

    fn dataset(n: u32, budget: f64) -> (Accountant, Queryable<u32>) {
        let acct = Accountant::new(budget);
        let noise = NoiseSource::seeded(3);
        (
            acct.clone(),
            Queryable::new((0..n).collect(), &acct, &noise),
        )
    }

    #[test]
    fn parallel_counts_match_part_sizes() {
        let (acct, q) = dataset(64_000, 10.0);
        let keys: Vec<u32> = (0..32).collect();
        let parts = q.partition(&keys, |&x| x % 32).unwrap();
        let counts = parallel_counts(&parts, 8, 5.0).unwrap();
        for c in &counts {
            let c = *c.as_ref().expect("budget is ample");
            assert!((c - 2000.0).abs() < 10.0, "count {c}");
        }
        // Parallel composition still holds under concurrency.
        assert!((acct.spent() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn zero_workers_is_an_error() {
        let (_, q) = dataset(100, 1.0);
        let keys: Vec<u32> = (0..4).collect();
        let parts = q.partition(&keys, |&x| x % 4).unwrap();
        assert_eq!(
            parallel_counts(&parts, 0, 0.1).unwrap_err(),
            Error::InvalidWorkers(0)
        );
    }

    #[test]
    fn results_preserve_part_order() {
        let (_, q) = dataset(1000, 1e12);
        let keys: Vec<u32> = (0..10).collect();
        let parts = q.partition(&keys, |&x| x % 10).unwrap();
        // Deterministic per-part value: exact size via a huge epsilon.
        let sizes = parallel_map_parts(&parts, 4, |p| {
            p.noisy_count(1e9).expect("budget").round() as usize
        })
        .unwrap();
        assert_eq!(sizes, vec![100; 10]);
    }

    #[test]
    fn released_values_are_identical_for_any_worker_count() {
        // The core determinism contract: a fixed seed fixes every released
        // value, no matter how many workers measure the parts.
        let run = |workers: usize| -> Vec<f64> {
            let acct = Accountant::new(1e12);
            let noise = NoiseSource::seeded(0xD5);
            let q = Queryable::new((0..10_000u32).collect::<Vec<_>>(), &acct, &noise);
            let keys: Vec<u32> = (0..16).collect();
            let parts = q.partition(&keys, |&x| x % 16).unwrap();
            parallel_map_parts(&parts, workers, |p| p.noisy_count(0.5).unwrap()).unwrap()
        };
        let one = run(1);
        assert_eq!(one, run(2));
        assert_eq!(one, run(8));
    }

    #[test]
    fn budget_exhaustion_is_reported_per_part() {
        let (_, q) = dataset(1000, 0.25);
        let keys: Vec<u32> = (0..4).collect();
        let parts = q.partition(&keys, |&x| x % 4).unwrap();
        // Each part tries to spend 0.2 twice; the ledger allows the first
        // round (max = 0.2) but the second round (max 0.4 > 0.25) fails.
        let first = parallel_counts(&parts, 4, 0.2).unwrap();
        assert!(first.iter().all(|r| r.is_ok()));
        let second = parallel_counts(&parts, 4, 0.2).unwrap();
        assert!(second.iter().all(|r| r.is_err()));
    }

    #[test]
    fn single_worker_degenerates_to_sequential() {
        let (_, q) = dataset(100, 1e12);
        let keys: Vec<u32> = (0..5).collect();
        let parts = q.partition(&keys, |&x| x % 5).unwrap();
        let a = parallel_map_parts(&parts, 1, |p| p.noisy_count(1e9).unwrap().round()).unwrap();
        assert_eq!(a, vec![20.0; 5]);
    }

    #[test]
    fn empty_parts_are_fine() {
        let (_, q) = dataset(10, 100.0);
        let keys: Vec<u32> = vec![];
        let parts = q.partition(&keys, |&x| x).unwrap();
        assert!(parallel_counts(&parts, 4, 1.0).unwrap().is_empty());
    }

    #[test]
    fn nested_queries_inside_workers() {
        let (acct, q) = dataset(10_000, 10.0);
        let keys: Vec<u32> = (0..8).collect();
        let parts = q.partition(&keys, |&x| x % 8).unwrap();
        let medians = parallel_map_parts(&parts, 4, |p| {
            p.noisy_median(1.0, 0.0, 10_000.0, 100, |&x| x as f64)
                .expect("budget")
        })
        .unwrap();
        assert_eq!(medians.len(), 8);
        // Each part spent 1.0; parallel composition charges 1.0 total.
        assert!((acct.spent() - 1.0).abs() < 1e-9);
    }
}
