//! Parallel execution over partitioned data.
//!
//! PINQ's declarative form is what lets analyses scale out — the paper's
//! footnote notes that "because it is based on LINQ, the analyses will also
//! automatically scale to a cluster (DryadLINQ)". The single-machine analog
//! here: the parts of a `Partition` are disjoint and every piece of shared
//! state (the budget accountant, the partition ledger, the noise source) is
//! thread-safe, so per-part queries can run on a worker pool with no change
//! to the privacy semantics.
//!
//! ```
//! use pinq::{Accountant, NoiseSource, Queryable};
//! use pinq::parallel::parallel_map_parts;
//!
//! let budget = Accountant::new(1.0);
//! let noise = NoiseSource::seeded(1);
//! let data = Queryable::new((0..100_000u32).collect::<Vec<_>>(), &budget, &noise);
//! let keys: Vec<u32> = (0..16).collect();
//! let parts = data.partition(&keys, |&x| x % 16);
//!
//! // Sixteen noisy counts, measured concurrently, one ε charged (parallel
//! // composition is about *privacy*; this module adds parallel *compute*).
//! let counts = parallel_map_parts(&parts, 4, |part| part.noisy_count(0.5));
//! assert_eq!(counts.len(), 16);
//! assert!((budget.spent() - 0.5).abs() < 1e-12);
//! ```

use crate::queryable::Queryable;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Apply `f` to every part on up to `workers` threads, preserving order.
///
/// `f` runs on borrowed queryables; each invocation may perform its own
/// transformations and aggregations. Results come back in part order.
pub fn parallel_map_parts<T, R, F>(parts: &[Queryable<T>], workers: usize, f: F) -> Vec<R>
where
    T: Send + Sync,
    R: Send,
    F: Fn(&Queryable<T>) -> R + Send + Sync,
{
    let workers = workers.max(1).min(parts.len().max(1));
    let next = AtomicUsize::new(0);
    let mut results: Vec<Option<R>> = (0..parts.len()).map(|_| None).collect();
    // Raw slice of result slots, one writer per index via the atomic
    // work-stealing counter — expressed safely through per-slot Mutexes to
    // honor the crate-wide forbid(unsafe_code).
    let slots: Vec<parking_lot::Mutex<&mut Option<R>>> =
        results.iter_mut().map(parking_lot::Mutex::new).collect();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= parts.len() {
                    break;
                }
                let r = f(&parts[i]);
                **slots[i].lock() = Some(r);
            });
        }
    });

    drop(slots);
    results
        .into_iter()
        .map(|r| r.expect("every slot visited exactly once"))
        .collect()
}

/// Convenience: noisy counts of every part, concurrently. Returns one
/// result per part, in order.
pub fn parallel_counts<T>(
    parts: &[Queryable<T>],
    workers: usize,
    eps: f64,
) -> Vec<crate::error::Result<f64>>
where
    T: Send + Sync,
{
    parallel_map_parts(parts, workers, |p| p.noisy_count(eps))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Accountant;
    use crate::rng::NoiseSource;

    fn dataset(n: u32, budget: f64) -> (Accountant, Queryable<u32>) {
        let acct = Accountant::new(budget);
        let noise = NoiseSource::seeded(3);
        (
            acct.clone(),
            Queryable::new((0..n).collect(), &acct, &noise),
        )
    }

    #[test]
    fn parallel_counts_match_part_sizes() {
        let (acct, q) = dataset(64_000, 10.0);
        let keys: Vec<u32> = (0..32).collect();
        let parts = q.partition(&keys, |&x| x % 32);
        let counts = parallel_counts(&parts, 8, 5.0);
        for c in &counts {
            let c = *c.as_ref().expect("budget is ample");
            assert!((c - 2000.0).abs() < 10.0, "count {c}");
        }
        // Parallel composition still holds under concurrency.
        assert!((acct.spent() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn results_preserve_part_order() {
        let (_, q) = dataset(1000, 1e12);
        let keys: Vec<u32> = (0..10).collect();
        let parts = q.partition(&keys, |&x| x % 10);
        // Deterministic per-part value: exact size via a huge epsilon.
        let sizes = parallel_map_parts(&parts, 4, |p| {
            p.noisy_count(1e9).expect("budget").round() as usize
        });
        assert_eq!(sizes, vec![100; 10]);
    }

    #[test]
    fn budget_exhaustion_is_reported_per_part() {
        let (_, q) = dataset(1000, 0.25);
        let keys: Vec<u32> = (0..4).collect();
        let parts = q.partition(&keys, |&x| x % 4);
        // Each part tries to spend 0.2 twice; the ledger allows the first
        // round (max = 0.2) but the second round (max 0.4 > 0.25) fails.
        let first = parallel_counts(&parts, 4, 0.2);
        assert!(first.iter().all(|r| r.is_ok()));
        let second = parallel_counts(&parts, 4, 0.2);
        assert!(second.iter().all(|r| r.is_err()));
    }

    #[test]
    fn single_worker_degenerates_to_sequential() {
        let (_, q) = dataset(100, 1e12);
        let keys: Vec<u32> = (0..5).collect();
        let parts = q.partition(&keys, |&x| x % 5);
        let a = parallel_map_parts(&parts, 1, |p| p.noisy_count(1e9).unwrap().round());
        assert_eq!(a, vec![20.0; 5]);
    }

    #[test]
    fn empty_parts_are_fine() {
        let (_, q) = dataset(10, 100.0);
        let keys: Vec<u32> = vec![];
        let parts = q.partition(&keys, |&x| x);
        assert!(parallel_counts(&parts, 4, 1.0).is_empty());
    }

    #[test]
    fn nested_queries_inside_workers() {
        let (acct, q) = dataset(10_000, 10.0);
        let keys: Vec<u32> = (0..8).collect();
        let parts = q.partition(&keys, |&x| x % 8);
        let medians = parallel_map_parts(&parts, 4, |p| {
            p.noisy_median(1.0, 0.0, 10_000.0, 100, |&x| x as f64)
                .expect("budget")
        });
        assert_eq!(medians.len(), 8);
        // Each part spent 1.0; parallel composition charges 1.0 total.
        assert!((acct.spent() - 1.0).abs() < 1e-9);
    }
}
