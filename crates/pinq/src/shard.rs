//! Chunked columnar storage: the sharded record buffer behind a queryable.
//!
//! A [`Shards<T>`] is an ordered list of immutable record chunks that reads
//! as one flat sequence. Operators address records by *global* index — the
//! position in the flattened sequence — so the physical chunking is
//! invisible to everything above: a single-shard buffer and a 50-shard
//! buffer with the same flat contents are interchangeable.
//!
//! Sharding is what lets the engine drop the copy-heavy barriers the
//! profiler blamed for the w4 regression:
//!
//! - a pool-forced plan keeps each chunk's output as its own shard — no
//!   concatenation pass after the workers join;
//! - `concat` is shard-list concatenation — zero copies on either side;
//! - aggregation kernels walk [`Shards::for_range`] over global index
//!   ranges, so the fixed-size task decomposition (worker-count
//!   independent, see [`crate::exec`]) never depends on the shard layout.
//!
//! Cloning is O(shard count) `Arc` bumps; records are never copied.

use std::ops::Range;
use std::sync::Arc;

#[derive(Debug)]
struct Inner<T> {
    shards: Vec<Arc<Vec<T>>>,
    /// `ends[i]` is the global index one past shard `i`'s last record;
    /// `ends.last()` is the total length. Empty shards are legal (their end
    /// equals their start) and are skipped by range walks.
    ends: Vec<usize>,
}

/// An immutable, shared, sharded record buffer (see the module docs).
#[derive(Debug)]
pub(crate) struct Shards<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Clone for Shards<T> {
    fn clone(&self) -> Self {
        Shards {
            inner: self.inner.clone(),
        }
    }
}

impl<T> Shards<T> {
    pub(crate) fn from_arcs(shards: Vec<Arc<Vec<T>>>) -> Self {
        let mut ends = Vec::with_capacity(shards.len());
        let mut total = 0usize;
        for s in &shards {
            total += s.len();
            ends.push(total);
        }
        Shards {
            inner: Arc::new(Inner { shards, ends }),
        }
    }

    /// A single-shard buffer owning `records`.
    pub(crate) fn from_vec(records: Vec<T>) -> Self {
        Self::from_arc(Arc::new(records))
    }

    /// A single-shard buffer sharing an existing allocation.
    pub(crate) fn from_arc(records: Arc<Vec<T>>) -> Self {
        Self::from_arcs(vec![records])
    }

    /// A buffer with one shard per input chunk, in order. Empty chunks are
    /// kept (they read as zero records), so callers may hand over a task
    /// decomposition verbatim.
    pub(crate) fn from_vecs(chunks: Vec<Vec<T>>) -> Self {
        Self::from_arcs(chunks.into_iter().map(Arc::new).collect())
    }

    /// Total record count across all shards.
    pub(crate) fn len(&self) -> usize {
        self.inner.ends.last().copied().unwrap_or(0)
    }

    /// Whether the buffer holds no records.
    pub(crate) fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of physical shards (including empty ones).
    #[cfg(test)]
    pub(crate) fn shard_count(&self) -> usize {
        self.inner.shards.len()
    }

    /// Whether two handles share the same underlying buffer (used by tests
    /// asserting zero-copy reuse).
    #[cfg(test)]
    pub(crate) fn ptr_eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// Iterate all records in flat (global-index) order.
    pub(crate) fn iter(&self) -> impl Iterator<Item = &T> {
        self.inner.shards.iter().flat_map(|s| s.iter())
    }

    /// Walk `range` of the flat sequence, crossing shard boundaries as
    /// needed. The global positions visited depend only on `range`, never
    /// on the shard layout.
    pub(crate) fn for_range(&self, range: Range<usize>, f: &mut dyn FnMut(&T)) {
        if range.start >= range.end {
            return;
        }
        let inner = &*self.inner;
        // First shard whose end lies beyond the range start; empty shards
        // at the boundary are skipped because their end equals their start.
        let mut si = inner.ends.partition_point(|&e| e <= range.start);
        let mut pos = range.start;
        while pos < range.end && si < inner.shards.len() {
            let shard_start = if si == 0 { 0 } else { inner.ends[si - 1] };
            let shard = &inner.shards[si];
            let lo = pos - shard_start;
            let hi = shard.len().min(range.end - shard_start);
            for t in &shard[lo..hi] {
                f(t);
            }
            pos = shard_start + hi;
            si += 1;
        }
    }

    /// Zero-copy concatenation: the result references both inputs' shards.
    pub(crate) fn concat(&self, other: &Shards<T>) -> Shards<T> {
        let mut shards = Vec::with_capacity(self.inner.shards.len() + other.inner.shards.len());
        shards.extend(self.inner.shards.iter().cloned());
        shards.extend(other.inner.shards.iter().cloned());
        Self::from_arcs(shards)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sharded(chunks: &[&[u32]]) -> Shards<u32> {
        Shards::from_vecs(chunks.iter().map(|c| c.to_vec()).collect())
    }

    #[test]
    fn flat_iteration_ignores_the_layout() {
        let s = sharded(&[&[1, 2], &[], &[3], &[4, 5, 6]]);
        assert_eq!(s.len(), 6);
        assert_eq!(s.shard_count(), 4);
        let flat: Vec<u32> = s.iter().copied().collect();
        assert_eq!(flat, vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn for_range_crosses_boundaries_and_skips_empties() {
        let s = sharded(&[&[0, 1], &[], &[2, 3, 4], &[], &[5]]);
        for (lo, hi) in [(0, 6), (1, 5), (2, 2), (0, 1), (5, 6), (3, 4)] {
            let mut got = Vec::new();
            s.for_range(lo..hi, &mut |&v| got.push(v));
            assert_eq!(got, (lo as u32..hi as u32).collect::<Vec<_>>());
        }
    }

    #[test]
    fn concat_shares_both_sides() {
        let a = sharded(&[&[1, 2]]);
        let b = sharded(&[&[3], &[4]]);
        let c = a.concat(&b);
        assert_eq!(c.len(), 4);
        assert_eq!(c.shard_count(), 3);
        assert_eq!(c.iter().copied().collect::<Vec<_>>(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn empty_buffer_is_well_formed() {
        let s: Shards<u32> = Shards::from_vecs(Vec::new());
        assert!(s.is_empty());
        let mut hits = 0;
        s.for_range(0..0, &mut |_| hits += 1);
        assert_eq!(hits, 0);
    }
}
