//! The charge graph: how aggregation spends propagate to source budgets.
//!
//! Transformations build a DAG from derived queryables back to root
//! accountants. Charging a derived node walks the DAG:
//!
//! * `Root` — spend directly against the dataset's [`Accountant`].
//! * `Scaled` — multiply by a stability factor (e.g. ×2 across a `GroupBy`).
//! * `Combined` — charge several parents (e.g. both inputs of a `Join`);
//!   applied transactionally with rollback if a later parent fails.
//! * `PartitionPart` — charge through a [`PartitionLedger`], which forwards
//!   only increases of the *maximum* child spend to its parent (parallel
//!   composition).
//!
//! The walk also *narrates itself*: each hop appends a segment to a charge
//! path (`"scale(x2)/part[3]/root"`), which the accountant records in its
//! ledger alongside the operator name and analysis label. That provenance
//! is what turns the spend log into an owner-side audit trail — the paper's
//! mediated model needs the owner to explain not just *how much* ε left the
//! budget but *through which composition* it did.

use crate::budget::{Accountant, ChargeMeta};
use crate::error::Result;
use crate::partition::PartitionLedger;
use std::sync::Arc;

/// A node in the charge DAG. Crate-internal: analysts only see queryables.
#[derive(Debug, Clone)]
pub(crate) enum ChargeNode {
    /// Charges land directly on a dataset budget.
    Root(Accountant),
    /// Charges are multiplied by `factor` and forwarded to `parent`.
    Scaled {
        parent: Arc<ChargeNode>,
        factor: f64,
    },
    /// Charges are forwarded, unscaled, to every parent.
    Combined(Vec<Arc<ChargeNode>>),
    /// Charges flow through a partition ledger (max-of-parts accounting).
    PartitionPart {
        ledger: Arc<PartitionLedger>,
        index: usize,
    },
}

fn join_path(prefix: &str, segment: &str) -> String {
    if prefix.is_empty() {
        segment.to_string()
    } else {
        format!("{prefix}/{segment}")
    }
}

impl ChargeNode {
    /// Spend `eps` through this node. On failure nothing is spent anywhere.
    #[cfg(test)]
    pub(crate) fn charge(&self, eps: f64) -> Result<()> {
        self.charge_with(eps, &ChargeMeta::new("direct", None), "")
    }

    /// Spend `eps` through this node, threading provenance: `meta` names
    /// the initiating operator, `path` accumulates one segment per hop.
    pub(crate) fn charge_with(&self, eps: f64, meta: &ChargeMeta, path: &str) -> Result<()> {
        match self {
            ChargeNode::Root(acct) => acct.charge_with(eps, meta, &join_path(path, "root")),
            ChargeNode::Scaled { parent, factor } => parent.charge_with(
                eps * factor,
                meta,
                &join_path(path, &format!("scale(x{factor})")),
            ),
            ChargeNode::Combined(parents) => {
                for (i, p) in parents.iter().enumerate() {
                    let seg = join_path(path, &format!("in[{i}]"));
                    if let Err(e) = p.charge_with(eps, meta, &seg) {
                        // Roll back the parents already charged so that a
                        // failed multi-input aggregation is free.
                        for (j, q) in parents[..i].iter().enumerate() {
                            q.refund_with(eps, meta, &join_path(path, &format!("in[{j}]")));
                        }
                        return Err(e);
                    }
                }
                Ok(())
            }
            ChargeNode::PartitionPart { ledger, index } => ledger.charge_child_with(
                *index,
                eps,
                meta,
                &join_path(path, &format!("part[{index}]")),
            ),
        }
    }

    /// Render the static charge path from this node to its root(s) without
    /// charging anything — the same segments `charge_with` would narrate,
    /// composed leaf-to-root (e.g. `"scale(x2)/part[3]/root"`). Used to tag
    /// profiler spans with the provenance an aggregation *would* charge
    /// through; pure metadata, safe on the analyst side.
    pub(crate) fn describe(&self) -> String {
        match self {
            ChargeNode::Root(_) => "root".to_string(),
            ChargeNode::Scaled { parent, factor } => {
                format!("scale(x{factor})/{}", parent.describe())
            }
            ChargeNode::Combined(parents) => {
                let inner: Vec<String> = parents
                    .iter()
                    .enumerate()
                    .map(|(i, p)| format!("in[{i}]:{}", p.describe()))
                    .collect();
                format!("({})", inner.join("+"))
            }
            ChargeNode::PartitionPart { ledger, index } => {
                format!("part[{index}]/{}", ledger.parent().describe())
            }
        }
    }

    /// Undo a previous successful `charge(eps)`.
    #[cfg(test)]
    pub(crate) fn refund(&self, eps: f64) {
        self.refund_with(eps, &ChargeMeta::new("direct", None), "");
    }

    /// Undo a previous successful `charge_with`, with the same provenance.
    pub(crate) fn refund_with(&self, eps: f64, meta: &ChargeMeta, path: &str) {
        match self {
            ChargeNode::Root(acct) => acct.refund_with(eps, meta, &join_path(path, "root")),
            ChargeNode::Scaled { parent, factor } => parent.refund_with(
                eps * factor,
                meta,
                &join_path(path, &format!("scale(x{factor})")),
            ),
            ChargeNode::Combined(parents) => {
                for (i, p) in parents.iter().enumerate() {
                    p.refund_with(eps, meta, &join_path(path, &format!("in[{i}]")));
                }
            }
            ChargeNode::PartitionPart { ledger, index } => ledger.refund_child_with(
                *index,
                eps,
                meta,
                &join_path(path, &format!("part[{index}]")),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_nodes_multiply_charges() {
        let acct = Accountant::new(10.0);
        let root = Arc::new(ChargeNode::Root(acct.clone()));
        let scaled = ChargeNode::Scaled {
            parent: root,
            factor: 2.0,
        };
        scaled.charge(1.0).unwrap();
        assert!((acct.spent() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn nested_scaling_composes_multiplicatively() {
        let acct = Accountant::new(100.0);
        let root = Arc::new(ChargeNode::Root(acct.clone()));
        let a = Arc::new(ChargeNode::Scaled {
            parent: root,
            factor: 2.0,
        });
        let b = ChargeNode::Scaled {
            parent: a,
            factor: 3.0,
        };
        b.charge(1.0).unwrap();
        assert!((acct.spent() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn combined_charges_every_parent() {
        let a = Accountant::new(5.0);
        let b = Accountant::new(5.0);
        let node = ChargeNode::Combined(vec![
            Arc::new(ChargeNode::Root(a.clone())),
            Arc::new(ChargeNode::Root(b.clone())),
        ]);
        node.charge(1.5).unwrap();
        assert!((a.spent() - 1.5).abs() < 1e-12);
        assert!((b.spent() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn combined_rolls_back_on_partial_failure() {
        let rich = Accountant::new(5.0);
        let poor = Accountant::new(0.1);
        let node = ChargeNode::Combined(vec![
            Arc::new(ChargeNode::Root(rich.clone())),
            Arc::new(ChargeNode::Root(poor.clone())),
        ]);
        assert!(node.charge(1.0).is_err());
        // The rich parent must have been refunded.
        assert_eq!(rich.spent(), 0.0);
        assert_eq!(poor.spent(), 0.0);
    }

    #[test]
    fn refund_walks_the_graph() {
        let acct = Accountant::new(10.0);
        let root = Arc::new(ChargeNode::Root(acct.clone()));
        let scaled = ChargeNode::Scaled {
            parent: root,
            factor: 4.0,
        };
        scaled.charge(1.0).unwrap();
        scaled.refund(1.0);
        assert_eq!(acct.spent(), 0.0);
    }

    #[test]
    fn charge_paths_narrate_the_walk() {
        let acct = Accountant::new(10.0);
        let root = Arc::new(ChargeNode::Root(acct.clone()));
        let scaled = ChargeNode::Scaled {
            parent: root,
            factor: 2.0,
        };
        let meta = ChargeMeta::new("noisy_count", Some(Arc::from("ports")));
        scaled.charge_with(0.5, &meta, "").unwrap();
        let log = acct.audit_log();
        assert_eq!(log.len(), 1);
        assert_eq!(&*log[0].operator, "noisy_count");
        assert_eq!(&*log[0].path, "scale(x2)/root");
        assert_eq!(log[0].label.as_deref(), Some("ports"));
    }

    #[test]
    fn describe_renders_static_paths_without_charging() {
        let acct = Accountant::new(10.0);
        let root = Arc::new(ChargeNode::Root(acct.clone()));
        assert_eq!(root.describe(), "root");
        let scaled = Arc::new(ChargeNode::Scaled {
            parent: root.clone(),
            factor: 2.0,
        });
        assert_eq!(scaled.describe(), "scale(x2)/root");
        let combined = ChargeNode::Combined(vec![root.clone(), scaled.clone()]);
        assert_eq!(combined.describe(), "(in[0]:root+in[1]:scale(x2)/root)");
        let ledger = Arc::new(crate::partition::PartitionLedger::new(scaled, 4));
        let part = ChargeNode::PartitionPart { ledger, index: 3 };
        assert_eq!(part.describe(), "part[3]/scale(x2)/root");
        // Describing is free: nothing was spent anywhere.
        assert_eq!(acct.spent(), 0.0);
    }

    #[test]
    fn combined_paths_name_each_input() {
        let a = Accountant::new(5.0);
        let b = Accountant::new(5.0);
        let node = ChargeNode::Combined(vec![
            Arc::new(ChargeNode::Root(a.clone())),
            Arc::new(ChargeNode::Root(b.clone())),
        ]);
        let meta = ChargeMeta::new("noisy_sum", None);
        node.charge_with(1.0, &meta, "").unwrap();
        assert_eq!(&*a.audit_log()[0].path, "in[0]/root");
        assert_eq!(&*b.audit_log()[0].path, "in[1]/root");
    }
}
