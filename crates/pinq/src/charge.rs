//! The charge graph: how aggregation spends propagate to source budgets.
//!
//! Transformations build a DAG from derived queryables back to root
//! accountants. Charging a derived node walks the DAG:
//!
//! * `Root` — spend directly against the dataset's [`Accountant`].
//! * `Scaled` — multiply by a stability factor (e.g. ×2 across a `GroupBy`).
//! * `Combined` — charge several parents (e.g. both inputs of a `Join`);
//!   applied transactionally with rollback if a later parent fails.
//! * `PartitionPart` — charge through a [`PartitionLedger`], which forwards
//!   only increases of the *maximum* child spend to its parent (parallel
//!   composition).

use crate::budget::Accountant;
use crate::error::Result;
use crate::partition::PartitionLedger;
use std::sync::Arc;

/// A node in the charge DAG. Crate-internal: analysts only see queryables.
#[derive(Debug, Clone)]
pub(crate) enum ChargeNode {
    /// Charges land directly on a dataset budget.
    Root(Accountant),
    /// Charges are multiplied by `factor` and forwarded to `parent`.
    Scaled {
        parent: Arc<ChargeNode>,
        factor: f64,
    },
    /// Charges are forwarded, unscaled, to every parent.
    Combined(Vec<Arc<ChargeNode>>),
    /// Charges flow through a partition ledger (max-of-parts accounting).
    PartitionPart {
        ledger: Arc<PartitionLedger>,
        index: usize,
    },
}

impl ChargeNode {
    /// Spend `eps` through this node. On failure nothing is spent anywhere.
    pub(crate) fn charge(&self, eps: f64) -> Result<()> {
        match self {
            ChargeNode::Root(acct) => acct.charge(eps),
            ChargeNode::Scaled { parent, factor } => parent.charge(eps * factor),
            ChargeNode::Combined(parents) => {
                for (i, p) in parents.iter().enumerate() {
                    if let Err(e) = p.charge(eps) {
                        // Roll back the parents already charged so that a
                        // failed multi-input aggregation is free.
                        for q in &parents[..i] {
                            q.refund(eps);
                        }
                        return Err(e);
                    }
                }
                Ok(())
            }
            ChargeNode::PartitionPart { ledger, index } => ledger.charge_child(*index, eps),
        }
    }

    /// Undo a previous successful `charge(eps)`.
    pub(crate) fn refund(&self, eps: f64) {
        match self {
            ChargeNode::Root(acct) => acct.refund(eps),
            ChargeNode::Scaled { parent, factor } => parent.refund(eps * factor),
            ChargeNode::Combined(parents) => {
                for p in parents {
                    p.refund(eps);
                }
            }
            ChargeNode::PartitionPart { ledger, index } => ledger.refund_child(*index, eps),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_nodes_multiply_charges() {
        let acct = Accountant::new(10.0);
        let root = Arc::new(ChargeNode::Root(acct.clone()));
        let scaled = ChargeNode::Scaled {
            parent: root,
            factor: 2.0,
        };
        scaled.charge(1.0).unwrap();
        assert!((acct.spent() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn nested_scaling_composes_multiplicatively() {
        let acct = Accountant::new(100.0);
        let root = Arc::new(ChargeNode::Root(acct.clone()));
        let a = Arc::new(ChargeNode::Scaled {
            parent: root,
            factor: 2.0,
        });
        let b = ChargeNode::Scaled {
            parent: a,
            factor: 3.0,
        };
        b.charge(1.0).unwrap();
        assert!((acct.spent() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn combined_charges_every_parent() {
        let a = Accountant::new(5.0);
        let b = Accountant::new(5.0);
        let node = ChargeNode::Combined(vec![
            Arc::new(ChargeNode::Root(a.clone())),
            Arc::new(ChargeNode::Root(b.clone())),
        ]);
        node.charge(1.5).unwrap();
        assert!((a.spent() - 1.5).abs() < 1e-12);
        assert!((b.spent() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn combined_rolls_back_on_partial_failure() {
        let rich = Accountant::new(5.0);
        let poor = Accountant::new(0.1);
        let node = ChargeNode::Combined(vec![
            Arc::new(ChargeNode::Root(rich.clone())),
            Arc::new(ChargeNode::Root(poor.clone())),
        ]);
        assert!(node.charge(1.0).is_err());
        // The rich parent must have been refunded.
        assert_eq!(rich.spent(), 0.0);
        assert_eq!(poor.spent(), 0.0);
    }

    #[test]
    fn refund_walks_the_graph() {
        let acct = Accountant::new(10.0);
        let root = Arc::new(ChargeNode::Root(acct.clone()));
        let scaled = ChargeNode::Scaled {
            parent: root,
            factor: 4.0,
        };
        scaled.charge(1.0).unwrap();
        scaled.refund(1.0);
        assert_eq!(acct.spent(), 0.0);
    }
}
