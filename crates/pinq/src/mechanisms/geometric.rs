//! The two-sided geometric ("discrete Laplace") mechanism.
//!
//! For integer-valued queries of sensitivity 1, adding two-sided geometric
//! noise with parameter `α = exp(-ε)` gives ε-differential privacy while
//! keeping the output an integer: `Pr[X = k] ∝ α^{|k|}`. The engine exposes
//! this as an alternative to the Laplace mechanism when the analyst wants an
//! integral count (e.g. to feed into code that indexes with the result).

use crate::rng::NoiseSource;

/// Draw one sample of two-sided geometric noise for accuracy `eps` at
/// sensitivity 1: `Pr[X = k] = (1-α)/(1+α) · α^{|k|}` with `α = e^{-ε}`.
///
/// Sampling: draw the sign and magnitude via inversion on the folded
/// distribution. `X = sgn · G` where `G ~ Geometric(1-α)` shifted so that
/// the two-sided mass at zero is correct.
pub fn geometric_noise(noise: &NoiseSource, eps: f64) -> i64 {
    debug_assert!(eps.is_finite() && eps > 0.0);
    let alpha = (-eps).exp();
    // P(X = 0) = (1-alpha)/(1+alpha). Otherwise symmetric tails.
    let u = noise.uniform();
    let p0 = (1.0 - alpha) / (1.0 + alpha);
    if u < p0 {
        return 0;
    }
    // Remaining mass split evenly between the two tails. Sample magnitude
    // k >= 1 with P(k) proportional to alpha^k via inversion.
    let v = noise.uniform();
    // P(K >= k | K >= 1) = alpha^{k-1}; invert.
    let k = 1 + (v.ln() / alpha.ln()).floor() as i64;
    let sign = if noise.uniform() < 0.5 { -1 } else { 1 };
    sign * k.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_mass_matches_theory() {
        let eps = 1.0;
        let src = NoiseSource::seeded(23);
        let n = 200_000;
        let zeros = (0..n).filter(|_| geometric_noise(&src, eps) == 0).count() as f64;
        let alpha = (-eps).exp();
        let expected = (1.0 - alpha) / (1.0 + alpha);
        let got = zeros / n as f64;
        assert!((got - expected).abs() < 0.01, "P(0): {got} vs {expected}");
    }

    #[test]
    fn symmetric_around_zero() {
        let src = NoiseSource::seeded(29);
        let n = 100_000;
        let sum: i64 = (0..n).map(|_| geometric_noise(&src, 0.5)).sum();
        let mean = sum as f64 / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn magnitude_distribution_decays_geometrically() {
        // P(|X| = k+1) / P(|X| = k) = alpha for k >= 1.
        let eps = 0.7f64;
        let alpha = (-eps).exp();
        let src = NoiseSource::seeded(31);
        let n = 400_000;
        let mut counts = [0usize; 6];
        for _ in 0..n {
            let k = geometric_noise(&src, eps).unsigned_abs() as usize;
            if k < counts.len() {
                counts[k] += 1;
            }
        }
        for k in 1..4 {
            let ratio = counts[k + 1] as f64 / counts[k] as f64;
            assert!(
                (ratio - alpha).abs() < 0.05,
                "decay at {k}: {ratio} vs {alpha}"
            );
        }
    }

    #[test]
    fn strong_privacy_means_wide_noise() {
        let src = NoiseSource::seeded(37);
        let n = 50_000;
        let spread_strong: f64 = (0..n)
            .map(|_| geometric_noise(&src, 0.1).abs() as f64)
            .sum::<f64>()
            / n as f64;
        let spread_weak: f64 = (0..n)
            .map(|_| geometric_noise(&src, 10.0).abs() as f64)
            .sum::<f64>()
            / n as f64;
        assert!(spread_strong > 5.0 * spread_weak.max(0.01));
    }
}
